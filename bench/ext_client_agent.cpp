// Extension (paper 4.1): uplink UDP and the client agent. TCP uplink is regulated through
// ack withholding at the AP, but a saturating uplink *UDP* sender never waits for anything
// the AP controls - the paper's answer is a client-side agent honoring a pause
// notification. This bench shows the residual unfairness without the agent and its
// restoration with it.
#include "bench_common.h"

namespace {

using namespace tbf;
using namespace tbf::bench;

scenario::Results RunUplinkUdpMix(bool tbr, bool client_agent) {
  scenario::ScenarioConfig config =
      StandardConfig(tbr ? scenario::QdiscKind::kTbr : scenario::QdiscKind::kFifo, Sec(20));
  config.tbr.client_agent = client_agent;
  scenario::Wlan wlan(config);
  wlan.AddStation(1, phy::WifiRate::k1Mbps);
  wlan.AddStation(2, phy::WifiRate::k11Mbps);
  wlan.AddSaturatingUdp(1, scenario::Direction::kUplink);
  wlan.AddSaturatingUdp(2, scenario::Direction::kUplink);
  return wlan.Run();
}

}  // namespace

int main() {
  PrintHeader("Extension - uplink UDP regulation requires client cooperation",
              "paper 4.1: 'Cooperation from each client is only necessary if the client "
              "has uplink UDP flows that represent a significant fraction of its traffic'");

  stats::Table table({"config", "n1(1M) Mbps", "n2(11M) Mbps", "total Mbps", "airtime n1",
                      "airtime n2"});
  const struct {
    const char* name;
    bool tbr;
    bool agent;
  } cases[] = {
      {"Normal (DCF only)", false, false},
      {"TBR, no client agent", true, false},
      {"TBR + client agent", true, true},
  };
  for (const auto& c : cases) {
    const scenario::Results res = RunUplinkUdpMix(c.tbr, c.agent);
    table.AddRow({c.name, stats::Table::Num(res.GoodputMbps(1)),
                  stats::Table::Num(res.GoodputMbps(2)),
                  stats::Table::Num(res.AggregateMbps()),
                  stats::Table::Num(res.AirtimeShare(1)),
                  stats::Table::Num(res.AirtimeShare(2))});
  }
  table.Print();
  std::printf("\nReading: without the agent, a saturating uplink UDP sender at 1 Mbps "
              "ignores the AP's regulation (TBR row ~= Normal row); the pause-notification "
              "agent restores the ~50/50 airtime split.\n");
  return 0;
}
