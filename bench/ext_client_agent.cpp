// Extension (paper 4.1): uplink UDP and the client agent. TCP uplink is regulated through
// ack withholding at the AP, but a saturating uplink *UDP* sender never waits for anything
// the AP controls - the paper's answer is a client-side agent honoring a pause
// notification. This bench shows the residual unfairness without the agent and its
// restoration with it.
#include "bench_common.h"

namespace {

using namespace tbf;
using namespace tbf::bench;

sweep::ScenarioJob UplinkUdpMixJob(bool tbr, bool client_agent) {
  sweep::ScenarioJob job;
  job.config =
      StandardConfig(tbr ? scenario::QdiscKind::kTbr : scenario::QdiscKind::kFifo, Sec(20));
  job.config.tbr.client_agent = client_agent;
  scenario::StationSpec s1;
  s1.id = 1;
  s1.rate = phy::WifiRate::k1Mbps;
  job.stations.push_back(s1);
  scenario::StationSpec s2;
  s2.id = 2;
  s2.rate = phy::WifiRate::k11Mbps;
  job.stations.push_back(s2);
  for (NodeId id = 1; id <= 2; ++id) {
    scenario::FlowSpec flow;
    flow.client = id;
    flow.direction = scenario::Direction::kUplink;
    flow.transport = scenario::Transport::kUdp;
    flow.udp_rate = Mbps(9);  // Above any single DSSS link's capacity.
    job.flows.push_back(flow);
  }
  return job;
}

}  // namespace

int main() {
  PrintHeader("Extension - uplink UDP regulation requires client cooperation",
              "paper 4.1: 'Cooperation from each client is only necessary if the client "
              "has uplink UDP flows that represent a significant fraction of its traffic'");

  const struct {
    const char* name;
    bool tbr;
    bool agent;
  } cases[] = {
      {"Normal (DCF only)", false, false},
      {"TBR, no client agent", true, false},
      {"TBR + client agent", true, true},
  };
  std::vector<sweep::ScenarioJob> jobs;
  for (const auto& c : cases) {
    jobs.push_back(UplinkUdpMixJob(c.tbr, c.agent));
  }
  const std::vector<scenario::Results> results = RunSweepScenarios(jobs);

  stats::Table table({"config", "n1(1M) Mbps", "n2(11M) Mbps", "total Mbps", "airtime n1",
                      "airtime n2"});
  size_t job = 0;
  for (const auto& c : cases) {
    const scenario::Results& res = results[job++];
    table.AddRow({c.name, stats::Table::Num(res.GoodputMbps(1)),
                  stats::Table::Num(res.GoodputMbps(2)),
                  stats::Table::Num(res.AggregateMbps()),
                  stats::Table::Num(res.AirtimeShare(1)),
                  stats::Table::Num(res.AirtimeShare(2))});
  }
  table.Print();
  std::printf("\nReading: without the agent, a saturating uplink UDP sender at 1 Mbps "
              "ignores the AP's regulation (TBR row ~= Normal row); the pause-notification "
              "agent restores the ~50/50 airtime split.\n");
  PrintSweepFooter();
  return 0;
}
