// Table 4: demand diversity. Two 11 Mbps uplink TCP nodes; n2's application is limited to
// 2.1 Mbps. TBR's ADJUSTRATEEVENT must hand the unused channel time to n1, matching the
// unregulated outcome.
#include "bench_common.h"

int main() {
  using namespace tbf;
  using namespace tbf::bench;

  PrintHeader("Table 4 - demand diversity and the token-rate adjuster",
              "paper Table 4: Exp-Normal n1 2.943 / n2 2.128 (total 5.071); Exp-TBR n1 "
              "2.954 / n2 2.119 (total 5.061) - no significant difference");

  const std::pair<scenario::QdiscKind, const char*> notions[] = {
      {scenario::QdiscKind::kFifo, "Exp-Normal"},
      {scenario::QdiscKind::kTbr, "Exp-TBR"},
  };
  std::vector<sweep::ScenarioJob> jobs;
  for (const auto& [kind, name] : notions) {
    sweep::ScenarioJob job;
    job.config = StandardConfig(kind, Sec(30));
    job.config.warmup = Sec(8);  // Let ADJUSTRATEEVENT converge before measuring.
    for (NodeId id = 1; id <= 2; ++id) {
      scenario::StationSpec station;
      station.id = id;
      station.rate = phy::WifiRate::k11Mbps;
      job.stations.push_back(station);
      scenario::FlowSpec flow;
      flow.client = id;
      flow.direction = scenario::Direction::kUplink;
      flow.transport = scenario::Transport::kTcp;
      if (id == 2) {
        flow.app_limit_bps = Mbps(2.1);
      }
      job.flows.push_back(flow);
    }
    jobs.push_back(std::move(job));
  }
  const std::vector<scenario::Results> results = RunSweepScenarios(jobs);

  stats::Table table({"config", "n1 Mbps (greedy)", "n2 Mbps (2.1M app)", "total Mbps",
                      "utilization"});
  size_t job = 0;
  for (const auto& [kind, name] : notions) {
    const scenario::Results& res = results[job++];
    table.AddRow({name, stats::Table::Num(res.GoodputMbps(1), 4),
                  stats::Table::Num(res.GoodputMbps(2), 4),
                  stats::Table::Num(res.AggregateMbps(), 4),
                  stats::Table::Num(res.utilization)});
  }
  table.Print();
  PrintSweepFooter();
  return 0;
}
