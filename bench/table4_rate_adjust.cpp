// Table 4: demand diversity. Two 11 Mbps uplink TCP nodes; n2's application is limited to
// 2.1 Mbps. TBR's ADJUSTRATEEVENT must hand the unused channel time to n1, matching the
// unregulated outcome.
#include "bench_common.h"

int main() {
  using namespace tbf;
  using namespace tbf::bench;

  PrintHeader("Table 4 - demand diversity and the token-rate adjuster",
              "paper Table 4: Exp-Normal n1 2.943 / n2 2.128 (total 5.071); Exp-TBR n1 "
              "2.954 / n2 2.119 (total 5.061) - no significant difference");

  stats::Table table({"config", "n1 Mbps (greedy)", "n2 Mbps (2.1M app)", "total Mbps",
                      "utilization"});
  for (const auto& [kind, name] : {std::pair{scenario::QdiscKind::kFifo, "Exp-Normal"},
                                   std::pair{scenario::QdiscKind::kTbr, "Exp-TBR"}}) {
    scenario::ScenarioConfig config = StandardConfig(kind, Sec(30));
    config.warmup = Sec(8);  // Let ADJUSTRATEEVENT converge before measuring.
    scenario::Wlan wlan(config);
    wlan.AddStation(1, phy::WifiRate::k11Mbps);
    wlan.AddStation(2, phy::WifiRate::k11Mbps);
    wlan.AddBulkTcp(1, scenario::Direction::kUplink);
    auto& f2 = wlan.AddBulkTcp(2, scenario::Direction::kUplink);
    f2.app_limit_bps = Mbps(2.1);
    const scenario::Results res = wlan.Run();
    table.AddRow({name, stats::Table::Num(res.GoodputMbps(1), 4),
                  stats::Table::Num(res.GoodputMbps(2), 4),
                  stats::Table::Num(res.AggregateMbps(), 4),
                  stats::Table::Num(res.utilization)});
  }
  table.Print();
  return 0;
}
