// Figure 9(a)/(b): mixed-rate pairs (1vs11, 2vs11, 5.5vs11) in both directions, comparing
// the Eq. 6 prediction, Exp-Normal (DCF+FIFO), Exp-TBR, and the Eq. 12 prediction.
#include "bench_common.h"

#include "tbf/model/baseline.h"
#include "tbf/model/fairness_model.h"

int main() {
  using namespace tbf;
  using namespace tbf::bench;

  PrintHeader("Figure 9 - mixed-rate pairs: Eq6 / Exp-Normal / Exp-TBR / Eq12",
              "paper Fig. 9: downlink totals improve ~6% (5.5vs11), ~35% (2vs11), ~103% "
              "(1vs11); Exp-Normal tracks Eq6 and Exp-TBR tracks Eq12 (slightly below, "
              "due to missing retransmission information)");

  const auto& betas = model::PaperTable2Baselines();
  const phy::WifiRate slow_rates[] = {phy::WifiRate::k1Mbps, phy::WifiRate::k2Mbps,
                                      phy::WifiRate::k5_5Mbps};
  const std::pair<scenario::Direction, const char*> directions[] = {
      {scenario::Direction::kDownlink, "downlink"},
      {scenario::Direction::kUplink, "uplink"},
  };

  // Per (direction, slow rate): Normal then TBR.
  std::vector<sweep::ScenarioJob> jobs;
  for (const auto& [dir, dname] : directions) {
    for (phy::WifiRate slow : slow_rates) {
      jobs.push_back(TcpPairJob(scenario::QdiscKind::kFifo, slow, phy::WifiRate::k11Mbps,
                                dir));
      jobs.push_back(TcpPairJob(scenario::QdiscKind::kTbr, slow, phy::WifiRate::k11Mbps,
                                dir));
    }
  }
  const std::vector<scenario::Results> results = RunSweepScenarios(jobs);

  size_t job = 0;
  for (const auto& [dir, dname] : directions) {
    std::printf("--- %s ---\n", dname);
    stats::Table table({"case", "Eq6 total", "Normal total", "TBR total", "Eq12 total",
                        "TBR n1(slow)", "TBR n2(11)", "gain"});
    for (phy::WifiRate slow : slow_rates) {
      std::vector<model::NodeModel> nodes = {
          {betas.at(slow), 1500.0, 1.0},
          {betas.at(phy::WifiRate::k11Mbps), 1500.0, 1.0}};
      const double eq6 = model::ThroughputFairAllocation(nodes).total_bps / 1e6;
      const double eq12 = model::TimeFairAllocation(nodes).total_bps / 1e6;

      const scenario::Results& normal = results[job++];
      const scenario::Results& tbr = results[job++];

      table.AddRow({PairName(slow, phy::WifiRate::k11Mbps), stats::Table::Num(eq6),
                    stats::Table::Num(normal.AggregateMbps()),
                    stats::Table::Num(tbr.AggregateMbps()), stats::Table::Num(eq12),
                    stats::Table::Num(tbr.GoodputMbps(1)),
                    stats::Table::Num(tbr.GoodputMbps(2)),
                    stats::Table::PercentDelta(tbr.AggregateMbps() /
                                               normal.AggregateMbps())});
    }
    table.Print();
  }
  PrintSweepFooter();
  return 0;
}
