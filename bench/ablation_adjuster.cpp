// Ablation (paper 4.3): the token-rate adjuster and the packet-level work-conserving
// fallback. Two probes:
//  (a) demand diversity (Table 4 workload) - something must return unused channel time,
//      or utilization collapses;
//  (b) saturated mixed rates (1vs11 uplink) - the packet-level fallback must NOT engage,
//      or it re-releases the throttled node's acks and defeats regulation.
#include "bench_common.h"

namespace {

using namespace tbf;
using namespace tbf::bench;

sweep::ScenarioJob DemandDiverseJob(const core::TbrConfig& tbr) {
  sweep::ScenarioJob job;
  job.config = StandardConfig(scenario::QdiscKind::kTbr, Sec(25));
  job.config.tbr = tbr;
  job.config.warmup = Sec(8);
  for (NodeId id = 1; id <= 2; ++id) {
    scenario::StationSpec station;
    station.id = id;
    station.rate = phy::WifiRate::k11Mbps;
    job.stations.push_back(station);
    scenario::FlowSpec flow;
    flow.client = id;
    flow.direction = scenario::Direction::kUplink;
    flow.transport = scenario::Transport::kTcp;
    if (id == 2) {
      flow.app_limit_bps = Mbps(2.1);
    }
    job.flows.push_back(flow);
  }
  return job;
}

sweep::ScenarioJob MixedRatesJob(const core::TbrConfig& tbr) {
  sweep::ScenarioJob job = TcpPairJob(scenario::QdiscKind::kTbr, phy::WifiRate::k1Mbps,
                                      phy::WifiRate::k11Mbps, scenario::Direction::kUplink,
                                      Sec(25));
  job.config.tbr = tbr;
  return job;
}

}  // namespace

int main() {
  PrintHeader("Ablation - ADJUSTRATEEVENT and work-conserving fallback",
              "paper 4.3: the adjuster keeps utilization high under demand diversity; "
              "analysis here shows the packet-level fallback must stay off for uplink "
              "regulation to hold");

  struct Variant {
    const char* name;
    bool adjust;
    bool fallback;
  };
  const Variant variants[] = {
      {"adjuster on, fallback off (default)", true, false},
      {"adjuster off, fallback off", false, false},
      {"adjuster off, fallback on", false, true},
      {"adjuster on, fallback on", true, true},
  };

  // Both probes' grids in a single sweep: 4 demand-diversity jobs then 4 mixed-rate jobs.
  std::vector<sweep::ScenarioJob> jobs;
  for (const Variant& v : variants) {
    core::TbrConfig tbr;
    tbr.enable_rate_adjust = v.adjust;
    tbr.work_conserving_fallback = v.fallback;
    jobs.push_back(DemandDiverseJob(tbr));
  }
  for (const Variant& v : variants) {
    core::TbrConfig tbr;
    tbr.enable_rate_adjust = v.adjust;
    tbr.work_conserving_fallback = v.fallback;
    jobs.push_back(MixedRatesJob(tbr));
  }
  const std::vector<scenario::Results> results = RunSweepScenarios(jobs);

  std::printf("(a) demand diversity: greedy n1 + 2.1 Mbps-limited n2, both 11 Mbps\n");
  stats::Table demand({"variant", "n1 Mbps", "n2 Mbps", "total", "utilization"});
  size_t job = 0;
  for (const Variant& v : variants) {
    const scenario::Results& res = results[job++];
    demand.AddRow({v.name, stats::Table::Num(res.GoodputMbps(1)),
                   stats::Table::Num(res.GoodputMbps(2)),
                   stats::Table::Num(res.AggregateMbps()),
                   stats::Table::Num(res.utilization)});
  }
  demand.Print();

  std::printf("\n(b) saturated mixed rates: 1 Mbps vs 11 Mbps uplink TCP\n");
  stats::Table mixed({"variant", "airtime n1(slow)", "airtime n2(fast)", "total Mbps"});
  for (const Variant& v : variants) {
    const scenario::Results& res = results[job++];
    mixed.AddRow({v.name, stats::Table::Num(res.AirtimeShare(1)),
                  stats::Table::Num(res.AirtimeShare(2)),
                  stats::Table::Num(res.AggregateMbps())});
  }
  mixed.Print();
  std::printf("\nReading: with the fallback ON, the slow node's airtime reverts toward "
              "the unregulated ~0.86 - the AP queue usually holds only the throttled "
              "node's acks, so a packet-level fallback re-releases them.\n");
  PrintSweepFooter();
  return 0;
}
