// Ablation (paper 4.5): the bucket depth bucket_i bounds a node's burst and trades
// short-term fairness against regulation slack. Sweeps bucket depth on the 1vs11 downlink
// case and reports long-term airtime shares, aggregate throughput, and a short-term
// fairness proxy (how far 100 ms airtime windows deviate from 50/50).
#include "bench_common.h"

#include "tbf/trace/trace.h"

namespace {

using namespace tbf;

// Collects per-100ms airtime shares from exchange records.
class WindowedAirtime : public mac::MediumObserver {
 public:
  void OnExchange(const mac::ExchangeRecord& record) override {
    const auto w = static_cast<size_t>(record.busy_end / Ms(100));
    if (w >= windows_.size()) {
      windows_.resize(w + 1);
    }
    windows_[w][record.owner] += record.airtime;
  }

  // Mean |share(node1) - 0.5| over saturated windows.
  double ShortTermUnfairness(NodeId node) const {
    double sum = 0.0;
    int count = 0;
    for (const auto& w : windows_) {
      TimeNs total = 0;
      for (const auto& [id, t] : w) {
        total += t;
      }
      if (total < Ms(60)) {
        continue;  // Skip warmup/idle windows.
      }
      auto it = w.find(node);
      const double share = it == w.end() ? 0.0 : static_cast<double>(it->second) / total;
      sum += std::abs(share - 0.5);
      ++count;
    }
    return count > 0 ? sum / count : 0.0;
  }

 private:
  std::vector<std::map<NodeId, TimeNs>> windows_;
};

// A sweep job needing more than Results: the per-window observer rides inside the job
// and only its scalar summary comes back.
struct BucketOutcome {
  scenario::Results results;
  double short_term_unfairness = 0.0;
};

BucketOutcome RunBucketCase(TimeNs bucket) {
  scenario::ScenarioConfig config =
      tbf::bench::StandardConfig(scenario::QdiscKind::kTbr, Sec(20));
  config.tbr.bucket_depth = bucket;
  config.tbr.initial_tokens = bucket / 2;
  scenario::Wlan wlan(config);
  wlan.AddStation(1, phy::WifiRate::k1Mbps);
  wlan.AddStation(2, phy::WifiRate::k11Mbps);
  wlan.AddBulkTcp(1, scenario::Direction::kDownlink);
  wlan.AddBulkTcp(2, scenario::Direction::kDownlink);
  wlan.BuildNow();
  WindowedAirtime windows;
  wlan.medium()->AddObserver(&windows);
  BucketOutcome outcome;
  outcome.results = wlan.Run();
  outcome.short_term_unfairness = windows.ShortTermUnfairness(1);
  return outcome;
}

}  // namespace

int main() {
  using namespace tbf;
  using namespace tbf::bench;

  PrintHeader("Ablation - TBR bucket depth (burst bound) on 1vs11 downlink",
              "paper 4.5: larger buckets allow longer bursts and worse short-term "
              "fairness; long-term shares are unaffected");

  const TimeNs buckets[] = {Ms(5), Ms(20), Ms(50), Ms(200)};
  std::vector<std::function<BucketOutcome()>> jobs;
  for (TimeNs bucket : buckets) {
    jobs.push_back([bucket] { return RunBucketCase(bucket); });
  }
  const std::vector<BucketOutcome> outcomes = RunSweep(std::move(jobs));

  stats::Table table({"bucket", "airtime n1", "airtime n2", "total Mbps",
                      "short-term |share-0.5|", "utilization"});
  size_t job = 0;
  for (TimeNs bucket : buckets) {
    const BucketOutcome& out = outcomes[job++];
    table.AddRow({std::to_string(bucket / kNsPerMs) + "ms",
                  stats::Table::Num(out.results.AirtimeShare(1)),
                  stats::Table::Num(out.results.AirtimeShare(2)),
                  stats::Table::Num(out.results.AggregateMbps()),
                  stats::Table::Num(out.short_term_unfairness),
                  stats::Table::Num(out.results.utilization)});
  }
  table.Print();
  PrintSweepFooter();
  return 0;
}
