// Microbenchmarks (google-benchmark) for the hot paths: the simulator's event queue, the
// TBR token operations that run per frame at the AP, the DCF contention engine, and the
// analytic models. These bound TBR's per-packet CPU cost - the practical deployability
// argument (the paper ran it on a PIII-700 AP).
//
// The event-queue benchmarks measure the *steady state* (warm event pool, reused
// simulator), which is the regime every figure/table bench runs in after its first few
// simulated milliseconds. BM_EventQueueColdStart covers first-touch growth separately.
//
// Emit machine-readable results with:
//   ./micro_core --benchmark_out=BENCH_<tag>.json --benchmark_out_format=json
// (see bench/README.md for the comparison workflow).
#include <benchmark/benchmark.h>

#include <vector>

#if defined(__GLIBC__)
#include <malloc.h>
#endif

#include "tbf/core/tbr.h"
#include "tbf/mac/medium.h"
#include "tbf/model/fairness_model.h"
#include "tbf/model/task_model.h"
#include "tbf/net/packet.h"
#include "tbf/scenario/wlan.h"
#include "tbf/sim/simulator.h"

// The sweep-runner suite benchmark only exists once the sweep subsystem landed; this
// probe keeps the file buildable against the pre-sweep library for the BENCH_*.json
// baseline protocol (bench/README.md).
#if defined(__has_include)
#if __has_include("tbf/sweep/sweep_runner.h")
#define TBF_HAVE_SWEEP 1
#include "tbf/sweep/sweep_runner.h"
#endif
#endif

namespace {

using namespace tbf;

// Scenario benches construct and tear down a full Wlan per iteration; each teardown
// frees a multi-MB contiguous working set, which glibc's default trim policy hands back
// to the kernel only for the next iteration to page-fault in again (up to 2x wall on
// the many-station cells, pure allocator noise). Keep the peak working set resident -
// same policy as bench_common.h; MALLOC_TRIM_THRESHOLD_=-1 is the env equivalent for
// baseline binaries that predate this line.
const bool g_malloc_trim_disabled = [] {
#if defined(__GLIBC__)
  mallopt(M_TRIM_THRESHOLD, -1);
#endif
  return true;
}();

// Self-rescheduling chain with DCF-flavoured deltas (slots, IFS, frame airtimes at the
// 802.11b rates). Every fired event schedules its successor, so a run keeps a constant
// population of pending events - the simulator's real operating point.
struct ChurnChain {
  sim::Simulator* sim;
  int64_t* fired;
  int i = 0;

  void operator()() {
    static constexpr TimeNs kDeltas[] = {Us(20),   Us(10),  Us(50),    Us(310),
                                         Us(1091), Us(214), Us(12000), Us(2000)};
    ++*fired;
    const TimeNs delta = kDeltas[static_cast<size_t>(++i) & 7];
    sim->Schedule(delta, *this);
  }
};

void BM_EventQueueScheduleRun(benchmark::State& state) {
  sim::Simulator sim;
  int64_t fired = 0;
  for (int j = 0; j < 1000; ++j) {
    sim.Schedule(Us(j), ChurnChain{&sim, &fired, j});
  }
  sim.RunUntil(Ms(50));  // Warm the event pool and wheel.
  const int64_t warm = fired;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.RunUntil(sim.Now() + Ms(2)));
  }
  state.SetItemsProcessed(fired - warm);
}
BENCHMARK(BM_EventQueueScheduleRun);

void BM_EventQueueCancelHeavy(benchmark::State& state) {
  sim::Simulator sim;
  std::vector<sim::EventId> ids;
  ids.reserve(1000);
  for (auto _ : state) {
    ids.clear();
    for (int i = 0; i < 1000; ++i) {
      ids.push_back(sim.Schedule(Us(i), [] {}));
    }
    for (size_t i = 0; i < ids.size(); i += 2) {
      sim.Cancel(ids[i]);
    }
    benchmark::DoNotOptimize(sim.RunUntilIdle());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueCancelHeavy);

void BM_EventQueueColdStart(benchmark::State& state) {
  // First-touch cost: fresh simulator per iteration (slab/wheel growth included).
  for (auto _ : state) {
    sim::Simulator sim;
    for (int i = 0; i < 1000; ++i) {
      sim.Schedule(Us(i % 97), [] {});
    }
    benchmark::DoNotOptimize(sim.RunUntilIdle());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueColdStart);

net::PacketPtr MakePacket(net::PacketPool& pool, NodeId client) {
  net::PacketPtr p = pool.Allocate();
  p->wlan_client = client;
  p->dst = client;
  p->size_bytes = 1500;
  return p;
}

void BM_TbrEnqueueDequeue(benchmark::State& state) {
  const int clients = static_cast<int>(state.range(0));
  sim::Simulator sim;
  net::PacketPool pool;
  core::TimeBasedRegulator tbr(&sim, phy::MixedModeTimings(), {});
  for (NodeId id = 1; id <= clients; ++id) {
    tbr.OnAssociate(id);
  }
  NodeId next = 1;
  for (auto _ : state) {
    tbr.Enqueue(MakePacket(pool, next));
    next = next % clients + 1;
    benchmark::DoNotOptimize(tbr.Dequeue());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TbrEnqueueDequeue)->Arg(2)->Arg(8)->Arg(32);

// Steady-state pooled allocate/release churn with a live working set, the per-packet
// allocator cost every transport emission pays (vs the make_shared/atomic-refcount
// path this replaced). A 64-handle ring keeps slots cycling FIFO-ish through the
// freelist instead of ping-ponging one slot.
void BM_PacketPoolChurn(benchmark::State& state) {
  net::PacketPool pool;
  constexpr size_t kRing = 64;
  net::PacketPtr ring[kRing];
  size_t i = 0;
  for (auto _ : state) {
    ring[i & (kRing - 1)] = MakePacket(pool, static_cast<NodeId>(i & 255));
    benchmark::DoNotOptimize(ring[i & (kRing - 1)].get());
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PacketPoolChurn);

// The stock per-client AP qdisc at cell scale: dense slot lookup + intrusive FIFO
// push/pop, with the round-robin dequeue walk over N mostly-empty queues - the
// MACTXEVENT cost of the 256-station scenario without the MAC underneath.
void BM_QdiscEnqueueDequeue(benchmark::State& state) {
  const int clients = static_cast<int>(state.range(0));
  net::PacketPool pool;
  ap::RoundRobinQdisc qdisc(/*per_queue_limit=*/50);
  for (NodeId id = 1; id <= clients; ++id) {
    qdisc.OnAssociate(id);
  }
  NodeId next = 1;
  for (auto _ : state) {
    qdisc.Enqueue(MakePacket(pool, next));
    next = next % clients + 1;
    benchmark::DoNotOptimize(qdisc.Dequeue());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_QdiscEnqueueDequeue)->Arg(8)->Arg(256);

void BM_TbrOccupancyEstimate(benchmark::State& state) {
  sim::Simulator sim;
  core::TimeBasedRegulator tbr(&sim, phy::MixedModeTimings(), {});
  tbr.OnAssociate(1);
  tbr.OnAssociate(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tbr.EstimateOccupancy(1536, phy::WifiRate::k11Mbps, 1));
    benchmark::DoNotOptimize(tbr.EstimateOccupancy(1536, phy::WifiRate::k1Mbps, 2));
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_TbrOccupancyEstimate);

void BM_DcfSaturatedSecond(benchmark::State& state) {
  // Cost of simulating one second of a saturated two-station cell.
  for (auto _ : state) {
    scenario::ScenarioConfig config;
    config.warmup = 0;
    config.duration = Sec(1);
    scenario::Wlan wlan(config);
    wlan.AddStation(1, phy::WifiRate::k11Mbps);
    wlan.AddStation(2, phy::WifiRate::k11Mbps);
    wlan.AddBulkTcp(1, scenario::Direction::kUplink);
    wlan.AddBulkTcp(2, scenario::Direction::kUplink);
    benchmark::DoNotOptimize(wlan.Run().aggregate_bps);
  }
}
BENCHMARK(BM_DcfSaturatedSecond)->Unit(benchmark::kMillisecond);

void BM_TcpUplinkSecond(benchmark::State& state) {
  // TCP-timer-heavy workload: 8 saturated uplink TCP flows. Every returning ack re-arms
  // the sender's RTO and every data segment touches the receiver's delayed-ack timer,
  // so this bounds the cost of TCP timer management (lazy deadlines vs cancel/reschedule
  // churn into the timing wheel's overflow heap).
  for (auto _ : state) {
    scenario::ScenarioConfig config;
    config.warmup = 0;
    config.duration = Sec(1);
    scenario::Wlan wlan(config);
    for (NodeId id = 1; id <= 8; ++id) {
      wlan.AddStation(id, phy::WifiRate::k11Mbps);
      wlan.AddBulkTcp(id, scenario::Direction::kUplink);
    }
    benchmark::DoNotOptimize(wlan.Run().aggregate_bps);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TcpUplinkSecond)->Unit(benchmark::kMillisecond);

void BM_ManyStationCell(benchmark::State& state) {
  // Wall time per simulated second of a large TBR cell with mixed rates and saturated
  // downlink TCP to every station - the scenario-diversity scaling check. Reported
  // per-iteration time IS wall ms per simulated second (duration = 1 s).
  const int n = static_cast<int>(state.range(0));
  static constexpr phy::WifiRate kRates[] = {phy::WifiRate::k11Mbps, phy::WifiRate::k5_5Mbps,
                                             phy::WifiRate::k2Mbps, phy::WifiRate::k1Mbps};
  for (auto _ : state) {
    scenario::ScenarioConfig config;
    config.qdisc = scenario::QdiscKind::kTbr;
    config.warmup = 0;
    config.duration = Sec(1);
    scenario::Wlan wlan(config);
    for (NodeId id = 1; id <= n; ++id) {
      wlan.AddStation(id, kRates[static_cast<size_t>(id) & 3]);
      wlan.AddBulkTcp(id, scenario::Direction::kDownlink);
    }
    benchmark::DoNotOptimize(wlan.Run().aggregate_bps);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ManyStationCell)->Arg(64)->Arg(256)->Unit(benchmark::kMillisecond);

#ifdef TBF_HAVE_SWEEP
void BM_ScenarioSweep(benchmark::State& state) {
  // Wall-clock of a representative 8-scenario figure/table grid on an N-thread pool.
  // Arg(1) is the serial reference; the per-iteration real time IS the suite wall-clock
  // metric recorded in the BENCH_*.json trajectory.
  const int threads = static_cast<int>(state.range(0));
  static constexpr phy::WifiRate kPairRates[] = {
      phy::WifiRate::k1Mbps, phy::WifiRate::k2Mbps, phy::WifiRate::k5_5Mbps,
      phy::WifiRate::k11Mbps};
  std::vector<tbf::sweep::ScenarioJob> jobs;
  for (phy::WifiRate rate : kPairRates) {
    for (scenario::QdiscKind qdisc :
         {scenario::QdiscKind::kFifo, scenario::QdiscKind::kTbr}) {
      tbf::sweep::ScenarioJob job;
      job.config.qdisc = qdisc;
      job.config.warmup = 0;
      job.config.duration = Sec(1);
      for (NodeId id = 1; id <= 2; ++id) {
        scenario::StationSpec station;
        station.id = id;
        station.rate = id == 1 ? rate : phy::WifiRate::k11Mbps;
        job.stations.push_back(station);
        scenario::FlowSpec flow;
        flow.client = id;
        flow.direction = scenario::Direction::kUplink;
        flow.transport = scenario::Transport::kTcp;
        job.flows.push_back(flow);
      }
      jobs.push_back(std::move(job));
    }
  }
  tbf::sweep::SweepRunner runner(threads);
  for (auto _ : state) {
    benchmark::DoNotOptimize(runner.RunScenarios(jobs));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(jobs.size()));
}
BENCHMARK(BM_ScenarioSweep)->Arg(1)->Arg(2)->Arg(4)->UseRealTime()
    ->Unit(benchmark::kMillisecond);
#endif  // TBF_HAVE_SWEEP

void BM_FairnessModelAllocation(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<model::NodeModel> nodes;
  for (int i = 0; i < n; ++i) {
    nodes.push_back({1e6 + 1e5 * i, 1500.0, 1.0});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(model::ThroughputFairAllocation(nodes).total_bps);
    benchmark::DoNotOptimize(model::TimeFairAllocation(nodes).total_bps);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_FairnessModelAllocation)->Arg(4)->Arg(64);

void BM_TaskModel(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<model::Task> tasks;
  for (int i = 0; i < n; ++i) {
    tasks.push_back({1e6 + 2e5 * i, 1e6 + 1e5 * i, 1.0});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        model::RunTaskModel(tasks, model::FairnessNotion::kTimeFair).avg_task_time_sec);
  }
}
BENCHMARK(BM_TaskModel)->Arg(8)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
