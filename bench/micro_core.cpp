// Microbenchmarks (google-benchmark) for the hot paths: the simulator's event queue, the
// TBR token operations that run per frame at the AP, the DCF contention engine, and the
// analytic models. These bound TBR's per-packet CPU cost - the practical deployability
// argument (the paper ran it on a PIII-700 AP).
#include <benchmark/benchmark.h>

#include "tbf/core/tbr.h"
#include "tbf/mac/medium.h"
#include "tbf/model/fairness_model.h"
#include "tbf/model/task_model.h"
#include "tbf/net/packet.h"
#include "tbf/scenario/wlan.h"
#include "tbf/sim/simulator.h"

namespace {

using namespace tbf;

void BM_EventQueueScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    for (int i = 0; i < 1000; ++i) {
      sim.Schedule(Us(i % 97), [] {});
    }
    benchmark::DoNotOptimize(sim.RunUntilIdle());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueScheduleRun);

void BM_EventQueueCancelHeavy(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    std::vector<sim::EventId> ids;
    ids.reserve(1000);
    for (int i = 0; i < 1000; ++i) {
      ids.push_back(sim.Schedule(Us(i), [] {}));
    }
    for (size_t i = 0; i < ids.size(); i += 2) {
      sim.Cancel(ids[i]);
    }
    benchmark::DoNotOptimize(sim.RunUntilIdle());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueCancelHeavy);

net::PacketPtr MakePacket(NodeId client) {
  auto p = std::make_shared<net::Packet>();
  p->wlan_client = client;
  p->dst = client;
  p->size_bytes = 1500;
  return p;
}

void BM_TbrEnqueueDequeue(benchmark::State& state) {
  const int clients = static_cast<int>(state.range(0));
  sim::Simulator sim;
  core::TimeBasedRegulator tbr(&sim, phy::MixedModeTimings(), {});
  for (NodeId id = 1; id <= clients; ++id) {
    tbr.OnAssociate(id);
  }
  NodeId next = 1;
  for (auto _ : state) {
    tbr.Enqueue(MakePacket(next));
    next = next % clients + 1;
    benchmark::DoNotOptimize(tbr.Dequeue());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TbrEnqueueDequeue)->Arg(2)->Arg(8)->Arg(32);

void BM_TbrOccupancyEstimate(benchmark::State& state) {
  sim::Simulator sim;
  core::TimeBasedRegulator tbr(&sim, phy::MixedModeTimings(), {});
  tbr.OnAssociate(1);
  tbr.OnAssociate(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tbr.EstimateOccupancy(1536, phy::WifiRate::k11Mbps, 1));
    benchmark::DoNotOptimize(tbr.EstimateOccupancy(1536, phy::WifiRate::k1Mbps, 2));
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_TbrOccupancyEstimate);

void BM_DcfSaturatedSecond(benchmark::State& state) {
  // Cost of simulating one second of a saturated two-station cell.
  for (auto _ : state) {
    scenario::ScenarioConfig config;
    config.warmup = 0;
    config.duration = Sec(1);
    scenario::Wlan wlan(config);
    wlan.AddStation(1, phy::WifiRate::k11Mbps);
    wlan.AddStation(2, phy::WifiRate::k11Mbps);
    wlan.AddBulkTcp(1, scenario::Direction::kUplink);
    wlan.AddBulkTcp(2, scenario::Direction::kUplink);
    benchmark::DoNotOptimize(wlan.Run().aggregate_bps);
  }
}
BENCHMARK(BM_DcfSaturatedSecond)->Unit(benchmark::kMillisecond);

void BM_FairnessModelAllocation(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<model::NodeModel> nodes;
  for (int i = 0; i < n; ++i) {
    nodes.push_back({1e6 + 1e5 * i, 1500.0, 1.0});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(model::ThroughputFairAllocation(nodes).total_bps);
    benchmark::DoNotOptimize(model::TimeFairAllocation(nodes).total_bps);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_FairnessModelAllocation)->Arg(4)->Arg(64);

void BM_TaskModel(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<model::Task> tasks;
  for (int i = 0; i < n; ++i) {
    tasks.push_back({1e6 + 2e5 * i, 1e6 + 1e5 * i, 1.0});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        model::RunTaskModel(tasks, model::FairnessNotion::kTimeFair).avg_task_time_sec);
  }
}
BENCHMARK(BM_TaskModel)->Arg(8)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
