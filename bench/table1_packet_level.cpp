// Table 1, packet level: the task-model efficiency measures (AvgTaskTime /
// FinalTaskTime) regenerated from full-stack task-sequence scenarios instead of the
// fluid model, for both fairness notions. The fluid predictions from
// model::RunTaskModel are printed next to the measured times with their deltas - the
// acceptance bar is agreement within 10% on the equal-work configuration. A second
// grid runs 3-task back-to-back sequences per station, exercising the persistent-
// connection restart path under both notions.
#include "bench_common.h"

#include <cmath>

#include "tbf/model/baseline.h"
#include "tbf/model/task_model.h"

int main() {
  using namespace tbf;
  using namespace tbf::bench;

  PrintHeader("Table 1 (packet level) - task times from full-stack task sequences",
              "paper Table 1: FinalTaskTime invariant across notions for equal work; "
              "AvgTaskTime better under TF");

  const auto& betas = model::PaperTable2Baselines();
  const double beta1 = betas.at(phy::WifiRate::k1Mbps);
  const double beta11 = betas.at(phy::WifiRate::k11Mbps);

  const std::pair<scenario::QdiscKind, const char*> notions[] = {
      {scenario::QdiscKind::kFifo, "Exp-Normal(RF)"},
      {scenario::QdiscKind::kTbr, "Exp-TBR(TF)"},
  };

  // One job per notion per sequence length: the Table 1 single-task row plus a 3-task
  // back-to-back sequence that exercises the warm-connection restart path.
  constexpr int64_t kTaskBytes = 4'000'000;
  std::vector<sweep::ScenarioJob> jobs;
  for (const int tasks_per_station : {1, 3}) {
    for (const auto& [kind, name] : notions) {
      sweep::ScenarioJob job;
      job.config = StandardConfig(kind, Sec(400));
      job.config.warmup = 0;  // Task timing is measured from flow start.
      for (NodeId id = 1; id <= 2; ++id) {
        scenario::StationSpec station;
        station.id = id;
        station.rate = id == 1 ? phy::WifiRate::k1Mbps : phy::WifiRate::k11Mbps;
        job.stations.push_back(station);
        scenario::FlowSpec flow;
        flow.client = id;
        flow.direction = scenario::Direction::kUplink;
        flow.model = scenario::TrafficModel::kTaskSequence;
        flow.task_bytes = kTaskBytes;
        flow.task_count = tasks_per_station;
        job.flows.push_back(flow);
      }
      jobs.push_back(std::move(job));
    }
  }
  const std::vector<scenario::Results> results = RunSweepScenarios(jobs);

  // Fluid predictions for the equal-work row.
  const std::vector<model::Task> tasks = {{beta1, static_cast<double>(kTaskBytes), 1.0},
                                          {beta11, static_cast<double>(kTaskBytes), 1.0}};
  const model::TaskOutcome fluid_rf =
      model::RunTaskModel(tasks, model::FairnessNotion::kThroughputFair);
  const model::TaskOutcome fluid_tf =
      model::RunTaskModel(tasks, model::FairnessNotion::kTimeFair);

  std::printf("Equal work: one %lld-byte uplink TCP task per station (1 vs 11 Mbps).\n\n",
              static_cast<long long>(kTaskBytes));
  stats::Table table({"config", "measure", "fluid s", "packet s", "delta %"});
  size_t job_idx = 0;
  bool within_10pct = true;
  for (const auto& [kind, name] : notions) {
    const scenario::Results& res = results[job_idx++];
    const model::TaskOutcome& fluid =
        kind == scenario::QdiscKind::kFifo ? fluid_rf : fluid_tf;
    const struct {
      const char* measure;
      double fluid_s;
      double packet_s;
    } rows[] = {
        {"AvgTaskTime", fluid.avg_task_time_sec, res.avg_task_time_sec},
        {"FinalTaskTime", fluid.final_task_time_sec, res.final_task_time_sec},
    };
    for (const auto& row : rows) {
      const double delta = 100.0 * (row.packet_s / row.fluid_s - 1.0);
      within_10pct = within_10pct && std::abs(delta) <= 10.0;
      table.AddRow({name, row.measure, stats::Table::Num(row.fluid_s, 1),
                    stats::Table::Num(row.packet_s, 1), stats::Table::Num(delta, 1)});
    }
  }
  table.Print();
  std::printf("agreement: packet-level task times %s within 10%% of the fluid model\n",
              within_10pct ? "are" : "are NOT");

  std::printf("\n3-task sequences (persistent connection, back to back):\n");
  stats::Table seq({"config", "node", "t1 s", "t2 s", "t3 s", "AvgTaskTime", "FinalTaskTime"});
  for (const auto& [kind, name] : notions) {
    const scenario::Results& res = results[job_idx++];
    for (const auto& fr : res.flows) {
      std::vector<std::string> row = {name, std::to_string(fr.client)};
      for (size_t t = 0; t < 3; ++t) {
        row.push_back(t < fr.task_completions.size()
                          ? stats::Table::Num(ToSeconds(fr.task_completions[t]), 1)
                          : "-");
      }
      row.push_back(stats::Table::Num(res.avg_task_time_sec, 1));
      row.push_back(stats::Table::Num(res.final_task_time_sec, 1));
      seq.AddRow(row);
    }
  }
  seq.Print();
  PrintSweepFooter();
  return within_10pct ? 0 : 1;
}
