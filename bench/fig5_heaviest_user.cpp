// Figure 5: the fraction of throughput achieved by the heaviest user during busy
// (>4 Mbps) 1-second intervals at a residential-hall AP. Uses the synthetic Whittemore
// workload; the claim under test is that the heaviest user rarely saturates the channel
// alone, so congestion is a multi-user phenomenon and fairness policy matters.
#include <algorithm>

#include "bench_common.h"

#include "tbf/trace/generators.h"
#include "tbf/trace/trace.h"

int main() {
  using namespace tbf;
  using namespace tbf::bench;

  PrintHeader("Figure 5 - heaviest user's share of busy 1-second intervals",
              "paper Fig. 5: one user dominates total volume, yet in most busy intervals "
              "other users also move significant data (shares well below 100%)");

  sim::Rng rng(8);
  trace::ResidenceConfig config;
  const trace::TraceLog log = trace::GenerateResidenceTrace(config, rng);
  auto busy = trace::FindBusyIntervals(log, Sec(1), 4e6);
  const auto summary = trace::SummarizeHeaviestUser(busy);

  std::printf("trace: %.0f hours, %d users, %zu busy 1-second intervals\n",
              ToSeconds(config.duration) / 3600.0, config.users, busy.size());

  // Distribution of heaviest-user shares (the paper plots the raw scatter).
  std::vector<double> shares;
  shares.reserve(busy.size());
  for (const auto& bi : busy) {
    shares.push_back(bi.heaviest_share);
  }
  std::sort(shares.begin(), shares.end());
  auto pct = [&](double q) {
    if (shares.empty()) {
      return 0.0;
    }
    const auto idx = static_cast<size_t>(q * static_cast<double>(shares.size() - 1));
    return shares[idx] * 100.0;
  };

  stats::Table table({"percentile", "heaviest-user share %"});
  for (double q : {0.10, 0.25, 0.50, 0.75, 0.90, 1.0}) {
    table.AddRow({stats::Table::Num(q * 100.0, 0), stats::Table::Num(pct(q), 1)});
  }
  table.Print();

  std::printf("\nmean heaviest-user share: %.1f%%; intervals where one user moved >90%% "
              "of bytes: %.1f%%; mean concurrent users in busy intervals: %.2f\n",
              summary.mean_heaviest_share * 100.0,
              summary.solo_saturation_fraction * 100.0, summary.mean_distinct_users);
  return 0;
}
