// Campus scale bench: multi-AP buildings driven through the sharded conservative
// simulator (shard::CampusSim). Each row is one campus - N APs, each a full
// single-cell stack with mixed-rate stations and bulk TCP both ways - advanced in
// lock-step lookahead windows with per-shard pools. The table is deterministic by
// construction (bit-identical for any TBF_SHARD_THREADS, which CI enforces by diffing
// this binary's output across shard counts); wall-clock measurements ride on separate
// "[wall]"-prefixed lines so the determinism diff can exclude them.
//
// The paper's single-cell experiments stop at one AP; this is the scale-out direction:
// a building of cells whose only coupling is the wired backbone, exactly the shape the
// conservative lookahead protocol exploits. On a single-core container the sharded run
// shows ~1x wall-clock (the shards serialize); the bench exists to hold the
// determinism bar and to measure the win where cores exist.
#include "bench_common.h"

#include <chrono>
#include <cstdlib>

#include "tbf/shard/campus_sim.h"

namespace {

using namespace tbf;

scenario::BssSpec MakeBss(int stations) {
  scenario::BssSpec bss;
  for (NodeId id = 1; id <= stations; ++id) {
    scenario::StationSpec station;
    station.id = id;
    // Mixed rungs: the paper's rate-diversity precondition inside every cell.
    switch (id % 4) {
      case 0:
        station.rate = phy::WifiRate::k2Mbps;
        break;
      case 1:
        station.rate = phy::WifiRate::k5_5Mbps;
        break;
      default:
        station.rate = phy::WifiRate::k11Mbps;
        break;
    }
    bss.stations.push_back(station);
    scenario::FlowSpec flow;
    flow.client = id;
    flow.direction = id % 2 == 0 ? scenario::Direction::kDownlink
                                 : scenario::Direction::kUplink;
    flow.transport = scenario::Transport::kTcp;
    bss.flows.push_back(flow);
  }
  return bss;
}

struct CampusRow {
  const char* name;
  scenario::QdiscKind qdisc;
  int aps;
  int stations_per_ap;
};

}  // namespace

int main() {
  using namespace tbf;
  using namespace tbf::bench;

  PrintHeader("Campus scale - sharded multi-AP simulation, conservative lookahead",
              "scale-out of the paper's single-cell testbed: one BSS shard per AP, "
              "lock-step windows bounded by the backbone latency");

  std::vector<CampusRow> rows = {
      {"Exp-Normal(RF)", scenario::QdiscKind::kFifo, 4, 16},
      {"Exp-Normal(RF)", scenario::QdiscKind::kFifo, 16, 16},
      {"Exp-Normal(RF)", scenario::QdiscKind::kFifo, 64, 16},
      {"Exp-TBR(TF)", scenario::QdiscKind::kTbr, 16, 16},
  };
  // The 10k-station row costs minutes of single-core wall-clock; opt in explicitly
  // (CI and the determinism gate run the CI-sized rows only).
  if (const char* full = std::getenv("TBF_CAMPUS_FULL"); full != nullptr && full[0] == '1') {
    rows.push_back({"Exp-Normal(RF)", scenario::QdiscKind::kFifo, 64, 160});
  }

  stats::Table table({"config", "APs", "stas", "flows", "agg Mbps", "Mbps/cell",
                      "p95 queue ms", "windows", "xshard pkts", "drops"});
  double suite_wall_sec = 0.0;
  int shard_threads = 0;
  bool ok = true;

  for (const CampusRow& row : rows) {
    scenario::CampusConfig config;
    config.cell.qdisc = row.qdisc;
    config.cell.seed = 5;
    config.cell.warmup = Sec(1);
    config.cell.duration = Sec(2);

    shard::CampusSim campus(config);  // Thread count from TBF_SHARD_THREADS.
    for (int i = 0; i < row.aps; ++i) {
      campus.AddBss(MakeBss(row.stations_per_ap));
    }

    const auto start = std::chrono::steady_clock::now();
    const scenario::CampusResults results = campus.Run();
    const double wall_sec =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    suite_wall_sec += wall_sec;
    shard_threads = campus.thread_count();

    const int total_stations = row.aps * row.stations_per_ap;
    table.AddRow({row.name, std::to_string(row.aps), std::to_string(total_stations),
                  std::to_string(total_stations),
                  stats::Table::Num(results.aggregate_bps / 1e6, 2),
                  stats::Table::Num(results.aggregate_bps / 1e6 / row.aps, 2),
                  stats::Table::Num(results.ap_queue_delay.P95Ms(), 1),
                  std::to_string(results.windows),
                  std::to_string(results.cross_shard_packets),
                  std::to_string(results.backbone_drops)});
    std::printf("[wall] %s %dx%d: %.2f s wall, %d shard threads\n", row.name, row.aps,
                row.stations_per_ap, wall_sec, campus.thread_count());

    // Sanity gates for CI: every cell must carry traffic, and all of it must have
    // crossed the backbone (every flow's far end lives in the core shard).
    if (results.aggregate_bps <= 0.0 || results.cross_shard_packets <= 0) {
      ok = false;
    }
    for (const scenario::Results& cell : results.cells) {
      if (cell.aggregate_bps <= 0.0) {
        ok = false;
      }
    }
  }

  table.Print();

  std::printf("\nReading: aggregate goodput scales with AP count (cells only couple "
              "through the\nbackbone), per-cell goodput stays near the single-cell "
              "mark, and the window count\nis ceil(simulated time / lookahead) - the "
              "conservative horizon at work. The table\nis bit-identical for any "
              "TBF_SHARD_THREADS; only the [wall] lines move.\n");
  std::printf("\n[wall] campus suite: %zu campuses in %.2f s wall on %d shard threads\n",
              rows.size(), suite_wall_sec, shard_threads);

  if (!ok) {
    std::printf("FAIL: a campus cell carried no traffic or nothing crossed shards\n");
    return 1;
  }
  return 0;
}
