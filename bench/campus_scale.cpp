// Campus scale bench: multi-AP buildings driven through the sharded conservative
// simulator (shard::CampusSim). Each row is one campus - N APs, each a full
// single-cell stack with mixed-rate stations, bulk TCP uplink and task-sequence TCP
// downlink - advanced in lock-step lookahead windows with per-shard pools. The table
// and the "[series]" task-latency time series are deterministic by construction
// (bit-identical for any TBF_SHARD_THREADS, which CI enforces by diffing this binary's
// output across shard counts); wall-clock and memory measurements ride on separate
// "[wall]"-prefixed lines so the determinism diff can exclude them.
//
// Metrology runs in streaming mode by default (windowed series + sampled per-flow
// retention, stats::StatsEngine), which is what bounds readout memory at 64 APs and
// beyond. TBF_CAMPUS_EXACT=1 reverts to the legacy exact readout - the A/B knob
// BENCH_pr8.json uses to demonstrate the readout-memory win on the same build.
//
// The paper's single-cell experiments stop at one AP; this is the scale-out direction:
// a building of cells whose only coupling is the wired backbone, exactly the shape the
// conservative lookahead protocol exploits. On a single-core container the sharded run
// shows ~1x wall-clock (the shards serialize); the bench exists to hold the
// determinism bar and to measure the win where cores exist.
#include "bench_common.h"

#include <chrono>
#include <cstdlib>

#include "tbf/shard/campus_sim.h"

namespace {

using namespace tbf;

scenario::BssSpec MakeBss(int stations) {
  scenario::BssSpec bss;
  for (NodeId id = 1; id <= stations; ++id) {
    scenario::StationSpec station;
    station.id = id;
    // Mixed rungs: the paper's rate-diversity precondition inside every cell.
    switch (id % 4) {
      case 0:
        station.rate = phy::WifiRate::k2Mbps;
        break;
      case 1:
        station.rate = phy::WifiRate::k5_5Mbps;
        break;
      default:
        station.rate = phy::WifiRate::k11Mbps;
        break;
    }
    bss.stations.push_back(station);
    scenario::FlowSpec flow;
    flow.client = id;
    flow.direction = id % 2 == 0 ? scenario::Direction::kDownlink
                                 : scenario::Direction::kUplink;
    flow.transport = scenario::Transport::kTcp;
    if (flow.direction == scenario::Direction::kDownlink) {
      // Finite downloads instead of unbounded bulk: every completion feeds the
      // task-latency meter, so the windowed series below has real content.
      // Small enough to finish in well under a second on a congested shared cell
      // (per-flow throughput is a couple hundred kbit/s here), so completions land
      // in several 500 ms windows.
      flow.model = scenario::TrafficModel::kTaskSequence;
      flow.task_bytes = 12 * 1024;
      flow.task_count = 64;
      flow.task_gap = Ms(50);
    }
    bss.flows.push_back(flow);
  }
  return bss;
}

struct CampusRow {
  const char* name;
  scenario::QdiscKind qdisc;
  int aps;
  int stations_per_ap;
};

void PrintTaskLatencySeries(const CampusRow& row,
                            const stats::MeterSeries& series) {
  // Deterministic per-window percentile lines - part of the CI determinism diff.
  for (const stats::WindowStat& ws : series.windows) {
    std::printf("[series] %s %dx%d task_latency t=%.1fs n=%lld p50=%.2fms "
                "p95=%.2fms p99=%.2fms\n",
                row.name, row.aps, row.stations_per_ap, ToSeconds(ws.start),
                static_cast<long long>(ws.count), ToMillis(ws.p50), ToMillis(ws.p95),
                ToMillis(ws.p99));
  }
}

}  // namespace

int main() {
  using namespace tbf;
  using namespace tbf::bench;

  const char* exact_env = std::getenv("TBF_CAMPUS_EXACT");
  const bool exact = exact_env != nullptr && exact_env[0] == '1';

  PrintHeader("Campus scale - sharded multi-AP simulation, conservative lookahead",
              "scale-out of the paper's single-cell testbed: one BSS shard per AP, "
              "lock-step windows bounded by the backbone latency");
  std::printf("metrology: %s\n\n",
              exact ? "exact (legacy readout, TBF_CAMPUS_EXACT=1)"
                    : "streaming (500 ms windows, top-4 + 1-in-32 sampled retention)");

  std::vector<CampusRow> rows = {
      {"Exp-Normal(RF)", scenario::QdiscKind::kFifo, 4, 16},
      {"Exp-Normal(RF)", scenario::QdiscKind::kFifo, 16, 16},
      {"Exp-Normal(RF)", scenario::QdiscKind::kFifo, 64, 16},
      {"Exp-TBR(TF)", scenario::QdiscKind::kTbr, 16, 16},
  };
  // The 10k-station row costs minutes of single-core wall-clock; opt in explicitly
  // (CI and the determinism gate run the CI-sized rows only).
  if (const char* full = std::getenv("TBF_CAMPUS_FULL"); full != nullptr && full[0] == '1') {
    rows.push_back({"Exp-Normal(RF)", scenario::QdiscKind::kFifo, 64, 160});
  }

  stats::Table table({"config", "APs", "stas", "flows", "agg Mbps", "Mbps/cell",
                      "p95 queue ms", "p95 task ms", "windows", "xshard pkts", "drops"});
  double suite_wall_sec = 0.0;
  int shard_threads = 0;
  bool ok = true;

  for (const CampusRow& row : rows) {
    scenario::CampusConfig config;
    config.cell.qdisc = row.qdisc;
    config.cell.seed = 5;
    config.cell.warmup = Sec(1);
    config.cell.duration = Sec(2);
    if (!exact) {
      config.cell.stats.window = Ms(500);
      config.cell.stats.top_k = 4;
      config.cell.stats.sample_every = 32;
    }

    shard::CampusSim campus(config);  // Thread count from TBF_SHARD_THREADS.
    for (int i = 0; i < row.aps; ++i) {
      campus.AddBss(MakeBss(row.stations_per_ap));
    }

    const auto start = std::chrono::steady_clock::now();
    const scenario::CampusResults results = campus.Run();
    const double wall_sec =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    suite_wall_sec += wall_sec;
    shard_threads = campus.thread_count();

    const int total_stations = row.aps * row.stations_per_ap;
    table.AddRow({row.name, std::to_string(row.aps), std::to_string(total_stations),
                  std::to_string(total_stations),
                  stats::Table::Num(results.aggregate_bps / 1e6, 2),
                  stats::Table::Num(results.aggregate_bps / 1e6 / row.aps, 2),
                  stats::Table::Num(results.ap_queue_delay.P95Ms(), 1),
                  stats::Table::Num(results.task_latency.P95Ms(), 1),
                  std::to_string(results.windows),
                  std::to_string(results.cross_shard_packets),
                  std::to_string(results.backbone_drops)});
    PrintTaskLatencySeries(row, results.task_latency_series);
    std::printf("[wall] %s %dx%d: %.2f s wall, %d shard threads, metrology %.1f KB, "
                "peak rss %.1f MB\n",
                row.name, row.aps, row.stations_per_ap, wall_sec,
                campus.thread_count(), campus.MetrologyBytes() / 1024.0,
                PeakRssBytes() / (1024.0 * 1024.0));

    // Sanity gates for CI: every cell must carry traffic, all of it must have crossed
    // the backbone (every flow's far end lives in the core shard), tasks must have
    // completed, and in streaming mode the windowed series must be live.
    if (results.aggregate_bps <= 0.0 || results.cross_shard_packets <= 0 ||
        results.tasks_completed <= 0) {
      ok = false;
    }
    if (!exact && results.task_latency_series.windows.empty()) {
      ok = false;
    }
    for (const scenario::Results& cell : results.cells) {
      if (cell.aggregate_bps <= 0.0) {
        ok = false;
      }
    }
  }

  table.Print();

  std::printf("\nReading: aggregate goodput scales with AP count (cells only couple "
              "through the\nbackbone), per-cell goodput stays near the single-cell "
              "mark, and the window count\nis ceil(simulated time / lookahead) - the "
              "conservative horizon at work. The table\nand [series] lines are "
              "bit-identical for any TBF_SHARD_THREADS; only the [wall]\nlines move.\n");
  std::printf("\n[wall] campus suite: %zu campuses in %.2f s wall on %d shard threads, "
              "peak rss %.1f MB\n",
              rows.size(), suite_wall_sec, shard_threads,
              PeakRssBytes() / (1024.0 * 1024.0));

  if (!ok) {
    std::printf("FAIL: a campus cell carried no traffic, no tasks completed, nothing "
                "crossed shards, or the windowed series is empty\n");
    return 1;
  }
  return 0;
}
