// Fig 6 (workload extension): web-era on/off traffic in a mixed-rate cell, RF vs TF.
// Each station runs an endless on/off web source - Pareto-sized downloads separated by
// exponential think times, the same distributions the synthetic traces are generated
// from - instead of a saturated bulk flow. The paper's argument (Section 2.1, Table 1)
// is that time-based fairness pays off exactly here: short transfers on fast nodes stop
// queueing behind slow-node airtime, so their download times collapse while slow nodes
// keep close to their single-rate baseline.
#include "bench_common.h"

#include <algorithm>

int main() {
  using namespace tbf;
  using namespace tbf::bench;

  PrintHeader("Fig 6 - web on/off workload, mixed-rate cell, RF vs TF",
              "workload axis of paper Table 1/Fig. 5: bursty web-era transfers, "
              "time-based fairness cuts fast nodes' download times");

  // Eight web users: five near the AP at 11 Mbps, three degraded (5.5 / 2 / 1 Mbps).
  const phy::WifiRate station_rates[] = {
      phy::WifiRate::k11Mbps, phy::WifiRate::k11Mbps, phy::WifiRate::k11Mbps,
      phy::WifiRate::k11Mbps, phy::WifiRate::k11Mbps, phy::WifiRate::k5_5Mbps,
      phy::WifiRate::k2Mbps,  phy::WifiRate::k1Mbps,
  };
  const std::pair<scenario::QdiscKind, const char*> notions[] = {
      {scenario::QdiscKind::kFifo, "Exp-Normal(RF)"},
      {scenario::QdiscKind::kTbr, "Exp-TBR(TF)"},
      // Adaptive time-share contenders (docs/schedulers.md): bursty web traffic is
      // where the stock regulator's 1/N cold-start tax bites, so this workload is the
      // family's aggregate-throughput gate. Appended to keep the stock rows
      // byte-comparable with earlier captures.
      {scenario::QdiscKind::kTbrBurstCredit, "Exp-TBR-burst"},
      {scenario::QdiscKind::kTbrFastEwma, "Exp-TBR-fast"},
      {scenario::QdiscKind::kTbrCreditHybrid, "Exp-TBR-hybrid"},
  };
  constexpr uint64_t kSeeds[] = {1, 2};

  std::vector<sweep::ScenarioJob> jobs;
  for (const auto& [kind, name] : notions) {
    for (const uint64_t seed : kSeeds) {
      sweep::ScenarioJob job;
      job.config = StandardConfig(kind, Sec(150));
      job.config.warmup = 0;  // Download times are measured per task, not windowed.
      job.config.seed = seed;
      NodeId id = 1;
      for (const phy::WifiRate rate : station_rates) {
        scenario::StationSpec station;
        station.id = id;
        station.rate = rate;
        job.stations.push_back(station);
        scenario::FlowSpec flow;
        flow.client = id;
        flow.direction = scenario::Direction::kDownlink;
        flow.model = scenario::TrafficModel::kOnOffWeb;
        flow.onoff.mean_flow_bytes = 256.0 * 1024.0;  // Web-era transfer sizes.
        flow.onoff.pareto_alpha = 1.3;
        flow.onoff.mean_think_sec = 5.0;
        job.flows.push_back(flow);
        ++id;
      }
      jobs.push_back(std::move(job));
    }
  }
  const std::vector<scenario::Results> results = RunSweepScenarios(jobs);

  stats::Table table({"config", "tasks done", "mean dl s (11M)", "mean dl s (slow)",
                      "p95 dl s (11M)", "aggregate Mbps"});
  size_t job_idx = 0;
  for (const auto& [kind, name] : notions) {
    // Pool the per-seed runs (each seed is a different arrival pattern).
    int64_t tasks = 0;
    double aggregate = 0.0;
    std::vector<double> fast_dl, slow_dl;
    for (size_t s = 0; s < std::size(kSeeds); ++s) {
      const scenario::Results& res = results[job_idx++];
      tasks += res.tasks_completed;
      aggregate += res.AggregateMbps();
      for (const auto& fr : res.flows) {
        const bool fast = station_rates[fr.client - 1] == phy::WifiRate::k11Mbps;
        for (const TimeNs d : fr.task_durations) {
          (fast ? fast_dl : slow_dl).push_back(ToSeconds(d));
        }
      }
    }
    auto mean = [](const std::vector<double>& v) {
      double sum = 0.0;
      for (const double x : v) {
        sum += x;
      }
      return v.empty() ? 0.0 : sum / static_cast<double>(v.size());
    };
    std::sort(fast_dl.begin(), fast_dl.end());
    const double p95 =
        fast_dl.empty() ? 0.0 : fast_dl[fast_dl.size() * 95 / 100];
    table.AddRow({name, std::to_string(tasks / static_cast<int64_t>(std::size(kSeeds))),
                  stats::Table::Num(mean(fast_dl), 2), stats::Table::Num(mean(slow_dl), 2),
                  stats::Table::Num(p95, 2),
                  stats::Table::Num(aggregate / std::size(kSeeds), 2)});
  }
  table.Print();
  std::printf("\nReading: under RF every web download on a fast node queues behind "
              "slow-node airtime;\nunder TF the 11 Mbps users' download times drop while "
              "slow users stay near their\nsingle-rate baseline - the Table 1 "
              "AvgTaskTime win replayed with bursty traffic.\n");
  PrintSweepFooter();
  return 0;
}
