// Table 3: four nodes at 1, 2, 11, 11 Mbps under RF and TF - the analytic predictions from
// the paper's Table 2 betas (digit-for-digit), cross-checked against a live four-node
// simulation with FIFO (RF) and TBR (TF) APs.
#include "bench_common.h"

#include "tbf/model/baseline.h"
#include "tbf/model/fairness_model.h"

int main() {
  using namespace tbf;
  using namespace tbf::bench;

  PrintHeader("Table 3 - four nodes (1, 2, 11, 11 Mbps): RF vs TF",
              "paper Table 3: RF 0.436 each, total 1.742; TF 0.202/0.373/1.30/1.30, total "
              "3.175 (+82%)");

  const auto& betas = model::PaperTable2Baselines();
  const phy::WifiRate rates[] = {phy::WifiRate::k1Mbps, phy::WifiRate::k2Mbps,
                                 phy::WifiRate::k11Mbps, phy::WifiRate::k11Mbps};

  std::vector<model::NodeModel> nodes;
  for (phy::WifiRate r : rates) {
    nodes.push_back({betas.at(r), 1500.0, 1.0});
  }
  const model::Allocation rf = model::ThroughputFairAllocation(nodes);
  const model::Allocation tf = model::TimeFairAllocation(nodes);

  stats::Table analytic({"notion", "R(n1,1M)", "R(n2,2M)", "R(n3,11M)", "R(n4,11M)",
                         "total"});
  auto row = [&](const char* name, const model::Allocation& a) {
    analytic.AddRow({name, stats::Table::Num(a.throughput_bps[0] / 1e6),
                     stats::Table::Num(a.throughput_bps[1] / 1e6),
                     stats::Table::Num(a.throughput_bps[2] / 1e6),
                     stats::Table::Num(a.throughput_bps[3] / 1e6),
                     stats::Table::Num(a.total_bps / 1e6)});
  };
  std::printf("Analytic (from the paper's Table 2 betas):\n");
  row("RF (Eq6)", rf);
  row("TF (Eq12)", tf);
  analytic.Print();
  std::printf("TF/RF aggregate gain: %s (paper: +82%%)\n\n",
              stats::Table::PercentDelta(model::TimeFairGain(nodes)).c_str());

  std::printf("Live simulation (downlink TCP, FIFO = RF vs TBR = TF):\n");
  stats::Table sim({"notion", "R(n1,1M)", "R(n2,2M)", "R(n3,11M)", "R(n4,11M)", "total"});
  for (const auto& [kind, name] : {std::pair{scenario::QdiscKind::kFifo, "Exp-Normal"},
                                   std::pair{scenario::QdiscKind::kTbr, "Exp-TBR"}}) {
    scenario::Wlan wlan(StandardConfig(kind));
    for (NodeId id = 1; id <= 4; ++id) {
      wlan.AddStation(id, rates[id - 1]);
      wlan.AddBulkTcp(id, scenario::Direction::kDownlink);
    }
    const scenario::Results res = wlan.Run();
    sim.AddRow({name, stats::Table::Num(res.GoodputMbps(1)),
                stats::Table::Num(res.GoodputMbps(2)), stats::Table::Num(res.GoodputMbps(3)),
                stats::Table::Num(res.GoodputMbps(4)),
                stats::Table::Num(res.AggregateMbps())});
  }
  sim.Print();
  return 0;
}
