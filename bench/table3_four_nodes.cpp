// Table 3: four nodes at 1, 2, 11, 11 Mbps under RF and TF - the analytic predictions from
// the paper's Table 2 betas (digit-for-digit), cross-checked against a live four-node
// simulation with FIFO (RF) and TBR (TF) APs.
#include "bench_common.h"

#include "tbf/model/baseline.h"
#include "tbf/model/fairness_model.h"

int main() {
  using namespace tbf;
  using namespace tbf::bench;

  PrintHeader("Table 3 - four nodes (1, 2, 11, 11 Mbps): RF vs TF",
              "paper Table 3: RF 0.436 each, total 1.742; TF 0.202/0.373/1.30/1.30, total "
              "3.175 (+82%)");

  const auto& betas = model::PaperTable2Baselines();
  const phy::WifiRate rates[] = {phy::WifiRate::k1Mbps, phy::WifiRate::k2Mbps,
                                 phy::WifiRate::k11Mbps, phy::WifiRate::k11Mbps};
  const std::pair<scenario::QdiscKind, const char*> notions[] = {
      {scenario::QdiscKind::kFifo, "Exp-Normal"},
      {scenario::QdiscKind::kTbr, "Exp-TBR"},
  };

  // The live FIFO/TBR pair runs as one sweep (both qdiscs in parallel).
  std::vector<sweep::ScenarioJob> jobs;
  for (const auto& [kind, name] : notions) {
    sweep::ScenarioJob job;
    job.config = StandardConfig(kind);
    for (NodeId id = 1; id <= 4; ++id) {
      scenario::StationSpec station;
      station.id = id;
      station.rate = rates[id - 1];
      job.stations.push_back(station);
      scenario::FlowSpec flow;
      flow.client = id;
      flow.direction = scenario::Direction::kDownlink;
      flow.transport = scenario::Transport::kTcp;
      job.flows.push_back(flow);
    }
    jobs.push_back(std::move(job));
  }

  std::vector<model::NodeModel> nodes;
  for (phy::WifiRate r : rates) {
    nodes.push_back({betas.at(r), 1500.0, 1.0});
  }
  const model::Allocation rf = model::ThroughputFairAllocation(nodes);
  const model::Allocation tf = model::TimeFairAllocation(nodes);

  stats::Table analytic({"notion", "R(n1,1M)", "R(n2,2M)", "R(n3,11M)", "R(n4,11M)",
                         "total"});
  auto row = [&](const char* name, const model::Allocation& a) {
    analytic.AddRow({name, stats::Table::Num(a.throughput_bps[0] / 1e6),
                     stats::Table::Num(a.throughput_bps[1] / 1e6),
                     stats::Table::Num(a.throughput_bps[2] / 1e6),
                     stats::Table::Num(a.throughput_bps[3] / 1e6),
                     stats::Table::Num(a.total_bps / 1e6)});
  };
  std::printf("Analytic (from the paper's Table 2 betas):\n");
  row("RF (Eq6)", rf);
  row("TF (Eq12)", tf);
  analytic.Print();
  std::printf("TF/RF aggregate gain: %s (paper: +82%%)\n\n",
              stats::Table::PercentDelta(model::TimeFairGain(nodes)).c_str());

  const std::vector<scenario::Results> results = RunSweepScenarios(jobs);
  std::printf("Live simulation (downlink TCP, FIFO = RF vs TBR = TF):\n");
  stats::Table sim({"notion", "R(n1,1M)", "R(n2,2M)", "R(n3,11M)", "R(n4,11M)", "total"});
  size_t job = 0;
  for (const auto& [kind, name] : notions) {
    const scenario::Results& res = results[job++];
    sim.AddRow({name, stats::Table::Num(res.GoodputMbps(1)),
                stats::Table::Num(res.GoodputMbps(2)), stats::Table::Num(res.GoodputMbps(3)),
                stats::Table::Num(res.GoodputMbps(4)),
                stats::Table::Num(res.AggregateMbps())});
  }
  sim.Print();
  PrintSweepFooter();
  return 0;
}
