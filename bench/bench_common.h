// Shared helpers for the reproduction benches. Each bench binary regenerates one table or
// figure from the paper and prints paper-reference values next to measured ones where the
// paper reports them.
#ifndef TBF_BENCH_BENCH_COMMON_H_
#define TBF_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <string>

#include "tbf/scenario/wlan.h"
#include "tbf/stats/table.h"

namespace tbf::bench {

inline scenario::ScenarioConfig StandardConfig(scenario::QdiscKind qdisc,
                                               TimeNs duration = Sec(30)) {
  scenario::ScenarioConfig config;
  config.qdisc = qdisc;
  config.warmup = Sec(3);
  config.duration = duration;
  return config;
}

// Two stations with one bulk TCP flow each in `dir`.
inline scenario::Results RunTcpPair(scenario::QdiscKind qdisc, phy::WifiRate r1,
                                    phy::WifiRate r2, scenario::Direction dir,
                                    TimeNs duration = Sec(30)) {
  scenario::Wlan wlan(StandardConfig(qdisc, duration));
  wlan.AddStation(1, r1);
  wlan.AddStation(2, r2);
  wlan.AddBulkTcp(1, dir);
  wlan.AddBulkTcp(2, dir);
  return wlan.Run();
}

inline std::string PairName(phy::WifiRate r1, phy::WifiRate r2) {
  std::string name(phy::RateName(r1));
  name = name.substr(0, name.size() - 4);  // Strip "Mbps".
  std::string other(phy::RateName(r2));
  other = other.substr(0, other.size() - 4);
  return name + "vs" + other;
}

inline void PrintHeader(const char* title, const char* paper_ref) {
  std::printf("\n=== %s ===\n", title);
  std::printf("Reproduces: %s\n\n", paper_ref);
}

}  // namespace tbf::bench

#endif  // TBF_BENCH_BENCH_COMMON_H_
