// Shared helpers for the reproduction benches. Each bench binary regenerates one table or
// figure from the paper and prints paper-reference values next to measured ones where the
// paper reports them.
//
// Scenario grids are declared as sweep jobs and executed on the shared SweepRunner
// (thread count from TBF_SWEEP_THREADS, default: hardware concurrency), so a bench's
// wall-clock is the longest single scenario instead of the sum. Results come back in
// submission order and are bit-identical to a serial run, so tables are deterministic.
#ifndef TBF_BENCH_BENCH_COMMON_H_
#define TBF_BENCH_BENCH_COMMON_H_

#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#if defined(__GLIBC__)
#include <malloc.h>
#endif
#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "tbf/scenario/wlan.h"
#include "tbf/stats/table.h"
#include "tbf/sweep/sweep_runner.h"

namespace tbf::bench {

// Bench processes run thousands of scenario lifecycles back to back, and each teardown
// frees a multi-megabyte working set (packet pool slabs, event slab, sketches) in one
// contiguous block at the top of the heap. glibc's default trim policy then returns
// those pages to the kernel and the very next scenario page-faults them all back in -
// a 1.5-2x wall-clock tax on the scenario benches that has nothing to do with
// simulation cost. Keep the peak working set resident instead (the equivalent
// environment knob is MALLOC_TRIM_THRESHOLD_=-1, used when measuring baseline builds
// that predate this header).
inline const bool g_malloc_trim_disabled = [] {
#if defined(__GLIBC__)
  mallopt(M_TRIM_THRESHOLD, -1);
#endif
  return true;
}();

inline scenario::ScenarioConfig StandardConfig(scenario::QdiscKind qdisc,
                                               TimeNs duration = Sec(30)) {
  scenario::ScenarioConfig config;
  config.qdisc = qdisc;
  config.warmup = Sec(3);
  config.duration = duration;
  return config;
}

// One pool per bench process, shared by every sweep in the binary.
inline sweep::SweepRunner& SharedRunner() {
  static sweep::SweepRunner runner;
  return runner;
}

namespace internal {
inline double g_sweep_wall_sec = 0.0;
inline size_t g_sweep_jobs = 0;
}  // namespace internal

// Runs a batch of arbitrary jobs on the shared pool; results in submission order.
// Accumulates the suite wall-clock metric printed by PrintSweepFooter.
template <typename T>
std::vector<T> RunSweep(std::vector<std::function<T()>> jobs) {
  const auto start = std::chrono::steady_clock::now();
  std::vector<T> results = SharedRunner().Map(std::move(jobs));
  internal::g_sweep_wall_sec +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  internal::g_sweep_jobs += results.size();
  return results;
}

// Declarative form for plain scenario grids; delegates to RunSweep so the suite
// wall-clock accounting lives in one place.
inline std::vector<scenario::Results> RunSweepScenarios(
    const std::vector<sweep::ScenarioJob>& jobs) {
  std::vector<std::function<scenario::Results()>> fns;
  fns.reserve(jobs.size());
  for (const sweep::ScenarioJob& job : jobs) {
    fns.push_back([&job] { return sweep::RunScenarioJob(job); });
  }
  return RunSweep(std::move(fns));
}

// Suite wall-clock metric: total scenarios executed and the wall time the sweeps took
// on this pool. Print once at the end of main().
inline void PrintSweepFooter() {
  std::printf("\n[sweep] %zu scenarios in %.2f s wall on %d threads\n",
              internal::g_sweep_jobs, internal::g_sweep_wall_sec,
              SharedRunner().thread_count());
}

// Two stations with one bulk TCP flow each in `dir`, as a declarative sweep job.
inline sweep::ScenarioJob TcpPairJob(scenario::QdiscKind qdisc, phy::WifiRate r1,
                                     phy::WifiRate r2, scenario::Direction dir,
                                     TimeNs duration = Sec(30)) {
  sweep::ScenarioJob job;
  job.config = StandardConfig(qdisc, duration);
  scenario::StationSpec s1;
  s1.id = 1;
  s1.rate = r1;
  job.stations.push_back(s1);
  scenario::StationSpec s2;
  s2.id = 2;
  s2.rate = r2;
  job.stations.push_back(s2);
  for (NodeId id = 1; id <= 2; ++id) {
    scenario::FlowSpec flow;
    flow.client = id;
    flow.direction = dir;
    flow.transport = scenario::Transport::kTcp;
    job.flows.push_back(flow);
  }
  return job;
}

// Immediate-mode variant kept for single-scenario call sites and tests.
inline scenario::Results RunTcpPair(scenario::QdiscKind qdisc, phy::WifiRate r1,
                                    phy::WifiRate r2, scenario::Direction dir,
                                    TimeNs duration = Sec(30)) {
  return sweep::RunScenarioJob(TcpPairJob(qdisc, r1, r2, dir, duration));
}

inline std::string PairName(phy::WifiRate r1, phy::WifiRate r2) {
  std::string name(phy::RateName(r1));
  name = name.substr(0, name.size() - 4);  // Strip "Mbps".
  std::string other(phy::RateName(r2));
  other = other.substr(0, other.size() - 4);
  return name + "vs" + other;
}

inline void PrintHeader(const char* title, const char* paper_ref) {
  std::printf("\n=== %s ===\n", title);
  std::printf("Reproduces: %s\n\n", paper_ref);
}

// High-water resident set of this process, in bytes (0 where unsupported). Printed on
// "[wall]"-style lines so memory never enters the determinism diff - RSS depends on
// thread count and allocator behavior, not on simulation results.
inline size_t PeakRssBytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage ru {};
  if (getrusage(RUSAGE_SELF, &ru) != 0) {
    return 0;
  }
#if defined(__APPLE__)
  return static_cast<size_t>(ru.ru_maxrss);  // Bytes on macOS.
#else
  return static_cast<size_t>(ru.ru_maxrss) * 1024;  // KB on Linux.
#endif
#else
  return 0;
#endif
}

}  // namespace tbf::bench

#endif  // TBF_BENCH_BENCH_COMMON_H_
