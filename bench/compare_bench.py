#!/usr/bin/env python3
"""Merge two google-benchmark JSON outputs into the repo's BENCH_*.json trajectory format.

Usage:
    ./micro_core --benchmark_out=baseline.json --benchmark_out_format=json  # old build
    ./micro_core --benchmark_out=after.json --benchmark_out_format=json     # new build
    python3 bench/compare_bench.py --baseline baseline.json --after after.json \
        --tag pr1 --out BENCH_pr1.json

With only --after, emits the measurement without speedup fields (trajectory snapshot).
Schema: see bench/README.md ("tbf-bench-v1").

Scenario sections: --scenarios scenarios.json embeds the given JSON document verbatim
under the output's "scenarios" key - the headline numbers of scenario-level benches
(fig6, table1_packet_level, trace_replay) ride along with the micro trajectory, so one
BENCH_*.json carries both views of a PR.

Gate mode: --gate-against BENCH_prN.json [--max-regression 2.0] additionally compares
this run's times against a committed trajectory file and exits non-zero when any common
benchmark regressed by more than the factor. When both this run (via --scenarios) and
the reference carry a "scenarios" section, numeric keys ending in _bytes or _kb are
ratio-checked the same way - readout-memory budgets (bench_campus_scale's metrology
numbers) gate alongside times. The tolerance is deliberately loose (2x by default): CI
runners differ from the machines that produced the trajectory, so the gate only catches
perf rot, not noise.
"""
import argparse
import json
import sys


def load_medians(path):
    """Returns {benchmark_name: {...}} using *_median aggregates when present, else the
    plain entry (single-repetition runs)."""
    with open(path) as f:
        doc = json.load(f)
    out = {}
    for b in doc.get("benchmarks", []):
        if b.get("run_type") == "aggregate" and b.get("aggregate_name") != "median":
            continue
        name = b.get("run_name", b["name"])
        entry = {
            "real_time_ns": b["real_time"] * _to_ns(b.get("time_unit", "ns")),
            "cpu_time_ns": b["cpu_time"] * _to_ns(b.get("time_unit", "ns")),
        }
        if "items_per_second" in b:
            entry["items_per_second"] = b["items_per_second"]
        # Plain entries must not clobber a median aggregate already recorded.
        if b.get("run_type") == "aggregate" or name not in out:
            out[name] = entry
    return out, doc.get("context", {})


def _to_ns(unit):
    return {"ns": 1, "us": 1e3, "ms": 1e6, "s": 1e9}[unit]


def _memory_keys(doc, prefix=""):
    """Yields (dotted_path, value) for numeric scenario keys that carry memory
    measurements - keys ending in _bytes or _kb, however deep they sit."""
    if isinstance(doc, dict):
        for key, value in sorted(doc.items()):
            path = f"{prefix}.{key}" if prefix else key
            if isinstance(value, (int, float)) and not isinstance(value, bool) \
                    and (key.endswith("_bytes") or key.endswith("_kb")):
                yield path, value
            else:
                yield from _memory_keys(value, path)
    elif isinstance(doc, list):
        for i, value in enumerate(doc):
            yield from _memory_keys(value, f"{prefix}[{i}]")


def gate(benchmarks, scenarios, gate_path, max_regression):
    """Compares `after` times (and scenario memory keys, when both sides carry a
    scenarios section) against a committed trajectory file; returns the list of
    (name, ratio) entries exceeding max_regression."""
    with open(gate_path) as f:
        reference = json.load(f)
    ref_benchmarks = reference.get("benchmarks", {})
    offenders = []
    checked = 0
    for name, row in sorted(benchmarks.items()):
        ref = ref_benchmarks.get(name)
        if ref is None or "after" not in ref:
            continue
        ref_ns = ref["after"].get("real_time_ns", 0)
        cur_ns = row["after"].get("real_time_ns", 0)
        if ref_ns <= 0 or cur_ns <= 0:
            continue
        checked += 1
        ratio = cur_ns / ref_ns
        marker = " <-- REGRESSION" if ratio > max_regression else ""
        print(f"  gate {name}: {cur_ns:.0f} ns vs {ref_ns:.0f} ns "
              f"(x{ratio:.2f}){marker}")
        if ratio > max_regression:
            offenders.append((name, ratio))
    # Memory keys ride the same tolerance: readout memory is a first-class budget
    # (the streaming StatsEngine exists to bound it), so growth past the factor is a
    # regression exactly like a slowdown.
    ref_memory = dict(_memory_keys(reference.get("scenarios", {})))
    for path, value in _memory_keys(scenarios or {}):
        ref_value = ref_memory.get(path, 0)
        if ref_value <= 0 or value <= 0:
            continue
        checked += 1
        ratio = value / ref_value
        marker = " <-- REGRESSION" if ratio > max_regression else ""
        print(f"  gate scenarios.{path}: {value:.0f} vs {ref_value:.0f} "
              f"(x{ratio:.2f}){marker}")
        if ratio > max_regression:
            offenders.append((f"scenarios.{path}", ratio))
    print(f"gate: {checked} measurements compared against {gate_path} "
          f"(tolerance x{max_regression}), {len(offenders)} regressed")
    return offenders


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--baseline", help="google-benchmark JSON of the pre-change build")
    ap.add_argument("--after", required=True, help="google-benchmark JSON of this build")
    ap.add_argument("--tag", required=True, help="trajectory tag, e.g. pr1")
    ap.add_argument("--out", required=True, help="output BENCH_*.json path")
    ap.add_argument("--scenarios",
                    help="JSON file embedded verbatim as the output's \"scenarios\" key "
                         "(scenario-bench headline numbers)")
    ap.add_argument("--gate-against",
                    help="committed BENCH_*.json to gate against (fail on regression)")
    ap.add_argument("--max-regression", type=float, default=2.0,
                    help="allowed slowdown factor vs --gate-against (default 2.0)")
    args = ap.parse_args()

    after, context = load_medians(args.after)
    baseline = {}
    if args.baseline:
        baseline, _ = load_medians(args.baseline)

    benchmarks = {}
    for name, entry in sorted(after.items()):
        row = {"after": entry}
        if name in baseline:
            row["baseline"] = baseline[name]
            if entry["real_time_ns"] > 0:
                row["speedup"] = round(
                    baseline[name]["real_time_ns"] / entry["real_time_ns"], 3)
        benchmarks[name] = row

    doc = {
        "schema": "tbf-bench-v1",
        "tag": args.tag,
        "host": {
            "num_cpus": context.get("num_cpus"),
            "mhz_per_cpu": context.get("mhz_per_cpu"),
            "build_type": context.get("library_build_type"),
        },
        "benchmarks": benchmarks,
    }
    scenarios = None
    if args.scenarios:
        with open(args.scenarios) as f:
            scenarios = json.load(f)
        doc["scenarios"] = scenarios
    with open(args.out, "w") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")
    print(f"wrote {args.out} ({len(benchmarks)} benchmarks, "
          f"{sum(1 for b in benchmarks.values() if 'speedup' in b)} with baselines)")

    if args.gate_against:
        offenders = gate(benchmarks, scenarios, args.gate_against, args.max_regression)
        if offenders:
            for name, ratio in offenders:
                print(f"FAIL: {name} regressed x{ratio:.2f} "
                      f"(> x{args.max_regression})", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
