#!/usr/bin/env python3
"""Merge two google-benchmark JSON outputs into the repo's BENCH_*.json trajectory format.

Usage:
    ./micro_core --benchmark_out=baseline.json --benchmark_out_format=json  # old build
    ./micro_core --benchmark_out=after.json --benchmark_out_format=json     # new build
    python3 bench/compare_bench.py --baseline baseline.json --after after.json \
        --tag pr1 --out BENCH_pr1.json

With only --after, emits the measurement without speedup fields (trajectory snapshot).
Schema: see bench/README.md ("tbf-bench-v1").
"""
import argparse
import json
import sys


def load_medians(path):
    """Returns {benchmark_name: {...}} using *_median aggregates when present, else the
    plain entry (single-repetition runs)."""
    with open(path) as f:
        doc = json.load(f)
    out = {}
    for b in doc.get("benchmarks", []):
        if b.get("run_type") == "aggregate" and b.get("aggregate_name") != "median":
            continue
        name = b.get("run_name", b["name"])
        entry = {
            "real_time_ns": b["real_time"] * _to_ns(b.get("time_unit", "ns")),
            "cpu_time_ns": b["cpu_time"] * _to_ns(b.get("time_unit", "ns")),
        }
        if "items_per_second" in b:
            entry["items_per_second"] = b["items_per_second"]
        # Plain entries must not clobber a median aggregate already recorded.
        if b.get("run_type") == "aggregate" or name not in out:
            out[name] = entry
    return out, doc.get("context", {})


def _to_ns(unit):
    return {"ns": 1, "us": 1e3, "ms": 1e6, "s": 1e9}[unit]


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--baseline", help="google-benchmark JSON of the pre-change build")
    ap.add_argument("--after", required=True, help="google-benchmark JSON of this build")
    ap.add_argument("--tag", required=True, help="trajectory tag, e.g. pr1")
    ap.add_argument("--out", required=True, help="output BENCH_*.json path")
    args = ap.parse_args()

    after, context = load_medians(args.after)
    baseline = {}
    if args.baseline:
        baseline, _ = load_medians(args.baseline)

    benchmarks = {}
    for name, entry in sorted(after.items()):
        row = {"after": entry}
        if name in baseline:
            row["baseline"] = baseline[name]
            if entry["real_time_ns"] > 0:
                row["speedup"] = round(
                    baseline[name]["real_time_ns"] / entry["real_time_ns"], 3)
        benchmarks[name] = row

    doc = {
        "schema": "tbf-bench-v1",
        "tag": args.tag,
        "host": {
            "num_cpus": context.get("num_cpus"),
            "mhz_per_cpu": context.get("mhz_per_cpu"),
            "build_type": context.get("library_build_type"),
        },
        "benchmarks": benchmarks,
    }
    with open(args.out, "w") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")
    print(f"wrote {args.out} ({len(benchmarks)} benchmarks, "
          f"{sum(1 for b in benchmarks.values() if 'speedup' in b)} with baselines)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
