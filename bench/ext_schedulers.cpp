// Extension: scheduler shoot-out on a congested mixed-rate hotspot. FIFO vs per-node
// round robin vs DRR (byte fair) vs TBR (time fair) vs weighted TBR, on five clients with
// diverse rates. Reports goodput, airtime, aggregate, and Jain fairness indices over both
// resources.
#include "bench_common.h"

#include "tbf/stats/meters.h"

namespace {

using namespace tbf;
using namespace tbf::bench;

sweep::ScenarioJob HotspotJob(scenario::QdiscKind kind, bool weighted) {
  sweep::ScenarioJob job;
  job.config = StandardConfig(kind, Sec(25));
  const phy::WifiRate rates[] = {phy::WifiRate::k1Mbps, phy::WifiRate::k2Mbps,
                                 phy::WifiRate::k5_5Mbps, phy::WifiRate::k11Mbps,
                                 phy::WifiRate::k11Mbps};
  for (NodeId id = 1; id <= 5; ++id) {
    scenario::StationSpec station;
    station.id = id;
    station.rate = rates[id - 1];
    job.stations.push_back(station);
    scenario::FlowSpec flow;
    flow.client = id;
    flow.direction = scenario::Direction::kDownlink;
    flow.transport = scenario::Transport::kTcp;
    job.flows.push_back(flow);
  }
  if (weighted) {
    // Tenant 5 pays for a double share; needs the live TBR, hence the configure hook.
    job.configure = [](scenario::Wlan& wlan) { wlan.tbr()->SetWeight(5, 2.0); };
  }
  return job;
}

}  // namespace

int main() {
  PrintHeader("Extension - AP scheduler comparison on a 5-client mixed-rate hotspot",
              "synthesis of paper Sections 2 and 4: time fairness maximizes aggregate "
              "throughput; throughput fairness maximizes goodput equality");

  const struct {
    const char* name;
    scenario::QdiscKind kind;
    bool weighted;
  } cases[] = {
      {"FIFO", scenario::QdiscKind::kFifo, false},
      {"RoundRobin", scenario::QdiscKind::kRoundRobin, false},
      {"DRR", scenario::QdiscKind::kDrr, false},
      {"OAR-burst", scenario::QdiscKind::kOarBurst, false},
      {"TBR", scenario::QdiscKind::kTbr, false},
      {"TBR w=2 on n5", scenario::QdiscKind::kTbr, true},
      // The adaptive time-share family: same regulator, different reallocation
      // policies (see docs/schedulers.md). Appended so the stock rows above stay
      // byte-comparable with earlier captures.
      {"TBR-burst", scenario::QdiscKind::kTbrBurstCredit, false},
      {"TBR-fast", scenario::QdiscKind::kTbrFastEwma, false},
      {"TBR-hybrid", scenario::QdiscKind::kTbrCreditHybrid, false},
  };
  std::vector<sweep::ScenarioJob> jobs;
  for (const auto& c : cases) {
    jobs.push_back(HotspotJob(c.kind, c.weighted));
  }
  const std::vector<scenario::Results> results = RunSweepScenarios(jobs);

  stats::Table table({"scheduler", "n1(1M)", "n2(2M)", "n3(5.5M)", "n4(11M)", "n5(11M)",
                      "total Mbps", "Jain(goodput)", "Jain(airtime)"});
  size_t job = 0;
  for (const auto& c : cases) {
    const scenario::Results& res = results[job++];
    std::vector<double> goodputs;
    std::vector<double> airtimes;
    std::vector<std::string> row = {c.name};
    for (NodeId id = 1; id <= 5; ++id) {
      goodputs.push_back(res.GoodputMbps(id));
      airtimes.push_back(res.AirtimeShare(id));
      row.push_back(stats::Table::Num(res.GoodputMbps(id), 2));
    }
    row.push_back(stats::Table::Num(res.AggregateMbps(), 2));
    row.push_back(stats::Table::Num(stats::JainIndex(goodputs)));
    row.push_back(stats::Table::Num(stats::JainIndex(airtimes)));
    table.AddRow(row);
  }
  table.Print();
  PrintSweepFooter();
  return 0;
}
