// Extension: scheduler shoot-out on a congested mixed-rate hotspot. FIFO vs per-node
// round robin vs DRR (byte fair) vs TBR (time fair) vs weighted TBR, on five clients with
// diverse rates. Reports goodput, airtime, aggregate, and Jain fairness indices over both
// resources.
#include "bench_common.h"

#include "tbf/stats/meters.h"

namespace {

using namespace tbf;
using namespace tbf::bench;

struct Outcome {
  scenario::Results results;
};

Outcome RunHotspot(scenario::QdiscKind kind, bool weighted) {
  scenario::ScenarioConfig config = StandardConfig(kind, Sec(25));
  scenario::Wlan wlan(config);
  const phy::WifiRate rates[] = {phy::WifiRate::k1Mbps, phy::WifiRate::k2Mbps,
                                 phy::WifiRate::k5_5Mbps, phy::WifiRate::k11Mbps,
                                 phy::WifiRate::k11Mbps};
  for (NodeId id = 1; id <= 5; ++id) {
    wlan.AddStation(id, rates[id - 1]);
    wlan.AddBulkTcp(id, scenario::Direction::kDownlink);
  }
  if (weighted) {
    wlan.BuildNow();
    // Tenant 5 pays for a double share.
    wlan.tbr()->SetWeight(5, 2.0);
  }
  return Outcome{wlan.Run()};
}

}  // namespace

int main() {
  PrintHeader("Extension - AP scheduler comparison on a 5-client mixed-rate hotspot",
              "synthesis of paper Sections 2 and 4: time fairness maximizes aggregate "
              "throughput; throughput fairness maximizes goodput equality");

  stats::Table table({"scheduler", "n1(1M)", "n2(2M)", "n3(5.5M)", "n4(11M)", "n5(11M)",
                      "total Mbps", "Jain(goodput)", "Jain(airtime)"});
  const struct {
    const char* name;
    scenario::QdiscKind kind;
    bool weighted;
  } cases[] = {
      {"FIFO", scenario::QdiscKind::kFifo, false},
      {"RoundRobin", scenario::QdiscKind::kRoundRobin, false},
      {"DRR", scenario::QdiscKind::kDrr, false},
      {"OAR-burst", scenario::QdiscKind::kOarBurst, false},
      {"TBR", scenario::QdiscKind::kTbr, false},
      {"TBR w=2 on n5", scenario::QdiscKind::kTbr, true},
  };
  for (const auto& c : cases) {
    const Outcome out = RunHotspot(c.kind, c.weighted);
    std::vector<double> goodputs;
    std::vector<double> airtimes;
    std::vector<std::string> row = {c.name};
    for (NodeId id = 1; id <= 5; ++id) {
      goodputs.push_back(out.results.GoodputMbps(id));
      airtimes.push_back(out.results.AirtimeShare(id));
      row.push_back(stats::Table::Num(out.results.GoodputMbps(id), 2));
    }
    row.push_back(stats::Table::Num(out.results.AggregateMbps(), 2));
    row.push_back(stats::Table::Num(stats::JainIndex(goodputs)));
    row.push_back(stats::Table::Num(stats::JainIndex(airtimes)));
    table.AddRow(row);
  }
  table.Print();
  return 0;
}
