// Figure 8(a)/(b): equal-rate pairs (1vs1, 2vs2, 5.5vs5.5, 11vs11), AP with and without
// TBR, downlink and uplink. TBR must be overhead-free in the absence of rate diversity.
#include "bench_common.h"

int main() {
  using namespace tbf;
  using namespace tbf::bench;

  PrintHeader("Figure 8 - equal-rate pairs: Exp-Normal vs Exp-TBR",
              "paper Fig. 8: Exp-TBR and Exp-Normal are almost identical at every rate, "
              "in both directions");

  const phy::WifiRate rates[] = {phy::WifiRate::k1Mbps, phy::WifiRate::k2Mbps,
                                 phy::WifiRate::k5_5Mbps, phy::WifiRate::k11Mbps};

  for (const auto& [dir, dname] : {std::pair{scenario::Direction::kDownlink, "downlink"},
                                   std::pair{scenario::Direction::kUplink, "uplink"}}) {
    std::printf("--- %s ---\n", dname);
    stats::Table table(
        {"case", "Normal n1", "Normal n2", "Normal total", "TBR n1", "TBR n2", "TBR total",
         "TBR/Normal"});
    for (phy::WifiRate r : rates) {
      const scenario::Results normal = RunTcpPair(scenario::QdiscKind::kFifo, r, r, dir);
      const scenario::Results tbr = RunTcpPair(scenario::QdiscKind::kTbr, r, r, dir);
      table.AddRow({PairName(r, r), stats::Table::Num(normal.GoodputMbps(1)),
                    stats::Table::Num(normal.GoodputMbps(2)),
                    stats::Table::Num(normal.AggregateMbps()),
                    stats::Table::Num(tbr.GoodputMbps(1)),
                    stats::Table::Num(tbr.GoodputMbps(2)),
                    stats::Table::Num(tbr.AggregateMbps()),
                    stats::Table::Ratio(tbr.AggregateMbps() / normal.AggregateMbps())});
    }
    table.Print();
  }
  return 0;
}
