// Figure 8(a)/(b): equal-rate pairs (1vs1, 2vs2, 5.5vs5.5, 11vs11), AP with and without
// TBR, downlink and uplink. TBR must be overhead-free in the absence of rate diversity.
#include "bench_common.h"

int main() {
  using namespace tbf;
  using namespace tbf::bench;

  PrintHeader("Figure 8 - equal-rate pairs: Exp-Normal vs Exp-TBR",
              "paper Fig. 8: Exp-TBR and Exp-Normal are almost identical at every rate, "
              "in both directions");

  const phy::WifiRate rates[] = {phy::WifiRate::k1Mbps, phy::WifiRate::k2Mbps,
                                 phy::WifiRate::k5_5Mbps, phy::WifiRate::k11Mbps};
  const std::pair<scenario::Direction, const char*> directions[] = {
      {scenario::Direction::kDownlink, "downlink"},
      {scenario::Direction::kUplink, "uplink"},
  };

  // Whole 2x4x2 grid in one sweep: per (direction, rate), Normal then TBR.
  std::vector<sweep::ScenarioJob> jobs;
  for (const auto& [dir, dname] : directions) {
    for (phy::WifiRate r : rates) {
      jobs.push_back(TcpPairJob(scenario::QdiscKind::kFifo, r, r, dir));
      jobs.push_back(TcpPairJob(scenario::QdiscKind::kTbr, r, r, dir));
    }
  }
  const std::vector<scenario::Results> results = RunSweepScenarios(jobs);

  size_t job = 0;
  for (const auto& [dir, dname] : directions) {
    std::printf("--- %s ---\n", dname);
    stats::Table table(
        {"case", "Normal n1", "Normal n2", "Normal total", "TBR n1", "TBR n2", "TBR total",
         "TBR/Normal"});
    for (phy::WifiRate r : rates) {
      const scenario::Results& normal = results[job++];
      const scenario::Results& tbr = results[job++];
      table.AddRow({PairName(r, r), stats::Table::Num(normal.GoodputMbps(1)),
                    stats::Table::Num(normal.GoodputMbps(2)),
                    stats::Table::Num(normal.AggregateMbps()),
                    stats::Table::Num(tbr.GoodputMbps(1)),
                    stats::Table::Num(tbr.GoodputMbps(2)),
                    stats::Table::Num(tbr.AggregateMbps()),
                    stats::Table::Ratio(tbr.AggregateMbps() / normal.AggregateMbps())});
    }
    table.Print();
  }
  PrintSweepFooter();
  return 0;
}
