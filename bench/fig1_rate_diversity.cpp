// Figure 1: fractions of bytes transferred at each data rate - three synthetic workshop
// sessions (WS-1..3, calibrated to the paper's published mixtures) and EXP-1, a live
// simulation of the paper's office experiment: an AP saturating four UDP receivers at
// 4 / 12 / 26 / 30 feet behind 0 / 1 thin / 2 thin / 2 thick walls, with SNR-derived
// rates and loss-driven ARF adaptation, sniffed at frame level.
#include "bench_common.h"

#include "tbf/phy/channel.h"
#include "tbf/trace/generators.h"
#include "tbf/trace/trace.h"

namespace {

using namespace tbf;

void AddMixRow(stats::Table& table, const std::string& name,
               const std::map<phy::WifiRate, double>& fractions) {
  auto get = [&](phy::WifiRate r) {
    auto it = fractions.find(r);
    return it == fractions.end() ? 0.0 : it->second * 100.0;
  };
  table.AddRow({name, stats::Table::Num(get(phy::WifiRate::k1Mbps), 1),
                stats::Table::Num(get(phy::WifiRate::k2Mbps), 1),
                stats::Table::Num(get(phy::WifiRate::k5_5Mbps), 1),
                stats::Table::Num(get(phy::WifiRate::k11Mbps), 1)});
}

std::map<phy::WifiRate, double> RunExp1() {
  // Geometry from the paper (Section 3), AP ~7 ft above ground: receivers at 4 ft (clear),
  // 12 ft behind one thin wooden wall, 26 ft behind two thin walls, 30 ft behind two thick
  // walls. Wall attenuations are calibrated so the resulting rate mix reproduces the
  // published outcome (the two far nodes fall to the lowest rates); loss couples to rate
  // through the SNR-margin model, so ARF settles where the margin supports the rate.
  struct Receiver {
    double feet;
    int thin_walls;
    int thick_walls;
  };
  const Receiver receivers[] = {{4, 0, 0}, {12, 1, 0}, {26, 2, 0}, {30, 0, 2}};

  phy::PathLossConfig path_config;
  path_config.path_loss_exponent = 4.9;
  path_config.wall_loss_db = 8.0;
  path_config.thick_wall_loss_db = 9.0;  // Calibrated to the published EXP-1 rate mix.
  phy::PathLossModel path(path_config);

  scenario::ScenarioConfig config;
  config.qdisc = scenario::QdiscKind::kFifo;
  config.warmup = Sec(2);
  config.duration = Sec(20);
  scenario::Wlan wlan(config);

  NodeId id = 1;
  for (const Receiver& rx : receivers) {
    const double snr = path.SnrDb(phy::FeetToMeters(rx.feet), rx.thin_walls, rx.thick_walls);
    scenario::StationSpec spec;
    spec.id = id;
    spec.snr_db = snr;
    spec.rate = phy::RateForSnr(snr, /*ofdm_capable=*/false);
    spec.arf = true;
    wlan.AddStation(spec);
    wlan.AddSaturatingUdp(id, scenario::Direction::kDownlink);
    ++id;
  }

  wlan.BuildNow();
  trace::TraceLog log;
  trace::TraceSniffer sniffer(&log);
  wlan.medium()->AddObserver(&sniffer);
  wlan.Run();
  return trace::RateByteFractions(log);
}

}  // namespace

int main() {
  using namespace tbf;
  using namespace tbf::bench;

  PrintHeader("Figure 1 - % of bytes per data rate (WS-1..3 synthetic, EXP-1 simulated)",
              "paper Fig. 1: all sessions show rate diversity; WS-2 moves >30% of bytes "
              "below 11 Mbps; EXP-1 moves >50% of bytes at the lowest rate");

  // EXP-1 is the only live simulation here; it still goes through the sweep runner so
  // the suite footer accounts for it.
  using RateMix = std::map<phy::WifiRate, double>;
  std::vector<std::function<RateMix()>> jobs;
  jobs.push_back([] { return RunExp1(); });

  stats::Table table({"session", "1Mbps %", "2Mbps %", "5.5Mbps %", "11Mbps %"});
  sim::Rng rng(2004);
  AddMixRow(table, "WS-1", trace::RateByteFractions(
                               trace::GenerateWorkshopTrace(trace::Ws1Config(), rng)));
  AddMixRow(table, "WS-2", trace::RateByteFractions(
                               trace::GenerateWorkshopTrace(trace::Ws2Config(), rng)));
  AddMixRow(table, "WS-3", trace::RateByteFractions(
                               trace::GenerateWorkshopTrace(trace::Ws3Config(), rng)));
  const std::vector<RateMix> mixes = RunSweep(std::move(jobs));
  AddMixRow(table, "EXP-1", mixes[0]);
  table.Print();
  PrintSweepFooter();
  return 0;
}
