// Extension (paper 2.4.2, Eq. 8-10): packet-size diversity. Nodes at the same rate but
// different frame sizes get unequal throughput and channel time under DCF; DRR restores
// byte fairness; TBR restores time fairness (which, at equal rates, also equalizes
// goodput up to per-packet overhead).
#include "bench_common.h"

#include "tbf/model/fairness_model.h"

int main() {
  using namespace tbf;
  using namespace tbf::bench;

  PrintHeader("Extension - packet size diversity (Eq. 8-10)",
              "paper 2.4.2: with equal rates but mixed packet sizes, DCF equalizes "
              "transmission opportunities, not bytes or time");

  const int big = 1500;
  const int small = 360;

  stats::Table table({"qdisc", "n1(1500B) Mbps", "n2(360B) Mbps", "airtime n1",
                      "airtime n2", "total Mbps"});
  for (const auto& [kind, label] : {std::pair{scenario::QdiscKind::kFifo, "FIFO"},
                                    std::pair{scenario::QdiscKind::kDrr, "DRR"},
                                    std::pair{scenario::QdiscKind::kTbr, "TBR"}}) {
    scenario::ScenarioConfig config = StandardConfig(kind, Sec(20));
    // Both nodes saturate; disable the demand adjuster so the bench isolates the static
    // Eq. 8-10 allocations (the estimator's small-frame contention error would otherwise
    // feed the adjuster phantom excess).
    config.tbr.enable_rate_adjust = false;
    scenario::Wlan wlan(config);
    wlan.AddStation(1, phy::WifiRate::k11Mbps);
    wlan.AddStation(2, phy::WifiRate::k11Mbps);
    scenario::FlowSpec f1;
    f1.client = 1;
    f1.direction = scenario::Direction::kDownlink;
    f1.transport = scenario::Transport::kUdp;
    f1.udp_rate = Mbps(9);
    f1.packet_bytes = big;
    wlan.AddFlow(f1);
    scenario::FlowSpec f2 = f1;
    f2.client = 2;
    f2.packet_bytes = small;
    f2.udp_rate = Mbps(9);
    wlan.AddFlow(f2);
    const scenario::Results res = wlan.Run();
    table.AddRow({label, stats::Table::Num(res.GoodputMbps(1)),
                  stats::Table::Num(res.GoodputMbps(2)),
                  stats::Table::Num(res.AirtimeShare(1)),
                  stats::Table::Num(res.AirtimeShare(2)),
                  stats::Table::Num(res.AggregateMbps())});
  }
  table.Print();

  std::printf("\nAnalytic Eq. 8-10 check (equal rates, mixed sizes, round-robin service):\n");
  // Per-packet efficiency differs: beta(11Mbps, s) for each size.
  std::vector<model::NodeModel> nodes = {{5.2e6, static_cast<double>(big), 1.0},
                                         {2.4e6, static_cast<double>(small), 1.0}};
  const model::Allocation rf = model::ThroughputFairAllocation(nodes);
  std::printf("  T(1)=%.3f T(2)=%.3f  R(1)=%.2f R(2)=%.2f Mbps (unequal in both)\n",
              rf.channel_time[0], rf.channel_time[1], rf.throughput_bps[0] / 1e6,
              rf.throughput_bps[1] / 1e6);
  return 0;
}
