// Extension (paper 2.4.2, Eq. 8-10): packet-size diversity. Nodes at the same rate but
// different frame sizes get unequal throughput and channel time under DCF; DRR restores
// byte fairness; TBR restores time fairness (which, at equal rates, also equalizes
// goodput up to per-packet overhead).
#include "bench_common.h"

#include "tbf/model/fairness_model.h"

int main() {
  using namespace tbf;
  using namespace tbf::bench;

  PrintHeader("Extension - packet size diversity (Eq. 8-10)",
              "paper 2.4.2: with equal rates but mixed packet sizes, DCF equalizes "
              "transmission opportunities, not bytes or time");

  const int big = 1500;
  const int small = 360;
  const std::pair<scenario::QdiscKind, const char*> qdiscs[] = {
      {scenario::QdiscKind::kFifo, "FIFO"},
      {scenario::QdiscKind::kDrr, "DRR"},
      {scenario::QdiscKind::kTbr, "TBR"},
  };

  std::vector<sweep::ScenarioJob> jobs;
  for (const auto& [kind, label] : qdiscs) {
    sweep::ScenarioJob job;
    job.config = StandardConfig(kind, Sec(20));
    // Both nodes saturate; disable the demand adjuster so the bench isolates the static
    // Eq. 8-10 allocations (the estimator's small-frame contention error would otherwise
    // feed the adjuster phantom excess).
    job.config.tbr.enable_rate_adjust = false;
    for (NodeId id = 1; id <= 2; ++id) {
      scenario::StationSpec station;
      station.id = id;
      station.rate = phy::WifiRate::k11Mbps;
      job.stations.push_back(station);
      scenario::FlowSpec flow;
      flow.client = id;
      flow.direction = scenario::Direction::kDownlink;
      flow.transport = scenario::Transport::kUdp;
      flow.udp_rate = Mbps(9);
      flow.packet_bytes = id == 1 ? big : small;
      job.flows.push_back(flow);
    }
    jobs.push_back(std::move(job));
  }
  const std::vector<scenario::Results> results = RunSweepScenarios(jobs);

  stats::Table table({"qdisc", "n1(1500B) Mbps", "n2(360B) Mbps", "airtime n1",
                      "airtime n2", "total Mbps"});
  size_t job = 0;
  for (const auto& [kind, label] : qdiscs) {
    const scenario::Results& res = results[job++];
    table.AddRow({label, stats::Table::Num(res.GoodputMbps(1)),
                  stats::Table::Num(res.GoodputMbps(2)),
                  stats::Table::Num(res.AirtimeShare(1)),
                  stats::Table::Num(res.AirtimeShare(2)),
                  stats::Table::Num(res.AggregateMbps())});
  }
  table.Print();

  std::printf("\nAnalytic Eq. 8-10 check (equal rates, mixed sizes, round-robin service):\n");
  // Per-packet efficiency differs: beta(11Mbps, s) for each size.
  std::vector<model::NodeModel> nodes = {{5.2e6, static_cast<double>(big), 1.0},
                                         {2.4e6, static_cast<double>(small), 1.0}};
  const model::Allocation rf = model::ThroughputFairAllocation(nodes);
  std::printf("  T(1)=%.3f T(2)=%.3f  R(1)=%.2f R(2)=%.2f Mbps (unequal in both)\n",
              rf.channel_time[0], rf.channel_time[1], rf.throughput_bps[0] / 1e6,
              rf.throughput_bps[1] / 1e6);
  PrintSweepFooter();
  return 0;
}
