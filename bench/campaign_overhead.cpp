// Campaign service overhead: the same manifest run (a) serially in-process and
// (b) through the full coordinator/worker machinery - unix socket, JSON framing,
// hex payloads, CRC validation, write-path of the completion log - with two
// in-process workers. Reports wall time and jobs/sec for both, and exits non-zero
// if the two archives differ by a single byte (the campaign acceptance bar, held
// here as a bench-level gate as well as in tests/campaign_test.cpp and CI).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"

#include "tbf/campaign/coordinator.h"
#include "tbf/campaign/manifest.h"
#include "tbf/campaign/worker.h"

int main() {
  using namespace tbf;
  using namespace tbf::campaign;
  using Clock = std::chrono::steady_clock;

  bench::PrintHeader("Campaign service overhead - serial vs distributed",
                     "fault-tolerant sweep distribution (docs/campaign.md)");

  SmokeGridSpec spec;
  spec.jobs = 400;
  spec.seed = 3;
  const Manifest manifest = MakeSmokeGrid(spec);

  const auto serial_start = Clock::now();
  const std::string serial_archive = RunSerialArchive(manifest);
  const double serial_sec =
      std::chrono::duration<double>(Clock::now() - serial_start).count();

  CoordinatorConfig config;
  config.socket_path = "/tmp/tbf_campaign_bench.sock";
  config.local_fallback_after_ms = -1;  // Every job crosses the wire.

  const auto dist_start = Clock::now();
  Coordinator coordinator(manifest, config);
  auto make_worker = [&config](const char* name) {
    WorkerConfig wc;
    wc.socket_path = config.socket_path;
    wc.name = name;
    wc.heartbeat_interval_ms = 200;
    wc.reconnect_delay_ms = 10;
    wc.max_reconnects = 100;
    return std::thread([wc] { RunWorker(wc); });
  };
  std::thread w1 = make_worker("bench-w1");
  std::thread w2 = make_worker("bench-w2");
  const bool finished = coordinator.Run();
  const double dist_sec =
      std::chrono::duration<double>(Clock::now() - dist_start).count();
  const std::string dist_archive = finished ? coordinator.EncodeArchiveBytes() : "";
  w1.join();
  w2.join();

  const double n = static_cast<double>(spec.jobs);
  std::printf("%-14s %10s %12s %14s\n", "path", "wall_s", "jobs/s", "archive_B");
  std::printf("%-14s %10.3f %12.0f %14zu\n", "serial", serial_sec, n / serial_sec,
              serial_archive.size());
  std::printf("%-14s %10.3f %12.0f %14zu\n", "distributed", dist_sec, n / dist_sec,
              dist_archive.size());
  std::printf("overhead: %.2fx wall vs serial (protocol + validation + WAL-less "
              "coordination for %d jobs over 2 workers)\n",
              dist_sec / serial_sec, spec.jobs);

  if (!finished) {
    std::fprintf(stderr, "FAIL: distributed campaign did not finish\n");
    return 1;
  }
  if (dist_archive != serial_archive) {
    std::fprintf(stderr, "FAIL: distributed archive differs from serial archive\n");
    return 1;
  }
  std::printf("archives byte-identical: OK\n");
  return 0;
}
