// Table 2: the baseline throughput beta(d, 1500, 2) - two nodes exchanging TCP data at
// the same rate with <2% loss. Compares the simulator's measurement and the analytic
// first-principles estimate against the paper's testbed numbers.
#include "bench_common.h"

#include "tbf/model/baseline.h"

int main() {
  using namespace tbf;
  using namespace tbf::bench;

  PrintHeader("Table 2 - baseline throughput beta(d, 1500B, n=2)",
              "paper Table 2: 11 -> 5.189, 5.5 -> 3.327, 2 -> 1.493, 1 -> 0.806 Mbps");

  std::vector<sweep::ScenarioJob> jobs;
  for (phy::WifiRate r : phy::DsssRates()) {
    jobs.push_back(TcpPairJob(scenario::QdiscKind::kFifo, r, r,
                              scenario::Direction::kUplink));
  }
  const std::vector<scenario::Results> results = RunSweepScenarios(jobs);

  stats::Table table({"rate", "paper Mbps", "simulated Mbps", "sim/paper", "analytic Mbps",
                      "analytic/paper"});
  size_t job = 0;
  for (phy::WifiRate r : phy::DsssRates()) {
    const double paper = model::PaperTable2Baselines().at(r) / 1e6;
    const scenario::Results& res = results[job++];
    const double analytic = model::AnalyticTcpBaseline(r) / 1e6;
    table.AddRow({std::string(phy::RateName(r)), stats::Table::Num(paper),
                  stats::Table::Num(res.AggregateMbps()),
                  stats::Table::Ratio(res.AggregateMbps() / paper),
                  stats::Table::Num(analytic), stats::Table::Ratio(analytic / paper)});
  }
  table.Print();
  PrintSweepFooter();
  return 0;
}
