// Figure 3(a)/(b): achieved TCP throughput and channel occupancy time for two competing
// nodes under throughput-based fairness (stock DCF+FIFO, "RF") and time-based fairness
// (TBR, "TF"), across 11vs11, 1vs11 and 1vs1.
#include "bench_common.h"

int main() {
  using namespace tbf;
  using namespace tbf::bench;

  PrintHeader("Figure 3 - RF vs TF: throughput and channel occupancy",
              "paper Fig. 3(a)/(b): equal-rate cases identical under both notions; in "
              "1vs11 TF gives the 11 Mbps node more throughput while equalizing airtime");

  const std::pair<phy::WifiRate, phy::WifiRate> cases[] = {
      {phy::WifiRate::k11Mbps, phy::WifiRate::k11Mbps},
      {phy::WifiRate::k1Mbps, phy::WifiRate::k11Mbps},
      {phy::WifiRate::k1Mbps, phy::WifiRate::k1Mbps},
  };
  const std::pair<scenario::QdiscKind, const char*> notions[] = {
      {scenario::QdiscKind::kFifo, "RF"},
      {scenario::QdiscKind::kTbr, "TF"},
  };

  // The 3x2 grid as one sweep, rows consumed in submission order.
  std::vector<sweep::ScenarioJob> jobs;
  for (const auto& [r1, r2] : cases) {
    for (const auto& [kind, label] : notions) {
      jobs.push_back(TcpPairJob(kind, r1, r2, scenario::Direction::kUplink));
    }
  }
  const std::vector<scenario::Results> results = RunSweepScenarios(jobs);

  stats::Table table({"case", "notion", "n1 Mbps", "n2 Mbps", "total Mbps", "airtime n1",
                      "airtime n2"});
  size_t job = 0;
  for (const auto& [r1, r2] : cases) {
    for (const auto& [kind, label] : notions) {
      const scenario::Results& res = results[job++];
      table.AddRow({PairName(r1, r2), label, stats::Table::Num(res.GoodputMbps(1)),
                    stats::Table::Num(res.GoodputMbps(2)),
                    stats::Table::Num(res.AggregateMbps()),
                    stats::Table::Num(res.AirtimeShare(1)),
                    stats::Table::Num(res.AirtimeShare(2))});
    }
  }
  table.Print();
  std::printf("\nBaseline property check: n1(1Mbps) under TF achieves ~the same rate in "
              "1vs11 as in 1vs1 (paper Section 2.1).\n");
  PrintSweepFooter();
  return 0;
}
