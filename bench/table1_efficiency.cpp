// Table 1: fairness and efficiency measures under the two notions, for the fluid model
// (aggregate throughput) and the task model (AvgTaskTime / FinalTaskTime). Analytic task
// model plus a live-simulation cross-check with finite TCP transfers.
#include "bench_common.h"

#include "tbf/model/baseline.h"
#include "tbf/model/fairness_model.h"
#include "tbf/model/task_model.h"

int main() {
  using namespace tbf;
  using namespace tbf::bench;

  PrintHeader("Table 1 - measures of fairness and efficiency, RF vs TF (1vs11 case)",
              "paper Table 1: throughput deltas favor RF, airtime deltas favor TF; "
              "FinalTaskTime same; AvgTaskTime and AggrThruput better under TF");

  const auto& betas = model::PaperTable2Baselines();
  const double beta1 = betas.at(phy::WifiRate::k1Mbps);
  const double beta11 = betas.at(phy::WifiRate::k11Mbps);

  // Task model: equal 4 MB tasks on a 1 Mbps and an 11 Mbps node.
  const std::vector<model::Task> tasks = {{beta1, 4e6, 1.0}, {beta11, 4e6, 1.0}};
  const model::TaskOutcome rf = model::RunTaskModel(tasks, model::FairnessNotion::kThroughputFair);
  const model::TaskOutcome tf = model::RunTaskModel(tasks, model::FairnessNotion::kTimeFair);

  // Fluid model: aggregate sustained throughput.
  const std::vector<model::NodeModel> nodes = {{beta1, 1500.0, 1.0},
                                               {beta11, 1500.0, 1.0}};
  const double rf_aggr = model::ThroughputFairAllocation(nodes).total_bps / 1e6;
  const double tf_aggr = model::TimeFairAllocation(nodes).total_bps / 1e6;

  stats::Table table({"criteria", "measure", "RF", "TF", "winner"});
  const double rf_thr_delta = 0.0;  // Equal throughputs by construction under RF.
  const double tf_thr_delta = (beta11 - beta1) / 2.0 / 1e6;
  table.AddRow({"fairness", "|R(i)-R(j)| Mbps", stats::Table::Num(rf_thr_delta),
                stats::Table::Num(tf_thr_delta), "RF"});
  const std::vector<model::NodeModel> pair = nodes;
  const auto rf_alloc = model::ThroughputFairAllocation(pair);
  table.AddRow({"fairness", "|T(i)-T(j)|",
                stats::Table::Num(std::abs(rf_alloc.channel_time[0] - rf_alloc.channel_time[1])),
                stats::Table::Num(0.0), "TF"});
  table.AddRow({"efficiency (task)", "FinalTaskTime s", stats::Table::Num(rf.final_task_time_sec),
                stats::Table::Num(tf.final_task_time_sec), "same"});
  table.AddRow({"efficiency (task)", "AvgTaskTime s", stats::Table::Num(rf.avg_task_time_sec),
                stats::Table::Num(tf.avg_task_time_sec), "TF"});
  table.AddRow({"efficiency (fluid)", "AggrThruput Mbps", stats::Table::Num(rf_aggr),
                stats::Table::Num(tf_aggr), "TF"});
  table.Print();

  // Live cross-check: two finite uplink TCP transfers through the simulated WLAN.
  std::printf("\nLive task-model cross-check (4 MB tasks, uplink TCP):\n");
  stats::Table live({"config", "t1 done s (1M)", "t2 done s (11M)", "AvgTaskTime",
                     "FinalTaskTime"});
  for (const auto& [kind, name] : {std::pair{scenario::QdiscKind::kFifo, "Exp-Normal(RF)"},
                                   std::pair{scenario::QdiscKind::kTbr, "Exp-TBR(TF)"}}) {
    scenario::ScenarioConfig config = StandardConfig(kind, Sec(120));
    config.warmup = 0;  // Task timing is measured from t=0.
    scenario::Wlan wlan(config);
    wlan.AddStation(1, phy::WifiRate::k1Mbps);
    wlan.AddStation(2, phy::WifiRate::k11Mbps);
    auto& f1 = wlan.AddBulkTcp(1, scenario::Direction::kUplink);
    f1.task_bytes = 4'000'000;
    auto& f2 = wlan.AddBulkTcp(2, scenario::Direction::kUplink);
    f2.task_bytes = 4'000'000;
    const scenario::Results res = wlan.Run();
    double t1 = -1;
    double t2 = -1;
    for (const auto& fr : res.flows) {
      (fr.client == 1 ? t1 : t2) = ToSeconds(fr.completion_time);
    }
    live.AddRow({name, stats::Table::Num(t1, 1), stats::Table::Num(t2, 1),
                 stats::Table::Num((t1 + t2) / 2.0, 1),
                 stats::Table::Num(std::max(t1, t2), 1)});
  }
  live.Print();
  return 0;
}
