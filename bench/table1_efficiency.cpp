// Table 1: fairness and efficiency measures under the two notions, for the fluid model
// (aggregate throughput) and the task model (AvgTaskTime / FinalTaskTime). Analytic task
// model plus a live-simulation cross-check with finite TCP transfers.
#include "bench_common.h"

#include "tbf/model/baseline.h"
#include "tbf/model/fairness_model.h"
#include "tbf/model/task_model.h"

int main() {
  using namespace tbf;
  using namespace tbf::bench;

  PrintHeader("Table 1 - measures of fairness and efficiency, RF vs TF (1vs11 case)",
              "paper Table 1: throughput deltas favor RF, airtime deltas favor TF; "
              "FinalTaskTime same; AvgTaskTime and AggrThruput better under TF");

  const auto& betas = model::PaperTable2Baselines();
  const double beta1 = betas.at(phy::WifiRate::k1Mbps);
  const double beta11 = betas.at(phy::WifiRate::k11Mbps);

  // The live cross-check pair runs as one sweep (both qdiscs in parallel).
  const std::pair<scenario::QdiscKind, const char*> notions[] = {
      {scenario::QdiscKind::kFifo, "Exp-Normal(RF)"},
      {scenario::QdiscKind::kTbr, "Exp-TBR(TF)"},
  };
  std::vector<sweep::ScenarioJob> jobs;
  for (const auto& [kind, name] : notions) {
    sweep::ScenarioJob live_job;
    live_job.config = StandardConfig(kind, Sec(120));
    live_job.config.warmup = 0;  // Task timing is measured from t=0.
    scenario::StationSpec s1;
    s1.id = 1;
    s1.rate = phy::WifiRate::k1Mbps;
    live_job.stations.push_back(s1);
    scenario::StationSpec s2;
    s2.id = 2;
    s2.rate = phy::WifiRate::k11Mbps;
    live_job.stations.push_back(s2);
    for (NodeId id = 1; id <= 2; ++id) {
      scenario::FlowSpec flow;
      flow.client = id;
      flow.direction = scenario::Direction::kUplink;
      flow.transport = scenario::Transport::kTcp;
      flow.task_bytes = 4'000'000;
      live_job.flows.push_back(flow);
    }
    jobs.push_back(std::move(live_job));
  }

  // Task model: equal 4 MB tasks on a 1 Mbps and an 11 Mbps node.
  const std::vector<model::Task> tasks = {{beta1, 4e6, 1.0}, {beta11, 4e6, 1.0}};
  const model::TaskOutcome rf = model::RunTaskModel(tasks, model::FairnessNotion::kThroughputFair);
  const model::TaskOutcome tf = model::RunTaskModel(tasks, model::FairnessNotion::kTimeFair);

  // Fluid model: aggregate sustained throughput.
  const std::vector<model::NodeModel> nodes = {{beta1, 1500.0, 1.0},
                                               {beta11, 1500.0, 1.0}};
  const double rf_aggr = model::ThroughputFairAllocation(nodes).total_bps / 1e6;
  const double tf_aggr = model::TimeFairAllocation(nodes).total_bps / 1e6;

  stats::Table table({"criteria", "measure", "RF", "TF", "winner"});
  const double rf_thr_delta = 0.0;  // Equal throughputs by construction under RF.
  const double tf_thr_delta = (beta11 - beta1) / 2.0 / 1e6;
  table.AddRow({"fairness", "|R(i)-R(j)| Mbps", stats::Table::Num(rf_thr_delta),
                stats::Table::Num(tf_thr_delta), "RF"});
  const std::vector<model::NodeModel> pair = nodes;
  const auto rf_alloc = model::ThroughputFairAllocation(pair);
  table.AddRow({"fairness", "|T(i)-T(j)|",
                stats::Table::Num(std::abs(rf_alloc.channel_time[0] - rf_alloc.channel_time[1])),
                stats::Table::Num(0.0), "TF"});
  table.AddRow({"efficiency (task)", "FinalTaskTime s", stats::Table::Num(rf.final_task_time_sec),
                stats::Table::Num(tf.final_task_time_sec), "same"});
  table.AddRow({"efficiency (task)", "AvgTaskTime s", stats::Table::Num(rf.avg_task_time_sec),
                stats::Table::Num(tf.avg_task_time_sec), "TF"});
  table.AddRow({"efficiency (fluid)", "AggrThruput Mbps", stats::Table::Num(rf_aggr),
                stats::Table::Num(tf_aggr), "TF"});
  table.Print();

  // Live cross-check: two finite uplink TCP transfers through the simulated WLAN.
  const std::vector<scenario::Results> results = RunSweepScenarios(jobs);
  std::printf("\nLive task-model cross-check (4 MB tasks, uplink TCP):\n");
  stats::Table live({"config", "t1 done s (1M)", "t2 done s (11M)", "AvgTaskTime",
                     "FinalTaskTime"});
  size_t job = 0;
  for (const auto& [kind, name] : notions) {
    const scenario::Results& res = results[job++];
    double t1 = -1;
    double t2 = -1;
    for (const auto& fr : res.flows) {
      (fr.client == 1 ? t1 : t2) = ToSeconds(fr.completion_time);
    }
    live.AddRow({name, stats::Table::Num(t1, 1), stats::Table::Num(t2, 1),
                 stats::Table::Num((t1 + t2) / 2.0, 1),
                 stats::Table::Num(std::max(t1, t2), 1)});
  }
  live.Print();
  PrintSweepFooter();
  return 0;
}
