// Figure 4: three equal-rate (11 Mbps) nodes exchanging data with the AP - UDP and TCP,
// uplink and downlink. Per-node throughputs are approximately equal; TCP trails UDP; the
// downlink total trails the uplink total (a single sender pays post-backoff every frame).
#include "bench_common.h"

int main() {
  using namespace tbf;
  using namespace tbf::bench;

  PrintHeader("Figure 4 - three 11 Mbps nodes, UDP/TCP x up/down",
              "paper Fig. 4: roughly equal per-node throughput; TCP < UDP; uplink total > "
              "downlink total");

  stats::Table table({"workload", "n1 Mbps", "n2 Mbps", "n3 Mbps", "total Mbps"});
  for (const auto& [transport, tname] : {std::pair{scenario::Transport::kUdp, "UDP"},
                                         std::pair{scenario::Transport::kTcp, "TCP"}}) {
    for (const auto& [dir, dname] :
         {std::pair{scenario::Direction::kDownlink, "Down"},
          std::pair{scenario::Direction::kUplink, "Up"}}) {
      // The paper attributes downlink equality to the AP's round-robin queueing.
      scenario::Wlan wlan(StandardConfig(scenario::QdiscKind::kRoundRobin, Sec(20)));
      for (NodeId id = 1; id <= 3; ++id) {
        wlan.AddStation(id, phy::WifiRate::k11Mbps);
        scenario::FlowSpec spec;
        spec.client = id;
        spec.direction = dir;
        spec.transport = transport;
        spec.udp_rate = Mbps(9);
        wlan.AddFlow(spec);
      }
      const scenario::Results res = wlan.Run();
      table.AddRow({std::string(tname) + "_" + dname, stats::Table::Num(res.GoodputMbps(1)),
                    stats::Table::Num(res.GoodputMbps(2)),
                    stats::Table::Num(res.GoodputMbps(3)),
                    stats::Table::Num(res.AggregateMbps())});
    }
  }
  table.Print();
  return 0;
}
