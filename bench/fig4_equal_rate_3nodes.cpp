// Figure 4: three equal-rate (11 Mbps) nodes exchanging data with the AP - UDP and TCP,
// uplink and downlink. Per-node throughputs are approximately equal; TCP trails UDP; the
// downlink total trails the uplink total (a single sender pays post-backoff every frame).
#include "bench_common.h"

int main() {
  using namespace tbf;
  using namespace tbf::bench;

  PrintHeader("Figure 4 - three 11 Mbps nodes, UDP/TCP x up/down",
              "paper Fig. 4: roughly equal per-node throughput; TCP < UDP; uplink total > "
              "downlink total");

  const std::pair<scenario::Transport, const char*> transports[] = {
      {scenario::Transport::kUdp, "UDP"},
      {scenario::Transport::kTcp, "TCP"},
  };
  const std::pair<scenario::Direction, const char*> directions[] = {
      {scenario::Direction::kDownlink, "Down"},
      {scenario::Direction::kUplink, "Up"},
  };

  std::vector<sweep::ScenarioJob> jobs;
  for (const auto& [transport, tname] : transports) {
    for (const auto& [dir, dname] : directions) {
      // The paper attributes downlink equality to the AP's round-robin queueing.
      sweep::ScenarioJob job;
      job.config = StandardConfig(scenario::QdiscKind::kRoundRobin, Sec(20));
      for (NodeId id = 1; id <= 3; ++id) {
        scenario::StationSpec station;
        station.id = id;
        station.rate = phy::WifiRate::k11Mbps;
        job.stations.push_back(station);
        scenario::FlowSpec spec;
        spec.client = id;
        spec.direction = dir;
        spec.transport = transport;
        spec.udp_rate = Mbps(9);
        job.flows.push_back(spec);
      }
      jobs.push_back(std::move(job));
    }
  }
  const std::vector<scenario::Results> results = RunSweepScenarios(jobs);

  stats::Table table({"workload", "n1 Mbps", "n2 Mbps", "n3 Mbps", "total Mbps"});
  size_t job = 0;
  for (const auto& [transport, tname] : transports) {
    for (const auto& [dir, dname] : directions) {
      const scenario::Results& res = results[job++];
      table.AddRow({std::string(tname) + "_" + dname, stats::Table::Num(res.GoodputMbps(1)),
                    stats::Table::Num(res.GoodputMbps(2)),
                    stats::Table::Num(res.GoodputMbps(3)),
                    stats::Table::Num(res.AggregateMbps())});
    }
  }
  table.Print();
  PrintSweepFooter();
  return 0;
}
