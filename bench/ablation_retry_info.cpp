// Ablation (paper 4.4 / 5): the occupancy estimator's retransmission information. The
// paper's HostAP implementation had none and reports a slight bias favoring the slower
// node (Exp-TBR lands just below Eq. 12). With ground-truth per-attempt accounting the
// bias disappears. Run on lossy links, where retries actually happen.
#include "bench_common.h"

int main() {
  using namespace tbf;
  using namespace tbf::bench;

  PrintHeader("Ablation - occupancy estimation with vs without retransmission info",
              "paper 4.4/5: without retry info TBR slightly favors the slower/lossier "
              "node (Exp-TBR < Eq12); firmware retry info closes the gap");

  struct Case {
    const char* name;
    double per1;  // Loss on the slow node's link.
    scenario::Direction dir;
  };
  const Case cases[] = {
      {"1vs11 uplink, clean", 0.0, scenario::Direction::kUplink},
      {"1vs11 uplink, 15% loss on slow", 0.15, scenario::Direction::kUplink},
      {"1vs11 downlink, 15% loss on slow", 0.15, scenario::Direction::kDownlink},
  };

  std::vector<sweep::ScenarioJob> jobs;
  for (const Case& c : cases) {
    for (bool retry_info : {false, true}) {
      sweep::ScenarioJob job;
      job.config = StandardConfig(scenario::QdiscKind::kTbr, Sec(25));
      job.config.tbr.use_retry_info = retry_info;
      job.config.tbr.enable_rate_adjust = false;  // Isolate the estimator's effect.
      scenario::StationSpec s1;
      s1.id = 1;
      s1.rate = phy::WifiRate::k1Mbps;
      s1.per = c.per1;
      job.stations.push_back(s1);
      scenario::StationSpec s2;
      s2.id = 2;
      s2.rate = phy::WifiRate::k11Mbps;
      job.stations.push_back(s2);
      for (NodeId id = 1; id <= 2; ++id) {
        scenario::FlowSpec flow;
        flow.client = id;
        flow.direction = c.dir;
        flow.transport = scenario::Transport::kTcp;
        job.flows.push_back(flow);
      }
      jobs.push_back(std::move(job));
    }
  }
  const std::vector<scenario::Results> results = RunSweepScenarios(jobs);

  stats::Table table({"case", "retry info", "airtime n1(slow)", "airtime n2", "n2 Mbps",
                      "total Mbps"});
  size_t job = 0;
  for (const Case& c : cases) {
    for (bool retry_info : {false, true}) {
      const scenario::Results& res = results[job++];
      table.AddRow({c.name, retry_info ? "yes" : "no (paper)",
                    stats::Table::Num(res.AirtimeShare(1)),
                    stats::Table::Num(res.AirtimeShare(2)),
                    stats::Table::Num(res.GoodputMbps(2)),
                    stats::Table::Num(res.AggregateMbps())});
    }
  }
  table.Print();
  PrintSweepFooter();
  return 0;
}
