// Ablation (paper 4.4 / 5): the occupancy estimator's retransmission information. The
// paper's HostAP implementation had none and reports a slight bias favoring the slower
// node (Exp-TBR lands just below Eq. 12). With ground-truth per-attempt accounting the
// bias disappears. Run on lossy links, where retries actually happen.
#include "bench_common.h"

int main() {
  using namespace tbf;
  using namespace tbf::bench;

  PrintHeader("Ablation - occupancy estimation with vs without retransmission info",
              "paper 4.4/5: without retry info TBR slightly favors the slower/lossier "
              "node (Exp-TBR < Eq12); firmware retry info closes the gap");

  struct Case {
    const char* name;
    double per1;  // Loss on the slow node's link.
    scenario::Direction dir;
  };
  const Case cases[] = {
      {"1vs11 uplink, clean", 0.0, scenario::Direction::kUplink},
      {"1vs11 uplink, 15% loss on slow", 0.15, scenario::Direction::kUplink},
      {"1vs11 downlink, 15% loss on slow", 0.15, scenario::Direction::kDownlink},
  };

  stats::Table table({"case", "retry info", "airtime n1(slow)", "airtime n2", "n2 Mbps",
                      "total Mbps"});
  for (const Case& c : cases) {
    for (bool retry_info : {false, true}) {
      scenario::ScenarioConfig config = StandardConfig(scenario::QdiscKind::kTbr, Sec(25));
      config.tbr.use_retry_info = retry_info;
      config.tbr.enable_rate_adjust = false;  // Isolate the estimator's effect.
      scenario::Wlan wlan(config);
      wlan.AddStation(1, phy::WifiRate::k1Mbps, c.per1);
      wlan.AddStation(2, phy::WifiRate::k11Mbps);
      wlan.AddBulkTcp(1, c.dir);
      wlan.AddBulkTcp(2, c.dir);
      const scenario::Results res = wlan.Run();
      table.AddRow({c.name, retry_info ? "yes" : "no (paper)",
                    stats::Table::Num(res.AirtimeShare(1)),
                    stats::Table::Num(res.AirtimeShare(2)),
                    stats::Table::Num(res.GoodputMbps(2)),
                    stats::Table::Num(res.AggregateMbps())});
    }
  }
  table.Print();
  return 0;
}
