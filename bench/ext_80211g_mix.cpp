// Extension (paper 1 / 7): mixed 802.11b/g cells. A 54 Mbps ERP-OFDM client sharing a
// cell with 802.11b clients is dragged to b-class throughput under DCF's throughput
// fairness; time-based fairness restores most of the g-rate advantage, preserving the
// incentive to upgrade.
#include "bench_common.h"

int main() {
  using namespace tbf;
  using namespace tbf::bench;

  PrintHeader("Extension - 802.11g client in a mixed b/g cell",
              "paper 1/7: 'if 802.11g clients are slowed down to run at the rate of "
              "802.11b clients, there will be little incentive to upgrade'");

  struct Case {
    const char* name;
    phy::WifiRate partner;
  };
  const Case cases[] = {
      {"54g vs 54g", phy::WifiRate::k54Mbps},
      {"54g vs 11b", phy::WifiRate::k11Mbps},
      {"54g vs 1b", phy::WifiRate::k1Mbps},
  };
  const std::pair<scenario::QdiscKind, const char*> notions[] = {
      {scenario::QdiscKind::kFifo, "Normal"},
      {scenario::QdiscKind::kTbr, "TBR"},
  };

  std::vector<sweep::ScenarioJob> jobs;
  for (const Case& c : cases) {
    for (const auto& [kind, label] : notions) {
      // Mixed-mode timings (b-compatible slots) apply when any DSSS station is present.
      jobs.push_back(TcpPairJob(kind, phy::WifiRate::k54Mbps, c.partner,
                                scenario::Direction::kDownlink, Sec(20)));
    }
  }
  const std::vector<scenario::Results> results = RunSweepScenarios(jobs);

  stats::Table table({"case", "qdisc", "n1(54g) Mbps", "n2 Mbps", "total Mbps",
                      "airtime n1"});
  size_t job = 0;
  for (const Case& c : cases) {
    for (const auto& [kind, label] : notions) {
      const scenario::Results& res = results[job++];
      table.AddRow({c.name, label, stats::Table::Num(res.GoodputMbps(1)),
                    stats::Table::Num(res.GoodputMbps(2)),
                    stats::Table::Num(res.AggregateMbps()),
                    stats::Table::Num(res.AirtimeShare(1))});
    }
  }
  table.Print();
  std::printf("\nReading: under Normal, the g client collapses toward its b partner's "
              "throughput; under TBR it keeps ~half the airtime and most of its rate "
              "advantage.\n");
  PrintSweepFooter();
  return 0;
}
