// Figure 2: the multi-rate anomaly. Two uplink TCP nodes; when one drops to 1 Mbps both
// achieve the same (collapsed) throughput and the slow node hogs the channel time.
#include "bench_common.h"

int main() {
  using namespace tbf;
  using namespace tbf::bench;

  PrintHeader("Figure 2 - TCP throughput and channel time, 11vs11 and 11vs1 (uplink)",
              "paper: 11vs11 total 5.08 Mbps; 11vs1 total 1.34 Mbps, equal throughputs, "
              "slow node ~6.4x the fast node's channel time");

  const std::vector<sweep::ScenarioJob> jobs = {
      TcpPairJob(scenario::QdiscKind::kFifo, phy::WifiRate::k11Mbps,
                 phy::WifiRate::k11Mbps, scenario::Direction::kUplink),
      TcpPairJob(scenario::QdiscKind::kFifo, phy::WifiRate::k11Mbps,
                 phy::WifiRate::k1Mbps, scenario::Direction::kUplink),
  };
  const std::vector<scenario::Results> res = RunSweepScenarios(jobs);
  const scenario::Results& same = res[0];
  const scenario::Results& mixed = res[1];

  stats::Table table({"case", "n1 Mbps", "n2 Mbps", "total Mbps", "airtime n1", "airtime n2",
                      "air ratio"});
  table.AddRow({"11vs11", stats::Table::Num(same.GoodputMbps(1)),
                stats::Table::Num(same.GoodputMbps(2)),
                stats::Table::Num(same.AggregateMbps()),
                stats::Table::Num(same.AirtimeShare(1)),
                stats::Table::Num(same.AirtimeShare(2)),
                stats::Table::Ratio(same.AirtimeShare(1) / same.AirtimeShare(2))});
  table.AddRow({"11vs1", stats::Table::Num(mixed.GoodputMbps(1)),
                stats::Table::Num(mixed.GoodputMbps(2)),
                stats::Table::Num(mixed.AggregateMbps()),
                stats::Table::Num(mixed.AirtimeShare(1)),
                stats::Table::Num(mixed.AirtimeShare(2)),
                stats::Table::Ratio(mixed.AirtimeShare(2) / mixed.AirtimeShare(1))});
  table.Print();

  const double naive = (same.AggregateMbps() + 0.785) / 2.0;
  std::printf("\n11vs1 total %.2f Mbps vs naive expectation %.2f Mbps (paper: 1.34 vs 2.93);"
              "\nthe faster node's throughput is cut ~%.1fx by the slow competitor.\n",
              mixed.AggregateMbps(), naive, same.GoodputMbps(1) / mixed.GoodputMbps(1));
  PrintSweepFooter();
  return 0;
}
