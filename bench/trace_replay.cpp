// Trace-replay bench: a campus-style capture driven through the full simulated cell,
// DCF/FIFO (throughput-fair) vs TBR (time-fair), read out with the per-flow latency
// percentile metrology. This is the workload the paper's Section 5 deployment argument
// is about: real arrival processes (heavy-tailed transfers, think times, concurrent
// users) instead of synthetic saturation - and the question it answers is what the
// latency *distribution* (p50/p95/p99) of user-visible transfer times does when the AP
// switches to time-based fairness.
#include "bench_common.h"

#include "tbf/trace/generators.h"
#include "tbf/trace/replay.h"

int main() {
  using namespace tbf;
  using namespace tbf::bench;

  PrintHeader("Trace replay - campus capture under RF vs TF, latency percentiles",
              "paper Fig. 5 workload structure (Whittemore residence trace) replayed "
              "through the paper Fig. 6 regulator");

  // A busy stretch at a campus AP: heavy-tailed downloads, seconds-scale think times,
  // a handful of concurrent users. Generated with the residence-trace generator, then
  // recovered into per-user transfer schedules exactly the way an operator's pcap
  // would be.
  trace::ResidenceConfig capture;
  capture.duration = Sec(120);
  capture.users = 8;
  capture.mean_flow_bytes = 256.0 * 1024.0;
  capture.mean_think_sec = 15.0;
  capture.ap_capacity_bps = 3.5e6;  // Congested stretches, but a drainable total load.
  sim::Rng trace_rng(41);
  const trace::TraceLog log = trace::GenerateResidenceTrace(capture, trace_rng);
  const trace::TraceReplaySource source(log);

  // The capture's users sit at mixed distances from the AP: rate diversity is the
  // paper's precondition, so the replay assigns the slow rungs to three of the eight.
  auto rate_for = [](NodeId node) {
    switch (node) {
      case 2:
        return phy::WifiRate::k1Mbps;
      case 5:
        return phy::WifiRate::k2Mbps;
      case 7:
        return phy::WifiRate::k5_5Mbps;
      default:
        return phy::WifiRate::k11Mbps;
    }
  };

  const std::pair<scenario::QdiscKind, const char*> notions[] = {
      {scenario::QdiscKind::kFifo, "Exp-Normal(RF)"},
      {scenario::QdiscKind::kTbr, "Exp-TBR(TF)"},
      // The adaptive family, racing stock TBR on the same capture: the scorecard rows
      // docs/schedulers.md quotes. Appended after the stock pair so earlier captures
      // of the first two rows stay byte-comparable.
      {scenario::QdiscKind::kTbrBurstCredit, "Exp-TBR-burst"},
      {scenario::QdiscKind::kTbrFastEwma, "Exp-TBR-fast"},
      {scenario::QdiscKind::kTbrCreditHybrid, "Exp-TBR-hybrid"},
  };

  std::vector<sweep::ScenarioJob> jobs;
  for (const auto& [kind, name] : notions) {
    sweep::ScenarioJob job;
    job.config = StandardConfig(kind, source.last_arrival() + Sec(180));
    job.config.warmup = 0;  // Latency is per transfer, not windowed.
    job.config.seed = 2;
    for (NodeId id = 1; id <= capture.users; ++id) {
      scenario::StationSpec station;
      station.id = id;
      station.rate = rate_for(id);
      job.stations.push_back(station);
    }
    for (const trace::ReplayFlow& flow : source.flows()) {
      job.flows.push_back(scenario::MakeTraceReplaySpec(flow));
    }
    jobs.push_back(std::move(job));
  }
  const std::vector<scenario::Results> results = RunSweepScenarios(jobs);

  int64_t logged_transfers = 0;
  for (const trace::ReplayFlow& flow : source.flows()) {
    logged_transfers += static_cast<int64_t>(flow.tasks.size());
  }
  std::printf("Capture: %zu flows, %lld transfers, %.1f MB over %.0f s\n\n",
              source.flows().size(), static_cast<long long>(logged_transfers),
              static_cast<double>(source.total_bytes()) / 1e6,
              ToSeconds(source.last_arrival()));

  // One delivered-bytes accounting shared by the table's "bytes ok" cell and the exit
  // gate below, so the two can never disagree.
  std::vector<int64_t> delivered_by_job(results.size(), 0);
  for (size_t i = 0; i < results.size(); ++i) {
    for (const auto& fr : results[i].flows) {
      delivered_by_job[i] += fr.bytes_delivered;
    }
  }

  stats::Table table({"config", "transfers", "bytes ok", "p50 xfer s", "p95 xfer s",
                      "p99 xfer s", "p95 queue ms", "p50 rtt ms", "agg Mbps"});
  for (size_t i = 0; i < jobs.size(); ++i) {
    const scenario::Results& res = results[i];
    const int64_t delivered = delivered_by_job[i];
    table.AddRow({notions[i].second, std::to_string(res.tasks_completed),
                  delivered == source.total_bytes() ? "exact" : "SHORT",
                  stats::Table::Num(ToSeconds(res.task_latency.p50), 2),
                  stats::Table::Num(ToSeconds(res.task_latency.p95), 2),
                  stats::Table::Num(ToSeconds(res.task_latency.p99), 2),
                  stats::Table::Num(res.ap_queue_delay.P95Ms(), 1),
                  stats::Table::Num(res.rtt.P50Ms(), 1),
                  stats::Table::Num(res.AggregateMbps(), 2)});
  }
  table.Print();

  std::printf("\nReading: the replayed byte volume is identical under both policies "
              "(\"exact\" = every\nlogged transfer delivered its logged bytes); what "
              "moves is the latency distribution.\nTransfer times are sojourn times "
              "from each transfer's *logged* arrival, so backlog\nwait counts. "
              "Time-based fairness trims the median that rate anomaly inflates; "
              "its\ntail (p95/p99) carries both the slow users' longer transfers and "
              "stock TBR's 1/N\ninitial-share burst tax - the baseline the ROADMAP's "
              "burst-credit experiment must beat.\n");

  // Non-zero exit when a replay under-delivered: CI runs this binary as a determinism
  // gate, and a silent short count would make its diff-based check meaningless.
  for (const int64_t delivered : delivered_by_job) {
    if (delivered != source.total_bytes()) {
      std::printf("ERROR: replay delivered %lld of %lld logged bytes\n",
                  static_cast<long long>(delivered),
                  static_cast<long long>(source.total_bytes()));
      return 1;
    }
  }
  PrintSweepFooter();
  return 0;
}
