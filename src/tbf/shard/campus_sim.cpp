#include "tbf/shard/campus_sim.h"

#include <algorithm>
#include <condition_variable>
#include <cstdlib>
#include <functional>
#include <map>
#include <mutex>
#include <thread>

#include "tbf/scenario/flow_engine.h"
#include "tbf/shard/mailbox.h"
#include "tbf/shard/shard_link.h"
#include "tbf/sweep/sweep_runner.h"
#include "tbf/util/logging.h"

namespace tbf::shard {

using scenario::Direction;
using scenario::FlowEngine;
using scenario::FlowSpec;
using scenario::StationSpec;
using scenario::TrafficModel;
using scenario::Transport;

// One BSS shard: a complete single-cell stack (medium, DCF stations, AP + qdisc) with
// its own Simulator, PacketPool and Rng. The pool is declared right after the
// Simulator so it outlives every component that can hold packets, mirroring
// scenario::Wlan's member order.
struct CampusSim::CellShard {
  size_t index = 0;
  TimeNs link_delay = 0;  // One-way backbone latency of this cell's uplink/downlink.

  sim::Simulator sim;
  net::PacketPool pool;
  std::unique_ptr<sim::Rng> rng;
  std::unique_ptr<phy::FixedPerLink> fixed_loss;
  std::unique_ptr<phy::SnrLossModel> snr_loss;
  std::unique_ptr<phy::LossModel> loss;
  std::unique_ptr<mac::Medium> medium;
  std::unique_ptr<rateadapt::CompositeRateController> ap_rates;
  std::unique_ptr<ap::AccessPoint> ap;
  std::unique_ptr<net::Demux> demux;
  std::map<NodeId, std::unique_ptr<net::WirelessHost>> hosts;
  core::TimeBasedRegulator* tbr = nullptr;

  Mailbox to_core;                    // Written only by `uplink` during this cell's window.
  std::unique_ptr<ShardLink> uplink;  // Cell -> core backbone direction.

  // This shard's metrology: queue-delay taps for the cell's flows plus the task/RTT
  // meters of cell-side engines. Written only by the cell's thread during windows;
  // sealed into the campus engine by the coordinator at barriers.
  stats::StatsEngine stats;

  std::map<NodeId, TimeNs> airtime_at_warmup;
  TimeNs busy_at_warmup = 0;
};

// The wired core shard: owns the server side of every flow. There is no medium here -
// just the transports, reached through the core demux, and one downlink ShardLink per
// cell.
struct CampusSim::CoreShard {
  sim::Simulator sim;
  net::PacketPool pool;
  std::unique_ptr<sim::Rng> rng;
  std::unique_ptr<net::Demux> demux;
  std::vector<Mailbox> to_cell;  // [i] written only by downlinks[i] during core windows.
  std::vector<std::unique_ptr<ShardLink>> downlinks;

  // Core-side metrology: task/RTT meters of core-side engines plus delivered bytes of
  // flows whose receiver lives here. Same ownership rule as the cell engines.
  stats::StatsEngine stats;
};

// One campus flow. The FlowEngine lives in exactly one shard (TCP: the sender's, where
// task completion is observed via the final cumulative ack; UDP: the sink's, where
// delivery is counted); the far endpoint is owned here and lives in the opposite
// shard's Simulator. `remote_delivered` is written by the receiver's shard during
// windows and read by the coordinator only at barriers (warmup snapshot / readout).
struct CampusSim::FlowState {
  size_t bss = 0;
  bool uplink = true;
  bool tcp = true;
  bool engine_in_cell = true;

  FlowEngine engine;
  std::unique_ptr<net::TcpReceiver> remote_tcp_receiver;
  std::unique_ptr<net::UdpSource> remote_udp_source;

  int64_t remote_delivered = 0;
  int64_t remote_snapshot = 0;
};

// Persistent window pool: `threads` workers claim shard indices from a shared counter
// and advance them to the window end. Claims and completion counts are mutex-guarded
// (plain mutex happens-before on both edges of every window, which both the memory
// model and TSan reason about directly); the shard advance itself runs unlocked -
// shards share no mutable state, so no further synchronization exists or is needed.
class CampusSim::Pool {
 public:
  Pool(CampusSim* owner, int threads, size_t shards) : owner_(owner), total_(shards) {
    workers_.reserve(static_cast<size_t>(threads));
    for (int i = 0; i < threads; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ~Pool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    work_cv_.notify_all();
    for (std::thread& worker : workers_) {
      worker.join();
    }
  }

  // Advances every shard to `until`; returns when all have arrived at the barrier.
  void RunWindow(TimeNs until) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      window_ = until;
      next_ = 0;
      done_ = 0;
      ++generation_;
    }
    work_cv_.notify_all();
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [this] { return done_ == total_; });
  }

 private:
  void WorkerLoop() {
    int64_t seen = 0;
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      work_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) {
        return;
      }
      seen = generation_;
      const TimeNs until = window_;
      while (next_ < total_) {
        const size_t shard = next_++;
        lock.unlock();
        owner_->AdvanceShard(shard, until);
        lock.lock();
        if (++done_ == total_) {
          done_cv_.notify_all();
        }
      }
    }
  }

  CampusSim* owner_;
  const size_t total_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::vector<std::thread> workers_;
  TimeNs window_ = 0;
  size_t next_ = 0;
  size_t done_ = 0;
  int64_t generation_ = 0;
  bool stop_ = false;
};

CampusSim::CampusSim(scenario::CampusConfig config, int threads)
    : config_(config),
      threads_(threads > 0 ? std::min(threads, 64) : DefaultShardThreads()) {}

CampusSim::~CampusSim() = default;

int CampusSim::DefaultShardThreads() {
  if (const char* env = std::getenv("TBF_SHARD_THREADS"); env != nullptr) {
    const int n = std::atoi(env);
    if (n > 0) {
      return std::min(n, 64);
    }
  }
  if (sweep::SweepRunner::InSweepWorker()) {
    return 1;  // The sweep already owns the machine's parallelism budget.
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(std::min(hw, 64u));
}

scenario::BssSpec& CampusSim::AddBss(scenario::BssSpec bss) {
  TBF_CHECK(!built_) << "AddBss after Run";
  bss_.push_back(std::move(bss));
  return bss_.back();
}

int CampusSim::shard_count() const {
  return static_cast<int>((built_ ? cells_.size() : bss_.size()) + 1);
}

void CampusSim::Build() {
  TBF_CHECK(!built_);
  if (std::string err = scenario::ValidateCampus(config_, bss_); !err.empty()) {
    throw scenario::ScenarioError("invalid campus: " + err);
  }
  built_ = true;

  lookahead_ = 0;
  for (const scenario::BssSpec& bss : bss_) {
    const TimeNs delay =
        bss.backbone_delay > 0 ? bss.backbone_delay : config_.backbone_delay;
    lookahead_ = lookahead_ == 0 ? delay : std::min(lookahead_, delay);
  }

  // The core seeds from the campus seed itself, cell i from seed + 1 + i, so every
  // shard draws an independent, reproducible stream.
  core_ = std::make_unique<CoreShard>();
  core_->rng = std::make_unique<sim::Rng>(config_.cell.seed);
  core_->demux = std::make_unique<net::Demux>();
  core_->stats = stats::StatsEngine(config_.cell.stats);
  campus_stats_ = stats::StatsEngine(config_.cell.stats);
  core_->to_cell.resize(bss_.size());  // Sized once: Mailbox addresses must be stable.

  cells_.reserve(bss_.size());
  for (size_t i = 0; i < bss_.size(); ++i) {
    BuildCell(i);
    core_->downlinks.push_back(std::make_unique<ShardLink>(
        &core_->sim, &core_->to_cell[i], config_.backbone_rate,
        cells_[i]->link_delay, config_.backbone_queue_limit));
  }

  BuildFlows();

  threads_ = std::min(threads_, shard_count());
  if (threads_ > 1) {
    pool_ = std::make_unique<Pool>(this, threads_, cells_.size() + 1);
  }
}

void CampusSim::BuildCell(size_t index) {
  const scenario::BssSpec& bss = bss_[index];
  const scenario::ScenarioConfig& cc = config_.cell;

  auto cell = std::make_unique<CellShard>();
  cell->index = index;
  cell->stats = stats::StatsEngine(cc.stats);
  cell->link_delay =
      bss.backbone_delay > 0 ? bss.backbone_delay : config_.backbone_delay;
  cell->rng = std::make_unique<sim::Rng>(cc.seed + 1 + static_cast<uint64_t>(index));
  cell->fixed_loss = std::make_unique<phy::FixedPerLink>();
  cell->snr_loss = std::make_unique<phy::SnrLossModel>();
  cell->loss = std::make_unique<phy::DispatchLossModel>(cell->fixed_loss.get(),
                                                        cell->snr_loss.get());
  cell->medium = std::make_unique<mac::Medium>(&cell->sim, cc.timings, cell->loss.get(),
                                               cell->rng.get());
  cell->ap_rates = std::make_unique<rateadapt::CompositeRateController>();
  cell->ap = std::make_unique<ap::AccessPoint>(
      &cell->sim, cell->medium.get(),
      scenario::MakeQdisc(cc, &cell->sim, cell->ap_rates.get(), &cell->tbr),
      cell->ap_rates.get());
  cell->demux = std::make_unique<net::Demux>();
  cell->uplink = std::make_unique<ShardLink>(&cell->sim, &cell->to_core,
                                             config_.backbone_rate, cell->link_delay,
                                             config_.backbone_queue_limit);
  ShardLink* up = cell->uplink.get();
  cell->ap->SetUplinkForward([up](net::PacketPtr p) { up->Send(std::move(p)); });

  for (const StationSpec& spec : bss.stations) {
    if (spec.snr_db != 0.0) {
      cell->snr_loss->SetClientSnr(spec.id, spec.snr_db);
    } else if (spec.per > 0.0) {
      cell->fixed_loss->SetClientPer(spec.id, spec.per);
    }
    std::unique_ptr<rateadapt::RateController> client_rates;
    if (spec.arf) {
      rateadapt::ArfConfig arf;
      arf.initial_rate = spec.rate;
      auto ctrl = std::make_unique<rateadapt::ArfController>(arf);
      ctrl->Seed(kApId, spec.rate);
      client_rates = std::move(ctrl);
      cell->ap_rates->MarkAdaptive(spec.id, spec.rate);
    } else {
      client_rates = std::make_unique<rateadapt::FixedRateController>(spec.rate);
      cell->ap_rates->PinRate(spec.id, spec.rate);
    }
    cell->hosts.emplace(spec.id, std::make_unique<net::WirelessHost>(
                                     &cell->sim, cell->medium.get(), spec.id,
                                     std::move(client_rates), cell->demux.get(),
                                     spec.queue_limit));
    cell->ap->Associate(spec.id);
  }

  // Same association-order invariance as the single-cell builder: the allowance
  // divisor is this BSS's declared station count (all associated upfront above).
  if (cell->tbr != nullptr && cc.tbr.contention_contenders == 0) {
    cell->tbr->SetContentionContenders(static_cast<int>(bss.stations.size()));
  }

  if (cell->tbr != nullptr && cc.tbr.client_agent) {
    CellShard* raw = cell.get();
    cell->tbr->SetClientPauseFn([raw](NodeId client, TimeNs until) {
      auto it = raw->hosts.find(client);
      if (it != raw->hosts.end()) {
        it->second->PauseUplinkUntil(until);
      }
    });
  }

  cells_.push_back(std::move(cell));
}

void CampusSim::BuildFlows() {
  int next_flow_id = 1;
  for (size_t b = 0; b < bss_.size(); ++b) {
    CellShard* cell = cells_[b].get();
    ShardLink* down = core_->downlinks[b].get();
    for (const FlowSpec& spec : bss_[b].flows) {
      auto fs = std::make_unique<FlowState>();
      fs->bss = b;
      fs->uplink = spec.direction == Direction::kUplink;
      fs->tcp = spec.transport == Transport::kTcp;
      // TCP engines sit with the sender (task completion = final cumulative ack);
      // UDP engines sit with the sink (delivery is the completion signal).
      fs->engine_in_cell = fs->tcp ? fs->uplink : !fs->uplink;

      FlowEngine& rt = fs->engine;
      rt.spec = spec;
      rt.flow_id = next_flow_id++;
      rt.sim = fs->engine_in_cell ? &cell->sim : &core_->sim;
      rt.rng = fs->engine_in_cell ? cell->rng.get() : core_->rng.get();
      rt.stats = fs->engine_in_cell ? &cell->stats : &core_->stats;
      // A flow is registered wherever a shard records for it: its engine's shard
      // (task + RTT meters), its cell (the AP queue-delay tap always fires there),
      // and - for TCP - the receiver's shard (delivered bytes). Registration is
      // idempotent, so overlaps are fine.
      rt.stats->RegisterFlow(rt.flow_id);
      cell->stats.RegisterFlow(rt.flow_id);

      auto it = cell->hosts.find(spec.client);
      TBF_CHECK(it != cell->hosts.end()) << "flow references unknown station "
                                         << spec.client;
      net::WirelessHost* host = it->second.get();

      net::FlowAddress addr;
      addr.flow_id = rt.flow_id;
      addr.wlan_client = spec.client;
      addr.sender = fs->uplink ? spec.client : kServerId;
      addr.receiver = fs->uplink ? kServerId : spec.client;

      // The two shard-edge exits: into the cell's air, or into this cell's downlink.
      std::function<void(net::PacketPtr)> cell_out = [host](net::PacketPtr p) {
        host->SendPacket(std::move(p));
      };
      std::function<void(net::PacketPtr)> core_out = [down](net::PacketPtr p) {
        down->Send(std::move(p));
      };

      const TimeNs flow_start = rt.InitFirstTask(spec.start);
      const int64_t first_task = rt.task_target;
      FlowEngine* rt_ptr = &rt;
      FlowState* fs_ptr = fs.get();

      if (fs->tcp) {
        net::TcpConfig tcp;
        tcp.mss = spec.packet_bytes - net::kIpTcpHeaderBytes;
        sim::Simulator* send_sim = fs->uplink ? &cell->sim : &core_->sim;
        net::PacketPool* send_pool = fs->uplink ? &cell->pool : &core_->pool;
        sim::Simulator* recv_sim = fs->uplink ? &core_->sim : &cell->sim;
        net::PacketPool* recv_pool = fs->uplink ? &core_->pool : &cell->pool;
        // Delivered bytes are counted where the receiver lives - the shard opposite
        // the engine - and read by the coordinator only at barriers. The receiver
        // shard's stats engine also counts them (driving its retention ranking).
        stats::StatsEngine* recv_stats = fs->uplink ? &core_->stats : &cell->stats;
        recv_stats->RegisterFlow(rt.flow_id);
        const int fid = rt.flow_id;
        auto deliver = [fs_ptr, recv_stats, recv_sim, fid](int64_t bytes) {
          fs_ptr->remote_delivered += bytes;
          recv_stats->RecordBytes(fid, recv_sim->Now(), bytes);
        };
        rt.tcp_sender = std::make_unique<net::TcpSender>(
            send_sim, send_pool, tcp, addr, fs->uplink ? cell_out : core_out);
        fs->remote_tcp_receiver = std::make_unique<net::TcpReceiver>(
            recv_sim, recv_pool, tcp, addr, fs->uplink ? core_out : cell_out, deliver);
        if (first_task > 0) {
          rt.tcp_sender->SetTaskBytes(first_task);
          rt.tcp_sender->SetOnTaskComplete([rt_ptr] { rt_ptr->OnTaskComplete(); });
        }
        if (spec.app_limit_bps > 0) {
          rt.tcp_sender->SetAppLimitBps(spec.app_limit_bps);
        }
        rt.tcp_sender->SetRttSampleFn([rt_ptr](TimeNs sample) {
          rt_ptr->stats->RecordRtt(rt_ptr->flow_id, rt_ptr->sim->Now(), sample);
        });
        net::Demux* send_demux = fs->uplink ? cell->demux.get() : core_->demux.get();
        net::Demux* recv_demux = fs->uplink ? core_->demux.get() : cell->demux.get();
        send_demux->Register(addr.sender, addr.flow_id, rt.tcp_sender.get());
        recv_demux->Register(addr.receiver, addr.flow_id, fs->remote_tcp_receiver.get());
        rt.actual_start = flow_start;
        rt.tcp_sender->Start(rt.actual_start);
      } else {
        // UDP: the source sits on the sending side, the sink (with the engine) where
        // delivery happens. Campus validation pinned the model to kBulk, so the engine
        // never has to restart the remote source.
        sim::Simulator* src_sim = fs->uplink ? &cell->sim : &core_->sim;
        net::PacketPool* src_pool = fs->uplink ? &cell->pool : &core_->pool;
        sim::Rng* src_rng = fs->uplink ? cell->rng.get() : core_->rng.get();
        auto deliver = [rt_ptr](int64_t bytes) { rt_ptr->OnDelivered(bytes); };
        fs->remote_udp_source = std::make_unique<net::UdpSource>(
            src_sim, src_pool, addr, fs->uplink ? cell_out : core_out, spec.udp_rate,
            spec.packet_bytes, first_task, src_rng);
        rt.udp_sink = std::make_unique<net::UdpSink>(deliver);
        net::Demux* recv_demux = fs->uplink ? core_->demux.get() : cell->demux.get();
        recv_demux->Register(addr.receiver, addr.flow_id, rt.udp_sink.get());
        // Stagger CBR starts so synchronized sources do not phase-lock; flow ids are
        // campus-global, so the stagger pattern matches an equivalent single cell.
        rt.actual_start = flow_start + rt.flow_id * Us(97);
        fs->remote_udp_source->Start(rt.actual_start);
      }
      rt.task_started_at = rt.actual_start;
      flows_.push_back(std::move(fs));
    }
  }

  // AP qdisc residency taps: each cell's tap only ever fires for that cell's flows
  // and records into that cell's own stats engine, so every engine keeps exactly one
  // writing thread.
  for (std::unique_ptr<CellShard>& cell : cells_) {
    CellShard* raw = cell.get();
    cell->ap->SetQueueDelayFn([raw](int flow_id, NodeId /*client*/, TimeNs delay) {
      raw->stats.RecordQueueDelay(flow_id, raw->sim.Now(), delay);
    });
  }
}

void CampusSim::AdvanceShard(size_t index, TimeNs until) {
  if (index < cells_.size()) {
    cells_[index]->sim.RunUntil(until);
  } else {
    core_->sim.RunUntil(until);
  }
}

// Drains every mailbox at a window barrier, on the coordinator thread, in a fixed
// order (per cell ascending: core->cell first, then cell->core). The order pins the
// schedule sequence numbers of equal-timestamp deliveries, which is what makes the
// campus bit-identical across shard-thread counts. Every posted arrival is strictly
// later than the barrier (the ShardLink invariant), so ScheduleAt never clamps.
void CampusSim::DrainMailboxes() {
  for (size_t i = 0; i < cells_.size(); ++i) {
    CellShard* cell = cells_[i].get();
    ap::AccessPoint* ap = cell->ap.get();
    for (const PacketRecord& r : core_->to_cell[i].pending()) {
      net::Packet* raw = Materialize(r, &cell->pool).Detach();
      cell->sim.ScheduleAt(r.arrival, [ap, raw] {
        ap->EnqueueDownlink(net::PacketPtr::Adopt(raw));
      });
    }
    core_->to_cell[i].Clear();
  }
  net::Demux* demux = core_->demux.get();
  for (std::unique_ptr<CellShard>& cell : cells_) {
    for (const PacketRecord& r : cell->to_core.pending()) {
      net::Packet* raw = Materialize(r, &core_->pool).Detach();
      core_->sim.ScheduleAt(r.arrival, [demux, raw] {
        const net::PacketPtr p = net::PacketPtr::Adopt(raw);
        demux->Deliver(kServerId, p);
      });
    }
    cell->to_core.Clear();
  }
}

void CampusSim::RunWindows(TimeNs until) {
  while (t_ < until) {
    const TimeNs window_end = std::min(t_ + lookahead_, until);
    if (pool_ != nullptr) {
      pool_->RunWindow(window_end);
    } else {
      for (size_t k = 0; k < cells_.size() + 1; ++k) {
        AdvanceShard(k, window_end);
      }
    }
    DrainMailboxes();
    // Windowed metrology: seal every interval that ended at or before this barrier,
    // merging child windows into the campus engine in fixed order (cells ascending,
    // then core) before the campus engine seals - the same determinism recipe as the
    // mailbox drain above. All on the coordinator thread; shard threads are parked.
    if (config_.cell.stats.window > 0) {
      for (std::unique_ptr<CellShard>& cell : cells_) {
        cell->stats.SealWindowsUpTo(window_end, &campus_stats_);
      }
      core_->stats.SealWindowsUpTo(window_end, &campus_stats_);
      campus_stats_.SealWindowsUpTo(window_end);
    }
    ++windows_;
    t_ = window_end;
  }
}

scenario::CampusResults CampusSim::Run() {
  if (!built_) {
    Build();
  }
  const scenario::ScenarioConfig& cc = config_.cell;

  RunWindows(cc.warmup);
  for (std::unique_ptr<CellShard>& cell : cells_) {
    for (const auto& [node, t] : cell->medium->airtime_meter().by_node()) {
      cell->airtime_at_warmup[node] = t;
    }
    cell->busy_at_warmup = cell->medium->busy_time();
  }
  for (std::unique_ptr<FlowState>& fs : flows_) {
    fs->engine.window_snapshot = fs->engine.delivered_bytes;
    fs->remote_snapshot = fs->remote_delivered;
  }

  RunWindows(cc.warmup + cc.duration);

  // End-of-run metrology flush: children first (fixed order), then the campus engine,
  // so the partial last window and - in unwindowed streaming mode - the whole-run
  // meters land in the campus tree exactly once.
  for (std::unique_ptr<CellShard>& cell : cells_) {
    cell->stats.FlushAll(&campus_stats_);
  }
  core_->stats.FlushAll(&campus_stats_);
  campus_stats_.FlushAll();

  scenario::CampusResults out;
  out.lookahead = lookahead_;
  out.windows = windows_;
  const double window_sec = ToSeconds(cc.duration);

  out.cells.resize(cells_.size());
  for (size_t i = 0; i < cells_.size(); ++i) {
    CellShard* cell = cells_[i].get();
    scenario::Results& r = out.cells[i];

    TimeNs total_airtime_delta = 0;
    std::map<NodeId, TimeNs> airtime_delta;
    for (const auto& [node, t] : cell->medium->airtime_meter().by_node()) {
      const TimeNs before = cell->airtime_at_warmup.contains(node)
                                ? cell->airtime_at_warmup[node]
                                : 0;
      airtime_delta[node] = t - before;
      total_airtime_delta += t - before;
    }
    for (const auto& [node, dt] : airtime_delta) {
      r.airtime_share[node] =
          total_airtime_delta > 0
              ? static_cast<double>(dt) / static_cast<double>(total_airtime_delta)
              : 0.0;
    }

    double sum_task_sec = 0.0;
    int64_t table1_tasks = 0;
    for (std::unique_ptr<FlowState>& fs : flows_) {
      if (fs->bss != i) {
        continue;
      }
      // TCP delivery is always counted in the receiver's shard (opposite the engine);
      // UDP delivery is counted by the engine itself (it owns the sink). Task/RTT
      // meters read from the engine's shard, queue delay always from the cell.
      const int64_t delta =
          fs->tcp ? fs->remote_delivered - fs->remote_snapshot
                  : fs->engine.delivered_bytes - fs->engine.window_snapshot;
      const stats::StatsEngine& engine_stats =
          fs->engine_in_cell ? cell->stats : core_->stats;
      AccumulateFlowResult(fs->engine, delta, window_sec, engine_stats, cell->stats,
                           &r, &sum_task_sec, &table1_tasks);
    }
    if (table1_tasks > 0) {
      r.avg_task_time_sec = sum_task_sec / static_cast<double>(table1_tasks);
    }
    // The per-cell sketches are the per-flow merges (retained flows only under
    // sampled retention); the per-cell series covers what this cell's shard observed.
    r.rtt = scenario::LatencySummary::FromSketch(r.rtt_sketch);
    r.ap_queue_delay = scenario::LatencySummary::FromSketch(r.ap_queue_delay_sketch);
    r.task_latency = scenario::LatencySummary::FromSketch(r.task_latency_sketch);
    r.rtt_series = cell->stats.series(stats::kRtt);
    r.ap_queue_delay_series = cell->stats.series(stats::kQueueDelay);
    r.task_latency_series = cell->stats.series(stats::kTaskLatency);
    r.goodput_series = cell->stats.bytes_series();

    r.utilization = static_cast<double>(cell->medium->busy_time() -
                                        cell->busy_at_warmup) /
                    cc.duration;
    r.mac_collisions = cell->medium->collisions();
    r.mac_exchanges = cell->medium->exchanges();
    r.ap_drops = cell->ap->downlink_drops();

    out.aggregate_bps += r.aggregate_bps;
    out.tasks_completed += r.tasks_completed;
    out.mac_exchanges += r.mac_exchanges;
    out.mac_collisions += r.mac_collisions;
    out.rtt_sketch.Merge(r.rtt_sketch);
    out.ap_queue_delay_sketch.Merge(r.ap_queue_delay_sketch);
    out.task_latency_sketch.Merge(r.task_latency_sketch);

    out.cross_shard_packets += cell->uplink->sent() + core_->downlinks[i]->sent();
    out.backbone_drops += cell->uplink->drops() + core_->downlinks[i]->drops();
  }
  // Legacy exact mode: the campus-wide sketches are the per-cell merges above, byte-
  // identical to the pre-engine readout. Streaming modes: the campus engine's merge
  // tree carries every sample from every shard, so it replaces them.
  if (campus_stats_.HasCompleteMeters()) {
    out.rtt_sketch = campus_stats_.meter(stats::kRtt);
    out.ap_queue_delay_sketch = campus_stats_.meter(stats::kQueueDelay);
    out.task_latency_sketch = campus_stats_.meter(stats::kTaskLatency);
  }
  out.rtt = scenario::LatencySummary::FromSketch(out.rtt_sketch);
  out.ap_queue_delay = scenario::LatencySummary::FromSketch(out.ap_queue_delay_sketch);
  out.task_latency = scenario::LatencySummary::FromSketch(out.task_latency_sketch);
  out.rtt_series = campus_stats_.series(stats::kRtt);
  out.ap_queue_delay_series = campus_stats_.series(stats::kQueueDelay);
  out.task_latency_series = campus_stats_.series(stats::kTaskLatency);
  out.goodput_series = campus_stats_.bytes_series();
  return out;
}

size_t CampusSim::MetrologyBytes() const {
  size_t total = campus_stats_.MemoryFootprintBytes();
  for (const std::unique_ptr<CellShard>& cell : cells_) {
    total += cell->stats.MemoryFootprintBytes();
  }
  if (core_ != nullptr) {
    total += core_->stats.MemoryFootprintBytes();
  }
  return total;
}

}  // namespace tbf::shard
