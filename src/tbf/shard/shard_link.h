// One direction of a backbone link whose far end lives in another shard.
//
// Mirrors net::WiredLink's busy-until serialization exactly (idle send = one event,
// backlogged direction = a drain chain), but instead of scheduling a delivery event it
// posts a PacketRecord into the destination shard's mailbox, stamped with the absolute
// arrival time `now + tx_time + delay`. Because a send at time s inside window (t-W, t]
// arrives at s + tx + delay > t - W + W = t, every posted arrival lands strictly after
// the window barrier - the conservative-lookahead invariant that lets the coordinator
// schedule mailbox deliveries into the destination's future without rollback.
#ifndef TBF_SHARD_SHARD_LINK_H_
#define TBF_SHARD_SHARD_LINK_H_

#include "tbf/net/packet.h"
#include "tbf/shard/mailbox.h"
#include "tbf/sim/simulator.h"
#include "tbf/util/units.h"

namespace tbf::shard {

class ShardLink {
 public:
  // `sim` is the *sending* shard's simulator; `out` the destination shard's mailbox.
  ShardLink(sim::Simulator* sim, Mailbox* out, BitRate rate, TimeNs delay,
            size_t queue_limit)
      : sim_(sim), out_(out), rate_(rate), delay_(delay), queue_limit_(queue_limit) {}

  ShardLink(const ShardLink&) = delete;
  ShardLink& operator=(const ShardLink&) = delete;

  void Send(net::PacketPtr p) {
    if (sim_->Now() >= busy_until_ && !drain_scheduled_) {
      Transmit(std::move(p));  // Link idle and nothing queued ahead.
      return;
    }
    if (queue_.size() >= queue_limit_) {
      ++drops_;
      return;
    }
    // MAC duplicate deliveries can forward the same packet again while its first copy
    // still waits here; enqueue a clone (same hazard as WiredLink).
    p = net::CloneIfQueued(std::move(p));
    queue_.PushBack(std::move(p));
    if (!drain_scheduled_) {
      drain_scheduled_ = true;
      sim_->ScheduleAt(busy_until_, [this] { Drain(); });
    }
  }

  TimeNs delay() const { return delay_; }
  int64_t sent() const { return sent_; }
  int64_t drops() const { return drops_; }

 private:
  void Transmit(net::PacketPtr p) {
    const TimeNs tx_time = TransmissionTime(p->size_bytes, rate_);
    busy_until_ = sim_->Now() + tx_time;
    // The packet's life ends at this shard's edge: flatten it into the mailbox record
    // and release it back to the local pool; the destination shard re-materializes it
    // from its own pool when the barrier drains the mailbox.
    out_->Post(MakeRecord(*p, busy_until_ + delay_));
    ++sent_;
  }

  // Fires when the serialization ahead of the queued backlog ends; FIFO order is
  // preserved because Send never bypasses a scheduled drain.
  void Drain() {
    drain_scheduled_ = false;
    if (queue_.empty()) {
      return;
    }
    Transmit(queue_.PopFront());
    if (!queue_.empty()) {
      drain_scheduled_ = true;
      sim_->ScheduleAt(busy_until_, [this] { Drain(); });
    }
  }

  sim::Simulator* sim_;
  Mailbox* out_;
  BitRate rate_;
  TimeNs delay_;
  size_t queue_limit_;
  net::PacketFifo queue_;
  TimeNs busy_until_ = 0;
  bool drain_scheduled_ = false;
  int64_t sent_ = 0;
  int64_t drops_ = 0;
};

}  // namespace tbf::shard

#endif  // TBF_SHARD_SHARD_LINK_H_
