// Cross-shard packet handoff: value records and single-producer mailboxes.
//
// Shards never share packets. A packet crossing the backbone is flattened into a
// PacketRecord (plain values, no pool pointers) by the sending shard and materialized
// into a fresh packet from the *destination* shard's pool when the mailbox drains at the
// next window barrier. Pools therefore stay thread-private and refcounts non-atomic.
//
// A Mailbox is a plain vector: exactly one shard appends to it during a window (the
// owner of the sending ShardLink) and only the coordinator reads it, between windows,
// when every shard thread has been joined at the barrier. The barrier's happens-before
// is the only synchronization the mailbox needs - no atomics, no locks.
#ifndef TBF_SHARD_MAILBOX_H_
#define TBF_SHARD_MAILBOX_H_

#include <vector>

#include "tbf/net/packet.h"

namespace tbf::shard {

// The wire-format of a packet in flight between shards: every field a transport or AP
// on the far side reads. `ap_enqueued` deliberately does not cross - it is re-stamped
// when the destination AP enqueues the materialized packet, exactly as WiredLink
// deliveries into an AP behave in the single-cell build.
struct PacketRecord {
  TimeNs arrival = 0;  // Absolute delivery time in the destination shard.
  NodeId src = kInvalidNodeId;
  NodeId dst = kInvalidNodeId;
  NodeId wlan_client = kInvalidNodeId;
  int flow_id = -1;
  net::Proto proto = net::Proto::kUdp;
  int size_bytes = 0;
  int64_t seq = 0;
  int64_t end_seq = 0;
  int64_t ack = 0;
  TimeNs created = 0;
};

inline PacketRecord MakeRecord(const net::Packet& p, TimeNs arrival) {
  PacketRecord r;
  r.arrival = arrival;
  r.src = p.src;
  r.dst = p.dst;
  r.wlan_client = p.wlan_client;
  r.flow_id = p.flow_id;
  r.proto = p.proto;
  r.size_bytes = p.size_bytes;
  r.seq = p.seq;
  r.end_seq = p.end_seq;
  r.ack = p.ack;
  r.created = p.created;
  return r;
}

// Deep-copies a record into a fresh packet drawn from `pool` (the destination shard's).
inline net::PacketPtr Materialize(const PacketRecord& r, net::PacketPool* pool) {
  net::PacketPtr p = pool->Allocate();
  p->src = r.src;
  p->dst = r.dst;
  p->wlan_client = r.wlan_client;
  p->flow_id = r.flow_id;
  p->proto = r.proto;
  p->size_bytes = r.size_bytes;
  p->seq = r.seq;
  p->end_seq = r.end_seq;
  p->ack = r.ack;
  p->created = r.created;
  return p;
}

// Single-producer, barrier-drained record queue. Posts happen on the producing shard's
// thread inside a window; pending()/Clear() happen on the coordinator between windows.
class Mailbox {
 public:
  void Post(PacketRecord record) { records_.push_back(record); }

  const std::vector<PacketRecord>& pending() const { return records_; }

  // Keeps capacity: a steady cross-shard flow settles into zero allocations per window.
  void Clear() { records_.clear(); }

 private:
  std::vector<PacketRecord> records_;
};

}  // namespace tbf::shard

#endif  // TBF_SHARD_MAILBOX_H_
