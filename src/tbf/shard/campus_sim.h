// Conservative multi-AP parallel simulation: one shard per BSS plus a wired core.
//
// CampusSim partitions a scenario::CampusConfig + BssSpec list into shards, each owning
// its own Simulator, PacketPool, Rng and dense per-node state - a full single-cell
// stack for every BSS, and one core shard holding the server side of every flow. The
// shards share no mutable state: all cross-shard traffic is flattened into value
// records (shard/mailbox.h) by ShardLinks and re-materialized from the destination
// shard's pool, so refcounts stay non-atomic and TSan sees only the window barrier.
//
// Time advances in lock-step windows of width W = the minimum one-way backbone latency
// (the lookahead). Every shard runs (t, t+W] independently - in parallel when
// shard threads are available - then the coordinator drains all mailboxes in a fixed
// order and schedules the deliveries. A packet sent at s > t arrives at
// s + serialization + L > t + W, i.e. strictly after the next barrier, so barrier-time
// scheduling never lands in a shard's past and no rollback is ever needed.
//
// Determinism: shard interiors are sequential discrete-event runs; mailbox contents
// depend only on shard state; and the coordinator drains mailboxes in a fixed order
// (per cell ascending: core->cell first, then cell->core), so equal-timestamp delivery
// events always carry the same schedule sequence numbers. Results are therefore
// bit-identical for any shard-thread count and any thread schedule - CI diffs the
// campus bench output across TBF_SHARD_THREADS=1/2/4 to hold that line.
#ifndef TBF_SHARD_CAMPUS_SIM_H_
#define TBF_SHARD_CAMPUS_SIM_H_

#include <memory>
#include <vector>

#include "tbf/scenario/campus.h"

namespace tbf::shard {

class CampusSim {
 public:
  // `threads` <= 0 selects DefaultShardThreads(). The count is clamped to the number
  // of shards at build time; 1 runs every window serially on the calling thread.
  explicit CampusSim(scenario::CampusConfig config, int threads = 0);
  ~CampusSim();

  CampusSim(const CampusSim&) = delete;
  CampusSim& operator=(const CampusSim&) = delete;

  // Declaration phase (before Run).
  scenario::BssSpec& AddBss(scenario::BssSpec bss);

  // Builds every shard, runs warmup + duration in lock-step windows, and returns the
  // campus readout. Throws scenario::ScenarioError on an invalid declaration.
  scenario::CampusResults Run();

  // TBF_SHARD_THREADS when set (clamped to [1, 64]); else 1 inside a SweepRunner
  // worker (the sweep already owns the parallelism budget); else hardware concurrency.
  static int DefaultShardThreads();

  // Post-build introspection.
  TimeNs lookahead() const { return lookahead_; }
  int shard_count() const;
  int thread_count() const { return threads_; }

  // Bytes currently held by metrology across every shard engine plus the campus merge
  // tree - the readout-memory number the streaming StatsConfig modes bound
  // (bench_campus_scale reports it per row). Meaningful after Run().
  size_t MetrologyBytes() const;

 private:
  struct CellShard;
  struct CoreShard;
  struct FlowState;
  class Pool;

  void Build();
  void BuildCell(size_t index);
  void BuildFlows();
  void RunWindows(TimeNs until);
  void AdvanceShard(size_t index, TimeNs until);
  void DrainMailboxes();

  scenario::CampusConfig config_;
  std::vector<scenario::BssSpec> bss_;
  int threads_;
  bool built_ = false;

  TimeNs t_ = 0;          // Barrier time: every shard's clock at the window boundary.
  TimeNs lookahead_ = 0;
  int64_t windows_ = 0;

  std::vector<std::unique_ptr<CellShard>> cells_;
  std::unique_ptr<CoreShard> core_;
  std::vector<std::unique_ptr<FlowState>> flows_;
  std::unique_ptr<Pool> pool_;
  // Root of the metrology merge tree: receives every shard's sealed windows at
  // barriers (coordinator thread only) and yields the campus-wide meters and series.
  stats::StatsEngine campus_stats_;
};

}  // namespace tbf::shard

#endif  // TBF_SHARD_CAMPUS_SIM_H_
