// 802.11 MAC/PHY timing: interframe spaces, contention windows, and frame airtimes.
//
// DSSS (802.11b) uses the long-preamble PLCP (144 us preamble + 48 us header at 1 Mbps),
// which was the interoperable default in the paper's era. ERP-OFDM (802.11g) frames use the
// 20 us preamble+SIGNAL plus 4 us symbols with 16 service + 6 tail bits. When any DSSS
// station is present, a mixed-mode (802.11b-compatible) slot/CW profile applies.
#ifndef TBF_PHY_TIMING_H_
#define TBF_PHY_TIMING_H_

#include "tbf/phy/rates.h"
#include "tbf/util/units.h"

namespace tbf::phy {

struct MacTimings {
  TimeNs slot = Us(20);
  TimeNs sifs = Us(10);
  int cw_min = 31;
  int cw_max = 1023;
  // dot11 retry limit applied to our (non-RTS) data frames.
  int retry_limit = 7;

  TimeNs Difs() const { return sifs + 2 * slot; }
  // EIFS = SIFS + ACK at the most robust mandatory rate + DIFS.
  TimeNs Eifs() const;

  friend bool operator==(const MacTimings&, const MacTimings&) = default;
};

// The 802.11b-compatible profile (also used for mixed b/g cells).
MacTimings MixedModeTimings();

// Pure 802.11g cell (9 us slots, CWmin 15).
MacTimings PureOfdmTimings();

// MAC framing overhead added to a network-layer packet: 24-byte MAC header + 4-byte FCS
// + 8-byte LLC/SNAP encapsulation.
inline constexpr int kMacDataOverheadBytes = 36;
inline constexpr int kMacAckFrameBytes = 14;

// Airtime of a PPDU carrying `mac_frame_bytes` (MAC header + payload + FCS) at `rate`,
// including PLCP preamble/header.
TimeNs FrameAirtime(int mac_frame_bytes, WifiRate rate);

// Airtime of the MAC-level ACK control frame answering a data frame sent at `data_rate`.
TimeNs AckAirtime(WifiRate data_rate);

// Full single-attempt exchange time for a data frame: PPDU + SIFS + ACK. This is also the
// quantity TBR's occupancy estimator charges per successful attempt.
TimeNs DataExchangeAirtime(int mac_frame_bytes, WifiRate rate, const MacTimings& timings);

// The ACK timeout a transmitter waits before concluding the attempt failed.
TimeNs AckTimeout(WifiRate data_rate, const MacTimings& timings);

}  // namespace tbf::phy

#endif  // TBF_PHY_TIMING_H_
