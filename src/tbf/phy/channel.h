// Radio channel abstractions: per-link loss and indoor path loss.
//
// LossModel answers "did this frame survive?" per (link, size, rate). FixedPerLink scales a
// reference packet-error-rate (quoted for 1500-byte frames, as the paper does) to other
// frame sizes assuming independent bit errors. PathLossModel maps distance and wall count
// to SNR via log-distance propagation, from which both a rate choice (SNR ladder) and a
// residual loss rate can be derived - this powers the EXP-1 style scenarios.
#ifndef TBF_PHY_CHANNEL_H_
#define TBF_PHY_CHANNEL_H_

#include <cmath>
#include <map>
#include <utility>

#include "tbf/phy/rates.h"
#include "tbf/sim/random.h"
#include "tbf/util/units.h"

namespace tbf::phy {

// Probability that a frame of `frame_bytes` sent at `rate` on link src->dst is corrupted.
class LossModel {
 public:
  virtual ~LossModel() = default;
  virtual double FrameLossProb(NodeId src, NodeId dst, int frame_bytes, WifiRate rate) const = 0;
};

// Zero loss everywhere; the default for controlled experiments (paper runs quote <2% loss,
// which is indistinguishable from zero for throughput shape).
class PerfectChannel : public LossModel {
 public:
  double FrameLossProb(NodeId, NodeId, int, WifiRate) const override { return 0.0; }
};

// Per-link reference PER for 1500-byte frames, extrapolated to other sizes via
// p(s) = 1 - (1 - p_ref)^(s / 1500). Links default to lossless.
class FixedPerLink : public LossModel {
 public:
  static constexpr int kReferenceBytes = 1500;

  void SetLinkPer(NodeId src, NodeId dst, double per) { per_[{src, dst}] = per; }

  // Convenience: sets both directions between a client and the AP.
  void SetClientPer(NodeId client, double per) {
    SetLinkPer(client, kApId, per);
    SetLinkPer(kApId, client, per);
  }

  double FrameLossProb(NodeId src, NodeId dst, int frame_bytes, WifiRate) const override {
    auto it = per_.find({src, dst});
    if (it == per_.end() || it->second <= 0.0) {
      return 0.0;
    }
    const double survive_ref = 1.0 - it->second;
    const double exponent = static_cast<double>(frame_bytes) / kReferenceBytes;
    return 1.0 - std::pow(survive_ref, exponent);
  }

 private:
  std::map<std::pair<NodeId, NodeId>, double> per_;
};

// Per-client SNR-driven loss: the frame error rate rises steeply once a link's SNR falls
// toward the minimum required by the chosen rate. This couples loss to rate (the
// rate/BER trade-off of Section 1 of the paper), which is what makes ARF settle at the
// right rung instead of climbing indefinitely; p(margin) is a logistic in the dB margin
// above the rate's SNR floor, quoted for 1500-byte frames and scaled by size.
class SnrLossModel : public LossModel {
 public:
  static constexpr int kReferenceBytes = 1500;

  void SetClientSnr(NodeId client, double snr_db) { snr_[client] = snr_db; }

  bool HasClient(NodeId client) const { return snr_.contains(client); }

  double FrameLossProb(NodeId src, NodeId dst, int frame_bytes, WifiRate rate) const override {
    const NodeId client = src == kApId ? dst : src;
    auto it = snr_.find(client);
    if (it == snr_.end()) {
      return 0.0;
    }
    const double margin = it->second - GetRateInfo(rate).min_snr_db;
    const double per_ref = 1.0 / (1.0 + std::exp(1.2 * (margin - 1.0)));
    const double survive = std::pow(1.0 - per_ref,
                                    static_cast<double>(frame_bytes) / kReferenceBytes);
    return 1.0 - survive;
  }

 private:
  std::map<NodeId, double> snr_;
};

// Routes loss lookups to the SNR model for clients configured with an SNR, and to the
// fixed-PER table for everyone else. The scenario builders (single-cell Wlan and the
// per-BSS shards of the sharded campus) instantiate one of each model per cell and
// dispatch per client through this adapter.
class DispatchLossModel : public LossModel {
 public:
  DispatchLossModel(const FixedPerLink* fixed, const SnrLossModel* snr)
      : fixed_(fixed), snr_(snr) {}

  double FrameLossProb(NodeId src, NodeId dst, int frame_bytes,
                       WifiRate rate) const override {
    const NodeId client = src == kApId ? dst : src;
    if (snr_->HasClient(client)) {
      return snr_->FrameLossProb(src, dst, frame_bytes, rate);
    }
    return fixed_->FrameLossProb(src, dst, frame_bytes, rate);
  }

 private:
  const FixedPerLink* fixed_;
  const SnrLossModel* snr_;
};

// Log-distance indoor propagation with per-wall attenuation.
struct PathLossConfig {
  double tx_power_dbm = 15.0;       // Typical 802.11b card.
  double path_loss_exponent = 5.0;  // Heavily obstructed indoor office (paper's EXP-1 room).
  double reference_loss_db = 40.0;  // Loss at 1 m, 2.4 GHz.
  double wall_loss_db = 7.0;        // Thin wooden wall.
  double thick_wall_loss_db = 12.0;
  double noise_floor_dbm = -92.0;
  double shadowing_sigma_db = 0.0;  // Optional lognormal shadowing.
};

class PathLossModel {
 public:
  explicit PathLossModel(PathLossConfig config = {}) : config_(config) {}

  // Mean SNR in dB at `distance_m`, behind `thin_walls` + `thick_walls` walls.
  double SnrDb(double distance_m, int thin_walls = 0, int thick_walls = 0) const {
    const double d = distance_m < 0.1 ? 0.1 : distance_m;
    const double loss = config_.reference_loss_db +
                        10.0 * config_.path_loss_exponent * std::log10(d) +
                        thin_walls * config_.wall_loss_db +
                        thick_walls * config_.thick_wall_loss_db;
    return config_.tx_power_dbm - loss - config_.noise_floor_dbm;
  }

  // SNR with one lognormal shadowing draw applied.
  double SnrDbShadowed(double distance_m, int thin_walls, int thick_walls,
                       sim::Rng& rng) const {
    double snr = SnrDb(distance_m, thin_walls, thick_walls);
    if (config_.shadowing_sigma_db > 0.0) {
      std::normal_distribution<double> dist(0.0, config_.shadowing_sigma_db);
      snr += dist(rng.engine());
    }
    return snr;
  }

  // The rate an SNR-driven controller would pick at this position.
  WifiRate RateAt(double distance_m, int thin_walls, int thick_walls, bool ofdm_capable) const {
    return RateForSnr(SnrDb(distance_m, thin_walls, thick_walls), ofdm_capable);
  }

  const PathLossConfig& config() const { return config_; }

 private:
  PathLossConfig config_;
};

constexpr double FeetToMeters(double feet) { return feet * 0.3048; }

}  // namespace tbf::phy

#endif  // TBF_PHY_CHANNEL_H_
