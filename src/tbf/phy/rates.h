// 802.11b (DSSS/CCK) and 802.11g (ERP-OFDM) rate definitions.
#ifndef TBF_PHY_RATES_H_
#define TBF_PHY_RATES_H_

#include <array>
#include <string_view>

#include "tbf/util/units.h"

namespace tbf::phy {

enum class WifiRate {
  // 802.11b DSSS/CCK.
  k1Mbps,
  k2Mbps,
  k5_5Mbps,
  k11Mbps,
  // 802.11g ERP-OFDM.
  k6Mbps,
  k9Mbps,
  k12Mbps,
  k18Mbps,
  k24Mbps,
  k36Mbps,
  k48Mbps,
  k54Mbps,
};

inline constexpr int kNumWifiRates = 12;

enum class Modulation { kDsss, kOfdm };

struct RateInfo {
  WifiRate rate;
  BitRate bps;
  Modulation modulation;
  std::string_view name;
  // Minimum SNR (dB) for a usable link at this rate; drives the SNR->rate table.
  double min_snr_db;
};

// Descriptor lookup; total function over the enum.
const RateInfo& GetRateInfo(WifiRate rate);

// Printable short name, e.g. "5.5Mbps".
std::string_view RateName(WifiRate rate);

// All 802.11b rates in increasing order.
const std::array<WifiRate, 4>& DsssRates();

// All 802.11g rates in increasing order.
const std::array<WifiRate, 8>& OfdmRates();

// The control-response (MAC ACK) rate for a given data rate: the highest rate in the
// basic rate set that does not exceed the data rate. For DSSS the basic set is {1, 2};
// for ERP-OFDM it is {6, 12, 24}.
WifiRate AckRateFor(WifiRate data_rate);

// Next lower / higher rate within the same PHY family; returns the same rate at the edges.
WifiRate StepDown(WifiRate rate);
WifiRate StepUp(WifiRate rate);

// Highest rate whose minimum SNR is satisfied; falls back to the most robust DSSS/OFDM rate.
WifiRate RateForSnr(double snr_db, bool ofdm_capable);

}  // namespace tbf::phy

#endif  // TBF_PHY_RATES_H_
