#include "tbf/phy/rates.h"

#include "tbf/util/logging.h"

namespace tbf::phy {
namespace {

// SNR thresholds follow the usual receiver-sensitivity ladder (~4 dB steps for DSSS,
// denser for OFDM); exact values only matter relative to each other for rate selection.
constexpr std::array<RateInfo, kNumWifiRates> kRateTable = {{
    {WifiRate::k1Mbps, 1'000'000, Modulation::kDsss, "1Mbps", 2.0},
    {WifiRate::k2Mbps, 2'000'000, Modulation::kDsss, "2Mbps", 5.0},
    {WifiRate::k5_5Mbps, 5'500'000, Modulation::kDsss, "5.5Mbps", 8.0},
    {WifiRate::k11Mbps, 11'000'000, Modulation::kDsss, "11Mbps", 12.0},
    {WifiRate::k6Mbps, 6'000'000, Modulation::kOfdm, "6Mbps", 6.0},
    {WifiRate::k9Mbps, 9'000'000, Modulation::kOfdm, "9Mbps", 7.0},
    {WifiRate::k12Mbps, 12'000'000, Modulation::kOfdm, "12Mbps", 9.0},
    {WifiRate::k18Mbps, 18'000'000, Modulation::kOfdm, "18Mbps", 11.0},
    {WifiRate::k24Mbps, 24'000'000, Modulation::kOfdm, "24Mbps", 14.0},
    {WifiRate::k36Mbps, 36'000'000, Modulation::kOfdm, "36Mbps", 18.0},
    {WifiRate::k48Mbps, 48'000'000, Modulation::kOfdm, "48Mbps", 22.0},
    {WifiRate::k54Mbps, 54'000'000, Modulation::kOfdm, "54Mbps", 24.0},
}};

constexpr std::array<WifiRate, 4> kDsssRates = {WifiRate::k1Mbps, WifiRate::k2Mbps,
                                                WifiRate::k5_5Mbps, WifiRate::k11Mbps};

constexpr std::array<WifiRate, 8> kOfdmRates = {
    WifiRate::k6Mbps,  WifiRate::k9Mbps,  WifiRate::k12Mbps, WifiRate::k18Mbps,
    WifiRate::k24Mbps, WifiRate::k36Mbps, WifiRate::k48Mbps, WifiRate::k54Mbps};

}  // namespace

const RateInfo& GetRateInfo(WifiRate rate) { return kRateTable[static_cast<size_t>(rate)]; }

std::string_view RateName(WifiRate rate) { return GetRateInfo(rate).name; }

const std::array<WifiRate, 4>& DsssRates() { return kDsssRates; }

const std::array<WifiRate, 8>& OfdmRates() { return kOfdmRates; }

WifiRate AckRateFor(WifiRate data_rate) {
  const RateInfo& info = GetRateInfo(data_rate);
  if (info.modulation == Modulation::kDsss) {
    return info.bps >= 2'000'000 ? WifiRate::k2Mbps : WifiRate::k1Mbps;
  }
  if (info.bps >= 24'000'000) {
    return WifiRate::k24Mbps;
  }
  if (info.bps >= 12'000'000) {
    return WifiRate::k12Mbps;
  }
  return WifiRate::k6Mbps;
}

namespace {

template <size_t N>
WifiRate StepWithin(const std::array<WifiRate, N>& ladder, WifiRate rate, int direction) {
  for (size_t i = 0; i < ladder.size(); ++i) {
    if (ladder[i] == rate) {
      const int64_t j = static_cast<int64_t>(i) + direction;
      if (j < 0 || j >= static_cast<int64_t>(ladder.size())) {
        return rate;
      }
      return ladder[static_cast<size_t>(j)];
    }
  }
  return rate;
}

}  // namespace

WifiRate StepDown(WifiRate rate) {
  if (GetRateInfo(rate).modulation == Modulation::kDsss) {
    return StepWithin(kDsssRates, rate, -1);
  }
  return StepWithin(kOfdmRates, rate, -1);
}

WifiRate StepUp(WifiRate rate) {
  if (GetRateInfo(rate).modulation == Modulation::kDsss) {
    return StepWithin(kDsssRates, rate, +1);
  }
  return StepWithin(kOfdmRates, rate, +1);
}

WifiRate RateForSnr(double snr_db, bool ofdm_capable) {
  WifiRate best = WifiRate::k1Mbps;
  for (WifiRate r : kDsssRates) {
    if (snr_db >= GetRateInfo(r).min_snr_db) {
      best = r;
    }
  }
  if (ofdm_capable) {
    for (WifiRate r : kOfdmRates) {
      if (snr_db >= GetRateInfo(r).min_snr_db && GetRateInfo(r).bps > GetRateInfo(best).bps) {
        best = r;
      }
    }
  }
  return best;
}

}  // namespace tbf::phy
