#include "tbf/phy/timing.h"

namespace tbf::phy {
namespace {

// Long-preamble PLCP: 144 us sync+SFD at 1 Mbps plus 48 us PLCP header.
constexpr TimeNs kDsssPlcpOverhead = Us(192);

// OFDM preamble (16 us) + SIGNAL (4 us).
constexpr TimeNs kOfdmPlcpOverhead = Us(20);
constexpr TimeNs kOfdmSymbol = Us(4);
constexpr int kOfdmServiceBits = 16;
constexpr int kOfdmTailBits = 6;

}  // namespace

TimeNs MacTimings::Eifs() const { return sifs + AckAirtime(WifiRate::k1Mbps) + Difs(); }

MacTimings MixedModeTimings() { return MacTimings{}; }

MacTimings PureOfdmTimings() {
  MacTimings t;
  t.slot = Us(9);
  t.sifs = Us(10);
  t.cw_min = 15;
  t.cw_max = 1023;
  return t;
}

TimeNs FrameAirtime(int mac_frame_bytes, WifiRate rate) {
  const RateInfo& info = GetRateInfo(rate);
  if (info.modulation == Modulation::kDsss) {
    return kDsssPlcpOverhead + TransmissionTime(mac_frame_bytes, info.bps);
  }
  const int64_t payload_bits = kOfdmServiceBits + 8LL * mac_frame_bytes + kOfdmTailBits;
  const int64_t bits_per_symbol = info.bps * 4 / 1'000'000;  // rate(Mbps) * 4 us symbol.
  const int64_t symbols = (payload_bits + bits_per_symbol - 1) / bits_per_symbol;
  return kOfdmPlcpOverhead + symbols * kOfdmSymbol;
}

TimeNs AckAirtime(WifiRate data_rate) {
  return FrameAirtime(kMacAckFrameBytes, AckRateFor(data_rate));
}

TimeNs DataExchangeAirtime(int mac_frame_bytes, WifiRate rate, const MacTimings& timings) {
  return FrameAirtime(mac_frame_bytes, rate) + timings.sifs + AckAirtime(rate);
}

TimeNs AckTimeout(WifiRate data_rate, const MacTimings& timings) {
  // SIFS + ACK airtime + one slot of slack.
  return timings.sifs + AckAirtime(data_rate) + timings.slot;
}

}  // namespace tbf::phy
