#include "tbf/sweep/sweep_runner.h"

#include <algorithm>
#include <cstdlib>

namespace tbf::sweep {
namespace {

thread_local bool g_in_sweep_worker = false;

}  // namespace

bool SweepRunner::InSweepWorker() { return g_in_sweep_worker; }

scenario::Results RunScenarioJob(const ScenarioJob& job) {
  scenario::Wlan wlan(job.config);
  for (const scenario::StationSpec& station : job.stations) {
    wlan.AddStation(station);
  }
  for (const scenario::FlowSpec& flow : job.flows) {
    wlan.AddFlow(flow);
  }
  if (job.configure) {
    wlan.BuildNow();
    job.configure(wlan);
  }
  return wlan.Run();
}

int SweepRunner::DefaultThreadCount() {
  if (const char* env = std::getenv("TBF_SWEEP_THREADS"); env != nullptr) {
    const int n = std::atoi(env);
    if (n > 0) {
      return std::min(n, 64);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(std::min(hw, 64u));
}

SweepRunner::SweepRunner(int threads) {
  const int count = threads > 0 ? std::min(threads, 64) : DefaultThreadCount();
  workers_.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

SweepRunner::~SweepRunner() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void SweepRunner::WorkerLoop() {
  g_in_sweep_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stop_ set and nothing left to drain.
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void SweepRunner::RunTasks(std::vector<std::function<void()>>&& tasks) {
  if (tasks.empty()) {
    return;
  }
  // Completion is tracked under its own mutex (not an atomic) so the caller's read of
  // the result slots is ordered after every worker's writes - plain mutex
  // happens-before, which both the memory model and TSan reason about directly.
  std::mutex done_mu;
  std::condition_variable done_cv;
  size_t remaining = tasks.size();
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (std::function<void()>& task : tasks) {
      queue_.push_back([&done_mu, &done_cv, &remaining, job = std::move(task)] {
        job();
        std::lock_guard<std::mutex> done_lock(done_mu);
        if (--remaining == 0) {
          done_cv.notify_all();
        }
      });
    }
  }
  cv_.notify_all();
  std::unique_lock<std::mutex> lock(done_mu);
  done_cv.wait(lock, [&remaining] { return remaining == 0; });
}

void SweepRunner::RethrowFirstError(const std::vector<std::exception_ptr>& errors) {
  for (size_t i = 0; i < errors.size(); ++i) {
    if (errors[i] == nullptr) {
      continue;
    }
    try {
      std::rethrow_exception(errors[i]);
    } catch (const SweepError&) {
      throw;  // Already carries a job identity (nested Map is not supported anyway).
    } catch (const std::exception& e) {
      throw SweepError(i, e.what());
    } catch (...) {
      throw SweepError(i, "unknown exception");
    }
  }
}

std::vector<scenario::Results> SweepRunner::RunScenarios(
    const std::vector<ScenarioJob>& jobs) {
  std::vector<std::function<scenario::Results()>> fns;
  fns.reserve(jobs.size());
  for (const ScenarioJob& job : jobs) {
    fns.push_back([&job] { return RunScenarioJob(job); });
  }
  return Map(std::move(fns));
}

}  // namespace tbf::sweep
