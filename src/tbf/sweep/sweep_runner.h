// Multi-core scenario sweep runner.
//
// The paper's results are a grid of independent WLAN scenarios (rate pairs x direction x
// qdisc x seed). Each scenario::Wlan owns its entire world - Simulator, Rng, medium,
// hosts - so scenarios are embarrassingly parallel as long as nothing routes through
// mutable shared state. The shared layers were audited for this: util/logging uses an
// atomic level and a mutexed sink, phy/ and model/ expose only immutable tables
// (function-local statics with thread-safe initialization), and stats meters/tables are
// per-instance. See tests/sweep_test.cpp (and the TSan CTest target) for the enforcement.
//
// SweepRunner is a fixed thread pool (no work stealing): jobs are claimed from a single
// FIFO queue, each runs to completion on one worker, and results are written into a
// slot indexed by submission order. Because every job is hermetic, the returned Results
// are bit-identical to a serial run regardless of pool size or claim interleaving -
// which keeps the table output of every bench deterministic.
#ifndef TBF_SWEEP_SWEEP_RUNNER_H_
#define TBF_SWEEP_SWEEP_RUNNER_H_

#include <condition_variable>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "tbf/scenario/results.h"
#include "tbf/scenario/wlan.h"

namespace tbf::sweep {

// Thrown by Map/RunScenarios when a job throws on a worker thread. Carries the failing
// job's submission index so the caller can name it (a campaign coordinator re-queues or
// reports that job instead of losing the whole process to std::terminate). When several
// jobs fail in one batch, the lowest submission index wins deterministically.
class SweepError : public std::runtime_error {
 public:
  SweepError(size_t job_index, const std::string& what)
      : std::runtime_error("sweep job #" + std::to_string(job_index) + " failed: " + what),
        job_index_(job_index) {}

  size_t job_index() const { return job_index_; }

 private:
  size_t job_index_;
};

// Declarative scenario description: everything scenario::Wlan needs, by value, so the
// job can be built and run on any worker thread.
struct ScenarioJob {
  scenario::ScenarioConfig config;
  std::vector<scenario::StationSpec> stations;
  std::vector<scenario::FlowSpec> flows;
  // Optional hook run after BuildNow() and before Run() - for knobs that need live
  // components (TBR weights, medium observers). Must only touch this job's Wlan.
  std::function<void(scenario::Wlan&)> configure;
};

// Builds and runs one declarative job to completion (callable from any thread).
scenario::Results RunScenarioJob(const ScenarioJob& job);

class SweepRunner {
 public:
  // threads <= 0 selects DefaultThreadCount().
  explicit SweepRunner(int threads = 0);
  ~SweepRunner();

  SweepRunner(const SweepRunner&) = delete;
  SweepRunner& operator=(const SweepRunner&) = delete;

  int thread_count() const { return static_cast<int>(workers_.size()); }

  // TBF_SWEEP_THREADS when set (clamped to [1, 64]), else hardware concurrency.
  static int DefaultThreadCount();

  // True on a SweepRunner worker thread. Nested parallel subsystems (the sharded
  // campus's shard pool) consult this to default to serial execution inside a sweep
  // worker, so the two thread pools do not multiply against each other.
  static bool InSweepWorker();

  // Runs every job on the pool and returns results in submission order. Blocks until
  // all jobs finish. T must be default-constructible and move-assignable. Not
  // reentrant: do not call Map from inside a job. A throwing job never takes down the
  // worker thread: every job runs to completion (the batch is not cancelled), then the
  // lowest-index failure is rethrown as SweepError naming that job.
  template <typename T>
  std::vector<T> Map(std::vector<std::function<T()>> jobs) {
    std::vector<T> results(jobs.size());
    std::vector<std::exception_ptr> errors(jobs.size());
    std::vector<std::function<void()>> tasks;
    tasks.reserve(jobs.size());
    for (size_t i = 0; i < jobs.size(); ++i) {
      tasks.push_back([&results, &errors, &jobs, i] {
        try {
          results[i] = jobs[i]();
        } catch (...) {
          errors[i] = std::current_exception();
        }
      });
    }
    RunTasks(std::move(tasks));
    RethrowFirstError(errors);
    return results;
  }

  // Declarative form: one Wlan per job, each on its own worker with its own
  // Simulator/Rng, results in submission order.
  std::vector<scenario::Results> RunScenarios(const std::vector<ScenarioJob>& jobs);

 private:
  void RunTasks(std::vector<std::function<void()>>&& tasks);
  void WorkerLoop();
  // Throws SweepError for the lowest-index non-null entry, if any.
  static void RethrowFirstError(const std::vector<std::exception_ptr>& errors);

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace tbf::sweep

#endif  // TBF_SWEEP_SWEEP_RUNNER_H_
