// Access-point queueing disciplines.
//
// A Qdisc sits exactly where an AP driver's transmit queue sits: the network layer pushes
// packets in (APPTXEVENT in the paper's terminology), the MAC pulls packets out when the
// hardware is ready (MACTXEVENT), and completion events flow back (COMPLETEEVENT). TBR is
// implemented as one of these (src/tbf/core/tbr.h); the baselines here are the stock
// kernel-interface FIFO the paper calls "Exp-Normal", a per-node round-robin, and a
// deficit-round-robin byte-fair scheduler.
//
// Per-client state is dense: stations are small dense NodeIds, so each qdisc keeps its
// client queues in a flat vector in association order (the round-robin order) plus a
// NodeId -> slot index vector - enqueue and dequeue are O(1) indexed loads with no tree
// walk, and the queues themselves are intrusive PacketFifo lists of pooled packets (no
// deque churn, no refcount traffic on push/pop).
#ifndef TBF_AP_QDISC_H_
#define TBF_AP_QDISC_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "tbf/mac/medium.h"
#include "tbf/net/packet.h"
#include "tbf/util/units.h"

namespace tbf::ap {

class Qdisc {
 public:
  virtual ~Qdisc() = default;

  // A client joined the WLAN (paper: ASSOCIATEEVENT).
  virtual void OnAssociate(NodeId client) { (void)client; }

  // Network layer hands the AP a packet destined to packet->wlan_client.
  // Returns false when the packet was dropped (queue full).
  virtual bool Enqueue(net::PacketPtr packet) = 0;

  // MAC is ready for the next frame. Returns nullptr when nothing is eligible
  // (possibly even though packets are queued - that is TBR's regulation lever).
  virtual net::PacketPtr Dequeue() = 0;

  // True when Dequeue() would return a packet right now.
  virtual bool HasEligible() const = 0;

  virtual size_t QueuedPackets() const = 0;

  // Downlink MAC completion for a frame previously dequeued from this qdisc.
  virtual void OnTxComplete(const mac::MacFrame& frame, bool success, int attempts,
                            TimeNs airtime) {
    (void)frame;
    (void)success;
    (void)attempts;
    (void)airtime;
  }

  // The AP observed an uplink exchange on the medium (driver rx-complete path).
  virtual void OnUplinkObserved(const mac::ExchangeRecord& record) { (void)record; }

  // The qdisc calls this when frames may have become eligible asynchronously
  // (e.g. a token refill); the AP wires it to its MAC backlog notification.
  void SetBacklogCallback(std::function<void()> cb) { backlog_cb_ = std::move(cb); }

  int64_t drops() const { return drops_; }

 protected:
  void NotifyBacklog() {
    if (backlog_cb_) {
      backlog_cb_();
    }
  }

  void CountDrop() { ++drops_; }

 private:
  std::function<void()> backlog_cb_;
  int64_t drops_ = 0;
};

// NodeId -> dense slot map shared by the per-client qdiscs: slots are handed out in
// association order (which is also each qdisc's round-robin order), lookups are a
// bounds check plus an indexed load.
class ClientSlotMap {
 public:
  // Returns the client's slot, or -1 when it has none yet.
  int32_t SlotOf(NodeId client) const {
    return client >= 0 && static_cast<size_t>(client) < slot_of_.size()
               ? slot_of_[static_cast<size_t>(client)]
               : -1;
  }

  // Returns the client's slot, assigning the next dense slot on first sight.
  // `created` reports whether this call associated the client.
  int32_t GetOrAdd(NodeId client, bool* created = nullptr);

  size_t size() const { return count_; }

 private:
  std::vector<int32_t> slot_of_;
  size_t count_ = 0;
};

// Single drop-tail FIFO - the kernel interface queue of a stock AP (default depth 110,
// matching the paper's Exp-Normal configuration).
class FifoQdisc : public Qdisc {
 public:
  explicit FifoQdisc(size_t limit = 110) : limit_(limit) {}

  bool Enqueue(net::PacketPtr packet) override;
  net::PacketPtr Dequeue() override;
  bool HasEligible() const override { return !queue_.empty(); }
  size_t QueuedPackets() const override { return queue_.size(); }

 private:
  size_t limit_;
  net::PacketFifo queue_;
};

// Per-client drop-tail FIFOs served in round-robin packet order - the "AP queuing scheme
// [that] usually transmits to wireless clients in a round-robin manner" (paper 2.4).
class RoundRobinQdisc : public Qdisc {
 public:
  // `per_queue_limit` mirrors the paper's TBR setup: total buffer split across clients.
  explicit RoundRobinQdisc(size_t per_queue_limit = 50) : limit_(per_queue_limit) {}

  void OnAssociate(NodeId client) override;
  bool Enqueue(net::PacketPtr packet) override;
  net::PacketPtr Dequeue() override;
  bool HasEligible() const override;
  size_t QueuedPackets() const override;

 private:
  // Slot for `client`, growing the queue table on first sight (association order).
  int32_t SlotFor(NodeId client);

  size_t limit_;
  ClientSlotMap slots_;
  std::vector<net::PacketFifo> queues_;  // Association order.
  size_t next_ = 0;
};

// Deficit Round Robin (Shreedhar & Varghese) - byte-granular throughput fairness across
// clients; the strongest *throughput-based* fairness baseline for mixed packet sizes.
class DrrQdisc : public Qdisc {
 public:
  explicit DrrQdisc(size_t per_queue_limit = 50, int64_t quantum_bytes = 1500)
      : limit_(per_queue_limit), quantum_(quantum_bytes) {}

  void OnAssociate(NodeId client) override;
  bool Enqueue(net::PacketPtr packet) override;
  net::PacketPtr Dequeue() override;
  bool HasEligible() const override;
  size_t QueuedPackets() const override;

 private:
  struct ClientQueue {
    net::PacketFifo packets;
    int64_t deficit = 0;
    // Whether this visit's quantum has been granted (reset when the round pointer
    // leaves the queue) - one quantum per visit, not per Dequeue() call.
    bool granted = false;
  };

  int32_t SlotFor(NodeId client);
  void Advance();

  size_t limit_;
  int64_t quantum_;
  ClientSlotMap slots_;
  std::vector<ClientQueue> queues_;  // Association order.
  size_t next_ = 0;
};

// OAR-style burst round robin (Sadeghi et al., MOBICOM'02 - the paper's related work).
// Each visit grants a client a *burst* of ceil(rate / base_rate) packets, so a node at
// 11 Mbps sends ~11 packets per visit of a 1 Mbps node's single packet - approximating
// time fairness through packet counts instead of channel-time tokens. Needs the per-client
// rate (supplied by a callback), no clock, and no occupancy accounting; its weakness is
// that the approximation holds only when frame sizes are uniform and rates are exact
// multiples, which the comparison bench quantifies.
class BurstRoundRobinQdisc : public Qdisc {
 public:
  using RateLookup = std::function<int64_t(NodeId)>;  // bits/s of the client's link.

  explicit BurstRoundRobinQdisc(RateLookup rate_lookup, int64_t base_rate_bps = 1'000'000,
                                size_t per_queue_limit = 50)
      : rate_lookup_(std::move(rate_lookup)),
        base_rate_(base_rate_bps),
        limit_(per_queue_limit) {}

  void OnAssociate(NodeId client) override;
  bool Enqueue(net::PacketPtr packet) override;
  net::PacketPtr Dequeue() override;
  bool HasEligible() const override;
  size_t QueuedPackets() const override;

 private:
  struct ClientQueue {
    net::PacketFifo packets;
    NodeId id = kInvalidNodeId;  // For the rate lookup when a burst is granted.
  };

  int32_t SlotFor(NodeId client);
  int BurstSizeFor(NodeId client) const;

  RateLookup rate_lookup_;
  int64_t base_rate_;
  size_t limit_;
  ClientSlotMap slots_;
  std::vector<ClientQueue> queues_;  // Association order.
  size_t next_ = 0;
  int burst_left_ = 0;  // Packets remaining in the current client's burst grant.
};

}  // namespace tbf::ap

#endif  // TBF_AP_QDISC_H_
