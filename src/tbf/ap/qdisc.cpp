#include "tbf/ap/qdisc.h"

#include <algorithm>

namespace tbf::ap {

bool FifoQdisc::Enqueue(net::PacketPtr packet) {
  if (queue_.size() >= limit_) {
    CountDrop();
    return false;
  }
  queue_.push_back(std::move(packet));
  return true;
}

net::PacketPtr FifoQdisc::Dequeue() {
  if (queue_.empty()) {
    return nullptr;
  }
  net::PacketPtr p = std::move(queue_.front());
  queue_.pop_front();
  return p;
}

void RoundRobinQdisc::OnAssociate(NodeId client) {
  if (queues_.emplace(client, std::deque<net::PacketPtr>{}).second) {
    order_.push_back(client);
  }
}

bool RoundRobinQdisc::Enqueue(net::PacketPtr packet) {
  OnAssociate(packet->wlan_client);
  auto& q = queues_[packet->wlan_client];
  if (q.size() >= limit_) {
    CountDrop();
    return false;
  }
  q.push_back(std::move(packet));
  return true;
}

net::PacketPtr RoundRobinQdisc::Dequeue() {
  if (order_.empty()) {
    return nullptr;
  }
  for (size_t i = 0; i < order_.size(); ++i) {
    const size_t idx = (next_ + i) % order_.size();
    auto& q = queues_[order_[idx]];
    if (!q.empty()) {
      net::PacketPtr p = std::move(q.front());
      q.pop_front();
      next_ = (idx + 1) % order_.size();
      return p;
    }
  }
  return nullptr;
}

bool RoundRobinQdisc::HasEligible() const {
  return std::any_of(queues_.begin(), queues_.end(),
                     [](const auto& kv) { return !kv.second.empty(); });
}

size_t RoundRobinQdisc::QueuedPackets() const {
  size_t n = 0;
  for (const auto& [id, q] : queues_) {
    n += q.size();
  }
  return n;
}

void DrrQdisc::OnAssociate(NodeId client) {
  if (queues_.emplace(client, ClientQueue{}).second) {
    order_.push_back(client);
  }
}

bool DrrQdisc::Enqueue(net::PacketPtr packet) {
  OnAssociate(packet->wlan_client);
  auto& q = queues_[packet->wlan_client];
  if (q.packets.size() >= limit_) {
    CountDrop();
    return false;
  }
  q.packets.push_back(std::move(packet));
  return true;
}

void DrrQdisc::Advance() {
  queues_[order_[next_]].granted = false;
  next_ = (next_ + 1) % order_.size();
}

net::PacketPtr DrrQdisc::Dequeue() {
  if (order_.empty()) {
    return nullptr;
  }
  // Bounded walk: each queue is visited at most twice (grant, then possibly re-grant
  // after all others proved empty).
  for (size_t hops = 0; hops <= 2 * order_.size(); ++hops) {
    ClientQueue& q = queues_[order_[next_]];
    if (q.packets.empty()) {
      q.deficit = 0;
      Advance();
      continue;
    }
    if (!q.granted) {
      q.deficit += quantum_;
      q.granted = true;
    }
    if (q.deficit >= q.packets.front()->size_bytes) {
      net::PacketPtr p = std::move(q.packets.front());
      q.packets.pop_front();
      q.deficit -= p->size_bytes;
      if (q.packets.empty()) {
        q.deficit = 0;
        Advance();
      }
      return p;
    }
    Advance();
  }
  return nullptr;
}

bool DrrQdisc::HasEligible() const {
  return std::any_of(queues_.begin(), queues_.end(),
                     [](const auto& kv) { return !kv.second.packets.empty(); });
}

size_t DrrQdisc::QueuedPackets() const {
  size_t n = 0;
  for (const auto& [id, q] : queues_) {
    n += q.packets.size();
  }
  return n;
}

void BurstRoundRobinQdisc::OnAssociate(NodeId client) {
  if (queues_.emplace(client, std::deque<net::PacketPtr>{}).second) {
    order_.push_back(client);
  }
}

bool BurstRoundRobinQdisc::Enqueue(net::PacketPtr packet) {
  OnAssociate(packet->wlan_client);
  auto& q = queues_[packet->wlan_client];
  if (q.size() >= limit_) {
    CountDrop();
    return false;
  }
  q.push_back(std::move(packet));
  return true;
}

int BurstRoundRobinQdisc::BurstSizeFor(NodeId client) const {
  const int64_t rate = rate_lookup_ ? rate_lookup_(client) : base_rate_;
  const int64_t burst = (rate + base_rate_ - 1) / base_rate_;
  return static_cast<int>(std::max<int64_t>(burst, 1));
}

net::PacketPtr BurstRoundRobinQdisc::Dequeue() {
  if (order_.empty()) {
    return nullptr;
  }
  for (size_t hops = 0; hops <= order_.size(); ++hops) {
    auto& q = queues_[order_[next_]];
    if (q.empty() || burst_left_ == 0) {
      burst_left_ = 0;
      next_ = (next_ + 1) % order_.size();
      if (!queues_[order_[next_]].empty()) {
        burst_left_ = BurstSizeFor(order_[next_]);
      }
      continue;
    }
    net::PacketPtr p = std::move(q.front());
    q.pop_front();
    --burst_left_;
    return p;
  }
  return nullptr;
}

bool BurstRoundRobinQdisc::HasEligible() const {
  return std::any_of(queues_.begin(), queues_.end(),
                     [](const auto& kv) { return !kv.second.empty(); });
}

size_t BurstRoundRobinQdisc::QueuedPackets() const {
  size_t n = 0;
  for (const auto& [id, q] : queues_) {
    n += q.size();
  }
  return n;
}

}  // namespace tbf::ap
