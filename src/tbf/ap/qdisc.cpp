#include "tbf/ap/qdisc.h"

#include <algorithm>

#include "tbf/util/logging.h"

namespace tbf::ap {

int32_t ClientSlotMap::GetOrAdd(NodeId client, bool* created) {
  TBF_CHECK(client >= 0) << "per-client qdiscs need a valid wlan_client";
  if (static_cast<size_t>(client) >= slot_of_.size()) {
    slot_of_.resize(static_cast<size_t>(client) + 1, -1);
  }
  int32_t& slot = slot_of_[static_cast<size_t>(client)];
  if (slot < 0) {
    slot = static_cast<int32_t>(count_++);
    if (created != nullptr) {
      *created = true;
    }
  } else if (created != nullptr) {
    *created = false;
  }
  return slot;
}

bool FifoQdisc::Enqueue(net::PacketPtr packet) {
  if (queue_.size() >= limit_) {
    CountDrop();
    return false;
  }
  queue_.PushBack(std::move(packet));
  return true;
}

net::PacketPtr FifoQdisc::Dequeue() {
  if (queue_.empty()) {
    return nullptr;
  }
  return queue_.PopFront();
}

int32_t RoundRobinQdisc::SlotFor(NodeId client) {
  bool created = false;
  const int32_t slot = slots_.GetOrAdd(client, &created);
  if (created) {
    queues_.emplace_back();
  }
  return slot;
}

void RoundRobinQdisc::OnAssociate(NodeId client) { SlotFor(client); }

bool RoundRobinQdisc::Enqueue(net::PacketPtr packet) {
  net::PacketFifo& q = queues_[static_cast<size_t>(SlotFor(packet->wlan_client))];
  if (q.size() >= limit_) {
    CountDrop();
    return false;
  }
  q.PushBack(std::move(packet));
  return true;
}

net::PacketPtr RoundRobinQdisc::Dequeue() {
  const size_t n = queues_.size();
  if (n == 0) {
    return nullptr;
  }
  for (size_t i = 0; i < n; ++i) {
    const size_t idx = (next_ + i) % n;
    net::PacketFifo& q = queues_[idx];
    if (!q.empty()) {
      next_ = (idx + 1) % n;
      return q.PopFront();
    }
  }
  return nullptr;
}

bool RoundRobinQdisc::HasEligible() const {
  return std::any_of(queues_.begin(), queues_.end(),
                     [](const net::PacketFifo& q) { return !q.empty(); });
}

size_t RoundRobinQdisc::QueuedPackets() const {
  size_t n = 0;
  for (const net::PacketFifo& q : queues_) {
    n += q.size();
  }
  return n;
}

int32_t DrrQdisc::SlotFor(NodeId client) {
  bool created = false;
  const int32_t slot = slots_.GetOrAdd(client, &created);
  if (created) {
    queues_.emplace_back();
  }
  return slot;
}

void DrrQdisc::OnAssociate(NodeId client) { SlotFor(client); }

bool DrrQdisc::Enqueue(net::PacketPtr packet) {
  ClientQueue& q = queues_[static_cast<size_t>(SlotFor(packet->wlan_client))];
  if (q.packets.size() >= limit_) {
    CountDrop();
    return false;
  }
  q.packets.PushBack(std::move(packet));
  return true;
}

void DrrQdisc::Advance() {
  queues_[next_].granted = false;
  next_ = (next_ + 1) % queues_.size();
}

net::PacketPtr DrrQdisc::Dequeue() {
  if (queues_.empty()) {
    return nullptr;
  }
  // Bounded walk: each queue is visited at most twice (grant, then possibly re-grant
  // after all others proved empty).
  for (size_t hops = 0; hops <= 2 * queues_.size(); ++hops) {
    ClientQueue& q = queues_[next_];
    if (q.packets.empty()) {
      q.deficit = 0;
      Advance();
      continue;
    }
    if (!q.granted) {
      q.deficit += quantum_;
      q.granted = true;
    }
    if (q.deficit >= q.packets.front()->size_bytes) {
      net::PacketPtr p = q.packets.PopFront();
      q.deficit -= p->size_bytes;
      if (q.packets.empty()) {
        q.deficit = 0;
        Advance();
      }
      return p;
    }
    Advance();
  }
  return nullptr;
}

bool DrrQdisc::HasEligible() const {
  return std::any_of(queues_.begin(), queues_.end(),
                     [](const ClientQueue& q) { return !q.packets.empty(); });
}

size_t DrrQdisc::QueuedPackets() const {
  size_t n = 0;
  for (const ClientQueue& q : queues_) {
    n += q.packets.size();
  }
  return n;
}

int32_t BurstRoundRobinQdisc::SlotFor(NodeId client) {
  bool created = false;
  const int32_t slot = slots_.GetOrAdd(client, &created);
  if (created) {
    queues_.emplace_back();
    queues_.back().id = client;
  }
  return slot;
}

void BurstRoundRobinQdisc::OnAssociate(NodeId client) { SlotFor(client); }

bool BurstRoundRobinQdisc::Enqueue(net::PacketPtr packet) {
  ClientQueue& q = queues_[static_cast<size_t>(SlotFor(packet->wlan_client))];
  if (q.packets.size() >= limit_) {
    CountDrop();
    return false;
  }
  q.packets.PushBack(std::move(packet));
  return true;
}

int BurstRoundRobinQdisc::BurstSizeFor(NodeId client) const {
  const int64_t rate = rate_lookup_ ? rate_lookup_(client) : base_rate_;
  const int64_t burst = (rate + base_rate_ - 1) / base_rate_;
  return static_cast<int>(std::max<int64_t>(burst, 1));
}

net::PacketPtr BurstRoundRobinQdisc::Dequeue() {
  if (queues_.empty()) {
    return nullptr;
  }
  for (size_t hops = 0; hops <= queues_.size(); ++hops) {
    ClientQueue& q = queues_[next_];
    if (q.packets.empty() || burst_left_ == 0) {
      burst_left_ = 0;
      next_ = (next_ + 1) % queues_.size();
      ClientQueue& upcoming = queues_[next_];
      if (!upcoming.packets.empty()) {
        burst_left_ = BurstSizeFor(upcoming.id);
      }
      continue;
    }
    --burst_left_;
    return q.packets.PopFront();
  }
  return nullptr;
}

bool BurstRoundRobinQdisc::HasEligible() const {
  return std::any_of(queues_.begin(), queues_.end(),
                     [](const ClientQueue& q) { return !q.packets.empty(); });
}

size_t BurstRoundRobinQdisc::QueuedPackets() const {
  size_t n = 0;
  for (const ClientQueue& q : queues_) {
    n += q.packets.size();
  }
  return n;
}

}  // namespace tbf::ap
