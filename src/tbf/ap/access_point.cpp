#include "tbf/ap/access_point.h"

#include "tbf/util/logging.h"

namespace tbf::ap {

AccessPoint::AccessPoint(sim::Simulator* sim, mac::Medium* medium,
                         std::unique_ptr<Qdisc> qdisc, rateadapt::RateController* rates)
    : sim_(sim),
      qdisc_(std::move(qdisc)),
      rates_(rates),
      entity_(medium, kApId, this, this) {
  qdisc_->SetBacklogCallback([this] { entity_.NotifyBacklog(); });
  medium->AddObserver(this);
}

void AccessPoint::ConnectWired(net::WiredLink* link) {
  SetUplinkForward([link](net::PacketPtr p) { link->SendTowardServer(std::move(p)); });
}

void AccessPoint::Associate(NodeId client) { qdisc_->OnAssociate(client); }

void AccessPoint::EnqueueDownlink(net::PacketPtr packet) {
  TBF_CHECK(packet->wlan_client != kInvalidNodeId) << "downlink packet without client";
  // A MAC duplicate delivery (client relay whose ACK was lost) can hand us a packet
  // that is still sitting in the qdisc from its first delivery; queue a clone then.
  packet = net::CloneIfQueued(std::move(packet));
  packet->ap_enqueued = sim_->Now();
  if (qdisc_->Enqueue(std::move(packet))) {
    entity_.NotifyBacklog();
  }
}

std::optional<mac::MacFrame> AccessPoint::NextFrame() {
  net::PacketPtr p = qdisc_->Dequeue();
  if (p == nullptr) {
    return std::nullopt;
  }
  if (queue_delay_fn_ && p->ap_enqueued >= 0 && p->flow_id >= 0) {
    queue_delay_fn_(p->flow_id, p->wlan_client, sim_->Now() - p->ap_enqueued);
  }
  const NodeId client = p->wlan_client;
  const NodeId dst = p->dst;
  return mac::MakeDataFrame(kApId, dst, std::move(p), rates_->CurrentRate(client));
}

void AccessPoint::OnTxComplete(const mac::MacFrame& frame, bool success, int attempts,
                               TimeNs airtime) {
  rates_->OnTxResult(frame.packet->wlan_client, success, attempts);
  qdisc_->OnTxComplete(frame, success, attempts, airtime);
}

void AccessPoint::OnFrameReceived(const mac::MacFrame& frame) {
  const net::PacketPtr& p = frame.packet;
  if (p == nullptr) {
    return;
  }
  if (p->dst == kApId) {
    // Locally addressed (management/test traffic): nothing above the MAC here.
    return;
  }
  if (uplink_forward_ && p->dst >= kServerId) {
    ++forwarded_uplink_;
    uplink_forward_(p);
    return;
  }
  // Client-to-client relaying through the AP: re-enqueue on the downlink.
  if (p->dst != p->src) {
    EnqueueDownlink(p);
  }
}

void AccessPoint::OnExchange(const mac::ExchangeRecord& record) {
  if (record.tx != kApId) {
    qdisc_->OnUplinkObserved(record);
  }
}

}  // namespace tbf::ap
