// The access point: DCF station kApId + pluggable transmit qdisc + wired backbone port.
//
// Forwarding model (infrastructure WLAN):
//   wired -> AP:   packets destined to a client are pushed into the qdisc (APPTXEVENT);
//   AP MAC ready:  the qdisc picks the next eligible packet (MACTXEVENT/HWTXEVENT);
//   client -> AP:  received uplink frames are forwarded onto the wired link;
//   completions:   downlink MAC completions and observed uplink exchanges are fed back to
//                  the qdisc (COMPLETEEVENT), which is all TBR needs to meter occupancy.
#ifndef TBF_AP_ACCESS_POINT_H_
#define TBF_AP_ACCESS_POINT_H_

#include <memory>

#include "tbf/ap/qdisc.h"
#include "tbf/mac/medium.h"
#include "tbf/net/demux.h"
#include "tbf/net/wired.h"
#include "tbf/rateadapt/rate_controller.h"
#include "tbf/sim/simulator.h"

namespace tbf::ap {

class AccessPoint : public mac::FrameProvider, public mac::FrameSink, public mac::MediumObserver {
 public:
  // Reports, per packet leaving the qdisc toward the MAC, how long it waited inside
  // (enqueue-to-dequeue). Fires for every flow-tagged packet the AP transmits: downlink
  // data, and the returning acks of uplink TCP flows - the latter being exactly where
  // TBR's ack-withholding lever shows up as delay.
  using QueueDelayFn = std::function<void(int flow_id, NodeId client, TimeNs delay)>;

  AccessPoint(sim::Simulator* sim, mac::Medium* medium, std::unique_ptr<Qdisc> qdisc,
              rateadapt::RateController* rates);

  AccessPoint(const AccessPoint&) = delete;
  AccessPoint& operator=(const AccessPoint&) = delete;

  // Connects the wired backbone; uplink frames are forwarded toward the server side.
  void ConnectWired(net::WiredLink* link);

  // Generalized uplink port: frames addressed beyond the cell (dst >= kServerId) are
  // handed to `fn` instead of a WiredLink. The sharded campus uses this to route uplink
  // traffic into a shard::ShardLink whose far end lives in another shard's Simulator.
  using ForwardFn = std::function<void(net::PacketPtr)>;
  void SetUplinkForward(ForwardFn fn) { uplink_forward_ = std::move(fn); }

  void Associate(NodeId client);

  // Entry point for downlink packets (from the wired link or generated locally).
  void EnqueueDownlink(net::PacketPtr packet);

  // mac::FrameProvider.
  std::optional<mac::MacFrame> NextFrame() override;
  void OnTxComplete(const mac::MacFrame& frame, bool success, int attempts,
                    TimeNs airtime) override;

  // mac::FrameSink - uplink receptions.
  void OnFrameReceived(const mac::MacFrame& frame) override;

  // mac::MediumObserver - the driver's view of channel exchanges (uplink accounting).
  void OnExchange(const mac::ExchangeRecord& record) override;

  void SetQueueDelayFn(QueueDelayFn fn) { queue_delay_fn_ = std::move(fn); }

  Qdisc& qdisc() { return *qdisc_; }
  mac::DcfEntity& entity() { return entity_; }
  int64_t downlink_drops() const { return qdisc_->drops(); }
  int64_t forwarded_uplink() const { return forwarded_uplink_; }

 private:
  sim::Simulator* sim_;
  std::unique_ptr<Qdisc> qdisc_;
  QueueDelayFn queue_delay_fn_;
  rateadapt::RateController* rates_;
  ForwardFn uplink_forward_;
  int64_t forwarded_uplink_ = 0;
  mac::DcfEntity entity_;
};

}  // namespace tbf::ap

#endif  // TBF_AP_ACCESS_POINT_H_
