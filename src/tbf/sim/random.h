// Deterministic random source shared by simulator components.
//
// All stochastic choices (backoff draws, loss events, trace generation) flow through one
// Rng instance per scenario so runs are reproducible from a single seed.
#ifndef TBF_SIM_RANDOM_H_
#define TBF_SIM_RANDOM_H_

#include <cmath>
#include <cstdint>
#include <random>

namespace tbf::sim {

class Rng {
 public:
  explicit Rng(uint64_t seed = 1) : engine_(seed) {}

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    std::uniform_int_distribution<int64_t> dist(lo, hi);
    return dist(engine_);
  }

  // Uniform double in [0, 1).
  double UniformDouble() {
    std::uniform_real_distribution<double> dist(0.0, 1.0);
    return dist(engine_);
  }

  bool Bernoulli(double p) {
    if (p <= 0.0) {
      return false;
    }
    if (p >= 1.0) {
      return true;
    }
    return UniformDouble() < p;
  }

  // Exponential with the given mean (> 0).
  double Exponential(double mean) {
    std::exponential_distribution<double> dist(1.0 / mean);
    return dist(engine_);
  }

  // Bounded Pareto sample, shape alpha, minimum xm. Heavy-tailed flow sizes.
  double Pareto(double xm, double alpha) {
    const double u = 1.0 - UniformDouble();  // (0, 1]
    return xm / std::pow(u, 1.0 / alpha);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace tbf::sim

#endif  // TBF_SIM_RANDOM_H_
