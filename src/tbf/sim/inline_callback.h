// Small-buffer-optimized, move-only callable for the event kernel.
//
// Every simulator callback is stored inline: a callable whose captures exceed kCapacity
// fails to compile (static_assert) instead of silently heap-allocating the way
// std::function does. This is what makes Schedule() allocation-free in steady state.
#ifndef TBF_SIM_INLINE_CALLBACK_H_
#define TBF_SIM_INLINE_CALLBACK_H_

#include <cstddef>
#include <cstring>
#include <type_traits>
#include <utility>

namespace tbf::sim {

class InlineCallback {
 public:
  // Fits every in-tree capture (largest: a MacFrame by value plus a pointer, 40 bytes).
  static constexpr size_t kCapacity = 48;

  InlineCallback() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, InlineCallback>>>
  InlineCallback(F&& f) {  // NOLINT(google-explicit-constructor): mirrors std::function.
    Emplace(std::forward<F>(f));
  }

  // Constructs the callable directly into the inline storage (destroying any current
  // one) - the schedule fast path builds callbacks in their slab slot with zero moves.
  template <typename F>
  void Emplace(F&& f) {
    using Fn = std::decay_t<F>;
    static_assert(sizeof(Fn) <= kCapacity,
                  "callback captures exceed InlineCallback::kCapacity; shrink the capture "
                  "list (capture pointers/indices, stash bulk state in the owner)");
    static_assert(alignof(Fn) <= alignof(std::max_align_t),
                  "callback alignment exceeds inline storage alignment");
    static_assert(std::is_nothrow_move_constructible_v<Fn>,
                  "callbacks must be nothrow-move-constructible (heap pops relocate them)");
    Reset();
    ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
    invoke_ = [](void* s) { (*static_cast<Fn*>(s))(); };
    // Trivially-copyable captures (pointers, ints - every hot in-tree callback) relocate
    // by plain memcpy with relocate_ left null, so moves and destruction stay branch-
    // predictable and free of indirect calls on the event-fire fast path.
    if constexpr (!(std::is_trivially_copyable_v<Fn> &&
                    std::is_trivially_destructible_v<Fn>)) {
      relocate_ = [](void* src, void* dst) {
        Fn* fn = static_cast<Fn*>(src);
        if (dst != nullptr) {
          ::new (dst) Fn(std::move(*fn));
        }
        fn->~Fn();
      };
    }
  }

  InlineCallback(InlineCallback&& other) noexcept { MoveFrom(other); }

  InlineCallback& operator=(InlineCallback&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }

  InlineCallback(const InlineCallback&) = delete;
  InlineCallback& operator=(const InlineCallback&) = delete;

  ~InlineCallback() { Reset(); }

  void operator()() { invoke_(storage_); }

  explicit operator bool() const noexcept { return invoke_ != nullptr; }

  // Destroys the stored callable (releasing captured resources) without invoking it.
  void Reset() noexcept {
    if (relocate_ != nullptr) {
      relocate_(storage_, nullptr);
      relocate_ = nullptr;
    }
    invoke_ = nullptr;
  }

 private:
  void MoveFrom(InlineCallback& other) noexcept {
    invoke_ = other.invoke_;
    relocate_ = other.relocate_;
    if (relocate_ != nullptr) {
      relocate_(other.storage_, storage_);
    } else {
      std::memcpy(storage_, other.storage_, kCapacity);
    }
    other.invoke_ = nullptr;
    other.relocate_ = nullptr;
  }

  alignas(std::max_align_t) std::byte storage_[kCapacity];
  void (*invoke_)(void*) = nullptr;
  // Move-construct *src into dst then destroy *src; dst == nullptr destroys only.
  void (*relocate_)(void* src, void* dst) = nullptr;
};

}  // namespace tbf::sim

#endif  // TBF_SIM_INLINE_CALLBACK_H_
