// Discrete-event simulation kernel.
//
// A Simulator owns a virtual clock and an event queue of callbacks. Events scheduled for
// the same instant fire in scheduling order (FIFO), which keeps runs deterministic for a
// given seed.
//
// Hot-path design (every simulated frame schedules several events, so this is the
// simulator's central perf artifact):
//   * Callbacks are InlineCallback - captures are constructed directly into a pooled,
//     chunked slab slot (never on the heap; captures over 48 bytes fail to compile) and
//     invoked in place: chunks have stable addresses, so firing needs no copy even when
//     the callback schedules new events.
//   * Slot bookkeeping (timestamp, FIFO sequence, generation tag, intrusive queue link)
//     lives in a packed metadata array; Cancel touches one metadata record, no hashing.
//   * EventIds are generation-tagged slab handles: Cancel is an O(1) flag write, and
//     stale ids (already fired, currently firing, or cancelled twice) are rejected by a
//     generation/flag check, so the pending count can never drift.
//   * The ready queue is a timing wheel: events within a ~17 ms horizon of now are
//     linked (intrusively, through their metadata record) into one of 4096 buckets of
//     4.096 us each; non-empty buckets are tracked in a bitmap. Draining a bucket
//     gathers its list into a single reused scratch vector and sorts it once, so in
//     steady state the whole queue performs zero heap allocations. Events beyond the
//     horizon go into a binary-heap overflow that migrates into the wheel as the clock
//     advances: MAC/PHY deltas (slots, IFS, frame airtimes) land in the wheel; only
//     coarse timers (TCP RTO, TBR adjust) ever touch the overflow heap.
//
// Ordering invariant the wheel relies on: every queued event satisfies when >= now, so
// wheel events span at most one revolution ([bucket(now), bucket(now) + kBuckets)) and a
// circular bitmap scan from bucket(now) finds the earliest bucket; after draining the
// overflow of entries inside the horizon, any remaining overflow entry is in a strictly
// later bucket than every wheel entry, so wheel-first pop order is globally correct.
#ifndef TBF_SIM_SIMULATOR_H_
#define TBF_SIM_SIMULATOR_H_

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "tbf/sim/inline_callback.h"
#include "tbf/util/units.h"

namespace tbf::sim {

// Opaque handle: slab slot in the high 32 bits, generation tag in the low 32 bits.
// Generations start at 1, so no valid id equals kInvalidEventId.
using EventId = uint64_t;
inline constexpr EventId kInvalidEventId = 0;

class Simulator {
 public:
  using Callback = InlineCallback;

  Simulator() { bucket_heads_.assign(kBuckets, kNoSlot); }
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  TimeNs Now() const { return now_; }

  // Schedules `f` to run `delay` from now. Negative delays clamp to zero.
  template <typename F>
  EventId Schedule(TimeNs delay, F&& f) {
    return ScheduleAt(now_ + (delay < 0 ? 0 : delay), std::forward<F>(f));
  }

  // Schedules `f` at absolute time `when`; times in the past clamp to Now(). The
  // callable is constructed directly into its slab slot (no intermediate moves).
  template <typename F>
  EventId ScheduleAt(TimeNs when, F&& f) {
    if (when < now_) {
      when = now_;
    }
    uint32_t slot;
    if (free_head_ != kNoSlot) {
      slot = free_head_;
      free_head_ = meta_[slot].next;
    } else {
      slot = static_cast<uint32_t>(meta_.size());
      meta_.emplace_back();
      meta_[slot].generation = 1;
      if ((slot & kChunkMask) == 0) {
        chunks_.push_back(std::make_unique<CallbackChunk>());
      }
    }
    SlotMeta& meta = meta_[slot];
    meta.when = when;
    meta.seq = next_seq_++;
    CallbackAt(slot)->Emplace(std::forward<F>(f));
    const EventId id = MakeId(slot, meta.generation);
    Enqueue(slot, meta);
    ++live_events_;
    return id;
  }

  // Cancels a pending event: an O(1) flag write on the packed metadata. Cancelling an
  // already-fired, currently-firing, already-cancelled or invalid id is a no-op
  // (detected via the generation tag / flag). Like the callback itself, captured
  // resources are released when the queue entry pops, not at Cancel time.
  void Cancel(EventId id) {
    if (id == kInvalidEventId) {
      return;
    }
    const uint32_t slot = SlotOf(id);
    if (slot >= meta_.size()) {
      return;
    }
    SlotMeta& meta = meta_[slot];
    if (meta.generation != GenerationOf(id)) {
      return;
    }
    meta.generation |= kCancelledBit;
    --live_events_;
  }

  // Runs events until the queue is empty or the clock passes `until` (inclusive).
  // Returns the number of events executed.
  int64_t RunUntil(TimeNs until) {
    const int64_t executed = RunLoop(until);
    if (now_ < until && !stopped_) {
      now_ = until;
    }
    stopped_ = false;
    return executed;
  }

  // Runs every pending event regardless of timestamp.
  int64_t RunUntilIdle() {
    const int64_t executed = RunLoop(kMaxTime);
    stopped_ = false;
    return executed;
  }

  // Makes the currently running RunUntil/RunUntilIdle return after the active callback.
  void Stop() { stopped_ = true; }

  bool IsIdle() const { return live_events_ == 0; }

  size_t pending_events() const { return live_events_; }

  // Introspection for pool-reuse tests: slots ever allocated (steady state: constant).
  size_t event_pool_slots() const { return meta_.size(); }

 private:
  static constexpr uint32_t kNoSlot = UINT32_MAX;
  static constexpr TimeNs kMaxTime = INT64_MAX;
  // Generation tags use the low 31 bits; the top bit marks a cancelled pending event.
  // MakeId strips the flag, so a cancelled slot never matches a caller-held id.
  static constexpr uint32_t kCancelledBit = uint32_t{1} << 31;
  static constexpr uint32_t kGenerationMask = kCancelledBit - 1;

  // Wheel geometry: 4096 buckets x 4.096 us = ~16.8 ms horizon.
  static constexpr int kWidthBits = 12;
  static constexpr int kBucketBits = 12;
  static constexpr size_t kBuckets = size_t{1} << kBucketBits;
  static constexpr size_t kBucketMask = kBuckets - 1;
  static constexpr size_t kBitmapWords = kBuckets / 64;

  // Callback slab chunk: 512 slots x 64 bytes. Chunk addresses are stable, which lets
  // Fire() invoke callbacks in place while they schedule into (and grow) the slab.
  static constexpr int kChunkBits = 9;
  static constexpr size_t kChunkSize = size_t{1} << kChunkBits;
  static constexpr size_t kChunkMask = kChunkSize - 1;
  struct CallbackChunk {
    Callback slots[kChunkSize];
  };

  struct SlotMeta {
    TimeNs when = 0;
    uint64_t seq = 0;           // FIFO tie-break for equal timestamps.
    uint32_t generation = 1;    // Low 31 bits; kCancelledBit while cancelled-but-queued.
    uint32_t next = kNoSlot;    // Free-list link, or intrusive bucket-list link.
  };

  struct QEntry {
    TimeNs when;
    uint64_t seq;
    uint32_t slot;
  };

  static EventId MakeId(uint32_t slot, uint32_t generation) {
    return (static_cast<EventId>(slot) << 32) | (generation & kGenerationMask);
  }
  static uint32_t SlotOf(EventId id) { return static_cast<uint32_t>(id >> 32); }
  static uint32_t GenerationOf(EventId id) { return static_cast<uint32_t>(id); }

  static bool Earlier(const QEntry& a, const QEntry& b) {
    return a.when != b.when ? a.when < b.when : a.seq < b.seq;
  }
  // Orders later entries first: sorts the scratch vector descending (pops come off the
  // back) and doubles as the max-heap comparator std::push_heap/pop_heap expect for a
  // min-heap overflow. Keep a single comparator so the two orders can never diverge.
  struct Descending {
    bool operator()(const QEntry& a, const QEntry& b) const { return Earlier(b, a); }
  };

  static int64_t BucketOf(TimeNs when) { return when >> kWidthBits; }

  Callback* CallbackAt(uint32_t slot) {
    return &chunks_[slot >> kChunkBits]->slots[slot & kChunkMask];
  }

  void Enqueue(uint32_t slot, SlotMeta& meta) {
    const int64_t ab = BucketOf(meta.when);
    if (ab - BucketOf(now_) >= static_cast<int64_t>(kBuckets)) {
      overflow_.push_back(QEntry{meta.when, meta.seq, slot});
      std::push_heap(overflow_.begin(), overflow_.end(), Descending{});
      return;
    }
    ++wheel_count_;
    if (ab == open_bucket_ && !scratch_.empty()) {
      // This bucket is mid-drain; keep the scratch sorted (descending).
      const QEntry e{meta.when, meta.seq, slot};
      scratch_.insert(std::upper_bound(scratch_.begin(), scratch_.end(), e, Descending{}),
                      e);
      return;
    }
    const size_t index = static_cast<size_t>(ab) & kBucketMask;
    meta.next = bucket_heads_[index];
    bucket_heads_[index] = slot;
    MarkNonEmpty(index);
  }

  void MarkNonEmpty(size_t index) { bitmap_[index >> 6] |= uint64_t{1} << (index & 63); }
  void MarkEmpty(size_t index) { bitmap_[index >> 6] &= ~(uint64_t{1} << (index & 63)); }

  // First non-empty bucket in circular order starting at bucket(now). Assumes the wheel
  // holds at least one entry.
  size_t FindEarliestBucket() const {
    const size_t start = static_cast<size_t>(BucketOf(now_)) & kBucketMask;
    const size_t start_word = start >> 6;
    uint64_t word = bitmap_[start_word] & (~uint64_t{0} << (start & 63));
    if (word != 0) {
      return (start_word << 6) + static_cast<size_t>(std::countr_zero(word));
    }
    for (size_t k = 1; k <= kBitmapWords; ++k) {
      const size_t i = (start_word + k) & (kBitmapWords - 1);
      word = bitmap_[i];
      if (i == start_word) {
        word &= ~(~uint64_t{0} << (start & 63));  // Wrapped: low bits of the start word.
      }
      if (word != 0) {
        return (i << 6) + static_cast<size_t>(std::countr_zero(word));
      }
    }
    return start;  // Unreachable while wheel_count_ > 0.
  }

  // Migrates overflow entries that fell inside the horizon as the clock advanced.
  void DrainOverflow() {
    const int64_t limit = BucketOf(now_) + static_cast<int64_t>(kBuckets);
    while (!overflow_.empty() && BucketOf(overflow_.front().when) < limit) {
      std::pop_heap(overflow_.begin(), overflow_.end(), Descending{});
      const QEntry e = overflow_.back();
      overflow_.pop_back();
      SlotMeta& meta = meta_[e.slot];
      meta.when = e.when;  // Unchanged; restated for clarity.
      meta.seq = e.seq;
      Enqueue(e.slot, meta);
    }
  }

  // Opens bucket `index`: gathers its intrusive list into the scratch vector and sorts
  // it descending, so pops come off the back in (when, seq) order. If a previous open
  // bucket still has undrained entries (a bounded run stopped early and something
  // earlier arrived since), its scratch contents are relinked first.
  void OpenBucket(size_t index, int64_t ab) {
    if (!scratch_.empty() && open_bucket_ != ab) {
      const size_t old_index = static_cast<size_t>(open_bucket_) & kBucketMask;
      for (const QEntry& e : scratch_) {
        meta_[e.slot].next = bucket_heads_[old_index];
        bucket_heads_[old_index] = e.slot;
      }
      scratch_.clear();
    }
    open_bucket_ = ab;
    uint32_t head = bucket_heads_[index];
    bucket_heads_[index] = kNoSlot;
    while (head != kNoSlot) {
      const SlotMeta& meta = meta_[head];
      scratch_.push_back(QEntry{meta.when, meta.seq, head});
      head = meta.next;
    }
    std::sort(scratch_.begin(), scratch_.end(), Descending{});
  }

  // Fires queued events in (when, seq) order while their timestamp is <= bound. The
  // inner loop drains one bucket at a time: while events of bucket B fire, now_ sits
  // inside B, so no new event can land in an earlier bucket and no overflow entry can
  // become eligible - the bucket open/sort happens once per bucket, not once per event.
  int64_t RunLoop(TimeNs bound) {
    int64_t executed = 0;
    while (!stopped_) {
      if (!overflow_.empty()) {
        DrainOverflow();
      }
      if (wheel_count_ == 0) {
        // Beyond-horizon region: pop straight off the overflow heap (rare; the clock
        // jump re-enables wheel admission for whatever follows).
        if (overflow_.empty() || overflow_.front().when > bound) {
          break;
        }
        std::pop_heap(overflow_.begin(), overflow_.end(), Descending{});
        const QEntry entry = overflow_.back();
        overflow_.pop_back();
        executed += Fire(entry);
        continue;
      }
      const size_t index = FindEarliestBucket();
      const int64_t start = BucketOf(now_);
      const size_t offset =
          (index - (static_cast<size_t>(start) & kBucketMask)) & kBucketMask;
      const int64_t ab = start + static_cast<int64_t>(offset);
      if (scratch_.empty() || open_bucket_ != ab) {
        OpenBucket(index, ab);
      }
      bool past_bound = false;
      while (!scratch_.empty()) {
        const QEntry entry = scratch_.back();
        if (entry.when > bound) {
          past_bound = true;
          break;
        }
        scratch_.pop_back();
        --wheel_count_;
        executed += Fire(entry);
        if (stopped_) {
          break;
        }
      }
      // A callback may have pushed a fresh entry onto this bucket's list while the
      // scratch was momentarily empty; only clear the bit when both are empty.
      if (scratch_.empty() && bucket_heads_[index] == kNoSlot) {
        MarkEmpty(index);
      }
      if (past_bound) {
        break;
      }
    }
    return executed;
  }

  // Fires `entry` unless its slot was cancelled. Returns events executed (0 or 1).
  int64_t Fire(const QEntry& entry) {
    SlotMeta& meta = meta_[entry.slot];
    const bool cancelled = (meta.generation & kCancelledBit) != 0;
    // Retire the id before running: a callback cancelling the event that is currently
    // firing (or a stale handle) must be a no-op, not a pending-count decrement.
    meta.generation = (meta.generation + 1) & kGenerationMask;
    if (meta.generation == 0) {
      meta.generation = 1;  // Keep ids distinct from kInvalidEventId after wrap.
    }
    if (cancelled) {
      ReleaseSlot(entry.slot);
      return 0;
    }
    --live_events_;
    now_ = entry.when;
    // In place: chunks are stable, so the callback may schedule (growing meta_ and
    // chunks_) while it runs. meta_ may reallocate, so re-derive pointers afterwards.
    (*CallbackAt(entry.slot))();
    ReleaseSlot(entry.slot);
    return 1;
  }

  void ReleaseSlot(uint32_t slot) {
    CallbackAt(slot)->Reset();
    SlotMeta& meta = meta_[slot];
    meta.next = free_head_;
    free_head_ = slot;
  }

  TimeNs now_ = 0;
  uint64_t next_seq_ = 0;
  size_t live_events_ = 0;
  bool stopped_ = false;

  uint32_t free_head_ = kNoSlot;
  std::vector<SlotMeta> meta_;
  std::vector<std::unique_ptr<CallbackChunk>> chunks_;

  std::vector<uint32_t> bucket_heads_;
  uint64_t bitmap_[kBitmapWords] = {};
  size_t wheel_count_ = 0;
  int64_t open_bucket_ = -1;        // Absolute bucket index the scratch belongs to.
  std::vector<QEntry> scratch_;     // Sorted (descending) entries of the open bucket.
  std::vector<QEntry> overflow_;
};

}  // namespace tbf::sim

#endif  // TBF_SIM_SIMULATOR_H_
