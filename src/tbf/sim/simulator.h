// Discrete-event simulation kernel.
//
// A Simulator owns a virtual clock and a priority queue of callbacks. Events scheduled for
// the same instant fire in scheduling order (FIFO), which keeps runs deterministic for a
// given seed. Cancellation is O(1) via lazy deletion.
#ifndef TBF_SIM_SIMULATOR_H_
#define TBF_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "tbf/util/units.h"

namespace tbf::sim {

using EventId = uint64_t;
inline constexpr EventId kInvalidEventId = 0;

class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  TimeNs Now() const { return now_; }

  // Schedules `cb` to run `delay` from now. Negative delays clamp to zero.
  EventId Schedule(TimeNs delay, Callback cb) {
    return ScheduleAt(now_ + (delay < 0 ? 0 : delay), std::move(cb));
  }

  // Schedules `cb` at absolute time `when`; times in the past clamp to Now().
  EventId ScheduleAt(TimeNs when, Callback cb) {
    if (when < now_) {
      when = now_;
    }
    const EventId id = next_id_++;
    queue_.push(Entry{when, id, std::move(cb)});
    ++live_events_;
    return id;
  }

  // Cancels a pending event. Cancelling an already-fired or invalid id is a no-op.
  void Cancel(EventId id) {
    if (id != kInvalidEventId && cancelled_.insert(id).second) {
      // The entry stays in the heap and is skipped when popped.
    }
  }

  // Runs events until the queue is empty or the clock passes `until` (inclusive).
  // Returns the number of events executed.
  int64_t RunUntil(TimeNs until) {
    int64_t executed = 0;
    while (!queue_.empty() && !stopped_) {
      const Entry& top = queue_.top();
      if (top.when > until) {
        break;
      }
      Entry entry = PopTop();
      if (WasCancelled(entry.id)) {
        continue;
      }
      now_ = entry.when;
      entry.cb();
      ++executed;
    }
    if (now_ < until && !stopped_) {
      now_ = until;
    }
    stopped_ = false;
    return executed;
  }

  // Runs every pending event regardless of timestamp.
  int64_t RunUntilIdle() {
    int64_t executed = 0;
    while (!queue_.empty() && !stopped_) {
      Entry entry = PopTop();
      if (WasCancelled(entry.id)) {
        continue;
      }
      now_ = entry.when;
      entry.cb();
      ++executed;
    }
    stopped_ = false;
    return executed;
  }

  // Makes the currently running RunUntil/RunUntilIdle return after the active callback.
  void Stop() { stopped_ = true; }

  bool IsIdle() const { return live_events_ == cancelled_.size(); }

  size_t pending_events() const { return live_events_ - cancelled_.size(); }

 private:
  struct Entry {
    TimeNs when;
    EventId id;
    Callback cb;
  };

  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.id > b.id;  // FIFO for equal timestamps.
    }
  };

  Entry PopTop() {
    Entry entry = std::move(const_cast<Entry&>(queue_.top()));
    queue_.pop();
    --live_events_;
    return entry;
  }

  bool WasCancelled(EventId id) {
    auto it = cancelled_.find(id);
    if (it == cancelled_.end()) {
      return false;
    }
    cancelled_.erase(it);
    return true;
  }

  TimeNs now_ = 0;
  EventId next_id_ = 1;
  size_t live_events_ = 0;
  bool stopped_ = false;
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  std::unordered_set<EventId> cancelled_;
};

}  // namespace tbf::sim

#endif  // TBF_SIM_SIMULATOR_H_
