#include "tbf/model/fairness_model.h"

#include "tbf/util/logging.h"

namespace tbf::model {

Allocation ThroughputFairAllocation(const std::vector<NodeModel>& nodes) {
  Allocation alloc;
  double denom = 0.0;  // sum_j s_j / beta_j.
  for (const NodeModel& n : nodes) {
    TBF_CHECK(n.beta_bps > 0.0);
    denom += n.packet_bytes / n.beta_bps;
  }
  for (const NodeModel& n : nodes) {
    const double t = (n.packet_bytes / n.beta_bps) / denom;
    alloc.channel_time.push_back(t);
    const double r = t * n.beta_bps;
    alloc.throughput_bps.push_back(r);
    alloc.total_bps += r;
  }
  return alloc;
}

Allocation TimeFairAllocation(const std::vector<NodeModel>& nodes) {
  Allocation alloc;
  double total_weight = 0.0;
  for (const NodeModel& n : nodes) {
    total_weight += n.weight;
  }
  for (const NodeModel& n : nodes) {
    TBF_CHECK(n.beta_bps > 0.0);
    const double t = n.weight / total_weight;
    alloc.channel_time.push_back(t);
    const double r = t * n.beta_bps;
    alloc.throughput_bps.push_back(r);
    alloc.total_bps += r;
  }
  return alloc;
}

double TimeFairGain(const std::vector<NodeModel>& nodes) {
  const double rf = ThroughputFairAllocation(nodes).total_bps;
  const double tf = TimeFairAllocation(nodes).total_bps;
  return rf > 0.0 ? tf / rf : 0.0;
}

}  // namespace tbf::model
