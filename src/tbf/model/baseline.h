// Baseline throughput beta(d, s, I) - the paper's Section 2.3 quantity: the maximum total
// throughput achieved when all |I| nodes use data rate d and packet size s under similar
// (near-zero) loss.
//
// Two sources are provided:
//  * kPaperTable2 - the values the paper measured on its testbed (Table 2), used to
//    reproduce Table 3 digit-for-digit;
//  * AnalyticBaseline - a first-principles estimate from 802.11 timing (PLCP, DIFS,
//    expected backoff, SIFS, ACK, TCP ack traffic with delayed acks, and a first-order
//    collision allowance), validated against the simulator in tests.
#ifndef TBF_MODEL_BASELINE_H_
#define TBF_MODEL_BASELINE_H_

#include <map>

#include "tbf/phy/rates.h"
#include "tbf/phy/timing.h"
#include "tbf/util/units.h"

namespace tbf::model {

enum class TrafficKind { kTcp, kUdp };

// The paper's Table 2: measured two-node TCP baseline throughput (bps) at 1500-byte
// packets for each 802.11b rate.
const std::map<phy::WifiRate, double>& PaperTable2Baselines();

struct AnalyticBaselineConfig {
  phy::MacTimings timings = phy::MixedModeTimings();
  int ip_packet_bytes = 1500;
  TrafficKind traffic = TrafficKind::kTcp;
  int tcp_ack_every = 2;  // Delayed acks.
  // First-order collision inflation: each exchange costs an extra
  // (contenders - 1) / cw_min / 2 of its own duration.
  bool collision_allowance = true;
};

// Estimated beta(d, s, I) in bits/second for n competing nodes all at `rate`.
double AnalyticBaseline(phy::WifiRate rate, int n_nodes, const AnalyticBaselineConfig& config);

// Convenience: analytic TCP baseline with defaults (two nodes, 1500-byte packets).
double AnalyticTcpBaseline(phy::WifiRate rate);

}  // namespace tbf::model

#endif  // TBF_MODEL_BASELINE_H_
