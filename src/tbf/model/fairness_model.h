// The paper's analytic framework (Section 2): predicted allocations under
// throughput-based fairness (DCF, Equations 4-10) and time-based fairness
// (Equations 11-13), for arbitrary per-node baseline throughputs and packet sizes.
#ifndef TBF_MODEL_FAIRNESS_MODEL_H_
#define TBF_MODEL_FAIRNESS_MODEL_H_

#include <vector>

#include "tbf/util/units.h"

namespace tbf::model {

struct NodeModel {
  double beta_bps = 0.0;  // Baseline throughput beta(d_i, s_i, I).
  double packet_bytes = 1500.0;
  double weight = 1.0;    // Time-based share weight (1 = equal).
};

struct Allocation {
  std::vector<double> throughput_bps;  // R(i).
  std::vector<double> channel_time;    // T(i), fractions summing to 1.
  double total_bps = 0.0;              // R(I).
};

// Equations 4 and 2/3 in their general (mixed packet size) form:
//   T(i) = (s_i / beta_i) / sum_j (s_j / beta_j),   R(i) = T(i) * beta_i.
// With equal packet sizes this reduces to Eq. 5-7 (equal per-node throughput).
Allocation ThroughputFairAllocation(const std::vector<NodeModel>& nodes);

// Equations 11-13: T'(i) = w_i / sum w  (1/n when equal),  R'(i) = T'(i) * beta_i.
Allocation TimeFairAllocation(const std::vector<NodeModel>& nodes);

// Aggregate-throughput ratio TF / RF - the paper's headline improvement factor.
double TimeFairGain(const std::vector<NodeModel>& nodes);

}  // namespace tbf::model

#endif  // TBF_MODEL_FAIRNESS_MODEL_H_
