// The task traffic model (Section 2.1): a finite set of finite transfers, evaluated under
// either fairness notion by piecewise-fluid simulation. Produces the efficiency measures of
// Table 1: AvgTaskTime, FinalTaskTime, and the aggregate-throughput time series.
#ifndef TBF_MODEL_TASK_MODEL_H_
#define TBF_MODEL_TASK_MODEL_H_

#include <vector>

#include "tbf/util/units.h"

namespace tbf::model {

enum class FairnessNotion { kThroughputFair, kTimeFair };

struct Task {
  double beta_bps = 0.0;   // Baseline throughput of the owning node.
  double bytes = 0.0;      // Task size.
  double weight = 1.0;     // Time-fair weight.
};

struct TaskOutcome {
  std::vector<double> completion_sec;  // Per task, in input order.
  double avg_task_time_sec = 0.0;
  double final_task_time_sec = 0.0;
};

// Fluid-schedule the tasks to completion under the given fairness notion.
//
// Under throughput-based fairness every active task receives the equal-throughput
// allocation R = 1 / sum(1/beta_j) over the active set; under time-based fairness task i
// receives beta_i * w_i / sum(w_j). The schedule is work-conserving in channel time, so
// FinalTaskTime is invariant across notions when tasks are "equal work" - the paper's
// Table 1 row - while AvgTaskTime improves under time-based fairness.
TaskOutcome RunTaskModel(const std::vector<Task>& tasks, FairnessNotion notion);

}  // namespace tbf::model

#endif  // TBF_MODEL_TASK_MODEL_H_
