#include "tbf/model/baseline.h"

#include "tbf/net/packet.h"

namespace tbf::model {

const std::map<phy::WifiRate, double>& PaperTable2Baselines() {
  // Function-local static: initialization is thread-safe (C++11 magic static) and the
  // map is immutable afterwards, so concurrent sweep workers may call this freely.
  static const std::map<phy::WifiRate, double> kTable = {
      {phy::WifiRate::k11Mbps, 5.189e6},
      {phy::WifiRate::k5_5Mbps, 3.327e6},
      {phy::WifiRate::k2Mbps, 1.493e6},
      {phy::WifiRate::k1Mbps, 0.806e6},
  };
  return kTable;
}

double AnalyticBaseline(phy::WifiRate rate, int n_nodes,
                        const AnalyticBaselineConfig& config) {
  const phy::MacTimings& t = config.timings;
  const int payload =
      config.ip_packet_bytes - (config.traffic == TrafficKind::kTcp ? net::kIpTcpHeaderBytes
                                                                    : net::kIpUdpHeaderBytes);
  const int data_frame = config.ip_packet_bytes + phy::kMacDataOverheadBytes;

  // Contenders on the channel: the n data senders plus the AP relaying transport acks
  // (uplink TCP); for UDP the AP is quiet, but the formula's sensitivity to one extra
  // contender is small.
  const int contenders =
      n_nodes + (config.traffic == TrafficKind::kTcp ? 1 : 0);
  const TimeNs expected_backoff =
      t.slot * t.cw_min / (2 * (contenders > 0 ? contenders : 1));
  const TimeNs idle = t.Difs() + expected_backoff;

  TimeNs per_packet =
      idle + phy::DataExchangeAirtime(data_frame, rate, t);

  if (config.traffic == TrafficKind::kTcp) {
    const int ack_frame = net::kIpTcpHeaderBytes + phy::kMacDataOverheadBytes;
    const TimeNs ack_exchange = idle + phy::DataExchangeAirtime(ack_frame, rate, t);
    per_packet += ack_exchange / config.tcp_ack_every;
  }

  if (config.collision_allowance && contenders > 1) {
    const double p = static_cast<double>(contenders - 1) / (t.cw_min + 1);
    per_packet = static_cast<TimeNs>(static_cast<double>(per_packet) * (1.0 + p / 2.0));
  }

  return static_cast<double>(payload) * 8.0 / (static_cast<double>(per_packet) / 1e9);
}

double AnalyticTcpBaseline(phy::WifiRate rate) {
  return AnalyticBaseline(rate, 2, AnalyticBaselineConfig{});
}

}  // namespace tbf::model
