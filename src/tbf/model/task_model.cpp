#include "tbf/model/task_model.h"

#include <algorithm>
#include <limits>

#include "tbf/util/logging.h"

namespace tbf::model {

TaskOutcome RunTaskModel(const std::vector<Task>& tasks, FairnessNotion notion) {
  TaskOutcome outcome;
  const size_t n = tasks.size();
  outcome.completion_sec.assign(n, 0.0);

  std::vector<double> remaining_bits(n);
  std::vector<bool> active(n, true);
  size_t active_count = n;
  for (size_t i = 0; i < n; ++i) {
    TBF_CHECK(tasks[i].beta_bps > 0.0);
    remaining_bits[i] = tasks[i].bytes * 8.0;
    if (remaining_bits[i] <= 0.0) {
      active[i] = false;
      --active_count;
    }
  }

  double now = 0.0;
  while (active_count > 0) {
    // Instantaneous per-task rates over the active set.
    std::vector<double> rate(n, 0.0);
    if (notion == FairnessNotion::kThroughputFair) {
      double denom = 0.0;
      for (size_t i = 0; i < n; ++i) {
        if (active[i]) {
          denom += 1.0 / tasks[i].beta_bps;
        }
      }
      const double equal = 1.0 / denom;
      for (size_t i = 0; i < n; ++i) {
        if (active[i]) {
          rate[i] = equal;
        }
      }
    } else {
      double total_weight = 0.0;
      for (size_t i = 0; i < n; ++i) {
        if (active[i]) {
          total_weight += tasks[i].weight;
        }
      }
      for (size_t i = 0; i < n; ++i) {
        if (active[i]) {
          rate[i] = tasks[i].beta_bps * tasks[i].weight / total_weight;
        }
      }
    }

    // Advance to the next completion.
    double dt = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < n; ++i) {
      if (active[i] && rate[i] > 0.0) {
        dt = std::min(dt, remaining_bits[i] / rate[i]);
      }
    }
    TBF_CHECK(dt < std::numeric_limits<double>::infinity());
    now += dt;
    for (size_t i = 0; i < n; ++i) {
      if (!active[i]) {
        continue;
      }
      remaining_bits[i] -= rate[i] * dt;
      if (remaining_bits[i] <= 1e-6) {
        remaining_bits[i] = 0.0;
        active[i] = false;
        --active_count;
        outcome.completion_sec[i] = now;
      }
    }
  }

  double sum = 0.0;
  double final_time = 0.0;
  for (double c : outcome.completion_sec) {
    sum += c;
    final_time = std::max(final_time, c);
  }
  outcome.avg_task_time_sec = n > 0 ? sum / static_cast<double>(n) : 0.0;
  outcome.final_task_time_sec = final_time;
  return outcome;
}

}  // namespace tbf::model
