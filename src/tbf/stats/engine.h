// StatsEngine: bounded-memory run metrology behind a narrow recording API.
//
// Every scenario layer (single-cell Wlan, the sharded CampusSim, sweep jobs) records
// its latency samples and delivered bytes through one StatsEngine per shard instead of
// pushing into grow-forever per-flow vectors. The engine bounds readout memory with
// three mechanisms, each independently configurable via StatsConfig:
//
//  1. Interval percentiles. With `window > 0`, samples land in a time-windowed ring of
//     QuantileSketches keyed by floor(now / window). Sealed windows (everything whose
//     end has passed) fold into the engine's whole-run meter, emit one WindowStat
//     (count + p50/p95/p99) into the meter's series, and free their sketch - so long
//     runs report a percentile *time series* in O(windows) small structs plus O(open
//     windows) sketches, not O(samples). With `window == 0` the whole run is one
//     window (no series).
//
//  2. Sampled per-flow retention. With `top_k > 0`, exact per-flow state (task vectors
//     + per-flow sketches) is kept only for the current top-K heaviest flows by
//     delivered bytes - tracked by a space-saving (Misra-Gries) counter, so any flow
//     with true bytes > total/K is guaranteed a slot and every estimate overshoots by
//     at most total/K (tests/stats_engine_test.cpp pins both bounds the way
//     quantile_test.cpp pins the sketch) - plus a seeded uniform 1-in-`sample_every`
//     flow sample whose retention is pinned (never evicted). Every other flow keeps
//     counted tier only: counts, sums, last completion. A flow promoted into the top-K
//     mid-run starts its exact tier from that moment (earlier samples live only in the
//     engine-wide meters); FlowResult::exact flags whether a flow's percentiles cover
//     its whole run. With `top_k <= 0` every flow is retained exactly.
//
//  3. Per-shard merge trees. Each shard records into its own engine with zero shared
//     state; the coordinator, at its barriers, calls SealWindowsUpTo(t, &parent) on
//     each child in a fixed order and then seals the parent. Sealed child windows merge
//     into the parent's open window of the same index (sketch merges are commutative
//     and associative), so the campus-wide series and whole-run meters are bit-identical
//     for any TBF_SHARD_THREADS - the merge order is fixed by the caller, never by
//     thread scheduling.
//
// The legacy default config (window == 0, top_k <= 0) is "exact" mode: all flows
// retained, one implicit window, no engine-wide meters maintained (readout merges the
// per-flow sketches exactly the way the pre-engine code did), which is how the refactor
// reproduces the existing scenario bench outputs byte-identically.
//
// Not thread-safe: one engine per shard, records only from that shard's thread; merges
// only from the coordinator at barriers. See docs/metrology.md.
#ifndef TBF_STATS_ENGINE_H_
#define TBF_STATS_ENGINE_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "tbf/stats/quantile_sketch.h"
#include "tbf/util/units.h"

namespace tbf::stats {

// Metrology policy for one run. The default is legacy exact mode.
struct StatsConfig {
  // Interval-percentile window width. > 0: samples bucket into floor(now/window)
  // windows and sealed windows emit a WindowStat series. 0: whole run is one window.
  TimeNs window = 0;
  // > 0: exact per-flow retention only for the top-K heaviest flows (by bytes recorded
  // through this engine) plus the uniform sample; counted tier for the rest.
  // <= 0: every flow retained exactly.
  int top_k = 0;
  // With top_k > 0: additionally retain a seeded uniform 1-in-N flow sample, pinned
  // (never evicted). 0 disables the sample.
  int sample_every = 0;
  uint64_t sample_seed = 1;

  // Legacy exact mode: the configuration under which the engine reproduces the
  // pre-engine readout byte-identically.
  bool LegacyExact() const { return window <= 0 && top_k <= 0; }

  friend bool operator==(const StatsConfig&, const StatsConfig&) = default;
};

// One sealed interval of one meter: sample count and latency percentiles of the
// window [start, start + series.window).
struct WindowStat {
  TimeNs start = 0;
  int64_t count = 0;
  TimeNs p50 = 0;
  TimeNs p95 = 0;
  TimeNs p99 = 0;

  friend bool operator==(const WindowStat&, const WindowStat&) = default;
};

// Percentile time series of one meter: sealed windows ascending by start. Windows in
// which the meter saw no samples are omitted. Empty when the run was not windowed.
struct MeterSeries {
  TimeNs window = 0;
  std::vector<WindowStat> windows;

  friend bool operator==(const MeterSeries&, const MeterSeries&) = default;
};

// One sealed interval of the byte meter: deliveries and payload bytes recorded in
// [start, start + series.window). Goodput over the window is bytes / window - exact
// integer sums, so sharded merges are trivially bit-identical.
struct ByteWindow {
  TimeNs start = 0;
  int64_t count = 0;
  int64_t bytes = 0;

  friend bool operator==(const ByteWindow&, const ByteWindow&) = default;
};

// Goodput time series: sealed byte windows ascending by start. Windows in which no
// bytes were recorded are omitted. Empty when the run was not windowed - the latency
// meters' MeterSeries contract, applied to throughput.
struct ByteSeries {
  TimeNs window = 0;
  std::vector<ByteWindow> windows;

  friend bool operator==(const ByteSeries&, const ByteSeries&) = default;
};

// The three run meters. Values are TimeNs samples (see FlowResult for semantics).
enum MeterKind { kTaskLatency = 0, kRtt = 1, kQueueDelay = 2 };
inline constexpr int kNumMeters = 3;

// Per-flow state. The counted tier (bytes, counts, sums, last completion) is always
// maintained; the exact tier (vectors + sketches) only while `retained`.
struct FlowStats {
  int flow_id = 0;  // 0 = unregistered slot.
  bool retained = false;
  bool sampled = false;  // Uniform-sample member: retention pinned.

  // Counted tier.
  int64_t bytes = 0;  // Delivered payload recorded through this engine.
  int64_t tasks = 0;
  TimeNs last_completion = -1;  // Absolute sim time; -1 = no task finished.
  int64_t rtt_count = 0;
  int64_t queue_count = 0;
  TimeNs rtt_sum = 0;
  TimeNs queue_sum = 0;
  TimeNs duration_sum = 0;

  // Exact tier (empty unless retained; a flow promoted mid-run starts here late).
  std::vector<TimeNs> task_completions;  // Absolute sim times.
  std::vector<TimeNs> task_durations;
  QuantileSketch rtt_sketch;
  QuantileSketch queue_delay_sketch;
  QuantileSketch task_latency_sketch;
};

class StatsEngine {
 public:
  explicit StatsEngine(StatsConfig config = {});

  // Declares a flow before any sample for it is recorded. Flow ids are positive and
  // dense per shard (an engine stores them in a base-offset vector, so a shard whose
  // flows occupy a contiguous id range pays only for its own flows). Registering the
  // same id twice is a no-op. Samples for unregistered ids are dropped.
  void RegisterFlow(int flow_id);

  // Recording API - called from the owning shard's thread only. Delivered bytes feed
  // the per-flow counted tier, the space-saving retention ranking, and - when the run
  // is windowed - the goodput time series.
  void RecordBytes(int flow_id, TimeNs now, int64_t bytes);
  void RecordTaskCompletion(int flow_id, TimeNs now, TimeNs duration);
  void RecordRtt(int flow_id, TimeNs now, TimeNs sample);
  void RecordQueueDelay(int flow_id, TimeNs now, TimeNs delay);

  // Seals every window whose end is <= now: folds it into the whole-run meter, appends
  // its WindowStat to the series, forwards the sketch into `parent`'s open window of
  // the same index (parent must share this engine's window width), and frees it.
  // Coordinator-only; the caller fixes the merge order (children in a fixed order,
  // then the parent), which is what keeps sharded runs bit-identical.
  void SealWindowsUpTo(TimeNs now, StatsEngine* parent = nullptr);

  // End-of-run: seals every open window including the partial last one. In unwindowed
  // streaming mode (window == 0, top_k > 0) this instead folds the whole-run meters
  // into the parent. Call on children (fixed order) before the parent.
  void FlushAll(StatsEngine* parent = nullptr);

  // With auto-seal on, opening a new (later) window seals every older one immediately
  // with no parent. Only valid for engines that are not merge-tree children (sealed
  // windows can no longer be forwarded) and whose samples arrive in nondecreasing
  // window order - i.e. a single-cell run. Keeps open-sketch memory O(1) instead of
  // O(run length / window).
  void SetAutoSeal(bool on) { auto_seal_ = on; }

  // Whole-run meter distribution. Complete - covering every sample recorded through
  // this engine and its merge-tree children - in every mode except legacy exact, where
  // it is intentionally empty and readout merges the per-flow sketches instead.
  const QuantileSketch& meter(MeterKind kind) const { return meters_[kind].whole; }
  bool HasCompleteMeters() const { return !config_.LegacyExact(); }

  // Percentile time series of sealed windows (empty when window == 0 or before any
  // seal). Stable across shard counts by the seal-order contract above.
  MeterSeries series(MeterKind kind) const;

  // Goodput time series of sealed byte windows; same windowing, sealing, and
  // merge-order contract as the latency series (byte sums are exact, so the campus
  // series is bit-identical for any shard count by construction).
  ByteSeries bytes_series() const;

  // Per-flow readout; nullptr when the id was never registered here.
  const FlowStats* flow(int flow_id) const;

  // Space-saving table readout: true when the flow currently holds a top-K slot, with
  // its byte estimate and the estimate's maximum overcount. For any flow,
  // estimate - overcount <= true bytes <= estimate, and overcount <= total/K.
  bool HeavyEstimate(int flow_id, int64_t* estimate, int64_t* overcount) const;

  int64_t total_bytes() const { return total_bytes_; }
  const StatsConfig& config() const { return config_; }

  // Bytes currently held by metrology state: per-flow tiers, open-window sketches,
  // whole-run meters, sealed series, retention table. The number the streaming modes
  // exist to bound; bench_campus_scale reports it per row.
  size_t MemoryFootprintBytes() const;

 private:
  struct OpenWindow {
    int64_t index = 0;
    QuantileSketch sketch;
  };
  // One meter: whole-run distribution, open (unsealed) windows ascending by index,
  // sealed series.
  struct Meter {
    QuantileSketch whole;
    std::deque<OpenWindow> open;
    std::vector<WindowStat> sealed;
  };
  struct HeavyEntry {
    int flow_id = 0;
    int64_t estimate = 0;
    int64_t overcount = 0;
  };
  // Open (unsealed) byte window; index * window = start.
  struct OpenBytes {
    int64_t index = 0;
    int64_t count = 0;
    int64_t bytes = 0;
  };

  FlowStats* MutableFlow(int flow_id);
  void AddSample(MeterKind kind, TimeNs now, double value);
  void AddBytes(TimeNs now, int64_t bytes);
  QuantileSketch& OpenAt(Meter& m, int64_t index);
  OpenBytes& OpenBytesAt(int64_t index);
  void SealMeter(MeterKind kind, int64_t limit_index, StatsEngine* parent);
  void SealBytes(int64_t limit_index, StatsEngine* parent);
  void NoteBytesForRetention(FlowStats& fs, int64_t bytes);
  void DropExactTier(FlowStats& fs);
  static uint64_t Mix(uint64_t seed, uint64_t flow_id);

  StatsConfig config_;
  bool auto_seal_ = false;

  // Per-flow state, indexed by flow_id - base_ (base_ = smallest registered id).
  std::vector<FlowStats> flows_;
  std::vector<int32_t> heavy_slot_;  // Parallel to flows_: slot in heavy_, or -1.
  int base_ = 0;

  std::vector<HeavyEntry> heavy_;  // Space-saving table, <= top_k entries.
  int64_t total_bytes_ = 0;

  Meter meters_[kNumMeters];
  // Byte meter: open windows ascending by index, sealed goodput series.
  std::deque<OpenBytes> bytes_open_;
  std::vector<ByteWindow> bytes_sealed_;
};

}  // namespace tbf::stats

#endif  // TBF_STATS_ENGINE_H_
