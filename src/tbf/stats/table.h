// Fixed-width console table and CSV output for bench harnesses.
#ifndef TBF_STATS_TABLE_H_
#define TBF_STATS_TABLE_H_

#include <iostream>
#include <string>
#include <vector>

namespace tbf::stats {

class Table {
 public:
  explicit Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  void Print(std::ostream& out = std::cout) const;
  void PrintCsv(std::ostream& out) const;

  // Formats a double with fixed precision (no locale surprises).
  static std::string Num(double value, int precision = 3);
  // "x1.82" style ratio formatting.
  static std::string Ratio(double value, int precision = 2);
  // "+82%" style percentage delta.
  static std::string PercentDelta(double ratio);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace tbf::stats

#endif  // TBF_STATS_TABLE_H_
