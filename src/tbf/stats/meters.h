// Measurement utilities: per-node airtime and throughput meters, fairness indices.
#ifndef TBF_STATS_METERS_H_
#define TBF_STATS_METERS_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

#include "tbf/util/units.h"

namespace tbf::stats {

// Accumulates channel occupancy time per owning client node. "Occupancy" follows the
// paper's definition: data + ACK airtime plus the inter-frame idle (IFS + backoff) that
// the exchange consumed, retransmissions included.
//
// Charge() runs once per exchange on the hot path, so the accumulator is a dense
// NodeId-indexed array (node ids are small); by_node() materializes the sorted
// charged-nodes view (identical to the map it replaced: only nodes with positive
// charges appear, in ascending NodeId order) for the readout path.
class AirtimeMeter {
 public:
  void Charge(NodeId owner, TimeNs t) {
    if (t > 0 && owner >= 0) {
      if (static_cast<size_t>(owner) >= airtime_.size()) {
        airtime_.resize(static_cast<size_t>(owner) + 1, 0);
      }
      airtime_[static_cast<size_t>(owner)] += t;
      total_ += t;
    }
  }

  TimeNs Airtime(NodeId owner) const {
    return owner >= 0 && static_cast<size_t>(owner) < airtime_.size()
               ? airtime_[static_cast<size_t>(owner)]
               : 0;
  }

  TimeNs TotalCharged() const { return total_; }

  // Fraction of all charged airtime used by `owner`.
  double Share(NodeId owner) const {
    if (total_ <= 0) {
      return 0.0;
    }
    return static_cast<double>(Airtime(owner)) / static_cast<double>(total_);
  }

  // Sorted snapshot of every node with charged airtime (readout path, not hot).
  std::map<NodeId, TimeNs> by_node() const {
    std::map<NodeId, TimeNs> out;
    for (size_t i = 0; i < airtime_.size(); ++i) {
      if (airtime_[i] > 0) {
        out.emplace(static_cast<NodeId>(i), airtime_[i]);
      }
    }
    return out;
  }

  void Reset() {
    airtime_.clear();
    total_ = 0;
  }

 private:
  std::vector<TimeNs> airtime_;  // Indexed by NodeId; zero = never charged.
  TimeNs total_ = 0;
};

// Counts application payload bytes delivered per node (goodput numerator).
class ThroughputMeter {
 public:
  void AddBytes(NodeId node, int64_t bytes) {
    bytes_[node] += bytes;
    total_ += bytes;
  }

  int64_t Bytes(NodeId node) const {
    auto it = bytes_.find(node);
    return it == bytes_.end() ? 0 : it->second;
  }

  int64_t TotalBytes() const { return total_; }

  double Bps(NodeId node, TimeNs interval) const { return ThroughputBps(Bytes(node), interval); }
  double TotalBps(TimeNs interval) const { return ThroughputBps(total_, interval); }

  const std::map<NodeId, int64_t>& by_node() const { return bytes_; }

  void Reset() {
    bytes_.clear();
    total_ = 0;
  }

 private:
  std::map<NodeId, int64_t> bytes_;
  int64_t total_ = 0;
};

// Jain's fairness index over a vector of allocations: (sum x)^2 / (n * sum x^2).
// 1.0 = perfectly fair; 1/n = maximally unfair.
double JainIndex(const std::vector<double>& allocations);

}  // namespace tbf::stats

#endif  // TBF_STATS_METERS_H_
