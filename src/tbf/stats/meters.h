// Measurement utilities: per-node airtime and throughput meters, fairness indices.
#ifndef TBF_STATS_METERS_H_
#define TBF_STATS_METERS_H_

#include <cstdint>
#include <map>
#include <vector>

#include "tbf/util/units.h"

namespace tbf::stats {

// Accumulates channel occupancy time per owning client node. "Occupancy" follows the
// paper's definition: data + ACK airtime plus the inter-frame idle (IFS + backoff) that
// the exchange consumed, retransmissions included.
class AirtimeMeter {
 public:
  void Charge(NodeId owner, TimeNs t) {
    if (t > 0) {
      airtime_[owner] += t;
      total_ += t;
    }
  }

  TimeNs Airtime(NodeId owner) const {
    auto it = airtime_.find(owner);
    return it == airtime_.end() ? 0 : it->second;
  }

  TimeNs TotalCharged() const { return total_; }

  // Fraction of all charged airtime used by `owner`.
  double Share(NodeId owner) const {
    if (total_ <= 0) {
      return 0.0;
    }
    return static_cast<double>(Airtime(owner)) / static_cast<double>(total_);
  }

  const std::map<NodeId, TimeNs>& by_node() const { return airtime_; }

  void Reset() {
    airtime_.clear();
    total_ = 0;
  }

 private:
  std::map<NodeId, TimeNs> airtime_;
  TimeNs total_ = 0;
};

// Counts application payload bytes delivered per node (goodput numerator).
class ThroughputMeter {
 public:
  void AddBytes(NodeId node, int64_t bytes) {
    bytes_[node] += bytes;
    total_ += bytes;
  }

  int64_t Bytes(NodeId node) const {
    auto it = bytes_.find(node);
    return it == bytes_.end() ? 0 : it->second;
  }

  int64_t TotalBytes() const { return total_; }

  double Bps(NodeId node, TimeNs interval) const { return ThroughputBps(Bytes(node), interval); }
  double TotalBps(TimeNs interval) const { return ThroughputBps(total_, interval); }

  const std::map<NodeId, int64_t>& by_node() const { return bytes_; }

  void Reset() {
    bytes_.clear();
    total_ = 0;
  }

 private:
  std::map<NodeId, int64_t> bytes_;
  int64_t total_ = 0;
};

// Jain's fairness index over a vector of allocations: (sum x)^2 / (n * sum x^2).
// 1.0 = perfectly fair; 1/n = maximally unfair.
double JainIndex(const std::vector<double>& allocations);

}  // namespace tbf::stats

#endif  // TBF_STATS_METERS_H_
