// Mergeable fixed-memory quantile sketch (DDSketch-style logarithmic buckets).
//
// The latency metrology layer (per-flow TCP RTT, AP queueing delay, task completion
// latency) needs streaming quantiles that (a) use bounded memory regardless of sample
// count, (b) carry a documented error bound against an exact-sort oracle, and (c) merge
// *deterministically and order-independently*, so SweepRunner results stay bit-identical
// across pool sizes and benches can pool per-seed sketches in any order.
//
// Design: values are hashed into logarithmic buckets gamma^i with
// gamma = (1 + e) / (1 - e) for a configured relative error e. Bucket i holds values in
// (gamma^(i-1), gamma^i]; its representative 2*gamma^i / (gamma + 1) is within a factor
// (1 +- e) of every value in the bucket. Quantile(q) walks the cumulative counts to the
// bucket containing the sample of rank max(1, ceil(q*n)) and returns that representative
// clamped into [min, max] observed - so for any value in [kMinValue, kMaxValue] the
// estimate is within relative error e of the exact empirical quantile
// (|est - exact| <= e * exact; tests/quantile_test.cpp enforces it against std::sort).
//
// Merging adds bucket counts elementwise (int64) and combines min/max/count - all
// commutative and associative with no floating-point accumulation, hence bitwise
// deterministic for any merge order or grouping. Memory: one int64 per bucket,
// ~1.7k buckets at the default 1% error over [1, 1e15] (sub-ns to ~11.6 simulated
// days when fed TimeNs - room for sojourn samples of replays backlogged across an
// hours-long capture) = ~14 KB, allocated on first Add so empty sketches are free.
// Values below/above the range clamp into the edge buckets (the bound then degrades
// to the range edge).
#ifndef TBF_STATS_QUANTILE_SKETCH_H_
#define TBF_STATS_QUANTILE_SKETCH_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace tbf::stats {

class QuantileSketch {
 public:
  // Relative value-error bound of Quantile() for samples inside [kMinValue, kMaxValue].
  static constexpr double kDefaultRelativeError = 0.01;
  // Bucketed dynamic range. Fed with TimeNs this spans 1 ns .. ~11.6 simulated days.
  static constexpr double kMinValue = 1.0;
  static constexpr double kMaxValue = 1e15;

  explicit QuantileSketch(double relative_error = kDefaultRelativeError);

  // Records one sample. Values outside [kMinValue, kMaxValue] clamp into the edge
  // buckets (min/max still track the raw value).
  void Add(double value);

  // Folds `other` into this sketch. Requires identical relative_error. Commutative and
  // associative: any merge order over the same multiset of sketches yields bitwise
  // identical state.
  void Merge(const QuantileSketch& other);

  // Empirical q-quantile estimate (q in [0, 1]): the representative of the bucket
  // holding the sample of rank max(1, ceil(q * count)), clamped to [min, max].
  // Returns 0 when empty.
  double Quantile(double q) const;

  // Three quantiles (ascending qs) in one cumulative walk; bit-identical to three
  // Quantile() calls. The per-flow p50/p95/p99 readout is hot enough at cell scale
  // (hundreds of flows x three meters) that the single pass matters.
  void Quantiles3(double q1, double q2, double q3, double out[3]) const;

  // Appends a self-delimiting binary encoding to *out: magic, error bound, count,
  // min/max (exact IEEE bit patterns), occupied bucket window, window counts. The
  // encoding is a pure function of the sketch state, and DeserializeFrom reconstructs
  // state that compares equal (operator==) to the original - so serialize -> ship ->
  // deserialize -> Merge is bit-identical to merging the originals (the campaign
  // coordinator pools worker sketches through exactly this path).
  void SerializeTo(std::string* out) const;

  // Parses one sketch from data at *pos, advancing *pos past it. Returns false without
  // advancing on truncated or corrupt input (bad magic, error bound out of range,
  // window outside the bucket array, negative bucket counts, count mismatch) - a
  // validation failure, never a crash, so remote payloads can be rejected and re-queued.
  static bool DeserializeFrom(std::string_view data, size_t* pos, QuantileSketch* out);

  // Bytes this sketch holds (struct + bucket array heap). StatsEngine sums these for
  // its metrology-footprint readout.
  size_t MemoryBytes() const { return sizeof(*this) + counts_.capacity() * sizeof(int64_t); }

  int64_t count() const { return count_; }
  bool empty() const { return count_ == 0; }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  double relative_error() const { return relative_error_; }

  // Bitwise equality; sweep determinism tests compare whole Results structs.
  friend bool operator==(const QuantileSketch&, const QuantileSketch&) = default;

 private:
  int BucketIndex(double value) const;
  int BucketForRank(int64_t rank) const;
  double Representative(int bucket) const;

  double relative_error_;
  double gamma_;
  double log_gamma_;
  int bucket_count_;

  int64_t count_ = 0;
  double min_ = 0.0;
  double max_ = 0.0;
  std::vector<int64_t> counts_;  // Allocated (bucket_count_ entries) on first Add.
  // Occupied bucket range [lo_, hi_] (latency meters span a narrow band of the 1.7k
  // buckets): merges and quantile walks touch only this window instead of the whole
  // array. Purely derived from the adds, so determinism/equality are unaffected.
  int lo_ = 0;
  int hi_ = -1;
};

}  // namespace tbf::stats

#endif  // TBF_STATS_QUANTILE_SKETCH_H_
