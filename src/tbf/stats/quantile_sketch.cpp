#include "tbf/stats/quantile_sketch.h"

#include <algorithm>
#include <cmath>

#include "tbf/util/logging.h"

namespace tbf::stats {

QuantileSketch::QuantileSketch(double relative_error)
    : relative_error_(relative_error),
      gamma_((1.0 + relative_error) / (1.0 - relative_error)),
      log_gamma_(std::log(gamma_)) {
  TBF_CHECK(relative_error > 0.0 && relative_error < 1.0);
  // Bucket i covers (gamma^(i-1), gamma^i]; index 0 is everything <= kMinValue.
  bucket_count_ =
      static_cast<int>(std::ceil(std::log(kMaxValue / kMinValue) / log_gamma_)) + 1;
}

int QuantileSketch::BucketIndex(double value) const {
  if (!(value > kMinValue)) {  // NaN and below-range both land in the bottom bucket.
    return 0;
  }
  const int index = static_cast<int>(std::ceil(std::log(value / kMinValue) / log_gamma_));
  return std::min(index, bucket_count_ - 1);
}

void QuantileSketch::Add(double value) {
  const int index = BucketIndex(value);
  if (counts_.empty()) {
    counts_.assign(static_cast<size_t>(bucket_count_), 0);
    min_ = value;
    max_ = value;
    lo_ = index;
    hi_ = index;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
    lo_ = std::min(lo_, index);
    hi_ = std::max(hi_, index);
  }
  ++counts_[static_cast<size_t>(index)];
  ++count_;
}

void QuantileSketch::Merge(const QuantileSketch& other) {
  TBF_CHECK(relative_error_ == other.relative_error_)
      << "merging sketches with different error bounds";
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
  // Only the occupied window carries non-zero counts; adding zeros is a no-op, so the
  // windowed add is bitwise identical to the full-array add it replaces.
  for (int i = other.lo_; i <= other.hi_; ++i) {
    counts_[static_cast<size_t>(i)] += other.counts_[static_cast<size_t>(i)];
  }
  lo_ = std::min(lo_, other.lo_);
  hi_ = std::max(hi_, other.hi_);
}

int QuantileSketch::BucketForRank(int64_t rank) const {
  int64_t cumulative = 0;
  for (int i = lo_; i <= hi_; ++i) {
    cumulative += counts_[static_cast<size_t>(i)];
    if (cumulative >= rank) {
      return i;
    }
  }
  return hi_;  // Unreachable while rank <= count_.
}

// Geometric midpoint of (gamma^(i-1), gamma^i], within (1 +- e) of every value in the
// bucket. Bucket 0 holds values at or below kMinValue; its representative is the range
// floor, and the caller's clamp substitutes the exact min when every sample sits there.
double QuantileSketch::Representative(int bucket) const {
  return bucket == 0 ? kMinValue
                     : 2.0 * std::pow(gamma_, static_cast<double>(bucket)) / (gamma_ + 1.0);
}

double QuantileSketch::Quantile(double q) const {
  if (count_ == 0) {
    return 0.0;
  }
  q = std::clamp(q, 0.0, 1.0);
  const int64_t rank =
      std::max<int64_t>(1, static_cast<int64_t>(std::ceil(q * static_cast<double>(count_))));
  return std::clamp(Representative(BucketForRank(rank)), min_, max_);
}

void QuantileSketch::Quantiles3(double q1, double q2, double q3, double out[3]) const {
  if (count_ == 0) {
    out[0] = out[1] = out[2] = 0.0;
    return;
  }
  const double qs[3] = {q1, q2, q3};
  int64_t ranks[3];
  for (int k = 0; k < 3; ++k) {
    const double q = std::clamp(qs[k], 0.0, 1.0);
    ranks[k] = std::max<int64_t>(
        1, static_cast<int64_t>(std::ceil(q * static_cast<double>(count_))));
    TBF_CHECK(k == 0 || ranks[k] >= ranks[k - 1]) << "Quantiles3 needs ascending qs";
  }
  int64_t cumulative = 0;
  int k = 0;
  for (int i = lo_; i <= hi_ && k < 3; ++i) {
    cumulative += counts_[static_cast<size_t>(i)];
    while (k < 3 && cumulative >= ranks[k]) {
      out[k++] = std::clamp(Representative(i), min_, max_);
    }
  }
  for (; k < 3; ++k) {
    out[k] = std::clamp(Representative(hi_), min_, max_);  // Unreachable in practice.
  }
}

}  // namespace tbf::stats
