#include "tbf/stats/quantile_sketch.h"

#include <algorithm>
#include <cmath>

#include "tbf/util/logging.h"

namespace tbf::stats {

QuantileSketch::QuantileSketch(double relative_error)
    : relative_error_(relative_error),
      gamma_((1.0 + relative_error) / (1.0 - relative_error)),
      log_gamma_(std::log(gamma_)) {
  TBF_CHECK(relative_error > 0.0 && relative_error < 1.0);
  // Bucket i covers (gamma^(i-1), gamma^i]; index 0 is everything <= kMinValue.
  bucket_count_ =
      static_cast<int>(std::ceil(std::log(kMaxValue / kMinValue) / log_gamma_)) + 1;
}

int QuantileSketch::BucketIndex(double value) const {
  if (!(value > kMinValue)) {  // NaN and below-range both land in the bottom bucket.
    return 0;
  }
  const int index = static_cast<int>(std::ceil(std::log(value / kMinValue) / log_gamma_));
  return std::min(index, bucket_count_ - 1);
}

void QuantileSketch::Add(double value) {
  if (counts_.empty()) {
    counts_.assign(static_cast<size_t>(bucket_count_), 0);
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++counts_[static_cast<size_t>(BucketIndex(value))];
  ++count_;
}

void QuantileSketch::Merge(const QuantileSketch& other) {
  TBF_CHECK(relative_error_ == other.relative_error_)
      << "merging sketches with different error bounds";
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
  for (size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
}

double QuantileSketch::Quantile(double q) const {
  if (count_ == 0) {
    return 0.0;
  }
  q = std::clamp(q, 0.0, 1.0);
  const int64_t rank =
      std::max<int64_t>(1, static_cast<int64_t>(std::ceil(q * static_cast<double>(count_))));
  int64_t cumulative = 0;
  size_t bucket = counts_.size() - 1;
  for (size_t i = 0; i < counts_.size(); ++i) {
    cumulative += counts_[i];
    if (cumulative >= rank) {
      bucket = i;
      break;
    }
  }
  // Geometric midpoint of (gamma^(i-1), gamma^i], within (1 +- e) of every value in the
  // bucket. Bucket 0 holds values at or below kMinValue; its representative is the range
  // floor, and the clamp below substitutes the exact min when every sample sits there.
  const double representative =
      bucket == 0 ? kMinValue
                  : 2.0 * std::pow(gamma_, static_cast<double>(bucket)) / (gamma_ + 1.0);
  return std::clamp(representative, min_, max_);
}

}  // namespace tbf::stats
