#include "tbf/stats/quantile_sketch.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>

#include "tbf/util/logging.h"

namespace tbf::stats {
namespace {

// Little-endian primitive append/read helpers. Doubles travel as their IEEE-754 bit
// patterns, so round-trips are exact and the deserialized sketch is bitwise equal.
void AppendU64(std::string* out, uint64_t v) {
  char b[8];
  for (int i = 0; i < 8; ++i) {
    b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  }
  out->append(b, 8);
}

void AppendU32(std::string* out, uint32_t v) {
  char b[4];
  for (int i = 0; i < 4; ++i) {
    b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  }
  out->append(b, 4);
}

bool ReadU64(std::string_view data, size_t* pos, uint64_t* v) {
  if (data.size() - *pos < 8) {
    return false;
  }
  uint64_t out = 0;
  for (int i = 0; i < 8; ++i) {
    out |= static_cast<uint64_t>(static_cast<unsigned char>(data[*pos + i])) << (8 * i);
  }
  *pos += 8;
  *v = out;
  return true;
}

bool ReadU32(std::string_view data, size_t* pos, uint32_t* v) {
  if (data.size() - *pos < 4) {
    return false;
  }
  uint32_t out = 0;
  for (int i = 0; i < 4; ++i) {
    out |= static_cast<uint32_t>(static_cast<unsigned char>(data[*pos + i])) << (8 * i);
  }
  *pos += 4;
  *v = out;
  return true;
}

constexpr uint32_t kSketchMagic = 0x51534b31;  // "QSK1"

}  // namespace

QuantileSketch::QuantileSketch(double relative_error)
    : relative_error_(relative_error),
      gamma_((1.0 + relative_error) / (1.0 - relative_error)),
      log_gamma_(std::log(gamma_)) {
  TBF_CHECK(relative_error > 0.0 && relative_error < 1.0);
  // Bucket i covers (gamma^(i-1), gamma^i]; index 0 is everything <= kMinValue.
  bucket_count_ =
      static_cast<int>(std::ceil(std::log(kMaxValue / kMinValue) / log_gamma_)) + 1;
}

int QuantileSketch::BucketIndex(double value) const {
  if (!(value > kMinValue)) {  // NaN and below-range both land in the bottom bucket.
    return 0;
  }
  const int index = static_cast<int>(std::ceil(std::log(value / kMinValue) / log_gamma_));
  return std::min(index, bucket_count_ - 1);
}

void QuantileSketch::Add(double value) {
  const int index = BucketIndex(value);
  if (counts_.empty()) {
    counts_.assign(static_cast<size_t>(bucket_count_), 0);
    min_ = value;
    max_ = value;
    lo_ = index;
    hi_ = index;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
    lo_ = std::min(lo_, index);
    hi_ = std::max(hi_, index);
  }
  ++counts_[static_cast<size_t>(index)];
  ++count_;
}

void QuantileSketch::Merge(const QuantileSketch& other) {
  TBF_CHECK(relative_error_ == other.relative_error_)
      << "merging sketches with different error bounds";
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
  // Only the occupied window carries non-zero counts; adding zeros is a no-op, so the
  // windowed add is bitwise identical to the full-array add it replaces.
  for (int i = other.lo_; i <= other.hi_; ++i) {
    counts_[static_cast<size_t>(i)] += other.counts_[static_cast<size_t>(i)];
  }
  lo_ = std::min(lo_, other.lo_);
  hi_ = std::max(hi_, other.hi_);
}

int QuantileSketch::BucketForRank(int64_t rank) const {
  int64_t cumulative = 0;
  for (int i = lo_; i <= hi_; ++i) {
    cumulative += counts_[static_cast<size_t>(i)];
    if (cumulative >= rank) {
      return i;
    }
  }
  return hi_;  // Unreachable while rank <= count_.
}

// Geometric midpoint of (gamma^(i-1), gamma^i], within (1 +- e) of every value in the
// bucket. Bucket 0 holds values at or below kMinValue; its representative is the range
// floor, and the caller's clamp substitutes the exact min when every sample sits there.
double QuantileSketch::Representative(int bucket) const {
  return bucket == 0 ? kMinValue
                     : 2.0 * std::pow(gamma_, static_cast<double>(bucket)) / (gamma_ + 1.0);
}

double QuantileSketch::Quantile(double q) const {
  if (count_ == 0) {
    return 0.0;
  }
  q = std::clamp(q, 0.0, 1.0);
  const int64_t rank =
      std::max<int64_t>(1, static_cast<int64_t>(std::ceil(q * static_cast<double>(count_))));
  return std::clamp(Representative(BucketForRank(rank)), min_, max_);
}

void QuantileSketch::Quantiles3(double q1, double q2, double q3, double out[3]) const {
  if (count_ == 0) {
    out[0] = out[1] = out[2] = 0.0;
    return;
  }
  const double qs[3] = {q1, q2, q3};
  int64_t ranks[3];
  for (int k = 0; k < 3; ++k) {
    const double q = std::clamp(qs[k], 0.0, 1.0);
    ranks[k] = std::max<int64_t>(
        1, static_cast<int64_t>(std::ceil(q * static_cast<double>(count_))));
    TBF_CHECK(k == 0 || ranks[k] >= ranks[k - 1]) << "Quantiles3 needs ascending qs";
  }
  int64_t cumulative = 0;
  int k = 0;
  for (int i = lo_; i <= hi_ && k < 3; ++i) {
    cumulative += counts_[static_cast<size_t>(i)];
    while (k < 3 && cumulative >= ranks[k]) {
      out[k++] = std::clamp(Representative(i), min_, max_);
    }
  }
  for (; k < 3; ++k) {
    out[k] = std::clamp(Representative(hi_), min_, max_);  // Unreachable in practice.
  }
}

void QuantileSketch::SerializeTo(std::string* out) const {
  AppendU32(out, kSketchMagic);
  AppendU64(out, std::bit_cast<uint64_t>(relative_error_));
  AppendU64(out, static_cast<uint64_t>(count_));
  AppendU64(out, std::bit_cast<uint64_t>(min_));
  AppendU64(out, std::bit_cast<uint64_t>(max_));
  AppendU32(out, static_cast<uint32_t>(lo_));
  AppendU32(out, static_cast<uint32_t>(static_cast<int32_t>(hi_)));
  if (count_ > 0) {
    for (int i = lo_; i <= hi_; ++i) {
      AppendU64(out, static_cast<uint64_t>(counts_[static_cast<size_t>(i)]));
    }
  }
}

bool QuantileSketch::DeserializeFrom(std::string_view data, size_t* pos,
                                     QuantileSketch* out) {
  size_t p = *pos;
  uint32_t magic = 0, lo_raw = 0, hi_raw = 0;
  uint64_t err_bits = 0, count_raw = 0, min_bits = 0, max_bits = 0;
  if (!ReadU32(data, &p, &magic) || magic != kSketchMagic ||
      !ReadU64(data, &p, &err_bits) || !ReadU64(data, &p, &count_raw) ||
      !ReadU64(data, &p, &min_bits) || !ReadU64(data, &p, &max_bits) ||
      !ReadU32(data, &p, &lo_raw) || !ReadU32(data, &p, &hi_raw)) {
    return false;
  }
  const double relative_error = std::bit_cast<double>(err_bits);
  if (!(relative_error > 0.0) || !(relative_error < 1.0)) {  // NaN fails both.
    return false;
  }
  QuantileSketch sketch(relative_error);
  const int64_t count = static_cast<int64_t>(count_raw);
  const int lo = static_cast<int>(lo_raw);
  const int hi = static_cast<int>(static_cast<int32_t>(hi_raw));
  const double min = std::bit_cast<double>(min_bits);
  const double max = std::bit_cast<double>(max_bits);
  if (count < 0) {
    return false;
  }
  if (count == 0) {
    // An empty sketch carries no window and no counts; insist on the canonical empty
    // state so re-serialization is byte-identical.
    if (lo != 0 || hi != -1 || min != 0.0 || max != 0.0) {
      return false;
    }
  } else {
    if (lo < 0 || hi < lo || hi >= sketch.bucket_count_) {
      return false;
    }
    if (std::isnan(min) || std::isnan(max) || min > max) {
      return false;
    }
    sketch.counts_.assign(static_cast<size_t>(sketch.bucket_count_), 0);
    int64_t sum = 0;
    for (int i = lo; i <= hi; ++i) {
      uint64_t c = 0;
      if (!ReadU64(data, &p, &c)) {
        return false;
      }
      const int64_t signed_c = static_cast<int64_t>(c);
      if (signed_c < 0) {
        return false;
      }
      sketch.counts_[static_cast<size_t>(i)] = signed_c;
      sum += signed_c;
    }
    // Edge buckets of the window must be occupied (the window is tight by
    // construction) and the counts must add up to the advertised total.
    if (sum != count || sketch.counts_[static_cast<size_t>(lo)] == 0 ||
        sketch.counts_[static_cast<size_t>(hi)] == 0) {
      return false;
    }
    sketch.count_ = count;
    sketch.min_ = min;
    sketch.max_ = max;
    sketch.lo_ = lo;
    sketch.hi_ = hi;
  }
  *out = std::move(sketch);
  *pos = p;
  return true;
}

}  // namespace tbf::stats
