#include "tbf/stats/engine.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace tbf::stats {

StatsEngine::StatsEngine(StatsConfig config) : config_(config) {}

uint64_t StatsEngine::Mix(uint64_t seed, uint64_t flow_id) {
  // splitmix64 over (seed, flow_id): deterministic, engine-independent, well mixed -
  // the same (seed, id) pair lands in the sample on every shard of every run.
  uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (flow_id + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

void StatsEngine::RegisterFlow(int flow_id) {
  if (flow_id <= 0) {
    return;
  }
  if (flows_.empty()) {
    base_ = flow_id;
  } else if (flow_id < base_) {
    flows_.insert(flows_.begin(), static_cast<size_t>(base_ - flow_id), FlowStats());
    heavy_slot_.insert(heavy_slot_.begin(), static_cast<size_t>(base_ - flow_id), -1);
    base_ = flow_id;
  }
  const size_t i = static_cast<size_t>(flow_id - base_);
  if (i >= flows_.size()) {
    flows_.resize(i + 1);
    heavy_slot_.resize(i + 1, -1);
  }
  FlowStats& fs = flows_[i];
  if (fs.flow_id == flow_id) {
    return;  // Already registered; keep accumulated state.
  }
  fs.flow_id = flow_id;
  fs.sampled = config_.sample_every > 0 &&
               Mix(config_.sample_seed, static_cast<uint64_t>(flow_id)) %
                       static_cast<uint64_t>(config_.sample_every) ==
                   0;
  fs.retained = config_.top_k <= 0 || fs.sampled;
}

FlowStats* StatsEngine::MutableFlow(int flow_id) {
  if (flow_id < base_ || static_cast<size_t>(flow_id - base_) >= flows_.size()) {
    return nullptr;
  }
  FlowStats& fs = flows_[static_cast<size_t>(flow_id - base_)];
  return fs.flow_id == flow_id ? &fs : nullptr;
}

const FlowStats* StatsEngine::flow(int flow_id) const {
  return const_cast<StatsEngine*>(this)->MutableFlow(flow_id);
}

void StatsEngine::RecordBytes(int flow_id, TimeNs now, int64_t bytes) {
  FlowStats* fs = MutableFlow(flow_id);
  if (fs == nullptr || bytes <= 0) {
    return;
  }
  fs->bytes += bytes;
  total_bytes_ += bytes;
  if (config_.top_k > 0) {
    NoteBytesForRetention(*fs, bytes);
  }
  AddBytes(now, bytes);
}

void StatsEngine::AddBytes(TimeNs now, int64_t bytes) {
  // The byte meter is windowed-only: unwindowed runs already expose total_bytes() and
  // the per-flow counted tier, so there is nothing distributional to keep.
  if (config_.window <= 0) {
    return;
  }
  const int64_t idx = now / config_.window;
  if (auto_seal_ && !bytes_open_.empty() && bytes_open_.back().index < idx) {
    SealBytes(idx, nullptr);
  }
  OpenBytes& w = OpenBytesAt(idx);
  ++w.count;
  w.bytes += bytes;
}

void StatsEngine::RecordTaskCompletion(int flow_id, TimeNs now, TimeNs duration) {
  FlowStats* fs = MutableFlow(flow_id);
  if (fs == nullptr) {
    return;
  }
  ++fs->tasks;
  fs->last_completion = now;
  fs->duration_sum += duration;
  if (fs->retained) {
    fs->task_completions.push_back(now);
    fs->task_durations.push_back(duration);
    fs->task_latency_sketch.Add(static_cast<double>(duration));
  }
  AddSample(kTaskLatency, now, static_cast<double>(duration));
}

void StatsEngine::RecordRtt(int flow_id, TimeNs now, TimeNs sample) {
  FlowStats* fs = MutableFlow(flow_id);
  if (fs == nullptr) {
    return;
  }
  ++fs->rtt_count;
  fs->rtt_sum += sample;
  if (fs->retained) {
    fs->rtt_sketch.Add(static_cast<double>(sample));
  }
  AddSample(kRtt, now, static_cast<double>(sample));
}

void StatsEngine::RecordQueueDelay(int flow_id, TimeNs now, TimeNs delay) {
  FlowStats* fs = MutableFlow(flow_id);
  if (fs == nullptr) {
    return;
  }
  ++fs->queue_count;
  fs->queue_sum += delay;
  if (fs->retained) {
    fs->queue_delay_sketch.Add(static_cast<double>(delay));
  }
  AddSample(kQueueDelay, now, static_cast<double>(delay));
}

void StatsEngine::AddSample(MeterKind kind, TimeNs now, double value) {
  // Legacy exact mode keeps no engine-wide meters: readout merges the per-flow
  // sketches exactly as the pre-engine code did, and the default path costs nothing.
  if (config_.LegacyExact()) {
    return;
  }
  Meter& m = meters_[kind];
  if (config_.window <= 0) {
    m.whole.Add(value);
    return;
  }
  const int64_t idx = now / config_.window;
  if (auto_seal_ && !m.open.empty() && m.open.back().index < idx) {
    SealMeter(kind, idx, nullptr);
  }
  OpenAt(m, idx).Add(value);
}

QuantileSketch& StatsEngine::OpenAt(Meter& m, int64_t index) {
  // Common case: samples (and child merges at barriers) arrive in nondecreasing
  // window order, so the target is the back or a brand-new back.
  if (m.open.empty() || m.open.back().index < index) {
    m.open.push_back(OpenWindow{index, QuantileSketch()});
    return m.open.back().sketch;
  }
  auto it = std::lower_bound(
      m.open.begin(), m.open.end(), index,
      [](const OpenWindow& w, int64_t i) { return w.index < i; });
  if (it == m.open.end() || it->index != index) {
    it = m.open.insert(it, OpenWindow{index, QuantileSketch()});
  }
  return it->sketch;
}

void StatsEngine::SealWindowsUpTo(TimeNs now, StatsEngine* parent) {
  if (config_.window <= 0) {
    return;
  }
  // Window i covers [i*W, (i+1)*W); it is sealed once its end has passed, i.e. for
  // every i < now / W.
  const int64_t limit = now / config_.window;
  for (int k = 0; k < kNumMeters; ++k) {
    SealMeter(static_cast<MeterKind>(k), limit, parent);
  }
  SealBytes(limit, parent);
}

void StatsEngine::FlushAll(StatsEngine* parent) {
  for (int k = 0; k < kNumMeters; ++k) {
    if (config_.window > 0) {
      SealMeter(static_cast<MeterKind>(k), std::numeric_limits<int64_t>::max(), parent);
    } else if (parent != nullptr && !meters_[k].whole.empty()) {
      parent->meters_[k].whole.Merge(meters_[k].whole);
    }
  }
  if (config_.window > 0) {
    SealBytes(std::numeric_limits<int64_t>::max(), parent);
  }
}

void StatsEngine::SealMeter(MeterKind kind, int64_t limit_index, StatsEngine* parent) {
  Meter& m = meters_[kind];
  while (!m.open.empty() && m.open.front().index < limit_index) {
    OpenWindow& w = m.open.front();
    WindowStat ws;
    ws.start = w.index * config_.window;
    ws.count = w.sketch.count();
    if (ws.count > 0) {
      double q[3];
      w.sketch.Quantiles3(0.50, 0.95, 0.99, q);
      ws.p50 = static_cast<TimeNs>(std::llround(q[0]));
      ws.p95 = static_cast<TimeNs>(std::llround(q[1]));
      ws.p99 = static_cast<TimeNs>(std::llround(q[2]));
    }
    m.sealed.push_back(ws);
    m.whole.Merge(w.sketch);
    if (parent != nullptr) {
      parent->OpenAt(parent->meters_[kind], w.index).Merge(w.sketch);
    }
    m.open.pop_front();  // Frees the window's sketch.
  }
}

void StatsEngine::SealBytes(int64_t limit_index, StatsEngine* parent) {
  while (!bytes_open_.empty() && bytes_open_.front().index < limit_index) {
    OpenBytes& w = bytes_open_.front();
    bytes_sealed_.push_back(ByteWindow{w.index * config_.window, w.count, w.bytes});
    if (parent != nullptr) {
      OpenBytes& pw = parent->OpenBytesAt(w.index);
      pw.count += w.count;
      pw.bytes += w.bytes;
    }
    bytes_open_.pop_front();
  }
}

StatsEngine::OpenBytes& StatsEngine::OpenBytesAt(int64_t index) {
  if (bytes_open_.empty() || bytes_open_.back().index < index) {
    bytes_open_.push_back(OpenBytes{index, 0, 0});
    return bytes_open_.back();
  }
  auto it = std::lower_bound(bytes_open_.begin(), bytes_open_.end(), index,
                             [](const OpenBytes& w, int64_t i) { return w.index < i; });
  if (it == bytes_open_.end() || it->index != index) {
    it = bytes_open_.insert(it, OpenBytes{index, 0, 0});
  }
  return *it;
}

MeterSeries StatsEngine::series(MeterKind kind) const {
  MeterSeries out;
  out.window = config_.window;
  out.windows = meters_[kind].sealed;
  return out;
}

ByteSeries StatsEngine::bytes_series() const {
  ByteSeries out;
  out.window = config_.window;
  out.windows = bytes_sealed_;
  return out;
}

void StatsEngine::NoteBytesForRetention(FlowStats& fs, int64_t bytes) {
  const size_t i = static_cast<size_t>(fs.flow_id - base_);
  const int32_t slot = heavy_slot_[i];
  if (slot >= 0) {
    heavy_[slot].estimate += bytes;
    return;
  }
  if (heavy_.size() < static_cast<size_t>(config_.top_k)) {
    heavy_slot_[i] = static_cast<int32_t>(heavy_.size());
    heavy_.push_back(HeavyEntry{fs.flow_id, bytes, 0});
    fs.retained = true;
    return;
  }
  // Space-saving eviction: the new flow takes over the minimum-estimate slot,
  // inheriting its estimate as the overcount bound (ties broken by lowest slot -
  // deterministic, no dependence on insertion history beyond the table state).
  size_t victim = 0;
  for (size_t s = 1; s < heavy_.size(); ++s) {
    if (heavy_[s].estimate < heavy_[victim].estimate) {
      victim = s;
    }
  }
  HeavyEntry& e = heavy_[victim];
  FlowStats* evicted = MutableFlow(e.flow_id);
  heavy_slot_[static_cast<size_t>(e.flow_id - base_)] = -1;
  if (evicted != nullptr && !evicted->sampled) {
    DropExactTier(*evicted);
  }
  const int64_t inherited = e.estimate;
  e = HeavyEntry{fs.flow_id, inherited + bytes, inherited};
  heavy_slot_[i] = static_cast<int32_t>(victim);
  fs.retained = true;
}

void StatsEngine::DropExactTier(FlowStats& fs) {
  fs.retained = false;
  std::vector<TimeNs>().swap(fs.task_completions);
  std::vector<TimeNs>().swap(fs.task_durations);
  fs.rtt_sketch = QuantileSketch();
  fs.queue_delay_sketch = QuantileSketch();
  fs.task_latency_sketch = QuantileSketch();
}

bool StatsEngine::HeavyEstimate(int flow_id, int64_t* estimate,
                                int64_t* overcount) const {
  if (flow_id < base_ || static_cast<size_t>(flow_id - base_) >= heavy_slot_.size()) {
    return false;
  }
  const int32_t slot = heavy_slot_[static_cast<size_t>(flow_id - base_)];
  if (slot < 0) {
    return false;
  }
  *estimate = heavy_[slot].estimate;
  *overcount = heavy_[slot].overcount;
  return true;
}

size_t StatsEngine::MemoryFootprintBytes() const {
  size_t total = sizeof(*this);
  total += flows_.capacity() * sizeof(FlowStats);
  total += heavy_slot_.capacity() * sizeof(int32_t);
  total += heavy_.capacity() * sizeof(HeavyEntry);
  for (const FlowStats& fs : flows_) {
    total += fs.task_completions.capacity() * sizeof(TimeNs);
    total += fs.task_durations.capacity() * sizeof(TimeNs);
    // sizeof the sketches is already inside sizeof(FlowStats); count heap only.
    total += fs.rtt_sketch.MemoryBytes() - sizeof(QuantileSketch);
    total += fs.queue_delay_sketch.MemoryBytes() - sizeof(QuantileSketch);
    total += fs.task_latency_sketch.MemoryBytes() - sizeof(QuantileSketch);
  }
  for (const Meter& m : meters_) {
    total += m.whole.MemoryBytes() - sizeof(QuantileSketch);
    for (const OpenWindow& w : m.open) {
      total += w.sketch.MemoryBytes();
    }
    total += m.sealed.capacity() * sizeof(WindowStat);
  }
  total += bytes_open_.size() * sizeof(OpenBytes);
  total += bytes_sealed_.capacity() * sizeof(ByteWindow);
  return total;
}

}  // namespace tbf::stats
