#include "tbf/stats/table.h"

#include <algorithm>
#include <cstdio>

namespace tbf::stats {

void Table::Print(std::ostream& out) const {
  std::vector<size_t> widths(headers_.size(), 0);
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto print_row = [&](const std::vector<std::string>& cells) {
    out << "|";
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : "";
      out << " " << cell << std::string(widths[c] - cell.size(), ' ') << " |";
    }
    out << "\n";
  };

  auto print_sep = [&] {
    out << "+";
    for (size_t c = 0; c < widths.size(); ++c) {
      out << std::string(widths[c] + 2, '-') << "+";
    }
    out << "\n";
  };

  print_sep();
  print_row(headers_);
  print_sep();
  for (const auto& row : rows_) {
    print_row(row);
  }
  print_sep();
}

void Table::PrintCsv(std::ostream& out) const {
  auto emit = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) {
        out << ",";
      }
      out << cells[c];
    }
    out << "\n";
  };
  emit(headers_);
  for (const auto& row : rows_) {
    emit(row);
  }
}

std::string Table::Num(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string Table::Ratio(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "x%.*f", precision, value);
  return buf;
}

std::string Table::PercentDelta(double ratio) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%+.0f%%", (ratio - 1.0) * 100.0);
  return buf;
}

}  // namespace tbf::stats
