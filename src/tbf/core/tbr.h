// TBR - the Time-based Regulator (the paper's core contribution, Figures 6 and 7).
//
// TBR is an AP qdisc that grants each competing client an equal (or weighted) long-term
// share of channel occupancy time. It keeps one leaky bucket per client whose unit is
// microseconds-of-channel-time (nanoseconds here):
//
//   ASSOCIATEEVENT  -> OnAssociate()      creates queue_i, tokens_i, rate_i
//   FILLEVENT       -> FillEvent()        tokens_i += dt * rate_i   (capped at bucket_i)
//   APPTXEVENT      -> Enqueue()          append packet to queue_i
//   MACTXEVENT      -> Dequeue()          round-robin over queues with tokens_i > 0
//   COMPLETEEVENT   -> OnTxComplete() /   tokens_i -= occupancy(p), actual_i += occupancy(p)
//                      OnUplinkObserved()
//   ADJUSTRATEEVENT -> AdjustRateEvent()  max-min redistribution of under-used rate
//
// Occupancy is *estimated* the way a driver would: PLCP + data + SIFS + ACK from (size,
// rate), plus a deterministic contention allowance. Like the paper's HostAP implementation,
// TBR by default has no retransmission information (use_retry_info=false), which slightly
// biases against nodes whose failed attempts go unseen - the Exp-TBR vs Eq.12 gap the paper
// reports. Enabling use_retry_info charges ground-truth per-attempt airtime instead.
//
// Uplink regulation needs no client changes for TCP: while tokens_i <= 0 the whole of
// client i's downlink queue (data *and* TCP acks) is ineligible, which stalls the sender's
// ack clock (paper 4.1). For uplink UDP an optional client agent (client_pause_fn) mimics
// the notification bit.
#ifndef TBF_CORE_TBR_H_
#define TBF_CORE_TBR_H_

#include <functional>
#include <vector>

#include "tbf/ap/qdisc.h"
#include "tbf/phy/timing.h"
#include "tbf/sim/simulator.h"

namespace tbf::core {

// Scheduling policy of the regulator. kStock is the paper's TBR; the other three are
// the adaptive contenders raced in docs/schedulers.md, built to erase the "burst tax"
// (equal 1/N initial shares penalize the first short burst in a mostly-idle cell until
// the 500 ms adjuster converges) while keeping the paper's long-term time fairness.
enum class TbrMode : int {
  kStock = 0,
  // A backlogged client may borrow channel time up to burst_credit beyond its bucket
  // (tokens down to -burst_credit) - but only when no in-credit client is waiting, so
  // the borrow spends otherwise-unused airtime. The debt repays from future fill before
  // the client earns positive tokens again, and ack-withholding re-engages at the cap.
  kBurstCredit = 1,
  // Replaces the fixed 500 ms ADJUSTRATEEVENT with a demand-driven reallocation every
  // demand_period (sub-100 ms): clients with live demand (backlog, debt, or smoothed
  // usage above demand_active_threshold) split the channel by weight; idle clients keep
  // min_rate so they can ramp back. Under saturation (total smoothed usage >=
  // saturation_guard) shares revert to the static weighted fair split, so estimator
  // noise cannot bleed share from busy nodes - the same guard the stock adjuster uses.
  kFastEwma = 2,
  // Packet-granularity work conservation that preserves uplink regulation: when no
  // queue has positive tokens, serve the most-token backlogged queue *unless* its head
  // packet is a pure TCP ack (an over-budget client's acks stay withheld, which is
  // exactly the lever the stock work_conserving_fallback defeats) or its debt already
  // exceeds hybrid_debt_cap.
  kCreditHybrid = 3,
};

struct TbrConfig {
  TbrMode mode = TbrMode::kStock;

  // Token bucket parameters.
  TimeNs fill_period = Ms(2);
  TimeNs bucket_depth = Ms(20);    // bucket_i: burst bound, affects short-term fairness.
  TimeNs initial_tokens = Ms(10);  // T_init.

  // Rate adjustment (Fig. 7).
  bool enable_rate_adjust = true;
  TimeNs adjust_period = Ms(500);
  double adjust_threshold = 0.08;  // Rth, as a fraction of total channel time.
  // Usage is smoothed across adjustment windows before excess capacity is computed, so
  // transport-layer burstiness (ack-clocked TCP under regulation is very bursty) does not
  // masquerade as persistent under-utilization and bleed rate away from a busy node.
  double usage_ewma_alpha = 0.35;
  // Donation only happens while the cell has genuine headroom by TBR's own accounting
  // (sum of smoothed usages below this fraction). On a saturated channel a node whose
  // estimated usage trails its assignment is a victim of estimation error (collisions and
  // retries are invisible without retry info), not an under-utilizer; redistributing then
  // would bleed share from busy fast nodes toward slow ones.
  double saturation_guard = 0.91;
  double min_rate = 0.01;          // Floor so a donor can always ramp back up.
  // Max-min repair: pull starved fully-utilizing nodes back toward their fair share
  // (the paper states the max-min goal; Fig. 7 alone cannot recover from some states).
  bool maxmin_repair = true;
  double repair_step = 0.05;

  // Work conservation at *packet* granularity: when no queue has positive tokens but
  // packets are waiting, release from the most-token backlogged queue instead of idling.
  // Default OFF: the paper keeps utilization high with ADJUSTRATEEVENT alone, and the
  // packet-level fallback defeats uplink ack-withholding (the AP queue often holds only
  // the throttled node's acks, so the fallback would always release them). Kept as an
  // option for the ablation bench.
  bool work_conserving_fallback = false;

  // kBurstCredit: how far below zero a backlogged client's bucket may run while the
  // channel would otherwise idle. Bounds both the free first burst and the repayment.
  TimeNs burst_credit = Ms(150);

  // kFastEwma: demand-event cadence and smoothing. A client counts as active while it
  // is backlogged, in token debt, or its demand EWMA is at least the threshold
  // (fraction of channel time).
  TimeNs demand_period = Ms(50);
  double demand_alpha = 0.3;
  double demand_active_threshold = 0.02;

  // kCreditHybrid: debt bound for the work-conserving fallback; a client deeper in
  // debt is skipped even when the channel would idle, so one greedy queue cannot run
  // away on free packets.
  TimeNs hybrid_debt_cap = Ms(250);

  // Occupancy estimator.
  bool use_retry_info = false;  // Paper's implementation: false.
  bool charge_contention_overhead = true;
  // Contenders assumed by the contention allowance. 0 = currently-associated count,
  // which makes the per-packet charge depend on association order (lazy association
  // via Enqueue charges early packets as if the cell were smaller). Scenario builders
  // set this to the declared station count, making charges association-order
  // invariant; identical to the legacy divisor for scenarios that associate upfront.
  int contention_contenders = 0;

  // Queueing: per-client drop-tail limit (paper splits the stock 100-packet buffer).
  size_t per_queue_limit = 50;

  // Optional explicit client cooperation (paper 4.1) for uplink UDP.
  bool client_agent = false;

  // Plain data: campaign jobs ship TbrConfig over the wire and compare round-trips.
  friend bool operator==(const TbrConfig&, const TbrConfig&) = default;
};

class TimeBasedRegulator : public ap::Qdisc {
 public:
  using ClientPauseFn = std::function<void(NodeId client, TimeNs until)>;

  TimeBasedRegulator(sim::Simulator* sim, phy::MacTimings timings, TbrConfig config = {});

  // ap::Qdisc implementation.
  void OnAssociate(NodeId client) override;
  bool Enqueue(net::PacketPtr packet) override;
  net::PacketPtr Dequeue() override;
  bool HasEligible() const override;
  size_t QueuedPackets() const override;
  void OnTxComplete(const mac::MacFrame& frame, bool success, int attempts,
                    TimeNs airtime) override;
  void OnUplinkObserved(const mac::ExchangeRecord& record) override;

  // Weighted (QoS) shares; weights are normalized across associated clients.
  void SetWeight(NodeId client, double weight);

  // Pins the contention-allowance divisor (see TbrConfig::contention_contenders).
  // Scenario builders call this with the declared station count before traffic starts.
  void SetContentionContenders(int n) { config_.contention_contenders = n; }

  // Client agent wiring (used when config.client_agent is true).
  void SetClientPauseFn(ClientPauseFn fn) { client_pause_ = std::move(fn); }

  // Introspection (tests, benches).
  TimeNs tokens(NodeId client) const;
  double rate(NodeId client) const;
  TimeNs actual_usage(NodeId client) const;
  const TbrConfig& config() const { return config_; }

  // Deterministic per-packet occupancy estimate used by the regulator.
  TimeNs EstimateOccupancy(int mac_frame_bytes, phy::WifiRate rate, int attempts) const;

 private:
  struct ClientState {
    net::PacketFifo queue;  // Intrusive FIFO of pooled packets.
    TimeNs tokens = 0;
    double rate = 0.0;   // Fraction of channel time per unit time.
    double weight = 1.0;
    TimeNs actual = 0;            // Occupancy charged since the last ADJUSTRATEEVENT.
    double smoothed_usage = -1.0; // EWMA of actual/window; <0 = uninitialized.
    NodeId id = kInvalidNodeId;
  };

  void FillEvent();
  void AdjustRateEvent();
  void DemandEvent();
  void RecomputeFairRates();
  ClientState& GetOrAssociate(NodeId client);
  void Charge(NodeId client, TimeNs occupancy);
  void MaybePauseClient(const ClientState& st);
  bool Eligible(const ClientState& st) const { return !st.queue.empty() && st.tokens > 0; }
  // A borrower in (-burst_credit, 0] may transmit when no in-credit client is waiting.
  bool CanBorrow(const ClientState& st) const {
    return !st.queue.empty() && st.tokens > -config_.burst_credit;
  }
  // Hybrid fallback candidate: backlogged, within the debt cap, and not leading with a
  // pure TCP ack (over-budget acks stay withheld - the whole point of the hybrid).
  bool HybridFallback(const ClientState& st) const {
    return !st.queue.empty() && st.tokens > -config_.hybrid_debt_cap &&
           st.queue.front()->proto != net::Proto::kTcpAck;
  }
  // Everything Dequeue() could serve right now; drives HasEligible() and the
  // FillEvent edge detection that wakes the AP.
  bool Serviceable(const ClientState& st) const {
    switch (config_.mode) {
      case TbrMode::kStock:
      case TbrMode::kFastEwma:
        return Eligible(st);
      case TbrMode::kBurstCredit:
        return CanBorrow(st);
      case TbrMode::kCreditHybrid:
        return Eligible(st) || HybridFallback(st);
    }
    return Eligible(st);
  }
  // Dense slot lookup (clients never disassociate); -1 when the client is unknown.
  int32_t SlotOf(NodeId client) const {
    return client >= 0 && static_cast<size_t>(client) < slot_of_.size()
               ? slot_of_[static_cast<size_t>(client)]
               : -1;
  }

  sim::Simulator* sim_;
  phy::MacTimings timings_;
  TbrConfig config_;
  ClientPauseFn client_pause_;

  // Client state packed in association order (which is the round-robin order), indexed
  // through slot_of_: the per-frame Dequeue()/HasEligible() walks are linear scans over
  // contiguous state, and per-completion Charge() is one indexed load - no tree walk
  // anywhere on the per-packet path.
  std::vector<ClientState> clients_;
  std::vector<int32_t> slot_of_;  // NodeId -> clients_ slot; -1 = not associated.
  // ADJUSTRATEEVENT classification scratch, reused so the 500 ms timer allocates
  // nothing once warm.
  std::vector<ClientState*> adjust_under_;
  std::vector<ClientState*> adjust_full_;
  size_t next_ = 0;
  double total_weight_ = 0.0;  // Cached sum of weights (invariant: > 0 once non-empty).
  TimeNs last_fill_ = 0;
  bool timers_started_ = false;
  // True once an adjust/demand event has moved any rate off the static fair split.
  // While false, (re)association keeps the exact legacy RecomputeFairRates() values;
  // afterwards late joiners renormalize proportionally instead of wiping the
  // converged allocation (the late-association bugfix).
  bool rates_adjusted_ = false;
};

}  // namespace tbf::core

#endif  // TBF_CORE_TBR_H_
