// TBR - the Time-based Regulator (the paper's core contribution, Figures 6 and 7).
//
// TBR is an AP qdisc that grants each competing client an equal (or weighted) long-term
// share of channel occupancy time. It keeps one leaky bucket per client whose unit is
// microseconds-of-channel-time (nanoseconds here):
//
//   ASSOCIATEEVENT  -> OnAssociate()      creates queue_i, tokens_i, rate_i
//   FILLEVENT       -> FillEvent()        tokens_i += dt * rate_i   (capped at bucket_i)
//   APPTXEVENT      -> Enqueue()          append packet to queue_i
//   MACTXEVENT      -> Dequeue()          round-robin over queues with tokens_i > 0
//   COMPLETEEVENT   -> OnTxComplete() /   tokens_i -= occupancy(p), actual_i += occupancy(p)
//                      OnUplinkObserved()
//   ADJUSTRATEEVENT -> AdjustRateEvent()  max-min redistribution of under-used rate
//
// Occupancy is *estimated* the way a driver would: PLCP + data + SIFS + ACK from (size,
// rate), plus a deterministic contention allowance. Like the paper's HostAP implementation,
// TBR by default has no retransmission information (use_retry_info=false), which slightly
// biases against nodes whose failed attempts go unseen - the Exp-TBR vs Eq.12 gap the paper
// reports. Enabling use_retry_info charges ground-truth per-attempt airtime instead.
//
// Uplink regulation needs no client changes for TCP: while tokens_i <= 0 the whole of
// client i's downlink queue (data *and* TCP acks) is ineligible, which stalls the sender's
// ack clock (paper 4.1). For uplink UDP an optional client agent (client_pause_fn) mimics
// the notification bit.
#ifndef TBF_CORE_TBR_H_
#define TBF_CORE_TBR_H_

#include <functional>
#include <vector>

#include "tbf/ap/qdisc.h"
#include "tbf/phy/timing.h"
#include "tbf/sim/simulator.h"

namespace tbf::core {

struct TbrConfig {
  // Token bucket parameters.
  TimeNs fill_period = Ms(2);
  TimeNs bucket_depth = Ms(20);    // bucket_i: burst bound, affects short-term fairness.
  TimeNs initial_tokens = Ms(10);  // T_init.

  // Rate adjustment (Fig. 7).
  bool enable_rate_adjust = true;
  TimeNs adjust_period = Ms(500);
  double adjust_threshold = 0.08;  // Rth, as a fraction of total channel time.
  // Usage is smoothed across adjustment windows before excess capacity is computed, so
  // transport-layer burstiness (ack-clocked TCP under regulation is very bursty) does not
  // masquerade as persistent under-utilization and bleed rate away from a busy node.
  double usage_ewma_alpha = 0.35;
  // Donation only happens while the cell has genuine headroom by TBR's own accounting
  // (sum of smoothed usages below this fraction). On a saturated channel a node whose
  // estimated usage trails its assignment is a victim of estimation error (collisions and
  // retries are invisible without retry info), not an under-utilizer; redistributing then
  // would bleed share from busy fast nodes toward slow ones.
  double saturation_guard = 0.91;
  double min_rate = 0.01;          // Floor so a donor can always ramp back up.
  // Max-min repair: pull starved fully-utilizing nodes back toward their fair share
  // (the paper states the max-min goal; Fig. 7 alone cannot recover from some states).
  bool maxmin_repair = true;
  double repair_step = 0.05;

  // Work conservation at *packet* granularity: when no queue has positive tokens but
  // packets are waiting, release from the most-token backlogged queue instead of idling.
  // Default OFF: the paper keeps utilization high with ADJUSTRATEEVENT alone, and the
  // packet-level fallback defeats uplink ack-withholding (the AP queue often holds only
  // the throttled node's acks, so the fallback would always release them). Kept as an
  // option for the ablation bench.
  bool work_conserving_fallback = false;

  // Occupancy estimator.
  bool use_retry_info = false;  // Paper's implementation: false.
  bool charge_contention_overhead = true;

  // Queueing: per-client drop-tail limit (paper splits the stock 100-packet buffer).
  size_t per_queue_limit = 50;

  // Optional explicit client cooperation (paper 4.1) for uplink UDP.
  bool client_agent = false;

  // Plain data: campaign jobs ship TbrConfig over the wire and compare round-trips.
  friend bool operator==(const TbrConfig&, const TbrConfig&) = default;
};

class TimeBasedRegulator : public ap::Qdisc {
 public:
  using ClientPauseFn = std::function<void(NodeId client, TimeNs until)>;

  TimeBasedRegulator(sim::Simulator* sim, phy::MacTimings timings, TbrConfig config = {});

  // ap::Qdisc implementation.
  void OnAssociate(NodeId client) override;
  bool Enqueue(net::PacketPtr packet) override;
  net::PacketPtr Dequeue() override;
  bool HasEligible() const override;
  size_t QueuedPackets() const override;
  void OnTxComplete(const mac::MacFrame& frame, bool success, int attempts,
                    TimeNs airtime) override;
  void OnUplinkObserved(const mac::ExchangeRecord& record) override;

  // Weighted (QoS) shares; weights are normalized across associated clients.
  void SetWeight(NodeId client, double weight);

  // Client agent wiring (used when config.client_agent is true).
  void SetClientPauseFn(ClientPauseFn fn) { client_pause_ = std::move(fn); }

  // Introspection (tests, benches).
  TimeNs tokens(NodeId client) const;
  double rate(NodeId client) const;
  TimeNs actual_usage(NodeId client) const;
  const TbrConfig& config() const { return config_; }

  // Deterministic per-packet occupancy estimate used by the regulator.
  TimeNs EstimateOccupancy(int mac_frame_bytes, phy::WifiRate rate, int attempts) const;

 private:
  struct ClientState {
    net::PacketFifo queue;  // Intrusive FIFO of pooled packets.
    TimeNs tokens = 0;
    double rate = 0.0;   // Fraction of channel time per unit time.
    double weight = 1.0;
    TimeNs actual = 0;            // Occupancy charged since the last ADJUSTRATEEVENT.
    double smoothed_usage = -1.0; // EWMA of actual/window; <0 = uninitialized.
    NodeId id = kInvalidNodeId;
  };

  void FillEvent();
  void AdjustRateEvent();
  void RecomputeFairRates();
  ClientState& GetOrAssociate(NodeId client);
  void Charge(NodeId client, TimeNs occupancy);
  void MaybePauseClient(const ClientState& st);
  bool Eligible(const ClientState& st) const { return !st.queue.empty() && st.tokens > 0; }
  // Dense slot lookup (clients never disassociate); -1 when the client is unknown.
  int32_t SlotOf(NodeId client) const {
    return client >= 0 && static_cast<size_t>(client) < slot_of_.size()
               ? slot_of_[static_cast<size_t>(client)]
               : -1;
  }

  sim::Simulator* sim_;
  phy::MacTimings timings_;
  TbrConfig config_;
  ClientPauseFn client_pause_;

  // Client state packed in association order (which is the round-robin order), indexed
  // through slot_of_: the per-frame Dequeue()/HasEligible() walks are linear scans over
  // contiguous state, and per-completion Charge() is one indexed load - no tree walk
  // anywhere on the per-packet path.
  std::vector<ClientState> clients_;
  std::vector<int32_t> slot_of_;  // NodeId -> clients_ slot; -1 = not associated.
  // ADJUSTRATEEVENT classification scratch, reused so the 500 ms timer allocates
  // nothing once warm.
  std::vector<ClientState*> adjust_under_;
  std::vector<ClientState*> adjust_full_;
  size_t next_ = 0;
  double total_weight_ = 0.0;  // Cached sum of weights (invariant: > 0 once non-empty).
  TimeNs last_fill_ = 0;
  bool timers_started_ = false;
};

}  // namespace tbf::core

#endif  // TBF_CORE_TBR_H_
