#include "tbf/core/tbr.h"

#include <algorithm>

#include "tbf/util/logging.h"

namespace tbf::core {

TimeBasedRegulator::TimeBasedRegulator(sim::Simulator* sim, phy::MacTimings timings,
                                       TbrConfig config)
    : sim_(sim), timings_(timings), config_(config) {}

void TimeBasedRegulator::OnAssociate(NodeId client) { GetOrAssociate(client); }

TimeBasedRegulator::ClientState& TimeBasedRegulator::GetOrAssociate(NodeId client) {
  TBF_CHECK(client >= 0) << "TBR regulates per-client traffic; packets need a client";
  if (static_cast<size_t>(client) >= slot_of_.size()) {
    slot_of_.resize(static_cast<size_t>(client) + 1, -1);
  }
  int32_t slot = slot_of_[static_cast<size_t>(client)];
  if (slot >= 0) {
    return clients_[static_cast<size_t>(slot)];
  }
  slot = static_cast<int32_t>(clients_.size());
  slot_of_[static_cast<size_t>(client)] = slot;
  clients_.emplace_back();
  ClientState& st = clients_.back();
  st.tokens = config_.initial_tokens;
  st.id = client;
  total_weight_ += st.weight;
  if (rates_adjusted_ && total_weight_ > 0.0) {
    // Late association after the adjuster has moved rates: give the newcomer its
    // weighted fair share and scale everyone else down proportionally, preserving
    // both the rate sum and the converged relative allocation. (Resetting everything
    // to the static split here discarded all adjuster progress whenever a late flow's
    // first packet auto-associated mid-run.)
    const double share = st.weight / total_weight_;
    for (ClientState& other : clients_) {
      other.rate *= 1.0 - share;
    }
    st.rate = share;
  } else {
    RecomputeFairRates();
  }

  if (!timers_started_) {
    timers_started_ = true;
    last_fill_ = sim_->Now();
    sim_->Schedule(config_.fill_period, [this] { FillEvent(); });
    if (config_.enable_rate_adjust) {
      if (config_.mode == TbrMode::kFastEwma) {
        sim_->Schedule(config_.demand_period, [this] { DemandEvent(); });
      } else {
        sim_->Schedule(config_.adjust_period, [this] { AdjustRateEvent(); });
      }
    }
  }
  return clients_[static_cast<size_t>(slot)];
}

void TimeBasedRegulator::RecomputeFairRates() {
  if (total_weight_ <= 0.0) {
    return;
  }
  for (ClientState& st : clients_) {
    st.rate = st.weight / total_weight_;
  }
}

void TimeBasedRegulator::SetWeight(NodeId client, double weight) {
  ClientState& st = GetOrAssociate(client);
  const double old_weight = st.weight;
  total_weight_ += weight - st.weight;
  st.weight = weight;
  if (!rates_adjusted_) {
    RecomputeFairRates();
    return;
  }
  // Adjusted regime: scale this client's rate with its weight change and renormalize,
  // so the other clients keep their converged relative allocation instead of being
  // reset to the static split.
  st.rate = old_weight > 0.0 ? st.rate * (weight / old_weight)
                             : weight / total_weight_;
  double sum = 0.0;
  for (const ClientState& other : clients_) {
    sum += other.rate;
  }
  if (sum <= 0.0) {
    RecomputeFairRates();
    return;
  }
  for (ClientState& other : clients_) {
    other.rate /= sum;
  }
}

bool TimeBasedRegulator::Enqueue(net::PacketPtr packet) {
  ClientState& st = GetOrAssociate(packet->wlan_client);
  if (st.queue.size() >= config_.per_queue_limit) {
    CountDrop();
    return false;
  }
  st.queue.PushBack(std::move(packet));
  return true;
}

net::PacketPtr TimeBasedRegulator::Dequeue() {
  const size_t n = clients_.size();
  if (n == 0) {
    return nullptr;
  }
  // Round-robin over queues with positive channel-time credit (Fig. 6, MACTXEVENT).
  for (size_t i = 0; i < n; ++i) {
    const size_t idx = next_ + i < n ? next_ + i : next_ + i - n;
    ClientState& st = clients_[idx];
    if (Eligible(st)) {
      next_ = idx + 1 < n ? idx + 1 : 0;
      return st.queue.PopFront();
    }
  }
  switch (config_.mode) {
    case TbrMode::kStock:
    case TbrMode::kFastEwma:
      break;
    case TbrMode::kBurstCredit: {
      // Borrow pass: no in-credit client is waiting, so a client within its burst
      // credit may spend unused airtime now and repay from its future fill. Same
      // round-robin order as the strict pass, so borrowers take fair turns.
      for (size_t i = 0; i < n; ++i) {
        const size_t idx = next_ + i < n ? next_ + i : next_ + i - n;
        ClientState& st = clients_[idx];
        if (CanBorrow(st)) {
          next_ = idx + 1 < n ? idx + 1 : 0;
          return st.queue.PopFront();
        }
      }
      return nullptr;
    }
    case TbrMode::kCreditHybrid: {
      // Work-conserving fallback that keeps uplink regulation: serve the backlogged
      // client closest to eligibility, but never release a throttled client's pure
      // TCP acks and never serve past the debt cap.
      ClientState* best = nullptr;
      for (ClientState& st : clients_) {
        if (HybridFallback(st) && (best == nullptr || st.tokens > best->tokens)) {
          best = &st;
        }
      }
      return best == nullptr ? nullptr : best->queue.PopFront();
    }
  }
  if (!config_.work_conserving_fallback) {
    return nullptr;
  }
  // No positive-credit queue: rather than idle the channel, serve the backlogged client
  // closest to eligibility (largest token balance).
  ClientState* best = nullptr;
  for (ClientState& st : clients_) {
    if (!st.queue.empty() && (best == nullptr || st.tokens > best->tokens)) {
      best = &st;
    }
  }
  if (best == nullptr) {
    return nullptr;
  }
  return best->queue.PopFront();
}

bool TimeBasedRegulator::HasEligible() const {
  for (const ClientState& st : clients_) {
    if (Serviceable(st)) {
      return true;
    }
  }
  if (config_.work_conserving_fallback &&
      (config_.mode == TbrMode::kStock || config_.mode == TbrMode::kFastEwma)) {
    for (const ClientState& st : clients_) {
      if (!st.queue.empty()) {
        return true;
      }
    }
  }
  return false;
}

size_t TimeBasedRegulator::QueuedPackets() const {
  size_t n = 0;
  for (const ClientState& st : clients_) {
    n += st.queue.size();
  }
  return n;
}

TimeNs TimeBasedRegulator::EstimateOccupancy(int mac_frame_bytes, phy::WifiRate rate,
                                             int attempts) const {
  TimeNs per_attempt = phy::DataExchangeAirtime(mac_frame_bytes, rate, timings_);
  if (config_.charge_contention_overhead) {
    // Deterministic allowance for the IFS + backoff idle an exchange consumes. Under
    // contention the expected idle is roughly the solo expectation divided by the number
    // of contenders (minimum of independent uniform draws), so scale by the cell size;
    // what matters for fairness is that the estimate is applied uniformly to all nodes.
    // The divisor is pinned by contention_contenders where set: dividing by the
    // currently-associated count makes the charge depend on association order (lazy
    // association via Enqueue bills early packets as if the cell were smaller).
    const auto contenders = static_cast<TimeNs>(
        config_.contention_contenders > 0
            ? static_cast<size_t>(config_.contention_contenders)
            : std::max<size_t>(clients_.size(), 1));
    per_attempt += timings_.Difs() + (timings_.cw_min / 2) * timings_.slot / contenders;
  }
  return per_attempt * std::max(attempts, 1);
}

void TimeBasedRegulator::Charge(NodeId client, TimeNs occupancy) {
  const int32_t slot = SlotOf(client);
  if (slot < 0) {
    return;
  }
  ClientState& st = clients_[static_cast<size_t>(slot)];
  st.tokens -= occupancy;
  st.actual += occupancy;
  if (config_.client_agent) {
    MaybePauseClient(st);
  }
}

void TimeBasedRegulator::OnTxComplete(const mac::MacFrame& frame, bool /*success*/,
                                      int attempts, TimeNs /*airtime*/) {
  // Downlink completion. Without retry info the driver charges a single attempt.
  const int charged_attempts = config_.use_retry_info ? attempts : 1;
  Charge(frame.packet->wlan_client,
         EstimateOccupancy(frame.frame_bytes, frame.rate, charged_attempts));
}

void TimeBasedRegulator::OnUplinkObserved(const mac::ExchangeRecord& record) {
  if (config_.use_retry_info) {
    // Firmware exposes per-attempt information: charge ground-truth airtime of every
    // attempt, including corrupted ones.
    Charge(record.owner, record.airtime);
    return;
  }
  // Driver-only view: the AP sees (and can size) only successfully received data frames.
  if (record.collision || record.data_lost) {
    return;
  }
  Charge(record.owner, EstimateOccupancy(record.frame_bytes, record.rate, 1));
}

void TimeBasedRegulator::FillEvent() {
  const TimeNs now = sim_->Now();
  const TimeNs dt = now - last_fill_;
  last_fill_ = now;
  bool became_eligible = false;
  for (ClientState& st : clients_) {
    const bool was = Serviceable(st);
    st.tokens += static_cast<TimeNs>(st.rate * static_cast<double>(dt));
    if (st.tokens > config_.bucket_depth) {
      st.tokens = config_.bucket_depth;
    }
    became_eligible = became_eligible || (!was && Serviceable(st));
  }
  if (became_eligible) {
    NotifyBacklog();
  }
  sim_->Schedule(config_.fill_period, [this] { FillEvent(); });
}

void TimeBasedRegulator::AdjustRateEvent() {
  const double window = static_cast<double>(config_.adjust_period);
  // Excess = assigned share minus consumed share over the window (Fig. 7). The
  // classification scratch is reused across ADJUSTRATEEVENTs (steady state allocates
  // nothing, pinned by the packet-pool allocation test).
  std::vector<ClientState*>& under = adjust_under_;  // excess >= Rth.
  std::vector<ClientState*>& full = adjust_full_;    // consumed close to assignment: I'.
  under.clear();
  full.clear();
  ClientState* max_excess_node = nullptr;
  double max_excess = 0.0;
  double min_excess = 0.0;
  double total_usage = 0.0;
  for (ClientState& st : clients_) {
    const double usage = static_cast<double>(st.actual) / window;
    if (st.smoothed_usage < 0.0) {
      st.smoothed_usage = st.rate;  // Assume full use until evidence accumulates.
    }
    st.smoothed_usage += config_.usage_ewma_alpha * (usage - st.smoothed_usage);
    total_usage += st.smoothed_usage;
    const double excess = st.rate - st.smoothed_usage;
    if (excess >= config_.adjust_threshold) {
      under.push_back(&st);
      if (under.size() == 1 || excess < min_excess) {
        min_excess = excess;
      }
      if (max_excess_node == nullptr || excess > max_excess) {
        max_excess = excess;
        max_excess_node = &st;
      }
    } else {
      full.push_back(&st);
    }
  }

  const bool channel_has_headroom = total_usage < config_.saturation_guard;
  if (!under.empty() && !full.empty() && channel_has_headroom) {
    // Donate half of the smallest under-utilizer's excess from the *largest*
    // under-utilizer, split equally among fully-utilizing nodes (Fig. 7). The max-min
    // guard: a donor's rate never drops below what it demonstrably uses plus a margin,
    // so estimator noise or transport burstiness cannot bleed away a busy node's share.
    double donation = min_excess / 2.0;
    donation = std::min(donation, max_excess - config_.adjust_threshold / 2.0);
    donation = std::min(donation, max_excess_node->rate - config_.min_rate);
    if (donation > 0.0) {
      max_excess_node->rate -= donation;
      const double share = donation / static_cast<double>(full.size());
      for (ClientState* st : full) {
        st->rate += share;
      }
      rates_adjusted_ = true;
    }
  }

  if (config_.maxmin_repair) {
    // A fully-utilizing node sitting below its weighted fair share is starved; reclaim
    // from nodes holding more than fair share, proportionally to their surplus. This
    // restores the paper's max-min constraint after demand shifts.
    for (ClientState* st : full) {
      const double fair = st->weight / total_weight_;
      if (st->rate >= fair) {
        continue;
      }
      double want = std::min(config_.repair_step, fair - st->rate);
      double surplus_total = 0.0;
      for (ClientState& other : clients_) {
        const double other_fair = other.weight / total_weight_;
        if (&other != st && other.rate > other_fair) {
          surplus_total += other.rate - other_fair;
        }
      }
      if (surplus_total <= 0.0) {
        continue;
      }
      want = std::min(want, surplus_total);
      for (ClientState& other : clients_) {
        const double other_fair = other.weight / total_weight_;
        if (&other != st && other.rate > other_fair) {
          other.rate -= want * (other.rate - other_fair) / surplus_total;
        }
      }
      st->rate += want;
      rates_adjusted_ = true;
    }
  }

  for (ClientState& st : clients_) {
    st.actual = 0;
  }
  sim_->Schedule(config_.adjust_period, [this] { AdjustRateEvent(); });
}

void TimeBasedRegulator::DemandEvent() {
  // kFastEwma's replacement for ADJUSTRATEEVENT: a full reallocation every
  // demand_period driven by per-client demand EWMAs, so a cell's shares track demand
  // shifts in tens of milliseconds instead of the 500 ms epoch.
  const double window = static_cast<double>(config_.demand_period);
  double total_demand = 0.0;
  double active_weight = 0.0;
  size_t idle_count = 0;
  for (ClientState& st : clients_) {
    const double usage = static_cast<double>(st.actual) / window;
    if (st.smoothed_usage < 0.0) {
      st.smoothed_usage = usage;
    }
    st.smoothed_usage += config_.demand_alpha * (usage - st.smoothed_usage);
    total_demand += st.smoothed_usage;
    st.actual = 0;
  }
  for (ClientState& st : clients_) {
    const bool active = !st.queue.empty() || st.tokens < 0 ||
                        st.smoothed_usage >= config_.demand_active_threshold;
    if (active) {
      active_weight += st.weight;
    } else {
      ++idle_count;
    }
  }
  const double idle_floor = config_.min_rate * static_cast<double>(idle_count);
  if (total_demand >= config_.saturation_guard || active_weight <= 0.0 ||
      idle_floor >= 1.0) {
    // Saturated (or degenerate) cell: the estimator cannot distinguish low demand
    // from invisible retries, so fall back to the paper's static weighted split -
    // the same guard that stops the stock adjuster from bleeding busy nodes.
    RecomputeFairRates();
  } else {
    // Idle clients keep min_rate so they can ramp back; active clients split the
    // rest by weight. Second pass recomputes the active predicate identically.
    for (ClientState& st : clients_) {
      const bool active = !st.queue.empty() || st.tokens < 0 ||
                          st.smoothed_usage >= config_.demand_active_threshold;
      st.rate = active ? (st.weight / active_weight) * (1.0 - idle_floor)
                       : config_.min_rate;
    }
    rates_adjusted_ = true;
  }
  sim_->Schedule(config_.demand_period, [this] { DemandEvent(); });
}

void TimeBasedRegulator::MaybePauseClient(const ClientState& st) {
  if (!client_pause_) {
    return;
  }
  if (st.tokens >= 0 || st.rate <= 0.0) {
    return;
  }
  // Pause the client until its bucket is projected to refill to zero.
  const TimeNs debt = -st.tokens;
  const TimeNs pause = static_cast<TimeNs>(static_cast<double>(debt) / st.rate);
  client_pause_(st.id, sim_->Now() + pause);
}

TimeNs TimeBasedRegulator::tokens(NodeId client) const {
  const int32_t slot = SlotOf(client);
  return slot < 0 ? 0 : clients_[static_cast<size_t>(slot)].tokens;
}

double TimeBasedRegulator::rate(NodeId client) const {
  const int32_t slot = SlotOf(client);
  return slot < 0 ? 0.0 : clients_[static_cast<size_t>(slot)].rate;
}

TimeNs TimeBasedRegulator::actual_usage(NodeId client) const {
  const int32_t slot = SlotOf(client);
  return slot < 0 ? 0 : clients_[static_cast<size_t>(slot)].actual;
}

}  // namespace tbf::core
