// Network-layer packet representation shared by transport, AP queueing and the MAC,
// plus the pooled allocation machinery that makes the per-packet path allocation-free.
//
// Every simulated packet lives in a PacketPool slab slot and is owned through PacketPtr,
// an intrusive non-atomic refcounted handle (one pointer wide; copies bump a plain
// uint32 in the packet itself - no control block, no atomics). Pools are chunked like
// the event kernel's callback slab: chunk addresses are stable, freed packets go on an
// intrusive freelist, and in steady state Allocate/Release cycles never touch the heap.
// Each Simulator's scenario owns its own pool (scenario::Wlan holds one next to its
// Simulator), so sweep workers never share a pool and runs stay bit-identical and
// race-free for any TBF_SWEEP_THREADS.
//
// The same intrusive `link` field that threads the freelist threads PacketFifo - the
// per-node FIFO used by the AP qdiscs, TBR and the client interface queues - which is
// sound because a packet is either dead (freelist) or queued in at most one FIFO at a
// time (ownership moves along a single forwarding path).
#ifndef TBF_NET_PACKET_H_
#define TBF_NET_PACKET_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "tbf/util/units.h"

namespace tbf::net {

enum class Proto { kUdp, kTcpData, kTcpAck };

inline constexpr int kIpTcpHeaderBytes = 40;
inline constexpr int kIpUdpHeaderBytes = 28;
inline constexpr int kDefaultMss = 1460;  // 1500-byte IP packets, the paper's frame size.

class PacketPool;

struct Packet {
  NodeId src = kInvalidNodeId;  // Originating endpoint (client id or >= kServerId).
  NodeId dst = kInvalidNodeId;
  // The wireless client whose traffic this packet is; drives per-node queueing/accounting
  // at the AP regardless of direction.
  NodeId wlan_client = kInvalidNodeId;
  int flow_id = -1;
  Proto proto = Proto::kUdp;
  int size_bytes = 0;  // IP datagram size on the wire.

  // Transport fields (TCP: byte sequence space; UDP: packet counter in seq).
  int64_t seq = 0;
  int64_t end_seq = 0;  // TCP data: seq + payload bytes.
  int64_t ack = 0;      // TCP: cumulative ack number.

  TimeNs created = 0;
  // Stamped by the AP when the packet enters its transmit qdisc; the dequeue-side
  // delta is the packet's AP queueing delay (the metrology layer's qdisc tap, and the
  // quantity TBR's token regulation directly manipulates). -1 = never queued at the AP.
  TimeNs ap_enqueued = -1;

  int PayloadBytes() const {
    switch (proto) {
      case Proto::kUdp:
        return size_bytes - kIpUdpHeaderBytes;
      case Proto::kTcpData:
        return size_bytes - kIpTcpHeaderBytes;
      case Proto::kTcpAck:
        return 0;
    }
    return 0;
  }

  // --- Pool bookkeeping (not wire state; managed by PacketPool/PacketPtr/PacketFifo).
  PacketPool* pool = nullptr;   // Owning pool; set once when the slot's chunk is built.
  Packet* link = nullptr;       // Freelist link while dead, FIFO link while queued.
  uint32_t refs = 0;            // Non-atomic: each pool is confined to one sweep thread.
  uint32_t generation = 0;      // Bumped on every release-to-pool (reuse introspection).
  // True while the packet sits in a PacketFifo. The intrusive link admits only one list
  // membership at a time; enqueue boundaries that can legitimately see an already-queued
  // packet again (MAC duplicate deliveries: data received but ACK lost, so the sender
  // retransmits and the receiver-side forwards the same Packet twice) consult this to
  // clone instead of corrupting the chain - see CloneIfQueued.
  bool in_fifo = false;
};

// One-pointer intrusive refcounted handle to a pooled Packet. Copy = ++refs,
// destruction = --refs, last release returns the slot to its pool's freelist.
// Detach()/Adopt() transfer a counted reference as a raw Packet* - used by PacketFifo
// and by event callbacks that must stay trivially copyable (no refcount traffic or
// relocate thunks through the event slab).
class PacketPtr {
 public:
  PacketPtr() noexcept = default;
  PacketPtr(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  PacketPtr(const PacketPtr& other) noexcept : p_(other.p_) {
    if (p_ != nullptr) {
      ++p_->refs;
    }
  }
  PacketPtr(PacketPtr&& other) noexcept : p_(other.p_) { other.p_ = nullptr; }

  PacketPtr& operator=(const PacketPtr& other) noexcept {
    if (this != &other) {
      Packet* old = p_;
      p_ = other.p_;
      if (p_ != nullptr) {
        ++p_->refs;
      }
      ReleaseRaw(old);
    }
    return *this;
  }
  PacketPtr& operator=(PacketPtr&& other) noexcept {
    if (this != &other) {
      Packet* old = p_;
      p_ = other.p_;
      other.p_ = nullptr;
      ReleaseRaw(old);
    }
    return *this;
  }
  PacketPtr& operator=(std::nullptr_t) noexcept {
    reset();
    return *this;
  }

  ~PacketPtr() { ReleaseRaw(p_); }

  // Wraps an already-counted reference (from Detach/DetachCopy or a fresh allocation).
  static PacketPtr Adopt(Packet* p) noexcept { return PacketPtr(p); }

  // Releases ownership without dropping the reference; pair with Adopt.
  Packet* Detach() noexcept { return std::exchange(p_, nullptr); }

  // Hands out an additional counted reference as a raw pointer; pair with Adopt.
  Packet* DetachCopy() const noexcept {
    if (p_ != nullptr) {
      ++p_->refs;
    }
    return p_;
  }

  void reset() noexcept { ReleaseRaw(std::exchange(p_, nullptr)); }

  Packet* get() const noexcept { return p_; }
  Packet& operator*() const noexcept { return *p_; }
  Packet* operator->() const noexcept { return p_; }
  explicit operator bool() const noexcept { return p_ != nullptr; }

  friend bool operator==(const PacketPtr& a, const PacketPtr& b) noexcept {
    return a.p_ == b.p_;
  }
  friend bool operator!=(const PacketPtr& a, const PacketPtr& b) noexcept {
    return a.p_ != b.p_;
  }
  friend bool operator==(const PacketPtr& a, std::nullptr_t) noexcept {
    return a.p_ == nullptr;
  }
  friend bool operator!=(const PacketPtr& a, std::nullptr_t) noexcept {
    return a.p_ != nullptr;
  }
  friend bool operator==(std::nullptr_t, const PacketPtr& a) noexcept {
    return a.p_ == nullptr;
  }
  friend bool operator!=(std::nullptr_t, const PacketPtr& a) noexcept {
    return a.p_ != nullptr;
  }

 private:
  explicit PacketPtr(Packet* p) noexcept : p_(p) {}
  static void ReleaseRaw(Packet* p) noexcept;  // Defined after PacketPool.

  Packet* p_ = nullptr;
};

// Chunked slab + freelist of Packets. Allocate() pops the freelist (or grows by one
// chunk on first touch); the last PacketPtr release pushes the slot back. Steady state:
// zero heap traffic on the packet path (pinned by tests/packet_pool_test.cpp).
class PacketPool {
 public:
  // 256 slots x ~112 bytes per chunk; stable addresses (chunks are never moved).
  static constexpr size_t kChunkSize = 256;

  PacketPool() = default;
  PacketPool(const PacketPool&) = delete;
  PacketPool& operator=(const PacketPool&) = delete;
  // The pool must outlive every handle into it; owners keep it next to the Simulator
  // and declared before (destroyed after) everything that can hold packets.
  ~PacketPool() = default;

  PacketPtr Allocate() {
    if (free_head_ == nullptr) {
      Grow();
    }
    Packet* p = free_head_;
    free_head_ = p->link;
    // Reset to the same defaults a freshly constructed Packet carries; reuse must be
    // indistinguishable from fresh allocation (bit-identical runs depend on it).
    p->src = kInvalidNodeId;
    p->dst = kInvalidNodeId;
    p->wlan_client = kInvalidNodeId;
    p->flow_id = -1;
    p->proto = Proto::kUdp;
    p->size_bytes = 0;
    p->seq = 0;
    p->end_seq = 0;
    p->ack = 0;
    p->created = 0;
    p->ap_enqueued = -1;
    p->link = nullptr;
    p->refs = 1;
    p->in_fifo = false;
    ++live_;
    return PacketPtr::Adopt(p);
  }

  void Release(Packet* p) noexcept {
    ++p->generation;
    p->link = free_head_;
    free_head_ = p;
    --live_;
  }

  // Introspection for pool-reuse tests: slots ever allocated (steady state: constant).
  size_t slots() const { return chunks_.size() * kChunkSize; }
  size_t live() const { return live_; }

 private:
  struct Chunk {
    Packet packets[kChunkSize];
  };

  void Grow() {
    chunks_.push_back(std::make_unique<Chunk>());
    Chunk& chunk = *chunks_.back();
    for (size_t i = kChunkSize; i > 0; --i) {
      Packet& p = chunk.packets[i - 1];
      p.pool = this;
      p.link = free_head_;
      free_head_ = &p;
    }
  }

  std::vector<std::unique_ptr<Chunk>> chunks_;
  Packet* free_head_ = nullptr;
  size_t live_ = 0;
};

inline void PacketPtr::ReleaseRaw(Packet* p) noexcept {
  if (p != nullptr && --p->refs == 0) {
    p->pool->Release(p);
  }
}

// Intrusive FIFO of pooled packets, threaded through Packet::link. PushBack moves the
// handle's reference into the list; PopFront moves it back out - no refcount traffic,
// no per-node deque churn, O(1) both ends. A packet is in at most one FIFO at a time.
class PacketFifo {
 public:
  PacketFifo() = default;
  PacketFifo(const PacketFifo&) = delete;
  PacketFifo& operator=(const PacketFifo&) = delete;
  PacketFifo(PacketFifo&& other) noexcept
      : head_(std::exchange(other.head_, nullptr)),
        tail_(std::exchange(other.tail_, nullptr)),
        size_(std::exchange(other.size_, 0)) {}
  PacketFifo& operator=(PacketFifo&& other) noexcept {
    if (this != &other) {
      Clear();
      head_ = std::exchange(other.head_, nullptr);
      tail_ = std::exchange(other.tail_, nullptr);
      size_ = std::exchange(other.size_, 0);
    }
    return *this;
  }
  ~PacketFifo() { Clear(); }

  bool empty() const { return head_ == nullptr; }
  size_t size() const { return size_; }
  Packet* front() const { return head_; }

  // Precondition: the packet is not in any FIFO (callers that can receive duplicate
  // references to a queued packet route through CloneIfQueued first).
  void PushBack(PacketPtr packet) {
    Packet* raw = packet.Detach();
    raw->link = nullptr;
    raw->in_fifo = true;
    if (tail_ != nullptr) {
      tail_->link = raw;
    } else {
      head_ = raw;
    }
    tail_ = raw;
    ++size_;
  }

  // Precondition: !empty().
  PacketPtr PopFront() {
    Packet* raw = head_;
    head_ = raw->link;
    if (head_ == nullptr) {
      tail_ = nullptr;
    }
    raw->link = nullptr;
    raw->in_fifo = false;
    --size_;
    return PacketPtr::Adopt(raw);
  }

  void Clear() {
    while (!empty()) {
      PopFront();
    }
  }

 private:
  Packet* head_ = nullptr;
  Packet* tail_ = nullptr;
  size_t size_ = 0;
};

// Returns `p` itself unless it currently sits in a PacketFifo, in which case a
// field-identical clone from the same pool is returned. Needed at enqueue boundaries
// reachable by MAC duplicate deliveries (data delivered, ACK lost, retransmission
// delivered again): the pre-pool code queued a second shared handle to the same packet;
// with intrusive queues the second membership must be a distinct slot.
inline PacketPtr CloneIfQueued(PacketPtr p) {
  if (p == nullptr || !p->in_fifo) {
    return p;
  }
  PacketPtr clone = p->pool->Allocate();
  clone->src = p->src;
  clone->dst = p->dst;
  clone->wlan_client = p->wlan_client;
  clone->flow_id = p->flow_id;
  clone->proto = p->proto;
  clone->size_bytes = p->size_bytes;
  clone->seq = p->seq;
  clone->end_seq = p->end_seq;
  clone->ack = p->ack;
  clone->created = p->created;
  clone->ap_enqueued = p->ap_enqueued;
  return clone;
}

inline PacketPtr MakeUdpPacket(PacketPool& pool, NodeId src, NodeId dst,
                               NodeId wlan_client, int flow_id, int size_bytes,
                               int64_t seq, TimeNs now) {
  PacketPtr p = pool.Allocate();
  p->src = src;
  p->dst = dst;
  p->wlan_client = wlan_client;
  p->flow_id = flow_id;
  p->proto = Proto::kUdp;
  p->size_bytes = size_bytes;
  p->seq = seq;
  p->created = now;
  return p;
}

}  // namespace tbf::net

#endif  // TBF_NET_PACKET_H_
