// Network-layer packet representation shared by transport, AP queueing and the MAC.
#ifndef TBF_NET_PACKET_H_
#define TBF_NET_PACKET_H_

#include <cstdint>
#include <memory>

#include "tbf/util/units.h"

namespace tbf::net {

enum class Proto { kUdp, kTcpData, kTcpAck };

inline constexpr int kIpTcpHeaderBytes = 40;
inline constexpr int kIpUdpHeaderBytes = 28;
inline constexpr int kDefaultMss = 1460;  // 1500-byte IP packets, the paper's frame size.

struct Packet {
  NodeId src = kInvalidNodeId;  // Originating endpoint (client id or >= kServerId).
  NodeId dst = kInvalidNodeId;
  // The wireless client whose traffic this packet is; drives per-node queueing/accounting
  // at the AP regardless of direction.
  NodeId wlan_client = kInvalidNodeId;
  int flow_id = -1;
  Proto proto = Proto::kUdp;
  int size_bytes = 0;  // IP datagram size on the wire.

  // Transport fields (TCP: byte sequence space; UDP: packet counter in seq).
  int64_t seq = 0;
  int64_t end_seq = 0;  // TCP data: seq + payload bytes.
  int64_t ack = 0;      // TCP: cumulative ack number.

  TimeNs created = 0;
  // Stamped by the AP when the packet enters its transmit qdisc; the dequeue-side
  // delta is the packet's AP queueing delay (the metrology layer's qdisc tap, and the
  // quantity TBR's token regulation directly manipulates). -1 = never queued at the AP.
  TimeNs ap_enqueued = -1;

  int PayloadBytes() const {
    switch (proto) {
      case Proto::kUdp:
        return size_bytes - kIpUdpHeaderBytes;
      case Proto::kTcpData:
        return size_bytes - kIpTcpHeaderBytes;
      case Proto::kTcpAck:
        return 0;
    }
    return 0;
  }
};

using PacketPtr = std::shared_ptr<Packet>;

inline PacketPtr MakeUdpPacket(NodeId src, NodeId dst, NodeId wlan_client, int flow_id,
                               int size_bytes, int64_t seq, TimeNs now) {
  auto p = std::make_shared<Packet>();
  p->src = src;
  p->dst = dst;
  p->wlan_client = wlan_client;
  p->flow_id = flow_id;
  p->proto = Proto::kUdp;
  p->size_bytes = size_bytes;
  p->seq = seq;
  p->created = now;
  return p;
}

}  // namespace tbf::net

#endif  // TBF_NET_PACKET_H_
