// Transport demultiplexer: routes received packets to the endpoint registered for
// (node, flow_id).
#ifndef TBF_NET_DEMUX_H_
#define TBF_NET_DEMUX_H_

#include <map>
#include <utility>

#include "tbf/net/packet.h"
#include "tbf/util/logging.h"

namespace tbf::net {

class PacketHandler {
 public:
  virtual ~PacketHandler() = default;
  virtual void HandlePacket(const PacketPtr& packet) = 0;
};

class Demux {
 public:
  void Register(NodeId node, int flow_id, PacketHandler* handler) {
    handlers_[{node, flow_id}] = handler;
  }

  void Deliver(NodeId node, const PacketPtr& packet) {
    auto it = handlers_.find({node, packet->flow_id});
    if (it == handlers_.end()) {
      TBF_LOG(kDebug) << "no handler at node " << node << " for flow " << packet->flow_id;
      return;
    }
    it->second->HandlePacket(packet);
  }

 private:
  std::map<std::pair<NodeId, int>, PacketHandler*> handlers_;
};

}  // namespace tbf::net

#endif  // TBF_NET_DEMUX_H_
