// Transport demultiplexer: routes received packets to the endpoint registered for
// (node, flow_id).
//
// Flow ids are dense (the scenario builder assigns them from 1) and each flow has at
// most two endpoints (sender node, receiver node), so the handler table is a flat
// vector indexed by flow_id holding both endpoints inline - Deliver is two compares
// and an indexed load, no tree walk or hashing on the per-packet path.
#ifndef TBF_NET_DEMUX_H_
#define TBF_NET_DEMUX_H_

#include <vector>

#include "tbf/net/packet.h"
#include "tbf/util/logging.h"

namespace tbf::net {

class PacketHandler {
 public:
  virtual ~PacketHandler() = default;
  virtual void HandlePacket(const PacketPtr& packet) = 0;
};

class Demux {
 public:
  void Register(NodeId node, int flow_id, PacketHandler* handler) {
    TBF_CHECK(flow_id >= 0) << "flows must carry a non-negative flow_id to register";
    if (static_cast<size_t>(flow_id) >= flows_.size()) {
      flows_.resize(static_cast<size_t>(flow_id) + 1);
    }
    Entry& entry = flows_[static_cast<size_t>(flow_id)];
    for (int i = 0; i < 2; ++i) {
      if (entry.handler[i] != nullptr && entry.node[i] == node) {
        entry.handler[i] = handler;  // Re-register the same endpoint.
        return;
      }
    }
    for (int i = 0; i < 2; ++i) {
      if (entry.handler[i] == nullptr) {
        entry.node[i] = node;
        entry.handler[i] = handler;
        return;
      }
    }
    TBF_CHECK(false) << "flow " << flow_id << " already has two endpoints registered";
  }

  void Deliver(NodeId node, const PacketPtr& packet) {
    const int flow_id = packet->flow_id;
    if (flow_id >= 0 && static_cast<size_t>(flow_id) < flows_.size()) {
      const Entry& entry = flows_[static_cast<size_t>(flow_id)];
      if (entry.handler[0] != nullptr && entry.node[0] == node) {
        entry.handler[0]->HandlePacket(packet);
        return;
      }
      if (entry.handler[1] != nullptr && entry.node[1] == node) {
        entry.handler[1]->HandlePacket(packet);
        return;
      }
    }
    TBF_LOG(kDebug) << "no handler at node " << node << " for flow " << flow_id;
  }

 private:
  struct Entry {
    NodeId node[2] = {kInvalidNodeId, kInvalidNodeId};
    PacketHandler* handler[2] = {nullptr, nullptr};
  };

  std::vector<Entry> flows_;
};

}  // namespace tbf::net

#endif  // TBF_NET_DEMUX_H_
