#include "tbf/net/tcp.h"

#include <algorithm>
#include <limits>

#include "tbf/util/logging.h"

namespace tbf::net {
namespace {

// Pool-backed segment construction: a freelist pop in steady state, never the heap.
PacketPtr MakeSegment(PacketPool& pool, const FlowAddress& addr, Proto proto, int size,
                      TimeNs now) {
  PacketPtr p = pool.Allocate();
  p->flow_id = addr.flow_id;
  p->wlan_client = addr.wlan_client;
  p->proto = proto;
  p->size_bytes = size;
  p->created = now;
  return p;
}

}  // namespace

TcpSender::TcpSender(sim::Simulator* sim, PacketPool* pool, TcpConfig config,
                     FlowAddress addr, SendFn send)
    : sim_(sim),
      pool_(pool),
      config_(config),
      addr_(addr),
      send_(std::move(send)),
      rto_(config.initial_rto) {
  cwnd_ = static_cast<double>(config_.initial_cwnd_segments) * config_.mss;
  ssthresh_ = static_cast<double>(config_.receive_window);
}

void TcpSender::Start(TimeNs at) {
  sim_->ScheduleAt(at, [this] {
    started_ = true;
    start_time_ = sim_->Now();
    app_base_time_ = start_time_;
    TrySend();
  });
}

void TcpSender::AddTask(int64_t bytes) {
  TBF_CHECK(bytes > 0 && task_bytes_ > 0) << "AddTask extends an existing finite task";
  if (app_limit_bps_ > 0) {
    // The application starts producing the new task now; without re-anchoring, credit
    // accrued during the idle gap would release the whole task as one burst.
    app_base_bytes_ = snd_una_;
    app_base_time_ = sim_->Now();
  }
  task_bytes_ += bytes;
  if (started_) {
    TrySend();
  }
}

int64_t TcpSender::AppBytesAvailable() const {
  int64_t avail = task_bytes_ > 0 ? task_bytes_ : std::numeric_limits<int64_t>::max();
  if (app_limit_bps_ > 0) {
    // CBR application: bytes produced since the current task began (re-anchored by
    // AddTask), with a small initial burst allowance.
    const TimeNs elapsed = sim_->Now() - app_base_time_;
    const int64_t produced =
        app_base_bytes_ +
        static_cast<int64_t>(static_cast<double>(app_limit_bps_) / 8e9 *
                             static_cast<double>(elapsed)) +
        4 * config_.mss;
    avail = std::min(avail, produced);
  }
  return avail;
}

void TcpSender::TrySend() {
  if (!started_ || Done()) {
    return;
  }
  const int64_t window = std::min<int64_t>(static_cast<int64_t>(cwnd_), config_.receive_window);
  const int64_t app_avail = AppBytesAvailable();
  bool sent = false;
  while (snd_nxt_ - snd_una_ + config_.mss <= window && snd_nxt_ + config_.mss <= app_avail) {
    EmitSegment(snd_nxt_, config_.mss, /*is_retransmit=*/false);
    snd_nxt_ += config_.mss;
    sent = true;
  }
  // Tail segment of a finite task (shorter than MSS).
  if (task_bytes_ > 0 && snd_nxt_ < task_bytes_ && snd_nxt_ + config_.mss > task_bytes_ &&
      task_bytes_ <= app_avail && snd_nxt_ - snd_una_ + (task_bytes_ - snd_nxt_) <= window) {
    EmitSegment(snd_nxt_, static_cast<int>(task_bytes_ - snd_nxt_), false);
    snd_nxt_ = task_bytes_;
    sent = true;
  }
  if (sent) {
    ArmRto();
  }
  // Application-limited: wake up when the CBR source has produced another segment.
  if (app_limit_bps_ > 0 && snd_nxt_ + config_.mss > app_avail &&
      (task_bytes_ == 0 || snd_nxt_ < task_bytes_)) {
    if (app_event_ == sim::kInvalidEventId) {
      const TimeNs wait =
          static_cast<TimeNs>(8e9 * config_.mss / static_cast<double>(app_limit_bps_));
      app_event_ = sim_->Schedule(wait, [this] {
        app_event_ = sim::kInvalidEventId;
        TrySend();
      });
    }
  }
}

int TcpSender::RetransmitPayload(int64_t seq) const {
  if (task_bytes_ > 0) {
    return static_cast<int>(std::min<int64_t>(config_.mss, task_bytes_ - seq));
  }
  return config_.mss;
}

void TcpSender::EmitSegment(int64_t seq, int payload, bool is_retransmit) {
  PacketPtr p =
      MakeSegment(*pool_, addr_, Proto::kTcpData, payload + kIpTcpHeaderBytes, sim_->Now());
  p->src = addr_.sender;
  p->dst = addr_.receiver;
  p->seq = seq;
  p->end_seq = seq + payload;
  if (!is_retransmit && rtt_seq_ < 0) {
    rtt_seq_ = seq + payload;
    rtt_sent_at_ = sim_->Now();
  }
  if (is_retransmit) {
    ++retransmits_;
    if (rtt_seq_ >= 0 && seq < rtt_seq_) {
      rtt_seq_ = -1;  // Karn: invalidate the sample covering retransmitted data.
    }
  }
  send_(p);
}

void TcpSender::HandlePacket(const PacketPtr& packet) {
  if (packet->proto != Proto::kTcpAck) {
    return;
  }
  const int64_t ack = packet->ack;
  if (ack > snd_una_) {
    const int64_t newly_acked = ack - snd_una_;
    snd_una_ = ack;
    dupacks_ = 0;

    if (rtt_seq_ >= 0 && ack >= rtt_seq_) {
      UpdateRtt(sim_->Now() - rtt_sent_at_);
      rtt_seq_ = -1;
    }

    if (in_recovery_) {
      if (ack >= recover_) {
        in_recovery_ = false;
        cwnd_ = ssthresh_;
      } else {
        // NewReno partial ack: retransmit the next hole, deflate by acked bytes.
        EmitSegment(snd_una_, RetransmitPayload(snd_una_), /*is_retransmit=*/true);
        cwnd_ = std::max(cwnd_ - static_cast<double>(newly_acked) + config_.mss,
                         static_cast<double>(config_.mss));
      }
    } else if (cwnd_ < ssthresh_) {
      cwnd_ += config_.mss;  // Slow start.
    } else {
      cwnd_ += static_cast<double>(config_.mss) * config_.mss / cwnd_;  // AIMD.
    }

    if (Done()) {
      completion_time_ = sim_->Now();
      DisarmRto();
      if (on_task_complete_) {
        on_task_complete_();  // May AddTask() a follow-up transfer reentrantly.
      }
      return;
    }
    if (FlightSize() > 0) {
      ArmRto();
    } else {
      DisarmRto();
    }
    TrySend();
    return;
  }
  // Duplicate ack.
  if (FlightSize() > 0) {
    ++dupacks_;
    if (!in_recovery_ && dupacks_ == config_.dupack_threshold) {
      EnterFastRecovery();
    } else if (in_recovery_) {
      cwnd_ += config_.mss;  // Inflate during recovery.
      TrySend();
    }
  }
}

void TcpSender::EnterFastRecovery() {
  in_recovery_ = true;
  recover_ = snd_nxt_;
  ssthresh_ = std::max(static_cast<double>(FlightSize()) / 2.0,
                       2.0 * static_cast<double>(config_.mss));
  cwnd_ = ssthresh_ + 3.0 * config_.mss;
  EmitSegment(snd_una_, RetransmitPayload(snd_una_), /*is_retransmit=*/true);
  ArmRto();
}

// Fires when the scheduled event reaches the front of the queue; the logical deadline
// may have moved forward since (every ack re-arms without touching the event), so
// revalidate and chase the deadline instead of acting on a stale expiry.
void TcpSender::OnRtoTimer() {
  rto_event_ = sim::kInvalidEventId;
  if (rto_deadline_ < 0) {
    return;  // Disarmed while the event was in flight.
  }
  if (sim_->Now() < rto_deadline_) {
    rto_event_at_ = rto_deadline_;
    rto_event_ = sim_->ScheduleAt(rto_deadline_, [this] { OnRtoTimer(); });
    return;
  }
  rto_deadline_ = -1;
  OnRto();
}

void TcpSender::OnRto() {
  if (Done() || FlightSize() <= 0) {
    return;
  }
  ++timeouts_;
  ssthresh_ = std::max(static_cast<double>(FlightSize()) / 2.0,
                       2.0 * static_cast<double>(config_.mss));
  cwnd_ = config_.mss;
  in_recovery_ = false;
  dupacks_ = 0;
  snd_nxt_ = snd_una_;  // Go-back-N: acks re-open the window.
  rto_ = std::min(rto_ * 2, config_.max_rto);
  const int payload = RetransmitPayload(snd_una_);
  EmitSegment(snd_una_, payload, /*is_retransmit=*/true);
  snd_nxt_ = snd_una_ + payload;
  ArmRto();
}

void TcpSender::ArmRto() {
  rto_deadline_ = sim_->Now() + rto_;
  if (rto_event_ == sim::kInvalidEventId) {
    rto_event_at_ = rto_deadline_;
    rto_event_ = sim_->ScheduleAt(rto_deadline_, [this] { OnRtoTimer(); });
  } else if (rto_deadline_ < rto_event_at_) {
    // Rare: the RTO estimate shrank enough that the pending event would fire late.
    // Every other re-arm leaves the event alone and lets OnRtoTimer chase the deadline.
    sim_->Cancel(rto_event_);
    rto_event_at_ = rto_deadline_;
    rto_event_ = sim_->ScheduleAt(rto_deadline_, [this] { OnRtoTimer(); });
  }
}

void TcpSender::DisarmRto() {
  // Lazy: the pending event (if any) fires as a no-op and releases itself.
  rto_deadline_ = -1;
}

void TcpSender::UpdateRtt(TimeNs sample) {
  if (on_rtt_sample_) {
    on_rtt_sample_(sample);
  }
  if (srtt_ == 0) {
    srtt_ = sample;
    rttvar_ = sample / 2;
  } else {
    const TimeNs err = sample > srtt_ ? sample - srtt_ : srtt_ - sample;
    rttvar_ = (3 * rttvar_ + err) / 4;
    srtt_ = (7 * srtt_ + sample) / 8;
  }
  rto_ = std::clamp(srtt_ + 4 * rttvar_, config_.min_rto, config_.max_rto);
}

TcpReceiver::TcpReceiver(sim::Simulator* sim, PacketPool* pool, TcpConfig config,
                         FlowAddress addr, SendFn send, DeliverFn deliver)
    : sim_(sim),
      pool_(pool),
      config_(config),
      addr_(addr),
      send_(std::move(send)),
      deliver_(std::move(deliver)) {}

void TcpReceiver::HandlePacket(const PacketPtr& packet) {
  if (packet->proto != Proto::kTcpData) {
    return;
  }
  if (packet->end_seq <= rcv_nxt_) {
    ++dup_segments_;
    SendAck();  // Re-ack old data immediately.
    return;
  }
  if (packet->seq > rcv_nxt_) {
    // Hole: buffer and send an immediate duplicate ack. Sorted-vector insert; the
    // buffer holds one entry per outstanding hole (a handful), and keeps its capacity.
    const auto it = std::lower_bound(
        out_of_order_.begin(), out_of_order_.end(), packet->seq,
        [](const std::pair<int64_t, int64_t>& e, int64_t seq) { return e.first < seq; });
    if (it != out_of_order_.end() && it->first == packet->seq) {
      it->second = std::max(it->second, packet->end_seq);
    } else {
      out_of_order_.insert(it, {packet->seq, packet->end_seq});
    }
    SendAck();
    return;
  }
  // In-order (possibly overlapping) segment.
  const int64_t before = rcv_nxt_;
  rcv_nxt_ = packet->end_seq;
  size_t consumed = 0;
  while (consumed < out_of_order_.size() && out_of_order_[consumed].first <= rcv_nxt_) {
    rcv_nxt_ = std::max(rcv_nxt_, out_of_order_[consumed].second);
    ++consumed;
  }
  if (consumed > 0) {
    out_of_order_.erase(out_of_order_.begin(),
                        out_of_order_.begin() + static_cast<std::ptrdiff_t>(consumed));
  }
  if (deliver_) {
    deliver_(rcv_nxt_ - before);
  }
  ++unacked_segments_;
  const bool filled_hole = !out_of_order_.empty();
  if (unacked_segments_ >= config_.ack_every || filled_hole) {
    SendAck();
  } else {
    ArmDelack();
  }
}

void TcpReceiver::SendAck() {
  delack_deadline_ = -1;  // Lazy disarm; a pending timer event fires as a no-op.
  unacked_segments_ = 0;
  PacketPtr p = MakeSegment(*pool_, addr_, Proto::kTcpAck, kIpTcpHeaderBytes, sim_->Now());
  p->src = addr_.receiver;
  p->dst = addr_.sender;
  p->ack = rcv_nxt_;
  ++acks_sent_;
  send_(p);
}

void TcpReceiver::ArmDelack() {
  if (delack_deadline_ >= 0) {
    return;  // Already armed; the deadline anchors to the first unacked segment.
  }
  delack_deadline_ = sim_->Now() + config_.delayed_ack_timeout;
  if (delack_event_ == sim::kInvalidEventId) {
    delack_event_ = sim_->ScheduleAt(delack_deadline_, [this] { OnDelackTimer(); });
  }
  // else: a pending (possibly disarmed-no-op) event exists; it was scheduled for an
  // earlier deadline, so it fires first, revalidates, and chases this deadline.
}

void TcpReceiver::OnDelackTimer() {
  delack_event_ = sim::kInvalidEventId;
  if (delack_deadline_ < 0) {
    return;  // An ack already went out; nothing to do.
  }
  if (sim_->Now() < delack_deadline_) {
    delack_event_ = sim_->ScheduleAt(delack_deadline_, [this] { OnDelackTimer(); });
    return;
  }
  delack_deadline_ = -1;
  if (unacked_segments_ > 0) {
    SendAck();
  }
}

}  // namespace tbf::net
