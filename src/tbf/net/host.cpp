#include "tbf/net/host.h"

namespace tbf::net {

WirelessHost::WirelessHost(sim::Simulator* sim, mac::Medium* medium, NodeId id,
                           std::unique_ptr<rateadapt::RateController> rates, Demux* demux,
                           size_t queue_limit)
    : sim_(sim),
      id_(id),
      rates_(std::move(rates)),
      demux_(demux),
      queue_limit_(queue_limit),
      entity_(medium, id, this, this) {}

void WirelessHost::SendPacket(PacketPtr packet) {
  if (queue_.size() >= queue_limit_) {
    ++drops_;
    return;
  }
  queue_.PushBack(std::move(packet));
  if (sim_->Now() >= uplink_paused_until_) {
    entity_.NotifyBacklog();
  }
}

std::optional<mac::MacFrame> WirelessHost::NextFrame() {
  if (queue_.empty() || sim_->Now() < uplink_paused_until_) {
    return std::nullopt;
  }
  PacketPtr p = queue_.PopFront();
  // Infrastructure mode: all uplink frames are MAC-addressed to the AP, which relays.
  return mac::MakeDataFrame(id_, kApId, std::move(p), rates_->CurrentRate(kApId));
}

void WirelessHost::OnTxComplete(const mac::MacFrame&, bool success, int attempts, TimeNs) {
  rates_->OnTxResult(kApId, success, attempts);
}

void WirelessHost::OnFrameReceived(const mac::MacFrame& frame) {
  if (frame.packet != nullptr && demux_ != nullptr) {
    demux_->Deliver(id_, frame.packet);
  }
}

void WirelessHost::PauseUplinkUntil(TimeNs when) {
  if (when <= uplink_paused_until_) {
    return;
  }
  uplink_paused_until_ = when;
  sim_->ScheduleAt(when, [this] {
    if (!queue_.empty()) {
      entity_.NotifyBacklog();
    }
  });
}

WiredHost::WiredHost(sim::Simulator* sim, NodeId id, Demux* demux, WiredLink* link)
    : sim_(sim), id_(id), demux_(demux), link_(link) {
  link_->SetTowardServer([this](PacketPtr p) { demux_->Deliver(id_, p); });
  (void)sim_;
}

void WiredHost::SendPacket(PacketPtr packet) { link_->SendTowardAp(std::move(packet)); }

}  // namespace tbf::net
