// Simplified TCP Reno/NewReno, sufficient for the paper's phenomena.
//
// What matters for reproducing the paper:
//  * ack clocking - data segments are released by returning acks, so delaying a flow's
//    acks at the AP throttles its sender (TBR's uplink lever, paper 4.1);
//  * delayed acks (every 2nd segment) - sets the data:ack airtime ratio that the measured
//    baseline throughputs embed;
//  * slow start / congestion avoidance / fast retransmit / RTO - loss recovery against
//    drop-tail queues at the AP and client interfaces.
// Sequence numbers are byte-granular; segments are MSS-sized (1460 B payload -> 1500 B IP).
#ifndef TBF_NET_TCP_H_
#define TBF_NET_TCP_H_

#include <functional>
#include <utility>
#include <vector>

#include "tbf/net/demux.h"
#include "tbf/net/packet.h"
#include "tbf/sim/simulator.h"
#include "tbf/util/units.h"

namespace tbf::net {

struct TcpConfig {
  int mss = kDefaultMss;
  int64_t receive_window = 64 * 1024;
  int initial_cwnd_segments = 2;
  int dupack_threshold = 3;
  TimeNs initial_rto = Ms(1000);
  TimeNs min_rto = Ms(200);
  TimeNs max_rto = Sec(8);
  TimeNs delayed_ack_timeout = Ms(40);
  int ack_every = 2;  // Delayed acks: one ack per this many full segments.
};

// Identifies one end-to-end flow; wlan_client drives AP-side accounting.
struct FlowAddress {
  int flow_id = 0;
  NodeId sender = kInvalidNodeId;
  NodeId receiver = kInvalidNodeId;
  NodeId wlan_client = kInvalidNodeId;
};

class TcpSender : public PacketHandler {
 public:
  using SendFn = std::function<void(PacketPtr)>;
  // Invoked each time a finite task finishes (its final byte is cumulatively acked).
  using TaskDoneFn = std::function<void()>;
  // Invoked with every raw RTT sample (Karn-filtered: first transmissions only), before
  // smoothing - the per-flow latency meters consume the sample distribution, not srtt.
  using RttSampleFn = std::function<void(TimeNs sample)>;

  // Segments (data and retransmissions) are drawn from `pool`, which must outlive the
  // sender; in steady state emission is allocation-free (freelist reuse).
  TcpSender(sim::Simulator* sim, PacketPool* pool, TcpConfig config, FlowAddress addr,
            SendFn send);

  // Application model. task_bytes == 0 means an unbounded (fluid-model) transfer.
  void SetTaskBytes(int64_t bytes) { task_bytes_ = bytes; }
  // Cap the application's supply rate (paper Table 4's bottleneck emulation). 0 = off.
  void SetAppLimitBps(BitRate bps) { app_limit_bps_ = bps; }
  void SetOnTaskComplete(TaskDoneFn fn) { on_task_complete_ = std::move(fn); }
  void SetRttSampleFn(RttSampleFn fn) { on_rtt_sample_ = std::move(fn); }

  // Appends another finite transfer of `bytes` to this connection (back-to-back tasks
  // on a persistent connection: the sequence space and congestion state carry over).
  // Transmission resumes immediately if the previous task had completed.
  void AddTask(int64_t bytes);

  void Start(TimeNs at = 0);

  // PacketHandler - receives acks.
  void HandlePacket(const PacketPtr& packet) override;

  bool Started() const { return started_; }
  bool Done() const { return task_bytes_ > 0 && snd_una_ >= task_bytes_; }
  // Completion of the most recently finished task; -1 if none finished yet.
  TimeNs completion_time() const { return completion_time_; }
  int64_t bytes_acked() const { return snd_una_; }
  int64_t retransmits() const { return retransmits_; }
  int64_t timeouts() const { return timeouts_; }
  double cwnd_bytes() const { return cwnd_; }
  TimeNs srtt() const { return srtt_; }

 private:
  void TrySend();
  void EmitSegment(int64_t seq, int payload, bool is_retransmit);
  // MSS clamped to the task boundary: retransmissions near the end of a finite task
  // must not resend phantom bytes past task_bytes_ (they would count as delivered and
  // shift every subsequent AddTask task).
  int RetransmitPayload(int64_t seq) const;
  void EnterFastRecovery();
  void OnRto();
  void OnRtoTimer();
  void ArmRto();
  void DisarmRto();
  void UpdateRtt(TimeNs sample);
  int64_t AppBytesAvailable() const;
  int64_t FlightSize() const { return snd_nxt_ - snd_una_; }

  sim::Simulator* sim_;
  PacketPool* pool_;
  TcpConfig config_;
  FlowAddress addr_;
  SendFn send_;
  TaskDoneFn on_task_complete_;
  RttSampleFn on_rtt_sample_;

  bool started_ = false;
  // Cumulative task target in the connection's byte-sequence space (grown by AddTask).
  int64_t task_bytes_ = 0;
  BitRate app_limit_bps_ = 0;
  TimeNs start_time_ = 0;
  // App-limited production anchor: the application has produced app_base_bytes_ plus
  // app_limit_bps_ worth of the time since app_base_time_. AddTask re-anchors so idle
  // gaps between tasks do not accrue supply credit.
  int64_t app_base_bytes_ = 0;
  TimeNs app_base_time_ = 0;
  TimeNs completion_time_ = -1;

  int64_t snd_una_ = 0;
  int64_t snd_nxt_ = 0;
  double cwnd_ = 0;
  double ssthresh_ = 0;
  int dupacks_ = 0;
  bool in_recovery_ = false;
  int64_t recover_ = 0;

  // RTT estimation (Karn: only first transmissions are sampled).
  int64_t rtt_seq_ = -1;
  TimeNs rtt_sent_at_ = 0;
  TimeNs srtt_ = 0;
  TimeNs rttvar_ = 0;
  TimeNs rto_;
  // Lazy RTO: ArmRto only moves the logical deadline; the single scheduled event fires
  // and revalidates against it (rescheduling forward if acks pushed it out) instead of
  // paying a Cancel+Schedule on every ack. -1 = disarmed.
  TimeNs rto_deadline_ = -1;
  sim::EventId rto_event_ = sim::kInvalidEventId;
  TimeNs rto_event_at_ = -1;  // Fire time of rto_event_ while one is pending.
  sim::EventId app_event_ = sim::kInvalidEventId;

  int64_t retransmits_ = 0;
  int64_t timeouts_ = 0;
};

class TcpReceiver : public PacketHandler {
 public:
  using SendFn = std::function<void(PacketPtr)>;
  // Called with the count of newly in-order payload bytes.
  using DeliverFn = std::function<void(int64_t bytes)>;

  // Acks are drawn from `pool` (same lifetime contract as TcpSender's).
  TcpReceiver(sim::Simulator* sim, PacketPool* pool, TcpConfig config, FlowAddress addr,
              SendFn send, DeliverFn deliver = nullptr);

  // PacketHandler - receives data segments.
  void HandlePacket(const PacketPtr& packet) override;

  int64_t bytes_received() const { return rcv_nxt_; }
  int64_t acks_sent() const { return acks_sent_; }
  int64_t dup_segments() const { return dup_segments_; }

 private:
  void SendAck();
  void ArmDelack();
  void OnDelackTimer();

  sim::Simulator* sim_;
  PacketPool* pool_;
  TcpConfig config_;
  FlowAddress addr_;
  SendFn send_;
  DeliverFn deliver_;

  int64_t rcv_nxt_ = 0;
  // Out-of-order holes, sorted by seq: {seq, end_seq}. A handful of entries at most
  // (one per loss burst), and the vector keeps its capacity across loss episodes, so
  // segment processing performs no heap allocation in steady state - unlike the
  // node-based map it replaces, which allocated on every buffered hole.
  std::vector<std::pair<int64_t, int64_t>> out_of_order_;
  int unacked_segments_ = 0;
  // Lazy delayed-ack timer, same deadline-revalidation pattern as the sender's RTO:
  // sending an ack just clears the deadline and lets the pending event fire as a no-op,
  // removing the per-segment Cancel traffic. -1 = disarmed.
  TimeNs delack_deadline_ = -1;
  sim::EventId delack_event_ = sim::kInvalidEventId;
  int64_t acks_sent_ = 0;
  int64_t dup_segments_ = 0;
};

}  // namespace tbf::net

#endif  // TBF_NET_TCP_H_
