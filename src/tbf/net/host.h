// Wireless client hosts and the wired server host.
//
// A WirelessHost owns one DCF station, a drop-tail uplink interface queue and a rate
// controller; transports bound to the host emit packets through SendPacket() and receive
// through the shared Demux. The WiredHost hangs off the backbone link.
#ifndef TBF_NET_HOST_H_
#define TBF_NET_HOST_H_

#include <memory>

#include "tbf/mac/medium.h"
#include "tbf/net/demux.h"
#include "tbf/net/wired.h"
#include "tbf/rateadapt/rate_controller.h"
#include "tbf/sim/simulator.h"

namespace tbf::net {

class WirelessHost : public mac::FrameProvider, public mac::FrameSink {
 public:
  WirelessHost(sim::Simulator* sim, mac::Medium* medium, NodeId id,
               std::unique_ptr<rateadapt::RateController> rates, Demux* demux,
               size_t queue_limit = 50);

  WirelessHost(const WirelessHost&) = delete;
  WirelessHost& operator=(const WirelessHost&) = delete;

  NodeId id() const { return id_; }

  // Transport output: queue a packet for uplink transmission to the AP.
  void SendPacket(PacketPtr packet);

  // mac::FrameProvider.
  std::optional<mac::MacFrame> NextFrame() override;
  void OnTxComplete(const mac::MacFrame& frame, bool success, int attempts,
                    TimeNs airtime) override;

  // mac::FrameSink - downlink receptions are handed to the transport demux.
  void OnFrameReceived(const mac::MacFrame& frame) override;

  rateadapt::RateController& rates() { return *rates_; }
  mac::DcfEntity& entity() { return entity_; }
  size_t queued() const { return queue_.size(); }
  int64_t drops() const { return drops_; }

  // TBR client-agent hook (paper 4.1): while paused, the host does not offer uplink
  // frames to its MAC. Used only when the optional client cooperation mode is enabled.
  void PauseUplinkUntil(TimeNs when);

 private:
  sim::Simulator* sim_;
  NodeId id_;
  std::unique_ptr<rateadapt::RateController> rates_;
  Demux* demux_;
  size_t queue_limit_;
  PacketFifo queue_;  // Intrusive drop-tail interface queue of pooled packets.
  int64_t drops_ = 0;
  TimeNs uplink_paused_until_ = 0;
  mac::DcfEntity entity_;
};

class WiredHost {
 public:
  WiredHost(sim::Simulator* sim, NodeId id, Demux* demux, WiredLink* link);

  NodeId id() const { return id_; }

  // Transport output: send a packet toward the AP over the backbone.
  void SendPacket(PacketPtr packet);

 private:
  sim::Simulator* sim_;
  NodeId id_;
  Demux* demux_;
  WiredLink* link_;
};

}  // namespace tbf::net

#endif  // TBF_NET_HOST_H_
