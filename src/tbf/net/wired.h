// Full-duplex wired backbone link between the AP and the distribution system.
//
// Models serialization at a configured rate plus fixed propagation delay, per direction,
// with a drop-tail queue. Default parameters (100 Mbps, 500 us) make the wireless hop the
// bottleneck, as in the paper's testbed; benches override the delay to model WAN paths.
#ifndef TBF_NET_WIRED_H_
#define TBF_NET_WIRED_H_

#include <functional>

#include "tbf/net/packet.h"
#include "tbf/sim/simulator.h"
#include "tbf/util/units.h"

namespace tbf::net {

class WiredLink {
 public:
  using DeliverFn = std::function<void(PacketPtr)>;

  WiredLink(sim::Simulator* sim, BitRate rate = Mbps(100), TimeNs delay = Us(500),
            size_t queue_limit = 1000)
      : sim_(sim), rate_(rate), delay_(delay), queue_limit_(queue_limit) {}

  void SetTowardServer(DeliverFn fn) { toward_server_.deliver = std::move(fn); }
  void SetTowardAp(DeliverFn fn) { toward_ap_.deliver = std::move(fn); }

  void SendTowardServer(PacketPtr p) { Send(toward_server_, std::move(p)); }
  void SendTowardAp(PacketPtr p) { Send(toward_ap_, std::move(p)); }

  int64_t drops() const { return drops_; }

 private:
  // Serialization is tracked as a busy-until timestamp instead of a pump event per
  // packet: an idle-link send costs exactly one event (the delivery), and only a
  // genuinely backlogged direction runs a drain chain - on an uncongested backbone
  // (the common case: 100 Mbps wired vs a ~6 Mbps wireless hop) this halves the
  // event-kernel traffic the wired hop generates.
  struct Direction {
    DeliverFn deliver;
    PacketFifo queue;
    TimeNs busy_until = 0;
    bool drain_scheduled = false;
  };

  void Send(Direction& dir, PacketPtr p) {
    if (sim_->Now() >= dir.busy_until && !dir.drain_scheduled) {
      Transmit(dir, std::move(p));  // Link idle and nothing queued ahead.
      return;
    }
    if (dir.queue.size() >= queue_limit_) {
      ++drops_;
      return;
    }
    // MAC duplicate deliveries (uplink data whose ACK was lost) can forward the same
    // packet again while its first copy still waits in this queue; enqueue a clone.
    p = CloneIfQueued(std::move(p));
    dir.queue.PushBack(std::move(p));
    if (!dir.drain_scheduled) {
      dir.drain_scheduled = true;
      sim_->ScheduleAt(dir.busy_until, [this, &dir] { Drain(dir); });
    }
  }

  void Transmit(Direction& dir, PacketPtr p) {
    const TimeNs tx_time = TransmissionTime(p->size_bytes, rate_);
    dir.busy_until = sim_->Now() + tx_time;
    // The in-flight reference rides as a raw detached handle so the callback capture
    // stays trivially copyable (no refcount traffic or relocate thunk in the event slab).
    Packet* raw = p.Detach();
    sim_->Schedule(tx_time + delay_, [&dir, raw] {
      PacketPtr delivered = PacketPtr::Adopt(raw);
      if (dir.deliver) {
        dir.deliver(std::move(delivered));
      }
    });
  }

  // Fires when the serialization ahead of the queued backlog ends; FIFO order is
  // preserved because Send never bypasses a scheduled drain.
  void Drain(Direction& dir) {
    dir.drain_scheduled = false;
    if (dir.queue.empty()) {
      return;
    }
    Transmit(dir, dir.queue.PopFront());
    if (!dir.queue.empty()) {
      dir.drain_scheduled = true;
      sim_->ScheduleAt(dir.busy_until, [this, &dir] { Drain(dir); });
    }
  }

  sim::Simulator* sim_;
  BitRate rate_;
  TimeNs delay_;
  size_t queue_limit_;
  Direction toward_server_;
  Direction toward_ap_;
  int64_t drops_ = 0;
};

}  // namespace tbf::net

#endif  // TBF_NET_WIRED_H_
