// Full-duplex wired backbone link between the AP and the distribution system.
//
// Models serialization at a configured rate plus fixed propagation delay, per direction,
// with a drop-tail queue. Default parameters (100 Mbps, 500 us) make the wireless hop the
// bottleneck, as in the paper's testbed; benches override the delay to model WAN paths.
#ifndef TBF_NET_WIRED_H_
#define TBF_NET_WIRED_H_

#include <deque>
#include <functional>

#include "tbf/net/packet.h"
#include "tbf/sim/simulator.h"
#include "tbf/util/units.h"

namespace tbf::net {

class WiredLink {
 public:
  using DeliverFn = std::function<void(PacketPtr)>;

  WiredLink(sim::Simulator* sim, BitRate rate = Mbps(100), TimeNs delay = Us(500),
            size_t queue_limit = 1000)
      : sim_(sim), rate_(rate), delay_(delay), queue_limit_(queue_limit) {}

  void SetTowardServer(DeliverFn fn) { toward_server_.deliver = std::move(fn); }
  void SetTowardAp(DeliverFn fn) { toward_ap_.deliver = std::move(fn); }

  void SendTowardServer(PacketPtr p) { Send(toward_server_, std::move(p)); }
  void SendTowardAp(PacketPtr p) { Send(toward_ap_, std::move(p)); }

  int64_t drops() const { return drops_; }

 private:
  struct Direction {
    DeliverFn deliver;
    std::deque<PacketPtr> queue;
    bool busy = false;
  };

  void Send(Direction& dir, PacketPtr p) {
    if (dir.queue.size() >= queue_limit_) {
      ++drops_;
      return;
    }
    dir.queue.push_back(std::move(p));
    if (!dir.busy) {
      StartTx(dir);
    }
  }

  void StartTx(Direction& dir) {
    if (dir.queue.empty()) {
      dir.busy = false;
      return;
    }
    dir.busy = true;
    PacketPtr p = std::move(dir.queue.front());
    dir.queue.pop_front();
    const TimeNs tx_time = TransmissionTime(p->size_bytes, rate_);
    sim_->Schedule(tx_time + delay_, [&dir, p] {
      if (dir.deliver) {
        dir.deliver(p);
      }
    });
    sim_->Schedule(tx_time, [this, &dir] { StartTx(dir); });
  }

  sim::Simulator* sim_;
  BitRate rate_;
  TimeNs delay_;
  size_t queue_limit_;
  Direction toward_server_;
  Direction toward_ap_;
  int64_t drops_ = 0;
};

}  // namespace tbf::net

#endif  // TBF_NET_WIRED_H_
