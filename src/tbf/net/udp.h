// Constant-bit-rate UDP source and a counting sink.
#ifndef TBF_NET_UDP_H_
#define TBF_NET_UDP_H_

#include <algorithm>
#include <functional>

#include "tbf/net/demux.h"
#include "tbf/net/packet.h"
#include "tbf/net/tcp.h"  // FlowAddress.
#include "tbf/sim/random.h"
#include "tbf/sim/simulator.h"
#include "tbf/util/logging.h"

namespace tbf::net {

// Emits IP datagrams back to back at `rate_bps`. Set the rate above the wireless
// capacity to model a saturating sender (the paper's UDP experiments).
//
// With `task_payload_bytes > 0` the source is a finite transfer: it emits full
// `packet_bytes` datagrams and trims the final one to the remainder, so exactly
// task_payload_bytes of payload leave the source (no floor-division under-send for
// sizes that are not a multiple of the payload). AddTask() appends another transfer
// to the same flow - seq numbering continues and emission resumes if it had drained -
// which is how scenario task sequences and on/off sources restart the next flow.
class UdpSource {
 public:
  using SendFn = std::function<void(PacketPtr)>;

  // Datagrams are drawn from `pool`, which must outlive the source. `rng`, when
  // provided, jitters each inter-packet gap by +-5% (mean preserved); this prevents
  // phase lock between multiple CBR sources sharing a drop-tail queue.
  UdpSource(sim::Simulator* sim, PacketPool* pool, FlowAddress addr, SendFn send,
            BitRate rate_bps, int packet_bytes = 1500, int64_t task_payload_bytes = 0,
            sim::Rng* rng = nullptr)
      : sim_(sim),
        pool_(pool),
        addr_(addr),
        send_(std::move(send)),
        rate_bps_(rate_bps),
        packet_bytes_(packet_bytes),
        target_payload_(task_payload_bytes),
        rng_(rng) {
    TBF_CHECK(packet_bytes_ > kIpUdpHeaderBytes);
  }

  void Start(TimeNs at = 0) {
    sim_->ScheduleAt(at, [this] {
      ticking_ = true;
      Tick();
    });
  }

  // Queues another finite transfer of `payload_bytes` on this flow and resumes emission
  // if the previous task had drained. Only meaningful for bounded sources.
  void AddTask(int64_t payload_bytes) {
    TBF_CHECK(payload_bytes > 0 && target_payload_ > 0);
    target_payload_ += payload_bytes;
    if (started_ && !ticking_) {
      ticking_ = true;
      sim_->Schedule(0, [this] { Tick(); });
    }
  }

  int64_t packets_sent() const { return seq_; }

 private:
  void Tick() {
    started_ = true;
    if (target_payload_ > 0 && sent_payload_ >= target_payload_) {
      ticking_ = false;  // Drained; AddTask re-enters here.
      return;
    }
    int payload = packet_bytes_ - kIpUdpHeaderBytes;
    if (target_payload_ > 0) {
      payload = static_cast<int>(
          std::min<int64_t>(payload, target_payload_ - sent_payload_));
    }
    PacketPtr p = MakeUdpPacket(*pool_, addr_.sender, addr_.receiver, addr_.wlan_client,
                                addr_.flow_id, payload + kIpUdpHeaderBytes, seq_++,
                                sim_->Now());
    sent_payload_ += payload;
    send_(p);
    // CBR pacing: the gap covers the datagram just sent at the configured rate.
    TimeNs gap = static_cast<TimeNs>(8e9 * (payload + kIpUdpHeaderBytes) /
                                     static_cast<double>(rate_bps_));
    if (rng_ != nullptr) {
      gap = static_cast<TimeNs>(static_cast<double>(gap) *
                                (0.95 + 0.1 * rng_->UniformDouble()));
    }
    sim_->Schedule(gap, [this] { Tick(); });
  }

  sim::Simulator* sim_;
  PacketPool* pool_;
  FlowAddress addr_;
  SendFn send_;
  BitRate rate_bps_;
  int packet_bytes_;
  int64_t target_payload_;  // Cumulative payload bound across tasks; 0 = unbounded.
  sim::Rng* rng_;
  int64_t sent_payload_ = 0;
  int64_t seq_ = 0;
  bool started_ = false;
  bool ticking_ = false;  // A Tick event is pending (emission has not drained).
};

// Counts delivered UDP payload, deduplicating MAC-level retransmission copies (delivery is
// in-order in this stack, so a monotone high-water mark suffices).
class UdpSink : public PacketHandler {
 public:
  using DeliverFn = std::function<void(int64_t bytes)>;

  explicit UdpSink(DeliverFn deliver = nullptr) : deliver_(std::move(deliver)) {}

  void HandlePacket(const PacketPtr& packet) override {
    if (packet->proto != Proto::kUdp || packet->seq < next_seq_) {
      return;
    }
    next_seq_ = packet->seq + 1;
    ++packets_;
    bytes_ += packet->PayloadBytes();
    if (deliver_) {
      deliver_(packet->PayloadBytes());
    }
  }

  int64_t packets() const { return packets_; }
  int64_t payload_bytes() const { return bytes_; }

 private:
  DeliverFn deliver_;
  int64_t next_seq_ = 0;
  int64_t packets_ = 0;
  int64_t bytes_ = 0;
};

}  // namespace tbf::net

#endif  // TBF_NET_UDP_H_
