// Constant-bit-rate UDP source and a counting sink.
#ifndef TBF_NET_UDP_H_
#define TBF_NET_UDP_H_

#include <functional>

#include "tbf/net/demux.h"
#include "tbf/net/packet.h"
#include "tbf/net/tcp.h"  // FlowAddress.
#include "tbf/sim/simulator.h"

namespace tbf::net {

// Emits `packet_bytes` IP datagrams back to back at `rate_bps`. Set the rate above the
// wireless capacity to model a saturating sender (the paper's UDP experiments).
class UdpSource {
 public:
  using SendFn = std::function<void(PacketPtr)>;

  // `rng`, when provided, jitters each inter-packet gap by +-5% (mean preserved); this
  // prevents phase lock between multiple CBR sources sharing a drop-tail queue.
  UdpSource(sim::Simulator* sim, FlowAddress addr, SendFn send, BitRate rate_bps,
            int packet_bytes = 1500, int64_t max_packets = 0, sim::Rng* rng = nullptr)
      : sim_(sim),
        addr_(addr),
        send_(std::move(send)),
        interval_(static_cast<TimeNs>(8e9 * packet_bytes / static_cast<double>(rate_bps))),
        packet_bytes_(packet_bytes),
        max_packets_(max_packets),
        rng_(rng) {}

  void Start(TimeNs at = 0) {
    sim_->ScheduleAt(at, [this] { Tick(); });
  }

  int64_t packets_sent() const { return seq_; }

 private:
  void Tick() {
    if (max_packets_ > 0 && seq_ >= max_packets_) {
      return;
    }
    PacketPtr p = MakeUdpPacket(addr_.sender, addr_.receiver, addr_.wlan_client,
                                addr_.flow_id, packet_bytes_, seq_++, sim_->Now());
    send_(p);
    TimeNs gap = interval_;
    if (rng_ != nullptr) {
      gap = static_cast<TimeNs>(static_cast<double>(interval_) *
                                (0.95 + 0.1 * rng_->UniformDouble()));
    }
    sim_->Schedule(gap, [this] { Tick(); });
  }

  sim::Simulator* sim_;
  FlowAddress addr_;
  SendFn send_;
  TimeNs interval_;
  int packet_bytes_;
  int64_t max_packets_;
  sim::Rng* rng_;
  int64_t seq_ = 0;
};

// Counts delivered UDP payload, deduplicating MAC-level retransmission copies (delivery is
// in-order in this stack, so a monotone high-water mark suffices).
class UdpSink : public PacketHandler {
 public:
  using DeliverFn = std::function<void(int64_t bytes)>;

  explicit UdpSink(DeliverFn deliver = nullptr) : deliver_(std::move(deliver)) {}

  void HandlePacket(const PacketPtr& packet) override {
    if (packet->proto != Proto::kUdp || packet->seq < next_seq_) {
      return;
    }
    next_seq_ = packet->seq + 1;
    ++packets_;
    bytes_ += packet->PayloadBytes();
    if (deliver_) {
      deliver_(packet->PayloadBytes());
    }
  }

  int64_t packets() const { return packets_; }
  int64_t payload_bytes() const { return bytes_; }

 private:
  DeliverFn deliver_;
  int64_t next_seq_ = 0;
  int64_t packets_ = 0;
  int64_t bytes_ = 0;
};

}  // namespace tbf::net

#endif  // TBF_NET_UDP_H_
