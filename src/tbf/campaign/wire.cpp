#include "tbf/campaign/wire.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace tbf::campaign {
namespace {

// ---------------------------------------------------------------------------
// JSON emit/parse. The grammar is the tiny subset the protocol uses: one flat
// object of "key": value pairs, values either integers or strings. Strings
// escape \" \\ and control characters (as \u00XX); the parser accepts exactly
// that set plus the standard short escapes.
// ---------------------------------------------------------------------------

void AppendJsonString(std::string* out, std::string_view s) {
  out->push_back('"');
  for (const char c : s) {
    const auto u = static_cast<unsigned char>(c);
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (u < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", u);
      *out += buf;
    } else {
      out->push_back(c);
    }
  }
  out->push_back('"');
}

class JsonParser {
 public:
  explicit JsonParser(std::string_view in) : in_(in) {}

  bool ParseObject(Message* out) {
    SkipWs();
    if (!Consume('{')) {
      return false;
    }
    SkipWs();
    if (Consume('}')) {
      return AtEnd();
    }
    for (;;) {
      SkipWs();
      std::string key;
      if (!ParseString(&key)) {
        return false;
      }
      SkipWs();
      if (!Consume(':')) {
        return false;
      }
      SkipWs();
      if (!ParseValue(key, out)) {
        return false;
      }
      SkipWs();
      if (Consume(',')) {
        continue;
      }
      if (Consume('}')) {
        return AtEnd();
      }
      return false;
    }
  }

 private:
  bool AtEnd() {
    SkipWs();
    return pos_ == in_.size();
  }

  void SkipWs() {
    while (pos_ < in_.size() &&
           (in_[pos_] == ' ' || in_[pos_] == '\t' || in_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < in_.size() && in_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) {
      return false;
    }
    out->clear();
    while (pos_ < in_.size()) {
      const char c = in_[pos_++];
      if (c == '"') {
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return false;  // Raw control characters are not valid JSON.
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= in_.size()) {
        return false;
      }
      const char esc = in_[pos_++];
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          out->push_back(esc);
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'u': {
          if (in_.size() - pos_ < 4) {
            return false;
          }
          int code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = in_[pos_++];
            int digit;
            if (h >= '0' && h <= '9') {
              digit = h - '0';
            } else if (h >= 'a' && h <= 'f') {
              digit = h - 'a' + 10;
            } else if (h >= 'A' && h <= 'F') {
              digit = h - 'A' + 10;
            } else {
              return false;
            }
            code = code * 16 + digit;
          }
          if (code > 0xff) {
            return false;  // The writer only emits \u00XX; keep the parser closed.
          }
          out->push_back(static_cast<char>(code));
          break;
        }
        default:
          return false;
      }
    }
    return false;  // Unterminated.
  }

  bool ParseInt(int64_t* out) {
    const size_t start = pos_;
    if (pos_ < in_.size() && in_[pos_] == '-') {
      ++pos_;
    }
    const size_t digits_from = pos_;
    while (pos_ < in_.size() && in_[pos_] >= '0' && in_[pos_] <= '9') {
      ++pos_;
    }
    if (pos_ == digits_from || pos_ - digits_from > 19) {
      return false;
    }
    int64_t value = 0;
    for (size_t i = digits_from; i < pos_; ++i) {
      value = value * 10 + (in_[i] - '0');
    }
    *out = in_[start] == '-' ? -value : value;
    return true;
  }

  bool ParseValue(const std::string& key, Message* out) {
    if (key == "type") {
      return ParseString(&out->type);
    }
    if (key == "data") {
      return ParseString(&out->data);
    }
    if (key == "name") {
      return ParseString(&out->name);
    }
    if (key == "error") {
      return ParseString(&out->error);
    }
    if (key == "job") {
      return ParseInt(&out->job);
    }
    if (key == "len") {
      return ParseInt(&out->len);
    }
    if (key == "crc") {
      return ParseInt(&out->crc);
    }
    if (key == "protocol") {
      return ParseInt(&out->protocol);
    }
    if (key == "ms") {
      return ParseInt(&out->ms);
    }
    return false;  // Single writer: unknown keys are protocol violations.
  }

  std::string_view in_;
  size_t pos_ = 0;
};

}  // namespace

std::string FormatMessage(const Message& message) {
  std::string out = "{\"type\":";
  AppendJsonString(&out, message.type);
  auto put_int = [&out](const char* key, int64_t value) {
    out += ",\"";
    out += key;
    out += "\":";
    out += std::to_string(value);
  };
  auto put_str = [&out](const char* key, const std::string& value) {
    out += ",\"";
    out += key;
    out += "\":";
    AppendJsonString(&out, value);
  };
  if (message.protocol >= 0) {
    put_int("protocol", message.protocol);
  }
  if (message.job >= 0) {
    put_int("job", message.job);
  }
  if (message.len >= 0) {
    put_int("len", message.len);
  }
  if (message.crc >= 0) {
    put_int("crc", message.crc);
  }
  if (message.ms >= 0) {
    put_int("ms", message.ms);
  }
  if (!message.name.empty()) {
    put_str("name", message.name);
  }
  if (!message.error.empty()) {
    put_str("error", message.error);
  }
  if (!message.data.empty()) {
    put_str("data", message.data);
  }
  out.push_back('}');
  return out;
}

bool ParseMessage(std::string_view line, Message* out) {
  if (line.size() > kMaxLineBytes) {
    return false;
  }
  Message parsed;
  JsonParser parser(line);
  if (!parser.ParseObject(&parsed) || parsed.type.empty()) {
    return false;
  }
  *out = std::move(parsed);
  return true;
}

int ListenUnix(const std::string& path, std::string* error) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    *error = "socket path too long: " + path;
    return -1;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    *error = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  ::unlink(path.c_str());
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    *error = std::string("bind ") + path + ": " + std::strerror(errno);
    ::close(fd);
    return -1;
  }
  if (::listen(fd, 64) != 0) {
    *error = std::string("listen ") + path + ": " + std::strerror(errno);
    ::close(fd);
    return -1;
  }
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  return fd;
}

int ConnectUnix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    return -1;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return -1;
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool WaitReadable(int fd, int timeout_ms) {
  pollfd pfd{};
  pfd.fd = fd;
  pfd.events = POLLIN;
  for (;;) {
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc > 0) {
      return true;
    }
    if (rc == 0) {
      return false;
    }
    if (errno != EINTR) {
      return true;  // Let the subsequent read surface the error.
    }
  }
}

bool SendLine(int fd, std::string_view line) {
  std::string framed(line);
  framed.push_back('\n');
  size_t sent = 0;
  while (sent < framed.size()) {
    const ssize_t n =
        ::send(fd, framed.data() + sent, framed.size() - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EINTR)) {
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // Peer is slow; block until writable (bounded by the peer's own deadline
      // handling - a dead peer eventually yields EPIPE/ECONNRESET here).
      pollfd pfd{};
      pfd.fd = fd;
      pfd.events = POLLOUT;
      ::poll(&pfd, 1, 1000);
      continue;
    }
    return false;
  }
  return true;
}

bool LineReader::Drain(int fd) {
  char chunk[65536];
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), MSG_DONTWAIT);
    if (n > 0) {
      buffer_.append(chunk, static_cast<size_t>(n));
      if (buffer_.size() > kMaxLineBytes) {
        overlong_ = true;
        return false;
      }
      continue;
    }
    if (n == 0) {
      return false;  // EOF.
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return true;
    }
    if (errno == EINTR) {
      continue;
    }
    return false;
  }
}

bool LineReader::NextLine(std::string* line) {
  const size_t nl = buffer_.find('\n', scan_from_);
  if (nl == std::string::npos) {
    scan_from_ = buffer_.size();
    return false;
  }
  line->assign(buffer_, 0, nl);
  buffer_.erase(0, nl + 1);
  scan_from_ = 0;
  return true;
}

}  // namespace tbf::campaign
