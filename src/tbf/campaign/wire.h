// Line-delimited JSON wire protocol for the campaign service.
//
// One message per line, one JSON object per message, flat keys only. Binary payloads
// (job specs, Results blobs - campaign/codec.h) ride inside messages as lowercase hex
// in "data", always accompanied by "len" (raw byte count) and "crc" (CRC32 of the raw
// bytes). A receiver accepts a payload only when the hex decodes, the length matches,
// and the CRC matches - then hands the bytes to the schema decoder. Anything less is a
// protocol violation: the message is rejected and the sender treated as faulty.
//
//   worker -> coordinator                  coordinator -> worker
//   {"type":"hello","protocol":1,          {"type":"job","job":i,"len":..,
//    "name":"w1"}                            "crc":..,"data":"<hex>"}
//   {"type":"request"}                     {"type":"wait","ms":50}
//   {"type":"heartbeat","job":i}           {"type":"shutdown"}
//   {"type":"result","job":i,"len":..,
//    "crc":..,"data":"<hex>"}
//   {"type":"error","job":i,"error":".."}
//
// The parser here is deliberately minimal and strict: flat objects, string keys,
// integer or string values, the exact escape set the writer emits. A malformed line
// never throws and never partially applies - ParseMessage returns false and the
// connection owner decides (the coordinator drops the peer; a worker reconnects).
#ifndef TBF_CAMPAIGN_WIRE_H_
#define TBF_CAMPAIGN_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace tbf::campaign {

inline constexpr int kProtocolVersion = 1;
// A line larger than this is a protocol violation (the largest legitimate payloads -
// hex-encoded Results blobs - sit far below it).
inline constexpr size_t kMaxLineBytes = 64u << 20;

struct Message {
  std::string type;        // Required.
  int64_t job = -1;        // Job index; -1 = absent.
  int64_t len = -1;        // Raw payload byte count; -1 = absent.
  int64_t crc = -1;        // CRC32 of the raw payload; -1 = absent.
  int64_t protocol = -1;   // hello.
  int64_t ms = -1;         // wait.
  std::string data;        // Hex payload.
  std::string name;        // Worker name (hello).
  std::string error;       // Worker-side job failure diagnostic.

  friend bool operator==(const Message&, const Message&) = default;
};

// Emits the message as one JSON line (no trailing newline). Only set fields appear,
// in a fixed key order, so equal messages serialize identically.
std::string FormatMessage(const Message& message);

// Strict parse of one line. Returns false on any malformed input; *out is only
// written on success. Unknown keys are rejected (there is exactly one writer).
bool ParseMessage(std::string_view line, Message* out);

// ---------------------------------------------------------------------------
// Socket plumbing (local/unix sockets; the protocol itself is transport-agnostic).
// ---------------------------------------------------------------------------

// Creates, binds, and listens on a unix-domain socket, unlinking any stale file at
// `path` first. Returns the nonblocking listening fd, or -1 (diagnostic in *error).
int ListenUnix(const std::string& path, std::string* error);

// Blocking connect to `path`. Returns the fd or -1.
int ConnectUnix(const std::string& path);

// poll() for readability. Returns true when `fd` is readable (or closed - the read
// will observe EOF), false on timeout.
bool WaitReadable(int fd, int timeout_ms);

// Writes `line` plus '\n', looping over partial writes, suppressing SIGPIPE.
// Returns false on any error (peer gone).
bool SendLine(int fd, std::string_view line);

// Incremental line assembly over a byte stream: feed whatever bytes are available,
// pop complete lines. Tracks protocol violations (overlong lines) and EOF.
class LineReader {
 public:
  // Drains currently-available bytes from a readable fd into the buffer.
  // Returns false when the peer closed or errored (buffered lines stay poppable).
  bool Drain(int fd);

  // Pops the next complete line (without the '\n') into *line.
  bool NextLine(std::string* line);

  bool overlong() const { return overlong_; }

 private:
  std::string buffer_;
  size_t scan_from_ = 0;
  bool overlong_ = false;
};

}  // namespace tbf::campaign

#endif  // TBF_CAMPAIGN_WIRE_H_
