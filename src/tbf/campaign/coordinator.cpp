#include "tbf/campaign/coordinator.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <thread>
#include <utility>

#include "tbf/campaign/codec.h"
#include "tbf/util/logging.h"

namespace tbf::campaign {
namespace {

// WAL lines reuse the wire Message grammar: one strict JSON object per line.
//   header:  {"type":"wal","protocol":1,"job":<job count>,"crc":<manifest fingerprint>}
//   record:  {"type":"done","job":i,"len":..,"crc":..,"data":"<hex>"}
// Records are self-checking (len + CRC over the decoded hex), so a torn tail from a
// killed coordinator fails validation at exactly one line and everything before it is
// still trusted.
constexpr char kWalType[] = "wal";
constexpr char kDoneType[] = "done";

}  // namespace

Coordinator::Coordinator(Manifest manifest, CoordinatorConfig config)
    : manifest_(std::move(manifest)), config_(std::move(config)) {
  if (std::string err = ValidateManifest(manifest_); !err.empty()) {
    throw CampaignError("invalid manifest: " + err);
  }
  if (manifest_.jobs.empty()) {
    throw CampaignError("empty manifest");
  }
  jobs_.resize(manifest_.jobs.size());
  job_blobs_.reserve(manifest_.jobs.size());
  for (const CampaignJob& job : manifest_.jobs) {
    job_blobs_.push_back(EncodeJob(job));
  }
}

Coordinator::~Coordinator() {
  for (auto& conn : conns_) {
    if (conn->fd >= 0) {
      ::close(conn->fd);
    }
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    if (!config_.socket_path.empty()) {
      ::unlink(config_.socket_path.c_str());
    }
  }
  if (wal_ != nullptr) {
    std::fclose(wal_);
  }
}

void Coordinator::LoadWal() {
  std::FILE* f = std::fopen(config_.wal_path.c_str(), "rb");
  std::string contents;
  if (f != nullptr) {
    char chunk[65536];
    size_t n;
    while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
      contents.append(chunk, n);
    }
    std::fclose(f);
  }

  const uint32_t fingerprint = ManifestFingerprint(manifest_);
  bool saw_header = false;
  size_t valid_bytes = 0;  // Prefix of the file known good; replay stops at the
                           // first line that fails any check (torn tail).
  size_t pos = 0;
  while (pos < contents.size()) {
    const size_t nl = contents.find('\n', pos);
    if (nl == std::string::npos) {
      break;  // Unterminated final line: a write was cut short mid-record.
    }
    const std::string_view line(contents.data() + pos, nl - pos);
    Message msg;
    if (!ParseMessage(line, &msg)) {
      break;
    }
    if (!saw_header) {
      if (msg.type != kWalType || msg.protocol != kProtocolVersion) {
        break;
      }
      // A log written for a different manifest must never be merged into this one.
      if (msg.crc != static_cast<int64_t>(fingerprint) ||
          msg.job != static_cast<int64_t>(jobs_.size())) {
        throw CampaignError("completion log " + config_.wal_path +
                            " belongs to a different manifest");
      }
      saw_header = true;
    } else {
      if (msg.type != kDoneType || msg.job < 0 ||
          msg.job >= static_cast<int64_t>(jobs_.size())) {
        break;
      }
      std::string blob;
      if (!HexDecode(msg.data, &blob) ||
          msg.len != static_cast<int64_t>(blob.size()) ||
          msg.crc != static_cast<int64_t>(Crc32(blob))) {
        break;
      }
      scenario::Results decoded;
      if (!DecodeResults(blob, &decoded)) {
        break;
      }
      if (jobs_[msg.job].status != JobStatus::kDone) {
        jobs_[msg.job].status = JobStatus::kDone;
        jobs_[msg.job].blob = std::move(blob);
        ++done_count_;
        ++stats_.resumed;
      }
    }
    pos = nl + 1;
    valid_bytes = pos;
  }

  wal_ = std::fopen(config_.wal_path.c_str(), saw_header ? "r+b" : "wb");
  if (wal_ == nullptr) {
    throw CampaignError("cannot open completion log " + config_.wal_path + ": " +
                        std::strerror(errno));
  }
  if (saw_header) {
    // Drop the torn tail so new records start on a clean line boundary.
    if (::ftruncate(::fileno(wal_), static_cast<off_t>(valid_bytes)) != 0) {
      throw CampaignError("cannot truncate completion log " + config_.wal_path);
    }
    std::fseek(wal_, 0, SEEK_END);
  } else {
    Message header;
    header.type = kWalType;
    header.protocol = kProtocolVersion;
    header.job = static_cast<int64_t>(jobs_.size());
    header.crc = static_cast<int64_t>(fingerprint);
    const std::string line = FormatMessage(header);
    std::fwrite(line.data(), 1, line.size(), wal_);
    std::fputc('\n', wal_);
    std::fflush(wal_);
  }
}

void Coordinator::AppendWalRecord(int64_t job, const std::string& blob) {
  if (wal_ == nullptr) {
    return;
  }
  Message record;
  record.type = kDoneType;
  record.job = job;
  record.len = static_cast<int64_t>(blob.size());
  record.crc = static_cast<int64_t>(Crc32(blob));
  record.data = HexEncode(blob);
  const std::string line = FormatMessage(record);
  std::fwrite(line.data(), 1, line.size(), wal_);
  std::fputc('\n', wal_);
  // Flushed before the job is counted done: a crash after this point re-reads the
  // record on resume; a crash before it re-runs the job. Either way the archive is
  // the same bytes.
  std::fflush(wal_);
}

void Coordinator::CompleteJob(int64_t job, std::string blob, bool from_wal) {
  JobState& state = jobs_[job];
  if (state.status == JobStatus::kDone) {
    return;  // Duplicate completion (e.g. a slow worker racing a re-dispatch).
  }
  if (!from_wal) {
    AppendWalRecord(job, blob);
  }
  state.status = JobStatus::kDone;
  state.blob = std::move(blob);
  ++done_count_;
  ++stats_.completed;
}

void Coordinator::RequeueJob(int64_t job, const char* why) {
  JobState& state = jobs_[job];
  if (state.status != JobStatus::kDispatched) {
    return;
  }
  if (state.attempts >= config_.max_attempts) {
    throw CampaignError("job #" + std::to_string(job) + " failed " +
                        std::to_string(state.attempts) + " attempts (last: " + why +
                        ")");
  }
  state.status = JobStatus::kPending;
  // Exponential backoff keeps a flapping worker pool from hammering the same job.
  int64_t backoff = config_.backoff_base_ms;
  for (int i = 1; i < state.attempts && backoff < config_.backoff_max_ms; ++i) {
    backoff *= 2;
  }
  backoff = std::min<int64_t>(backoff, config_.backoff_max_ms);
  state.not_before = Clock::now() + std::chrono::milliseconds(backoff);
  ++stats_.redispatched;
}

int64_t Coordinator::NextReadyJob() const {
  const Clock::time_point now = Clock::now();
  for (size_t i = 0; i < jobs_.size(); ++i) {
    if (jobs_[i].status == JobStatus::kPending && jobs_[i].not_before <= now) {
      return static_cast<int64_t>(i);
    }
  }
  return -1;
}

void Coordinator::HandleRequest(Conn& conn) {
  if (conn.job >= 0) {
    DropConn(conn, "request while holding a job");
    return;
  }
  const int64_t job = NextReadyJob();
  if (job < 0) {
    Message wait;
    wait.type = "wait";
    wait.ms = std::max(1, config_.backoff_base_ms);
    SendLine(conn.fd, FormatMessage(wait));
    return;
  }
  JobState& state = jobs_[job];
  state.status = JobStatus::kDispatched;
  ++state.attempts;
  Message dispatch;
  dispatch.type = "job";
  dispatch.job = job;
  dispatch.len = static_cast<int64_t>(job_blobs_[job].size());
  dispatch.crc = static_cast<int64_t>(Crc32(job_blobs_[job]));
  dispatch.data = HexEncode(job_blobs_[job]);
  if (!SendLine(conn.fd, FormatMessage(dispatch))) {
    RequeueJob(job, "send failed");
    DropConn(conn, "send failed");
    return;
  }
  conn.job = job;
  conn.dispatched_at = Clock::now();
  conn.last_seen = conn.dispatched_at;
  ++stats_.dispatched;
}

void Coordinator::HandleResult(Conn& conn, const Message& msg) {
  // Everything about this payload is untrusted until proven otherwise. Any
  // mismatch discards the payload, re-queues the job, and drops the connection -
  // a peer that sent one bad byte cannot be trusted with the next job either.
  const char* reject = nullptr;
  std::string blob;
  if (msg.job != conn.job) {
    reject = "result for a job this connection does not hold";
  } else if (!HexDecode(msg.data, &blob)) {
    reject = "payload is not valid hex";
  } else if (msg.len != static_cast<int64_t>(blob.size())) {
    reject = "payload length mismatch";
  } else if (msg.crc != static_cast<int64_t>(Crc32(blob))) {
    reject = "payload checksum mismatch";
  } else {
    scenario::Results decoded;
    if (!DecodeResults(blob, &decoded)) {
      reject = "payload fails schema validation";
    }
  }
  if (reject != nullptr) {
    ++stats_.rejected_payloads;
    const int64_t job = conn.job;
    if (job >= 0) {
      RequeueJob(job, reject);
    }
    conn.job = -1;
    DropConn(conn, reject);
    return;
  }
  const int64_t job = conn.job;
  conn.job = -1;
  conn.last_seen = Clock::now();
  CompleteJob(job, std::move(blob), /*from_wal=*/false);
}

void Coordinator::HandleLine(Conn& conn, const std::string& line) {
  Message msg;
  if (!ParseMessage(line, &msg)) {
    if (conn.job >= 0) {
      RequeueJob(conn.job, "malformed message");
      conn.job = -1;
    }
    DropConn(conn, "malformed message");
    return;
  }
  conn.last_seen = Clock::now();
  if (!conn.saw_hello) {
    if (msg.type != "hello" || msg.protocol != kProtocolVersion) {
      DropConn(conn, "bad hello");
      return;
    }
    conn.saw_hello = true;
    conn.name = msg.name;
    last_worker_seen_ = Clock::now();
    return;
  }
  if (msg.type == "request") {
    HandleRequest(conn);
  } else if (msg.type == "heartbeat") {
    if (msg.job != conn.job) {
      if (conn.job >= 0) {
        RequeueJob(conn.job, "heartbeat for wrong job");
        conn.job = -1;
      }
      DropConn(conn, "heartbeat for wrong job");
    }
  } else if (msg.type == "result") {
    HandleResult(conn, msg);
  } else if (msg.type == "error") {
    // An honest failure report: the worker ran the job and it threw. The job is
    // re-queued (another attempt may hit a healthier worker), the connection kept.
    ++stats_.worker_errors;
    if (conn.job >= 0) {
      RequeueJob(conn.job, msg.error.empty() ? "worker error" : msg.error.c_str());
      conn.job = -1;
    }
  } else {
    if (conn.job >= 0) {
      RequeueJob(conn.job, "unknown message type");
      conn.job = -1;
    }
    DropConn(conn, "unknown message type");
  }
}

void Coordinator::DropConn(Conn& conn, const char* why) {
  (void)why;
  if (conn.fd < 0) {
    return;
  }
  if (conn.job >= 0) {
    ++stats_.worker_disconnects;
    RequeueJob(conn.job, "worker disconnected");
    conn.job = -1;
  }
  ::close(conn.fd);
  conn.fd = -1;
}

void Coordinator::SweepDeadlines() {
  const Clock::time_point now = Clock::now();
  for (auto& conn : conns_) {
    if (conn->fd < 0 || conn->job < 0) {
      continue;
    }
    if (now - conn->dispatched_at >
        std::chrono::milliseconds(config_.job_timeout_ms)) {
      ++stats_.deadline_timeouts;
      const int64_t job = conn->job;
      conn->job = -1;
      RequeueJob(job, "job deadline exceeded");
      DropConn(*conn, "job deadline exceeded");
    } else if (now - conn->last_seen >
               std::chrono::milliseconds(config_.heartbeat_timeout_ms)) {
      ++stats_.heartbeat_timeouts;
      const int64_t job = conn->job;
      conn->job = -1;
      RequeueJob(job, "heartbeat timeout");
      DropConn(*conn, "heartbeat timeout");
    }
  }
}

void Coordinator::RunOneJobLocally(int64_t job) {
  JobState& state = jobs_[job];
  state.status = JobStatus::kDispatched;
  ++state.attempts;
  ++stats_.local_runs;
  // The local path produces bytes through the exact same encoder as a worker, so
  // archives cannot diverge based on where a job happened to run.
  const scenario::Results results = sweep::RunScenarioJob(ToScenarioJob(manifest_.jobs[job]));
  CompleteJob(job, EncodeResults(results), /*from_wal=*/false);
}

int Coordinator::PollTimeoutMs() const {
  // Short enough to notice heartbeat lapses and backoff expiry promptly.
  int timeout = std::max(10, config_.backoff_base_ms);
  timeout = std::min(timeout, std::max(10, config_.heartbeat_timeout_ms / 4));
  return timeout;
}

bool Coordinator::Run() {
  if (!config_.wal_path.empty()) {
    LoadWal();
  }

  if (!config_.socket_path.empty()) {
    std::string error;
    listen_fd_ = ListenUnix(config_.socket_path, &error);
    if (listen_fd_ < 0) {
      throw CampaignError(error);
    }
  }
  last_worker_seen_ = Clock::now();

  while (!AllJobsDone()) {
    if (config_.halt_after_jobs >= 0 &&
        stats_.completed >= config_.halt_after_jobs) {
      return false;  // Simulated kill: no shutdown messages, no archive.
    }

    // Pure local mode: no socket to serve, just run the manifest.
    if (listen_fd_ < 0) {
      const int64_t job = NextReadyJob();
      if (job < 0) {
        // Only backoff gates can make a job not-ready here; wait the shortest one out.
        Clock::time_point wake = Clock::time_point::max();
        for (const JobState& s : jobs_) {
          if (s.status == JobStatus::kPending) {
            wake = std::min(wake, s.not_before);
          }
        }
        TBF_CHECK(wake != Clock::time_point::max());
        std::this_thread::sleep_until(wake);
        continue;
      }
      RunOneJobLocally(job);
      continue;
    }

    // Socket mode: poll the listener and every live connection.
    std::vector<pollfd> pfds;
    pfds.push_back({listen_fd_, POLLIN, 0});
    std::vector<Conn*> polled;
    for (auto& conn : conns_) {
      if (conn->fd >= 0) {
        pfds.push_back({conn->fd, POLLIN, 0});
        polled.push_back(conn.get());
      }
    }
    const int rc = ::poll(pfds.data(), pfds.size(), PollTimeoutMs());
    if (rc < 0 && errno != EINTR) {
      throw CampaignError(std::string("poll: ") + std::strerror(errno));
    }

    if (rc > 0 && (pfds[0].revents & POLLIN) != 0) {
      for (;;) {
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) {
          break;
        }
        auto conn = std::make_unique<Conn>();
        conn->fd = fd;
        conn->last_seen = Clock::now();
        conns_.push_back(std::move(conn));
      }
    }
    if (rc > 0) {
      for (size_t i = 0; i < polled.size(); ++i) {
        Conn& conn = *polled[i];
        if ((pfds[i + 1].revents & (POLLIN | POLLHUP | POLLERR)) == 0 ||
            conn.fd < 0) {
          continue;
        }
        const bool alive = conn.reader.Drain(conn.fd);
        std::string line;
        while (conn.fd >= 0 && conn.reader.NextLine(&line)) {
          HandleLine(conn, line);
          if (config_.halt_after_jobs >= 0 &&
              stats_.completed >= config_.halt_after_jobs) {
            return false;
          }
        }
        if (conn.fd >= 0 && !alive) {
          DropConn(conn, conn.reader.overlong() ? "overlong line" : "peer closed");
        }
      }
    }

    SweepDeadlines();

    // Track worker presence for graceful degradation: any live, greeted
    // connection counts.
    bool have_worker = false;
    for (const auto& conn : conns_) {
      if (conn->fd >= 0 && conn->saw_hello) {
        have_worker = true;
        break;
      }
    }
    if (have_worker) {
      last_worker_seen_ = Clock::now();
    } else if (config_.local_fallback_after_ms >= 0 &&
               Clock::now() - last_worker_seen_ >
                   std::chrono::milliseconds(config_.local_fallback_after_ms)) {
      const int64_t job = NextReadyJob();
      if (job >= 0) {
        RunOneJobLocally(job);
        if (config_.halt_after_jobs >= 0 &&
            stats_.completed >= config_.halt_after_jobs) {
          return false;
        }
      }
    }

    // Reap closed connections.
    conns_.erase(std::remove_if(conns_.begin(), conns_.end(),
                                [](const std::unique_ptr<Conn>& c) {
                                  return c->fd < 0;
                                }),
                 conns_.end());
  }

  // Courtesy shutdown so idle workers exit instead of retrying a vanished socket.
  for (auto& conn : conns_) {
    if (conn->fd >= 0) {
      Message bye;
      bye.type = "shutdown";
      SendLine(conn->fd, FormatMessage(bye));
    }
  }
  return true;
}

std::string Coordinator::EncodeArchiveBytes() const {
  TBF_CHECK(AllJobsDone());
  std::vector<std::string> blobs;
  blobs.reserve(jobs_.size());
  for (const JobState& state : jobs_) {
    blobs.push_back(state.blob);
  }
  return EncodeArchive(blobs);
}

std::vector<scenario::Results> Coordinator::DecodedResults() const {
  TBF_CHECK(AllJobsDone());
  std::vector<scenario::Results> out;
  out.reserve(jobs_.size());
  for (const JobState& state : jobs_) {
    scenario::Results results;
    TBF_CHECK(DecodeResults(state.blob, &results));
    out.push_back(std::move(results));
  }
  return out;
}

std::string RunSerialArchive(const Manifest& manifest) {
  if (std::string err = ValidateManifest(manifest); !err.empty()) {
    throw CampaignError("invalid manifest: " + err);
  }
  std::vector<std::string> blobs;
  blobs.reserve(manifest.jobs.size());
  for (const CampaignJob& job : manifest.jobs) {
    blobs.push_back(EncodeResults(sweep::RunScenarioJob(ToScenarioJob(job))));
  }
  return EncodeArchive(blobs);
}

}  // namespace tbf::campaign
