#include "tbf/campaign/fault_injector.h"

namespace tbf::campaign {
namespace {

// SplitMix64: cheap, well-distributed, and stable across platforms - the decision
// stream must be identical wherever the worker runs.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

double UnitDraw(uint64_t seed, int64_t job_id, int execution, uint64_t salt) {
  uint64_t h = Mix(seed ^ salt);
  h = Mix(h ^ static_cast<uint64_t>(job_id));
  h = Mix(h ^ static_cast<uint64_t>(execution));
  return static_cast<double>(h >> 11) * 0x1.0p-53;  // [0, 1).
}

}  // namespace

FaultInjector::Fault FaultInjector::Decide(int64_t job_id) {
  const int execution = executions_[job_id]++;
  if (!plan_.repeat && execution > 0) {
    return Fault::kNone;
  }
  if (plan_.max_faults >= 0 && injected_ >= plan_.max_faults) {
    return Fault::kNone;
  }
  const double u = UnitDraw(plan_.seed, job_id, execution, 0x7c4f5d2b9e1a6083ull);
  double edge = plan_.crash;
  Fault fault = Fault::kNone;
  if (u < edge) {
    fault = Fault::kCrash;
  } else if (u < (edge += plan_.hang)) {
    fault = Fault::kHang;
  } else if (u < (edge += plan_.corrupt)) {
    fault = Fault::kCorrupt;
  } else if (u < (edge += plan_.truncate)) {
    fault = Fault::kTruncate;
  }
  if (fault != Fault::kNone) {
    ++injected_;
  }
  return fault;
}

void FaultInjector::Corrupt(std::string* payload, uint64_t key) {
  if (payload->empty()) {
    return;
  }
  for (int i = 0; i < 3; ++i) {
    const uint64_t h = Mix(key + static_cast<uint64_t>(i));
    const size_t pos = static_cast<size_t>(h % payload->size());
    // XOR with a nonzero mask always changes the byte, so the CRC check must fire.
    (*payload)[pos] = static_cast<char>((*payload)[pos] ^
                                        static_cast<char>(1 + ((h >> 32) & 0x7f)));
  }
}

void FaultInjector::Truncate(std::string* payload, uint64_t key) {
  if (payload->empty()) {
    return;
  }
  const uint64_t h = Mix(key);
  const size_t keep = static_cast<size_t>(h % payload->size());  // < size: drops >= 1.
  payload->resize(keep);
}

const char* FaultName(FaultInjector::Fault fault) {
  switch (fault) {
    case FaultInjector::Fault::kNone:
      return "none";
    case FaultInjector::Fault::kCrash:
      return "crash";
    case FaultInjector::Fault::kHang:
      return "hang";
    case FaultInjector::Fault::kCorrupt:
      return "corrupt";
    case FaultInjector::Fault::kTruncate:
      return "truncate";
  }
  return "?";
}

}  // namespace tbf::campaign
