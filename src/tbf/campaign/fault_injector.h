// Seeded, deterministic fault injection for the campaign service.
//
// Every failure path the coordinator claims to survive is exercised on demand rather
// than discovered in production: a FaultInjector embedded in a worker decides, per job
// execution, whether that worker will
//
//   kCrash    - drop the connection mid-job without a result (a SIGKILL'd or
//               OOM-killed worker, as seen from the coordinator),
//   kHang     - stop heartbeating and never produce the result (a wedged worker;
//               the coordinator's heartbeat deadline must fire),
//   kCorrupt  - send the result with flipped payload bytes under the original CRC
//               (a lying worker; CRC validation must reject and re-queue),
//   kTruncate - send fewer payload bytes than the advertised length (a torn write;
//               length validation must reject and re-queue).
//
// Decisions are a pure function of (seed, job id, how many times this worker has
// executed that job), so a given worker's fault schedule is reproducible regardless
// of dispatch interleaving. By default a (worker, job) pair faults at most once
// (`repeat = false`): re-execution after a fault is clean, so campaigns provably
// terminate while still faulting the configured fraction of first executions.
#ifndef TBF_CAMPAIGN_FAULT_INJECTOR_H_
#define TBF_CAMPAIGN_FAULT_INJECTOR_H_

#include <cstdint>
#include <map>
#include <string>

namespace tbf::campaign {

struct FaultPlan {
  uint64_t seed = 0;
  // Per-execution probabilities, applied in this precedence order; their sum must be
  // <= 1. All zero = no faults.
  double crash = 0.0;
  double hang = 0.0;
  double corrupt = 0.0;
  double truncate = 0.0;
  // When false (default), only the first execution of a job by this worker can fault.
  bool repeat = false;
  // Total fault budget for this worker; < 0 = unlimited.
  int max_faults = -1;
};

class FaultInjector {
 public:
  enum class Fault { kNone, kCrash, kHang, kCorrupt, kTruncate };

  explicit FaultInjector(FaultPlan plan) : plan_(plan) {}

  // Decides the fate of this worker's next execution of `job_id` and advances the
  // per-job execution counter.
  Fault Decide(int64_t job_id);

  // Deterministically flips three payload bytes (positions and masks keyed on `key`).
  // The payload must be non-empty.
  static void Corrupt(std::string* payload, uint64_t key);

  // Deterministically drops the payload's tail (at least one byte, keyed on `key`).
  static void Truncate(std::string* payload, uint64_t key);

  int faults_injected() const { return injected_; }

 private:
  FaultPlan plan_;
  std::map<int64_t, int> executions_;
  int injected_ = 0;
};

const char* FaultName(FaultInjector::Fault fault);

}  // namespace tbf::campaign

#endif  // TBF_CAMPAIGN_FAULT_INJECTOR_H_
