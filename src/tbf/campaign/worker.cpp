#include "tbf/campaign/worker.h"

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <string>
#include <thread>

#include "tbf/campaign/codec.h"
#include "tbf/campaign/manifest.h"
#include "tbf/campaign/wire.h"
#include "tbf/sweep/sweep_runner.h"

namespace tbf::campaign {
namespace {

// Outcome of running one job on the job thread.
struct JobOutcome {
  bool ok = false;
  std::string blob;   // EncodeResults bytes on success.
  std::string error;  // Diagnostic on failure.
};

// Runs the scenario on a side thread while the caller heartbeats, so liveness
// signalling never depends on the (arbitrarily long) scenario itself. Returns false
// if the connection died while heartbeating.
bool RunJobWithHeartbeats(int fd, int64_t job_id, const CampaignJob& job,
                          int heartbeat_interval_ms, JobOutcome* outcome) {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;

  std::thread runner([&] {
    JobOutcome local;
    try {
      const scenario::Results results =
          sweep::RunScenarioJob(ToScenarioJob(job));
      local.blob = EncodeResults(results);
      local.ok = true;
    } catch (const std::exception& e) {
      local.error = e.what();
    } catch (...) {
      local.error = "unknown exception";
    }
    std::lock_guard<std::mutex> lock(mu);
    *outcome = std::move(local);
    done = true;
    cv.notify_all();
  });

  bool connection_ok = true;
  {
    std::unique_lock<std::mutex> lock(mu);
    while (!done) {
      if (cv.wait_for(lock, std::chrono::milliseconds(heartbeat_interval_ms),
                      [&] { return done; })) {
        break;
      }
      lock.unlock();
      Message beat;
      beat.type = "heartbeat";
      beat.job = job_id;
      if (!SendLine(fd, FormatMessage(beat))) {
        connection_ok = false;  // Coordinator gone; finish the job, drop the result.
      }
      lock.lock();
    }
  }
  runner.join();
  return connection_ok;
}

// Blocks until a full line arrives (draining in WaitReadable-sized slices).
// Returns false on EOF/error/overlong.
bool ReadLine(int fd, LineReader* reader, std::string* line) {
  for (;;) {
    if (reader->NextLine(line)) {
      return true;
    }
    if (!WaitReadable(fd, 1000)) {
      continue;  // Idle is fine; the coordinator owns all deadlines.
    }
    if (!reader->Drain(fd)) {
      return reader->NextLine(line);  // Surface any final buffered line.
    }
  }
}

enum class SessionEnd { kShutdown, kDisconnected };

// One connection's lifetime: hello, then request/run/result until the coordinator
// says shutdown or the connection breaks.
SessionEnd RunSession(int fd, const WorkerConfig& config, FaultInjector* faults,
                      WorkerStats* stats) {
  Message hello;
  hello.type = "hello";
  hello.protocol = kProtocolVersion;
  hello.name = config.name;
  if (!SendLine(fd, FormatMessage(hello))) {
    return SessionEnd::kDisconnected;
  }

  LineReader reader;
  for (;;) {
    Message request;
    request.type = "request";
    if (!SendLine(fd, FormatMessage(request))) {
      return SessionEnd::kDisconnected;
    }
    std::string line;
    if (!ReadLine(fd, &reader, &line)) {
      return SessionEnd::kDisconnected;
    }
    Message msg;
    if (!ParseMessage(line, &msg)) {
      return SessionEnd::kDisconnected;  // Treat protocol damage as a dead peer.
    }
    if (msg.type == "shutdown") {
      return SessionEnd::kShutdown;
    }
    if (msg.type == "wait") {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(msg.ms > 0 ? msg.ms : 50));
      continue;
    }
    if (msg.type != "job") {
      return SessionEnd::kDisconnected;
    }

    // Validate the job payload exactly as the coordinator validates results: the
    // worker does not run bytes that fail the envelope or the schema.
    std::string blob;
    CampaignJob job;
    if (!HexDecode(msg.data, &blob) ||
        msg.len != static_cast<int64_t>(blob.size()) ||
        msg.crc != static_cast<int64_t>(Crc32(blob)) || !DecodeJob(blob, &job)) {
      return SessionEnd::kDisconnected;
    }

    const FaultInjector::Fault fault = faults->Decide(msg.job);
    if (fault == FaultInjector::Fault::kCrash) {
      ++stats->faults_injected;
      return SessionEnd::kDisconnected;  // Vanish mid-job, without a result.
    }
    if (fault == FaultInjector::Fault::kHang) {
      // Go silent: no heartbeats, no result. The coordinator's heartbeat deadline
      // fires and it drops us; we notice via the broken connection.
      ++stats->faults_injected;
      std::string discard;
      while (ReadLine(fd, &reader, &discard)) {
      }
      return SessionEnd::kDisconnected;
    }

    JobOutcome outcome;
    if (!RunJobWithHeartbeats(fd, msg.job, job, config.heartbeat_interval_ms,
                              &outcome)) {
      return SessionEnd::kDisconnected;
    }
    if (!outcome.ok) {
      ++stats->jobs_run;
      Message error;
      error.type = "error";
      error.job = msg.job;
      error.error = outcome.error;
      if (!SendLine(fd, FormatMessage(error))) {
        return SessionEnd::kDisconnected;
      }
      continue;
    }
    ++stats->jobs_run;

    // The envelope (len + crc) is computed over the honest bytes *before* any lying
    // mutation, so a corrupt fault ships a CRC mismatch and a truncate fault ships a
    // length mismatch - the two distinct validation failures the coordinator must
    // catch.
    Message result;
    result.type = "result";
    result.job = msg.job;
    result.len = static_cast<int64_t>(outcome.blob.size());
    result.crc = static_cast<int64_t>(Crc32(outcome.blob));
    if (fault == FaultInjector::Fault::kCorrupt) {
      ++stats->faults_injected;
      FaultInjector::Corrupt(&outcome.blob,
                             config.faults.seed ^ static_cast<uint64_t>(msg.job));
    } else if (fault == FaultInjector::Fault::kTruncate) {
      ++stats->faults_injected;
      FaultInjector::Truncate(&outcome.blob,
                              config.faults.seed ^ static_cast<uint64_t>(msg.job));
    }
    result.data = HexEncode(outcome.blob);
    if (!SendLine(fd, FormatMessage(result))) {
      return SessionEnd::kDisconnected;
    }
    ++stats->results_sent;
    if (fault == FaultInjector::Fault::kCorrupt ||
        fault == FaultInjector::Fault::kTruncate) {
      // The coordinator drops liars; reconnect as a fresh peer rather than waiting
      // to discover the closed socket mid-request.
      return SessionEnd::kDisconnected;
    }
  }
}

}  // namespace

WorkerStats RunWorker(const WorkerConfig& config) {
  WorkerStats stats;
  FaultInjector faults(config.faults);
  int consecutive_failures = 0;
  for (;;) {
    const int fd = ConnectUnix(config.socket_path);
    if (fd < 0) {
      if (++consecutive_failures > config.max_reconnects) {
        break;  // Coordinator gone for good (campaign presumably finished).
      }
      std::this_thread::sleep_for(
          std::chrono::milliseconds(config.reconnect_delay_ms));
      continue;
    }
    consecutive_failures = 0;
    const SessionEnd end = RunSession(fd, config, &faults, &stats);
    ::close(fd);
    if (end == SessionEnd::kShutdown) {
      break;
    }
    ++stats.reconnects;
    std::this_thread::sleep_for(
        std::chrono::milliseconds(config.reconnect_delay_ms));
  }
  stats.faults_injected = faults.faults_injected();
  return stats;
}

}  // namespace tbf::campaign
