// Binary wire/archive codec for campaign jobs and Results.
//
// The campaign protocol ships two payload kinds: job specs (coordinator -> worker) and
// Results (worker -> coordinator). Both use the same conventions:
//
//  - little-endian fixed-width integers; doubles travel as IEEE-754 bit patterns, so
//    decoding reconstructs *bitwise identical* values (the whole campaign acceptance
//    bar - merged distributed output byte-identical to a serial run - hangs on this);
//  - containers as u32 count + elements; enums as u32 with range checks on decode;
//  - quantile sketches via stats::QuantileSketch::SerializeTo/DeserializeFrom;
//  - every Decode* is a total function over arbitrary bytes: truncated, oversized, or
//    out-of-range input returns false, never UB - remote payloads are untrusted.
//
// Payload integrity on the wire is the transport envelope's job (length + CRC32 in
// wire.h); the decoders here are the schema check behind it. An archive is the
// campaign's canonical merged output: per-job Results blobs in manifest order plus a
// merged trailer (pooled sketches + totals), so `cmp` on two archives is the
// byte-identity acceptance test.
//
// Format v2 (windowed stats): jobs carry the StatsConfig, FlowResults carry the
// `exact` retention flag, and Results carry the three windowed meter series. Job and
// Results magics bumped ("CAJ2"/"CAR2") so v1 blobs fail decoding cleanly; archives
// keep their magic but bump the version field, and decoding a v1 archive throws
// CampaignError naming the stale version (an old archive is a user-facing artifact,
// not line noise - it deserves a diagnosis, not a silent false).
#ifndef TBF_CAMPAIGN_CODEC_H_
#define TBF_CAMPAIGN_CODEC_H_

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "tbf/campaign/manifest.h"
#include "tbf/scenario/results.h"

namespace tbf::campaign {

// A campaign-level failure: invalid manifest, completion log from a different
// manifest, a job that exhausted its attempt budget, or an archive from a codec
// version that predates the windowed stats format.
class CampaignError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// CRC-32 (IEEE 802.3 polynomial) of `data`.
uint32_t Crc32(std::string_view data);

// Lowercase hex <-> bytes. HexDecode returns false on odd length or non-hex digits.
std::string HexEncode(std::string_view bytes);
bool HexDecode(std::string_view hex, std::string* out);

std::string EncodeJob(const CampaignJob& job);
bool DecodeJob(std::string_view data, CampaignJob* out);

std::string EncodeResults(const scenario::Results& results);
bool DecodeResults(std::string_view data, scenario::Results* out);

// Archive = magic + per-job Results blobs (manifest order, each length+CRC framed) + a
// merged trailer with the cross-job pooled sketches and totals. `result_blobs[i]` must
// be EncodeResults output for job i; the trailer is recomputed from the blobs, so two
// archives built from equal blob sequences are byte-identical however the blobs were
// produced (serial in-process, distributed, or resumed).
// DecodeArchive/DecodeArchiveSummary return false on corrupt or truncated input, but
// throw CampaignError for a structurally sound archive whose version predates the
// windowed stats format (the message names the version found).
std::string EncodeArchive(const std::vector<std::string>& result_blobs);
bool DecodeArchive(std::string_view data, std::vector<scenario::Results>* out);

// The merged trailer, recomputed identically by every path that builds an archive.
struct MergedSummary {
  int64_t jobs = 0;
  int64_t tasks_completed = 0;
  int64_t mac_exchanges = 0;
  double aggregate_bps_sum = 0.0;
  stats::QuantileSketch rtt;
  stats::QuantileSketch ap_queue_delay;
  stats::QuantileSketch task_latency;

  friend bool operator==(const MergedSummary&, const MergedSummary&) = default;
};

MergedSummary MergeResults(const std::vector<scenario::Results>& results);
bool DecodeArchiveSummary(std::string_view data, MergedSummary* out);

}  // namespace tbf::campaign

#endif  // TBF_CAMPAIGN_CODEC_H_
