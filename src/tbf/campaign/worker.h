// Campaign worker: runs jobs served by a Coordinator, heartbeating while it works.
//
// A worker is a deliberately simple loop - connect, hello, request, run, result,
// repeat - because every robustness decision lives on the coordinator side. The
// worker's one liveness duty is the heartbeat: the scenario runs on a separate
// thread while the protocol thread keeps sending {"type":"heartbeat"} at a fixed
// cadence, so a long job is distinguishable from a wedged worker.
//
// A FaultPlan turns the worker into its own adversary for testing: on a faulted
// execution it drops the connection mid-job (crash), goes silent without a result
// (hang), or ships a payload with flipped/missing bytes (corrupt/truncate) that the
// coordinator must reject. Crash and hang tear down the connection; the worker then
// reconnects as a fresh peer, which is exactly how an externally restarted worker
// process looks.
#ifndef TBF_CAMPAIGN_WORKER_H_
#define TBF_CAMPAIGN_WORKER_H_

#include <cstdint>
#include <string>

#include "tbf/campaign/fault_injector.h"

namespace tbf::campaign {

struct WorkerConfig {
  std::string socket_path;
  std::string name = "worker";
  int heartbeat_interval_ms = 500;
  // Reconnect policy when the coordinator is unreachable or drops us.
  int reconnect_delay_ms = 100;
  int max_reconnects = 100;      // After this many consecutive failures, give up.
  FaultPlan faults;              // All-zero probabilities = an honest worker.
};

struct WorkerStats {
  int64_t jobs_run = 0;          // Scenarios actually executed to completion.
  int64_t results_sent = 0;
  int64_t faults_injected = 0;
  int64_t reconnects = 0;
};

// Runs the worker loop until the coordinator sends {"type":"shutdown"} or the
// reconnect budget is exhausted (both are normal exits - the coordinator may
// simply be gone because the campaign finished). Returns the stats.
WorkerStats RunWorker(const WorkerConfig& config);

}  // namespace tbf::campaign

#endif  // TBF_CAMPAIGN_WORKER_H_
