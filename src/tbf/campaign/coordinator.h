// Campaign coordinator: fault-tolerant distribution of a scenario manifest.
//
// The coordinator owns a manifest of deterministic, idempotent jobs and drives them
// all to completion across anonymous workers (campaign/worker.h) connected over a
// local socket - or, when no workers show up, by running jobs itself (graceful
// degradation to single-process mode). Robustness invariants, in the order they
// matter:
//
//  * A result is merged only after validation: hex decodes, length matches, CRC32
//    matches, the Results blob decodes against the schema, AND it answers the job
//    this connection was actually dispatched (anything else is discarded, the job
//    re-queued, and the connection dropped as faulty). A truncated or corrupt
//    payload can delay a campaign; it can never poison the output.
//  * Every dispatched job has two clocks running: a heartbeat deadline (worker must
//    keep proving liveness while the scenario runs) and an absolute per-job deadline.
//    Either expiring kills the connection and re-queues the job with exponential
//    backoff (base * 2^(attempt-1), capped) and a bounded attempt count - a job that
//    keeps failing takes the campaign down loudly (CampaignError) instead of
//    spinning forever.
//  * Completions go through a write-ahead log: the record (job id + length + CRC +
//    payload) is appended and flushed *before* the job is counted done, so a
//    coordinator killed at any instant resumes by re-running only jobs with no valid
//    record. A torn final record fails validation and is simply re-run - the log is
//    append-only and records are self-checking. Because jobs are deterministic, the
//    resumed campaign's archive is byte-identical to an uninterrupted one.
//  * Job identity is the manifest index, and the archive is assembled in manifest
//    order from the validated blobs - so the merged output of a fault-ridden
//    distributed run is byte-identical to a fault-free serial run (the repo's
//    standing determinism bar; tests/campaign_test.cpp and the CI smoke job hold it).
#ifndef TBF_CAMPAIGN_COORDINATOR_H_
#define TBF_CAMPAIGN_COORDINATOR_H_

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "tbf/campaign/codec.h"  // CampaignError.
#include "tbf/campaign/manifest.h"
#include "tbf/campaign/wire.h"
#include "tbf/scenario/results.h"

namespace tbf::campaign {

struct CoordinatorConfig {
  // Unix-socket path workers connect to. Empty = no socket: pure local mode.
  std::string socket_path;
  // Write-ahead completion log. Empty = no log (campaign is not resumable).
  std::string wal_path;

  // Re-dispatch policy.
  int max_attempts = 8;           // Dispatches per job before CampaignError.
  int job_timeout_ms = 60000;     // Absolute deadline per dispatch.
  int heartbeat_timeout_ms = 5000;
  int backoff_base_ms = 50;       // Exponential: base * 2^(attempt-1), capped below.
  int backoff_max_ms = 2000;

  // Graceful degradation: when no worker is connected for this long, the
  // coordinator starts running ready jobs itself (it keeps serving the socket, so
  // late workers still join). < 0 disables local execution entirely.
  int local_fallback_after_ms = 500;

  // Test hook ("kill -9 the coordinator after N completions"): when >= 0, Run()
  // returns false as soon as this many jobs have completed in this run, without
  // shutdown courtesies - exactly what a killed process looks like to workers.
  int halt_after_jobs = -1;
};

struct CoordinatorStats {
  int64_t completed = 0;           // Jobs completed this run (local + remote).
  int64_t resumed = 0;             // Jobs recovered from the completion log.
  int64_t dispatched = 0;          // Job messages sent to workers.
  int64_t redispatched = 0;        // Re-queues after any failure.
  int64_t rejected_payloads = 0;   // Results discarded by validation.
  int64_t worker_disconnects = 0;  // Connections that died holding a job.
  int64_t heartbeat_timeouts = 0;
  int64_t deadline_timeouts = 0;
  int64_t worker_errors = 0;       // Honest worker-side job failures reported.
  int64_t local_runs = 0;          // Jobs the coordinator ran itself.
};

class Coordinator {
 public:
  Coordinator(Manifest manifest, CoordinatorConfig config);
  ~Coordinator();

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  // Drives the campaign to completion. Returns true when every job is done; false
  // only via the halt_after_jobs test hook. Throws CampaignError as documented above.
  bool Run();

  const CoordinatorStats& stats() const { return stats_; }

  // Valid after Run() returned true.
  std::string EncodeArchiveBytes() const;
  std::vector<scenario::Results> DecodedResults() const;

 private:
  using Clock = std::chrono::steady_clock;

  enum class JobStatus { kPending, kDispatched, kDone };

  struct JobState {
    JobStatus status = JobStatus::kPending;
    int attempts = 0;                    // Dispatches so far (local runs included).
    Clock::time_point not_before{};      // Backoff gate for the next dispatch.
    std::string blob;                    // Validated EncodeResults bytes when done.
  };

  struct Conn {
    int fd = -1;
    LineReader reader;
    bool saw_hello = false;
    int64_t job = -1;                    // Dispatched job, -1 when idle.
    Clock::time_point dispatched_at{};
    Clock::time_point last_seen{};
    std::string name;
  };

  void LoadWal();
  void AppendWalRecord(int64_t job, const std::string& blob);
  void CompleteJob(int64_t job, std::string blob, bool from_wal);
  void RequeueJob(int64_t job, const char* why);
  int64_t NextReadyJob() const;
  bool AllJobsDone() const { return done_count_ == static_cast<int64_t>(jobs_.size()); }
  void HandleLine(Conn& conn, const std::string& line);
  void HandleRequest(Conn& conn);
  void HandleResult(Conn& conn, const Message& msg);
  void DropConn(Conn& conn, const char* why);
  void SweepDeadlines();
  void RunOneJobLocally(int64_t job);
  int PollTimeoutMs() const;

  Manifest manifest_;
  CoordinatorConfig config_;
  CoordinatorStats stats_;

  std::vector<JobState> jobs_;
  std::vector<std::string> job_blobs_;   // Encoded job specs, built once.
  int64_t done_count_ = 0;

  int listen_fd_ = -1;
  std::vector<std::unique_ptr<Conn>> conns_;
  std::FILE* wal_ = nullptr;
  Clock::time_point last_worker_seen_{};
};

// Runs the whole manifest serially in-process and returns the archive bytes - the
// fault-free reference the distributed path must match byte for byte.
std::string RunSerialArchive(const Manifest& manifest);

}  // namespace tbf::campaign

#endif  // TBF_CAMPAIGN_COORDINATOR_H_
