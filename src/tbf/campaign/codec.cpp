#include "tbf/campaign/codec.h"

#include <array>
#include <bit>

#include "tbf/util/logging.h"

namespace tbf::campaign {
namespace {

// ---------------------------------------------------------------------------
// Primitive byte stream. The reader latches failure: once any read overruns or
// fails validation, every subsequent read reports failure too, so decoders can
// chain reads and check ok() once per structure.
// ---------------------------------------------------------------------------

class ByteWriter {
 public:
  void U8(uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void U32(uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      out_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  }
  void U64(uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      out_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  }
  void I32(int32_t v) { U32(static_cast<uint32_t>(v)); }
  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }
  void F64(double v) { U64(std::bit_cast<uint64_t>(v)); }
  void Bool(bool v) { U8(v ? 1 : 0); }

  std::string& str() { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  std::string out_;
};

class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  uint8_t U8() {
    if (!Need(1)) {
      return 0;
    }
    return static_cast<uint8_t>(data_[pos_++]);
  }
  uint32_t U32() {
    if (!Need(4)) {
      return 0;
    }
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(static_cast<unsigned char>(data_[pos_ + i])) << (8 * i);
    }
    pos_ += 4;
    return v;
  }
  uint64_t U64() {
    if (!Need(8)) {
      return 0;
    }
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(static_cast<unsigned char>(data_[pos_ + i])) << (8 * i);
    }
    pos_ += 8;
    return v;
  }
  int32_t I32() { return static_cast<int32_t>(U32()); }
  int64_t I64() { return static_cast<int64_t>(U64()); }
  double F64() { return std::bit_cast<double>(U64()); }
  bool Bool() {
    const uint8_t v = U8();
    if (v > 1) {
      ok_ = false;
    }
    return v == 1;
  }
  // Container length, bounded so a corrupt count cannot drive a multi-GB resize.
  uint32_t Count(uint32_t max) {
    const uint32_t v = U32();
    if (v > max) {
      ok_ = false;
      return 0;
    }
    return v;
  }

  bool ok() const { return ok_; }
  size_t pos() const { return pos_; }
  bool AtEnd() const { return ok_ && pos_ == data_.size(); }
  std::string_view remaining() const { return data_.substr(pos_); }
  void Advance(size_t n) {
    if (Need(n)) {
      pos_ += n;
    }
  }

 private:
  bool Need(size_t n) {
    if (!ok_ || data_.size() - pos_ < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  std::string_view data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

// Containers the decoders will allocate for: generous for real campaigns, small
// enough that a corrupt count fails fast instead of OOMing the coordinator.
constexpr uint32_t kMaxStations = 4096;
constexpr uint32_t kMaxFlows = 65536;
constexpr uint32_t kMaxTasks = 1u << 22;
constexpr uint32_t kMaxArchiveJobs = 1u << 24;
constexpr uint32_t kMaxWindows = 1u << 20;

// v2: jobs carry StatsConfig, FlowResults the `exact` flag, Results the windowed
// meter series. v3: TbrConfig grew the scheduler-family fields (mode, burst_credit,
// demand_*, hybrid_debt_cap, contention_contenders), QdiscKind the three adaptive TBR
// kinds, and Results the windowed goodput series. Old-format payloads must not
// half-decode, so the payload magics are bumped; the archive keeps its magic and bumps
// its version field instead, which is what lets DecodeArchive diagnose a stale archive
// by name (codec.h).
constexpr uint32_t kJobMagic = 0x43414a33;      // "CAJ3"
constexpr uint32_t kResultsMagic = 0x43415233;  // "CAR3"
constexpr uint32_t kArchiveMagic = 0x54424641;  // "TBFA"
constexpr uint32_t kArchiveVersion = 3;

// ---------------------------------------------------------------------------
// Enum codecs with range validation.
// ---------------------------------------------------------------------------

template <typename E>
void PutEnum(ByteWriter& w, E value) {
  w.U32(static_cast<uint32_t>(value));
}

template <typename E>
E GetEnum(ByteReader& r, uint32_t max_inclusive, bool* ok) {
  const uint32_t raw = r.U32();
  if (raw > max_inclusive) {
    *ok = false;
    return static_cast<E>(0);
  }
  return static_cast<E>(raw);
}

// ---------------------------------------------------------------------------
// Spec codecs.
// ---------------------------------------------------------------------------

void PutTimings(ByteWriter& w, const phy::MacTimings& t) {
  w.I64(t.slot);
  w.I64(t.sifs);
  w.I32(t.cw_min);
  w.I32(t.cw_max);
  w.I32(t.retry_limit);
}

phy::MacTimings GetTimings(ByteReader& r) {
  phy::MacTimings t;
  t.slot = r.I64();
  t.sifs = r.I64();
  t.cw_min = r.I32();
  t.cw_max = r.I32();
  t.retry_limit = r.I32();
  return t;
}

void PutTbr(ByteWriter& w, const core::TbrConfig& c) {
  PutEnum(w, c.mode);
  w.I64(c.burst_credit);
  w.I64(c.demand_period);
  w.F64(c.demand_alpha);
  w.F64(c.demand_active_threshold);
  w.I64(c.hybrid_debt_cap);
  w.I32(c.contention_contenders);
  w.I64(c.fill_period);
  w.I64(c.bucket_depth);
  w.I64(c.initial_tokens);
  w.Bool(c.enable_rate_adjust);
  w.I64(c.adjust_period);
  w.F64(c.adjust_threshold);
  w.F64(c.usage_ewma_alpha);
  w.F64(c.saturation_guard);
  w.F64(c.min_rate);
  w.Bool(c.maxmin_repair);
  w.F64(c.repair_step);
  w.Bool(c.work_conserving_fallback);
  w.Bool(c.use_retry_info);
  w.Bool(c.charge_contention_overhead);
  w.U64(c.per_queue_limit);
  w.Bool(c.client_agent);
}

core::TbrConfig GetTbr(ByteReader& r, bool* ok) {
  core::TbrConfig c;
  c.mode = GetEnum<core::TbrMode>(r, 3, ok);
  c.burst_credit = r.I64();
  c.demand_period = r.I64();
  c.demand_alpha = r.F64();
  c.demand_active_threshold = r.F64();
  c.hybrid_debt_cap = r.I64();
  c.contention_contenders = r.I32();
  c.fill_period = r.I64();
  c.bucket_depth = r.I64();
  c.initial_tokens = r.I64();
  c.enable_rate_adjust = r.Bool();
  c.adjust_period = r.I64();
  c.adjust_threshold = r.F64();
  c.usage_ewma_alpha = r.F64();
  c.saturation_guard = r.F64();
  c.min_rate = r.F64();
  c.maxmin_repair = r.Bool();
  c.repair_step = r.F64();
  c.work_conserving_fallback = r.Bool();
  c.use_retry_info = r.Bool();
  c.charge_contention_overhead = r.Bool();
  c.per_queue_limit = static_cast<size_t>(r.U64());
  c.client_agent = r.Bool();
  return c;
}

void PutStation(ByteWriter& w, const scenario::StationSpec& s) {
  w.I32(s.id);
  PutEnum(w, s.rate);
  w.F64(s.per);
  w.Bool(s.arf);
  w.F64(s.snr_db);
  w.U64(s.queue_limit);
}

scenario::StationSpec GetStation(ByteReader& r, bool* ok) {
  scenario::StationSpec s;
  s.id = r.I32();
  s.rate = GetEnum<phy::WifiRate>(r, phy::kNumWifiRates - 1, ok);
  s.per = r.F64();
  s.arf = r.Bool();
  s.snr_db = r.F64();
  s.queue_limit = static_cast<size_t>(r.U64());
  return s;
}

void PutFlow(ByteWriter& w, const scenario::FlowSpec& f) {
  w.I32(f.client);
  PutEnum(w, f.direction);
  PutEnum(w, f.transport);
  PutEnum(w, f.model);
  w.I64(f.task_bytes);
  w.I32(f.task_count);
  w.I64(f.task_gap);
  w.F64(f.onoff.mean_flow_bytes);
  w.F64(f.onoff.pareto_alpha);
  w.F64(f.onoff.mean_think_sec);
  w.U32(static_cast<uint32_t>(f.replay.size()));
  for (const trace::ReplayTask& task : f.replay) {
    w.I64(task.at);
    w.I64(task.bytes);
  }
  w.I64(f.app_limit_bps);
  w.I64(f.udp_rate);
  w.I32(f.packet_bytes);
  w.I64(f.start);
}

scenario::FlowSpec GetFlow(ByteReader& r, bool* ok) {
  scenario::FlowSpec f;
  f.client = r.I32();
  f.direction = GetEnum<scenario::Direction>(r, 1, ok);
  f.transport = GetEnum<scenario::Transport>(r, 1, ok);
  f.model = GetEnum<scenario::TrafficModel>(r, 3, ok);
  f.task_bytes = r.I64();
  f.task_count = r.I32();
  f.task_gap = r.I64();
  f.onoff.mean_flow_bytes = r.F64();
  f.onoff.pareto_alpha = r.F64();
  f.onoff.mean_think_sec = r.F64();
  const uint32_t tasks = r.Count(kMaxTasks);
  f.replay.reserve(tasks);
  for (uint32_t i = 0; i < tasks && r.ok(); ++i) {
    trace::ReplayTask task;
    task.at = r.I64();
    task.bytes = r.I64();
    f.replay.push_back(task);
  }
  f.app_limit_bps = r.I64();
  f.udp_rate = r.I64();
  f.packet_bytes = r.I32();
  f.start = r.I64();
  return f;
}

void PutConfig(ByteWriter& w, const scenario::ScenarioConfig& c) {
  PutEnum(w, c.qdisc);
  PutTbr(w, c.tbr);
  w.U64(c.fifo_limit);
  w.U64(c.per_queue_limit);
  PutTimings(w, c.timings);
  w.U64(c.seed);
  w.I64(c.wired_rate);
  w.I64(c.wired_delay);
  w.I64(c.warmup);
  w.I64(c.duration);
  w.I64(c.stats.window);
  w.I32(c.stats.top_k);
  w.I32(c.stats.sample_every);
  w.U64(c.stats.sample_seed);
}

scenario::ScenarioConfig GetConfig(ByteReader& r, bool* ok) {
  scenario::ScenarioConfig c;
  c.qdisc = GetEnum<scenario::QdiscKind>(r, 7, ok);
  c.tbr = GetTbr(r, ok);
  c.fifo_limit = static_cast<size_t>(r.U64());
  c.per_queue_limit = static_cast<size_t>(r.U64());
  c.timings = GetTimings(r);
  c.seed = r.U64();
  c.wired_rate = r.I64();
  c.wired_delay = r.I64();
  c.warmup = r.I64();
  c.duration = r.I64();
  c.stats.window = r.I64();
  c.stats.top_k = r.I32();
  c.stats.sample_every = r.I32();
  c.stats.sample_seed = r.U64();
  return c;
}

// ---------------------------------------------------------------------------
// Results codecs.
// ---------------------------------------------------------------------------

void PutSummary(ByteWriter& w, const scenario::LatencySummary& s) {
  w.I64(s.count);
  w.I64(s.p50);
  w.I64(s.p95);
  w.I64(s.p99);
}

scenario::LatencySummary GetSummary(ByteReader& r) {
  scenario::LatencySummary s;
  s.count = r.I64();
  s.p50 = r.I64();
  s.p95 = r.I64();
  s.p99 = r.I64();
  return s;
}

void PutSketch(ByteWriter& w, const stats::QuantileSketch& sketch) {
  sketch.SerializeTo(&w.str());
}

bool GetSketch(ByteReader& r, stats::QuantileSketch* out) {
  // The sketch parses from the reader's current position; splice its cursor back.
  size_t pos = 0;
  if (!r.ok() || !stats::QuantileSketch::DeserializeFrom(r.remaining(), &pos, out)) {
    return false;
  }
  r.Advance(pos);
  return true;
}

void PutNodeDoubleMap(ByteWriter& w, const std::map<NodeId, double>& m) {
  w.U32(static_cast<uint32_t>(m.size()));
  for (const auto& [node, value] : m) {  // std::map iterates sorted: deterministic.
    w.I32(node);
    w.F64(value);
  }
}

bool GetNodeDoubleMap(ByteReader& r, std::map<NodeId, double>* out) {
  const uint32_t n = r.Count(kMaxStations);
  NodeId prev = kInvalidNodeId;
  for (uint32_t i = 0; i < n && r.ok(); ++i) {
    const NodeId node = r.I32();
    const double value = r.F64();
    if (i > 0 && node <= prev) {
      return false;  // Must be strictly ascending (canonical map order).
    }
    prev = node;
    (*out)[node] = value;
  }
  return r.ok();
}

void PutTimes(ByteWriter& w, const std::vector<TimeNs>& v) {
  w.U32(static_cast<uint32_t>(v.size()));
  for (TimeNs t : v) {
    w.I64(t);
  }
}

bool GetTimes(ByteReader& r, std::vector<TimeNs>* out) {
  const uint32_t n = r.Count(kMaxTasks);
  out->reserve(n);
  for (uint32_t i = 0; i < n && r.ok(); ++i) {
    out->push_back(r.I64());
  }
  return r.ok();
}

void PutFlowResult(ByteWriter& w, const scenario::FlowResult& f) {
  w.I32(f.flow_id);
  w.I32(f.client);
  w.Bool(f.tcp);
  w.I64(f.bytes_delivered);
  w.F64(f.goodput_bps);
  w.I64(f.completion_time);
  PutTimes(w, f.task_completions);
  PutTimes(w, f.task_durations);
  w.I64(f.retransmits);
  w.I64(f.timeouts);
  PutSummary(w, f.rtt);
  PutSummary(w, f.queue_delay);
  PutSummary(w, f.task_latency);
  w.Bool(f.exact);
}

bool GetFlowResult(ByteReader& r, scenario::FlowResult* f) {
  f->flow_id = r.I32();
  f->client = r.I32();
  f->tcp = r.Bool();
  f->bytes_delivered = r.I64();
  f->goodput_bps = r.F64();
  f->completion_time = r.I64();
  if (!GetTimes(r, &f->task_completions) || !GetTimes(r, &f->task_durations)) {
    return false;
  }
  f->retransmits = r.I64();
  f->timeouts = r.I64();
  f->rtt = GetSummary(r);
  f->queue_delay = GetSummary(r);
  f->task_latency = GetSummary(r);
  f->exact = r.Bool();
  return r.ok();
}

void PutSeries(ByteWriter& w, const stats::MeterSeries& s) {
  w.I64(s.window);
  w.U32(static_cast<uint32_t>(s.windows.size()));
  for (const stats::WindowStat& ws : s.windows) {
    w.I64(ws.start);
    w.I64(ws.count);
    w.I64(ws.p50);
    w.I64(ws.p95);
    w.I64(ws.p99);
  }
}

bool GetSeries(ByteReader& r, stats::MeterSeries* out) {
  out->window = r.I64();
  const uint32_t n = r.Count(kMaxWindows);
  out->windows.reserve(n);
  TimeNs prev = 0;
  for (uint32_t i = 0; i < n && r.ok(); ++i) {
    stats::WindowStat ws;
    ws.start = r.I64();
    ws.count = r.I64();
    ws.p50 = r.I64();
    ws.p95 = r.I64();
    ws.p99 = r.I64();
    if (i > 0 && ws.start <= prev) {
      return false;  // Sealed windows are strictly ascending by start.
    }
    prev = ws.start;
    out->windows.push_back(ws);
  }
  return r.ok();
}

void PutByteSeries(ByteWriter& w, const stats::ByteSeries& s) {
  w.I64(s.window);
  w.U32(static_cast<uint32_t>(s.windows.size()));
  for (const stats::ByteWindow& bw : s.windows) {
    w.I64(bw.start);
    w.I64(bw.count);
    w.I64(bw.bytes);
  }
}

bool GetByteSeries(ByteReader& r, stats::ByteSeries* out) {
  out->window = r.I64();
  const uint32_t n = r.Count(kMaxWindows);
  out->windows.reserve(n);
  TimeNs prev = 0;
  for (uint32_t i = 0; i < n && r.ok(); ++i) {
    stats::ByteWindow bw;
    bw.start = r.I64();
    bw.count = r.I64();
    bw.bytes = r.I64();
    if (i > 0 && bw.start <= prev) {
      return false;  // Sealed windows are strictly ascending by start.
    }
    prev = bw.start;
    out->windows.push_back(bw);
  }
  return r.ok();
}

}  // namespace

uint32_t Crc32(std::string_view data) {
  static const auto table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  uint32_t crc = 0xffffffffu;
  for (const char ch : data) {
    crc = table[(crc ^ static_cast<unsigned char>(ch)) & 0xffu] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

std::string HexEncode(std::string_view bytes) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (const char ch : bytes) {
    const auto b = static_cast<unsigned char>(ch);
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0xf]);
  }
  return out;
}

bool HexDecode(std::string_view hex, std::string* out) {
  if (hex.size() % 2 != 0) {
    return false;
  }
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') {
      return c - '0';
    }
    if (c >= 'a' && c <= 'f') {
      return c - 'a' + 10;
    }
    return -1;
  };
  out->clear();
  out->reserve(hex.size() / 2);
  for (size_t i = 0; i < hex.size(); i += 2) {
    const int hi = nibble(hex[i]);
    const int lo = nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      return false;
    }
    out->push_back(static_cast<char>((hi << 4) | lo));
  }
  return true;
}

std::string EncodeJob(const CampaignJob& job) {
  ByteWriter w;
  w.U32(kJobMagic);
  PutConfig(w, job.config);
  w.U32(static_cast<uint32_t>(job.stations.size()));
  for (const scenario::StationSpec& s : job.stations) {
    PutStation(w, s);
  }
  w.U32(static_cast<uint32_t>(job.flows.size()));
  for (const scenario::FlowSpec& f : job.flows) {
    PutFlow(w, f);
  }
  return w.Take();
}

bool DecodeJob(std::string_view data, CampaignJob* out) {
  ByteReader r(data);
  bool ok = true;
  if (r.U32() != kJobMagic) {
    return false;
  }
  CampaignJob job;
  job.config = GetConfig(r, &ok);
  const uint32_t stations = r.Count(kMaxStations);
  job.stations.reserve(stations);
  for (uint32_t i = 0; i < stations && r.ok() && ok; ++i) {
    job.stations.push_back(GetStation(r, &ok));
  }
  const uint32_t flows = r.Count(kMaxFlows);
  job.flows.reserve(flows);
  for (uint32_t i = 0; i < flows && r.ok() && ok; ++i) {
    job.flows.push_back(GetFlow(r, &ok));
  }
  if (!ok || !r.AtEnd()) {
    return false;
  }
  *out = std::move(job);
  return true;
}

std::string EncodeResults(const scenario::Results& results) {
  ByteWriter w;
  w.U32(kResultsMagic);
  PutNodeDoubleMap(w, results.goodput_bps);
  PutNodeDoubleMap(w, results.airtime_share);
  w.F64(results.aggregate_bps);
  w.F64(results.utilization);
  w.U32(static_cast<uint32_t>(results.flows.size()));
  for (const scenario::FlowResult& f : results.flows) {
    PutFlowResult(w, f);
  }
  w.F64(results.avg_task_time_sec);
  w.F64(results.final_task_time_sec);
  w.I64(results.tasks_completed);
  w.I64(results.mac_collisions);
  w.I64(results.mac_exchanges);
  w.I64(results.ap_drops);
  PutSummary(w, results.rtt);
  PutSummary(w, results.ap_queue_delay);
  PutSummary(w, results.task_latency);
  PutSketch(w, results.rtt_sketch);
  PutSketch(w, results.ap_queue_delay_sketch);
  PutSketch(w, results.task_latency_sketch);
  PutSeries(w, results.rtt_series);
  PutSeries(w, results.ap_queue_delay_series);
  PutSeries(w, results.task_latency_series);
  PutByteSeries(w, results.goodput_series);
  return w.Take();
}

bool DecodeResults(std::string_view data, scenario::Results* out) {
  ByteReader r(data);
  if (r.U32() != kResultsMagic) {
    return false;
  }
  scenario::Results results;
  if (!GetNodeDoubleMap(r, &results.goodput_bps) ||
      !GetNodeDoubleMap(r, &results.airtime_share)) {
    return false;
  }
  results.aggregate_bps = r.F64();
  results.utilization = r.F64();
  const uint32_t flows = r.Count(kMaxFlows);
  results.flows.reserve(flows);
  for (uint32_t i = 0; i < flows && r.ok(); ++i) {
    scenario::FlowResult f;
    if (!GetFlowResult(r, &f)) {
      return false;
    }
    results.flows.push_back(std::move(f));
  }
  results.avg_task_time_sec = r.F64();
  results.final_task_time_sec = r.F64();
  results.tasks_completed = r.I64();
  results.mac_collisions = r.I64();
  results.mac_exchanges = r.I64();
  results.ap_drops = r.I64();
  results.rtt = GetSummary(r);
  results.ap_queue_delay = GetSummary(r);
  results.task_latency = GetSummary(r);
  if (!r.ok() || !GetSketch(r, &results.rtt_sketch) ||
      !GetSketch(r, &results.ap_queue_delay_sketch) ||
      !GetSketch(r, &results.task_latency_sketch)) {
    return false;
  }
  if (!GetSeries(r, &results.rtt_series) ||
      !GetSeries(r, &results.ap_queue_delay_series) ||
      !GetSeries(r, &results.task_latency_series) ||
      !GetByteSeries(r, &results.goodput_series) || !r.AtEnd()) {
    return false;
  }
  *out = std::move(results);
  return true;
}

MergedSummary MergeResults(const std::vector<scenario::Results>& results) {
  MergedSummary merged;
  merged.jobs = static_cast<int64_t>(results.size());
  for (const scenario::Results& r : results) {  // Manifest order: deterministic.
    merged.tasks_completed += r.tasks_completed;
    merged.mac_exchanges += r.mac_exchanges;
    merged.aggregate_bps_sum += r.aggregate_bps;
    merged.rtt.Merge(r.rtt_sketch);
    merged.ap_queue_delay.Merge(r.ap_queue_delay_sketch);
    merged.task_latency.Merge(r.task_latency_sketch);
  }
  return merged;
}

namespace {

void PutMerged(ByteWriter& w, const MergedSummary& m) {
  w.I64(m.jobs);
  w.I64(m.tasks_completed);
  w.I64(m.mac_exchanges);
  w.F64(m.aggregate_bps_sum);
  PutSketch(w, m.rtt);
  PutSketch(w, m.ap_queue_delay);
  PutSketch(w, m.task_latency);
}

bool GetMerged(ByteReader& r, MergedSummary* m) {
  m->jobs = r.I64();
  m->tasks_completed = r.I64();
  m->mac_exchanges = r.I64();
  m->aggregate_bps_sum = r.F64();
  return r.ok() && GetSketch(r, &m->rtt) && GetSketch(r, &m->ap_queue_delay) &&
         GetSketch(r, &m->task_latency);
}

}  // namespace

std::string EncodeArchive(const std::vector<std::string>& result_blobs) {
  std::vector<scenario::Results> decoded;
  decoded.reserve(result_blobs.size());
  for (const std::string& blob : result_blobs) {
    scenario::Results r;
    TBF_CHECK(DecodeResults(blob, &r)) << "archive built from an invalid Results blob";
    decoded.push_back(std::move(r));
  }
  ByteWriter w;
  w.U32(kArchiveMagic);
  w.U32(kArchiveVersion);
  w.U32(static_cast<uint32_t>(result_blobs.size()));
  for (const std::string& blob : result_blobs) {
    w.U32(static_cast<uint32_t>(blob.size()));
    w.U32(Crc32(blob));
    w.str() += blob;
  }
  PutMerged(w, MergeResults(decoded));
  return w.Take();
}

namespace {

bool DecodeArchiveInternal(std::string_view data, std::vector<scenario::Results>* out,
                           MergedSummary* summary) {
  ByteReader r(data);
  if (r.U32() != kArchiveMagic) {
    return false;
  }
  const uint32_t version = r.U32();
  if (r.ok() && version < kArchiveVersion) {
    // A well-framed archive from an older codec is a stale artifact, not corruption:
    // name the version so the user knows to regenerate it.
    throw CampaignError("campaign archive version " + std::to_string(version) +
                        " predates the windowed stats format (current version " +
                        std::to_string(kArchiveVersion) + "); re-run the campaign");
  }
  if (!r.ok() || version != kArchiveVersion) {
    return false;
  }
  const uint32_t jobs = r.Count(kMaxArchiveJobs);
  std::vector<scenario::Results> results;
  results.reserve(jobs);
  for (uint32_t i = 0; i < jobs && r.ok(); ++i) {
    const uint32_t len = r.U32();
    const uint32_t crc = r.U32();
    if (!r.ok() || r.remaining().size() < len) {
      return false;
    }
    const std::string_view blob = r.remaining().substr(0, len);
    if (Crc32(blob) != crc) {
      return false;
    }
    scenario::Results decoded;
    if (!DecodeResults(blob, &decoded)) {
      return false;
    }
    results.push_back(std::move(decoded));
    r.Advance(len);
  }
  MergedSummary merged;
  if (!GetMerged(r, &merged) || !r.AtEnd()) {
    return false;
  }
  if (merged != MergeResults(results)) {
    return false;  // Trailer must agree with the blobs it summarizes.
  }
  if (out != nullptr) {
    *out = std::move(results);
  }
  if (summary != nullptr) {
    *summary = std::move(merged);
  }
  return true;
}

}  // namespace

bool DecodeArchive(std::string_view data, std::vector<scenario::Results>* out) {
  return DecodeArchiveInternal(data, out, nullptr);
}

bool DecodeArchiveSummary(std::string_view data, MergedSummary* out) {
  return DecodeArchiveInternal(data, nullptr, out);
}

}  // namespace tbf::campaign
