// Campaign manifests: the declarative, wire-shippable form of a scenario sweep.
//
// A campaign is a parameter-grid of deterministic scenario runs (ROADMAP item 3:
// schedulers x traffic models x cell sizes x seeds, easily 10^6 jobs) distributed
// across worker processes. A CampaignJob is sweep::ScenarioJob minus the one thing
// that cannot travel: the `configure` callback. Everything left is plain data with
// value semantics, so a job can be binary-encoded (campaign/codec.h), handed to any
// worker on any host, and re-run any number of times with bit-identical Results -
// which is what makes re-dispatch after a crash safe and resume-from-log exact.
//
// Job identity is positional: job i is manifest.jobs[i], and every protocol message,
// completion-log record, and archive slot refers to jobs by that index. A manifest is
// therefore regenerated (same builder, same parameters) rather than mutated; the
// fingerprint ties a completion log to the manifest that produced it.
#ifndef TBF_CAMPAIGN_MANIFEST_H_
#define TBF_CAMPAIGN_MANIFEST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "tbf/scenario/wlan.h"
#include "tbf/sweep/sweep_runner.h"

namespace tbf::campaign {

// One shippable scenario run. Plain data only - no callbacks, no pointers.
struct CampaignJob {
  scenario::ScenarioConfig config;
  std::vector<scenario::StationSpec> stations;
  std::vector<scenario::FlowSpec> flows;

  friend bool operator==(const CampaignJob&, const CampaignJob&) = default;
};

struct Manifest {
  std::vector<CampaignJob> jobs;

  friend bool operator==(const Manifest&, const Manifest&) = default;
};

// The in-process form: a ScenarioJob with no configure hook.
sweep::ScenarioJob ToScenarioJob(const CampaignJob& job);

// Validates every job with scenario::ValidateScenario. Returns an empty string when
// the whole manifest is runnable, else a diagnostic naming the first offending job -
// the coordinator refuses to dispatch anything from an invalid manifest.
std::string ValidateManifest(const Manifest& manifest);

// CRC over every encoded job: identifies the manifest a completion log belongs to, so
// a resume with different parameters fails loudly instead of merging foreign results.
uint32_t ManifestFingerprint(const Manifest& manifest);

// Deterministic small-cell grid used by the campaign smoke tests, the CI fault
//-injection job, and the tbf-campaign CLI presets: job i cycles qdisc (FIFO, TBR, RR,
// DRR), station count (1-3), rate pairs, direction, and transport (CBR UDP with some
// TCP), with seed = seed + i. Scenario durations are deliberately tiny so a
// 10^2..10^3-job campaign finishes in seconds; scale `warmup`/`duration` up for real
// measurement campaigns.
struct SmokeGridSpec {
  int jobs = 200;
  uint64_t seed = 1;
  TimeNs warmup = Ms(20);
  TimeNs duration = Ms(150);
};

Manifest MakeSmokeGrid(const SmokeGridSpec& spec);

}  // namespace tbf::campaign

#endif  // TBF_CAMPAIGN_MANIFEST_H_
