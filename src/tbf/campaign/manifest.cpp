#include "tbf/campaign/manifest.h"

#include "tbf/campaign/codec.h"

namespace tbf::campaign {

sweep::ScenarioJob ToScenarioJob(const CampaignJob& job) {
  sweep::ScenarioJob out;
  out.config = job.config;
  out.stations = job.stations;
  out.flows = job.flows;
  return out;
}

std::string ValidateManifest(const Manifest& manifest) {
  if (manifest.jobs.empty()) {
    return "manifest has no jobs";
  }
  for (size_t i = 0; i < manifest.jobs.size(); ++i) {
    const CampaignJob& job = manifest.jobs[i];
    if (std::string err = scenario::ValidateScenario(job.config, job.stations, job.flows);
        !err.empty()) {
      return "job #" + std::to_string(i) + ": " + err;
    }
  }
  return std::string();
}

uint32_t ManifestFingerprint(const Manifest& manifest) {
  std::string all;
  for (const CampaignJob& job : manifest.jobs) {
    all += EncodeJob(job);
  }
  return Crc32(all);
}

Manifest MakeSmokeGrid(const SmokeGridSpec& spec) {
  using scenario::Direction;
  using scenario::QdiscKind;
  using scenario::Transport;

  constexpr QdiscKind kQdiscs[] = {QdiscKind::kFifo, QdiscKind::kTbr,
                                   QdiscKind::kRoundRobin, QdiscKind::kDrr};
  constexpr phy::WifiRate kRates[] = {phy::WifiRate::k11Mbps, phy::WifiRate::k1Mbps,
                                      phy::WifiRate::k5_5Mbps, phy::WifiRate::k2Mbps};

  Manifest manifest;
  manifest.jobs.reserve(static_cast<size_t>(spec.jobs));
  for (int i = 0; i < spec.jobs; ++i) {
    CampaignJob job;
    job.config.qdisc = kQdiscs[i % 4];
    job.config.seed = spec.seed + static_cast<uint64_t>(i);
    job.config.warmup = spec.warmup;
    job.config.duration = spec.duration;

    const int station_count = 1 + (i / 4) % 3;
    for (int s = 0; s < station_count; ++s) {
      scenario::StationSpec station;
      station.id = s + 1;
      station.rate = kRates[(i + s) % 4];
      job.stations.push_back(station);

      scenario::FlowSpec flow;
      flow.client = station.id;
      flow.direction = (i / 2) % 2 == 0 ? Direction::kDownlink : Direction::kUplink;
      // Mostly CBR UDP (cheap), with a TCP flow every fifth job for transport
      // diversity; rate modest so tiny windows still see steady-state traffic.
      if (i % 5 == 0) {
        flow.transport = Transport::kTcp;
      } else {
        flow.transport = Transport::kUdp;
        flow.udp_rate = Mbps(2);
      }
      job.flows.push_back(flow);
    }
    manifest.jobs.push_back(std::move(job));
  }
  return manifest;
}

}  // namespace tbf::campaign
