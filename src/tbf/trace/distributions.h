// Reusable workload-distribution samplers.
//
// The paper's web-era workloads are heavy-tailed transfers separated by user think
// times: Pareto flow sizes (mean pinned via the shape parameter) and exponential idle
// gaps. These draws were originally private to the synthetic trace generators; they are
// factored out here so the packet-level scenario traffic models (scenario::FlowSpec's
// on/off mode) and the generators sample from exactly the same distributions.
#ifndef TBF_TRACE_DISTRIBUTIONS_H_
#define TBF_TRACE_DISTRIBUTIONS_H_

#include <algorithm>

#include "tbf/sim/random.h"
#include "tbf/util/units.h"

namespace tbf::trace {

// Pareto minimum xm such that the distribution's mean is `mean` at shape `alpha`
// (requires alpha > 1; the mean is xm * alpha / (alpha - 1)).
constexpr double ParetoMinForMean(double mean, double alpha) {
  return mean * (alpha - 1.0) / alpha;
}

// One heavy-tailed flow-size draw (bytes, as a double so callers can scale before
// truncating): Pareto with the given mean and shape.
inline double DrawParetoFlowBytes(sim::Rng& rng, double mean_bytes, double alpha) {
  return rng.Pareto(ParetoMinForMean(mean_bytes, alpha), alpha);
}

// One exponential think-time draw, in simulation time.
inline TimeNs DrawExpThinkNs(sim::Rng& rng, double mean_sec) {
  return static_cast<TimeNs>(rng.Exponential(mean_sec) * 1e9);
}

// A web-like on/off source: alternate a Pareto-sized transfer with an exponential
// think time. Defaults match the workshop-trace generator's web-era parameters.
struct OnOffSampler {
  double mean_flow_bytes = 256.0 * 1024.0;
  double pareto_alpha = 1.3;
  double mean_think_sec = 5.0;

  // Flow sizes are clamped to at least one byte so a task is never empty.
  int64_t DrawFlowBytes(sim::Rng& rng) const {
    return std::max<int64_t>(
        1, static_cast<int64_t>(DrawParetoFlowBytes(rng, mean_flow_bytes, pareto_alpha)));
  }
  TimeNs DrawThinkNs(sim::Rng& rng) const { return DrawExpThinkNs(rng, mean_think_sec); }

  friend bool operator==(const OnOffSampler&, const OnOffSampler&) = default;
};

}  // namespace tbf::trace

#endif  // TBF_TRACE_DISTRIBUTIONS_H_
