#include "tbf/trace/generators.h"

#include <algorithm>

#include "tbf/phy/timing.h"
#include "tbf/trace/distributions.h"

namespace tbf::trace {
namespace {

constexpr int kFrameBytes = 1500 + phy::kMacDataOverheadBytes;

phy::WifiRate DrawRate(const std::map<phy::WifiRate, double>& mix, sim::Rng& rng) {
  double total = 0.0;
  for (const auto& [rate, w] : mix) {
    total += w;
  }
  double x = rng.UniformDouble() * total;
  for (const auto& [rate, w] : mix) {
    x -= w;
    if (x <= 0.0) {
      return rate;
    }
  }
  return mix.rbegin()->first;
}

}  // namespace

WorkshopConfig Ws1Config() {
  WorkshopConfig c;
  c.rate_mix = {{phy::WifiRate::k11Mbps, 0.82},
                {phy::WifiRate::k5_5Mbps, 0.06},
                {phy::WifiRate::k2Mbps, 0.04},
                {phy::WifiRate::k1Mbps, 0.08}};
  return c;
}

WorkshopConfig Ws2Config() {
  WorkshopConfig c;
  // The paper highlights WS-2: more than 30% of bytes below 11 Mbps.
  c.rate_mix = {{phy::WifiRate::k11Mbps, 0.62},
                {phy::WifiRate::k5_5Mbps, 0.13},
                {phy::WifiRate::k2Mbps, 0.10},
                {phy::WifiRate::k1Mbps, 0.15}};
  return c;
}

WorkshopConfig Ws3Config() {
  WorkshopConfig c;
  c.rate_mix = {{phy::WifiRate::k11Mbps, 0.78},
                {phy::WifiRate::k5_5Mbps, 0.08},
                {phy::WifiRate::k2Mbps, 0.05},
                {phy::WifiRate::k1Mbps, 0.09}};
  return c;
}

TraceLog GenerateWorkshopTrace(const WorkshopConfig& config, sim::Rng& rng) {
  TraceLog log;

  for (int user = 1; user <= config.users; ++user) {
    TimeNs t = DrawExpThinkNs(rng, config.mean_think_sec);
    while (t < config.duration) {
      // One flow: rate drawn from the session's byte mixture, occasionally wandering a
      // step (indoor channel variation during the transfer).
      const phy::WifiRate flow_rate = DrawRate(config.rate_mix, rng);
      auto bytes = static_cast<int64_t>(
          DrawParetoFlowBytes(rng, config.mean_flow_bytes, config.pareto_alpha));
      while (bytes > 0 && t < config.duration) {
        // Occasional one-step fallback models transient channel dips without letting the
        // flow's rate random-walk away from its drawn (position-determined) rate.
        const phy::WifiRate rate =
            rng.Bernoulli(0.05) ? phy::StepDown(flow_rate) : flow_rate;
        TraceRecord r;
        r.time = t;
        r.node = user;
        r.downlink = rng.Bernoulli(0.7);
        r.bytes = static_cast<int>(std::min<int64_t>(bytes, kFrameBytes));
        r.rate = rate;
        r.retry = rng.Bernoulli(config.retry_prob);
        r.success = true;
        log.Add(r);
        bytes -= r.bytes;
        // Frame pacing ~ the airtime of the exchange at this rate (plus think jitter).
        const TimeNs gap = phy::FrameAirtime(r.bytes, rate) + Us(350);
        t += gap + (r.retry ? gap : 0);
      }
      t += DrawExpThinkNs(rng, config.mean_think_sec);
    }
  }
  return log;
}

TraceLog GenerateResidenceTrace(const ResidenceConfig& config, sim::Rng& rng) {
  TraceLog log;
  const TimeNs step = Ms(100);
  const double step_sec = ToSeconds(step);

  struct UserState {
    double remaining_bytes = 0.0;  // 0 = thinking.
    TimeNs wake_at = 0;
    double peak_bps = 0.0;  // Device/app ceiling; most users cannot saturate alone.
  };
  std::vector<UserState> users(static_cast<size_t>(config.users));
  for (size_t i = 0; i < users.size(); ++i) {
    const double think =
        i == 0 ? config.mean_think_sec / config.heavy_user_boost : config.mean_think_sec;
    users[i].wake_at = DrawExpThinkNs(rng, think);
    users[i].peak_bps = 1.5e6 + 3.0e6 * rng.UniformDouble();
  }

  for (TimeNs t = 0; t < config.duration; t += step) {
    // Wake users whose think time expired.
    std::vector<size_t> active;
    for (size_t i = 0; i < users.size(); ++i) {
      UserState& u = users[i];
      if (u.remaining_bytes <= 0.0 && t >= u.wake_at) {
        const double scale = i == 0 ? 2.0 : 1.0;
        u.remaining_bytes =
            scale * DrawParetoFlowBytes(rng, config.mean_flow_bytes, config.pareto_alpha);
      }
      if (u.remaining_bytes > 0.0) {
        active.push_back(i);
      }
    }
    if (active.empty()) {
      continue;
    }

    // Waterfill the AP capacity across active users, capping at each user's peak.
    std::vector<double> rate(active.size(), 0.0);
    double left = config.ap_capacity_bps;
    std::vector<size_t> unfilled(active.size());
    for (size_t k = 0; k < active.size(); ++k) {
      unfilled[k] = k;
    }
    while (!unfilled.empty() && left > 1.0) {
      const double share = left / static_cast<double>(unfilled.size());
      std::vector<size_t> still;
      for (size_t k : unfilled) {
        const double cap = users[active[k]].peak_bps;
        const double take = std::min(share, cap - rate[k]);
        rate[k] += take;
        left -= take;
        if (rate[k] < cap - 1.0) {
          still.push_back(k);
        }
      }
      if (still.size() == unfilled.size()) {
        break;  // Nobody could take more.
      }
      unfilled = std::move(still);
    }

    for (size_t k = 0; k < active.size(); ++k) {
      UserState& u = users[active[k]];
      const double bytes = std::min(u.remaining_bytes, rate[k] * step_sec / 8.0);
      if (bytes <= 0.0) {
        continue;
      }
      u.remaining_bytes -= bytes;
      if (u.remaining_bytes <= 0.0) {
        const double think = active[k] == 0
                                 ? config.mean_think_sec / config.heavy_user_boost
                                 : config.mean_think_sec;
        u.wake_at = t + DrawExpThinkNs(rng, think);
      }
      TraceRecord r;
      r.time = t;
      r.node = static_cast<NodeId>(active[k] + 1);
      r.downlink = true;
      r.bytes = static_cast<int>(bytes);
      r.rate = phy::WifiRate::k11Mbps;
      r.success = true;
      log.Add(r);
    }
  }
  return log;
}

}  // namespace tbf::trace
