// Frame-level trace records, a medium sniffer, and trace analyzers.
//
// Mirrors what the paper's experiments did with a sniffing laptop (Fig. 1) and with the
// Dartmouth/Whittemore tcpdump data (Fig. 5): collect per-frame records, then compute
// per-rate byte fractions and busy-interval/heaviest-user statistics.
#ifndef TBF_TRACE_TRACE_H_
#define TBF_TRACE_TRACE_H_

#include <map>
#include <vector>

#include "tbf/mac/medium.h"
#include "tbf/phy/rates.h"
#include "tbf/util/units.h"

namespace tbf::trace {

struct TraceRecord {
  TimeNs time = 0;
  NodeId node = kInvalidNodeId;  // The client whose traffic this frame is.
  bool downlink = false;
  int bytes = 0;  // MAC frame bytes as seen on air.
  phy::WifiRate rate = phy::WifiRate::k1Mbps;
  bool retry = false;
  bool success = false;
};

class TraceLog {
 public:
  void Add(const TraceRecord& record) { records_.push_back(record); }
  const std::vector<TraceRecord>& records() const { return records_; }
  size_t size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }
  void Clear() { records_.clear(); }

  // Text serialization (one record per line: time_ns node dir bytes rate retry success),
  // so externally captured traces can be analyzed and generated traces archived.
  void Save(std::ostream& out) const;
  static TraceLog Load(std::istream& in);

 private:
  std::vector<TraceRecord> records_;
};

// Attach to a mac::Medium to record every data-frame transmission (like the paper's
// sniffer, it sees retransmissions as separate frames).
class TraceSniffer : public mac::MediumObserver {
 public:
  explicit TraceSniffer(TraceLog* log) : log_(log) {}

  void OnExchange(const mac::ExchangeRecord& record) override {
    TraceRecord tr;
    tr.time = record.tx_start;
    tr.node = record.owner;
    tr.downlink = record.tx == kApId;
    tr.bytes = record.frame_bytes;
    tr.rate = record.rate;
    tr.retry = record.attempt > 0;
    tr.success = record.success;
    log_->Add(tr);
  }

 private:
  TraceLog* log_;
};

// ---- Analyzers ----------------------------------------------------------------------

// Fig. 1: fraction of on-air bytes carried at each PHY rate.
std::map<phy::WifiRate, double> RateByteFractions(const TraceLog& log);

// One saturated wall-clock window (Fig. 5's unit of analysis).
struct BusyInterval {
  TimeNs start = 0;
  int64_t total_bytes = 0;
  NodeId heaviest_user = kInvalidNodeId;
  double heaviest_share = 0.0;  // Fraction of the window's bytes from the heaviest user.
  int distinct_users = 0;
};

// Fig. 5: splits the trace into fixed windows and returns those whose total goodput
// exceeds `threshold_bps` (the paper uses 1-second windows and 4 Mbps).
std::vector<BusyInterval> FindBusyIntervals(const TraceLog& log,
                                            TimeNs window = Sec(1),
                                            double threshold_bps = 4e6);

// Summary over busy intervals: how often the heaviest user alone explains the traffic.
struct HeaviestUserSummary {
  int busy_intervals = 0;
  double mean_heaviest_share = 0.0;
  // Fraction of busy intervals where the heaviest user moved >90% of the bytes, i.e.
  // where a single user effectively saturated the AP alone.
  double solo_saturation_fraction = 0.0;
  double mean_distinct_users = 0.0;
};

HeaviestUserSummary SummarizeHeaviestUser(const std::vector<BusyInterval>& intervals);

}  // namespace tbf::trace

#endif  // TBF_TRACE_TRACE_H_
