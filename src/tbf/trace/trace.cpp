#include "tbf/trace/trace.h"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>

namespace tbf::trace {

void TraceLog::Save(std::ostream& out) const {
  for (const TraceRecord& r : records_) {
    out << r.time << ' ' << r.node << ' ' << (r.downlink ? 'D' : 'U') << ' ' << r.bytes
        << ' ' << static_cast<int>(r.rate) << ' ' << (r.retry ? 1 : 0) << ' '
        << (r.success ? 1 : 0) << '\n';
  }
}

TraceLog TraceLog::Load(std::istream& in) {
  TraceLog log;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') {
      continue;
    }
    std::istringstream fields(line);
    TraceRecord r;
    char dir = 'U';
    int rate = 0;
    int retry = 0;
    int success = 0;
    if (fields >> r.time >> r.node >> dir >> r.bytes >> rate >> retry >> success) {
      r.downlink = dir == 'D';
      r.rate = static_cast<phy::WifiRate>(rate);
      r.retry = retry != 0;
      r.success = success != 0;
      log.Add(r);
    }
  }
  return log;
}

std::map<phy::WifiRate, double> RateByteFractions(const TraceLog& log) {
  std::map<phy::WifiRate, int64_t> bytes;
  int64_t total = 0;
  for (const TraceRecord& r : log.records()) {
    bytes[r.rate] += r.bytes;
    total += r.bytes;
  }
  std::map<phy::WifiRate, double> fractions;
  if (total == 0) {
    return fractions;
  }
  for (const auto& [rate, b] : bytes) {
    fractions[rate] = static_cast<double>(b) / static_cast<double>(total);
  }
  return fractions;
}

std::vector<BusyInterval> FindBusyIntervals(const TraceLog& log, TimeNs window,
                                            double threshold_bps) {
  std::vector<BusyInterval> result;
  if (log.empty() || window <= 0) {
    return result;
  }

  // Records are time-ordered (the sniffer appends in completion order).
  TimeNs horizon = 0;
  for (const TraceRecord& r : log.records()) {
    horizon = std::max(horizon, r.time);
  }
  const auto buckets = static_cast<size_t>(horizon / window + 1);
  std::vector<std::map<NodeId, int64_t>> per_bucket(buckets);

  for (const TraceRecord& r : log.records()) {
    if (!r.success) {
      continue;  // Goodput, as in the paper's throughput-based busy definition.
    }
    per_bucket[static_cast<size_t>(r.time / window)][r.node] += r.bytes;
  }

  const double window_sec = ToSeconds(window);
  for (size_t i = 0; i < buckets; ++i) {
    int64_t total = 0;
    NodeId heaviest = kInvalidNodeId;
    int64_t heaviest_bytes = 0;
    for (const auto& [node, b] : per_bucket[i]) {
      total += b;
      if (b > heaviest_bytes) {
        heaviest_bytes = b;
        heaviest = node;
      }
    }
    const double bps = static_cast<double>(total) * 8.0 / window_sec;
    if (bps < threshold_bps) {
      continue;
    }
    BusyInterval bi;
    bi.start = static_cast<TimeNs>(i) * window;
    bi.total_bytes = total;
    bi.heaviest_user = heaviest;
    bi.heaviest_share = total > 0 ? static_cast<double>(heaviest_bytes) / total : 0.0;
    bi.distinct_users = static_cast<int>(per_bucket[i].size());
    result.push_back(bi);
  }
  return result;
}

HeaviestUserSummary SummarizeHeaviestUser(const std::vector<BusyInterval>& intervals) {
  HeaviestUserSummary s;
  s.busy_intervals = static_cast<int>(intervals.size());
  if (intervals.empty()) {
    return s;
  }
  int solo = 0;
  double share_sum = 0.0;
  double users_sum = 0.0;
  for (const BusyInterval& bi : intervals) {
    share_sum += bi.heaviest_share;
    users_sum += bi.distinct_users;
    if (bi.heaviest_share > 0.9) {
      ++solo;
    }
  }
  s.mean_heaviest_share = share_sum / static_cast<double>(intervals.size());
  s.solo_saturation_fraction = static_cast<double>(solo) / static_cast<double>(intervals.size());
  s.mean_distinct_users = users_sum / static_cast<double>(intervals.size());
  return s;
}

}  // namespace tbf::trace
