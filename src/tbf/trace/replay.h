// Trace replay: turn a frame-level trace::TraceLog into a scenario workload.
//
// The generators (and any externally captured trace loaded via TraceLog::Load) produce
// per-frame records; an application-level replay wants *transfers* - "node n started
// pulling B bytes at time t". TraceReplaySource recovers that structure the way trace
// studies do: per (node, direction), frames closer together than a gap threshold belong
// to one transfer, a longer silence starts the next. scenario::Wlan replays the result
// with its restartable finite-task sources (FlowSpec model kTraceReplay): each transfer
// launches at its logged offset - or when the node's previous transfer completes,
// whichever is later (a cell slower than the capture backlogs the user rather than
// overlapping their transfers) - and delivers exactly its logged bytes.
//
// Byte accounting: a transfer's size is the sum of its records' on-air frame bytes
// (after the retry/success filters below), replayed as application payload. The replay
// preserves the capture's byte volume and arrival structure; it does not try to undo
// the capture's MAC/IP framing, which the simulator re-adds on its own.
#ifndef TBF_TRACE_REPLAY_H_
#define TBF_TRACE_REPLAY_H_

#include <vector>

#include "tbf/trace/trace.h"

namespace tbf::trace {

// One application transfer recovered from the trace: `at` is the first frame's
// timestamp (absolute trace time), `bytes` the transfer's total payload.
struct ReplayTask {
  TimeNs at = 0;
  int64_t bytes = 0;

  friend bool operator==(const ReplayTask&, const ReplayTask&) = default;
};

// All of one node's transfers in one direction, in trace order.
struct ReplayFlow {
  NodeId node = kInvalidNodeId;
  bool downlink = false;
  std::vector<ReplayTask> tasks;
  int64_t total_bytes = 0;  // Sum of tasks[i].bytes: what a replay must deliver.

  friend bool operator==(const ReplayFlow&, const ReplayFlow&) = default;
};

struct ReplayOptions {
  // Frames of one (node, direction) farther apart than this start a new transfer
  // (think-time threshold; the generators' think times are seconds-scale).
  TimeNs task_gap = Ms(500);
  // Retransmitted frames re-carry bytes the original already counted; skip them by
  // default so the replayed volume is the offered load, not the on-air load.
  bool include_retries = false;
  // Skip frames the capture marked as failed (no ack seen).
  bool include_failures = false;
  // Drop transfers that start at or after this trace time; 0 = replay everything.
  // Lets long captures (hours) be audited by replaying a prefix.
  TimeNs horizon = 0;
};

// Consumes a TraceLog and exposes the per-flow transfer schedule recovered from it.
class TraceReplaySource {
 public:
  explicit TraceReplaySource(const TraceLog& log, ReplayOptions options = {});

  const std::vector<ReplayFlow>& flows() const { return flows_; }
  const ReplayOptions& options() const { return options_; }

  // Sum over flows of the bytes a faithful replay delivers.
  int64_t total_bytes() const { return total_bytes_; }
  // Latest transfer start time; a replaying scenario's duration must cover this plus
  // however long the final transfers take in the simulated cell.
  TimeNs last_arrival() const { return last_arrival_; }

 private:
  ReplayOptions options_;
  std::vector<ReplayFlow> flows_;
  int64_t total_bytes_ = 0;
  TimeNs last_arrival_ = 0;
};

}  // namespace tbf::trace

#endif  // TBF_TRACE_REPLAY_H_
