// Synthetic trace generators standing in for the paper's captured traces.
//
// The paper analyzed (i) sniffer traces of three 90-minute MIT workshop sessions (Fig. 1,
// WS-1..3) and (ii) the Dartmouth Whittemore residential tcpdump trace (Fig. 5). Neither
// raw capture ships here, so these generators synthesize frame-level traces with the
// *published statistics*: per-rate byte mixtures for the workshop sessions, and a
// residence-hall workload (heavy-tailed flows, multiple concurrent users, saturated
// periods) for the busy-interval analysis. The analyzer code path is identical to what
// real pcap-derived records would use.
#ifndef TBF_TRACE_GENERATORS_H_
#define TBF_TRACE_GENERATORS_H_

#include <map>
#include <string>
#include <vector>

#include "tbf/sim/random.h"
#include "tbf/trace/trace.h"

namespace tbf::trace {

struct WorkshopConfig {
  TimeNs duration = Sec(90 * 60);
  int users = 25;
  // Target byte mixture per rate (normalized internally). Users draw a "home" rate from
  // this mixture and occasionally wander one step (indoor channel variation).
  std::map<phy::WifiRate, double> rate_mix = {
      {phy::WifiRate::k11Mbps, 0.70},
      {phy::WifiRate::k5_5Mbps, 0.10},
      {phy::WifiRate::k2Mbps, 0.08},
      {phy::WifiRate::k1Mbps, 0.12},
  };
  double mean_flow_bytes = 256.0 * 1024.0;  // Web-era transfer sizes, Pareto tail.
  double pareto_alpha = 1.3;
  double mean_think_sec = 30.0;  // Idle time between a user's flows.
  double retry_prob = 0.03;
};

// Session mixes matching the paper's Fig. 1 bars: WS-2 moves >30% of bytes below 11 Mbps.
WorkshopConfig Ws1Config();
WorkshopConfig Ws2Config();
WorkshopConfig Ws3Config();

TraceLog GenerateWorkshopTrace(const WorkshopConfig& config, sim::Rng& rng);

struct ResidenceConfig {
  TimeNs duration = Sec(4 * 60 * 60);  // An afternoon at the dorm AP.
  int users = 18;
  double mean_flow_bytes = 1.5 * 1024.0 * 1024.0;  // File transfers dominate congestion.
  double pareto_alpha = 1.15;
  double mean_think_sec = 90.0;
  // Channel capacity shared during overlaps; at most this many bytes/sec leave the AP.
  double ap_capacity_bps = 5.2e6;
  double heavy_user_boost = 6.0;  // One user (the "heaviest") is this much more active.
};

// Generates the residential trace: users run flows independently; when several overlap,
// the AP capacity is split between them, producing exactly the Fig. 5 situation - busy
// intervals where the heaviest user rarely holds the channel alone.
TraceLog GenerateResidenceTrace(const ResidenceConfig& config, sim::Rng& rng);

}  // namespace tbf::trace

#endif  // TBF_TRACE_GENERATORS_H_
