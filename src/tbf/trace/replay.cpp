#include "tbf/trace/replay.h"

#include <algorithm>
#include <map>
#include <utility>

namespace tbf::trace {

TraceReplaySource::TraceReplaySource(const TraceLog& log, ReplayOptions options)
    : options_(options) {
  // Bucket records per (node, direction). Generators emit each user's records in time
  // order but interleave users arbitrarily, so each bucket is sorted before coalescing
  // (stable: equal timestamps keep trace order).
  std::map<std::pair<NodeId, bool>, std::vector<const TraceRecord*>> by_flow;
  for (const TraceRecord& r : log.records()) {
    if (r.retry && !options_.include_retries) {
      continue;
    }
    if (!r.success && !options_.include_failures) {
      continue;
    }
    if (r.bytes <= 0) {
      continue;
    }
    by_flow[{r.node, r.downlink}].push_back(&r);
  }

  for (auto& [key, records] : by_flow) {
    std::stable_sort(records.begin(), records.end(),
                     [](const TraceRecord* a, const TraceRecord* b) {
                       return a->time < b->time;
                     });
    ReplayFlow flow;
    flow.node = key.first;
    flow.downlink = key.second;
    TimeNs last_seen = 0;
    for (const TraceRecord* r : records) {
      if (flow.tasks.empty() || r->time - last_seen > options_.task_gap) {
        if (options_.horizon > 0 && r->time >= options_.horizon) {
          break;  // Records are sorted; every later transfer starts past the horizon.
        }
        flow.tasks.push_back({r->time, 0});
      }
      flow.tasks.back().bytes += r->bytes;
      last_seen = r->time;
    }
    if (flow.tasks.empty()) {
      continue;
    }
    for (const ReplayTask& task : flow.tasks) {
      flow.total_bytes += task.bytes;
      last_arrival_ = std::max(last_arrival_, task.at);
    }
    total_bytes_ += flow.total_bytes;
    flows_.push_back(std::move(flow));
  }
}

}  // namespace tbf::trace
