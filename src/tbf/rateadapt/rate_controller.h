// Transmission rate selection, per peer link.
//
// FixedRateController pins each link to a configured rate (the controlled experiments).
// ArfController implements Auto Rate Fallback (Kamerman & Monteban, WaveLAN-II): step down
// after consecutive failures, probe up after a success streak or a timer - the scheme the
// paper cites as the vendors' automatic rate control.
#ifndef TBF_RATEADAPT_RATE_CONTROLLER_H_
#define TBF_RATEADAPT_RATE_CONTROLLER_H_

#include <map>
#include <set>

#include "tbf/phy/rates.h"
#include "tbf/util/units.h"

namespace tbf::rateadapt {

class RateController {
 public:
  virtual ~RateController() = default;
  virtual phy::WifiRate CurrentRate(NodeId peer) = 0;
  // `attempts` = number of MAC transmissions used (1 = first try succeeded).
  virtual void OnTxResult(NodeId peer, bool success, int attempts) = 0;
};

class FixedRateController : public RateController {
 public:
  explicit FixedRateController(phy::WifiRate default_rate = phy::WifiRate::k11Mbps)
      : default_rate_(default_rate) {}

  void SetRate(NodeId peer, phy::WifiRate rate) { rates_[peer] = rate; }

  phy::WifiRate CurrentRate(NodeId peer) override {
    auto it = rates_.find(peer);
    return it == rates_.end() ? default_rate_ : it->second;
  }

  void OnTxResult(NodeId, bool, int) override {}

 private:
  phy::WifiRate default_rate_;
  std::map<NodeId, phy::WifiRate> rates_;
};

struct ArfConfig {
  int down_after_failures = 2;   // Consecutive failed frames before stepping down.
  int up_after_successes = 10;   // Success streak before probing the next rate up.
  phy::WifiRate initial_rate = phy::WifiRate::k11Mbps;
};

class ArfController : public RateController {
 public:
  explicit ArfController(ArfConfig config = {}) : config_(config) {}

  phy::WifiRate CurrentRate(NodeId peer) override { return State(peer).rate; }

  // Pins the current rate (e.g. association-time rate from SNR); ARF adapts from there.
  void Seed(NodeId peer, phy::WifiRate rate) {
    PeerState& st = State(peer);
    st.rate = rate;
    st.successes = 0;
    st.failures = 0;
    st.probing = false;
  }

  void OnTxResult(NodeId peer, bool success, int attempts) override {
    PeerState& st = State(peer);
    // A delivered frame that needed retries still signals a marginal link; treat more
    // than two attempts as a failure indication for adaptation purposes.
    const bool good = success && attempts <= 2;
    if (good) {
      st.failures = 0;
      ++st.successes;
      if (st.successes >= config_.up_after_successes) {
        st.successes = 0;
        st.rate = phy::StepUp(st.rate);
        st.probing = true;
        return;
      }
      st.probing = false;
      return;
    }
    ++st.failures;
    st.successes = 0;
    if (st.probing || st.failures >= config_.down_after_failures) {
      st.rate = phy::StepDown(st.rate);
      st.failures = 0;
      st.probing = false;
    }
  }

 private:
  struct PeerState {
    phy::WifiRate rate;
    int successes = 0;
    int failures = 0;
    bool probing = false;
  };

  PeerState& State(NodeId peer) {
    auto it = states_.find(peer);
    if (it == states_.end()) {
      it = states_.emplace(peer, PeerState{config_.initial_rate}).first;
    }
    return it->second;
  }

  ArfConfig config_;
  std::map<NodeId, PeerState> states_;
};

// Routes rate decisions per peer: peers marked adaptive use a shared ARF instance, all
// others use pinned rates. This is what an AP with per-client rate state looks like.
class CompositeRateController : public RateController {
 public:
  explicit CompositeRateController(ArfConfig arf_config = {}) : arf_(arf_config) {}

  void PinRate(NodeId peer, phy::WifiRate rate) { fixed_.SetRate(peer, rate); }

  void MarkAdaptive(NodeId peer, phy::WifiRate initial) {
    adaptive_.insert(peer);
    arf_.Seed(peer, initial);
  }

  phy::WifiRate CurrentRate(NodeId peer) override {
    if (adaptive_.contains(peer)) {
      return arf_.CurrentRate(peer);
    }
    return fixed_.CurrentRate(peer);
  }

  void OnTxResult(NodeId peer, bool success, int attempts) override {
    if (adaptive_.contains(peer)) {
      arf_.OnTxResult(peer, success, attempts);
    }
  }

 private:
  FixedRateController fixed_;
  ArfController arf_;
  std::set<NodeId> adaptive_;
};

}  // namespace tbf::rateadapt

#endif  // TBF_RATEADAPT_RATE_CONTROLLER_H_
