#include "tbf/util/logging.h"

#include <cstdlib>

namespace tbf {
namespace {

LogLevel g_level = LogLevel::kWarning;

}  // namespace

LogLevel GetLogLevel() { return g_level; }

void SetLogLevel(LogLevel level) { g_level = level; }

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kNone:
      return "NONE";
  }
  return "?";
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line) : level_(level) {
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') {
      base = p + 1;
    }
  }
  stream_ << "[" << LogLevelName(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  std::cerr << stream_.str();
  (void)level_;
}

CheckFailure::CheckFailure(const char* cond, const char* file, int line) {
  std::cerr << "[CHECK failed] " << cond << " at " << file << ":" << line << ": ";
}

CheckFailure::~CheckFailure() {
  std::cerr << "\n";
  std::abort();
}

}  // namespace internal
}  // namespace tbf
