#include "tbf/util/logging.h"

#include <atomic>
#include <cstdlib>
#include <mutex>

namespace tbf {
namespace {

// The level is read on every TBF_LOG site from any sweep worker thread; relaxed is
// enough (it only gates output, it does not order data).
std::atomic<LogLevel> g_level{LogLevel::kWarning};

// Serializes whole formatted lines to the sink so concurrent scenario workers cannot
// interleave characters within a line.
std::mutex& SinkMutex() {
  static std::mutex mu;
  return mu;
}

}  // namespace

LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }

void SetLogLevel(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kNone:
      return "NONE";
  }
  return "?";
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line) : level_(level) {
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') {
      base = p + 1;
    }
  }
  stream_ << "[" << LogLevelName(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  const std::string line = stream_.str();
  std::lock_guard<std::mutex> lock(SinkMutex());
  std::cerr << line;
  (void)level_;
}

CheckFailure::CheckFailure(const char* cond, const char* file, int line) {
  std::cerr << "[CHECK failed] " << cond << " at " << file << ":" << line << ": ";
}

CheckFailure::~CheckFailure() {
  std::cerr << "\n";
  std::abort();
}

}  // namespace internal
}  // namespace tbf
