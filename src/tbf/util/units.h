// Time, rate and size units used throughout the library.
//
// All simulation time is kept in integer nanoseconds (TimeNs). 802.11b timing constants are
// microsecond-granular, but byte times at 11 Mbps (727.27 ns) require sub-microsecond ticks;
// integer nanoseconds keep event ordering exact and reproducible.
#ifndef TBF_UTIL_UNITS_H_
#define TBF_UTIL_UNITS_H_

#include <cstdint>

namespace tbf {

// Absolute simulation time or a duration, in nanoseconds.
using TimeNs = int64_t;

// Link/PHY rate in bits per second.
using BitRate = int64_t;

// Identifies a node in the WLAN. The access point is kApId; wireless clients are small
// positive integers; wired hosts live at kServerId and above.
using NodeId = int32_t;

inline constexpr NodeId kApId = 0;
inline constexpr NodeId kServerId = 1000;
inline constexpr NodeId kInvalidNodeId = -1;

inline constexpr TimeNs kNsPerUs = 1'000;
inline constexpr TimeNs kNsPerMs = 1'000'000;
inline constexpr TimeNs kNsPerSec = 1'000'000'000;

constexpr TimeNs Us(int64_t us) { return us * kNsPerUs; }
constexpr TimeNs Ms(int64_t ms) { return ms * kNsPerMs; }
constexpr TimeNs Sec(int64_t s) { return s * kNsPerSec; }

constexpr double ToSeconds(TimeNs t) { return static_cast<double>(t) / kNsPerSec; }
constexpr double ToMillis(TimeNs t) { return static_cast<double>(t) / kNsPerMs; }
constexpr double ToMicros(TimeNs t) { return static_cast<double>(t) / kNsPerUs; }

constexpr BitRate Mbps(double mbps) { return static_cast<BitRate>(mbps * 1e6); }
constexpr BitRate Kbps(double kbps) { return static_cast<BitRate>(kbps * 1e3); }

// Time to serialize `bytes` at `rate`, rounded up to the next nanosecond.
constexpr TimeNs TransmissionTime(int64_t bytes, BitRate rate) {
  const int64_t bits = bytes * 8;
  return (bits * kNsPerSec + rate - 1) / rate;
}

// Throughput in bits/second given a byte count delivered over an interval.
constexpr double ThroughputBps(int64_t bytes, TimeNs interval) {
  if (interval <= 0) {
    return 0.0;
  }
  return static_cast<double>(bytes) * 8.0 / ToSeconds(interval);
}

}  // namespace tbf

#endif  // TBF_UTIL_UNITS_H_
