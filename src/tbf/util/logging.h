// Minimal leveled logging with a global severity threshold.
//
// The simulator is deterministic and heavily tested, so logging is used mostly for scenario
// debugging; benches run at kWarning to keep output clean.
//
// Thread safety (required by the sweep runner, which logs from worker threads): the
// level is an atomic, and each LogMessage assembles its full line privately before
// emitting it under a sink mutex, so concurrent scenarios never interleave within a
// line. SetLogLevel is safe to call at any time but is a process-wide knob - set it
// before launching a sweep rather than from inside jobs.
#ifndef TBF_UTIL_LOGGING_H_
#define TBF_UTIL_LOGGING_H_

#include <iostream>
#include <sstream>
#include <string>

namespace tbf {

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarning = 3, kError = 4, kNone = 5 };

LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);
const char* LogLevelName(LogLevel level);

namespace internal {

// Collects one log statement and flushes it (with level tag) on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace tbf

#define TBF_LOG(level)                                          \
  if (::tbf::LogLevel::level < ::tbf::GetLogLevel()) {          \
  } else                                                        \
    ::tbf::internal::LogMessage(::tbf::LogLevel::level, __FILE__, __LINE__).stream()

#define TBF_CHECK(cond)                                                               \
  if (cond) {                                                                         \
  } else                                                                              \
    ::tbf::internal::CheckFailure(#cond, __FILE__, __LINE__).stream()

namespace tbf::internal {

// Prints a fatal check failure and aborts on destruction.
class CheckFailure {
 public:
  CheckFailure(const char* cond, const char* file, int line);
  [[noreturn]] ~CheckFailure();

  std::ostream& stream() { return std::cerr; }
};

}  // namespace tbf::internal

#endif  // TBF_UTIL_LOGGING_H_
