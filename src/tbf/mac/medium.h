// Shared wireless medium plus the DCF contention engine.
//
// Model: a single collision domain (every station hears every other; no hidden terminals,
// matching the paper's single-cell experiments). Contention is resolved per "access round"
// instead of per-slot events: every contender holds a frozen backoff-slot count; when the
// medium is idle, a contender's access instant is
//
//     max(idle_start, join_time) + IFS + slots * slot_time
//
// The medium schedules one event at the earliest access instant. Ties transmit together and
// collide. Non-winners decrement their counters by the number of slots that elapsed. This is
// exact for DCF semantics. The earliest access instant is maintained incrementally (cached
// min with leave-invalidation; rebuilt inside loops the engine already runs), so joins and
// exchange settle are O(1) on top of the unavoidable per-exchange classification pass,
// instead of each triggering an O(contenders) rescan.
//
// A data exchange occupies the medium for DATA [+ SIFS + ACK if the data survives]. Failed
// receptions impose EIFS on third parties; the transmitter discovers failure via ACK timeout
// and retries with a doubled contention window, up to the retry limit. After every
// transmission the winner draws a fresh post-backoff (802.11 post-transmit backoff), which
// is why a single saturating sender cannot fully occupy the channel (paper Fig. 4).
#ifndef TBF_MAC_MEDIUM_H_
#define TBF_MAC_MEDIUM_H_

#include <map>
#include <optional>
#include <vector>

#include "tbf/mac/frame.h"
#include "tbf/phy/channel.h"
#include "tbf/phy/timing.h"
#include "tbf/sim/random.h"
#include "tbf/sim/simulator.h"
#include "tbf/stats/meters.h"

namespace tbf::mac {

class DcfEntity;

// Everything observable about one completed channel exchange; consumed by stats, the
// trace logger and TBR's uplink occupancy accounting.
struct ExchangeRecord {
  TimeNs tx_start = 0;    // When the data PPDU hit the air.
  TimeNs busy_end = 0;    // End of data (+ ACK when present).
  TimeNs idle_before = 0; // IFS + backoff idle time consumed ahead of this exchange.
  NodeId tx = kInvalidNodeId;
  NodeId rx = kInvalidNodeId;
  NodeId owner = kInvalidNodeId;  // Client charged with the airtime.
  bool collision = false;
  bool data_lost = false;
  bool ack_lost = false;
  bool success = false;
  int attempt = 0;  // 0 = first transmission.
  int frame_bytes = 0;
  phy::WifiRate rate = phy::WifiRate::k1Mbps;
  net::PacketPtr packet;
  TimeNs airtime = 0;  // idle_before + busy time charged to owner.
};

class MediumObserver {
 public:
  virtual ~MediumObserver() = default;
  virtual void OnExchange(const ExchangeRecord& record) = 0;
};

class Medium {
 public:
  Medium(sim::Simulator* sim, phy::MacTimings timings, const phy::LossModel* loss,
         sim::Rng* rng);

  Medium(const Medium&) = delete;
  Medium& operator=(const Medium&) = delete;

  void Attach(DcfEntity* entity);
  void AddObserver(MediumObserver* observer) { observers_.push_back(observer); }

  // Entity (re-)enters contention with a frame and a drawn backoff. Idempotent.
  void EnterContention(DcfEntity* entity);
  void LeaveContention(DcfEntity* entity);

  bool IsBusy() const { return busy_; }
  const phy::MacTimings& timings() const { return timings_; }
  sim::Simulator* simulator() { return sim_; }
  sim::Rng* rng() { return rng_; }

  // Ground-truth per-client airtime (paper's channel occupancy definition).
  const stats::AirtimeMeter& airtime_meter() const { return airtime_; }
  stats::AirtimeMeter& airtime_meter() { return airtime_; }

  // Total time the channel was carrying energy (utilization numerator).
  TimeNs busy_time() const { return busy_time_; }
  int64_t collisions() const { return collisions_; }
  int64_t exchanges() const { return exchanges_; }

  // Perf introspection: per-exchange IFS bookkeeping touches only contenders and
  // winners, never the whole cell (idle stations sync lazily on their next access).
  int64_t ifs_updates() const { return ifs_updates_; }

  // Perf introspection for the access-deadline cache: full O(contenders) rescans in
  // ScheduleAccessDecision (should stay rare - joins are O(1) compares and exchange
  // settle folds the min into the IFS loop it already runs), and reschedules skipped
  // because the recomputed deadline matched the already-scheduled event.
  int64_t deadline_rescans() const { return deadline_rescans_; }
  int64_t access_reschedules_skipped() const { return access_reschedules_skipped_; }

 private:
  friend class DcfEntity;

  void ScheduleAccessDecision();
  void OnAccessInstant();
  // Runs the exchange for the current winners_ set (built by OnAccessInstant).
  void BeginExchange(TimeNs idle_consumed);
  void FinishExchange();
  void DispatchRecord(size_t index);

  // O(1) swap-remove via the entity's contender_index_ back-pointer.
  void RemoveContender(DcfEntity* entity);
  // Lazy EIFS/DIFS pickup for entities that sat out recent exchanges.
  void SyncIfs(DcfEntity* entity);

  // Owner attribution: the client node whose traffic the frame carries.
  static NodeId OwnerOf(const MacFrame& frame);

  sim::Simulator* sim_;
  phy::MacTimings timings_;
  const phy::LossModel* loss_;
  sim::Rng* rng_;

  // Dense NodeId-indexed attach table (one receiver lookup per exchange on the hot
  // path); nullptr = no station with that id.
  std::vector<DcfEntity*> entities_;
  std::vector<DcfEntity*> contenders_;
  std::vector<MediumObserver*> observers_;

  bool busy_ = false;
  TimeNs idle_start_ = 0;
  sim::EventId access_event_ = sim::kInvalidEventId;
  TimeNs scheduled_access_at_ = -1;  // Fire time of access_event_ (valid while pending).

  // Incrementally maintained earliest access deadline over contenders_, so joins,
  // leaves and exchange settle do not rescan the whole contender set:
  //   * join:  O(1) compare against the cached min;
  //   * leave: invalidates only when the cached min holder leaves (rescan on demand);
  //   * exchange settle: the min is folded into FinishExchange's existing IFS loop;
  //   * access instant: the post-consume min is folded into the classification loop.
  // Deadlines of in-contention entities are otherwise immutable during an idle period,
  // which is what makes the cached min sound.
  TimeNs cached_earliest_ = 0;
  DcfEntity* cached_min_ = nullptr;  // Used only for leave invalidation checks.
  bool earliest_valid_ = false;

  // In-flight exchange state (one exchange at a time in a single collision domain).
  // Reused across exchanges so BeginExchange performs no per-exchange allocation once
  // warm, and so scheduled callbacks capture only (this, index).
  std::vector<DcfEntity*> winners_;
  std::vector<ExchangeRecord> exchange_records_;
  bool exchange_corrupted_ = false;

  // Post-exchange IFS epoch: entities compare their ifs_epoch_ against this and pick up
  // default_ifs_ lazily instead of being touched on every exchange.
  uint64_t ifs_epoch_ = 0;
  TimeNs default_ifs_ = 0;
  int64_t ifs_updates_ = 0;
  int64_t deadline_rescans_ = 0;
  int64_t access_reschedules_skipped_ = 0;

  stats::AirtimeMeter airtime_;
  TimeNs busy_time_ = 0;
  int64_t collisions_ = 0;
  int64_t exchanges_ = 0;
};

// Upper-layer interfaces the DCF engine pulls frames from / delivers frames to.
class FrameProvider {
 public:
  virtual ~FrameProvider() = default;
  // Next frame to transmit, or nullopt when no frame is ready. Called once per access
  // cycle; the returned frame is owned by the DCF entity until completion.
  virtual std::optional<MacFrame> NextFrame() = 0;
  // Reports the fate of a frame: delivered (success) or dropped after retry exhaustion.
  // `attempts` counts transmissions (>= 1); `airtime` is the total channel time consumed.
  virtual void OnTxComplete(const MacFrame& frame, bool success, int attempts,
                            TimeNs airtime) = 0;
};

class FrameSink {
 public:
  virtual ~FrameSink() = default;
  virtual void OnFrameReceived(const MacFrame& frame) = 0;
};

// One DCF station (a client or the AP). Owns the CSMA/CA state machine for its queue head.
class DcfEntity {
 public:
  DcfEntity(Medium* medium, NodeId id, FrameProvider* provider, FrameSink* sink);

  DcfEntity(const DcfEntity&) = delete;
  DcfEntity& operator=(const DcfEntity&) = delete;

  NodeId id() const { return id_; }

  // Signals that the provider may now have frames. Safe to call redundantly.
  void NotifyBacklog();

  // Stats.
  int64_t frames_sent() const { return frames_sent_; }
  int64_t frames_dropped() const { return frames_dropped_; }
  int64_t retransmissions() const { return retransmissions_; }

 private:
  friend class Medium;

  // Pulls the next frame (if idle) and enters contention.
  void MaybeStartAccess();
  void DrawBackoff();
  void OnTxOutcome(bool success, TimeNs airtime_used);
  void ConsumeSlots(int64_t slots);

  // Earliest instant this contender may transmit, given the current idle period.
  TimeNs AccessTime(TimeNs idle_start, TimeNs slot) const;
  int64_t SlotsElapsed(TimeNs idle_start, TimeNs slot, TimeNs now) const;

  Medium* medium_;
  NodeId id_;
  FrameProvider* provider_;
  FrameSink* sink_;

  std::optional<MacFrame> pending_;
  bool in_contention_ = false;
  bool transmitting_ = false;
  int contender_index_ = -1;  // Position in Medium::contenders_, -1 when absent.
  int64_t backoff_slots_ = 0;
  TimeNs join_time_ = 0;
  TimeNs next_ifs_ = 0;   // DIFS normally, EIFS after observing a corrupted frame.
  uint64_t ifs_epoch_ = 0;  // Last Medium::ifs_epoch_ this entity synced against.
  int cw_ = 31;
  int retry_ = 0;
  TimeNs airtime_accumulated_ = 0;  // Occupancy across attempts of the pending frame.

  int64_t frames_sent_ = 0;
  int64_t frames_dropped_ = 0;
  int64_t retransmissions_ = 0;
};

}  // namespace tbf::mac

#endif  // TBF_MAC_MEDIUM_H_
