#include "tbf/mac/medium.h"

#include <algorithm>

#include "tbf/util/logging.h"

namespace tbf::mac {

Medium::Medium(sim::Simulator* sim, phy::MacTimings timings, const phy::LossModel* loss,
               sim::Rng* rng)
    : sim_(sim), timings_(timings), loss_(loss), rng_(rng), default_ifs_(timings.Difs()) {}

void Medium::Attach(DcfEntity* entity) {
  TBF_CHECK(entities_.emplace(entity->id(), entity).second) << "duplicate node id";
}

void Medium::SyncIfs(DcfEntity* entity) {
  if (entity->ifs_epoch_ != ifs_epoch_) {
    entity->next_ifs_ = default_ifs_;
    entity->ifs_epoch_ = ifs_epoch_;
  }
}

void Medium::EnterContention(DcfEntity* entity) {
  SyncIfs(entity);
  if (entity->contender_index_ < 0) {
    entity->contender_index_ = static_cast<int>(contenders_.size());
    contenders_.push_back(entity);
  }
  entity->in_contention_ = true;
  if (!busy_) {
    ScheduleAccessDecision();
  }
}

void Medium::RemoveContender(DcfEntity* entity) {
  const int index = entity->contender_index_;
  if (index < 0) {
    return;
  }
  DcfEntity* last = contenders_.back();
  contenders_[static_cast<size_t>(index)] = last;
  last->contender_index_ = index;
  contenders_.pop_back();
  entity->contender_index_ = -1;
}

void Medium::LeaveContention(DcfEntity* entity) {
  RemoveContender(entity);
  entity->in_contention_ = false;
  if (!busy_) {
    ScheduleAccessDecision();
  }
}

NodeId Medium::OwnerOf(const MacFrame& frame) {
  if (frame.packet != nullptr && frame.packet->wlan_client != kInvalidNodeId) {
    return frame.packet->wlan_client;
  }
  return frame.src == kApId ? frame.dst : frame.src;
}

void Medium::ScheduleAccessDecision() {
  if (access_event_ != sim::kInvalidEventId) {
    sim_->Cancel(access_event_);
    access_event_ = sim::kInvalidEventId;
  }
  if (busy_ || contenders_.empty()) {
    return;
  }
  TimeNs earliest = 0;
  bool found = false;
  for (DcfEntity* e : contenders_) {
    const TimeNs t = e->AccessTime(idle_start_, timings_.slot);
    if (!found || t < earliest) {
      earliest = t;
      found = true;
    }
  }
  if (earliest < sim_->Now()) {
    earliest = sim_->Now();
  }
  access_event_ = sim_->ScheduleAt(earliest, [this] {
    access_event_ = sim::kInvalidEventId;
    OnAccessInstant();
  });
}

void Medium::OnAccessInstant() {
  if (busy_ || contenders_.empty()) {
    return;
  }
  const TimeNs now = sim_->Now();
  winners_.clear();
  for (DcfEntity* e : contenders_) {
    if (e->AccessTime(idle_start_, timings_.slot) <= now) {
      winners_.push_back(e);
    } else {
      // Non-winners consume the idle slots that elapsed while they counted down.
      e->ConsumeSlots(e->SlotsElapsed(idle_start_, timings_.slot, now));
    }
  }
  if (winners_.empty()) {
    ScheduleAccessDecision();
    return;
  }
  for (DcfEntity* w : winners_) {
    RemoveContender(w);
    w->in_contention_ = false;
    w->transmitting_ = true;
  }
  BeginExchange(now - idle_start_);
}

void Medium::BeginExchange(TimeNs idle_consumed) {
  const TimeNs now = sim_->Now();
  busy_ = true;
  ++exchanges_;

  const bool collision = winners_.size() > 1;
  if (collision) {
    ++collisions_;
  }

  TimeNs busy_until = now;
  exchange_corrupted_ = false;
  exchange_records_.clear();

  for (DcfEntity* w : winners_) {
    TBF_CHECK(w->pending_.has_value());
    const MacFrame& frame = *w->pending_;
    const TimeNs data_air = phy::FrameAirtime(frame.frame_bytes, frame.rate);
    const TimeNs data_end = now + data_air;

    ExchangeRecord record;
    record.tx_start = now;
    record.idle_before = collision ? idle_consumed / static_cast<TimeNs>(winners_.size())
                                   : idle_consumed;
    record.tx = frame.src;
    record.rx = frame.dst;
    record.owner = OwnerOf(frame);
    record.collision = collision;
    record.attempt = w->retry_;
    record.frame_bytes = frame.frame_bytes;
    record.rate = frame.rate;
    record.packet = frame.packet;

    bool data_lost = collision;
    bool ack_lost = false;
    auto rx_it = entities_.find(frame.dst);
    if (!data_lost) {
      if (rx_it == entities_.end()) {
        data_lost = true;
      } else {
        data_lost = rng_->Bernoulli(
            loss_->FrameLossProb(frame.src, frame.dst, frame.frame_bytes, frame.rate));
      }
    }

    TimeNs this_busy_end = data_end;
    if (!data_lost) {
      // Receiver ACKs after SIFS; the data frame is delivered up the stack either way.
      this_busy_end = data_end + timings_.sifs + phy::AckAirtime(frame.rate);
      ack_lost = rng_->Bernoulli(loss_->FrameLossProb(
          frame.dst, frame.src, phy::kMacAckFrameBytes, phy::AckRateFor(frame.rate)));
      DcfEntity* receiver = rx_it->second;
      const MacFrame delivered = frame;
      sim_->ScheduleAt(data_end, [receiver, delivered] {
        if (receiver->sink_ != nullptr) {
          receiver->sink_->OnFrameReceived(delivered);
        }
      });
    } else {
      exchange_corrupted_ = true;
    }

    record.data_lost = data_lost;
    record.ack_lost = ack_lost;
    record.success = !data_lost && !ack_lost;
    record.busy_end = this_busy_end;
    record.airtime = record.idle_before + (this_busy_end - now);

    busy_until = std::max(busy_until, this_busy_end);
    airtime_.Charge(record.owner, record.airtime);

    // The transmitter learns the outcome from the ACK (or its absence).
    DcfEntity* w_ptr = w;
    const TimeNs charged = record.airtime;
    if (record.success) {
      sim_->ScheduleAt(this_busy_end, [w_ptr, charged] { w_ptr->OnTxOutcome(true, charged); });
    } else {
      const TimeNs outcome_at = data_end + phy::AckTimeout(frame.rate, timings_);
      sim_->ScheduleAt(outcome_at, [w_ptr, charged] { w_ptr->OnTxOutcome(false, charged); });
    }

    // One dispatch event per record (not per observer) iterating all observers; the
    // record stays in exchange_records_, so the callback captures only (this, index).
    if (!observers_.empty()) {
      const size_t index = exchange_records_.size();
      sim_->ScheduleAt(this_busy_end, [this, index] { DispatchRecord(index); });
    }
    exchange_records_.push_back(std::move(record));
  }

  busy_time_ += busy_until - now;
  sim_->ScheduleAt(busy_until, [this] { FinishExchange(); });
}

void Medium::DispatchRecord(size_t index) {
  const ExchangeRecord& record = exchange_records_[index];
  for (MediumObserver* obs : observers_) {
    obs->OnExchange(record);
  }
}

void Medium::FinishExchange() {
  busy_ = false;
  idle_start_ = sim_->Now();
  // New IFS epoch: third parties owe EIFS when any frame in the exchange was corrupted,
  // DIFS otherwise. Only active entities (current contenders and this exchange's winners)
  // are touched here; idle stations pick the default up lazily via SyncIfs when they next
  // enter contention, so a cell full of idle stations pays nothing per exchange.
  ++ifs_epoch_;
  default_ifs_ = exchange_corrupted_ ? timings_.Eifs() : timings_.Difs();
  for (DcfEntity* c : contenders_) {
    c->next_ifs_ = default_ifs_;
    c->ifs_epoch_ = ifs_epoch_;
    ++ifs_updates_;
  }
  // Winners always resume with DIFS (they transmitted; EIFS is for third parties that
  // could not decode the exchange). This runs after the contender loop so a winner that
  // already re-entered contention ends up with DIFS either way.
  for (DcfEntity* w : winners_) {
    w->next_ifs_ = timings_.Difs();
    w->ifs_epoch_ = ifs_epoch_;
    ++ifs_updates_;
  }
  exchange_records_.clear();
  winners_.clear();  // Drop entity pointers as soon as the exchange is fully settled.
  ScheduleAccessDecision();
}

DcfEntity::DcfEntity(Medium* medium, NodeId id, FrameProvider* provider, FrameSink* sink)
    : medium_(medium),
      id_(id),
      provider_(provider),
      sink_(sink),
      next_ifs_(medium->timings().Difs()),
      cw_(medium->timings().cw_min) {
  medium_->Attach(this);
}

void DcfEntity::NotifyBacklog() { MaybeStartAccess(); }

void DcfEntity::MaybeStartAccess() {
  if (transmitting_ || in_contention_) {
    return;
  }
  if (!pending_.has_value()) {
    pending_ = provider_->NextFrame();
    if (!pending_.has_value()) {
      return;
    }
  }
  DrawBackoff();
  join_time_ = medium_->simulator()->Now();
  medium_->EnterContention(this);
}

void DcfEntity::DrawBackoff() {
  backoff_slots_ = medium_->rng()->UniformInt(0, cw_);
}

void DcfEntity::OnTxOutcome(bool success, TimeNs airtime_used) {
  transmitting_ = false;
  airtime_accumulated_ += airtime_used;
  const phy::MacTimings& t = medium_->timings();
  if (success) {
    ++frames_sent_;
    const MacFrame done = *pending_;
    const int attempts = retry_ + 1;
    const TimeNs total_airtime = airtime_accumulated_;
    pending_.reset();
    retry_ = 0;
    cw_ = t.cw_min;
    airtime_accumulated_ = 0;
    provider_->OnTxComplete(done, true, attempts, total_airtime);
    MaybeStartAccess();
    return;
  }
  ++retransmissions_;
  ++retry_;
  if (retry_ > t.retry_limit) {
    ++frames_dropped_;
    const MacFrame dropped = *pending_;
    const int attempts = retry_;
    const TimeNs total_airtime = airtime_accumulated_;
    pending_.reset();
    retry_ = 0;
    cw_ = t.cw_min;
    airtime_accumulated_ = 0;
    provider_->OnTxComplete(dropped, false, attempts, total_airtime);
    MaybeStartAccess();
    return;
  }
  cw_ = std::min(2 * cw_ + 1, t.cw_max);
  DrawBackoff();
  join_time_ = medium_->simulator()->Now();
  medium_->EnterContention(this);
}

void DcfEntity::ConsumeSlots(int64_t slots) {
  if (slots > 0) {
    backoff_slots_ = std::max<int64_t>(0, backoff_slots_ - slots);
  }
}

TimeNs DcfEntity::AccessTime(TimeNs idle_start, TimeNs slot) const {
  const TimeNs base = std::max(idle_start, join_time_);
  return base + next_ifs_ + backoff_slots_ * slot;
}

int64_t DcfEntity::SlotsElapsed(TimeNs idle_start, TimeNs slot, TimeNs now) const {
  const TimeNs countdown_start = std::max(idle_start, join_time_) + next_ifs_;
  if (now <= countdown_start) {
    return 0;
  }
  return (now - countdown_start) / slot;
}

}  // namespace tbf::mac
