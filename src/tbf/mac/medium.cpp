#include "tbf/mac/medium.h"

#include <algorithm>

#include "tbf/util/logging.h"

namespace tbf::mac {

Medium::Medium(sim::Simulator* sim, phy::MacTimings timings, const phy::LossModel* loss,
               sim::Rng* rng)
    : sim_(sim), timings_(timings), loss_(loss), rng_(rng) {}

void Medium::Attach(DcfEntity* entity) {
  TBF_CHECK(entities_.emplace(entity->id(), entity).second) << "duplicate node id";
}

void Medium::EnterContention(DcfEntity* entity) {
  if (std::find(contenders_.begin(), contenders_.end(), entity) == contenders_.end()) {
    contenders_.push_back(entity);
  }
  entity->in_contention_ = true;
  if (!busy_) {
    ScheduleAccessDecision();
  }
}

void Medium::LeaveContention(DcfEntity* entity) {
  auto it = std::find(contenders_.begin(), contenders_.end(), entity);
  if (it != contenders_.end()) {
    contenders_.erase(it);
  }
  entity->in_contention_ = false;
  if (!busy_) {
    ScheduleAccessDecision();
  }
}

NodeId Medium::OwnerOf(const MacFrame& frame) {
  if (frame.packet != nullptr && frame.packet->wlan_client != kInvalidNodeId) {
    return frame.packet->wlan_client;
  }
  return frame.src == kApId ? frame.dst : frame.src;
}

void Medium::ScheduleAccessDecision() {
  if (access_event_ != sim::kInvalidEventId) {
    sim_->Cancel(access_event_);
    access_event_ = sim::kInvalidEventId;
  }
  if (busy_ || contenders_.empty()) {
    return;
  }
  TimeNs earliest = 0;
  bool found = false;
  for (DcfEntity* e : contenders_) {
    const TimeNs t = e->AccessTime(idle_start_, timings_.slot);
    if (!found || t < earliest) {
      earliest = t;
      found = true;
    }
  }
  if (earliest < sim_->Now()) {
    earliest = sim_->Now();
  }
  access_event_ = sim_->ScheduleAt(earliest, [this] {
    access_event_ = sim::kInvalidEventId;
    OnAccessInstant();
  });
}

void Medium::OnAccessInstant() {
  if (busy_ || contenders_.empty()) {
    return;
  }
  const TimeNs now = sim_->Now();
  std::vector<DcfEntity*> winners;
  for (DcfEntity* e : contenders_) {
    if (e->AccessTime(idle_start_, timings_.slot) <= now) {
      winners.push_back(e);
    }
  }
  if (winners.empty()) {
    ScheduleAccessDecision();
    return;
  }
  // Non-winners consume the idle slots that elapsed while they counted down.
  for (DcfEntity* e : contenders_) {
    if (std::find(winners.begin(), winners.end(), e) == winners.end()) {
      e->ConsumeSlots(e->SlotsElapsed(idle_start_, timings_.slot, now));
    }
  }
  for (DcfEntity* w : winners) {
    auto it = std::find(contenders_.begin(), contenders_.end(), w);
    TBF_CHECK(it != contenders_.end());
    contenders_.erase(it);
    w->in_contention_ = false;
    w->transmitting_ = true;
  }
  BeginExchange(winners, now - idle_start_);
}

void Medium::BeginExchange(const std::vector<DcfEntity*>& winners, TimeNs idle_consumed) {
  const TimeNs now = sim_->Now();
  busy_ = true;
  ++exchanges_;

  const bool collision = winners.size() > 1;
  if (collision) {
    ++collisions_;
  }

  TimeNs busy_until = now;
  bool any_corrupted = false;

  for (DcfEntity* w : winners) {
    TBF_CHECK(w->pending_.has_value());
    const MacFrame& frame = *w->pending_;
    const TimeNs data_air = phy::FrameAirtime(frame.frame_bytes, frame.rate);
    const TimeNs data_end = now + data_air;

    ExchangeRecord record;
    record.tx_start = now;
    record.idle_before = collision ? idle_consumed / static_cast<TimeNs>(winners.size())
                                   : idle_consumed;
    record.tx = frame.src;
    record.rx = frame.dst;
    record.owner = OwnerOf(frame);
    record.collision = collision;
    record.attempt = w->retry_;
    record.frame_bytes = frame.frame_bytes;
    record.rate = frame.rate;
    record.packet = frame.packet;

    bool data_lost = collision;
    bool ack_lost = false;
    auto rx_it = entities_.find(frame.dst);
    if (!data_lost) {
      if (rx_it == entities_.end()) {
        data_lost = true;
      } else {
        data_lost = rng_->Bernoulli(
            loss_->FrameLossProb(frame.src, frame.dst, frame.frame_bytes, frame.rate));
      }
    }

    TimeNs this_busy_end = data_end;
    if (!data_lost) {
      // Receiver ACKs after SIFS; the data frame is delivered up the stack either way.
      this_busy_end = data_end + timings_.sifs + phy::AckAirtime(frame.rate);
      ack_lost = rng_->Bernoulli(loss_->FrameLossProb(
          frame.dst, frame.src, phy::kMacAckFrameBytes, phy::AckRateFor(frame.rate)));
      DcfEntity* receiver = rx_it->second;
      const MacFrame delivered = frame;
      sim_->ScheduleAt(data_end, [receiver, delivered] {
        if (receiver->sink_ != nullptr) {
          receiver->sink_->OnFrameReceived(delivered);
        }
      });
    } else {
      any_corrupted = true;
    }

    record.data_lost = data_lost;
    record.ack_lost = ack_lost;
    record.success = !data_lost && !ack_lost;
    record.busy_end = this_busy_end;
    record.airtime = record.idle_before + (this_busy_end - now);

    busy_until = std::max(busy_until, this_busy_end);
    airtime_.Charge(record.owner, record.airtime);

    // The transmitter learns the outcome from the ACK (or its absence).
    DcfEntity* w_ptr = w;
    const TimeNs charged = record.airtime;
    if (record.success) {
      sim_->ScheduleAt(this_busy_end, [w_ptr, charged] { w_ptr->OnTxOutcome(true, charged); });
    } else {
      const TimeNs outcome_at = data_end + phy::AckTimeout(frame.rate, timings_);
      sim_->ScheduleAt(outcome_at, [w_ptr, charged] { w_ptr->OnTxOutcome(false, charged); });
    }

    for (MediumObserver* obs : observers_) {
      ExchangeRecord copy = record;
      sim_->ScheduleAt(this_busy_end, [obs, copy] { obs->OnExchange(copy); });
    }
  }

  busy_time_ += busy_until - now;
  sim_->ScheduleAt(busy_until, [this, any_corrupted, winners] {
    FinishExchange(any_corrupted, winners);
  });
}

void Medium::FinishExchange(bool corrupted, const std::vector<DcfEntity*>& winners) {
  busy_ = false;
  idle_start_ = sim_->Now();
  for (auto& [id, entity] : entities_) {
    const bool was_winner =
        std::find(winners.begin(), winners.end(), entity) != winners.end();
    entity->next_ifs_ = (corrupted && !was_winner) ? timings_.Eifs() : timings_.Difs();
  }
  ScheduleAccessDecision();
}

DcfEntity::DcfEntity(Medium* medium, NodeId id, FrameProvider* provider, FrameSink* sink)
    : medium_(medium),
      id_(id),
      provider_(provider),
      sink_(sink),
      next_ifs_(medium->timings().Difs()),
      cw_(medium->timings().cw_min) {
  medium_->Attach(this);
}

void DcfEntity::NotifyBacklog() { MaybeStartAccess(); }

void DcfEntity::MaybeStartAccess() {
  if (transmitting_ || in_contention_) {
    return;
  }
  if (!pending_.has_value()) {
    pending_ = provider_->NextFrame();
    if (!pending_.has_value()) {
      return;
    }
  }
  DrawBackoff();
  join_time_ = medium_->simulator()->Now();
  medium_->EnterContention(this);
}

void DcfEntity::DrawBackoff() {
  backoff_slots_ = medium_->rng()->UniformInt(0, cw_);
}

void DcfEntity::OnTxOutcome(bool success, TimeNs airtime_used) {
  transmitting_ = false;
  airtime_accumulated_ += airtime_used;
  const phy::MacTimings& t = medium_->timings();
  if (success) {
    ++frames_sent_;
    const MacFrame done = *pending_;
    const int attempts = retry_ + 1;
    const TimeNs total_airtime = airtime_accumulated_;
    pending_.reset();
    retry_ = 0;
    cw_ = t.cw_min;
    airtime_accumulated_ = 0;
    provider_->OnTxComplete(done, true, attempts, total_airtime);
    MaybeStartAccess();
    return;
  }
  ++retransmissions_;
  ++retry_;
  if (retry_ > t.retry_limit) {
    ++frames_dropped_;
    const MacFrame dropped = *pending_;
    const int attempts = retry_;
    const TimeNs total_airtime = airtime_accumulated_;
    pending_.reset();
    retry_ = 0;
    cw_ = t.cw_min;
    airtime_accumulated_ = 0;
    provider_->OnTxComplete(dropped, false, attempts, total_airtime);
    MaybeStartAccess();
    return;
  }
  cw_ = std::min(2 * cw_ + 1, t.cw_max);
  DrawBackoff();
  join_time_ = medium_->simulator()->Now();
  medium_->EnterContention(this);
}

void DcfEntity::ConsumeSlots(int64_t slots) {
  if (slots > 0) {
    backoff_slots_ = std::max<int64_t>(0, backoff_slots_ - slots);
  }
}

TimeNs DcfEntity::AccessTime(TimeNs idle_start, TimeNs slot) const {
  const TimeNs base = std::max(idle_start, join_time_);
  return base + next_ifs_ + backoff_slots_ * slot;
}

int64_t DcfEntity::SlotsElapsed(TimeNs idle_start, TimeNs slot, TimeNs now) const {
  const TimeNs countdown_start = std::max(idle_start, join_time_) + next_ifs_;
  if (now <= countdown_start) {
    return 0;
  }
  return (now - countdown_start) / slot;
}

}  // namespace tbf::mac
