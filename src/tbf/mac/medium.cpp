#include "tbf/mac/medium.h"

#include <algorithm>

#include "tbf/util/logging.h"

namespace tbf::mac {

Medium::Medium(sim::Simulator* sim, phy::MacTimings timings, const phy::LossModel* loss,
               sim::Rng* rng)
    : sim_(sim), timings_(timings), loss_(loss), rng_(rng), default_ifs_(timings.Difs()) {}

void Medium::Attach(DcfEntity* entity) {
  const NodeId id = entity->id();
  TBF_CHECK(id >= 0) << "station ids must be non-negative";
  if (static_cast<size_t>(id) >= entities_.size()) {
    entities_.resize(static_cast<size_t>(id) + 1, nullptr);
  }
  TBF_CHECK(entities_[static_cast<size_t>(id)] == nullptr) << "duplicate node id";
  entities_[static_cast<size_t>(id)] = entity;
}

void Medium::SyncIfs(DcfEntity* entity) {
  if (entity->ifs_epoch_ != ifs_epoch_) {
    entity->next_ifs_ = default_ifs_;
    entity->ifs_epoch_ = ifs_epoch_;
  }
}

void Medium::EnterContention(DcfEntity* entity) {
  SyncIfs(entity);
  const bool added = entity->contender_index_ < 0;
  if (added) {
    entity->contender_index_ = static_cast<int>(contenders_.size());
    contenders_.push_back(entity);
  }
  entity->in_contention_ = true;
  if (busy_) {
    return;  // FinishExchange rebuilds the deadline cache over all contenders.
  }
  if (added) {
    // O(1) cache maintenance: a newcomer can only lower the earliest deadline.
    const TimeNs t = entity->AccessTime(idle_start_, timings_.slot);
    if (contenders_.size() == 1) {
      cached_earliest_ = t;
      cached_min_ = entity;
      earliest_valid_ = true;
    } else if (earliest_valid_ && t < cached_earliest_) {
      cached_earliest_ = t;
      cached_min_ = entity;
    }
  }
  ScheduleAccessDecision();
}

void Medium::RemoveContender(DcfEntity* entity) {
  const int index = entity->contender_index_;
  if (index < 0) {
    return;
  }
  DcfEntity* last = contenders_.back();
  contenders_[static_cast<size_t>(index)] = last;
  last->contender_index_ = index;
  contenders_.pop_back();
  entity->contender_index_ = -1;
  if (entity == cached_min_) {
    // The min holder left; recompute lazily on the next ScheduleAccessDecision.
    earliest_valid_ = false;
    cached_min_ = nullptr;
  }
}

void Medium::LeaveContention(DcfEntity* entity) {
  RemoveContender(entity);
  entity->in_contention_ = false;
  if (!busy_) {
    ScheduleAccessDecision();
  }
}

NodeId Medium::OwnerOf(const MacFrame& frame) {
  if (frame.packet != nullptr && frame.packet->wlan_client != kInvalidNodeId) {
    return frame.packet->wlan_client;
  }
  return frame.src == kApId ? frame.dst : frame.src;
}

void Medium::ScheduleAccessDecision() {
  if (busy_ || contenders_.empty()) {
    if (access_event_ != sim::kInvalidEventId) {
      sim_->Cancel(access_event_);
      access_event_ = sim::kInvalidEventId;
    }
    return;
  }
  if (!earliest_valid_) {
    // Fallback full scan - only after the cached min holder left contention (or a
    // stale access instant found no winners with the cache cold).
    ++deadline_rescans_;
    TimeNs earliest = 0;
    DcfEntity* min_entity = nullptr;
    for (DcfEntity* e : contenders_) {
      const TimeNs t = e->AccessTime(idle_start_, timings_.slot);
      if (min_entity == nullptr || t < earliest) {
        earliest = t;
        min_entity = e;
      }
    }
    cached_earliest_ = earliest;
    cached_min_ = min_entity;
    earliest_valid_ = true;
  }
  const TimeNs at = std::max(cached_earliest_, sim_->Now());
  if (access_event_ != sim::kInvalidEventId) {
    if (at == scheduled_access_at_) {
      // The recomputed deadline matches the pending event; skip the cancel+schedule
      // churn entirely.
      ++access_reschedules_skipped_;
      return;
    }
    sim_->Cancel(access_event_);
  }
  scheduled_access_at_ = at;
  access_event_ = sim_->ScheduleAt(at, [this] {
    access_event_ = sim::kInvalidEventId;
    OnAccessInstant();
  });
}

void Medium::OnAccessInstant() {
  if (busy_ || contenders_.empty()) {
    return;
  }
  const TimeNs now = sim_->Now();
  winners_.clear();
  TimeNs next_earliest = 0;
  DcfEntity* next_min = nullptr;
  for (DcfEntity* e : contenders_) {
    if (e->AccessTime(idle_start_, timings_.slot) <= now) {
      winners_.push_back(e);
    } else {
      // Non-winners consume the idle slots that elapsed while they counted down.
      e->ConsumeSlots(e->SlotsElapsed(idle_start_, timings_.slot, now));
      // Fold the post-consume min into this classification pass so the no-winner
      // path below needs no second scan.
      const TimeNs t = e->AccessTime(idle_start_, timings_.slot);
      if (next_min == nullptr || t < next_earliest) {
        next_earliest = t;
        next_min = e;
      }
    }
  }
  if (winners_.empty()) {
    cached_earliest_ = next_earliest;
    cached_min_ = next_min;
    earliest_valid_ = next_min != nullptr;
    ScheduleAccessDecision();
    return;
  }
  for (DcfEntity* w : winners_) {
    RemoveContender(w);
    w->in_contention_ = false;
    w->transmitting_ = true;
  }
  BeginExchange(now - idle_start_);
}

void Medium::BeginExchange(TimeNs idle_consumed) {
  const TimeNs now = sim_->Now();
  busy_ = true;
  ++exchanges_;

  const bool collision = winners_.size() > 1;
  if (collision) {
    ++collisions_;
  }

  TimeNs busy_until = now;
  exchange_corrupted_ = false;
  exchange_records_.clear();

  for (DcfEntity* w : winners_) {
    TBF_CHECK(w->pending_.has_value());
    const MacFrame& frame = *w->pending_;
    const TimeNs data_air = phy::FrameAirtime(frame.frame_bytes, frame.rate);
    const TimeNs data_end = now + data_air;

    ExchangeRecord record;
    record.tx_start = now;
    record.idle_before = collision ? idle_consumed / static_cast<TimeNs>(winners_.size())
                                   : idle_consumed;
    record.tx = frame.src;
    record.rx = frame.dst;
    record.owner = OwnerOf(frame);
    record.collision = collision;
    record.attempt = w->retry_;
    record.frame_bytes = frame.frame_bytes;
    record.rate = frame.rate;
    record.packet = frame.packet;

    bool data_lost = collision;
    bool ack_lost = false;
    DcfEntity* rx = frame.dst >= 0 && static_cast<size_t>(frame.dst) < entities_.size()
                        ? entities_[static_cast<size_t>(frame.dst)]
                        : nullptr;
    if (!data_lost) {
      if (rx == nullptr) {
        data_lost = true;
      } else {
        data_lost = rng_->Bernoulli(
            loss_->FrameLossProb(frame.src, frame.dst, frame.frame_bytes, frame.rate));
      }
    }

    TimeNs this_busy_end = data_end;
    if (!data_lost) {
      // Receiver ACKs after SIFS; the data frame is delivered up the stack either way.
      this_busy_end = data_end + timings_.sifs + phy::AckAirtime(frame.rate);
      ack_lost = rng_->Bernoulli(loss_->FrameLossProb(
          frame.dst, frame.src, phy::kMacAckFrameBytes, phy::AckRateFor(frame.rate)));
      DcfEntity* receiver = rx;
      // Trivially-copyable capture: the packet reference rides as a raw detached
      // handle and the MacFrame is rebuilt at delivery time, so the event slab never
      // runs refcount traffic or a relocate thunk for frame deliveries.
      struct InFlightFrame {
        NodeId src;
        NodeId dst;
        int frame_bytes;
        phy::WifiRate rate;
        net::Packet* packet;
      };
      const InFlightFrame in_flight{frame.src, frame.dst, frame.frame_bytes, frame.rate,
                                    frame.packet.DetachCopy()};
      sim_->ScheduleAt(data_end, [receiver, in_flight] {
        MacFrame delivered;
        delivered.src = in_flight.src;
        delivered.dst = in_flight.dst;
        delivered.frame_bytes = in_flight.frame_bytes;
        delivered.rate = in_flight.rate;
        delivered.packet = net::PacketPtr::Adopt(in_flight.packet);
        if (receiver->sink_ != nullptr) {
          receiver->sink_->OnFrameReceived(delivered);
        }
      });
    } else {
      exchange_corrupted_ = true;
    }

    record.data_lost = data_lost;
    record.ack_lost = ack_lost;
    record.success = !data_lost && !ack_lost;
    record.busy_end = this_busy_end;
    record.airtime = record.idle_before + (this_busy_end - now);

    busy_until = std::max(busy_until, this_busy_end);
    airtime_.Charge(record.owner, record.airtime);

    // The transmitter learns the outcome from the ACK (or its absence). For the common
    // single-winner exchange the successful outcome, the observer dispatch, and the
    // exchange settle all fire at the same instant (this_busy_end == busy_until); they
    // are folded into one scheduled callback after the loop instead of three slab
    // entries. A failed single-winner outcome fires at the ACK timeout, which can
    // differ from busy_until, so it stays its own event - scheduled here, before the
    // fold, preserving its sequence order against an equal-time settle.
    DcfEntity* w_ptr = w;
    const TimeNs charged = record.airtime;
    if (collision) {
      // Multi-winner exchanges are rare (and their outcome times diverge); keep the
      // straightforward one-event-per-concern path.
      const TimeNs outcome_at =
          record.success ? this_busy_end : data_end + phy::AckTimeout(frame.rate, timings_);
      const bool ok = record.success;
      sim_->ScheduleAt(outcome_at, [w_ptr, charged, ok] { w_ptr->OnTxOutcome(ok, charged); });
      // One dispatch event per record (not per observer) iterating all observers; the
      // record stays in exchange_records_, so the callback captures only (this, index).
      if (!observers_.empty()) {
        const size_t index = exchange_records_.size();
        sim_->ScheduleAt(this_busy_end, [this, index] { DispatchRecord(index); });
      }
    } else if (!record.success) {
      const TimeNs outcome_at = data_end + phy::AckTimeout(frame.rate, timings_);
      sim_->ScheduleAt(outcome_at, [w_ptr, charged] { w_ptr->OnTxOutcome(false, charged); });
    }
    exchange_records_.push_back(std::move(record));
  }

  busy_time_ += busy_until - now;
  if (!collision) {
    // Folded settle for the single-winner case: outcome (success only - the failure
    // outcome was scheduled above at its ACK-timeout instant), observer dispatch, then
    // FinishExchange, in exactly the relative order the three separate events fired in.
    // No callback runs between the Schedule calls of one BeginExchange, so folding
    // consecutive equal-time events preserves the global event order bit for bit; the
    // callbacks themselves cannot tell (EnterContention no-ops while busy_ holds, and
    // DispatchRecord runs before FinishExchange clears exchange_records_).
    DcfEntity* w_ptr = winners_[0];
    const TimeNs charged = exchange_records_[0].airtime;
    const bool deliver_outcome = exchange_records_[0].success;
    sim_->ScheduleAt(busy_until, [this, w_ptr, charged, deliver_outcome] {
      if (deliver_outcome) {
        w_ptr->OnTxOutcome(true, charged);
      }
      if (!observers_.empty()) {
        DispatchRecord(0);
      }
      FinishExchange();
    });
  } else {
    sim_->ScheduleAt(busy_until, [this] { FinishExchange(); });
  }
}

void Medium::DispatchRecord(size_t index) {
  const ExchangeRecord& record = exchange_records_[index];
  for (MediumObserver* obs : observers_) {
    obs->OnExchange(record);
  }
}

void Medium::FinishExchange() {
  busy_ = false;
  idle_start_ = sim_->Now();
  // New IFS epoch: third parties owe EIFS when any frame in the exchange was corrupted,
  // DIFS otherwise. Only active entities (current contenders and this exchange's winners)
  // are touched here; idle stations pick the default up lazily via SyncIfs when they next
  // enter contention, so a cell full of idle stations pays nothing per exchange.
  ++ifs_epoch_;
  default_ifs_ = exchange_corrupted_ ? timings_.Eifs() : timings_.Difs();
  // The deadline cache is rebuilt inside the IFS loop the settle already runs, so the
  // subsequent ScheduleAccessDecision is O(1) instead of a second full scan.
  TimeNs earliest = 0;
  DcfEntity* min_entity = nullptr;
  for (DcfEntity* c : contenders_) {
    c->next_ifs_ = default_ifs_;
    c->ifs_epoch_ = ifs_epoch_;
    ++ifs_updates_;
    const TimeNs t = c->AccessTime(idle_start_, timings_.slot);
    if (min_entity == nullptr || t < earliest) {
      earliest = t;
      min_entity = c;
    }
  }
  cached_earliest_ = earliest;
  cached_min_ = min_entity;
  earliest_valid_ = min_entity != nullptr;
  // Winners always resume with DIFS (they transmitted; EIFS is for third parties that
  // could not decode the exchange). This runs after the contender loop so a winner that
  // already re-entered contention ends up with DIFS either way.
  for (DcfEntity* w : winners_) {
    w->next_ifs_ = timings_.Difs();
    w->ifs_epoch_ = ifs_epoch_;
    ++ifs_updates_;
    if (w->contender_index_ >= 0) {
      // A winner that already re-entered contention was seen by the loop above with
      // default_ifs_; DIFS may be shorter (EIFS epoch), so re-fold its deadline.
      const TimeNs t = w->AccessTime(idle_start_, timings_.slot);
      if (!earliest_valid_ || t < cached_earliest_) {
        cached_earliest_ = t;
        cached_min_ = w;
        earliest_valid_ = true;
      }
    }
  }
  exchange_records_.clear();
  winners_.clear();  // Drop entity pointers as soon as the exchange is fully settled.
  ScheduleAccessDecision();
}

DcfEntity::DcfEntity(Medium* medium, NodeId id, FrameProvider* provider, FrameSink* sink)
    : medium_(medium),
      id_(id),
      provider_(provider),
      sink_(sink),
      next_ifs_(medium->timings().Difs()),
      cw_(medium->timings().cw_min) {
  medium_->Attach(this);
}

void DcfEntity::NotifyBacklog() { MaybeStartAccess(); }

void DcfEntity::MaybeStartAccess() {
  if (transmitting_ || in_contention_) {
    return;
  }
  if (!pending_.has_value()) {
    pending_ = provider_->NextFrame();
    if (!pending_.has_value()) {
      return;
    }
  }
  DrawBackoff();
  join_time_ = medium_->simulator()->Now();
  medium_->EnterContention(this);
}

void DcfEntity::DrawBackoff() {
  backoff_slots_ = medium_->rng()->UniformInt(0, cw_);
}

void DcfEntity::OnTxOutcome(bool success, TimeNs airtime_used) {
  transmitting_ = false;
  airtime_accumulated_ += airtime_used;
  const phy::MacTimings& t = medium_->timings();
  if (success) {
    ++frames_sent_;
    const MacFrame done = *pending_;
    const int attempts = retry_ + 1;
    const TimeNs total_airtime = airtime_accumulated_;
    pending_.reset();
    retry_ = 0;
    cw_ = t.cw_min;
    airtime_accumulated_ = 0;
    provider_->OnTxComplete(done, true, attempts, total_airtime);
    MaybeStartAccess();
    return;
  }
  ++retransmissions_;
  ++retry_;
  if (retry_ > t.retry_limit) {
    ++frames_dropped_;
    const MacFrame dropped = *pending_;
    const int attempts = retry_;
    const TimeNs total_airtime = airtime_accumulated_;
    pending_.reset();
    retry_ = 0;
    cw_ = t.cw_min;
    airtime_accumulated_ = 0;
    provider_->OnTxComplete(dropped, false, attempts, total_airtime);
    MaybeStartAccess();
    return;
  }
  cw_ = std::min(2 * cw_ + 1, t.cw_max);
  DrawBackoff();
  join_time_ = medium_->simulator()->Now();
  medium_->EnterContention(this);
}

void DcfEntity::ConsumeSlots(int64_t slots) {
  if (slots > 0) {
    backoff_slots_ = std::max<int64_t>(0, backoff_slots_ - slots);
  }
}

TimeNs DcfEntity::AccessTime(TimeNs idle_start, TimeNs slot) const {
  const TimeNs base = std::max(idle_start, join_time_);
  return base + next_ifs_ + backoff_slots_ * slot;
}

int64_t DcfEntity::SlotsElapsed(TimeNs idle_start, TimeNs slot, TimeNs now) const {
  const TimeNs countdown_start = std::max(idle_start, join_time_) + next_ifs_;
  if (now <= countdown_start) {
    return 0;
  }
  return (now - countdown_start) / slot;
}

}  // namespace tbf::mac
