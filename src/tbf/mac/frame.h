// MAC-layer data frame descriptor handed between hosts and the DCF engine.
#ifndef TBF_MAC_FRAME_H_
#define TBF_MAC_FRAME_H_

#include "tbf/net/packet.h"
#include "tbf/phy/rates.h"
#include "tbf/phy/timing.h"
#include "tbf/util/units.h"

namespace tbf::mac {

struct MacFrame {
  NodeId src = kInvalidNodeId;
  NodeId dst = kInvalidNodeId;
  int frame_bytes = 0;  // MAC header + LLC + payload + FCS.
  phy::WifiRate rate = phy::WifiRate::k1Mbps;
  net::PacketPtr packet;
};

// Wraps a network packet into a MAC data frame at the given PHY rate.
inline MacFrame MakeDataFrame(NodeId src, NodeId dst, net::PacketPtr packet,
                              phy::WifiRate rate) {
  MacFrame f;
  f.src = src;
  f.dst = dst;
  f.frame_bytes = packet->size_bytes + phy::kMacDataOverheadBytes;
  f.rate = rate;
  f.packet = std::move(packet);
  return f;
}

}  // namespace tbf::mac

#endif  // TBF_MAC_FRAME_H_
