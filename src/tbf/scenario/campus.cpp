#include "tbf/scenario/campus.h"

namespace tbf::scenario {

std::string ValidateCampus(const CampusConfig& config, const std::vector<BssSpec>& bss) {
  if (bss.empty()) {
    return "campus: needs at least one BSS";
  }
  if (config.backbone_rate <= 0) {
    return "campus: backbone_rate must be > 0";
  }
  if (config.backbone_delay <= 0) {
    return "campus: backbone_delay must be > 0 (it is the conservative lookahead window)";
  }
  if (config.backbone_queue_limit == 0) {
    return "campus: backbone_queue_limit must be > 0";
  }
  for (size_t i = 0; i < bss.size(); ++i) {
    const std::string tag = "bss #" + std::to_string(i);
    if (bss[i].backbone_delay == 0 || bss[i].backbone_delay < -1) {
      return tag + ": backbone_delay must be > 0 (or -1 to inherit)";
    }
    if (std::string err = ValidateScenario(config.cell, bss[i].stations, bss[i].flows);
        !err.empty()) {
      return tag + ": " + err;
    }
    for (size_t f = 0; f < bss[i].flows.size(); ++f) {
      const FlowSpec& spec = bss[i].flows[f];
      if (spec.transport == Transport::kUdp && spec.model != TrafficModel::kBulk) {
        return tag + " flow #" + std::to_string(f) +
               ": campus UDP flows must be kBulk (finite UDP tasks complete at the "
               "sink, which lives in the opposite shard from the source)";
      }
    }
  }
  return std::string();
}

}  // namespace tbf::scenario
