// Declarative multi-AP campus: several single-cell WLANs joined by a wired backbone.
//
// A campus is a list of BSSes - each one a full single-cell scenario (stations + flows,
// sharing the campus-wide ScenarioConfig) - plus the backbone links that carry every
// flow's wired leg to/from the central server. The campus is the unit the sharded
// simulator (shard::CampusSim) partitions: one shard per BSS plus one for the wired
// core, with the minimum backbone one-way latency as the conservative lookahead window.
// That is why validation rejects a zero backbone delay: no latency means no lookahead
// horizon, and the shards could not run a window ahead of each other.
#ifndef TBF_SCENARIO_CAMPUS_H_
#define TBF_SCENARIO_CAMPUS_H_

#include <string>
#include <vector>

#include "tbf/scenario/results.h"
#include "tbf/scenario/wlan.h"

namespace tbf::scenario {

// One BSS: an AP with its stations and their flows. Station ids and flow client ids are
// cell-local (each BSS has its own id space, exactly like a standalone Wlan); flow ids
// are assigned campus-wide in declaration order so results stay comparable across
// shardings.
struct BssSpec {
  std::vector<StationSpec> stations;
  std::vector<FlowSpec> flows;
  // One-way propagation delay of this BSS's backbone link; -1 inherits
  // CampusConfig::backbone_delay. Must be > 0 (it bounds the lookahead window).
  TimeNs backbone_delay = -1;

  friend bool operator==(const BssSpec&, const BssSpec&) = default;
};

struct CampusConfig {
  // Per-cell scenario knobs shared by every BSS (qdisc, MAC timings, warmup/duration).
  // `cell.seed` seeds the campus: cell i derives seed + 1 + i, the wired core uses seed
  // itself, so per-cell streams are independent and reproducible. The single-cell
  // wired_rate/wired_delay fields are ignored - the backbone fields below replace them.
  ScenarioConfig cell;
  BitRate backbone_rate = Mbps(1000);
  TimeNs backbone_delay = Us(500);      // One-way; must be > 0.
  size_t backbone_queue_limit = 4096;   // Per-direction backbone queue (packets).

  friend bool operator==(const CampusConfig&, const CampusConfig&) = default;
};

// Validates the whole campus: each BSS must pass ValidateScenario with the shared cell
// config, every backbone delay must be strictly positive (zero would collapse the
// conservative lookahead window to nothing), and UDP flows must be kBulk - finite UDP
// task chains complete at the sink, which in a sharded campus lives in the opposite
// shard from the source, and restarting the source from there would need a
// cross-shard control channel the conservative protocol does not provide.
// Returns an empty string when valid, else a one-line diagnostic.
std::string ValidateCampus(const CampusConfig& config, const std::vector<BssSpec>& bss);

// Campus-wide readout: one Results per BSS (same shape a standalone Wlan would return)
// plus the cross-cell aggregates and the sharding telemetry.
struct CampusResults {
  std::vector<Results> cells;

  double aggregate_bps = 0.0;         // Sum of all cells' aggregate goodput.
  int64_t tasks_completed = 0;
  int64_t mac_exchanges = 0;
  int64_t mac_collisions = 0;

  // Campus-wide latency distributions (merged across cells).
  LatencySummary rtt;
  LatencySummary ap_queue_delay;
  LatencySummary task_latency;
  stats::QuantileSketch rtt_sketch;
  stats::QuantileSketch ap_queue_delay_sketch;
  stats::QuantileSketch task_latency_sketch;

  // Campus-wide interval-percentile series (empty unless cell.stats.window > 0): per
  // window, every shard's sealed sketch merged at the barrier in fixed cell order -
  // bit-identical for any TBF_SHARD_THREADS like everything else here.
  stats::MeterSeries rtt_series;
  stats::MeterSeries ap_queue_delay_series;
  stats::MeterSeries task_latency_series;
  // Campus-wide windowed goodput: bytes delivered per sealed window across every
  // shard, folded at the same barriers as the latency series (exact integer sums).
  stats::ByteSeries goodput_series;

  // Sharding telemetry (identical for every shard-thread count by construction).
  TimeNs lookahead = 0;               // Conservative window: min one-way backbone delay.
  int64_t windows = 0;                // Lock-step windows executed.
  int64_t cross_shard_packets = 0;    // Packets that crossed a shard boundary.
  int64_t backbone_drops = 0;         // Backbone queue overflows (both directions).

  friend bool operator==(const CampusResults&, const CampusResults&) = default;
};

}  // namespace tbf::scenario

#endif  // TBF_SCENARIO_CAMPUS_H_
