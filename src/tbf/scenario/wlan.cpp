#include "tbf/scenario/wlan.h"

#include <algorithm>

#include "tbf/util/logging.h"

namespace tbf::scenario {
namespace {

// Routes loss lookups to the SNR model for stations configured with snr_db, and to the
// fixed-PER table for everyone else.
class DispatchLossModel : public phy::LossModel {
 public:
  DispatchLossModel(const phy::FixedPerLink* fixed, const phy::SnrLossModel* snr)
      : fixed_(fixed), snr_(snr) {}

  double FrameLossProb(NodeId src, NodeId dst, int frame_bytes,
                       phy::WifiRate rate) const override {
    const NodeId client = src == kApId ? dst : src;
    if (snr_->HasClient(client)) {
      return snr_->FrameLossProb(src, dst, frame_bytes, rate);
    }
    return fixed_->FrameLossProb(src, dst, frame_bytes, rate);
  }

 private:
  const phy::FixedPerLink* fixed_;
  const phy::SnrLossModel* snr_;
};

}  // namespace

// One constructed flow: transport endpoints plus measurement counters.
struct Wlan::FlowRuntime {
  FlowSpec spec;
  int flow_id = -1;

  std::unique_ptr<net::TcpSender> tcp_sender;
  std::unique_ptr<net::TcpReceiver> tcp_receiver;
  std::unique_ptr<net::UdpSource> udp_source;
  std::unique_ptr<net::UdpSink> udp_sink;

  int64_t delivered_bytes = 0;   // Total payload delivered (from flow start).
  int64_t window_snapshot = 0;   // Delivered bytes at warmup.
};

Wlan::Wlan(ScenarioConfig config) : config_(config) {}

Wlan::~Wlan() = default;

StationSpec& Wlan::AddStation(NodeId id, phy::WifiRate rate, double per) {
  StationSpec spec;
  spec.id = id;
  spec.rate = rate;
  spec.per = per;
  return AddStation(spec);
}

StationSpec& Wlan::AddStation(StationSpec spec) {
  TBF_CHECK(!built_) << "AddStation after Run";
  TBF_CHECK(spec.id > 0 && spec.id < kServerId) << "client ids must be in (0, kServerId)";
  station_specs_.push_back(spec);
  return station_specs_.back();
}

FlowSpec& Wlan::AddFlow(FlowSpec spec) {
  TBF_CHECK(!built_) << "AddFlow after Run";
  flow_specs_.push_back(spec);
  return flow_specs_.back();
}

FlowSpec& Wlan::AddBulkTcp(NodeId client, Direction direction) {
  FlowSpec spec;
  spec.client = client;
  spec.direction = direction;
  spec.transport = Transport::kTcp;
  return AddFlow(spec);
}

FlowSpec& Wlan::AddSaturatingUdp(NodeId client, Direction direction) {
  FlowSpec spec;
  spec.client = client;
  spec.direction = direction;
  spec.transport = Transport::kUdp;
  spec.udp_rate = Mbps(9);  // Above any single DSSS link's capacity.
  return AddFlow(spec);
}

std::unique_ptr<ap::Qdisc> Wlan::MakeQdisc() {
  switch (config_.qdisc) {
    case QdiscKind::kFifo:
      return std::make_unique<ap::FifoQdisc>(config_.fifo_limit);
    case QdiscKind::kRoundRobin:
      return std::make_unique<ap::RoundRobinQdisc>(config_.per_queue_limit);
    case QdiscKind::kDrr:
      return std::make_unique<ap::DrrQdisc>(config_.per_queue_limit);
    case QdiscKind::kOarBurst: {
      // OAR-style comparison baseline: bursts sized by the client's current rate.
      rateadapt::CompositeRateController* rates = ap_rates_.get();
      return std::make_unique<ap::BurstRoundRobinQdisc>(
          [rates](NodeId client) { return phy::GetRateInfo(rates->CurrentRate(client)).bps; },
          Mbps(1), config_.per_queue_limit);
    }
    case QdiscKind::kTbr: {
      auto tbr = std::make_unique<core::TimeBasedRegulator>(&sim_, config_.timings,
                                                            config_.tbr);
      tbr_ = tbr.get();
      return tbr;
    }
  }
  return nullptr;
}

void Wlan::Build() {
  TBF_CHECK(!built_);
  built_ = true;

  rng_ = std::make_unique<sim::Rng>(config_.seed);
  fixed_loss_ = std::make_unique<phy::FixedPerLink>();
  snr_loss_ = std::make_unique<phy::SnrLossModel>();
  loss_ = std::make_unique<DispatchLossModel>(fixed_loss_.get(), snr_loss_.get());
  medium_ = std::make_unique<mac::Medium>(&sim_, config_.timings, loss_.get(), rng_.get());
  ap_rates_ = std::make_unique<rateadapt::CompositeRateController>();
  ap_ = std::make_unique<ap::AccessPoint>(&sim_, medium_.get(), MakeQdisc(), ap_rates_.get());
  wired_ = std::make_unique<net::WiredLink>(&sim_, config_.wired_rate, config_.wired_delay);
  demux_ = std::make_unique<net::Demux>();
  server_ = std::make_unique<net::WiredHost>(&sim_, kServerId, demux_.get(), wired_.get());

  ap_->ConnectWired(wired_.get());
  wired_->SetTowardAp([this](net::PacketPtr p) { ap_->EnqueueDownlink(std::move(p)); });

  for (const StationSpec& spec : station_specs_) {
    if (spec.snr_db != 0.0) {
      snr_loss_->SetClientSnr(spec.id, spec.snr_db);
    } else if (spec.per > 0.0) {
      fixed_loss_->SetClientPer(spec.id, spec.per);
    }
    std::unique_ptr<rateadapt::RateController> client_rates;
    if (spec.arf) {
      rateadapt::ArfConfig arf;
      arf.initial_rate = spec.rate;
      auto ctrl = std::make_unique<rateadapt::ArfController>(arf);
      ctrl->Seed(kApId, spec.rate);
      client_rates = std::move(ctrl);
      ap_rates_->MarkAdaptive(spec.id, spec.rate);
    } else {
      auto ctrl = std::make_unique<rateadapt::FixedRateController>(spec.rate);
      client_rates = std::move(ctrl);
      ap_rates_->PinRate(spec.id, spec.rate);
    }
    hosts_.emplace(spec.id, std::make_unique<net::WirelessHost>(
                                &sim_, medium_.get(), spec.id, std::move(client_rates),
                                demux_.get(), spec.queue_limit));
    ap_->Associate(spec.id);
  }

  if (tbr_ != nullptr && config_.tbr.client_agent) {
    tbr_->SetClientPauseFn([this](NodeId client, TimeNs until) {
      auto it = hosts_.find(client);
      if (it != hosts_.end()) {
        it->second->PauseUplinkUntil(until);
      }
    });
  }

  int next_flow_id = 1;
  for (const FlowSpec& spec : flow_specs_) {
    auto it = hosts_.find(spec.client);
    TBF_CHECK(it != hosts_.end()) << "flow references unknown station " << spec.client;
    net::WirelessHost* host = it->second.get();

    auto rt = std::make_unique<FlowRuntime>();
    rt->spec = spec;
    rt->flow_id = next_flow_id++;

    net::FlowAddress addr;
    addr.flow_id = rt->flow_id;
    addr.wlan_client = spec.client;

    const bool uplink = spec.direction == Direction::kUplink;
    addr.sender = uplink ? spec.client : kServerId;
    addr.receiver = uplink ? kServerId : spec.client;

    auto sender_out = [this, host, uplink](net::PacketPtr p) {
      if (uplink) {
        host->SendPacket(std::move(p));
      } else {
        server_->SendPacket(std::move(p));
      }
    };
    auto receiver_out = [this, host, uplink](net::PacketPtr p) {
      if (uplink) {
        server_->SendPacket(std::move(p));  // Acks travel back down through the AP.
      } else {
        host->SendPacket(std::move(p));
      }
    };

    FlowRuntime* rt_ptr = rt.get();
    auto deliver = [rt_ptr](int64_t bytes) { rt_ptr->delivered_bytes += bytes; };

    if (spec.transport == Transport::kTcp) {
      net::TcpConfig tcp;
      tcp.mss = spec.packet_bytes - net::kIpTcpHeaderBytes;
      rt->tcp_sender = std::make_unique<net::TcpSender>(&sim_, tcp, addr, sender_out);
      rt->tcp_receiver =
          std::make_unique<net::TcpReceiver>(&sim_, tcp, addr, receiver_out, deliver);
      if (spec.task_bytes > 0) {
        rt->tcp_sender->SetTaskBytes(spec.task_bytes);
      }
      if (spec.app_limit_bps > 0) {
        rt->tcp_sender->SetAppLimitBps(spec.app_limit_bps);
      }
      demux_->Register(addr.sender, addr.flow_id, rt->tcp_sender.get());
      demux_->Register(addr.receiver, addr.flow_id, rt->tcp_receiver.get());
      rt->tcp_sender->Start(spec.start);
    } else {
      rt->udp_source = std::make_unique<net::UdpSource>(
          &sim_, addr, sender_out, spec.udp_rate, spec.packet_bytes,
          spec.task_bytes > 0 ? spec.task_bytes / std::max(spec.packet_bytes - 28, 1) : 0,
          rng_.get());
      rt->udp_sink = std::make_unique<net::UdpSink>(deliver);
      demux_->Register(addr.receiver, addr.flow_id, rt->udp_sink.get());
      // Stagger CBR starts so synchronized sources do not phase-lock on shared queues.
      rt->udp_source->Start(spec.start + rt->flow_id * Us(97));
    }
    flows_.push_back(std::move(rt));
  }
}

net::WirelessHost* Wlan::host(NodeId id) {
  auto it = hosts_.find(id);
  return it == hosts_.end() ? nullptr : it->second.get();
}

void Wlan::BuildNow() {
  if (!built_) {
    Build();
  }
}

Results Wlan::Run() {
  if (!built_) {
    Build();
  }

  // Warmup, then snapshot counters.
  std::map<NodeId, TimeNs> airtime_at_warmup;
  TimeNs busy_at_warmup = 0;
  sim_.RunUntil(config_.warmup);
  for (const auto& [node, t] : medium_->airtime_meter().by_node()) {
    airtime_at_warmup[node] = t;
  }
  busy_at_warmup = medium_->busy_time();
  for (auto& flow : flows_) {
    flow->window_snapshot = flow->delivered_bytes;
  }

  sim_.RunUntil(config_.warmup + config_.duration);

  Results results;
  const double window_sec = ToSeconds(config_.duration);

  TimeNs total_airtime_delta = 0;
  std::map<NodeId, TimeNs> airtime_delta;
  for (const auto& [node, t] : medium_->airtime_meter().by_node()) {
    const TimeNs before =
        airtime_at_warmup.contains(node) ? airtime_at_warmup[node] : 0;
    airtime_delta[node] = t - before;
    total_airtime_delta += t - before;
  }
  for (const auto& [node, dt] : airtime_delta) {
    results.airtime_share[node] =
        total_airtime_delta > 0
            ? static_cast<double>(dt) / static_cast<double>(total_airtime_delta)
            : 0.0;
  }

  for (auto& flow : flows_) {
    FlowResult fr;
    fr.flow_id = flow->flow_id;
    fr.client = flow->spec.client;
    fr.tcp = flow->spec.transport == Transport::kTcp;
    fr.bytes_delivered = flow->delivered_bytes - flow->window_snapshot;
    fr.goodput_bps = static_cast<double>(fr.bytes_delivered) * 8.0 / window_sec;
    if (flow->tcp_sender != nullptr) {
      fr.retransmits = flow->tcp_sender->retransmits();
      fr.timeouts = flow->tcp_sender->timeouts();
      if (flow->tcp_sender->Done()) {
        fr.completion_time = flow->tcp_sender->completion_time() - flow->spec.start;
      }
    }
    results.goodput_bps[flow->spec.client] += fr.goodput_bps;
    results.aggregate_bps += fr.goodput_bps;
    results.flows.push_back(fr);
  }

  results.utilization =
      static_cast<double>(medium_->busy_time() - busy_at_warmup) / config_.duration;
  results.mac_collisions = medium_->collisions();
  results.mac_exchanges = medium_->exchanges();
  results.ap_drops = ap_->downlink_drops();
  return results;
}

}  // namespace tbf::scenario
