#include "tbf/scenario/wlan.h"

#include <algorithm>

#include "tbf/scenario/flow_engine.h"
#include "tbf/util/logging.h"

namespace tbf::scenario {

Wlan::Wlan(ScenarioConfig config) : config_(config) {}

Wlan::~Wlan() = default;

StationSpec& Wlan::AddStation(NodeId id, phy::WifiRate rate, double per) {
  StationSpec spec;
  spec.id = id;
  spec.rate = rate;
  spec.per = per;
  return AddStation(spec);
}

StationSpec& Wlan::AddStation(StationSpec spec) {
  TBF_CHECK(!built_) << "AddStation after Run";
  station_specs_.push_back(spec);  // Id bounds etc. are checked by ValidateScenario.
  return station_specs_.back();
}

FlowSpec& Wlan::AddFlow(FlowSpec spec) {
  TBF_CHECK(!built_) << "AddFlow after Run";
  flow_specs_.push_back(spec);
  return flow_specs_.back();
}

FlowSpec& Wlan::AddBulkTcp(NodeId client, Direction direction) {
  FlowSpec spec;
  spec.client = client;
  spec.direction = direction;
  spec.transport = Transport::kTcp;
  return AddFlow(spec);
}

FlowSpec& Wlan::AddSaturatingUdp(NodeId client, Direction direction) {
  FlowSpec spec;
  spec.client = client;
  spec.direction = direction;
  spec.transport = Transport::kUdp;
  spec.udp_rate = Mbps(9);  // Above any single DSSS link's capacity.
  return AddFlow(spec);
}

FlowSpec& Wlan::AddWebOnOff(NodeId client, Direction direction) {
  FlowSpec spec;
  spec.client = client;
  spec.direction = direction;
  spec.transport = Transport::kTcp;
  spec.model = TrafficModel::kOnOffWeb;
  return AddFlow(spec);
}

FlowSpec& Wlan::AddTaskSequence(NodeId client, Direction direction, int64_t bytes,
                                int count) {
  FlowSpec spec;
  spec.client = client;
  spec.direction = direction;
  spec.transport = Transport::kTcp;
  spec.model = TrafficModel::kTaskSequence;
  spec.task_bytes = bytes;
  spec.task_count = count;
  return AddFlow(spec);
}

FlowSpec MakeTraceReplaySpec(const trace::ReplayFlow& flow, Transport transport) {
  FlowSpec spec;
  spec.client = flow.node;
  spec.direction = flow.downlink ? Direction::kDownlink : Direction::kUplink;
  spec.transport = transport;
  spec.model = TrafficModel::kTraceReplay;
  spec.replay = flow.tasks;
  return spec;
}

FlowSpec& Wlan::AddTraceReplay(const trace::ReplayFlow& flow, Transport transport) {
  return AddFlow(MakeTraceReplaySpec(flow, transport));
}

namespace {

// Appends printf-free formatted context for one flow's diagnostic.
std::string FlowTag(size_t index, const FlowSpec& spec) {
  return "flow #" + std::to_string(index) + " (client " + std::to_string(spec.client) + ")";
}

}  // namespace

std::string ValidateScenario(const ScenarioConfig& config,
                             const std::vector<StationSpec>& stations,
                             const std::vector<FlowSpec>& flows) {
  if (config.duration <= 0) {
    return "config: duration must be > 0";
  }
  if (config.warmup < 0) {
    return "config: warmup must be >= 0";
  }
  if (config.wired_rate <= 0) {
    return "config: wired_rate must be > 0";
  }
  if (config.wired_delay < 0) {
    return "config: wired_delay must be >= 0";
  }
  if (config.fifo_limit == 0) {
    return "config: fifo_limit must be > 0";
  }
  if (config.per_queue_limit == 0) {
    return "config: per_queue_limit must be > 0";
  }
  if (config.timings.slot <= 0 || config.timings.sifs < 0) {
    return "config: MAC timings need slot > 0 and sifs >= 0";
  }
  if (config.timings.cw_min < 1 || config.timings.cw_max < config.timings.cw_min) {
    return "config: contention window needs 1 <= cw_min <= cw_max";
  }
  if (config.timings.retry_limit < 1) {
    return "config: retry_limit must be >= 1";
  }
  if (IsTbrKind(config.qdisc)) {
    const core::TbrConfig& tbr = config.tbr;
    if (tbr.fill_period <= 0 || tbr.bucket_depth <= 0 || tbr.initial_tokens < 0) {
      return "config: TBR needs fill_period > 0, bucket_depth > 0, initial_tokens >= 0";
    }
    if (tbr.enable_rate_adjust &&
        (tbr.adjust_period <= 0 || tbr.adjust_threshold <= 0.0 || tbr.min_rate <= 0.0)) {
      return "config: TBR rate adjust needs adjust_period > 0, adjust_threshold > 0, "
             "min_rate > 0";
    }
    if (tbr.per_queue_limit == 0) {
      return "config: TBR per_queue_limit must be > 0";
    }
    if (tbr.contention_contenders < 0) {
      return "config: TBR contention_contenders must be >= 0 (0 = associated count)";
    }
    switch (TbrModeForKind(config.qdisc, tbr.mode)) {
      case core::TbrMode::kStock:
        break;
      case core::TbrMode::kBurstCredit:
        if (tbr.burst_credit < 0) {
          return "config: TBR burst_credit must be >= 0";
        }
        break;
      case core::TbrMode::kFastEwma:
        if (tbr.demand_period <= 0 || tbr.demand_alpha <= 0.0 ||
            tbr.demand_alpha > 1.0 || tbr.demand_active_threshold < 0.0) {
          return "config: TBR fast-EWMA needs demand_period > 0, demand_alpha in "
                 "(0, 1], demand_active_threshold >= 0";
        }
        break;
      case core::TbrMode::kCreditHybrid:
        if (tbr.hybrid_debt_cap < 0) {
          return "config: TBR hybrid_debt_cap must be >= 0";
        }
        break;
    }
  }

  if (stations.size() >= static_cast<size_t>(kServerId)) {
    return "stations: at most " + std::to_string(kServerId - 1) + " clients fit below "
           "kServerId";
  }
  std::vector<NodeId> seen;
  seen.reserve(stations.size());
  for (size_t i = 0; i < stations.size(); ++i) {
    const StationSpec& s = stations[i];
    const std::string tag = "station #" + std::to_string(i) + " (id " +
                            std::to_string(s.id) + ")";
    if (s.id <= 0 || s.id >= kServerId) {
      return tag + ": client ids must be in (0, " + std::to_string(kServerId) + ")";
    }
    if (std::find(seen.begin(), seen.end(), s.id) != seen.end()) {
      return tag + ": duplicate station id";
    }
    seen.push_back(s.id);
    if (!(s.per >= 0.0 && s.per <= 1.0)) {  // NaN fails the conjunction.
      return tag + ": per must be in [0, 1]";
    }
    if (s.snr_db < 0.0) {
      return tag + ": snr_db must be >= 0 (0 disables the SNR model)";
    }
    if (s.queue_limit == 0) {
      return tag + ": queue_limit must be > 0";
    }
  }

  for (size_t i = 0; i < flows.size(); ++i) {
    const FlowSpec& f = flows[i];
    if (std::find(seen.begin(), seen.end(), f.client) == seen.end()) {
      return FlowTag(i, f) + ": references an undeclared station";
    }
    const int header = f.transport == Transport::kTcp ? net::kIpTcpHeaderBytes
                                                      : net::kIpUdpHeaderBytes;
    if (f.packet_bytes <= header) {
      return FlowTag(i, f) + ": packet_bytes must exceed the " +
             std::to_string(header) + "-byte transport header";
    }
    if (f.transport == Transport::kUdp && f.udp_rate <= 0) {
      return FlowTag(i, f) + ": UDP flows need udp_rate > 0";
    }
    if (f.app_limit_bps < 0) {
      return FlowTag(i, f) + ": app_limit_bps must be >= 0";
    }
    if (f.start < 0) {
      return FlowTag(i, f) + ": start must be >= 0";
    }
    switch (f.model) {
      case TrafficModel::kBulk:
        if (f.task_bytes < 0) {
          return FlowTag(i, f) + ": task_bytes must be >= 0 (0 = unbounded)";
        }
        break;
      case TrafficModel::kTaskSequence:
        if (f.task_bytes <= 0 || f.task_count <= 0) {
          return FlowTag(i, f) + ": task sequences need task_bytes > 0 and "
                 "task_count > 0";
        }
        if (f.task_gap < 0) {
          return FlowTag(i, f) + ": task_gap must be >= 0";
        }
        break;
      case TrafficModel::kOnOffWeb:
        if (f.onoff.mean_flow_bytes < 1.0 || f.onoff.pareto_alpha <= 1.0 ||
            f.onoff.mean_think_sec < 0.0) {
          return FlowTag(i, f) + ": on/off sources need mean_flow_bytes >= 1, "
                 "pareto_alpha > 1, mean_think_sec >= 0";
        }
        break;
      case TrafficModel::kTraceReplay:
        if (f.replay.empty()) {
          return FlowTag(i, f) + ": trace replay flows need logged tasks";
        }
        for (size_t t = 0; t < f.replay.size(); ++t) {
          if (f.replay[t].bytes <= 0) {
            return FlowTag(i, f) + ": replay task #" + std::to_string(t) +
                   " must carry bytes";
          }
          if (t > 0 && f.replay[t].at < f.replay[t - 1].at) {
            return FlowTag(i, f) + ": replay tasks must be in trace order";
          }
        }
        break;
    }
  }
  return std::string();
}

std::unique_ptr<ap::Qdisc> MakeQdisc(const ScenarioConfig& config, sim::Simulator* sim,
                                     rateadapt::CompositeRateController* rates,
                                     core::TimeBasedRegulator** tbr_out) {
  switch (config.qdisc) {
    case QdiscKind::kFifo:
      return std::make_unique<ap::FifoQdisc>(config.fifo_limit);
    case QdiscKind::kRoundRobin:
      return std::make_unique<ap::RoundRobinQdisc>(config.per_queue_limit);
    case QdiscKind::kDrr:
      return std::make_unique<ap::DrrQdisc>(config.per_queue_limit);
    case QdiscKind::kOarBurst:
      // OAR-style comparison baseline: bursts sized by the client's current rate.
      return std::make_unique<ap::BurstRoundRobinQdisc>(
          [rates](NodeId client) { return phy::GetRateInfo(rates->CurrentRate(client)).bps; },
          Mbps(1), config.per_queue_limit);
    case QdiscKind::kTbr:
    case QdiscKind::kTbrBurstCredit:
    case QdiscKind::kTbrFastEwma:
    case QdiscKind::kTbrCreditHybrid: {
      core::TbrConfig tbr_config = config.tbr;
      tbr_config.mode = TbrModeForKind(config.qdisc, config.tbr.mode);
      auto tbr = std::make_unique<core::TimeBasedRegulator>(sim, config.timings,
                                                            tbr_config);
      *tbr_out = tbr.get();
      return tbr;
    }
  }
  return nullptr;
}

void Wlan::Build() {
  TBF_CHECK(!built_);
  if (std::string err = ValidateScenario(config_, station_specs_, flow_specs_);
      !err.empty()) {
    throw ScenarioError("invalid scenario: " + err);
  }
  built_ = true;

  stats_ = stats::StatsEngine(config_.stats);
  // A single cell is not a merge-tree child and its sim time is monotone, so older
  // windows can never receive another sample: seal them as soon as a later one opens,
  // keeping open-sketch memory O(1) instead of O(run length / window).
  stats_.SetAutoSeal(true);

  rng_ = std::make_unique<sim::Rng>(config_.seed);
  fixed_loss_ = std::make_unique<phy::FixedPerLink>();
  snr_loss_ = std::make_unique<phy::SnrLossModel>();
  loss_ = std::make_unique<phy::DispatchLossModel>(fixed_loss_.get(), snr_loss_.get());
  medium_ = std::make_unique<mac::Medium>(&sim_, config_.timings, loss_.get(), rng_.get());
  ap_rates_ = std::make_unique<rateadapt::CompositeRateController>();
  ap_ = std::make_unique<ap::AccessPoint>(
      &sim_, medium_.get(), MakeQdisc(config_, &sim_, ap_rates_.get(), &tbr_),
      ap_rates_.get());
  wired_ = std::make_unique<net::WiredLink>(&sim_, config_.wired_rate, config_.wired_delay);
  demux_ = std::make_unique<net::Demux>();
  server_ = std::make_unique<net::WiredHost>(&sim_, kServerId, demux_.get(), wired_.get());

  ap_->ConnectWired(wired_.get());
  wired_->SetTowardAp([this](net::PacketPtr p) { ap_->EnqueueDownlink(std::move(p)); });

  for (const StationSpec& spec : station_specs_) {
    if (spec.snr_db != 0.0) {
      snr_loss_->SetClientSnr(spec.id, spec.snr_db);
    } else if (spec.per > 0.0) {
      fixed_loss_->SetClientPer(spec.id, spec.per);
    }
    std::unique_ptr<rateadapt::RateController> client_rates;
    if (spec.arf) {
      rateadapt::ArfConfig arf;
      arf.initial_rate = spec.rate;
      auto ctrl = std::make_unique<rateadapt::ArfController>(arf);
      ctrl->Seed(kApId, spec.rate);
      client_rates = std::move(ctrl);
      ap_rates_->MarkAdaptive(spec.id, spec.rate);
    } else {
      auto ctrl = std::make_unique<rateadapt::FixedRateController>(spec.rate);
      client_rates = std::move(ctrl);
      ap_rates_->PinRate(spec.id, spec.rate);
    }
    hosts_.emplace(spec.id, std::make_unique<net::WirelessHost>(
                                &sim_, medium_.get(), spec.id, std::move(client_rates),
                                demux_.get(), spec.queue_limit));
    ap_->Associate(spec.id);
  }

  // Pin the contention-allowance divisor to the declared cell size so per-packet
  // charges never depend on association order. Identical to the legacy associated-
  // count divisor here, because the loop above associates every station upfront.
  if (tbr_ != nullptr && config_.tbr.contention_contenders == 0) {
    tbr_->SetContentionContenders(static_cast<int>(station_specs_.size()));
  }

  if (tbr_ != nullptr && config_.tbr.client_agent) {
    tbr_->SetClientPauseFn([this](NodeId client, TimeNs until) {
      auto it = hosts_.find(client);
      if (it != hosts_.end()) {
        it->second->PauseUplinkUntil(until);
      }
    });
  }

  int next_flow_id = 1;
  for (const FlowSpec& spec : flow_specs_) {
    auto it = hosts_.find(spec.client);
    TBF_CHECK(it != hosts_.end()) << "flow references unknown station " << spec.client;
    net::WirelessHost* host = it->second.get();

    auto rt = std::make_unique<FlowEngine>();
    rt->spec = spec;
    rt->flow_id = next_flow_id++;
    rt->sim = &sim_;
    rt->rng = rng_.get();
    rt->stats = &stats_;
    stats_.RegisterFlow(rt->flow_id);

    net::FlowAddress addr;
    addr.flow_id = rt->flow_id;
    addr.wlan_client = spec.client;

    const bool uplink = spec.direction == Direction::kUplink;
    addr.sender = uplink ? spec.client : kServerId;
    addr.receiver = uplink ? kServerId : spec.client;

    auto sender_out = [this, host, uplink](net::PacketPtr p) {
      if (uplink) {
        host->SendPacket(std::move(p));
      } else {
        server_->SendPacket(std::move(p));
      }
    };
    auto receiver_out = [this, host, uplink](net::PacketPtr p) {
      if (uplink) {
        server_->SendPacket(std::move(p));  // Acks travel back down through the AP.
      } else {
        host->SendPacket(std::move(p));
      }
    };

    FlowEngine* rt_ptr = rt.get();
    auto deliver = [rt_ptr](int64_t bytes) { rt_ptr->OnDelivered(bytes); };

    const TimeNs flow_start = rt->InitFirstTask(spec.start);
    const int64_t first_task = rt->task_target;

    if (spec.transport == Transport::kTcp) {
      net::TcpConfig tcp;
      tcp.mss = spec.packet_bytes - net::kIpTcpHeaderBytes;
      rt->tcp_sender =
          std::make_unique<net::TcpSender>(&sim_, &packet_pool_, tcp, addr, sender_out);
      rt->tcp_receiver = std::make_unique<net::TcpReceiver>(&sim_, &packet_pool_, tcp,
                                                            addr, receiver_out, deliver);
      if (first_task > 0) {
        rt->tcp_sender->SetTaskBytes(first_task);
        // TCP tasks complete when the final byte is cumulatively acked.
        rt->tcp_sender->SetOnTaskComplete([rt_ptr] { rt_ptr->OnTaskComplete(); });
      }
      if (spec.app_limit_bps > 0) {
        rt->tcp_sender->SetAppLimitBps(spec.app_limit_bps);
      }
      rt->tcp_sender->SetRttSampleFn([rt_ptr](TimeNs sample) {
        rt_ptr->stats->RecordRtt(rt_ptr->flow_id, rt_ptr->sim->Now(), sample);
      });
      demux_->Register(addr.sender, addr.flow_id, rt->tcp_sender.get());
      demux_->Register(addr.receiver, addr.flow_id, rt->tcp_receiver.get());
      rt->actual_start = flow_start;
      rt->tcp_sender->Start(rt->actual_start);
    } else {
      // The source packetizes finite tasks itself (ceiling division with a trimmed
      // final datagram), so exactly first_task payload bytes hit the wire.
      rt->udp_source = std::make_unique<net::UdpSource>(&sim_, &packet_pool_, addr,
                                                        sender_out, spec.udp_rate,
                                                        spec.packet_bytes, first_task,
                                                        rng_.get());
      rt->udp_sink = std::make_unique<net::UdpSink>(deliver);
      demux_->Register(addr.receiver, addr.flow_id, rt->udp_sink.get());
      // Stagger CBR starts so synchronized sources do not phase-lock on shared queues.
      rt->actual_start = flow_start + rt->flow_id * Us(97);
      rt->udp_source->Start(rt->actual_start);
    }
    rt->task_started_at = rt->actual_start;  // The first task transfers from the start.
    flows_.push_back(std::move(rt));
  }

  // AP qdisc residency tap: attribute each transmitted packet's queueing delay to its
  // flow's meter (the engine drops ids it never registered).
  ap_->SetQueueDelayFn([this](int flow_id, NodeId /*client*/, TimeNs delay) {
    stats_.RecordQueueDelay(flow_id, sim_.Now(), delay);
  });
}

net::WirelessHost* Wlan::host(NodeId id) {
  auto it = hosts_.find(id);
  return it == hosts_.end() ? nullptr : it->second.get();
}

void Wlan::BuildNow() {
  if (!built_) {
    Build();
  }
}

Results Wlan::Run() {
  if (!built_) {
    Build();
  }

  // Warmup, then snapshot counters.
  std::map<NodeId, TimeNs> airtime_at_warmup;
  TimeNs busy_at_warmup = 0;
  sim_.RunUntil(config_.warmup);
  for (const auto& [node, t] : medium_->airtime_meter().by_node()) {
    airtime_at_warmup[node] = t;
  }
  busy_at_warmup = medium_->busy_time();
  for (auto& flow : flows_) {
    flow->window_snapshot = flow->delivered_bytes;
  }

  sim_.RunUntil(config_.warmup + config_.duration);

  Results results;
  const double window_sec = ToSeconds(config_.duration);

  TimeNs total_airtime_delta = 0;
  std::map<NodeId, TimeNs> airtime_delta;
  for (const auto& [node, t] : medium_->airtime_meter().by_node()) {
    const TimeNs before =
        airtime_at_warmup.contains(node) ? airtime_at_warmup[node] : 0;
    airtime_delta[node] = t - before;
    total_airtime_delta += t - before;
  }
  for (const auto& [node, dt] : airtime_delta) {
    results.airtime_share[node] =
        total_airtime_delta > 0
            ? static_cast<double>(dt) / static_cast<double>(total_airtime_delta)
            : 0.0;
  }

  stats_.FlushAll();

  double sum_task_sec = 0.0;
  int64_t table1_tasks = 0;
  for (auto& flow : flows_) {
    AccumulateFlowResult(*flow, flow->delivered_bytes - flow->window_snapshot,
                         window_sec, stats_, stats_, &results, &sum_task_sec,
                         &table1_tasks);
  }
  if (table1_tasks > 0) {
    results.avg_task_time_sec = sum_task_sec / static_cast<double>(table1_tasks);
  }
  // Legacy exact mode: the cell-wide sketches are the per-flow merges above, exactly
  // the pre-engine readout. Streaming modes: replace them with the engine's complete
  // whole-run meters (the per-flow merge covers retained flows only).
  if (stats_.HasCompleteMeters()) {
    results.rtt_sketch = stats_.meter(stats::kRtt);
    results.ap_queue_delay_sketch = stats_.meter(stats::kQueueDelay);
    results.task_latency_sketch = stats_.meter(stats::kTaskLatency);
  }
  results.rtt = LatencySummary::FromSketch(results.rtt_sketch);
  results.ap_queue_delay = LatencySummary::FromSketch(results.ap_queue_delay_sketch);
  results.task_latency = LatencySummary::FromSketch(results.task_latency_sketch);
  results.rtt_series = stats_.series(stats::kRtt);
  results.ap_queue_delay_series = stats_.series(stats::kQueueDelay);
  results.task_latency_series = stats_.series(stats::kTaskLatency);
  results.goodput_series = stats_.bytes_series();

  results.utilization =
      static_cast<double>(medium_->busy_time() - busy_at_warmup) / config_.duration;
  results.mac_collisions = medium_->collisions();
  results.mac_exchanges = medium_->exchanges();
  results.ap_drops = ap_->downlink_drops();
  return results;
}

}  // namespace tbf::scenario
