#include "tbf/scenario/wlan.h"

#include <algorithm>

#include "tbf/util/logging.h"

namespace tbf::scenario {
namespace {

// Routes loss lookups to the SNR model for stations configured with snr_db, and to the
// fixed-PER table for everyone else.
class DispatchLossModel : public phy::LossModel {
 public:
  DispatchLossModel(const phy::FixedPerLink* fixed, const phy::SnrLossModel* snr)
      : fixed_(fixed), snr_(snr) {}

  double FrameLossProb(NodeId src, NodeId dst, int frame_bytes,
                       phy::WifiRate rate) const override {
    const NodeId client = src == kApId ? dst : src;
    if (snr_->HasClient(client)) {
      return snr_->FrameLossProb(src, dst, frame_bytes, rate);
    }
    return fixed_->FrameLossProb(src, dst, frame_bytes, rate);
  }

 private:
  const phy::FixedPerLink* fixed_;
  const phy::SnrLossModel* snr_;
};

}  // namespace

// One constructed flow: transport endpoints plus measurement counters.
struct Wlan::FlowRuntime {
  FlowSpec spec;
  int flow_id = -1;
  // When the first transfer actually begins: spec.start plus the CBR stagger for UDP
  // flows. Task completions are reported relative to this, which makes
  // AvgTaskTime/FinalTaskTime independent of the stagger and of where the warmup ends.
  TimeNs actual_start = 0;

  std::unique_ptr<net::TcpSender> tcp_sender;
  std::unique_ptr<net::TcpReceiver> tcp_receiver;
  std::unique_ptr<net::UdpSource> udp_source;
  std::unique_ptr<net::UdpSink> udp_sink;

  int64_t delivered_bytes = 0;   // Total payload delivered (from flow start).
  int64_t window_snapshot = 0;   // Delivered bytes at warmup.

  // Finite-task bookkeeping. `task_target` is the cumulative payload target of the
  // task in flight (grown per task so restarts share one sequence space); UDP tasks
  // complete when the sink has delivered it, TCP tasks when the sender reports Done.
  int64_t task_target = 0;
  int tasks_started = 0;
  TimeNs task_started_at = 0;            // When the task in flight began transferring.
  // kTraceReplay: the next task's logged due time. Durations anchor here instead of at
  // the actual launch, so a backlogged replay charges the user's waiting time to the
  // transfer (sojourn from logged arrival) instead of silently excluding it. -1 = unset.
  TimeNs next_task_due = -1;
  std::vector<TimeNs> task_completions;  // Absolute sim times, converted on readout.
  std::vector<TimeNs> task_durations;    // Completion minus that task's transfer start.
  size_t replay_next = 1;                // kTraceReplay: index of the next logged task.

  // Streaming latency meters (see FlowResult for what each one samples).
  stats::QuantileSketch rtt_sketch;
  stats::QuantileSketch queue_delay_sketch;
  stats::QuantileSketch task_latency_sketch;

  bool HasTasks() const { return task_target > 0; }
};

Wlan::Wlan(ScenarioConfig config) : config_(config) {}

Wlan::~Wlan() = default;

StationSpec& Wlan::AddStation(NodeId id, phy::WifiRate rate, double per) {
  StationSpec spec;
  spec.id = id;
  spec.rate = rate;
  spec.per = per;
  return AddStation(spec);
}

StationSpec& Wlan::AddStation(StationSpec spec) {
  TBF_CHECK(!built_) << "AddStation after Run";
  station_specs_.push_back(spec);  // Id bounds etc. are checked by ValidateScenario.
  return station_specs_.back();
}

FlowSpec& Wlan::AddFlow(FlowSpec spec) {
  TBF_CHECK(!built_) << "AddFlow after Run";
  flow_specs_.push_back(spec);
  return flow_specs_.back();
}

FlowSpec& Wlan::AddBulkTcp(NodeId client, Direction direction) {
  FlowSpec spec;
  spec.client = client;
  spec.direction = direction;
  spec.transport = Transport::kTcp;
  return AddFlow(spec);
}

FlowSpec& Wlan::AddSaturatingUdp(NodeId client, Direction direction) {
  FlowSpec spec;
  spec.client = client;
  spec.direction = direction;
  spec.transport = Transport::kUdp;
  spec.udp_rate = Mbps(9);  // Above any single DSSS link's capacity.
  return AddFlow(spec);
}

FlowSpec& Wlan::AddWebOnOff(NodeId client, Direction direction) {
  FlowSpec spec;
  spec.client = client;
  spec.direction = direction;
  spec.transport = Transport::kTcp;
  spec.model = TrafficModel::kOnOffWeb;
  return AddFlow(spec);
}

FlowSpec& Wlan::AddTaskSequence(NodeId client, Direction direction, int64_t bytes,
                                int count) {
  FlowSpec spec;
  spec.client = client;
  spec.direction = direction;
  spec.transport = Transport::kTcp;
  spec.model = TrafficModel::kTaskSequence;
  spec.task_bytes = bytes;
  spec.task_count = count;
  return AddFlow(spec);
}

FlowSpec MakeTraceReplaySpec(const trace::ReplayFlow& flow, Transport transport) {
  FlowSpec spec;
  spec.client = flow.node;
  spec.direction = flow.downlink ? Direction::kDownlink : Direction::kUplink;
  spec.transport = transport;
  spec.model = TrafficModel::kTraceReplay;
  spec.replay = flow.tasks;
  return spec;
}

FlowSpec& Wlan::AddTraceReplay(const trace::ReplayFlow& flow, Transport transport) {
  return AddFlow(MakeTraceReplaySpec(flow, transport));
}

namespace {

// Appends printf-free formatted context for one flow's diagnostic.
std::string FlowTag(size_t index, const FlowSpec& spec) {
  return "flow #" + std::to_string(index) + " (client " + std::to_string(spec.client) + ")";
}

}  // namespace

std::string ValidateScenario(const ScenarioConfig& config,
                             const std::vector<StationSpec>& stations,
                             const std::vector<FlowSpec>& flows) {
  if (config.duration <= 0) {
    return "config: duration must be > 0";
  }
  if (config.warmup < 0) {
    return "config: warmup must be >= 0";
  }
  if (config.wired_rate <= 0) {
    return "config: wired_rate must be > 0";
  }
  if (config.wired_delay < 0) {
    return "config: wired_delay must be >= 0";
  }
  if (config.fifo_limit == 0) {
    return "config: fifo_limit must be > 0";
  }
  if (config.per_queue_limit == 0) {
    return "config: per_queue_limit must be > 0";
  }
  if (config.timings.slot <= 0 || config.timings.sifs < 0) {
    return "config: MAC timings need slot > 0 and sifs >= 0";
  }
  if (config.timings.cw_min < 1 || config.timings.cw_max < config.timings.cw_min) {
    return "config: contention window needs 1 <= cw_min <= cw_max";
  }
  if (config.timings.retry_limit < 1) {
    return "config: retry_limit must be >= 1";
  }
  if (config.qdisc == QdiscKind::kTbr) {
    const core::TbrConfig& tbr = config.tbr;
    if (tbr.fill_period <= 0 || tbr.bucket_depth <= 0 || tbr.initial_tokens < 0) {
      return "config: TBR needs fill_period > 0, bucket_depth > 0, initial_tokens >= 0";
    }
    if (tbr.enable_rate_adjust &&
        (tbr.adjust_period <= 0 || tbr.adjust_threshold <= 0.0 || tbr.min_rate <= 0.0)) {
      return "config: TBR rate adjust needs adjust_period > 0, adjust_threshold > 0, "
             "min_rate > 0";
    }
    if (tbr.per_queue_limit == 0) {
      return "config: TBR per_queue_limit must be > 0";
    }
  }

  if (stations.size() >= static_cast<size_t>(kServerId)) {
    return "stations: at most " + std::to_string(kServerId - 1) + " clients fit below "
           "kServerId";
  }
  std::vector<NodeId> seen;
  seen.reserve(stations.size());
  for (size_t i = 0; i < stations.size(); ++i) {
    const StationSpec& s = stations[i];
    const std::string tag = "station #" + std::to_string(i) + " (id " +
                            std::to_string(s.id) + ")";
    if (s.id <= 0 || s.id >= kServerId) {
      return tag + ": client ids must be in (0, " + std::to_string(kServerId) + ")";
    }
    if (std::find(seen.begin(), seen.end(), s.id) != seen.end()) {
      return tag + ": duplicate station id";
    }
    seen.push_back(s.id);
    if (!(s.per >= 0.0 && s.per <= 1.0)) {  // NaN fails the conjunction.
      return tag + ": per must be in [0, 1]";
    }
    if (s.snr_db < 0.0) {
      return tag + ": snr_db must be >= 0 (0 disables the SNR model)";
    }
    if (s.queue_limit == 0) {
      return tag + ": queue_limit must be > 0";
    }
  }

  for (size_t i = 0; i < flows.size(); ++i) {
    const FlowSpec& f = flows[i];
    if (std::find(seen.begin(), seen.end(), f.client) == seen.end()) {
      return FlowTag(i, f) + ": references an undeclared station";
    }
    const int header = f.transport == Transport::kTcp ? net::kIpTcpHeaderBytes
                                                      : net::kIpUdpHeaderBytes;
    if (f.packet_bytes <= header) {
      return FlowTag(i, f) + ": packet_bytes must exceed the " +
             std::to_string(header) + "-byte transport header";
    }
    if (f.transport == Transport::kUdp && f.udp_rate <= 0) {
      return FlowTag(i, f) + ": UDP flows need udp_rate > 0";
    }
    if (f.app_limit_bps < 0) {
      return FlowTag(i, f) + ": app_limit_bps must be >= 0";
    }
    if (f.start < 0) {
      return FlowTag(i, f) + ": start must be >= 0";
    }
    switch (f.model) {
      case TrafficModel::kBulk:
        if (f.task_bytes < 0) {
          return FlowTag(i, f) + ": task_bytes must be >= 0 (0 = unbounded)";
        }
        break;
      case TrafficModel::kTaskSequence:
        if (f.task_bytes <= 0 || f.task_count <= 0) {
          return FlowTag(i, f) + ": task sequences need task_bytes > 0 and "
                 "task_count > 0";
        }
        if (f.task_gap < 0) {
          return FlowTag(i, f) + ": task_gap must be >= 0";
        }
        break;
      case TrafficModel::kOnOffWeb:
        if (f.onoff.mean_flow_bytes < 1.0 || f.onoff.pareto_alpha <= 1.0 ||
            f.onoff.mean_think_sec < 0.0) {
          return FlowTag(i, f) + ": on/off sources need mean_flow_bytes >= 1, "
                 "pareto_alpha > 1, mean_think_sec >= 0";
        }
        break;
      case TrafficModel::kTraceReplay:
        if (f.replay.empty()) {
          return FlowTag(i, f) + ": trace replay flows need logged tasks";
        }
        for (size_t t = 0; t < f.replay.size(); ++t) {
          if (f.replay[t].bytes <= 0) {
            return FlowTag(i, f) + ": replay task #" + std::to_string(t) +
                   " must carry bytes";
          }
          if (t > 0 && f.replay[t].at < f.replay[t - 1].at) {
            return FlowTag(i, f) + ": replay tasks must be in trace order";
          }
        }
        break;
    }
  }
  return std::string();
}

std::unique_ptr<ap::Qdisc> Wlan::MakeQdisc() {
  switch (config_.qdisc) {
    case QdiscKind::kFifo:
      return std::make_unique<ap::FifoQdisc>(config_.fifo_limit);
    case QdiscKind::kRoundRobin:
      return std::make_unique<ap::RoundRobinQdisc>(config_.per_queue_limit);
    case QdiscKind::kDrr:
      return std::make_unique<ap::DrrQdisc>(config_.per_queue_limit);
    case QdiscKind::kOarBurst: {
      // OAR-style comparison baseline: bursts sized by the client's current rate.
      rateadapt::CompositeRateController* rates = ap_rates_.get();
      return std::make_unique<ap::BurstRoundRobinQdisc>(
          [rates](NodeId client) { return phy::GetRateInfo(rates->CurrentRate(client)).bps; },
          Mbps(1), config_.per_queue_limit);
    }
    case QdiscKind::kTbr: {
      auto tbr = std::make_unique<core::TimeBasedRegulator>(&sim_, config_.timings,
                                                            config_.tbr);
      tbr_ = tbr.get();
      return tbr;
    }
  }
  return nullptr;
}

void Wlan::Build() {
  TBF_CHECK(!built_);
  if (std::string err = ValidateScenario(config_, station_specs_, flow_specs_);
      !err.empty()) {
    throw ScenarioError("invalid scenario: " + err);
  }
  built_ = true;

  rng_ = std::make_unique<sim::Rng>(config_.seed);
  fixed_loss_ = std::make_unique<phy::FixedPerLink>();
  snr_loss_ = std::make_unique<phy::SnrLossModel>();
  loss_ = std::make_unique<DispatchLossModel>(fixed_loss_.get(), snr_loss_.get());
  medium_ = std::make_unique<mac::Medium>(&sim_, config_.timings, loss_.get(), rng_.get());
  ap_rates_ = std::make_unique<rateadapt::CompositeRateController>();
  ap_ = std::make_unique<ap::AccessPoint>(&sim_, medium_.get(), MakeQdisc(), ap_rates_.get());
  wired_ = std::make_unique<net::WiredLink>(&sim_, config_.wired_rate, config_.wired_delay);
  demux_ = std::make_unique<net::Demux>();
  server_ = std::make_unique<net::WiredHost>(&sim_, kServerId, demux_.get(), wired_.get());

  ap_->ConnectWired(wired_.get());
  wired_->SetTowardAp([this](net::PacketPtr p) { ap_->EnqueueDownlink(std::move(p)); });

  for (const StationSpec& spec : station_specs_) {
    if (spec.snr_db != 0.0) {
      snr_loss_->SetClientSnr(spec.id, spec.snr_db);
    } else if (spec.per > 0.0) {
      fixed_loss_->SetClientPer(spec.id, spec.per);
    }
    std::unique_ptr<rateadapt::RateController> client_rates;
    if (spec.arf) {
      rateadapt::ArfConfig arf;
      arf.initial_rate = spec.rate;
      auto ctrl = std::make_unique<rateadapt::ArfController>(arf);
      ctrl->Seed(kApId, spec.rate);
      client_rates = std::move(ctrl);
      ap_rates_->MarkAdaptive(spec.id, spec.rate);
    } else {
      auto ctrl = std::make_unique<rateadapt::FixedRateController>(spec.rate);
      client_rates = std::move(ctrl);
      ap_rates_->PinRate(spec.id, spec.rate);
    }
    hosts_.emplace(spec.id, std::make_unique<net::WirelessHost>(
                                &sim_, medium_.get(), spec.id, std::move(client_rates),
                                demux_.get(), spec.queue_limit));
    ap_->Associate(spec.id);
  }

  if (tbr_ != nullptr && config_.tbr.client_agent) {
    tbr_->SetClientPauseFn([this](NodeId client, TimeNs until) {
      auto it = hosts_.find(client);
      if (it != hosts_.end()) {
        it->second->PauseUplinkUntil(until);
      }
    });
  }

  int next_flow_id = 1;
  for (const FlowSpec& spec : flow_specs_) {
    auto it = hosts_.find(spec.client);
    TBF_CHECK(it != hosts_.end()) << "flow references unknown station " << spec.client;
    net::WirelessHost* host = it->second.get();

    auto rt = std::make_unique<FlowRuntime>();
    rt->spec = spec;
    rt->flow_id = next_flow_id++;

    net::FlowAddress addr;
    addr.flow_id = rt->flow_id;
    addr.wlan_client = spec.client;

    const bool uplink = spec.direction == Direction::kUplink;
    addr.sender = uplink ? spec.client : kServerId;
    addr.receiver = uplink ? kServerId : spec.client;

    auto sender_out = [this, host, uplink](net::PacketPtr p) {
      if (uplink) {
        host->SendPacket(std::move(p));
      } else {
        server_->SendPacket(std::move(p));
      }
    };
    auto receiver_out = [this, host, uplink](net::PacketPtr p) {
      if (uplink) {
        server_->SendPacket(std::move(p));  // Acks travel back down through the AP.
      } else {
        host->SendPacket(std::move(p));
      }
    };

    FlowRuntime* rt_ptr = rt.get();
    auto deliver = [this, rt_ptr](int64_t bytes) { OnDelivered(rt_ptr, bytes); };

    // Size of the first transfer: the spec's task size, an on/off draw, or the trace's
    // first logged transfer. 0 keeps the flow unbounded (kBulk fluid transfer).
    // `flow_start` is where the first transfer begins; trace replays anchor it at the
    // first logged arrival so later transfers keep their logged offsets from it.
    int64_t first_task = 0;
    TimeNs flow_start = spec.start;
    switch (spec.model) {
      case TrafficModel::kBulk:
        first_task = spec.task_bytes;
        break;
      case TrafficModel::kTaskSequence:
        first_task = spec.task_bytes;  // ValidateScenario pinned size and count > 0.
        break;
      case TrafficModel::kOnOffWeb:
        first_task = spec.onoff.DrawFlowBytes(*rng_);
        break;
      case TrafficModel::kTraceReplay:
        first_task = spec.replay.front().bytes;
        flow_start += spec.replay.front().at;
        break;
    }
    rt->task_target = first_task;
    rt->tasks_started = first_task > 0 ? 1 : 0;

    if (spec.transport == Transport::kTcp) {
      net::TcpConfig tcp;
      tcp.mss = spec.packet_bytes - net::kIpTcpHeaderBytes;
      rt->tcp_sender =
          std::make_unique<net::TcpSender>(&sim_, &packet_pool_, tcp, addr, sender_out);
      rt->tcp_receiver = std::make_unique<net::TcpReceiver>(&sim_, &packet_pool_, tcp,
                                                            addr, receiver_out, deliver);
      if (first_task > 0) {
        rt->tcp_sender->SetTaskBytes(first_task);
        // TCP tasks complete when the final byte is cumulatively acked.
        rt->tcp_sender->SetOnTaskComplete([this, rt_ptr] { OnTaskComplete(rt_ptr); });
      }
      if (spec.app_limit_bps > 0) {
        rt->tcp_sender->SetAppLimitBps(spec.app_limit_bps);
      }
      rt->tcp_sender->SetRttSampleFn(
          [rt_ptr](TimeNs sample) { rt_ptr->rtt_sketch.Add(static_cast<double>(sample)); });
      demux_->Register(addr.sender, addr.flow_id, rt->tcp_sender.get());
      demux_->Register(addr.receiver, addr.flow_id, rt->tcp_receiver.get());
      rt->actual_start = flow_start;
      rt->tcp_sender->Start(rt->actual_start);
    } else {
      // The source packetizes finite tasks itself (ceiling division with a trimmed
      // final datagram), so exactly first_task payload bytes hit the wire.
      rt->udp_source = std::make_unique<net::UdpSource>(&sim_, &packet_pool_, addr,
                                                        sender_out, spec.udp_rate,
                                                        spec.packet_bytes, first_task,
                                                        rng_.get());
      rt->udp_sink = std::make_unique<net::UdpSink>(deliver);
      demux_->Register(addr.receiver, addr.flow_id, rt->udp_sink.get());
      // Stagger CBR starts so synchronized sources do not phase-lock on shared queues.
      rt->actual_start = flow_start + rt->flow_id * Us(97);
      rt->udp_source->Start(rt->actual_start);
    }
    rt->task_started_at = rt->actual_start;  // The first task transfers from the start.
    flows_.push_back(std::move(rt));
  }

  // AP qdisc residency tap: attribute each transmitted packet's queueing delay to its
  // flow's meter (flow ids are assigned densely from 1 in flows_ order).
  ap_->SetQueueDelayFn([this](int flow_id, NodeId /*client*/, TimeNs delay) {
    if (flow_id >= 1 && static_cast<size_t>(flow_id) <= flows_.size()) {
      flows_[static_cast<size_t>(flow_id) - 1]->queue_delay_sketch.Add(
          static_cast<double>(delay));
    }
  });
}

void Wlan::OnDelivered(FlowRuntime* rt, int64_t bytes) {
  rt->delivered_bytes += bytes;
  // UDP tasks have no acks; they complete when the sink has delivered the task's
  // payload. (A datagram lost beyond the MAC's retries stalls the task - finite UDP
  // tasks are meant for configurations below the loss cliff.)
  if (rt->spec.transport == Transport::kUdp && rt->HasTasks() &&
      rt->delivered_bytes >= rt->task_target) {
    OnTaskComplete(rt);
  }
}

void Wlan::OnTaskComplete(FlowRuntime* rt) {
  rt->task_completions.push_back(sim_.Now());
  rt->task_durations.push_back(sim_.Now() - rt->task_started_at);
  rt->task_latency_sketch.Add(static_cast<double>(rt->task_durations.back()));
  const FlowSpec& spec = rt->spec;
  switch (spec.model) {
    case TrafficModel::kBulk:
      break;  // Single finite task; nothing follows.
    case TrafficModel::kTaskSequence:
      if (rt->tasks_started < spec.task_count) {
        QueueNextTask(rt, spec.task_bytes, spec.task_gap);
      }
      break;
    case TrafficModel::kOnOffWeb:
      // Think, then the next transfer. Both draws happen now (event order is
      // deterministic, so the rng stream is too).
      QueueNextTask(rt, spec.onoff.DrawFlowBytes(*rng_), spec.onoff.DrawThinkNs(*rng_));
      break;
    case TrafficModel::kTraceReplay:
      // Launch the next logged transfer at its logged offset from the flow's start; if
      // the cell ran slower than the capture and that moment has passed, launch now
      // (the user is backlogged, not skipped - every logged byte still gets delivered,
      // and the duration anchor stays at the logged due time so the wait is measured).
      if (rt->replay_next < spec.replay.size()) {
        const trace::ReplayTask& next = spec.replay[rt->replay_next++];
        const TimeNs due = rt->actual_start + (next.at - spec.replay.front().at);
        rt->next_task_due = due;
        QueueNextTask(rt, next.bytes, std::max<TimeNs>(0, due - sim_.Now()));
      }
      break;
  }
}

void Wlan::QueueNextTask(FlowRuntime* rt, int64_t bytes, TimeNs delay) {
  ++rt->tasks_started;
  auto launch = [this, rt, bytes] {
    // Replay tasks anchor at their logged due time (== now unless the launch was held
    // back by the previous task, i.e. the user was backlogged); everything else starts
    // its clock when the transfer actually begins.
    rt->task_started_at = rt->next_task_due >= 0 ? rt->next_task_due : sim_.Now();
    rt->next_task_due = -1;
    rt->task_target += bytes;
    if (rt->tcp_sender != nullptr) {
      rt->tcp_sender->AddTask(bytes);
    } else {
      rt->udp_source->AddTask(bytes);
    }
  };
  if (delay > 0) {
    sim_.Schedule(delay, launch);
  } else {
    launch();
  }
}

net::WirelessHost* Wlan::host(NodeId id) {
  auto it = hosts_.find(id);
  return it == hosts_.end() ? nullptr : it->second.get();
}

void Wlan::BuildNow() {
  if (!built_) {
    Build();
  }
}

Results Wlan::Run() {
  if (!built_) {
    Build();
  }

  // Warmup, then snapshot counters.
  std::map<NodeId, TimeNs> airtime_at_warmup;
  TimeNs busy_at_warmup = 0;
  sim_.RunUntil(config_.warmup);
  for (const auto& [node, t] : medium_->airtime_meter().by_node()) {
    airtime_at_warmup[node] = t;
  }
  busy_at_warmup = medium_->busy_time();
  for (auto& flow : flows_) {
    flow->window_snapshot = flow->delivered_bytes;
  }

  sim_.RunUntil(config_.warmup + config_.duration);

  Results results;
  const double window_sec = ToSeconds(config_.duration);

  TimeNs total_airtime_delta = 0;
  std::map<NodeId, TimeNs> airtime_delta;
  for (const auto& [node, t] : medium_->airtime_meter().by_node()) {
    const TimeNs before =
        airtime_at_warmup.contains(node) ? airtime_at_warmup[node] : 0;
    airtime_delta[node] = t - before;
    total_airtime_delta += t - before;
  }
  for (const auto& [node, dt] : airtime_delta) {
    results.airtime_share[node] =
        total_airtime_delta > 0
            ? static_cast<double>(dt) / static_cast<double>(total_airtime_delta)
            : 0.0;
  }

  double sum_task_sec = 0.0;
  int64_t table1_tasks = 0;
  for (auto& flow : flows_) {
    FlowResult fr;
    fr.flow_id = flow->flow_id;
    fr.client = flow->spec.client;
    fr.tcp = flow->spec.transport == Transport::kTcp;
    fr.bytes_delivered = flow->delivered_bytes - flow->window_snapshot;
    fr.goodput_bps = static_cast<double>(fr.bytes_delivered) * 8.0 / window_sec;
    // Task completions are reported relative to the flow's actual start (spec start +
    // CBR stagger), so they do not shift with the stagger or the warmup boundary.
    // The Table 1 aggregates use cumulative transfer durations - idle time (task_gap,
    // think) excluded, matching the fluid model's gap-free schedule; they coincide with
    // the completions for back-to-back sequences. On/off and trace-replay flows count
    // toward tasks_completed but stay out of the aggregates entirely: their duration
    // timelines embed think times / the capture's arrival structure (and, for replay,
    // backlog wait), not a gap-free task schedule.
    const bool table1_flow = flow->spec.model == TrafficModel::kBulk ||
                             flow->spec.model == TrafficModel::kTaskSequence;
    fr.task_completions.reserve(flow->task_completions.size());
    TimeNs transfer_elapsed = 0;
    for (size_t i = 0; i < flow->task_completions.size(); ++i) {
      fr.task_completions.push_back(flow->task_completions[i] - flow->actual_start);
      transfer_elapsed += flow->task_durations[i];
      ++results.tasks_completed;
      if (table1_flow) {
        ++table1_tasks;
        sum_task_sec += ToSeconds(transfer_elapsed);
        results.final_task_time_sec =
            std::max(results.final_task_time_sec, ToSeconds(transfer_elapsed));
      }
    }
    fr.task_durations = flow->task_durations;
    if (!fr.task_completions.empty()) {
      fr.completion_time = fr.task_completions.back();
    }
    if (flow->tcp_sender != nullptr) {
      fr.retransmits = flow->tcp_sender->retransmits();
      fr.timeouts = flow->tcp_sender->timeouts();
    }
    fr.rtt = LatencySummary::FromSketch(flow->rtt_sketch);
    fr.queue_delay = LatencySummary::FromSketch(flow->queue_delay_sketch);
    fr.task_latency = LatencySummary::FromSketch(flow->task_latency_sketch);
    results.rtt_sketch.Merge(flow->rtt_sketch);
    results.ap_queue_delay_sketch.Merge(flow->queue_delay_sketch);
    results.task_latency_sketch.Merge(flow->task_latency_sketch);
    results.goodput_bps[flow->spec.client] += fr.goodput_bps;
    results.aggregate_bps += fr.goodput_bps;
    results.flows.push_back(fr);
  }
  if (table1_tasks > 0) {
    results.avg_task_time_sec = sum_task_sec / static_cast<double>(table1_tasks);
  }
  results.rtt = LatencySummary::FromSketch(results.rtt_sketch);
  results.ap_queue_delay = LatencySummary::FromSketch(results.ap_queue_delay_sketch);
  results.task_latency = LatencySummary::FromSketch(results.task_latency_sketch);

  results.utilization =
      static_cast<double>(medium_->busy_time() - busy_at_warmup) / config_.duration;
  results.mac_collisions = medium_->collisions();
  results.mac_exchanges = medium_->exchanges();
  results.ap_drops = ap_->downlink_drops();
  return results;
}

}  // namespace tbf::scenario
