// Result records returned by scenario runs.
#ifndef TBF_SCENARIO_RESULTS_H_
#define TBF_SCENARIO_RESULTS_H_

#include <cmath>
#include <map>
#include <vector>

#include "tbf/stats/engine.h"
#include "tbf/stats/quantile_sketch.h"
#include "tbf/util/units.h"

namespace tbf::scenario {

// Streaming percentile readout of one latency meter. Values come from the run's
// QuantileSketch, so each percentile is within the sketch's documented relative error
// (default 1%) of the exact empirical quantile. All zero when the meter saw no samples.
struct LatencySummary {
  int64_t count = 0;
  TimeNs p50 = 0;
  TimeNs p95 = 0;
  TimeNs p99 = 0;

  friend bool operator==(const LatencySummary&, const LatencySummary&) = default;

  static LatencySummary FromSketch(const stats::QuantileSketch& sketch) {
    LatencySummary out;
    out.count = sketch.count();
    if (out.count > 0) {
      double q[3];
      sketch.Quantiles3(0.50, 0.95, 0.99, q);
      out.p50 = static_cast<TimeNs>(std::llround(q[0]));
      out.p95 = static_cast<TimeNs>(std::llround(q[1]));
      out.p99 = static_cast<TimeNs>(std::llround(q[2]));
    }
    return out;
  }

  double P50Ms() const { return ToMillis(p50); }
  double P95Ms() const { return ToMillis(p95); }
  double P99Ms() const { return ToMillis(p99); }
};

struct FlowResult {
  int flow_id = -1;
  NodeId client = kInvalidNodeId;
  bool tcp = true;
  int64_t bytes_delivered = 0;   // Payload bytes within the measurement window.
  double goodput_bps = 0.0;
  // Task flows: completion of the last finished task, measured from the flow's actual
  // start (start spec + any CBR stagger), so values are warmup- and stagger-
  // independent; -1 if no task finished.
  TimeNs completion_time = -1;
  // Every finished task's completion, relative to the flow's actual start, in finish
  // order. Task-sequence and on/off flows report one entry per completed transfer.
  std::vector<TimeNs> task_completions;
  // Per-task transfer latency: completion minus the moment that task's transfer began
  // (think/gap time excluded). For back-to-back sequences these sum to the last
  // completion; for on/off flows they are the user-visible download times. Trace-replay
  // tasks anchor at their *logged* due time instead of the actual launch, so a replay
  // backlogged by a slow policy charges the user's waiting time to the transfer
  // (sojourn time) rather than silently excluding it.
  std::vector<TimeNs> task_durations;
  int64_t retransmits = 0;
  int64_t timeouts = 0;

  // Whether this flow's exact tier (task vectors, per-flow sketches) covers its whole
  // run. Always true in legacy exact mode. Under sampled retention
  // (StatsConfig::top_k > 0) it is false for counted-tier-only flows - their summaries
  // carry the sample count but zero percentiles - and for flows promoted into the
  // top-K mid-run, whose percentiles cover only the post-promotion samples.
  bool exact = true;

  // Per-flow latency percentiles, metered over the whole run (tasks routinely span the
  // warmup boundary, so latency meters are not windowed the way goodput is):
  //  rtt          - raw TCP RTT samples at the sender (Karn-filtered; empty for UDP).
  //  queue_delay  - AP qdisc residency of this flow's packets: downlink data for
  //                 downlink flows, returning acks for uplink TCP flows (TBR's
  //                 ack-withholding lever measured directly).
  //  task_latency - per-task transfer durations (same samples as task_durations;
  //                 trace-replay tasks measure sojourn from their logged arrival).
  LatencySummary rtt;
  LatencySummary queue_delay;
  LatencySummary task_latency;

  // Exact (bitwise on doubles) equality - sweep determinism checks compare a parallel
  // run's Results against the serial run's, which must match exactly, not approximately.
  friend bool operator==(const FlowResult&, const FlowResult&) = default;
};

struct Results {
  // Per wireless client, measured over the window.
  std::map<NodeId, double> goodput_bps;
  std::map<NodeId, double> airtime_share;
  double aggregate_bps = 0.0;
  double utilization = 0.0;  // Fraction of the window the channel carried energy.
  std::vector<FlowResult> flows;

  // Table 1 efficiency measures over the completed tasks of kBulk/kTaskSequence flows:
  // the packet-level counterparts of model::TaskOutcome's avg/final task times. Each
  // task is scored by its flow's cumulative transfer time (task_gap idle excluded, so
  // the numbers mirror the fluid model's gap-free schedule; identical to the completion
  // offsets for back-to-back sequences). On/off flows are excluded - their timelines
  // are mostly think time; use their per-flow task_durations instead. 0 when no such
  // task finished. tasks_completed counts every flow's finished tasks.
  double avg_task_time_sec = 0.0;
  double final_task_time_sec = 0.0;
  int64_t tasks_completed = 0;

  int64_t mac_collisions = 0;
  int64_t mac_exchanges = 0;
  int64_t ap_drops = 0;

  // Cell-wide latency percentiles (every flow's meter merged) plus the merged sketches
  // themselves, so benches can pool cells across seeds - sketch merges are commutative
  // and associative, hence deterministic in any pooling order - and read percentiles
  // from the pooled distribution instead of averaging per-cell percentiles.
  LatencySummary rtt;
  LatencySummary ap_queue_delay;
  LatencySummary task_latency;
  stats::QuantileSketch rtt_sketch;
  stats::QuantileSketch ap_queue_delay_sketch;
  stats::QuantileSketch task_latency_sketch;

  // Interval-percentile time series of the same three meters (empty unless the run
  // configured StatsConfig::window > 0): one WindowStat per sealed window in which the
  // meter saw samples. For a sharded campus the per-cell series covers samples the
  // cell's shard observed; the campus-wide series in CampusResults covers everything.
  stats::MeterSeries rtt_series;
  stats::MeterSeries ap_queue_delay_series;
  stats::MeterSeries task_latency_series;
  // Windowed goodput: delivered payload bytes per sealed window (same windowing as the
  // latency series), so scheduler races can gate on throughput over time, not just
  // latency percentiles.
  stats::ByteSeries goodput_series;

  friend bool operator==(const Results&, const Results&) = default;

  double GoodputMbps(NodeId client) const {
    auto it = goodput_bps.find(client);
    return it == goodput_bps.end() ? 0.0 : it->second / 1e6;
  }
  double AggregateMbps() const { return aggregate_bps / 1e6; }
  double AirtimeShare(NodeId client) const {
    auto it = airtime_share.find(client);
    return it == airtime_share.end() ? 0.0 : it->second;
  }
};

}  // namespace tbf::scenario

#endif  // TBF_SCENARIO_RESULTS_H_
