// Result records returned by scenario runs.
#ifndef TBF_SCENARIO_RESULTS_H_
#define TBF_SCENARIO_RESULTS_H_

#include <map>
#include <vector>

#include "tbf/util/units.h"

namespace tbf::scenario {

struct FlowResult {
  int flow_id = -1;
  NodeId client = kInvalidNodeId;
  bool tcp = true;
  int64_t bytes_delivered = 0;   // Payload bytes within the measurement window.
  double goodput_bps = 0.0;
  // Task flows: wall-clock completion measured from flow start; -1 if unfinished.
  TimeNs completion_time = -1;
  int64_t retransmits = 0;
  int64_t timeouts = 0;

  // Exact (bitwise on doubles) equality - sweep determinism checks compare a parallel
  // run's Results against the serial run's, which must match exactly, not approximately.
  friend bool operator==(const FlowResult&, const FlowResult&) = default;
};

struct Results {
  // Per wireless client, measured over the window.
  std::map<NodeId, double> goodput_bps;
  std::map<NodeId, double> airtime_share;
  double aggregate_bps = 0.0;
  double utilization = 0.0;  // Fraction of the window the channel carried energy.
  std::vector<FlowResult> flows;

  int64_t mac_collisions = 0;
  int64_t mac_exchanges = 0;
  int64_t ap_drops = 0;

  friend bool operator==(const Results&, const Results&) = default;

  double GoodputMbps(NodeId client) const {
    auto it = goodput_bps.find(client);
    return it == goodput_bps.end() ? 0.0 : it->second / 1e6;
  }
  double AggregateMbps() const { return aggregate_bps / 1e6; }
  double AirtimeShare(NodeId client) const {
    auto it = airtime_share.find(client);
    return it == airtime_share.end() ? 0.0 : it->second;
  }
};

}  // namespace tbf::scenario

#endif  // TBF_SCENARIO_RESULTS_H_
