// Declarative WLAN scenario builder.
//
// Describes a single-cell infrastructure WLAN - stations (rate, loss), flows (TCP/UDP,
// direction, task size, app limit) and the AP queueing discipline - then builds the full
// stack (medium, DCF stations, AP + qdisc, wired backbone, transports), runs it, and
// returns per-node goodput, airtime shares and per-flow results measured after a warmup.
// Every bench and example in this repository is a thin wrapper around this class.
#ifndef TBF_SCENARIO_WLAN_H_
#define TBF_SCENARIO_WLAN_H_

#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "tbf/ap/access_point.h"
#include "tbf/core/tbr.h"
#include "tbf/mac/medium.h"
#include "tbf/net/host.h"
#include "tbf/net/tcp.h"
#include "tbf/net/udp.h"
#include "tbf/phy/channel.h"
#include "tbf/rateadapt/rate_controller.h"
#include "tbf/scenario/results.h"
#include "tbf/sim/simulator.h"
#include "tbf/stats/engine.h"
#include "tbf/stats/quantile_sketch.h"
#include "tbf/trace/distributions.h"
#include "tbf/trace/replay.h"

namespace tbf::scenario {

enum class Direction { kUplink, kDownlink };
enum class Transport { kTcp, kUdp };
// kTbr runs the paper's regulator with config.tbr as-is (including config.tbr.mode);
// the kTbr* variants are the adaptive scheduler family from docs/schedulers.md - the
// same regulator with the mode forced, so a sweep can race the contenders by kind
// alone while sharing every other TBR knob.
enum class QdiscKind {
  kFifo,
  kRoundRobin,
  kDrr,
  kTbr,
  kOarBurst,
  kTbrBurstCredit,
  kTbrFastEwma,
  kTbrCreditHybrid,
};

// True for every kind that builds a core::TimeBasedRegulator.
inline bool IsTbrKind(QdiscKind kind) {
  return kind == QdiscKind::kTbr || kind == QdiscKind::kTbrBurstCredit ||
         kind == QdiscKind::kTbrFastEwma || kind == QdiscKind::kTbrCreditHybrid;
}

// The regulator mode a kind selects (kTbr defers to the config's own mode).
inline core::TbrMode TbrModeForKind(QdiscKind kind, core::TbrMode config_mode) {
  switch (kind) {
    case QdiscKind::kTbrBurstCredit:
      return core::TbrMode::kBurstCredit;
    case QdiscKind::kTbrFastEwma:
      return core::TbrMode::kFastEwma;
    case QdiscKind::kTbrCreditHybrid:
      return core::TbrMode::kCreditHybrid;
    default:
      return config_mode;
  }
}

// What the application on top of a flow looks like.
//  kBulk:         one transfer - unbounded when task_bytes == 0, a single finite task
//                 otherwise (the classic fluid/task split).
//  kTaskSequence: task_count finite transfers of task_bytes each, back to back on the
//                 same connection (task_gap apart), each reporting its completion time -
//                 the packet-level counterpart of model::RunTaskModel's task lists.
//  kOnOffWeb:     endless web-era on/off source - Pareto-sized transfers separated by
//                 exponential think times (trace/distributions.h samplers, the same
//                 distributions the synthetic trace generators draw from).
//  kTraceReplay:  replays one trace::ReplayFlow (FlowSpec::replay): each logged transfer
//                 launches at its logged offset from the flow's start - or when the
//                 previous transfer completes, whichever is later - and delivers exactly
//                 its logged bytes via the restartable finite-task sources.
enum class TrafficModel { kBulk, kTaskSequence, kOnOffWeb, kTraceReplay };

struct StationSpec {
  NodeId id = kInvalidNodeId;
  phy::WifiRate rate = phy::WifiRate::k11Mbps;
  double per = 0.0;   // Reference frame loss probability (1500-byte frames).
  bool arf = false;   // Adapt rate with ARF instead of pinning it.
  // When set (non-zero), the station's loss follows the SNR-margin model instead of the
  // fixed PER: error rate couples to the chosen rate, so ARF settles at the SNR-correct
  // rung. `rate` is then just the starting rate (use phy::RateForSnr for consistency).
  double snr_db = 0.0;
  size_t queue_limit = 50;

  friend bool operator==(const StationSpec&, const StationSpec&) = default;
};

struct FlowSpec {
  NodeId client = kInvalidNodeId;
  Direction direction = Direction::kUplink;
  Transport transport = Transport::kTcp;
  TrafficModel model = TrafficModel::kBulk;
  int64_t task_bytes = 0;       // kBulk: 0 = unbounded. kTaskSequence: per-task size.
  int task_count = 1;           // kTaskSequence: number of back-to-back transfers.
  TimeNs task_gap = 0;          // kTaskSequence: idle gap between transfers.
  trace::OnOffSampler onoff;    // kOnOffWeb: flow-size / think-time distributions.
  // kTraceReplay: the logged transfers, in trace order. Task launch offsets are taken
  // relative to the first task's timestamp, anchored at the flow's actual start (so a
  // shifted `start` shifts the whole replay without changing its internal timing).
  std::vector<trace::ReplayTask> replay;
  BitRate app_limit_bps = 0;    // TCP sender-side application cap (0 = none).
  BitRate udp_rate = Mbps(8);   // CBR rate for UDP sources.
  int packet_bytes = 1500;      // IP datagram size.
  TimeNs start = 0;

  friend bool operator==(const FlowSpec&, const FlowSpec&) = default;
};

// Converts a recovered trace flow into a kTraceReplay FlowSpec - the one place the
// ReplayFlow -> FlowSpec mapping lives, shared by Wlan::AddTraceReplay and the
// declarative ScenarioJob builders in benches/examples.
FlowSpec MakeTraceReplaySpec(const trace::ReplayFlow& flow,
                             Transport transport = Transport::kTcp);

// Thrown by Wlan::Build (and hence Run) when the declared scenario is invalid. A
// misconfigured job fails fast with a diagnostic instead of producing undefined
// downstream behavior (divide-by-zero rates, unbounded loops, out-of-range node ids);
// sweep::SweepRunner propagates it with the failing job's identity and the campaign
// layer rejects the manifest before dispatching anything.
class ScenarioError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct ScenarioConfig {
  QdiscKind qdisc = QdiscKind::kFifo;
  core::TbrConfig tbr;          // Used when qdisc == kTbr.
  size_t fifo_limit = 110;      // Stock kernel interface queue (Exp-Normal).
  size_t per_queue_limit = 50;  // RR / DRR per-client queues.
  phy::MacTimings timings = phy::MixedModeTimings();
  uint64_t seed = 1;
  BitRate wired_rate = Mbps(100);
  TimeNs wired_delay = Us(500);
  TimeNs warmup = Sec(2);       // Stats ignore this prefix.
  TimeNs duration = Sec(30);    // Measurement window length.
  // Metrology policy (windowed percentiles, sampled per-flow retention). The default
  // is legacy exact mode: every flow retained, whole run one window.
  stats::StatsConfig stats;

  friend bool operator==(const ScenarioConfig&, const ScenarioConfig&) = default;
};

// Validates a full scenario declaration up front: config ranges (nonzero rates and
// durations, MAC timing sanity), station bounds (ids in (0, kServerId), unique, PER in
// [0,1], nonzero queues), and per-flow requirements (declared station, packet size
// larger than its transport header, task_bytes > 0 where a finite task is implied,
// positive on/off distribution parameters, non-empty sorted replay logs). Returns an
// empty string when valid, else a one-line diagnostic naming the offending entry.
std::string ValidateScenario(const ScenarioConfig& config,
                             const std::vector<StationSpec>& stations,
                             const std::vector<FlowSpec>& flows);

// Builds the AP transmit qdisc a config asks for. `rates` feeds the burst-sizing
// baseline (kOarBurst); when the config selects TBR, `*tbr_out` receives the live
// regulator for pre-run configuration (weights, client-agent wiring). Shared by the
// single-cell builder and the sharded campus builder (one qdisc per BSS shard).
std::unique_ptr<ap::Qdisc> MakeQdisc(const ScenarioConfig& config, sim::Simulator* sim,
                                     rateadapt::CompositeRateController* rates,
                                     core::TimeBasedRegulator** tbr_out);

struct FlowEngine;

class Wlan {
 public:
  explicit Wlan(ScenarioConfig config = {});
  ~Wlan();

  Wlan(const Wlan&) = delete;
  Wlan& operator=(const Wlan&) = delete;

  // Declaration phase (before Run).
  StationSpec& AddStation(NodeId id, phy::WifiRate rate, double per = 0.0);
  StationSpec& AddStation(StationSpec spec);
  FlowSpec& AddFlow(FlowSpec spec);

  // Convenience: one saturated TCP flow for `client` in `direction`.
  FlowSpec& AddBulkTcp(NodeId client, Direction direction);
  FlowSpec& AddSaturatingUdp(NodeId client, Direction direction);
  // Web-like on/off TCP source (Pareto transfers, exponential think times).
  FlowSpec& AddWebOnOff(NodeId client, Direction direction);
  // `count` finite TCP transfers of `bytes` each, back to back.
  FlowSpec& AddTaskSequence(NodeId client, Direction direction, int64_t bytes, int count);
  // Replays one recovered trace flow (see trace::TraceReplaySource); the station for
  // `flow.node` must be declared separately. Direction comes from the trace record.
  FlowSpec& AddTraceReplay(const trace::ReplayFlow& flow,
                           Transport transport = Transport::kTcp);

  // Constructs the full stack without running. Call when pre-run configuration of live
  // components is needed (e.g. TBR weights); Run() builds implicitly otherwise.
  void BuildNow();

  // Builds the stack and runs warmup + duration. Returns measured results.
  Results Run();

  // Post-run (or mid-run via callbacks) introspection.
  core::TimeBasedRegulator* tbr() { return tbr_; }
  mac::Medium* medium() { return medium_.get(); }
  sim::Simulator& simulator() { return sim_; }
  net::PacketPool& packet_pool() { return packet_pool_; }
  net::WirelessHost* host(NodeId id);
  // The run's metrology (complete after Run(); see docs/metrology.md).
  const stats::StatsEngine& stats_engine() const { return stats_; }

 private:
  void Build();

  ScenarioConfig config_;
  std::vector<StationSpec> station_specs_;
  std::vector<FlowSpec> flow_specs_;

  // Runtime (populated by Build). The packet pool sits next to the Simulator and is
  // declared right after it so it outlives every component that can hold packets
  // (members below are destroyed first); each scenario owns its own pool, so sweep
  // workers never share one (TBF_SWEEP_THREADS stays race-free and bit-identical).
  sim::Simulator sim_;
  net::PacketPool packet_pool_;
  std::unique_ptr<sim::Rng> rng_;
  std::unique_ptr<phy::FixedPerLink> fixed_loss_;
  std::unique_ptr<phy::SnrLossModel> snr_loss_;
  std::unique_ptr<phy::LossModel> loss_;  // Dispatches per client to the two above.
  std::unique_ptr<mac::Medium> medium_;
  std::unique_ptr<rateadapt::CompositeRateController> ap_rates_;
  std::unique_ptr<ap::AccessPoint> ap_;
  std::unique_ptr<net::WiredLink> wired_;
  std::unique_ptr<net::Demux> demux_;
  std::unique_ptr<net::WiredHost> server_;
  std::map<NodeId, std::unique_ptr<net::WirelessHost>> hosts_;
  std::vector<std::unique_ptr<FlowEngine>> flows_;
  stats::StatsEngine stats_;  // Configured from config_.stats in Build().
  core::TimeBasedRegulator* tbr_ = nullptr;
  bool built_ = false;
};

}  // namespace tbf::scenario

#endif  // TBF_SCENARIO_WLAN_H_
