// The per-flow runtime shared by every scenario builder.
//
// A FlowEngine is one constructed flow: the transport endpoints it owns and the
// finite-task bookkeeping that restarts transfers (task sequences, on/off draws, trace
// replays). Latency samples and delivered bytes are recorded through the owning shard's
// stats::StatsEngine (see docs/metrology.md), never stored here - the engine struct
// stays O(1) per flow. Extracted from scenario::Wlan so multi-shard builders
// (shard::CampusSim) drive the exact same task-chaining state machine: the engine always
// lives in exactly one shard - the one whose Simulator fires its callbacks - so none of
// its state needs synchronization. In a sharded campus the engine sits on the flow's
// *initiating* side (TCP: the sender's shard, where task completion is observed via the
// final cumulative ack; UDP: the sink's shard, where delivery is counted) and the far
// endpoint is owned separately by the opposite shard.
#ifndef TBF_SCENARIO_FLOW_ENGINE_H_
#define TBF_SCENARIO_FLOW_ENGINE_H_

#include <memory>
#include <vector>

#include "tbf/net/tcp.h"
#include "tbf/net/udp.h"
#include "tbf/scenario/results.h"
#include "tbf/scenario/wlan.h"
#include "tbf/sim/random.h"
#include "tbf/sim/simulator.h"
#include "tbf/stats/engine.h"

namespace tbf::scenario {

struct FlowEngine {
  FlowSpec spec;
  int flow_id = -1;
  // When the first transfer actually begins: spec.start plus the CBR stagger for UDP
  // flows. Task completions are reported relative to this, which makes
  // AvgTaskTime/FinalTaskTime independent of the stagger and of where the warmup ends.
  TimeNs actual_start = 0;

  // The simulator, rng and stats engine of the shard this engine lives in (single-cell
  // scenarios have exactly one of each). Set by the builder before any task runs; the
  // flow must be registered with `stats` before its first sample.
  sim::Simulator* sim = nullptr;
  sim::Rng* rng = nullptr;
  stats::StatsEngine* stats = nullptr;

  // Endpoints this engine's shard owns. In a single cell all of the flow's endpoints
  // live here; in a sharded campus only the engine-side one is non-null and the far
  // endpoint belongs to the opposite shard.
  std::unique_ptr<net::TcpSender> tcp_sender;
  std::unique_ptr<net::TcpReceiver> tcp_receiver;
  std::unique_ptr<net::UdpSource> udp_source;
  std::unique_ptr<net::UdpSink> udp_sink;

  int64_t delivered_bytes = 0;   // Total payload delivered (from flow start).
  int64_t window_snapshot = 0;   // Delivered bytes at warmup.

  // Finite-task bookkeeping. `task_target` is the cumulative payload target of the
  // task in flight (grown per task so restarts share one sequence space); UDP tasks
  // complete when the sink has delivered it, TCP tasks when the sender reports Done.
  int64_t task_target = 0;
  int tasks_started = 0;
  TimeNs task_started_at = 0;            // When the task in flight began transferring.
  // kTraceReplay: the next task's logged due time. Durations anchor here instead of at
  // the actual launch, so a backlogged replay charges the user's waiting time to the
  // transfer (sojourn from logged arrival) instead of silently excluding it. -1 = unset.
  TimeNs next_task_due = -1;
  size_t replay_next = 1;                // kTraceReplay: index of the next logged task.

  bool HasTasks() const { return task_target > 0; }

  // Sizes the first transfer (drawing from `rng` for on/off flows) and returns the
  // flow's start instant - `flow_start` shifted to the first logged arrival for trace
  // replays. Sets task_target (the first task's bytes; 0 keeps the flow unbounded)
  // and tasks_started.
  TimeNs InitFirstTask(TimeNs flow_start);

  // Delivery-side accounting; UDP finite tasks complete here (no acks).
  void OnDelivered(int64_t bytes);

  // Task chaining: records the task that just finished and, for sequence, on/off and
  // replay flows, queues the next transfer (after the think/gap time).
  void OnTaskComplete();
  void QueueNextTask(int64_t bytes, TimeNs delay);
};

// Folds one engine's measurement-window readout into `results`: the FlowResult, the
// merged cell-wide sketches (retained flows only under sampled retention), per-client
// goodput, and the Table 1 task aggregates accumulated via `sum_task_sec`/
// `table1_tasks` (the caller divides at the end). `delivered_delta` is the payload
// delivered inside the window - the caller supplies it because in a sharded campus the
// receiver-side counter may live in the opposite shard from the engine. `meters` is
// the stats engine of the shard the flow engine lives in (task + RTT meters);
// `queue_meters` is the stats engine of the flow's *cell* shard, where the AP qdisc
// tap always records - for downlink campus flows these differ. Single-cell callers
// pass the same engine twice.
void AccumulateFlowResult(const FlowEngine& flow, int64_t delivered_delta,
                          double window_sec, const stats::StatsEngine& meters,
                          const stats::StatsEngine& queue_meters, Results* results,
                          double* sum_task_sec, int64_t* table1_tasks);

}  // namespace tbf::scenario

#endif  // TBF_SCENARIO_FLOW_ENGINE_H_
