#include "tbf/scenario/flow_engine.h"

#include <algorithm>

namespace tbf::scenario {

TimeNs FlowEngine::InitFirstTask(TimeNs flow_start) {
  // Size of the first transfer: the spec's task size, an on/off draw, or the trace's
  // first logged transfer. 0 keeps the flow unbounded (kBulk fluid transfer). Trace
  // replays anchor the start at the first logged arrival so later transfers keep their
  // logged offsets from it.
  int64_t first_task = 0;
  switch (spec.model) {
    case TrafficModel::kBulk:
      first_task = spec.task_bytes;
      break;
    case TrafficModel::kTaskSequence:
      first_task = spec.task_bytes;  // ValidateScenario pinned size and count > 0.
      break;
    case TrafficModel::kOnOffWeb:
      first_task = spec.onoff.DrawFlowBytes(*rng);
      break;
    case TrafficModel::kTraceReplay:
      first_task = spec.replay.front().bytes;
      flow_start += spec.replay.front().at;
      break;
  }
  task_target = first_task;
  tasks_started = first_task > 0 ? 1 : 0;
  return flow_start;
}

void FlowEngine::OnDelivered(int64_t bytes) {
  delivered_bytes += bytes;
  stats->RecordBytes(flow_id, sim->Now(), bytes);
  // UDP tasks have no acks; they complete when the sink has delivered the task's
  // payload. (A datagram lost beyond the MAC's retries stalls the task - finite UDP
  // tasks are meant for configurations below the loss cliff.)
  if (spec.transport == Transport::kUdp && HasTasks() && delivered_bytes >= task_target) {
    OnTaskComplete();
  }
}

void FlowEngine::OnTaskComplete() {
  stats->RecordTaskCompletion(flow_id, sim->Now(), sim->Now() - task_started_at);
  switch (spec.model) {
    case TrafficModel::kBulk:
      break;  // Single finite task; nothing follows.
    case TrafficModel::kTaskSequence:
      if (tasks_started < spec.task_count) {
        QueueNextTask(spec.task_bytes, spec.task_gap);
      }
      break;
    case TrafficModel::kOnOffWeb:
      // Think, then the next transfer. Both draws happen now (event order is
      // deterministic, so the rng stream is too).
      QueueNextTask(spec.onoff.DrawFlowBytes(*rng), spec.onoff.DrawThinkNs(*rng));
      break;
    case TrafficModel::kTraceReplay:
      // Launch the next logged transfer at its logged offset from the flow's start; if
      // the cell ran slower than the capture and that moment has passed, launch now
      // (the user is backlogged, not skipped - every logged byte still gets delivered,
      // and the duration anchor stays at the logged due time so the wait is measured).
      if (replay_next < spec.replay.size()) {
        const trace::ReplayTask& next = spec.replay[replay_next++];
        const TimeNs due = actual_start + (next.at - spec.replay.front().at);
        next_task_due = due;
        QueueNextTask(next.bytes, std::max<TimeNs>(0, due - sim->Now()));
      }
      break;
  }
}

void FlowEngine::QueueNextTask(int64_t bytes, TimeNs delay) {
  ++tasks_started;
  auto launch = [this, bytes] {
    // Replay tasks anchor at their logged due time (== now unless the launch was held
    // back by the previous task, i.e. the user was backlogged); everything else starts
    // its clock when the transfer actually begins.
    task_started_at = next_task_due >= 0 ? next_task_due : sim->Now();
    next_task_due = -1;
    task_target += bytes;
    if (tcp_sender != nullptr) {
      tcp_sender->AddTask(bytes);
    } else {
      udp_source->AddTask(bytes);
    }
  };
  if (delay > 0) {
    sim->Schedule(delay, launch);
  } else {
    launch();
  }
}

void AccumulateFlowResult(const FlowEngine& flow, int64_t delivered_delta,
                          double window_sec, const stats::StatsEngine& meters,
                          const stats::StatsEngine& queue_meters, Results* results,
                          double* sum_task_sec, int64_t* table1_tasks) {
  static const stats::FlowStats kNoStats = stats::FlowStats();
  const stats::FlowStats* fs = meters.flow(flow.flow_id);
  const stats::FlowStats* qs = queue_meters.flow(flow.flow_id);
  if (fs == nullptr) {
    fs = &kNoStats;
  }
  if (qs == nullptr) {
    qs = &kNoStats;
  }

  FlowResult fr;
  fr.flow_id = flow.flow_id;
  fr.client = flow.spec.client;
  fr.tcp = flow.spec.transport == Transport::kTcp;
  fr.bytes_delivered = delivered_delta;
  fr.goodput_bps = static_cast<double>(fr.bytes_delivered) * 8.0 / window_sec;
  fr.exact = fs->retained && qs->retained;
  // Task completions are reported relative to the flow's actual start (spec start +
  // CBR stagger), so they do not shift with the stagger or the warmup boundary.
  // The Table 1 aggregates use cumulative transfer durations - idle time (task_gap,
  // think) excluded, matching the fluid model's gap-free schedule; they coincide with
  // the completions for back-to-back sequences. On/off and trace-replay flows count
  // toward tasks_completed but stay out of the aggregates entirely: their duration
  // timelines embed think times / the capture's arrival structure (and, for replay,
  // backlog wait), not a gap-free task schedule. Under sampled retention the task
  // vectors (hence the Table 1 walk) exist only for retained flows; tasks_completed
  // still counts every flow via the counted tier.
  const bool table1_flow = flow.spec.model == TrafficModel::kBulk ||
                           flow.spec.model == TrafficModel::kTaskSequence;
  fr.task_completions.reserve(fs->task_completions.size());
  TimeNs transfer_elapsed = 0;
  for (size_t i = 0; i < fs->task_completions.size(); ++i) {
    fr.task_completions.push_back(fs->task_completions[i] - flow.actual_start);
    transfer_elapsed += fs->task_durations[i];
    if (table1_flow) {
      ++*table1_tasks;
      *sum_task_sec += ToSeconds(transfer_elapsed);
      results->final_task_time_sec =
          std::max(results->final_task_time_sec, ToSeconds(transfer_elapsed));
    }
  }
  results->tasks_completed += fs->tasks;
  fr.task_durations = fs->task_durations;
  if (fs->last_completion >= 0) {
    fr.completion_time = fs->last_completion - flow.actual_start;
  }
  if (flow.tcp_sender != nullptr) {
    fr.retransmits = flow.tcp_sender->retransmits();
    fr.timeouts = flow.tcp_sender->timeouts();
  }
  // Counted-tier-only flows report their sample counts with zero percentiles
  // (fr.exact == false tells the reader); the run-wide meters still carry their
  // samples in every streaming mode.
  if (fs->retained) {
    fr.rtt = LatencySummary::FromSketch(fs->rtt_sketch);
    fr.task_latency = LatencySummary::FromSketch(fs->task_latency_sketch);
  } else {
    fr.rtt.count = fs->rtt_count;
    fr.task_latency.count = fs->tasks;
  }
  if (qs->retained) {
    fr.queue_delay = LatencySummary::FromSketch(qs->queue_delay_sketch);
  } else {
    fr.queue_delay.count = qs->queue_count;
  }
  results->rtt_sketch.Merge(fs->rtt_sketch);
  results->ap_queue_delay_sketch.Merge(qs->queue_delay_sketch);
  results->task_latency_sketch.Merge(fs->task_latency_sketch);
  results->goodput_bps[flow.spec.client] += fr.goodput_bps;
  results->aggregate_bps += fr.goodput_bps;
  results->flows.push_back(fr);
}

}  // namespace tbf::scenario
