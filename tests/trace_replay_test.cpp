// Trace-replay workload path: transfer recovery from frame-level logs (gap coalescing,
// retry/failure filters, horizon), exact delivery of the logged bytes through the full
// stack, stagger/warmup-independent completion timing (same invariance discipline as
// traffic_model_test.cpp), sweep determinism across pool sizes, and the regression pin
// for TBR's short-burst 1/N initial-share tax (the ROADMAP "known behavior" a future
// burst-credit experiment has to beat).
#include <algorithm>
#include <cstdint>
#include <numeric>

#include <gtest/gtest.h>

#include "tbf/scenario/wlan.h"
#include "tbf/sweep/sweep_runner.h"
#include "tbf/trace/generators.h"
#include "tbf/trace/replay.h"

namespace tbf::scenario {
namespace {

// Small web-era capture: 3 users, one minute. Big enough to produce several transfers
// per user in both directions, small enough that replaying it is a fast test.
trace::TraceLog SmallWorkshopTrace(uint64_t seed = 17) {
  trace::WorkshopConfig config;
  config.duration = Sec(60);
  config.users = 3;
  config.mean_flow_bytes = 96.0 * 1024.0;
  config.mean_think_sec = 6.0;
  sim::Rng rng(seed);
  return trace::GenerateWorkshopTrace(config, rng);
}

ScenarioConfig ReplayCell(TimeNs duration) {
  ScenarioConfig config;
  config.qdisc = QdiscKind::kFifo;
  config.warmup = 0;  // The exactness checks account for every delivered byte.
  config.duration = duration;
  return config;
}

// ---- Transfer recovery ----------------------------------------------------------------

TEST(TraceReplayTest, CoalescesFramesIntoTransfersByGap) {
  trace::TraceLog log;
  auto frame = [&](TimeNs t, NodeId node, int bytes, bool retry = false,
                   bool success = true) {
    trace::TraceRecord r;
    r.time = t;
    r.node = node;
    r.downlink = true;
    r.bytes = bytes;
    r.retry = retry;
    r.success = success;
    log.Add(r);
  };
  // Node 1: two frames 10 ms apart (one transfer), then a 2 s silence, then another.
  frame(Ms(100), 1, 1500);
  frame(Ms(110), 1, 700);
  frame(Sec(2) + Ms(110), 1, 900);
  // A retry and a failure inside the first burst: filtered out by default.
  frame(Ms(105), 1, 1500, /*retry=*/true);
  frame(Ms(106), 1, 1500, /*retry=*/false, /*success=*/false);
  // Node 2 interleaved, one transfer.
  frame(Ms(50), 2, 4000);

  const trace::TraceReplaySource source(log);
  ASSERT_EQ(source.flows().size(), 2u);
  const trace::ReplayFlow& n1 = source.flows()[0];
  EXPECT_EQ(n1.node, 1);
  EXPECT_TRUE(n1.downlink);
  ASSERT_EQ(n1.tasks.size(), 2u);
  EXPECT_EQ(n1.tasks[0].at, Ms(100));
  EXPECT_EQ(n1.tasks[0].bytes, 1500 + 700);
  EXPECT_EQ(n1.tasks[1].at, Sec(2) + Ms(110));
  EXPECT_EQ(n1.tasks[1].bytes, 900);
  EXPECT_EQ(n1.total_bytes, 3100);
  const trace::ReplayFlow& n2 = source.flows()[1];
  EXPECT_EQ(n2.node, 2);
  EXPECT_EQ(n2.total_bytes, 4000);
  EXPECT_EQ(source.total_bytes(), 7100);
  EXPECT_EQ(source.last_arrival(), Sec(2) + Ms(110));

  // Including retries folds their bytes back in.
  trace::ReplayOptions with_retries;
  with_retries.include_retries = true;
  with_retries.include_failures = true;
  const trace::TraceReplaySource all(log, with_retries);
  EXPECT_EQ(all.flows()[0].total_bytes, 3100 + 3000);

  // A horizon drops transfers starting at or past it (but not frames of earlier ones).
  trace::ReplayOptions capped;
  capped.horizon = Sec(1);
  const trace::TraceReplaySource prefix(log, capped);
  EXPECT_EQ(prefix.flows()[0].tasks.size(), 1u);
  EXPECT_EQ(prefix.flows()[0].total_bytes, 2200);
}

// ---- Exact delivery through the full stack ----------------------------------------------

TEST(TraceReplayTest, ReplayDeliversExactlyLoggedBytesPerFlow) {
  const trace::TraceLog log = SmallWorkshopTrace();
  const trace::TraceReplaySource source(log);
  ASSERT_GT(source.flows().size(), 2u);
  ASSERT_GT(source.total_bytes(), 0);

  Wlan wlan(ReplayCell(source.last_arrival() + Sec(30)));
  for (NodeId id = 1; id <= 3; ++id) {
    wlan.AddStation(id, phy::WifiRate::k11Mbps);
  }
  for (const trace::ReplayFlow& flow : source.flows()) {
    wlan.AddTraceReplay(flow);
  }
  const Results res = wlan.Run();

  ASSERT_EQ(res.flows.size(), source.flows().size());
  int64_t delivered = 0;
  int64_t tasks = 0;
  for (size_t i = 0; i < res.flows.size(); ++i) {
    const trace::ReplayFlow& logged = source.flows()[i];
    const FlowResult& fr = res.flows[i];
    EXPECT_EQ(fr.client, logged.node);
    // Every logged transfer finished and the flow moved exactly its logged bytes.
    EXPECT_EQ(fr.bytes_delivered, logged.total_bytes) << "flow " << i;
    EXPECT_EQ(fr.task_completions.size(), logged.tasks.size()) << "flow " << i;
    delivered += fr.bytes_delivered;
    tasks += static_cast<int64_t>(fr.task_completions.size());
    // The metrology layer saw the flow: completed transfers report latency percentiles.
    EXPECT_EQ(fr.task_latency.count,
              static_cast<int64_t>(fr.task_durations.size()));
    EXPECT_GT(fr.task_latency.p50, 0);
    EXPECT_LE(fr.task_latency.p50, fr.task_latency.p95);
    EXPECT_LE(fr.task_latency.p95, fr.task_latency.p99);
  }
  EXPECT_EQ(delivered, source.total_bytes());
  EXPECT_EQ(res.tasks_completed, tasks);
  // Cell-wide sketches aggregate every flow's meter.
  EXPECT_EQ(res.task_latency_sketch.count(), tasks);
  EXPECT_GT(res.rtt.count, 0);
  EXPECT_GT(res.ap_queue_delay.count, 0);
}

TEST(TraceReplayTest, UdpReplayDeliversExactlyLoggedBytes) {
  // The UDP path packetizes finite tasks itself (trimmed final datagram); replayed
  // transfers must survive odd byte counts there too.
  trace::TraceLog log;
  trace::TraceRecord r;
  r.node = 1;
  r.downlink = true;
  r.success = true;
  r.time = Ms(10);
  r.bytes = 3333;
  log.Add(r);
  r.time = Sec(3);
  r.bytes = 777;
  log.Add(r);
  const trace::TraceReplaySource source(log);

  Wlan wlan(ReplayCell(Sec(10)));
  wlan.AddStation(1, phy::WifiRate::k11Mbps);
  FlowSpec& spec = wlan.AddTraceReplay(source.flows().front(), Transport::kUdp);
  spec.udp_rate = Mbps(2);
  const Results res = wlan.Run();
  ASSERT_EQ(res.flows.size(), 1u);
  EXPECT_EQ(res.flows[0].bytes_delivered, 3333 + 777);
  EXPECT_EQ(res.flows[0].task_completions.size(), 2u);
}

// ---- Timing invariance ------------------------------------------------------------------

TEST(TraceReplayTest, CompletionTimesStaggerAndWarmupIndependent) {
  trace::TraceLog log;
  trace::TraceRecord r;
  r.node = 1;
  r.downlink = false;
  r.success = true;
  for (const TimeNs t : {Ms(0), Sec(2), Sec(4)}) {
    r.time = t;
    r.bytes = 200'000;
    log.Add(r);
  }
  const trace::TraceReplaySource source(log);

  auto run = [&](TimeNs start, TimeNs warmup) {
    ScenarioConfig config = ReplayCell(Sec(20));
    config.warmup = warmup;
    Wlan wlan(config);
    wlan.AddStation(1, phy::WifiRate::k11Mbps);
    wlan.AddTraceReplay(source.flows().front()).start = start;
    const Results res = wlan.Run();
    EXPECT_EQ(res.flows.size(), 1u);
    return res.flows.front().task_completions;
  };

  const std::vector<TimeNs> base = run(0, 0);
  ASSERT_EQ(base.size(), 3u);
  EXPECT_GT(base.front(), 0);
  // Shifting the flow's start slides the whole replay; completions are reported
  // relative to the flow's actual start, so they must not move. Neither may the
  // warmup boundary, which only frames the goodput window.
  EXPECT_EQ(run(Ms(250), 0), base);
  EXPECT_EQ(run(0, Sec(2)), base);
  EXPECT_EQ(run(Ms(250), Sec(2)), base);
}

// ---- Sweep determinism ------------------------------------------------------------------

std::vector<sweep::ScenarioJob> ReplayGrid() {
  const trace::TraceLog log = SmallWorkshopTrace(23);
  trace::ReplayOptions options;
  options.horizon = Sec(30);
  const trace::TraceReplaySource source(log, options);

  std::vector<sweep::ScenarioJob> jobs;
  for (const QdiscKind qdisc : {QdiscKind::kFifo, QdiscKind::kTbr}) {
    sweep::ScenarioJob job;
    job.config.qdisc = qdisc;
    job.config.warmup = 0;
    job.config.duration = Sec(45);
    job.config.seed = 5;
    for (NodeId id = 1; id <= 3; ++id) {
      StationSpec station;
      station.id = id;
      station.rate = id == 1 ? phy::WifiRate::k2Mbps : phy::WifiRate::k11Mbps;
      job.stations.push_back(station);
    }
    for (const trace::ReplayFlow& flow : source.flows()) {
      job.flows.push_back(MakeTraceReplaySpec(flow));
    }
    jobs.push_back(std::move(job));
  }
  return jobs;
}

TEST(TraceReplaySweepTest, ReplayResultsBitIdenticalAcrossPoolSizes) {
  const std::vector<sweep::ScenarioJob> jobs = ReplayGrid();
  sweep::SweepRunner serial(1);
  const std::vector<Results> reference = serial.RunScenarios(jobs);
  ASSERT_EQ(reference.size(), jobs.size());
  for (const Results& r : reference) {
    EXPECT_GT(r.tasks_completed, 0);
    EXPECT_GT(r.task_latency.count, 0);  // Latency metrology ran in every cell.
  }
  for (const int pool_size : {2, 4}) {
    sweep::SweepRunner parallel(pool_size);
    const std::vector<Results> out = parallel.RunScenarios(jobs);
    ASSERT_EQ(out.size(), reference.size());
    for (size_t i = 0; i < out.size(); ++i) {
      // Results equality is bitwise and now covers the latency summaries and the
      // merged sketches, so this also pins sketch-merge determinism end to end.
      EXPECT_EQ(out[i], reference[i]) << "pool=" << pool_size << " job=" << i;
    }
  }
}

// ---- TBR short-burst initial-share tax --------------------------------------------------

// The burst-tax microcell shared by the stock pin and the adaptive-scheduler checks:
// one active client bursting against one associated-but-idle donor, six 150 kB tasks
// with 50 ms think gaps. Returns the per-task durations of the active flow.
std::vector<TimeNs> RunBurstCell(QdiscKind kind) {
  ScenarioConfig config;
  config.qdisc = kind;
  config.warmup = 0;
  config.duration = Sec(25);
  Wlan wlan(config);
  wlan.AddStation(1, phy::WifiRate::k11Mbps);
  wlan.AddStation(2, phy::WifiRate::k11Mbps);  // Associated but idle: the 1/N donor.
  FlowSpec& seq = wlan.AddTaskSequence(1, Direction::kDownlink, 150'000, /*count=*/6);
  // Short gaps keep the flow's demand visible to the adjuster; longer idle gaps make
  // the EWMA bleed the donated share back and the tail tax plateaus near 1.35x.
  seq.task_gap = Ms(50);
  const Results res = wlan.Run();
  EXPECT_EQ(res.flows.size(), 1u);
  return res.flows.front().task_durations;
}

TEST(TbrBurstTaxTest, FirstBurstPaysInitialShareTaxUntilAdjusterConverges) {
  // ROADMAP "known behavior": TBR hands every associated client an equal initial time
  // share, so in a mostly-idle cell the first short burst of an active client runs at
  // 1/N of the channel until the 500 ms rate adjuster donates the idle clients' shares.
  // Pin the gap: the first burst of a cold TBR cell is measurably slower than the same
  // burst once rates have converged, and than the unregulated (FIFO) cell, which shows
  // only TCP slow start. A burst-credit experiment must shrink tbr_first without
  // regressing tbr_last.
  const std::vector<TimeNs> tbr = RunBurstCell(QdiscKind::kTbr);
  const std::vector<TimeNs> fifo = RunBurstCell(QdiscKind::kFifo);
  ASSERT_EQ(tbr.size(), 6u);
  ASSERT_EQ(fifo.size(), 6u);

  const double tax_first =
      static_cast<double>(tbr.front()) / static_cast<double>(fifo.front());
  const double tax_last =
      static_cast<double>(tbr.back()) / static_cast<double>(fifo.back());
  // The cold cell's first burst pays a clear tax over the unregulated baseline
  // (measured 1.66x here)...
  EXPECT_GT(tax_first, 1.3) << "first-burst tax vanished - burst credit landed?";
  // ...which the adjuster has mostly repaid by the later bursts (measured 1.12x)...
  EXPECT_LT(tax_last, 1.25) << "rate adjuster no longer converges for bursty flows";
  // ...so the first burst is the slow outlier within the TBR run itself.
  EXPECT_GT(static_cast<double>(tbr.front()),
            1.2 * static_cast<double>(tbr.back()));
}

TEST(TbrBurstTaxTest, AdaptiveSchedulersEraseFirstBurstTax) {
  // The bar the adaptive family was built to clear: every contender's cold first burst
  // lands within 1.2x of the unregulated FIFO cell (stock TBR pays 1.66x above), and
  // the later bursts stay converged - adaptivity must not trade the head tax for a
  // tail one.
  const std::vector<TimeNs> fifo = RunBurstCell(QdiscKind::kFifo);
  ASSERT_EQ(fifo.size(), 6u);
  for (const QdiscKind kind : {QdiscKind::kTbrBurstCredit, QdiscKind::kTbrFastEwma,
                               QdiscKind::kTbrCreditHybrid}) {
    const std::vector<TimeNs> adaptive = RunBurstCell(kind);
    ASSERT_EQ(adaptive.size(), 6u) << "qdisc=" << static_cast<int>(kind);
    const double tax_first =
        static_cast<double>(adaptive.front()) / static_cast<double>(fifo.front());
    const double tax_last =
        static_cast<double>(adaptive.back()) / static_cast<double>(fifo.back());
    EXPECT_LE(tax_first, 1.2) << "qdisc=" << static_cast<int>(kind)
                              << " still pays the cold-start burst tax";
    EXPECT_LT(tax_last, 1.25) << "qdisc=" << static_cast<int>(kind)
                              << " regressed converged bursts";
  }
}

// Same grid as ReplayGrid but over the adaptive TBR family: the new modes add borrow
// passes, a 50 ms demand timer, and a head-of-line protocol check, each a fresh chance
// to leak pool-order dependence. Pools 1/2/4 must stay bit-identical.
TEST(TraceReplaySweepTest, AdaptiveSchedulerFamilyBitIdenticalAcrossPoolSizes) {
  const trace::TraceLog log = SmallWorkshopTrace(23);
  trace::ReplayOptions options;
  options.horizon = Sec(30);
  const trace::TraceReplaySource source(log, options);

  std::vector<sweep::ScenarioJob> jobs;
  for (const QdiscKind qdisc : {QdiscKind::kTbrBurstCredit, QdiscKind::kTbrFastEwma,
                                QdiscKind::kTbrCreditHybrid}) {
    sweep::ScenarioJob job;
    job.config.qdisc = qdisc;
    job.config.warmup = 0;
    job.config.duration = Sec(45);
    job.config.seed = 5;
    for (NodeId id = 1; id <= 3; ++id) {
      StationSpec station;
      station.id = id;
      station.rate = id == 1 ? phy::WifiRate::k2Mbps : phy::WifiRate::k11Mbps;
      job.stations.push_back(station);
    }
    for (const trace::ReplayFlow& flow : source.flows()) {
      job.flows.push_back(MakeTraceReplaySpec(flow));
    }
    jobs.push_back(std::move(job));
  }

  sweep::SweepRunner serial(1);
  const std::vector<Results> reference = serial.RunScenarios(jobs);
  ASSERT_EQ(reference.size(), jobs.size());
  for (const Results& r : reference) {
    EXPECT_GT(r.tasks_completed, 0);
    EXPECT_GT(r.task_latency.count, 0);
  }
  for (const int pool_size : {2, 4}) {
    sweep::SweepRunner parallel(pool_size);
    const std::vector<Results> out = parallel.RunScenarios(jobs);
    ASSERT_EQ(out.size(), reference.size());
    for (size_t i = 0; i < out.size(); ++i) {
      EXPECT_EQ(out[i], reference[i]) << "pool=" << pool_size << " job=" << i;
    }
  }
}

}  // namespace
}  // namespace tbf::scenario
