// Scenario validation: malformed ScenarioConfig / StationSpec / FlowSpec combinations
// must fail fast at Build() with a thrown scenario::ScenarioError naming the offending
// spec - not a mid-run TBF_CHECK abort, and never a silently wrong simulation. This is
// the same validation the campaign coordinator runs over every manifest job before
// dispatching anything (campaign/manifest.h).
#include <limits>
#include <string>

#include <gtest/gtest.h>

#include "tbf/scenario/wlan.h"
#include "tbf/trace/trace.h"

namespace tbf::scenario {
namespace {

ScenarioConfig BaseConfig() {
  ScenarioConfig config;
  config.warmup = Ms(10);
  config.duration = Ms(50);
  return config;
}

StationSpec Station(NodeId id, phy::WifiRate rate = phy::WifiRate::k11Mbps) {
  StationSpec spec;
  spec.id = id;
  spec.rate = rate;
  return spec;
}

FlowSpec BulkTcp(NodeId client) {
  FlowSpec spec;
  spec.client = client;
  spec.direction = Direction::kDownlink;
  spec.transport = Transport::kTcp;
  return spec;
}

// Asserts the triple is rejected with a diagnostic containing `needle`.
void ExpectInvalid(const ScenarioConfig& config, const std::vector<StationSpec>& stations,
                   const std::vector<FlowSpec>& flows, const std::string& needle) {
  const std::string err = ValidateScenario(config, stations, flows);
  EXPECT_FALSE(err.empty()) << "expected rejection mentioning: " << needle;
  EXPECT_NE(err.find(needle), std::string::npos) << "got: " << err;
}

TEST(ScenarioValidationTest, WellFormedScenarioPasses) {
  EXPECT_EQ(ValidateScenario(BaseConfig(), {Station(1), Station(2)},
                             {BulkTcp(1), BulkTcp(2)}),
            "");
}

TEST(ScenarioValidationTest, ConfigBoundsAreEnforced) {
  {
    ScenarioConfig config = BaseConfig();
    config.duration = 0;
    ExpectInvalid(config, {Station(1)}, {}, "duration");
  }
  {
    ScenarioConfig config = BaseConfig();
    config.warmup = -1;
    ExpectInvalid(config, {Station(1)}, {}, "warmup");
  }
  {
    ScenarioConfig config = BaseConfig();
    config.timings.cw_max = config.timings.cw_min - 1;
    ExpectInvalid(config, {Station(1)}, {}, "cw_min");
  }
  {
    ScenarioConfig config = BaseConfig();
    config.qdisc = QdiscKind::kTbr;
    config.tbr.fill_period = 0;
    ExpectInvalid(config, {Station(1)}, {}, "TBR");
  }
}

TEST(ScenarioValidationTest, StationSpecsAreValidatedWithIdentity) {
  ExpectInvalid(BaseConfig(), {Station(0)}, {}, "station #0");
  ExpectInvalid(BaseConfig(), {Station(kServerId)}, {}, "client ids");
  ExpectInvalid(BaseConfig(), {Station(3), Station(3)}, {}, "duplicate");
  {
    StationSpec bad = Station(1);
    bad.per = 1.5;
    ExpectInvalid(BaseConfig(), {bad}, {}, "per must be in [0, 1]");
  }
  {
    StationSpec bad = Station(1);
    bad.per = std::numeric_limits<double>::quiet_NaN();  // NaN must not slip through.
    ExpectInvalid(BaseConfig(), {bad}, {}, "per must be in [0, 1]");
  }
}

TEST(ScenarioValidationTest, FlowSpecsAreValidatedWithIdentity) {
  ExpectInvalid(BaseConfig(), {Station(1)}, {BulkTcp(2)}, "undeclared station");
  {
    FlowSpec bad = BulkTcp(1);
    bad.packet_bytes = 40;  // Exactly the TCP header: no payload fits.
    ExpectInvalid(BaseConfig(), {Station(1)}, {bad}, "packet_bytes");
  }
  {
    FlowSpec bad = BulkTcp(1);
    bad.transport = Transport::kUdp;
    bad.udp_rate = 0;
    ExpectInvalid(BaseConfig(), {Station(1)}, {bad}, "udp_rate");
  }
  {
    FlowSpec bad = BulkTcp(1);
    bad.model = TrafficModel::kTaskSequence;  // task_bytes/task_count left at 0.
    ExpectInvalid(BaseConfig(), {Station(1)}, {bad}, "task");
  }
  {
    FlowSpec bad = BulkTcp(1);
    bad.model = TrafficModel::kOnOffWeb;
    bad.onoff.pareto_alpha = 1.0;  // Infinite-mean Pareto.
    ExpectInvalid(BaseConfig(), {Station(1)}, {bad}, "pareto_alpha");
  }
  {
    FlowSpec bad = BulkTcp(1);
    bad.model = TrafficModel::kTraceReplay;  // Empty replay.
    ExpectInvalid(BaseConfig(), {Station(1)}, {bad}, "replay");
  }
  {
    FlowSpec bad = BulkTcp(1);
    bad.model = TrafficModel::kTraceReplay;
    bad.replay = {{Ms(10), 1000}, {Ms(5), 1000}};  // Out of trace order.
    ExpectInvalid(BaseConfig(), {Station(1)}, {bad}, "trace order");
  }
  // The diagnostic names the failing flow, not just the failure.
  FlowSpec bad = BulkTcp(1);
  bad.packet_bytes = 1;
  const std::string err =
      ValidateScenario(BaseConfig(), {Station(1)}, {BulkTcp(1), bad});
  EXPECT_NE(err.find("flow #1"), std::string::npos) << err;
}

TEST(ScenarioValidationTest, BuildThrowsScenarioErrorInsteadOfAborting) {
  Wlan wlan(BaseConfig());
  wlan.AddStation(Station(1));
  wlan.AddBulkTcp(/*client=*/2, Direction::kDownlink);  // Undeclared station.
  try {
    wlan.Run();
    FAIL() << "expected ScenarioError";
  } catch (const ScenarioError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("invalid scenario"), std::string::npos) << what;
    EXPECT_NE(what.find("undeclared station"), std::string::npos) << what;
  }
}

TEST(ScenarioValidationTest, ValidScenarioStillRunsAfterValidationHookup) {
  Wlan wlan(BaseConfig());
  wlan.AddStation(Station(1));
  wlan.AddSaturatingUdp(/*client=*/1, Direction::kDownlink);
  const Results results = wlan.Run();
  EXPECT_GT(results.aggregate_bps, 0.0);
}

}  // namespace
}  // namespace tbf::scenario
