#include <sstream>

#include <gtest/gtest.h>

#include "tbf/stats/meters.h"
#include "tbf/stats/table.h"

namespace tbf::stats {
namespace {

TEST(AirtimeMeterTest, ChargesAndShares) {
  AirtimeMeter meter;
  meter.Charge(1, Ms(30));
  meter.Charge(2, Ms(10));
  meter.Charge(1, Ms(10));
  EXPECT_EQ(meter.Airtime(1), Ms(40));
  EXPECT_EQ(meter.Airtime(2), Ms(10));
  EXPECT_EQ(meter.TotalCharged(), Ms(50));
  EXPECT_DOUBLE_EQ(meter.Share(1), 0.8);
  EXPECT_DOUBLE_EQ(meter.Share(2), 0.2);
  EXPECT_DOUBLE_EQ(meter.Share(99), 0.0);
}

TEST(AirtimeMeterTest, IgnoresNonPositiveCharges) {
  AirtimeMeter meter;
  meter.Charge(1, 0);
  meter.Charge(1, -5);
  EXPECT_EQ(meter.TotalCharged(), 0);
  EXPECT_DOUBLE_EQ(meter.Share(1), 0.0);
}

TEST(AirtimeMeterTest, ResetClears) {
  AirtimeMeter meter;
  meter.Charge(1, Ms(5));
  meter.Reset();
  EXPECT_EQ(meter.TotalCharged(), 0);
  EXPECT_EQ(meter.Airtime(1), 0);
}

TEST(ThroughputMeterTest, AccumulatesAndConverts) {
  ThroughputMeter meter;
  meter.AddBytes(1, 125'000);
  meter.AddBytes(1, 125'000);
  meter.AddBytes(2, 125'000);
  EXPECT_EQ(meter.Bytes(1), 250'000);
  EXPECT_EQ(meter.TotalBytes(), 375'000);
  EXPECT_DOUBLE_EQ(meter.Bps(1, Sec(1)), 2e6);
  EXPECT_DOUBLE_EQ(meter.TotalBps(Sec(3)), 1e6);
}

TEST(JainIndexTest, KnownValues) {
  EXPECT_DOUBLE_EQ(JainIndex({}), 1.0);
  EXPECT_DOUBLE_EQ(JainIndex({5.0}), 1.0);
  EXPECT_DOUBLE_EQ(JainIndex({1.0, 1.0}), 1.0);
  EXPECT_NEAR(JainIndex({4.0, 0.0}), 0.5, 1e-12);
  EXPECT_NEAR(JainIndex({1.0, 2.0, 3.0}), 36.0 / (3.0 * 14.0), 1e-12);
}

TEST(TableTest, AlignsColumns) {
  Table table({"a", "long header"});
  table.AddRow({"x", "1"});
  table.AddRow({"longer cell", "2"});
  std::ostringstream out;
  table.Print(out);
  const std::string s = out.str();
  // All body lines have equal width.
  size_t width = 0;
  size_t start = 0;
  while (start < s.size()) {
    const size_t end = s.find('\n', start);
    const size_t len = end - start;
    if (width == 0) {
      width = len;
    }
    EXPECT_EQ(len, width);
    start = end + 1;
  }
  EXPECT_NE(s.find("longer cell"), std::string::npos);
}

TEST(TableTest, CsvOutput) {
  Table table({"a", "b"});
  table.AddRow({"1", "2"});
  std::ostringstream out;
  table.PrintCsv(out);
  EXPECT_EQ(out.str(), "a,b\n1,2\n");
}

TEST(TableTest, MissingCellsRenderEmpty) {
  Table table({"a", "b", "c"});
  table.AddRow({"only one"});
  std::ostringstream out;
  table.Print(out);
  EXPECT_NE(out.str().find("only one"), std::string::npos);
}

TEST(TableTest, Formatters) {
  EXPECT_EQ(Table::Num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::Num(2.0, 0), "2");
  EXPECT_EQ(Table::Ratio(1.816, 2), "x1.82");
  EXPECT_EQ(Table::PercentDelta(2.03), "+103%");
  EXPECT_EQ(Table::PercentDelta(0.94), "-6%");
}

}  // namespace
}  // namespace tbf::stats
