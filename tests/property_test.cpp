// Property-style parameterized sweeps over the system's invariants:
//  * DCF grants equal transmission opportunities for any rate pair (the anomaly's root);
//  * TBR's baseline property holds across the whole DSSS rate ladder;
//  * the analytic model is self-consistent for random node populations;
//  * the task model's work-conservation invariant holds for random task mixes.
#include <gtest/gtest.h>

#include "tbf/model/fairness_model.h"
#include "tbf/model/task_model.h"
#include "tbf/scenario/wlan.h"
#include "tbf/sim/random.h"
#include "tbf/stats/meters.h"

namespace tbf {
namespace {

using phy::WifiRate;
using scenario::Direction;
using scenario::QdiscKind;
using scenario::Results;
using scenario::ScenarioConfig;
using scenario::Wlan;

ScenarioConfig QuickConfig(QdiscKind qdisc) {
  ScenarioConfig config;
  config.qdisc = qdisc;
  config.warmup = Sec(2);
  config.duration = Sec(8);
  return config;
}

// ---- DCF throughput-fairness across all rate pairs -----------------------------------

class RatePairSweep : public ::testing::TestWithParam<std::pair<WifiRate, WifiRate>> {};

TEST_P(RatePairSweep, DcfEqualThroughputAnyRateMix) {
  const auto [r1, r2] = GetParam();
  Wlan wlan(QuickConfig(QdiscKind::kFifo));
  wlan.AddStation(1, r1);
  wlan.AddStation(2, r2);
  wlan.AddBulkTcp(1, Direction::kUplink);
  wlan.AddBulkTcp(2, Direction::kUplink);
  const Results res = wlan.Run();
  // Equal transmission opportunities -> equal per-node TCP throughput (Eq. 6),
  // independent of the rate combination.
  EXPECT_NEAR(res.GoodputMbps(1) / res.GoodputMbps(2), 1.0, 0.25)
      << phy::RateName(r1) << " vs " << phy::RateName(r2);
}

TEST_P(RatePairSweep, TbrEqualAirtimeAnyRateMix) {
  const auto [r1, r2] = GetParam();
  Wlan wlan(QuickConfig(QdiscKind::kTbr));
  wlan.AddStation(1, r1);
  wlan.AddStation(2, r2);
  wlan.AddBulkTcp(1, Direction::kDownlink);
  wlan.AddBulkTcp(2, Direction::kDownlink);
  const Results res = wlan.Run();
  EXPECT_NEAR(res.AirtimeShare(1), 0.5, 0.09)
      << phy::RateName(r1) << " vs " << phy::RateName(r2);
  // Aggregate under TBR is never (meaningfully) below DCF's throughput-fair outcome.
  EXPECT_GT(res.utilization, 0.75);
}

INSTANTIATE_TEST_SUITE_P(
    AllDsssPairs, RatePairSweep,
    ::testing::Values(std::pair{WifiRate::k1Mbps, WifiRate::k11Mbps},
                      std::pair{WifiRate::k2Mbps, WifiRate::k11Mbps},
                      std::pair{WifiRate::k5_5Mbps, WifiRate::k11Mbps},
                      std::pair{WifiRate::k1Mbps, WifiRate::k5_5Mbps},
                      std::pair{WifiRate::k2Mbps, WifiRate::k5_5Mbps},
                      std::pair{WifiRate::k1Mbps, WifiRate::k2Mbps}),
    [](const auto& info) {
      std::string name = std::string(phy::RateName(info.param.first)) + "_vs_" +
                         std::string(phy::RateName(info.param.second));
      for (char& c : name) {
        if (c == '.') {
          c = '_';
        }
      }
      return name;
    });

// ---- Baseline property across the rate ladder -----------------------------------------

class BaselinePropertySweep : public ::testing::TestWithParam<WifiRate> {};

TEST_P(BaselinePropertySweep, TbrNodeUnaffectedByFastPartner) {
  // The paper's baseline property: under time-based fairness, a node at rate d competing
  // with an 11 Mbps node performs as if the partner also ran at d.
  const WifiRate rate = GetParam();
  Wlan mixed(QuickConfig(QdiscKind::kTbr));
  mixed.AddStation(1, rate);
  mixed.AddStation(2, WifiRate::k11Mbps);
  mixed.AddBulkTcp(1, Direction::kDownlink);
  mixed.AddBulkTcp(2, Direction::kDownlink);
  const Results res_mixed = mixed.Run();

  Wlan uniform(QuickConfig(QdiscKind::kFifo));
  uniform.AddStation(1, rate);
  uniform.AddStation(2, rate);
  uniform.AddBulkTcp(1, Direction::kDownlink);
  uniform.AddBulkTcp(2, Direction::kDownlink);
  const Results res_uniform = uniform.Run();

  EXPECT_NEAR(res_mixed.GoodputMbps(1) / res_uniform.GoodputMbps(1), 1.0, 0.22)
      << phy::RateName(rate);
}

INSTANTIATE_TEST_SUITE_P(DsssLadder, BaselinePropertySweep,
                         ::testing::Values(WifiRate::k1Mbps, WifiRate::k2Mbps,
                                           WifiRate::k5_5Mbps),
                         [](const auto& info) {
                           std::string name(phy::RateName(info.param));
                           for (char& c : name) {
                             if (c == '.') {
                               c = '_';
                             }
                           }
                           return name;
                         });

// ---- Analytic model invariants over random populations --------------------------------

class ModelPopulationSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ModelPopulationSweep, AllocationsAreConsistent) {
  sim::Rng rng(GetParam());
  const int n = static_cast<int>(rng.UniformInt(2, 8));
  std::vector<model::NodeModel> nodes;
  for (int i = 0; i < n; ++i) {
    model::NodeModel node;
    node.beta_bps = 0.5e6 + 7.5e6 * rng.UniformDouble();
    node.packet_bytes = 200.0 + 1300.0 * rng.UniformDouble();
    nodes.push_back(node);
  }

  const model::Allocation rf = model::ThroughputFairAllocation(nodes);
  const model::Allocation tf = model::TimeFairAllocation(nodes);

  // Channel time conservation.
  double rf_time = 0.0;
  double tf_time = 0.0;
  for (int i = 0; i < n; ++i) {
    rf_time += rf.channel_time[static_cast<size_t>(i)];
    tf_time += tf.channel_time[static_cast<size_t>(i)];
  }
  EXPECT_NEAR(rf_time, 1.0, 1e-9);
  EXPECT_NEAR(tf_time, 1.0, 1e-9);

  // TF aggregate dominates RF aggregate (equality iff all betas equal).
  EXPECT_GE(tf.total_bps, rf.total_bps - 1.0);

  // R(i) = T(i) * beta_i in both notions.
  for (int i = 0; i < n; ++i) {
    const auto k = static_cast<size_t>(i);
    EXPECT_NEAR(rf.throughput_bps[k], rf.channel_time[k] * nodes[k].beta_bps, 1e-3);
    EXPECT_NEAR(tf.throughput_bps[k], tf.channel_time[k] * nodes[k].beta_bps, 1e-3);
  }

  // Jain index over throughput is 1.0 under RF only when packet sizes are equal;
  // under TF the airtime Jain index is always 1.0.
  EXPECT_NEAR(stats::JainIndex(tf.channel_time), 1.0, 1e-9);
}

TEST_P(ModelPopulationSweep, TaskModelWorkConservation) {
  sim::Rng rng(GetParam() + 1000);
  const int n = static_cast<int>(rng.UniformInt(2, 6));
  std::vector<model::Task> tasks;
  double total_channel_seconds = 0.0;
  for (int i = 0; i < n; ++i) {
    model::Task t;
    t.beta_bps = 0.5e6 + 7.5e6 * rng.UniformDouble();
    t.bytes = 1e5 + 5e6 * rng.UniformDouble();
    total_channel_seconds += t.bytes * 8.0 / t.beta_bps;
    tasks.push_back(t);
  }
  const model::TaskOutcome rf = model::RunTaskModel(tasks, model::FairnessNotion::kThroughputFair);
  const model::TaskOutcome tf = model::RunTaskModel(tasks, model::FairnessNotion::kTimeFair);

  // FinalTaskTime equals total channel-time demand under any work-conserving notion.
  EXPECT_NEAR(rf.final_task_time_sec, total_channel_seconds, 1e-6);
  EXPECT_NEAR(tf.final_task_time_sec, total_channel_seconds, 1e-6);
  // Completion times are positive and bounded by the final time.
  for (int i = 0; i < n; ++i) {
    const auto k = static_cast<size_t>(i);
    EXPECT_GT(tf.completion_sec[k], 0.0);
    EXPECT_LE(tf.completion_sec[k], tf.final_task_time_sec + 1e-9);
  }
  // Average cannot exceed final.
  EXPECT_LE(tf.avg_task_time_sec, tf.final_task_time_sec + 1e-9);
  EXPECT_LE(rf.avg_task_time_sec, rf.final_task_time_sec + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ModelPopulationSweep,
                         ::testing::Range<uint64_t>(1, 11));

// ---- Jain index sanity ----------------------------------------------------------------

TEST(JainIndexProperty, BoundsAndExtremes) {
  EXPECT_DOUBLE_EQ(stats::JainIndex({1.0, 1.0, 1.0}), 1.0);
  EXPECT_NEAR(stats::JainIndex({1.0, 0.0, 0.0}), 1.0 / 3.0, 1e-12);
  sim::Rng rng(4);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> xs;
    const int n = static_cast<int>(rng.UniformInt(1, 12));
    for (int i = 0; i < n; ++i) {
      xs.push_back(rng.UniformDouble() * 10.0);
    }
    const double j = stats::JainIndex(xs);
    EXPECT_GE(j, 1.0 / static_cast<double>(n) - 1e-12);
    EXPECT_LE(j, 1.0 + 1e-12);
  }
}

}  // namespace
}  // namespace tbf
