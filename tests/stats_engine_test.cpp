// StatsEngine: the bounded-memory metrology bar. Windowed series must agree with the
// whole-stream distribution, merge trees must be invariant to shard count and barrier
// cadence, the space-saving retention must honor its documented error bound on
// heavy-tailed (Pareto) byte mixes, the uniform sample must be engine-independent, and
// a windowed sweep must stay bit-identical across pool sizes (the repo's standing
// determinism bar, extended to the new series output).
#include "tbf/stats/engine.h"

#include <cmath>
#include <cstdint>
#include <map>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "tbf/sweep/sweep_runner.h"

namespace tbf::stats {
namespace {

// A deterministic latency-ish sample stream: (time, value) pairs in time order,
// attributed round-robin to `flows` flow ids starting at 1.
struct Sample {
  int flow_id;
  TimeNs at;
  TimeNs value;
};

std::vector<Sample> MakeStream(int flows, int count, TimeNs span) {
  std::vector<Sample> out;
  out.reserve(static_cast<size_t>(count));
  std::mt19937_64 rng(42);
  std::uniform_int_distribution<TimeNs> value(Us(50), Ms(20));
  for (int i = 0; i < count; ++i) {
    Sample s;
    s.flow_id = 1 + i % flows;
    s.at = span * i / count;  // Nondecreasing, spread over [0, span).
    s.value = value(rng);
    out.push_back(s);
  }
  return out;
}

StatsConfig Windowed(TimeNs window, int top_k = 0) {
  StatsConfig c;
  c.window = window;
  c.top_k = top_k;
  return c;
}

TEST(StatsEngineTest, LegacyExactModeKeepsNoEngineMeters) {
  StatsEngine engine;  // Default config = legacy exact.
  EXPECT_FALSE(engine.HasCompleteMeters());
  engine.RegisterFlow(1);
  engine.RecordRtt(1, Ms(1), Ms(5));
  engine.RecordTaskCompletion(1, Ms(2), Ms(2));
  engine.FlushAll();
  // Per-flow exact tier has everything; the engine-wide meters stay intentionally
  // empty (readout merges per-flow sketches, which is what preserves byte-identity).
  EXPECT_TRUE(engine.meter(kRtt).empty());
  EXPECT_TRUE(engine.series(kRtt).windows.empty());
  const FlowStats* fs = engine.flow(1);
  ASSERT_NE(fs, nullptr);
  EXPECT_TRUE(fs->retained);
  EXPECT_EQ(fs->rtt_sketch.count(), 1);
  EXPECT_EQ(fs->task_completions.size(), 1u);
}

TEST(StatsEngineTest, WindowedWholeRunMatchesUnwindowedStream) {
  // The same stream through a windowed engine and an unwindowed streaming engine must
  // yield the same whole-run distribution: sealing is just a reordering of additive
  // sketch merges, so the folded result is bit-identical, not merely close.
  StatsEngine windowed(Windowed(Ms(50)));
  StatsEngine whole(Windowed(0, /*top_k=*/4));  // window == 0, still streaming mode.
  const std::vector<Sample> stream = MakeStream(7, 5000, Sec(1));
  for (int f = 1; f <= 7; ++f) {
    windowed.RegisterFlow(f);
    whole.RegisterFlow(f);
  }
  for (const Sample& s : stream) {
    windowed.RecordRtt(s.flow_id, s.at, s.value);
    whole.RecordRtt(s.flow_id, s.at, s.value);
    windowed.RecordQueueDelay(s.flow_id, s.at, s.value / 2);
    whole.RecordQueueDelay(s.flow_id, s.at, s.value / 2);
  }
  windowed.FlushAll();
  whole.FlushAll();
  EXPECT_EQ(windowed.meter(kRtt), whole.meter(kRtt));
  EXPECT_EQ(windowed.meter(kQueueDelay), whole.meter(kQueueDelay));
  EXPECT_FALSE(windowed.series(kRtt).windows.empty());
  EXPECT_TRUE(whole.series(kRtt).windows.empty());  // No series without windows.
}

TEST(StatsEngineTest, SeriesPartitionsTheStreamByWindow) {
  const TimeNs kWindow = Ms(100);
  StatsEngine engine(Windowed(kWindow));
  engine.RegisterFlow(1);
  const std::vector<Sample> stream = MakeStream(1, 3000, Ms(950));
  std::map<int64_t, int64_t> expected;  // window index -> sample count
  for (const Sample& s : stream) {
    engine.RecordRtt(1, s.at, s.value);
    ++expected[s.at / kWindow];
  }
  engine.FlushAll();
  const MeterSeries series = engine.series(kRtt);
  EXPECT_EQ(series.window, kWindow);
  ASSERT_EQ(series.windows.size(), expected.size());
  size_t i = 0;
  int64_t total = 0;
  for (const auto& [index, count] : expected) {
    const WindowStat& ws = series.windows[i++];
    EXPECT_EQ(ws.start, index * kWindow);
    EXPECT_EQ(ws.count, count);
    EXPECT_GT(ws.p50, 0);
    EXPECT_LE(ws.p50, ws.p95);
    EXPECT_LE(ws.p95, ws.p99);
    total += ws.count;
  }
  EXPECT_EQ(total, static_cast<int64_t>(stream.size()));
}

// Distributes the stream over `shards` child engines (flow -> shard by modulo),
// replays it with barrier seals every `barrier` ns in a fixed child order, and
// returns the fully-flushed parent. Mirrors the CampusSim coordinator contract.
StatsEngine RunShardedMergeTree(const std::vector<Sample>& stream, int flows,
                                int shards, TimeNs barrier, TimeNs span) {
  StatsEngine parent(Windowed(Ms(50)));
  std::vector<StatsEngine> children;
  for (int s = 0; s < shards; ++s) {
    children.emplace_back(Windowed(Ms(50)));
  }
  for (int f = 1; f <= flows; ++f) {
    children[static_cast<size_t>(f % shards)].RegisterFlow(f);
  }
  size_t next = 0;
  for (TimeNs t = barrier; t <= span + barrier; t += barrier) {
    while (next < stream.size() && stream[next].at < t) {
      const Sample& s = stream[next++];
      StatsEngine& child = children[static_cast<size_t>(s.flow_id % shards)];
      child.RecordRtt(s.flow_id, s.at, s.value);
      child.RecordTaskCompletion(s.flow_id, s.at, s.value * 3);
      child.RecordBytes(s.flow_id, s.at, s.value);  // Bytes ride the same windows.
    }
    for (StatsEngine& child : children) {
      child.SealWindowsUpTo(t, &parent);
    }
    parent.SealWindowsUpTo(t);
  }
  for (StatsEngine& child : children) {
    child.FlushAll(&parent);
  }
  parent.FlushAll();
  return parent;
}

TEST(StatsEngineTest, MergeTreeIsInvariantToShardCountAndBarrierCadence) {
  const int kFlows = 12;
  const TimeNs kSpan = Sec(1);
  const std::vector<Sample> stream = MakeStream(kFlows, 8000, kSpan);
  const StatsEngine serial = RunShardedMergeTree(stream, kFlows, 1, Ms(125), kSpan);
  ASSERT_FALSE(serial.series(kRtt).windows.empty());
  for (int shards : {2, 4}) {
    const StatsEngine sharded =
        RunShardedMergeTree(stream, kFlows, shards, Ms(125), kSpan);
    EXPECT_EQ(sharded.series(kRtt), serial.series(kRtt)) << shards;
    EXPECT_EQ(sharded.series(kTaskLatency), serial.series(kTaskLatency)) << shards;
    EXPECT_EQ(sharded.meter(kRtt), serial.meter(kRtt)) << shards;
    EXPECT_EQ(sharded.meter(kTaskLatency), serial.meter(kTaskLatency)) << shards;
    EXPECT_EQ(sharded.bytes_series(), serial.bytes_series()) << shards;
  }
  // Barrier cadence must not matter either: windows seal by index, not by when the
  // coordinator got around to sealing them.
  const StatsEngine coarse = RunShardedMergeTree(stream, kFlows, 4, Ms(500), kSpan);
  EXPECT_EQ(coarse.series(kRtt), serial.series(kRtt));
  EXPECT_EQ(coarse.meter(kRtt), serial.meter(kRtt));
  EXPECT_EQ(coarse.bytes_series(), serial.bytes_series());
  // The goodput series is exact integer bookkeeping, so check it against ground truth
  // too: per-window record counts and byte sums over the raw stream.
  std::map<int64_t, ByteWindow> truth;
  for (const Sample& s : stream) {
    ByteWindow& w = truth[s.at / Ms(50)];
    w.start = (s.at / Ms(50)) * Ms(50);
    ++w.count;
    w.bytes += s.value;
  }
  const ByteSeries series = serial.bytes_series();
  EXPECT_EQ(series.window, Ms(50));
  ASSERT_EQ(series.windows.size(), truth.size());
  size_t i = 0;
  for (const auto& [index, expect] : truth) {
    EXPECT_EQ(series.windows[i], expect) << "window " << index;
    ++i;
  }
}

TEST(StatsEngineTest, GoodputSeriesEmptyWithoutWindowing) {
  // window == 0 keeps RecordBytes feeding only the heavy-hitter totals; the series
  // stays empty rather than accumulating one unbounded pseudo-window.
  StatsEngine engine(Windowed(0, /*top_k=*/2));
  engine.RegisterFlow(1);
  engine.RecordBytes(1, Ms(5), 1000);
  engine.FlushAll();
  EXPECT_TRUE(engine.bytes_series().windows.empty());
  EXPECT_EQ(engine.total_bytes(), 1000);
}

TEST(StatsEngineTest, SpaceSavingHonorsErrorBoundOnParetoMix) {
  // Pareto-ish byte mix: flow i's traffic ~ 1/(i+1)^1.3, delivered in interleaved
  // chunks so light flows constantly contest the table - the worst case for a
  // space-saving counter. The documented bounds must hold for every tracked flow:
  //   estimate - overcount <= true bytes <= estimate, overcount <= total / K,
  // and any flow with true bytes > total / K is guaranteed a slot.
  const int kFlows = 200;
  const int kTopK = 8;
  StatsConfig config;
  config.top_k = kTopK;
  StatsEngine engine(config);
  std::vector<int64_t> truth(kFlows + 1, 0);
  std::vector<int64_t> chunk(kFlows + 1, 0);
  for (int f = 1; f <= kFlows; ++f) {
    engine.RegisterFlow(f);
    chunk[static_cast<size_t>(f)] =
        static_cast<int64_t>(2e6 / std::pow(static_cast<double>(f), 1.3)) + 1;
  }
  std::mt19937_64 rng(7);
  for (int round = 0; round < 50; ++round) {
    // Interleave: a shuffled order each round, so promotions and evictions churn.
    std::vector<int> order(kFlows);
    for (int f = 0; f < kFlows; ++f) {
      order[static_cast<size_t>(f)] = f + 1;
    }
    std::shuffle(order.begin(), order.end(), rng);
    for (int f : order) {
      engine.RecordBytes(f, 0, chunk[static_cast<size_t>(f)]);
      truth[static_cast<size_t>(f)] += chunk[static_cast<size_t>(f)];
    }
  }
  const int64_t total = engine.total_bytes();
  ASSERT_GT(total, 0);
  const int64_t bound = total / kTopK;
  int tracked = 0;
  for (int f = 1; f <= kFlows; ++f) {
    int64_t estimate = 0;
    int64_t overcount = 0;
    if (engine.HeavyEstimate(f, &estimate, &overcount)) {
      ++tracked;
      EXPECT_LE(truth[static_cast<size_t>(f)], estimate) << f;
      EXPECT_LE(estimate - overcount, truth[static_cast<size_t>(f)]) << f;
      EXPECT_LE(overcount, bound) << f;
    } else {
      // Not tracked => its true count cannot exceed the guarantee threshold.
      EXPECT_LE(truth[static_cast<size_t>(f)], bound) << f;
    }
  }
  EXPECT_EQ(tracked, kTopK);  // Plenty of traffic: the table is full.
  // The heaviest flow is certainly above total/K and must be tracked and retained -
  // keeps the guarantee check above (untracked => below bound) from being vacuous.
  ASSERT_GT(truth[1], bound);
  int64_t estimate = 0;
  int64_t overcount = 0;
  EXPECT_TRUE(engine.HeavyEstimate(1, &estimate, &overcount));
  const FlowStats* fs = engine.flow(1);
  ASSERT_NE(fs, nullptr);
  EXPECT_TRUE(fs->retained);
}

TEST(StatsEngineTest, UniformSampleIsSeededAndEngineIndependent) {
  StatsConfig config;
  config.top_k = 2;
  config.sample_every = 8;
  config.sample_seed = 99;
  // Two engines, different registration orders and different flow subsets: the
  // sampled set is a pure function of (seed, flow id), never of engine history.
  StatsEngine a(config);
  StatsEngine b(config);
  for (int f = 1; f <= 64; ++f) {
    a.RegisterFlow(f);
  }
  for (int f = 64; f >= 32; --f) {
    b.RegisterFlow(f);
  }
  int sampled = 0;
  for (int f = 32; f <= 64; ++f) {
    ASSERT_NE(a.flow(f), nullptr);
    ASSERT_NE(b.flow(f), nullptr);
    EXPECT_EQ(a.flow(f)->sampled, b.flow(f)->sampled) << f;
    sampled += a.flow(f)->sampled ? 1 : 0;
  }
  EXPECT_GT(sampled, 0);  // 33 flows at 1-in-8: a fully empty sample means a bug.

  // Sampled flows are pinned: heavy traffic elsewhere cannot evict their exact tier.
  int pinned = -1;
  for (int f = 1; f <= 64; ++f) {
    if (a.flow(f)->sampled) {
      pinned = f;
      break;
    }
  }
  ASSERT_GT(pinned, 0);
  a.RecordRtt(pinned, Ms(1), Ms(4));
  for (int round = 0; round < 100; ++round) {
    for (int f = 1; f <= 64; ++f) {
      if (f != pinned) {
        a.RecordBytes(f, 0, 1 << 20);
      }
    }
  }
  EXPECT_TRUE(a.flow(pinned)->retained);
  EXPECT_EQ(a.flow(pinned)->rtt_sketch.count(), 1);
}

// ---------------------------------------------------------------------------
// Sweep determinism with the streaming config (pool sizes 1/2/4).
// ---------------------------------------------------------------------------

sweep::ScenarioJob WindowedJob(scenario::QdiscKind qdisc, uint64_t seed) {
  sweep::ScenarioJob job;
  job.config.qdisc = qdisc;
  job.config.seed = seed;
  job.config.warmup = Ms(100);
  job.config.duration = Sec(1);
  job.config.stats.window = Ms(100);
  job.config.stats.top_k = 2;
  job.config.stats.sample_every = 4;
  for (NodeId id = 1; id <= 3; ++id) {
    scenario::StationSpec station;
    station.id = id;
    station.rate = id == 1 ? phy::WifiRate::k5_5Mbps : phy::WifiRate::k11Mbps;
    job.stations.push_back(station);
    scenario::FlowSpec flow;
    flow.client = id;
    flow.direction = scenario::Direction::kDownlink;
    flow.transport = scenario::Transport::kTcp;
    flow.model = scenario::TrafficModel::kTaskSequence;
    flow.task_bytes = 16 * 1024;  // Small tasks: dozens complete within the run.
    flow.task_count = 50;
    flow.task_gap = Ms(5);
    job.flows.push_back(flow);
  }
  return job;
}

TEST(StatsEngineSweepTest, WindowedSweepIsBitIdenticalAcrossPoolSizes) {
  std::vector<sweep::ScenarioJob> grid;
  grid.push_back(WindowedJob(scenario::QdiscKind::kFifo, 11));
  grid.push_back(WindowedJob(scenario::QdiscKind::kTbr, 12));
  grid.push_back(WindowedJob(scenario::QdiscKind::kDrr, 13));
  grid.push_back(WindowedJob(scenario::QdiscKind::kFifo, 14));

  auto run_grid = [&grid](int pool) {
    sweep::SweepRunner runner(pool);
    std::vector<std::function<scenario::Results()>> jobs;
    for (const sweep::ScenarioJob& job : grid) {
      jobs.push_back([&job] { return sweep::RunScenarioJob(job); });
    }
    return runner.Map(std::move(jobs));
  };

  const std::vector<scenario::Results> serial = run_grid(1);
  ASSERT_EQ(serial.size(), grid.size());
  for (const scenario::Results& r : serial) {
    // The streaming readout is live: series present, whole-run meters complete.
    EXPECT_FALSE(r.task_latency_series.windows.empty());
    EXPECT_FALSE(r.goodput_series.windows.empty());
    EXPECT_GT(r.task_latency_sketch.count(), 0);
  }
  for (int pool : {2, 4}) {
    EXPECT_EQ(run_grid(pool), serial) << "pool=" << pool;  // Bitwise, incl. series.
  }
}

}  // namespace
}  // namespace tbf::stats
