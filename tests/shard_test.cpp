// Sharded campus simulation: validation of the lookahead prerequisites, bit-identity
// of CampusResults across shard-thread counts and repeated runs (the conservative
// protocol's determinism bar), cross-shard delivery ordering through ShardLink
// mailboxes, lookahead-horizon window accounting, and pool isolation. This binary is
// part of the TSan CTest payload (-DTBF_SANITIZE=thread): shards advance on a real
// thread pool here, so any shared mutable state between them becomes a hard failure.
#include "tbf/shard/campus_sim.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "tbf/shard/mailbox.h"
#include "tbf/shard/shard_link.h"

namespace tbf {
namespace {

using scenario::BssSpec;
using scenario::CampusConfig;
using scenario::CampusResults;
using scenario::Direction;
using scenario::FlowSpec;
using scenario::QdiscKind;
using scenario::StationSpec;
using scenario::TrafficModel;
using scenario::Transport;
using shard::CampusSim;

BssSpec MakeBss(int stations, Direction dir, Transport transport) {
  BssSpec bss;
  for (NodeId id = 1; id <= stations; ++id) {
    StationSpec station;
    station.id = id;
    station.rate = id % 2 == 0 ? phy::WifiRate::k11Mbps : phy::WifiRate::k2Mbps;
    bss.stations.push_back(station);
    FlowSpec flow;
    flow.client = id;
    flow.direction = dir;
    flow.transport = transport;
    bss.flows.push_back(flow);
  }
  return bss;
}

CampusConfig SmallCampusConfig(QdiscKind qdisc = QdiscKind::kFifo) {
  CampusConfig config;
  config.cell.qdisc = qdisc;
  config.cell.seed = 7;
  config.cell.warmup = Ms(200);
  config.cell.duration = Sec(1);
  return config;
}

CampusResults RunSmallCampus(int threads, QdiscKind qdisc = QdiscKind::kFifo) {
  CampusSim campus(SmallCampusConfig(qdisc), threads);
  campus.AddBss(MakeBss(2, Direction::kUplink, Transport::kTcp));
  campus.AddBss(MakeBss(2, Direction::kDownlink, Transport::kTcp));
  campus.AddBss(MakeBss(2, Direction::kDownlink, Transport::kUdp));
  return campus.Run();
}

TEST(ShardValidationTest, RejectsZeroLatencyBackbone) {
  // Zero one-way latency means zero lookahead: the conservative window collapses and
  // shards could never run ahead of each other. Validation must reject it up front.
  CampusConfig config = SmallCampusConfig();
  config.backbone_delay = 0;
  CampusSim campus(config, 1);
  campus.AddBss(MakeBss(1, Direction::kUplink, Transport::kTcp));
  EXPECT_THROW(campus.Run(), scenario::ScenarioError);

  CampusConfig per_bss = SmallCampusConfig();
  CampusSim campus2(per_bss, 1);
  BssSpec bss = MakeBss(1, Direction::kUplink, Transport::kTcp);
  bss.backbone_delay = 0;
  campus2.AddBss(bss);
  EXPECT_THROW(campus2.Run(), scenario::ScenarioError);
}

TEST(ShardValidationTest, RejectsNonBulkUdpFlows) {
  // Finite UDP task chains complete at the sink, which in a campus lives in the
  // opposite shard from the source; restarting the source from there would need a
  // cross-shard control channel the conservative protocol does not provide.
  CampusSim campus(SmallCampusConfig(), 1);
  BssSpec bss = MakeBss(1, Direction::kUplink, Transport::kUdp);
  bss.flows[0].model = TrafficModel::kTaskSequence;
  bss.flows[0].task_bytes = 100000;
  bss.flows[0].task_count = 3;
  campus.AddBss(bss);
  EXPECT_THROW(campus.Run(), scenario::ScenarioError);
}

TEST(ShardValidationTest, RejectsEmptyCampus) {
  CampusSim campus(SmallCampusConfig(), 1);
  EXPECT_THROW(campus.Run(), scenario::ScenarioError);
}

TEST(ShardCampusTest, BitIdenticalAcrossThreadCounts) {
  // The determinism bar: the whole CampusResults readout - every flow's bytes, every
  // latency quantile, every MAC counter - must match bit for bit whether shards run
  // serially or on 2 or 4 pool threads.
  const CampusResults serial = RunSmallCampus(1);
  const CampusResults two = RunSmallCampus(2);
  const CampusResults four = RunSmallCampus(4);
  EXPECT_EQ(serial, two);
  EXPECT_EQ(serial, four);
  EXPECT_GT(serial.aggregate_bps, 0.0);
  EXPECT_GT(serial.cross_shard_packets, 0);
}

TEST(ShardCampusTest, BitIdenticalUnderTbr) {
  const CampusResults serial = RunSmallCampus(1, QdiscKind::kTbr);
  const CampusResults four = RunSmallCampus(4, QdiscKind::kTbr);
  EXPECT_EQ(serial, four);
  EXPECT_GT(serial.aggregate_bps, 0.0);
}

TEST(ShardCampusTest, BitIdenticalUnderAdaptiveTbrFamily) {
  // The adaptive modes add per-mode state (borrow passes, the 50 ms demand timer, the
  // protocol-aware fallback); each must hold the same cross-thread determinism bar as
  // stock TBR.
  for (const QdiscKind qdisc : {QdiscKind::kTbrBurstCredit, QdiscKind::kTbrFastEwma,
                                QdiscKind::kTbrCreditHybrid}) {
    const CampusResults serial = RunSmallCampus(1, qdisc);
    const CampusResults four = RunSmallCampus(4, qdisc);
    EXPECT_EQ(serial, four) << "qdisc=" << static_cast<int>(qdisc);
    EXPECT_GT(serial.aggregate_bps, 0.0) << "qdisc=" << static_cast<int>(qdisc);
  }
}

TEST(ShardCampusTest, WindowedMetrologyBitIdenticalAcrossThreadCounts) {
  // Streaming metrology config: windowed series, sampled retention. The per-window
  // merge tree (cells -> campus, sealed at barriers in fixed order) must keep the
  // full readout - including every WindowStat and per-flow exact flag - bit-identical
  // for any shard-thread count.
  auto run = [](int threads) {
    CampusConfig config = SmallCampusConfig(QdiscKind::kTbr);
    config.cell.stats.window = Ms(100);
    config.cell.stats.top_k = 3;
    config.cell.stats.sample_every = 2;
    CampusSim campus(config, threads);
    campus.AddBss(MakeBss(2, Direction::kUplink, Transport::kTcp));
    campus.AddBss(MakeBss(2, Direction::kDownlink, Transport::kTcp));
    campus.AddBss(MakeBss(2, Direction::kDownlink, Transport::kUdp));
    return campus.Run();
  };
  const CampusResults serial = run(1);
  EXPECT_FALSE(serial.rtt_series.windows.empty());
  EXPECT_FALSE(serial.ap_queue_delay_series.windows.empty());
  EXPECT_GT(serial.rtt_sketch.count(), 0);  // Whole-run meters complete when windowed.
  for (const int threads : {2, 4}) {
    EXPECT_EQ(run(threads), serial) << threads;
  }
}

TEST(ShardDeterminismTest, ThreadScheduleStability) {
  // Repeated multi-threaded runs exercise different OS thread schedules; the barrier
  // protocol must make every one of them produce the same bits.
  const CampusResults first = RunSmallCampus(4);
  for (int rep = 0; rep < 3; ++rep) {
    EXPECT_EQ(first, RunSmallCampus(4));
  }
}

TEST(ShardCampusTest, LookaheadHorizonWindows) {
  // lookahead = min one-way backbone latency across BSSes; windows = ceil(total
  // simulated time / lookahead) when every window spans a full horizon.
  CampusConfig config = SmallCampusConfig();
  config.backbone_delay = Ms(1);
  CampusSim campus(config, 1);
  campus.AddBss(MakeBss(1, Direction::kUplink, Transport::kTcp));
  BssSpec slow = MakeBss(1, Direction::kDownlink, Transport::kTcp);
  slow.backbone_delay = Ms(5);  // Slower link must not widen the lookahead.
  campus.AddBss(slow);
  const CampusResults results = campus.Run();
  EXPECT_EQ(campus.lookahead(), Ms(1));
  const TimeNs total = config.cell.warmup + config.cell.duration;
  EXPECT_EQ(results.windows, (total + Ms(1) - 1) / Ms(1));
  EXPECT_EQ(results.lookahead, Ms(1));
}

TEST(ShardCampusTest, SingleBssMatchesAcrossShardThreads) {
  // Degenerate campus (one BSS + core) still runs the full mailbox protocol.
  CampusConfig config = SmallCampusConfig();
  for (const int threads : {1, 2}) {
    CampusSim campus(config, threads);
    campus.AddBss(MakeBss(3, Direction::kUplink, Transport::kTcp));
    const CampusResults results = campus.Run();
    EXPECT_EQ(results.cells.size(), 1u);
    EXPECT_GT(results.cells[0].aggregate_bps, 0.0);
    EXPECT_EQ(results.cells[0].flows.size(), 3u);
  }
}

TEST(ShardCampusTest, UdpTaskBytesConserved) {
  // A finite bulk UDP downlink delivers exactly its task payload through the
  // core -> cell mailbox crossing (deep copy must preserve every transport field).
  CampusConfig config = SmallCampusConfig();
  config.cell.duration = Sec(2);
  CampusSim campus(config, 2);
  BssSpec bss = MakeBss(1, Direction::kDownlink, Transport::kUdp);
  bss.flows[0].task_bytes = 200000;
  bss.flows[0].udp_rate = Mbps(1);
  campus.AddBss(bss);
  const CampusResults results = campus.Run();
  ASSERT_EQ(results.cells[0].flows.size(), 1u);
  EXPECT_EQ(results.tasks_completed, 1);
  EXPECT_EQ(results.cells[0].flows[0].task_completions.size(), 1u);
}

TEST(ShardMailboxTest, RecordsRoundTripAllTransportFields) {
  net::PacketPool pool;
  net::PacketPtr p = pool.Allocate();
  p->src = 3;
  p->dst = kServerId;
  p->wlan_client = 3;
  p->flow_id = 9;
  p->proto = net::Proto::kTcpData;
  p->size_bytes = 1500;
  p->seq = 14600;
  p->end_seq = 16060;
  p->ack = 42;
  p->created = Us(17);
  p->ap_enqueued = Us(99);  // Must NOT cross: re-stamped at the destination AP.

  const shard::PacketRecord r = shard::MakeRecord(*p, Ms(3));
  EXPECT_EQ(r.arrival, Ms(3));

  net::PacketPool other;
  net::PacketPtr copy = shard::Materialize(r, &other);
  EXPECT_EQ(copy->src, 3);
  EXPECT_EQ(copy->dst, kServerId);
  EXPECT_EQ(copy->wlan_client, 3);
  EXPECT_EQ(copy->flow_id, 9);
  EXPECT_EQ(copy->proto, net::Proto::kTcpData);
  EXPECT_EQ(copy->size_bytes, 1500);
  EXPECT_EQ(copy->seq, 14600);
  EXPECT_EQ(copy->end_seq, 16060);
  EXPECT_EQ(copy->ack, 42);
  EXPECT_EQ(copy->created, Us(17));
  EXPECT_EQ(copy->ap_enqueued, -1);
}

TEST(ShardMailboxTest, ShardLinkPreservesFifoOrderAndArrivalTimes) {
  sim::Simulator sim;
  net::PacketPool pool;
  shard::Mailbox out;
  // 1 Mbps, 1 ms one-way: a 1250-byte packet serializes in exactly 10 ms.
  shard::ShardLink link(&sim, &out, 1000000, Ms(1), 4);

  for (int i = 0; i < 3; ++i) {
    net::PacketPtr p = pool.Allocate();
    p->size_bytes = 1250;
    p->seq = i;
    link.Send(std::move(p));
  }
  sim.RunUntil(Ms(100));

  ASSERT_EQ(out.pending().size(), 3u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(out.pending()[i].seq, i);
    // Packet i finishes serializing at (i+1)*10ms and lands delay later.
    EXPECT_EQ(out.pending()[i].arrival, Ms(10) * (i + 1) + Ms(1));
  }
  EXPECT_EQ(link.sent(), 3);
  EXPECT_EQ(link.drops(), 0);
}

TEST(ShardMailboxTest, ShardLinkDropsBeyondQueueLimit) {
  sim::Simulator sim;
  net::PacketPool pool;
  shard::Mailbox out;
  shard::ShardLink link(&sim, &out, 1000000, Ms(1), 2);
  for (int i = 0; i < 6; ++i) {  // 1 transmitting + 2 queued + 3 dropped.
    net::PacketPtr p = pool.Allocate();
    p->size_bytes = 1250;
    link.Send(std::move(p));
  }
  sim.RunUntil(Sec(1));
  EXPECT_EQ(link.sent(), 3);
  EXPECT_EQ(link.drops(), 3);
}

TEST(ShardMailboxTest, ArrivalsAlwaysClearTheLookaheadHorizon) {
  // The conservative invariant: a send inside window (t, t+W] posts an arrival
  // strictly after the *next* barrier, because arrival = send + tx + delay and
  // delay >= W. Checked here directly at the link level.
  sim::Simulator sim;
  net::PacketPool pool;
  shard::Mailbox out;
  const TimeNs kDelay = Us(500);
  shard::ShardLink link(&sim, &out, Mbps(1000), kDelay, 64);
  const TimeNs window_end = Ms(2);
  sim.ScheduleAt(window_end, [&] {
    net::PacketPtr p = pool.Allocate();
    p->size_bytes = 40;  // Worst case: minimal serialization time.
    link.Send(std::move(p));
  });
  sim.RunUntil(window_end);
  ASSERT_EQ(out.pending().size(), 1u);
  EXPECT_GT(out.pending()[0].arrival, window_end + kDelay - 1);
  EXPECT_GT(out.pending()[0].arrival, window_end);  // Next barrier-safe.
}

TEST(ShardPoolIsolationTest, ConcurrentCampusesShareNothing) {
  // Two campuses on their own shard pools at once: per-shard pools and rngs must be
  // fully private (TSan enforces the claim in the sanitizer configuration).
  CampusResults a;
  CampusResults b;
  std::thread t1([&a] { a = RunSmallCampus(2); });
  std::thread t2([&b] { b = RunSmallCampus(2); });
  t1.join();
  t2.join();
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace tbf
