#include <gtest/gtest.h>

#include "tbf/trace/generators.h"
#include "tbf/trace/trace.h"

namespace tbf::trace {
namespace {

net::PacketPool& TestPool() {
  static net::PacketPool pool;
  return pool;
}

TraceRecord Record(TimeNs t, NodeId node, int bytes, phy::WifiRate rate,
                   bool success = true) {
  TraceRecord r;
  r.time = t;
  r.node = node;
  r.bytes = bytes;
  r.rate = rate;
  r.success = success;
  return r;
}

TEST(RateByteFractionsTest, ComputesFractions) {
  TraceLog log;
  log.Add(Record(0, 1, 3000, phy::WifiRate::k11Mbps));
  log.Add(Record(1, 2, 1000, phy::WifiRate::k1Mbps));
  const auto fractions = RateByteFractions(log);
  EXPECT_NEAR(fractions.at(phy::WifiRate::k11Mbps), 0.75, 1e-9);
  EXPECT_NEAR(fractions.at(phy::WifiRate::k1Mbps), 0.25, 1e-9);
}

TEST(RateByteFractionsTest, EmptyLog) {
  TraceLog log;
  EXPECT_TRUE(RateByteFractions(log).empty());
}

TEST(BusyIntervalsTest, ThresholdFilters) {
  TraceLog log;
  // Window 0: 1 MB (8 Mbps) - busy. Window 1: 100 KB (0.8 Mbps) - not busy.
  for (int i = 0; i < 10; ++i) {
    log.Add(Record(Ms(i * 50), 1, 100'000, phy::WifiRate::k11Mbps));
  }
  log.Add(Record(Sec(1) + Ms(10), 1, 100'000, phy::WifiRate::k11Mbps));
  const auto busy = FindBusyIntervals(log, Sec(1), 4e6);
  ASSERT_EQ(busy.size(), 1u);
  EXPECT_EQ(busy[0].start, 0);
  EXPECT_EQ(busy[0].total_bytes, 1'000'000);
}

TEST(BusyIntervalsTest, HeaviestUserShare) {
  TraceLog log;
  log.Add(Record(Ms(1), 1, 700'000, phy::WifiRate::k11Mbps));
  log.Add(Record(Ms(2), 2, 300'000, phy::WifiRate::k11Mbps));
  const auto busy = FindBusyIntervals(log, Sec(1), 4e6);
  ASSERT_EQ(busy.size(), 1u);
  EXPECT_EQ(busy[0].heaviest_user, 1);
  EXPECT_NEAR(busy[0].heaviest_share, 0.7, 1e-9);
  EXPECT_EQ(busy[0].distinct_users, 2);
}

TEST(BusyIntervalsTest, FailedFramesDoNotCountTowardGoodput) {
  TraceLog log;
  log.Add(Record(Ms(1), 1, 700'000, phy::WifiRate::k11Mbps, /*success=*/false));
  const auto busy = FindBusyIntervals(log, Sec(1), 4e6);
  EXPECT_TRUE(busy.empty());
}

TEST(HeaviestUserSummaryTest, SoloSaturationDetection) {
  std::vector<BusyInterval> intervals(4);
  intervals[0].heaviest_share = 0.95;  // Solo.
  intervals[1].heaviest_share = 0.60;
  intervals[2].heaviest_share = 0.55;
  intervals[3].heaviest_share = 0.50;
  for (auto& bi : intervals) {
    bi.distinct_users = 3;
  }
  const auto s = SummarizeHeaviestUser(intervals);
  EXPECT_EQ(s.busy_intervals, 4);
  EXPECT_NEAR(s.solo_saturation_fraction, 0.25, 1e-9);
  EXPECT_NEAR(s.mean_heaviest_share, 0.65, 1e-9);
}

TEST(WorkshopGeneratorTest, MatchesTargetMixture) {
  sim::Rng rng(11);
  WorkshopConfig config = Ws2Config();
  config.duration = Sec(20 * 60);  // Shorter run for the test.
  const TraceLog log = GenerateWorkshopTrace(config, rng);
  ASSERT_GT(log.size(), 1000u);
  const auto fractions = RateByteFractions(log);
  // The generator should land within a few points of its target mixture.
  EXPECT_NEAR(fractions.at(phy::WifiRate::k11Mbps), 0.62, 0.12);
  double below_11 = 0.0;
  for (const auto& [rate, f] : fractions) {
    if (rate != phy::WifiRate::k11Mbps) {
      below_11 += f;
    }
  }
  EXPECT_GT(below_11, 0.25);  // The paper's WS-2 claim: >30% below 11 Mbps (with slack).
}

TEST(WorkshopGeneratorTest, SessionsDiffer) {
  sim::Rng rng(5);
  WorkshopConfig ws1 = Ws1Config();
  WorkshopConfig ws2 = Ws2Config();
  ws1.duration = ws2.duration = Sec(15 * 60);
  const auto f1 = RateByteFractions(GenerateWorkshopTrace(ws1, rng));
  const auto f2 = RateByteFractions(GenerateWorkshopTrace(ws2, rng));
  EXPECT_GT(f1.at(phy::WifiRate::k11Mbps), f2.at(phy::WifiRate::k11Mbps));
}

TEST(ResidenceGeneratorTest, ProducesBusyIntervalsWithSharedChannel) {
  sim::Rng rng(3);
  ResidenceConfig config;
  config.duration = Sec(30 * 60);
  const TraceLog log = GenerateResidenceTrace(config, rng);
  const auto busy = FindBusyIntervals(log, Sec(1), 4e6);
  ASSERT_GT(busy.size(), 20u);
  const auto summary = SummarizeHeaviestUser(busy);
  // The paper's Fig. 5 claim: the heaviest user alone rarely saturates a busy AP.
  EXPECT_LT(summary.solo_saturation_fraction, 0.35);
  EXPECT_GT(summary.mean_distinct_users, 1.5);
}

TEST(ResidenceGeneratorTest, HeavyUserMovesMostBytes) {
  sim::Rng rng(3);
  ResidenceConfig config;
  config.duration = Sec(30 * 60);
  const TraceLog log = GenerateResidenceTrace(config, rng);
  std::map<NodeId, int64_t> per_user;
  for (const auto& r : log.records()) {
    per_user[r.node] += r.bytes;
  }
  NodeId heaviest = kInvalidNodeId;
  int64_t best = 0;
  for (const auto& [node, bytes] : per_user) {
    if (bytes > best) {
      best = bytes;
      heaviest = node;
    }
  }
  EXPECT_EQ(heaviest, 1);  // The boosted user dominates total volume, as at Whittemore.
}

TEST(TraceIoTest, SaveLoadRoundTrip) {
  TraceLog log;
  log.Add(Record(Ms(1), 1, 1536, phy::WifiRate::k11Mbps, true));
  log.Add(Record(Ms(2), 2, 700, phy::WifiRate::k1Mbps, false));
  TraceRecord retried = Record(Ms(3), 3, 1536, phy::WifiRate::k5_5Mbps, true);
  retried.retry = true;
  retried.downlink = true;
  log.Add(retried);

  std::stringstream buffer;
  log.Save(buffer);
  const TraceLog loaded = TraceLog::Load(buffer);

  ASSERT_EQ(loaded.size(), 3u);
  EXPECT_EQ(loaded.records()[0].time, Ms(1));
  EXPECT_EQ(loaded.records()[0].rate, phy::WifiRate::k11Mbps);
  EXPECT_FALSE(loaded.records()[1].success);
  EXPECT_TRUE(loaded.records()[2].retry);
  EXPECT_TRUE(loaded.records()[2].downlink);
  // Analyzers agree on original and round-tripped logs.
  EXPECT_EQ(RateByteFractions(log), RateByteFractions(loaded));
}

TEST(TraceIoTest, LoadSkipsCommentsAndGarbage) {
  std::stringstream in("# header comment\n"
                       "1000000 1 D 1536 3 0 1\n"
                       "not a record\n"
                       "2000000 2 U 700 0 1 0\n");
  const TraceLog loaded = TraceLog::Load(in);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded.records()[0].node, 1);
  EXPECT_TRUE(loaded.records()[0].downlink);
  EXPECT_EQ(loaded.records()[1].rate, phy::WifiRate::k1Mbps);
}

TEST(SnifferTest, RecordsFromLiveMedium) {
  sim::Simulator sim;
  sim::Rng rng(1);
  phy::PerfectChannel loss;
  mac::Medium medium(&sim, phy::MixedModeTimings(), &loss, &rng);
  TraceLog log;
  TraceSniffer sniffer(&log);
  medium.AddObserver(&sniffer);

  // Minimal station pair via the mac test pattern.
  struct Sat : mac::FrameProvider, mac::FrameSink {
    Sat(mac::Medium* m, NodeId id, NodeId peer) : peer_(peer), e_(m, id, this, this) {}
    std::optional<mac::MacFrame> NextFrame() override {
      if (count_ >= 20) {
        return std::nullopt;
      }
      ++count_;
      auto p = net::MakeUdpPacket(TestPool(), e_.id(), peer_, e_.id(), 0, 1500, count_, 0);
      return mac::MakeDataFrame(e_.id(), peer_, std::move(p), phy::WifiRate::k5_5Mbps);
    }
    void OnTxComplete(const mac::MacFrame&, bool, int, TimeNs) override {}
    void OnFrameReceived(const mac::MacFrame&) override {}
    NodeId peer_;
    int count_ = 0;
    mac::DcfEntity e_;
  };

  Sat receiver(&medium, 2, 1);
  Sat sender(&medium, 1, 2);
  receiver.count_ = 20;  // Receiver stays quiet.
  sender.e_.NotifyBacklog();
  sim.RunUntil(Sec(1));

  EXPECT_EQ(log.size(), 20u);
  for (const auto& r : log.records()) {
    EXPECT_EQ(r.node, 1);
    EXPECT_EQ(r.rate, phy::WifiRate::k5_5Mbps);
    EXPECT_TRUE(r.success);
  }
}

}  // namespace
}  // namespace tbf::trace
