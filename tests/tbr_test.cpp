// Unit tests for the Time-based Regulator against a bare simulator (no MAC underneath):
// token bookkeeping, eligibility gating, fill/adjust events, the occupancy estimator, and
// the client-agent hook.
#include <gtest/gtest.h>

#include "tbf/core/tbr.h"

namespace tbf::core {
namespace {

net::PacketPool& TestPool() {
  static net::PacketPool pool;
  return pool;
}

net::PacketPtr MakePacket(NodeId client, int size = 1500) {
  net::PacketPtr p = TestPool().Allocate();
  p->wlan_client = client;
  p->dst = client;
  p->size_bytes = size;
  return p;
}

mac::MacFrame MakeFrame(NodeId client, int ip_bytes, phy::WifiRate rate) {
  return mac::MakeDataFrame(kApId, client, MakePacket(client, ip_bytes), rate);
}

class TbrTest : public ::testing::Test {
 protected:
  TimeBasedRegulator MakeTbr(TbrConfig config = {}) {
    return TimeBasedRegulator(&sim_, phy::MixedModeTimings(), config);
  }

  sim::Simulator sim_;
};

TEST_F(TbrTest, AssociateInitializesState) {
  auto tbr = MakeTbr();
  tbr.OnAssociate(1);
  tbr.OnAssociate(2);
  EXPECT_EQ(tbr.tokens(1), tbr.config().initial_tokens);
  EXPECT_DOUBLE_EQ(tbr.rate(1), 0.5);
  EXPECT_DOUBLE_EQ(tbr.rate(2), 0.5);
}

TEST_F(TbrTest, ReassociationIsIdempotent) {
  auto tbr = MakeTbr();
  tbr.OnAssociate(1);
  tbr.OnTxComplete(MakeFrame(1, 1500, phy::WifiRate::k11Mbps), true, 1, 0);
  const TimeNs after_charge = tbr.tokens(1);
  tbr.OnAssociate(1);
  EXPECT_EQ(tbr.tokens(1), after_charge);  // Not reset.
}

TEST_F(TbrTest, FairRatesRecomputeOnJoin) {
  auto tbr = MakeTbr();
  tbr.OnAssociate(1);
  EXPECT_DOUBLE_EQ(tbr.rate(1), 1.0);
  tbr.OnAssociate(2);
  tbr.OnAssociate(3);
  EXPECT_NEAR(tbr.rate(1), 1.0 / 3, 1e-12);
}

TEST_F(TbrTest, EnqueueDequeueRoundRobinAmongEligible) {
  auto tbr = MakeTbr();
  tbr.OnAssociate(1);
  tbr.OnAssociate(2);
  for (int i = 0; i < 2; ++i) {
    tbr.Enqueue(MakePacket(1));
    tbr.Enqueue(MakePacket(2));
  }
  EXPECT_EQ(tbr.Dequeue()->wlan_client, 1);
  EXPECT_EQ(tbr.Dequeue()->wlan_client, 2);
  EXPECT_EQ(tbr.Dequeue()->wlan_client, 1);
  EXPECT_EQ(tbr.Dequeue()->wlan_client, 2);
}

TEST_F(TbrTest, NegativeTokensGateDequeue) {
  auto tbr = MakeTbr();
  tbr.OnAssociate(1);
  tbr.OnAssociate(2);
  tbr.Enqueue(MakePacket(1));
  tbr.Enqueue(MakePacket(2));
  // Drain client 1's bucket far below zero (a slow-rate frame is expensive).
  for (int i = 0; i < 3; ++i) {
    tbr.OnTxComplete(MakeFrame(1, 1500, phy::WifiRate::k1Mbps), true, 1, 0);
  }
  EXPECT_LT(tbr.tokens(1), 0);
  // Only client 2 is eligible now.
  EXPECT_EQ(tbr.Dequeue()->wlan_client, 2);
  EXPECT_EQ(tbr.Dequeue(), nullptr);
  EXPECT_EQ(tbr.QueuedPackets(), 1u);
}

TEST_F(TbrTest, FillEventRestoresEligibility) {
  TbrConfig config;
  config.fill_period = Ms(1);
  auto tbr = MakeTbr(config);
  int backlog_signals = 0;
  tbr.SetBacklogCallback([&] { ++backlog_signals; });
  tbr.OnAssociate(1);
  tbr.Enqueue(MakePacket(1));
  tbr.OnTxComplete(MakeFrame(1, 1500, phy::WifiRate::k1Mbps), true, 1, 0);
  tbr.OnTxComplete(MakeFrame(1, 1500, phy::WifiRate::k1Mbps), true, 1, 0);
  ASSERT_LT(tbr.tokens(1), 0);
  EXPECT_FALSE(tbr.HasEligible());
  // Rate 1.0 (only client): ~16 ms debt refills in ~16 ms of fill events.
  sim_.RunUntil(Ms(40));
  EXPECT_GT(tbr.tokens(1), 0);
  EXPECT_TRUE(tbr.HasEligible());
  EXPECT_GT(backlog_signals, 0);
}

TEST_F(TbrTest, BucketDepthCapsAccumulation) {
  TbrConfig config;
  config.bucket_depth = Ms(10);
  config.fill_period = Ms(1);
  auto tbr = MakeTbr(config);
  tbr.OnAssociate(1);
  sim_.RunUntil(Sec(2));
  EXPECT_LE(tbr.tokens(1), Ms(10));
  EXPECT_GT(tbr.tokens(1), Ms(9));
}

TEST_F(TbrTest, PerQueueLimitDrops) {
  TbrConfig config;
  config.per_queue_limit = 3;
  auto tbr = MakeTbr(config);
  for (int i = 0; i < 5; ++i) {
    tbr.Enqueue(MakePacket(7));
  }
  EXPECT_EQ(tbr.QueuedPackets(), 3u);
  EXPECT_EQ(tbr.drops(), 2);
}

TEST_F(TbrTest, EstimatorMatchesExchangeAirtimePlusContention) {
  auto tbr = MakeTbr();
  tbr.OnAssociate(1);  // One client: full contention allowance.
  const phy::MacTimings t = phy::MixedModeTimings();
  const TimeNs expect = phy::DataExchangeAirtime(1536, phy::WifiRate::k11Mbps, t) +
                        t.Difs() + (t.cw_min / 2) * t.slot;
  EXPECT_EQ(tbr.EstimateOccupancy(1536, phy::WifiRate::k11Mbps, 1), expect);
  EXPECT_EQ(tbr.EstimateOccupancy(1536, phy::WifiRate::k11Mbps, 3), 3 * expect);
}

TEST_F(TbrTest, EstimatorScalesContentionByClients) {
  auto tbr = MakeTbr();
  tbr.OnAssociate(1);
  const TimeNs solo = tbr.EstimateOccupancy(1536, phy::WifiRate::k11Mbps, 1);
  tbr.OnAssociate(2);
  const TimeNs duo = tbr.EstimateOccupancy(1536, phy::WifiRate::k11Mbps, 1);
  EXPECT_LT(duo, solo);
}

TEST_F(TbrTest, SlowRateFramesCostProportionallyMore) {
  auto tbr = MakeTbr();
  tbr.OnAssociate(1);
  const TimeNs fast = tbr.EstimateOccupancy(1536, phy::WifiRate::k11Mbps, 1);
  const TimeNs slow = tbr.EstimateOccupancy(1536, phy::WifiRate::k1Mbps, 1);
  EXPECT_GT(static_cast<double>(slow) / static_cast<double>(fast), 6.0);
}

TEST_F(TbrTest, UplinkObservedChargesOwner) {
  auto tbr = MakeTbr();
  tbr.OnAssociate(1);
  mac::ExchangeRecord record;
  record.owner = 1;
  record.tx = 1;
  record.rx = kApId;
  record.frame_bytes = 1536;
  record.rate = phy::WifiRate::k11Mbps;
  record.success = true;
  const TimeNs before = tbr.tokens(1);
  tbr.OnUplinkObserved(record);
  EXPECT_LT(tbr.tokens(1), before);
}

TEST_F(TbrTest, WithoutRetryInfoFailedUplinkAttemptsAreFree) {
  auto tbr = MakeTbr();  // use_retry_info = false.
  tbr.OnAssociate(1);
  mac::ExchangeRecord record;
  record.owner = 1;
  record.frame_bytes = 1536;
  record.rate = phy::WifiRate::k11Mbps;
  record.data_lost = true;
  record.success = false;
  record.airtime = Ms(2);
  const TimeNs before = tbr.tokens(1);
  tbr.OnUplinkObserved(record);
  EXPECT_EQ(tbr.tokens(1), before);  // The paper's driver cannot see this attempt.
}

TEST_F(TbrTest, WithRetryInfoFailedAttemptsAreCharged) {
  TbrConfig config;
  config.use_retry_info = true;
  auto tbr = MakeTbr(config);
  tbr.OnAssociate(1);
  mac::ExchangeRecord record;
  record.owner = 1;
  record.frame_bytes = 1536;
  record.rate = phy::WifiRate::k11Mbps;
  record.data_lost = true;
  record.success = false;
  record.airtime = Ms(2);
  tbr.OnUplinkObserved(record);
  EXPECT_EQ(tbr.tokens(1), tbr.config().initial_tokens - Ms(2));
}

TEST_F(TbrTest, DownlinkRetryChargingFollowsConfig) {
  auto no_retry = MakeTbr();
  no_retry.OnAssociate(1);
  no_retry.OnTxComplete(MakeFrame(1, 1500, phy::WifiRate::k11Mbps), true, 4, Ms(8));
  TbrConfig config;
  config.use_retry_info = true;
  auto with_retry = MakeTbr(config);
  with_retry.OnAssociate(1);
  with_retry.OnTxComplete(MakeFrame(1, 1500, phy::WifiRate::k11Mbps), true, 4, Ms(8));
  EXPECT_GT(no_retry.tokens(1), with_retry.tokens(1));
}

TEST_F(TbrTest, WorkConservingFallbackServesMaxTokenQueue) {
  TbrConfig config;
  config.work_conserving_fallback = true;
  auto tbr = MakeTbr(config);
  tbr.OnAssociate(1);
  tbr.OnAssociate(2);
  tbr.Enqueue(MakePacket(1));
  tbr.Enqueue(MakePacket(2));
  // Drive both negative; client 2 less so.
  for (int i = 0; i < 4; ++i) {
    tbr.OnTxComplete(MakeFrame(1, 1500, phy::WifiRate::k1Mbps), true, 1, 0);
  }
  for (int i = 0; i < 3; ++i) {
    tbr.OnTxComplete(MakeFrame(2, 1500, phy::WifiRate::k1Mbps), true, 1, 0);
  }
  ASSERT_LT(tbr.tokens(1), tbr.tokens(2));
  ASSERT_LT(tbr.tokens(2), 0);
  EXPECT_EQ(tbr.Dequeue()->wlan_client, 2);
}

TEST_F(TbrTest, StrictModeIdlesWhenNoTokens) {
  auto tbr = MakeTbr();  // Fallback off by default.
  tbr.OnAssociate(1);
  tbr.Enqueue(MakePacket(1));
  for (int i = 0; i < 4; ++i) {
    tbr.OnTxComplete(MakeFrame(1, 1500, phy::WifiRate::k1Mbps), true, 1, 0);
  }
  EXPECT_EQ(tbr.Dequeue(), nullptr);
  EXPECT_FALSE(tbr.HasEligible());
  EXPECT_EQ(tbr.QueuedPackets(), 1u);
}

TEST_F(TbrTest, AdjustEventDonatesFromPersistentUnderUtilizer) {
  TbrConfig config;
  config.adjust_period = Ms(100);
  config.usage_ewma_alpha = 1.0;  // React immediately for the unit test.
  auto tbr = MakeTbr(config);
  tbr.OnAssociate(1);
  tbr.OnAssociate(2);
  // Client 1 consumes nothing; client 2 consumes its full assignment each window.
  for (int window = 0; window < 8; ++window) {
    const TimeNs target = sim_.Now() + Ms(100);
    // 50 ms of charged occupancy in a 100 ms window = client 2's full 0.5 share.
    tbr.OnTxComplete(MakeFrame(2, 1500, phy::WifiRate::k11Mbps), true, 1, 0);
    while (tbr.actual_usage(2) < Ms(50)) {
      tbr.OnTxComplete(MakeFrame(2, 1500, phy::WifiRate::k11Mbps), true, 1, 0);
    }
    sim_.RunUntil(target);
  }
  EXPECT_LT(tbr.rate(1), 0.5);
  EXPECT_GT(tbr.rate(2), 0.5);
  // Conservation of total rate.
  EXPECT_NEAR(tbr.rate(1) + tbr.rate(2), 1.0, 1e-9);
}

TEST_F(TbrTest, LateJoinPreservesConvergedRates) {
  // Regression: GetOrAssociate used to call RecomputeFairRates unconditionally, so a
  // client joining after the adjuster had converged wiped the learned allocation back
  // to the static 1/N split. A newcomer must take only its fair share, scaling the
  // converged rates down proportionally.
  TbrConfig config;
  config.adjust_period = Ms(100);
  config.usage_ewma_alpha = 1.0;
  auto tbr = MakeTbr(config);
  tbr.OnAssociate(1);
  tbr.OnAssociate(2);
  // Client 1 idles; client 2 saturates its assignment, so the adjuster donates to it.
  for (int window = 0; window < 8; ++window) {
    const TimeNs target = sim_.Now() + Ms(100);
    while (tbr.actual_usage(2) < Ms(50)) {
      tbr.OnTxComplete(MakeFrame(2, 1500, phy::WifiRate::k11Mbps), true, 1, 0);
    }
    sim_.RunUntil(target);
  }
  const double converged_1 = tbr.rate(1);
  const double converged_2 = tbr.rate(2);
  ASSERT_LT(converged_1, 0.4);  // The adjuster visibly moved the allocation.
  ASSERT_GT(converged_2, 0.6);

  tbr.OnAssociate(3);
  // The newcomer gets the static fair share; incumbents keep their converged ratio.
  EXPECT_NEAR(tbr.rate(3), 1.0 / 3, 1e-12);
  EXPECT_NEAR(tbr.rate(1) / tbr.rate(2), converged_1 / converged_2, 1e-9);
  EXPECT_NEAR(tbr.rate(1), converged_1 * (2.0 / 3), 1e-9);
  EXPECT_NEAR(tbr.rate(1) + tbr.rate(2) + tbr.rate(3), 1.0, 1e-9);

  // SetWeight had the same bug: re-weighting one client must rescale, not reset.
  const double before_1 = tbr.rate(1);
  const double before_3 = tbr.rate(3);
  tbr.SetWeight(3, 2.0);
  EXPECT_NEAR(tbr.rate(3) / tbr.rate(1), 2.0 * before_3 / before_1, 1e-9);
  EXPECT_NEAR(tbr.rate(1) + tbr.rate(2) + tbr.rate(3), 1.0, 1e-9);
}

TEST_F(TbrTest, PinnedContendersMakeChargesAssociationInvariant) {
  // Regression: the contention allowance divided by clients_.size(), so identical
  // traffic drained different token amounts depending on whether peers had already
  // associated (lazy association via Enqueue vs upfront OnAssociate). With the
  // contender count pinned to the scenario's station count the charge is invariant.
  TbrConfig config;
  config.contention_contenders = 3;
  auto tbr = MakeTbr(config);
  tbr.OnAssociate(1);
  const TimeNs solo = tbr.EstimateOccupancy(1536, phy::WifiRate::k11Mbps, 1);
  tbr.OnAssociate(2);
  tbr.OnAssociate(3);
  EXPECT_EQ(tbr.EstimateOccupancy(1536, phy::WifiRate::k11Mbps, 1), solo);

  // Upfront association and lazy association now bill the same traffic identically.
  auto run_order = [&](bool lazy) {
    auto t = MakeTbr(config);
    t.OnAssociate(1);
    if (!lazy) {
      t.OnAssociate(2);
      t.OnAssociate(3);
    }
    t.OnTxComplete(MakeFrame(1, 1500, phy::WifiRate::k11Mbps), true, 1, 0);
    if (lazy) {
      t.OnAssociate(2);
      t.OnAssociate(3);
    }
    t.OnTxComplete(MakeFrame(1, 1500, phy::WifiRate::k11Mbps), true, 1, 0);
    return t.config().initial_tokens - t.tokens(1);
  };
  EXPECT_EQ(run_order(false), run_order(true));

  // And full association-order permutations leave every client's drain identical:
  // the regulator's results are a function of the traffic, not of join order.
  auto run_perm = [&](const std::vector<NodeId>& order) {
    auto t = MakeTbr(config);
    for (const NodeId id : order) {
      t.OnAssociate(id);
    }
    std::vector<TimeNs> drains;
    for (const NodeId id : {1, 2, 3}) {
      t.OnTxComplete(MakeFrame(id, 1500, phy::WifiRate::k11Mbps), true, 1, 0);
      drains.push_back(t.config().initial_tokens - t.tokens(id));
    }
    return drains;
  };
  EXPECT_EQ(run_perm({1, 2, 3}), run_perm({3, 1, 2}));
}

TEST_F(TbrTest, WeightedSharesScaleRates) {
  auto tbr = MakeTbr();
  tbr.OnAssociate(1);
  tbr.OnAssociate(2);
  tbr.OnAssociate(3);
  tbr.SetWeight(1, 3.0);
  tbr.SetWeight(2, 2.0);
  tbr.SetWeight(3, 1.0);
  EXPECT_NEAR(tbr.rate(1), 0.5, 1e-12);
  EXPECT_NEAR(tbr.rate(2), 2.0 / 6.0, 1e-12);
  EXPECT_NEAR(tbr.rate(3), 1.0 / 6.0, 1e-12);
}

TEST_F(TbrTest, ClientAgentPausesIndebtedClient) {
  TbrConfig config;
  config.client_agent = true;
  auto tbr = MakeTbr(config);
  NodeId paused_client = kInvalidNodeId;
  TimeNs paused_until = 0;
  tbr.SetClientPauseFn([&](NodeId c, TimeNs until) {
    paused_client = c;
    paused_until = until;
  });
  tbr.OnAssociate(1);
  tbr.OnAssociate(2);
  for (int i = 0; i < 4; ++i) {
    tbr.OnTxComplete(MakeFrame(1, 1500, phy::WifiRate::k1Mbps), true, 1, 0);
  }
  EXPECT_EQ(paused_client, 1);
  EXPECT_GT(paused_until, sim_.Now());
}

}  // namespace
}  // namespace tbf::core
