#include <gtest/gtest.h>

#include "tbf/ap/qdisc.h"

namespace tbf::ap {
namespace {

net::PacketPool& TestPool() {
  static net::PacketPool pool;
  return pool;
}

net::PacketPtr MakePacket(NodeId client, int size = 1500) {
  net::PacketPtr p = TestPool().Allocate();
  p->wlan_client = client;
  p->dst = client;
  p->size_bytes = size;
  return p;
}

TEST(FifoQdiscTest, FifoOrder) {
  FifoQdisc q(10);
  q.Enqueue(MakePacket(1));
  q.Enqueue(MakePacket(2));
  q.Enqueue(MakePacket(3));
  EXPECT_EQ(q.Dequeue()->wlan_client, 1);
  EXPECT_EQ(q.Dequeue()->wlan_client, 2);
  EXPECT_EQ(q.Dequeue()->wlan_client, 3);
  EXPECT_EQ(q.Dequeue(), nullptr);
}

TEST(FifoQdiscTest, DropsWhenFull) {
  FifoQdisc q(2);
  EXPECT_TRUE(q.Enqueue(MakePacket(1)));
  EXPECT_TRUE(q.Enqueue(MakePacket(1)));
  EXPECT_FALSE(q.Enqueue(MakePacket(1)));
  EXPECT_EQ(q.drops(), 1);
  EXPECT_EQ(q.QueuedPackets(), 2u);
}

TEST(FifoQdiscTest, HasEligibleTracksContent) {
  FifoQdisc q;
  EXPECT_FALSE(q.HasEligible());
  q.Enqueue(MakePacket(1));
  EXPECT_TRUE(q.HasEligible());
  q.Dequeue();
  EXPECT_FALSE(q.HasEligible());
}

TEST(RoundRobinQdiscTest, AlternatesBetweenClients) {
  RoundRobinQdisc q(10);
  q.OnAssociate(1);
  q.OnAssociate(2);
  for (int i = 0; i < 3; ++i) {
    q.Enqueue(MakePacket(1));
    q.Enqueue(MakePacket(2));
  }
  EXPECT_EQ(q.Dequeue()->wlan_client, 1);
  EXPECT_EQ(q.Dequeue()->wlan_client, 2);
  EXPECT_EQ(q.Dequeue()->wlan_client, 1);
  EXPECT_EQ(q.Dequeue()->wlan_client, 2);
}

TEST(RoundRobinQdiscTest, SkipsEmptyQueues) {
  RoundRobinQdisc q(10);
  q.OnAssociate(1);
  q.OnAssociate(2);
  q.OnAssociate(3);
  q.Enqueue(MakePacket(3));
  EXPECT_EQ(q.Dequeue()->wlan_client, 3);
  EXPECT_EQ(q.Dequeue(), nullptr);
}

TEST(RoundRobinQdiscTest, PerQueueLimit) {
  RoundRobinQdisc q(2);
  EXPECT_TRUE(q.Enqueue(MakePacket(1)));
  EXPECT_TRUE(q.Enqueue(MakePacket(1)));
  EXPECT_FALSE(q.Enqueue(MakePacket(1)));  // Client 1 is full...
  EXPECT_TRUE(q.Enqueue(MakePacket(2)));   // ...but client 2 is not.
  EXPECT_EQ(q.drops(), 1);
}

TEST(RoundRobinQdiscTest, AutoAssociatesOnEnqueue) {
  RoundRobinQdisc q(4);
  EXPECT_TRUE(q.Enqueue(MakePacket(9)));
  EXPECT_TRUE(q.HasEligible());
  EXPECT_EQ(q.Dequeue()->wlan_client, 9);
}

TEST(DrrQdiscTest, EqualQuantaEqualService) {
  DrrQdisc q(50, 1500);
  for (int i = 0; i < 10; ++i) {
    q.Enqueue(MakePacket(1, 1500));
    q.Enqueue(MakePacket(2, 1500));
  }
  int count1 = 0;
  int count2 = 0;
  for (int i = 0; i < 10; ++i) {
    auto p = q.Dequeue();
    ASSERT_NE(p, nullptr);
    (p->wlan_client == 1 ? count1 : count2)++;
  }
  EXPECT_EQ(count1, 5);
  EXPECT_EQ(count2, 5);
}

TEST(DrrQdiscTest, ByteFairnessWithMixedSizes) {
  // Client 1 sends 1500-byte packets, client 2 sends 300-byte packets. DRR serves
  // ~5 small packets per large one, equalizing bytes.
  DrrQdisc q(200, 1500);
  for (int i = 0; i < 40; ++i) {
    q.Enqueue(MakePacket(1, 1500));
    q.Enqueue(MakePacket(2, 300));
  }
  int64_t bytes1 = 0;
  int64_t bytes2 = 0;
  for (int i = 0; i < 48; ++i) {
    auto p = q.Dequeue();
    ASSERT_NE(p, nullptr);
    (p->wlan_client == 1 ? bytes1 : bytes2) += p->size_bytes;
  }
  EXPECT_NEAR(static_cast<double>(bytes1) / static_cast<double>(bytes2), 1.0, 0.25);
}

TEST(DrrQdiscTest, DrainsCompletely) {
  DrrQdisc q(50, 1500);
  for (int i = 0; i < 7; ++i) {
    q.Enqueue(MakePacket(1 + (i % 3), 400 + 100 * i));
  }
  int drained = 0;
  while (q.Dequeue() != nullptr) {
    ++drained;
  }
  EXPECT_EQ(drained, 7);
  EXPECT_FALSE(q.HasEligible());
}

TEST(DrrQdiscTest, DeficitResetsOnEmptyQueue) {
  DrrQdisc q(50, 1500);
  q.Enqueue(MakePacket(1, 100));
  EXPECT_NE(q.Dequeue(), nullptr);
  // Queue 1 emptied; its deficit must not accumulate while idle.
  for (int i = 0; i < 5; ++i) {
    q.Enqueue(MakePacket(2, 1500));
  }
  q.Enqueue(MakePacket(1, 1500));
  int first_client = q.Dequeue()->wlan_client;
  // Service resumes without client 1 having banked unbounded credit.
  EXPECT_TRUE(first_client == 1 || first_client == 2);
  EXPECT_EQ(q.QueuedPackets(), 5u);
}

TEST(QdiscTest, BacklogCallbackFires) {
  FifoQdisc q;
  // The base class plumbing used by TBR to wake the MAC.
  int calls = 0;
  q.SetBacklogCallback([&] { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(BurstRoundRobinTest, BurstSizesTrackRates) {
  // Client 1 at 11 Mbps gets ~11 packets per visit of client 2's (1 Mbps) single packet
  // - OAR's approximation of time fairness through packet counts.
  BurstRoundRobinQdisc q([](NodeId client) { return client == 1 ? 11'000'000 : 1'000'000; },
                         1'000'000, 100);
  for (int i = 0; i < 40; ++i) {
    q.Enqueue(MakePacket(1));
    q.Enqueue(MakePacket(2));
  }
  int count1 = 0;
  int count2 = 0;
  for (int i = 0; i < 24; ++i) {
    auto p = q.Dequeue();
    ASSERT_NE(p, nullptr);
    (p->wlan_client == 1 ? count1 : count2)++;
  }
  EXPECT_NEAR(static_cast<double>(count1) / std::max(count2, 1), 11.0, 3.0);
}

TEST(BurstRoundRobinTest, EqualRatesReduceToRoundRobin) {
  BurstRoundRobinQdisc q([](NodeId) { return 1'000'000; }, 1'000'000, 100);
  for (int i = 0; i < 4; ++i) {
    q.Enqueue(MakePacket(1));
    q.Enqueue(MakePacket(2));
  }
  int count1 = 0;
  for (int i = 0; i < 8; ++i) {
    auto p = q.Dequeue();
    ASSERT_NE(p, nullptr);
    count1 += p->wlan_client == 1 ? 1 : 0;
  }
  EXPECT_EQ(count1, 4);
  EXPECT_EQ(q.Dequeue(), nullptr);
}

TEST(BurstRoundRobinTest, SkipsEmptyAndDrains) {
  BurstRoundRobinQdisc q([](NodeId) { return 5'500'000; }, 1'000'000, 10);
  q.OnAssociate(1);
  q.OnAssociate(2);
  q.OnAssociate(3);
  q.Enqueue(MakePacket(2));
  q.Enqueue(MakePacket(2));
  EXPECT_EQ(q.Dequeue()->wlan_client, 2);
  EXPECT_EQ(q.Dequeue()->wlan_client, 2);
  EXPECT_EQ(q.Dequeue(), nullptr);
  EXPECT_FALSE(q.HasEligible());
}

}  // namespace
}  // namespace tbf::ap
