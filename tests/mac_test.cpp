#include <memory>
#include <optional>

#include <gtest/gtest.h>

#include "tbf/mac/medium.h"
#include "tbf/net/packet.h"
#include "tbf/phy/channel.h"
#include "tbf/sim/simulator.h"

namespace tbf::mac {
namespace {

// Process-lifetime pool: frames and exchange records may be released during teardown of
// media/simulators declared in any order, so the pool must outlive them all.
net::PacketPool& TestPool() {
  static net::PacketPool pool;
  return pool;
}

// A station that keeps the channel saturated with fixed-size frames to a single peer
// (or sends a bounded number of frames when `frame_budget` >= 0).
class TestStation : public FrameProvider, public FrameSink {
 public:
  TestStation(Medium* medium, NodeId id, NodeId peer, phy::WifiRate rate, int packet_bytes,
              int64_t frame_budget = -1)
      : id_(id),
        peer_(peer),
        rate_(rate),
        packet_bytes_(packet_bytes),
        frame_budget_(frame_budget),
        entity_(medium, id, this, this) {}

  void Start() { entity_.NotifyBacklog(); }

  std::optional<MacFrame> NextFrame() override {
    if (frame_budget_ == 0) {
      return std::nullopt;
    }
    if (frame_budget_ > 0) {
      --frame_budget_;
    }
    auto p = net::MakeUdpPacket(TestPool(), id_, peer_, id_ == kApId ? peer_ : id_,
                                /*flow_id=*/0, packet_bytes_, seq_++, 0);
    return MakeDataFrame(id_, peer_, std::move(p), rate_);
  }

  void OnTxComplete(const MacFrame&, bool success, int attempts, TimeNs airtime) override {
    ++completions_;
    if (success) {
      ++successes_;
    } else {
      ++drops_;
    }
    attempts_total_ += attempts;
    airtime_total_ += airtime;
  }

  void OnFrameReceived(const MacFrame& frame) override {
    ++received_;
    received_bytes_ += frame.packet->size_bytes;
  }

  DcfEntity& entity() { return entity_; }
  int64_t successes() const { return successes_; }
  int64_t drops() const { return drops_; }
  int64_t completions() const { return completions_; }
  int64_t attempts_total() const { return attempts_total_; }
  int64_t received() const { return received_; }
  int64_t received_bytes() const { return received_bytes_; }
  TimeNs airtime_total() const { return airtime_total_; }

 private:
  NodeId id_;
  NodeId peer_;
  phy::WifiRate rate_;
  int packet_bytes_;
  int64_t frame_budget_;
  int64_t seq_ = 0;
  int64_t completions_ = 0;
  int64_t successes_ = 0;
  int64_t drops_ = 0;
  int64_t attempts_total_ = 0;
  int64_t received_ = 0;
  int64_t received_bytes_ = 0;
  TimeNs airtime_total_ = 0;
  DcfEntity entity_;
};

struct World {
  explicit World(uint64_t seed = 1, const phy::LossModel* loss = nullptr)
      : rng(seed), medium(&sim, phy::MixedModeTimings(), loss ? loss : &perfect, &rng) {}

  sim::Simulator sim;
  sim::Rng rng;
  phy::PerfectChannel perfect;
  Medium medium;
};

TEST(DcfTest, SingleSaturatedSenderThroughput) {
  World w;
  TestStation rx(&w.medium, 2, 1, phy::WifiRate::k11Mbps, 1500, 0);
  TestStation tx(&w.medium, 1, 2, phy::WifiRate::k11Mbps, 1500);
  tx.Start();
  w.sim.RunUntil(Sec(10));

  // Expected per-packet cycle: DIFS + mean backoff (15.5 slots) + data + SIFS + ACK
  // = 50 + 310 + (192 + 1536*8/11) + 10 + 248 us ~= 1927 us -> ~5190 frames in 10 s.
  EXPECT_GT(tx.successes(), 4800);
  EXPECT_LT(tx.successes(), 5600);
  EXPECT_EQ(tx.drops(), 0);
  EXPECT_EQ(rx.received(), tx.successes());
}

TEST(DcfTest, PostTransmitBackoffLimitsSingleSender) {
  // A lone sender cannot fully occupy the channel: utilization stays well below 1
  // because of DIFS + post-backoff between frames (paper Fig. 4 discussion).
  World w;
  TestStation rx(&w.medium, 2, 1, phy::WifiRate::k11Mbps, 1500, 0);
  TestStation tx(&w.medium, 1, 2, phy::WifiRate::k11Mbps, 1500);
  tx.Start();
  w.sim.RunUntil(Sec(5));
  const double utilization = static_cast<double>(w.medium.busy_time()) / Sec(5);
  EXPECT_GT(utilization, 0.70);
  EXPECT_LT(utilization, 0.90);
}

TEST(DcfTest, TwoEqualRateSendersSplitOpportunitiesEvenly) {
  World w;
  TestStation sink(&w.medium, 3, 1, phy::WifiRate::k11Mbps, 1500, 0);
  TestStation a(&w.medium, 1, 3, phy::WifiRate::k11Mbps, 1500);
  TestStation b(&w.medium, 2, 3, phy::WifiRate::k11Mbps, 1500);
  a.Start();
  b.Start();
  w.sim.RunUntil(Sec(10));

  const double ratio = static_cast<double>(a.successes()) / static_cast<double>(b.successes());
  EXPECT_NEAR(ratio, 1.0, 0.08);
  EXPECT_GT(w.medium.collisions(), 0);
}

TEST(DcfTest, RateDiversityAnomalyEqualFramesSkewedAirtime) {
  // The paper's root-cause observation: DCF hands both stations the same number of
  // transmission opportunities, so the 1 Mbps station consumes several times the airtime
  // of the 11 Mbps station.
  World w;
  TestStation sink(&w.medium, 3, 1, phy::WifiRate::k11Mbps, 1500, 0);
  TestStation fast(&w.medium, 1, 3, phy::WifiRate::k11Mbps, 1500);
  TestStation slow(&w.medium, 2, 3, phy::WifiRate::k1Mbps, 1500);
  fast.Start();
  slow.Start();
  w.sim.RunUntil(Sec(20));

  const double frame_ratio =
      static_cast<double>(fast.successes()) / static_cast<double>(slow.successes());
  EXPECT_NEAR(frame_ratio, 1.0, 0.10);

  const double slow_share = w.medium.airtime_meter().Share(2);
  const double fast_share = w.medium.airtime_meter().Share(1);
  EXPECT_GT(slow_share, 0.80);
  EXPECT_GT(slow_share / fast_share, 5.0);
}

TEST(DcfTest, LossCausesRetransmissions) {
  phy::FixedPerLink loss;
  loss.SetLinkPer(1, 2, 0.3);
  World w(1, &loss);
  TestStation rx(&w.medium, 2, 1, phy::WifiRate::k11Mbps, 1500, 0);
  TestStation tx(&w.medium, 1, 2, phy::WifiRate::k11Mbps, 1500);
  tx.Start();
  w.sim.RunUntil(Sec(2));

  EXPECT_GT(tx.entity().retransmissions(), 0);
  EXPECT_GT(tx.successes(), 0);
  // Mean attempts per delivered frame should approach 1 / (1 - per) ~= 1.43.
  const double mean_attempts =
      static_cast<double>(tx.attempts_total()) / static_cast<double>(tx.completions());
  EXPECT_NEAR(mean_attempts, 1.0 / 0.7, 0.12);
}

TEST(DcfTest, RetryLimitDropsFrames) {
  phy::FixedPerLink loss;
  loss.SetLinkPer(1, 2, 1.0);  // Nothing gets through.
  World w(1, &loss);
  TestStation rx(&w.medium, 2, 1, phy::WifiRate::k11Mbps, 1500, 0);
  TestStation tx(&w.medium, 1, 2, phy::WifiRate::k11Mbps, 1500, 5);
  tx.Start();
  w.sim.RunUntil(Sec(5));

  EXPECT_EQ(tx.successes(), 0);
  EXPECT_EQ(tx.drops(), 5);
  EXPECT_EQ(rx.received(), 0);
  // retry_limit = 7 retries -> 8 attempts per dropped frame.
  EXPECT_EQ(tx.attempts_total(), 5 * 8);
}

TEST(DcfTest, FrameToUnknownDestinationIsDropped) {
  World w;
  TestStation tx(&w.medium, 1, 42, phy::WifiRate::k11Mbps, 1500, 1);
  tx.Start();
  w.sim.RunUntil(Sec(1));
  EXPECT_EQ(tx.successes(), 0);
  EXPECT_EQ(tx.drops(), 1);
}

TEST(DcfTest, BoundedBudgetStopsCleanly) {
  World w;
  TestStation rx(&w.medium, 2, 1, phy::WifiRate::k11Mbps, 1500, 0);
  TestStation tx(&w.medium, 1, 2, phy::WifiRate::k11Mbps, 1500, 100);
  tx.Start();
  w.sim.RunUntil(Sec(5));
  EXPECT_EQ(tx.successes(), 100);
  EXPECT_EQ(rx.received(), 100);
  // Channel must go idle afterwards; no runaway events.
  EXPECT_LT(w.medium.busy_time(), Sec(1));
}

TEST(DcfTest, DeterministicForSeed) {
  auto run = [](uint64_t seed) {
    World w(seed);
    TestStation sink(&w.medium, 3, 1, phy::WifiRate::k11Mbps, 1500, 0);
    TestStation a(&w.medium, 1, 3, phy::WifiRate::k11Mbps, 1500);
    TestStation b(&w.medium, 2, 3, phy::WifiRate::k5_5Mbps, 1500);
    a.Start();
    b.Start();
    w.sim.RunUntil(Sec(3));
    return std::pair<int64_t, int64_t>(a.successes(), b.successes());
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));
}

TEST(DcfTest, AirtimeMeterAccountsMostOfWallClock) {
  // With two saturated senders, charged airtime (busy + contention idle) should cover
  // nearly the whole experiment duration.
  World w;
  TestStation sink(&w.medium, 3, 1, phy::WifiRate::k11Mbps, 1500, 0);
  TestStation a(&w.medium, 1, 3, phy::WifiRate::k11Mbps, 1500);
  TestStation b(&w.medium, 2, 3, phy::WifiRate::k1Mbps, 1500);
  a.Start();
  b.Start();
  w.sim.RunUntil(Sec(10));
  const double covered = static_cast<double>(w.medium.airtime_meter().TotalCharged()) / Sec(10);
  EXPECT_GT(covered, 0.90);
  EXPECT_LT(covered, 1.02);
}

TEST(DcfTest, ObserverSeesExchanges) {
  class Counter : public MediumObserver {
   public:
    void OnExchange(const ExchangeRecord& record) override {
      ++count_;
      if (record.success) {
        ++successes_;
      }
      last_ = record;
    }
    int count_ = 0;
    int successes_ = 0;
    ExchangeRecord last_;
  };

  World w;
  Counter counter;
  w.medium.AddObserver(&counter);
  TestStation rx(&w.medium, 2, 1, phy::WifiRate::k11Mbps, 1500, 0);
  TestStation tx(&w.medium, 1, 2, phy::WifiRate::k11Mbps, 1500, 10);
  tx.Start();
  w.sim.RunUntil(Sec(1));

  EXPECT_EQ(counter.count_, 10);
  EXPECT_EQ(counter.successes_, 10);
  EXPECT_EQ(counter.last_.tx, 1);
  EXPECT_EQ(counter.last_.rx, 2);
  EXPECT_EQ(counter.last_.owner, 1);
  EXPECT_EQ(counter.last_.rate, phy::WifiRate::k11Mbps);
  EXPECT_GT(counter.last_.airtime, 0);
}

TEST(DcfTest, AccessDeadlineCacheAvoidsFullRescans) {
  // Joins are O(1) compares and exchange settle folds the min into the IFS loop, so
  // full O(contenders) rescans in ScheduleAccessDecision must stay rare - they only
  // happen when the cached min holder leaves contention while the medium is idle.
  // Meanwhile, re-arming the access event with an unchanged deadline must be skipped.
  World w;
  TestStation sink(&w.medium, 9, 1, phy::WifiRate::k11Mbps, 1500, 0);
  TestStation a(&w.medium, 1, 9, phy::WifiRate::k11Mbps, 1500);
  TestStation b(&w.medium, 2, 9, phy::WifiRate::k5_5Mbps, 1500);
  TestStation c(&w.medium, 3, 9, phy::WifiRate::k2Mbps, 1500);
  a.Start();
  b.Start();
  c.Start();
  w.sim.RunUntil(Sec(5));

  EXPECT_GT(w.medium.exchanges(), 1000);
  // Without the cache every exchange would cost several rescans (one per settle plus
  // one per re-join); with it, rescans are a small fraction of exchanges.
  EXPECT_LT(w.medium.deadline_rescans(),
            w.medium.exchanges() / 4 + 10);
  // The skip-identical-deadline satellite: re-joins whose deadline does not move the
  // earliest access instant leave the scheduled event untouched.
  EXPECT_GT(w.medium.access_reschedules_skipped(), 0);
}

TEST(DcfTest, CollisionRateReasonableForTwoSaturatedStations) {
  // Bianchi-style expectation: two stations with CWmin 31 collide on roughly
  // 1/32..1/16 of rounds (conditional collision probability ~ 1/(CWmin+1) per tx).
  World w;
  TestStation sink(&w.medium, 3, 1, phy::WifiRate::k11Mbps, 1500, 0);
  TestStation a(&w.medium, 1, 3, phy::WifiRate::k11Mbps, 1500);
  TestStation b(&w.medium, 2, 3, phy::WifiRate::k11Mbps, 1500);
  a.Start();
  b.Start();
  w.sim.RunUntil(Sec(10));
  const double collision_frac =
      static_cast<double>(w.medium.collisions()) / static_cast<double>(w.medium.exchanges());
  EXPECT_GT(collision_frac, 0.01);
  EXPECT_LT(collision_frac, 0.10);
}

}  // namespace
}  // namespace tbf::mac
