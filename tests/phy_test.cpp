#include <gtest/gtest.h>

#include "tbf/phy/channel.h"
#include "tbf/phy/rates.h"
#include "tbf/phy/timing.h"

namespace tbf::phy {
namespace {

TEST(RatesTest, TableIsConsistent) {
  for (int i = 0; i < kNumWifiRates; ++i) {
    const auto rate = static_cast<WifiRate>(i);
    const RateInfo& info = GetRateInfo(rate);
    EXPECT_EQ(info.rate, rate);
    EXPECT_GT(info.bps, 0);
    EXPECT_FALSE(info.name.empty());
  }
}

TEST(RatesTest, DsssLadderOrder) {
  const auto& ladder = DsssRates();
  for (size_t i = 1; i < ladder.size(); ++i) {
    EXPECT_LT(GetRateInfo(ladder[i - 1]).bps, GetRateInfo(ladder[i]).bps);
  }
}

TEST(RatesTest, OfdmLadderOrder) {
  const auto& ladder = OfdmRates();
  for (size_t i = 1; i < ladder.size(); ++i) {
    EXPECT_LT(GetRateInfo(ladder[i - 1]).bps, GetRateInfo(ladder[i]).bps);
  }
}

TEST(RatesTest, AckRateNeverExceedsDataRate) {
  for (int i = 0; i < kNumWifiRates; ++i) {
    const auto rate = static_cast<WifiRate>(i);
    EXPECT_LE(GetRateInfo(AckRateFor(rate)).bps, GetRateInfo(rate).bps);
  }
}

TEST(RatesTest, AckRatesMatchBasicSets) {
  EXPECT_EQ(AckRateFor(WifiRate::k1Mbps), WifiRate::k1Mbps);
  EXPECT_EQ(AckRateFor(WifiRate::k2Mbps), WifiRate::k2Mbps);
  EXPECT_EQ(AckRateFor(WifiRate::k5_5Mbps), WifiRate::k2Mbps);
  EXPECT_EQ(AckRateFor(WifiRate::k11Mbps), WifiRate::k2Mbps);
  EXPECT_EQ(AckRateFor(WifiRate::k54Mbps), WifiRate::k24Mbps);
  EXPECT_EQ(AckRateFor(WifiRate::k6Mbps), WifiRate::k6Mbps);
}

TEST(RatesTest, StepDownAndUpWalkTheLadder) {
  EXPECT_EQ(StepDown(WifiRate::k11Mbps), WifiRate::k5_5Mbps);
  EXPECT_EQ(StepDown(WifiRate::k1Mbps), WifiRate::k1Mbps);  // Floor.
  EXPECT_EQ(StepUp(WifiRate::k5_5Mbps), WifiRate::k11Mbps);
  EXPECT_EQ(StepUp(WifiRate::k11Mbps), WifiRate::k11Mbps);  // DSSS ceiling.
  EXPECT_EQ(StepUp(WifiRate::k54Mbps), WifiRate::k54Mbps);
  EXPECT_EQ(StepDown(WifiRate::k6Mbps), WifiRate::k6Mbps);
}

TEST(RatesTest, RateForSnrMonotone) {
  double last_bps = 0;
  for (double snr = 0.0; snr <= 30.0; snr += 1.0) {
    const WifiRate r = RateForSnr(snr, /*ofdm_capable=*/false);
    EXPECT_GE(static_cast<double>(GetRateInfo(r).bps), last_bps);
    last_bps = static_cast<double>(GetRateInfo(r).bps);
  }
}

TEST(RatesTest, RateForSnrSelectsExpectedTiers) {
  EXPECT_EQ(RateForSnr(0.0, false), WifiRate::k1Mbps);
  EXPECT_EQ(RateForSnr(13.0, false), WifiRate::k11Mbps);
  EXPECT_EQ(RateForSnr(30.0, true), WifiRate::k54Mbps);
}

TEST(TimingTest, DsssFrameAirtimeMatchesHandComputation) {
  // 1542-byte MAC frame at 11 Mbps: 192 us PLCP + 1542*8/11 us = 192 + 1121.45 us.
  const TimeNs t = FrameAirtime(1542, WifiRate::k11Mbps);
  EXPECT_EQ(t, Us(192) + TransmissionTime(1542, Mbps(11)));
  EXPECT_NEAR(ToMicros(t), 1313.5, 0.5);
  // Same frame at 1 Mbps: 192 + 12336 us.
  EXPECT_EQ(FrameAirtime(1542, WifiRate::k1Mbps), Us(192) + Us(12336));
}

TEST(TimingTest, OfdmFrameAirtimeUsesSymbolQuantization) {
  // 54 Mbps: 216 data bits/symbol. 1542 bytes -> 16+12336+6 = 12358 bits -> 58 symbols.
  const TimeNs t = FrameAirtime(1542, WifiRate::k54Mbps);
  EXPECT_EQ(t, Us(20) + 58 * Us(4));
  // 6 Mbps: 24 bits/symbol -> ceil(12358/24) = 515 symbols.
  EXPECT_EQ(FrameAirtime(1542, WifiRate::k6Mbps), Us(20) + 515 * Us(4));
}

TEST(TimingTest, AckAirtime) {
  // ACK for an 11 Mbps frame goes at 2 Mbps: 192 + 14*8/2 = 192 + 56 us.
  EXPECT_EQ(AckAirtime(WifiRate::k11Mbps), Us(248));
  // ACK for a 1 Mbps frame: 192 + 112 us.
  EXPECT_EQ(AckAirtime(WifiRate::k1Mbps), Us(304));
}

TEST(TimingTest, InterframeSpaces) {
  const MacTimings t = MixedModeTimings();
  EXPECT_EQ(t.Difs(), Us(50));
  EXPECT_EQ(t.sifs, Us(10));
  // EIFS = SIFS + ACK@1Mbps + DIFS = 10 + 304 + 50.
  EXPECT_EQ(t.Eifs(), Us(364));
  EXPECT_GT(t.Eifs(), t.Difs());
}

TEST(TimingTest, PureOfdmProfile) {
  const MacTimings t = PureOfdmTimings();
  EXPECT_EQ(t.slot, Us(9));
  EXPECT_EQ(t.cw_min, 15);
  EXPECT_EQ(t.Difs(), Us(28));
}

TEST(TimingTest, ExchangeAirtimeComposition) {
  const MacTimings t = MixedModeTimings();
  const TimeNs exchange = DataExchangeAirtime(1542, WifiRate::k11Mbps, t);
  EXPECT_EQ(exchange,
            FrameAirtime(1542, WifiRate::k11Mbps) + t.sifs + AckAirtime(WifiRate::k11Mbps));
}

TEST(TimingTest, AckTimeoutCoversAck) {
  const MacTimings t = MixedModeTimings();
  EXPECT_GT(AckTimeout(WifiRate::k11Mbps, t), t.sifs + AckAirtime(WifiRate::k11Mbps));
}

TEST(ChannelTest, PerfectChannelNeverLoses) {
  PerfectChannel ch;
  EXPECT_EQ(ch.FrameLossProb(1, 0, 1542, WifiRate::k11Mbps), 0.0);
}

TEST(ChannelTest, FixedPerLinkScalesWithSize) {
  FixedPerLink ch;
  ch.SetClientPer(1, 0.10);
  const double p_full = ch.FrameLossProb(1, kApId, 1500, WifiRate::k11Mbps);
  const double p_half = ch.FrameLossProb(1, kApId, 750, WifiRate::k11Mbps);
  EXPECT_NEAR(p_full, 0.10, 1e-9);
  EXPECT_LT(p_half, p_full);
  EXPECT_NEAR(p_half, 1.0 - std::sqrt(0.9), 1e-9);
  // Unconfigured link is lossless.
  EXPECT_EQ(ch.FrameLossProb(2, kApId, 1500, WifiRate::k11Mbps), 0.0);
}

TEST(ChannelTest, FixedPerBothDirections) {
  FixedPerLink ch;
  ch.SetClientPer(3, 0.05);
  EXPECT_GT(ch.FrameLossProb(3, kApId, 1500, WifiRate::k11Mbps), 0.0);
  EXPECT_GT(ch.FrameLossProb(kApId, 3, 1500, WifiRate::k11Mbps), 0.0);
}

TEST(PathLossTest, SnrDecreasesWithDistance) {
  PathLossModel model;
  EXPECT_GT(model.SnrDb(2.0), model.SnrDb(10.0));
  EXPECT_GT(model.SnrDb(10.0), model.SnrDb(30.0));
}

TEST(PathLossTest, WallsReduceSnr) {
  PathLossModel model;
  EXPECT_GT(model.SnrDb(10.0, 0, 0), model.SnrDb(10.0, 2, 0));
  EXPECT_GT(model.SnrDb(10.0, 2, 0), model.SnrDb(10.0, 0, 2));
}

TEST(PathLossTest, Exp1GeometryProducesRateDiversity) {
  // The paper's EXP-1: receivers at 4, 12, 26 and 30 feet, with 0/1/2 thin and 2 thick
  // walls; the far nodes should fall to low DSSS rates while the near node keeps 11 Mbps.
  PathLossModel model;
  const WifiRate near = model.RateAt(FeetToMeters(4), 0, 0, false);
  const WifiRate far = model.RateAt(FeetToMeters(30), 0, 2, false);
  EXPECT_EQ(near, WifiRate::k11Mbps);
  EXPECT_LT(GetRateInfo(far).bps, GetRateInfo(near).bps);
}

TEST(PathLossTest, FeetToMeters) { EXPECT_NEAR(FeetToMeters(10.0), 3.048, 1e-9); }

}  // namespace
}  // namespace tbf::phy
