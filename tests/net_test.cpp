// Tests for the network plumbing: wired link serialization, the transport demux, wireless
// host queueing/pause, and AP-side forwarding between the wireless and wired segments.
#include <gtest/gtest.h>

#include "tbf/ap/access_point.h"
#include "tbf/net/demux.h"
#include "tbf/net/host.h"
#include "tbf/net/udp.h"
#include "tbf/net/wired.h"
#include "tbf/phy/channel.h"
#include "tbf/sim/simulator.h"

namespace tbf::net {
namespace {

PacketPool& TestPool() {
  static PacketPool pool;
  return pool;
}

PacketPtr MakePacket(NodeId src, NodeId dst, NodeId client, int flow, int bytes = 1500) {
  PacketPtr p = TestPool().Allocate();
  p->src = src;
  p->dst = dst;
  p->wlan_client = client;
  p->flow_id = flow;
  p->size_bytes = bytes;
  return p;
}

TEST(WiredLinkTest, DeliversWithSerializationAndDelay) {
  sim::Simulator sim;
  WiredLink link(&sim, Mbps(100), Us(500));
  std::vector<TimeNs> arrivals;
  link.SetTowardServer([&](PacketPtr) { arrivals.push_back(sim.Now()); });
  link.SendTowardServer(MakePacket(1, kServerId, 1, 1, 1500));
  sim.RunUntilIdle();
  ASSERT_EQ(arrivals.size(), 1u);
  // 1500 B at 100 Mbps = 120 us, plus 500 us propagation.
  EXPECT_EQ(arrivals[0], Us(620));
}

TEST(WiredLinkTest, BackToBackPacketsSerialize) {
  sim::Simulator sim;
  WiredLink link(&sim, Mbps(100), Us(0));
  std::vector<TimeNs> arrivals;
  link.SetTowardServer([&](PacketPtr) { arrivals.push_back(sim.Now()); });
  for (int i = 0; i < 3; ++i) {
    link.SendTowardServer(MakePacket(1, kServerId, 1, 1, 1500));
  }
  sim.RunUntilIdle();
  ASSERT_EQ(arrivals.size(), 3u);
  EXPECT_EQ(arrivals[1] - arrivals[0], Us(120));
  EXPECT_EQ(arrivals[2] - arrivals[1], Us(120));
}

TEST(WiredLinkTest, DirectionsAreIndependent) {
  sim::Simulator sim;
  WiredLink link(&sim, Mbps(100), Us(100));
  int to_server = 0;
  int to_ap = 0;
  link.SetTowardServer([&](PacketPtr) { ++to_server; });
  link.SetTowardAp([&](PacketPtr) { ++to_ap; });
  link.SendTowardServer(MakePacket(1, kServerId, 1, 1));
  link.SendTowardAp(MakePacket(kServerId, 1, 1, 1));
  sim.RunUntilIdle();
  EXPECT_EQ(to_server, 1);
  EXPECT_EQ(to_ap, 1);
}

TEST(WiredLinkTest, QueueLimitDrops) {
  sim::Simulator sim;
  WiredLink link(&sim, Kbps(64), Ms(1), /*queue_limit=*/2);
  int delivered = 0;
  link.SetTowardServer([&](PacketPtr) { ++delivered; });
  for (int i = 0; i < 10; ++i) {
    link.SendTowardServer(MakePacket(1, kServerId, 1, 1, 1500));
  }
  sim.RunUntilIdle();
  EXPECT_GT(link.drops(), 0);
  EXPECT_LT(delivered, 10);
}

TEST(DemuxTest, RoutesByNodeAndFlow) {
  struct Capture : PacketHandler {
    void HandlePacket(const PacketPtr&) override { ++count; }
    int count = 0;
  };
  Demux demux;
  Capture a;
  Capture b;
  demux.Register(1, 7, &a);
  demux.Register(2, 7, &b);
  demux.Deliver(1, MakePacket(kServerId, 1, 1, 7));
  demux.Deliver(2, MakePacket(kServerId, 2, 2, 7));
  demux.Deliver(1, MakePacket(kServerId, 1, 1, 99));  // Unknown flow: dropped silently.
  EXPECT_EQ(a.count, 1);
  EXPECT_EQ(b.count, 1);
}

TEST(UdpSinkTest, DeduplicatesBySequence) {
  UdpSink sink;
  auto p1 = MakeUdpPacket(TestPool(), kServerId, 1, 1, 1, 1500, /*seq=*/0, 0);
  auto p2 = MakeUdpPacket(TestPool(), kServerId, 1, 1, 1, 1500, /*seq=*/1, 0);
  sink.HandlePacket(p1);
  sink.HandlePacket(p1);  // MAC-level duplicate.
  sink.HandlePacket(p2);
  EXPECT_EQ(sink.packets(), 2);
  EXPECT_EQ(sink.payload_bytes(), 2 * (1500 - kIpUdpHeaderBytes));
}

TEST(UdpSourceTest, EmitsAtConfiguredRate) {
  sim::Simulator sim;
  FlowAddress addr;
  addr.flow_id = 1;
  addr.sender = kServerId;
  addr.receiver = 1;
  addr.wlan_client = 1;
  int64_t sent_bytes = 0;
  UdpSource source(&sim, &TestPool(), addr,
                   [&](PacketPtr p) { sent_bytes += p->size_bytes; }, Mbps(2), 1500);
  source.Start();
  sim.RunUntil(Sec(5));
  EXPECT_NEAR(static_cast<double>(sent_bytes) * 8.0 / 5.0, 2e6, 0.05e6);
}

TEST(UdpSourceTest, BoundedTaskSendsExactPayload) {
  sim::Simulator sim;
  FlowAddress addr;
  addr.flow_id = 1;
  int sent = 0;
  int64_t payload = 0;
  const int64_t task = 7 * (1500 - kIpUdpHeaderBytes);
  UdpSource source(&sim, &TestPool(), addr,
                   [&](PacketPtr p) {
                     ++sent;
                     payload += p->PayloadBytes();
                   },
                   Mbps(10), 1500, task);
  source.Start();
  sim.RunUntil(Sec(5));
  EXPECT_EQ(sent, 7);
  EXPECT_EQ(payload, task);
}

TEST(UdpSourceTest, OddTaskSizeTrimsFinalDatagram) {
  sim::Simulator sim;
  FlowAddress addr;
  addr.flow_id = 1;
  int sent = 0;
  int64_t payload = 0;
  int last_size = 0;
  // Not a multiple of the 1472-byte payload: the old floor-division packet count
  // silently under-sent this task by 1000 bytes.
  const int64_t task = 2 * (1500 - kIpUdpHeaderBytes) + 1000;
  UdpSource source(&sim, &TestPool(), addr,
                   [&](PacketPtr p) {
                     ++sent;
                     payload += p->PayloadBytes();
                     last_size = p->size_bytes;
                   },
                   Mbps(10), 1500, task);
  source.Start();
  sim.RunUntil(Sec(5));
  EXPECT_EQ(sent, 3);
  EXPECT_EQ(payload, task);
  EXPECT_EQ(last_size, 1000 + kIpUdpHeaderBytes);
}

TEST(UdpSourceTest, AddTaskResumesDrainedSource) {
  sim::Simulator sim;
  FlowAddress addr;
  addr.flow_id = 1;
  int64_t payload = 0;
  int64_t max_seq = -1;
  UdpSource source(&sim, &TestPool(), addr,
                   [&](PacketPtr p) {
                     payload += p->PayloadBytes();
                     max_seq = std::max(max_seq, p->seq);
                   },
                   Mbps(10), 1500, /*task_payload_bytes=*/500);
  source.Start();
  sim.RunUntil(Sec(1));
  EXPECT_EQ(payload, 500);
  source.AddTask(2000);  // Restart for the next flow in the sequence.
  sim.RunUntil(Sec(2));
  EXPECT_EQ(payload, 2500);
  EXPECT_EQ(max_seq + 1, source.packets_sent());  // Seq numbering continued.
}

// ---- Host + AP forwarding over a live medium -------------------------------------------

struct Cell {
  Cell() : rng(1), medium(&sim, phy::MixedModeTimings(), &loss, &rng) {}

  sim::Simulator sim;
  sim::Rng rng;
  phy::PerfectChannel loss;
  mac::Medium medium;
  Demux demux;
};

TEST(WirelessHostTest, UplinkPacketReachesServerThroughAp) {
  Cell cell;
  rateadapt::FixedRateController ap_rates(phy::WifiRate::k11Mbps);
  ap::AccessPoint ap(&cell.sim, &cell.medium, std::make_unique<ap::FifoQdisc>(), &ap_rates);
  WiredLink link(&cell.sim, Mbps(100), Us(500));
  ap.ConnectWired(&link);
  WiredHost server(&cell.sim, kServerId, &cell.demux, &link);

  struct Capture : PacketHandler {
    void HandlePacket(const PacketPtr& p) override { last = p; }
    PacketPtr last;
  } capture;
  cell.demux.Register(kServerId, 5, &capture);

  WirelessHost host(&cell.sim, &cell.medium, 1,
                    std::make_unique<rateadapt::FixedRateController>(phy::WifiRate::k11Mbps),
                    &cell.demux);
  host.SendPacket(MakePacket(1, kServerId, 1, 5));
  cell.sim.RunUntil(Sec(1));

  ASSERT_NE(capture.last, nullptr);
  EXPECT_EQ(capture.last->src, 1);
  EXPECT_EQ(ap.forwarded_uplink(), 1);
}

TEST(WirelessHostTest, DownlinkPacketReachesClientThroughAp) {
  Cell cell;
  rateadapt::FixedRateController ap_rates(phy::WifiRate::k11Mbps);
  ap::AccessPoint ap(&cell.sim, &cell.medium, std::make_unique<ap::FifoQdisc>(), &ap_rates);
  WiredLink link(&cell.sim, Mbps(100), Us(500));
  ap.ConnectWired(&link);
  link.SetTowardAp([&](PacketPtr p) { ap.EnqueueDownlink(std::move(p)); });
  WiredHost server(&cell.sim, kServerId, &cell.demux, &link);

  struct Capture : PacketHandler {
    void HandlePacket(const PacketPtr& p) override { ++count; }
    int count = 0;
  } capture;
  cell.demux.Register(1, 5, &capture);

  WirelessHost host(&cell.sim, &cell.medium, 1,
                    std::make_unique<rateadapt::FixedRateController>(phy::WifiRate::k11Mbps),
                    &cell.demux);
  server.SendPacket(MakePacket(kServerId, 1, 1, 5));
  cell.sim.RunUntil(Sec(1));
  EXPECT_EQ(capture.count, 1);
}

TEST(WirelessHostTest, QueueLimitDropsUplink) {
  Cell cell;
  WirelessHost host(&cell.sim, &cell.medium, 1,
                    std::make_unique<rateadapt::FixedRateController>(phy::WifiRate::k11Mbps),
                    &cell.demux, /*queue_limit=*/3);
  // No AP attached: packets sit in the queue. The first send is pulled straight into the
  // MAC's pending slot, so the queue holds the next three and the fifth is dropped.
  for (int i = 0; i < 5; ++i) {
    host.SendPacket(MakePacket(1, kServerId, 1, 5));
  }
  EXPECT_EQ(host.queued(), 3u);
  EXPECT_EQ(host.drops(), 1);
}

TEST(WirelessHostTest, PauseDefersUplink) {
  Cell cell;
  rateadapt::FixedRateController ap_rates(phy::WifiRate::k11Mbps);
  ap::AccessPoint ap(&cell.sim, &cell.medium, std::make_unique<ap::FifoQdisc>(), &ap_rates);
  WiredLink link(&cell.sim, Mbps(100), Us(100));
  ap.ConnectWired(&link);
  WiredHost server(&cell.sim, kServerId, &cell.demux, &link);

  struct Capture : PacketHandler {
    void HandlePacket(const PacketPtr&) override { arrival = now ? *now : -1; }
    TimeNs arrival = -1;
    const TimeNs* now = nullptr;
  } capture;
  cell.demux.Register(kServerId, 5, &capture);

  WirelessHost host(&cell.sim, &cell.medium, 1,
                    std::make_unique<rateadapt::FixedRateController>(phy::WifiRate::k11Mbps),
                    &cell.demux);
  host.PauseUplinkUntil(Ms(50));
  host.SendPacket(MakePacket(1, kServerId, 1, 5));

  cell.sim.RunUntil(Ms(49));
  EXPECT_EQ(host.queued(), 1u);  // Still held.
  cell.sim.RunUntil(Ms(100));
  EXPECT_EQ(host.queued(), 0u);  // Released after the pause.
}

TEST(AccessPointTest, RelaysClientToClient) {
  Cell cell;
  rateadapt::FixedRateController ap_rates(phy::WifiRate::k11Mbps);
  ap::AccessPoint ap(&cell.sim, &cell.medium, std::make_unique<ap::FifoQdisc>(), &ap_rates);

  struct Capture : PacketHandler {
    void HandlePacket(const PacketPtr&) override { ++count; }
    int count = 0;
  } capture;
  cell.demux.Register(2, 5, &capture);

  WirelessHost sender(&cell.sim, &cell.medium, 1,
                      std::make_unique<rateadapt::FixedRateController>(phy::WifiRate::k11Mbps),
                      &cell.demux);
  WirelessHost receiver(&cell.sim, &cell.medium, 2,
                        std::make_unique<rateadapt::FixedRateController>(phy::WifiRate::k11Mbps),
                        &cell.demux);
  auto p = MakePacket(1, 2, 2, 5);  // Accounted to the destination client.
  sender.SendPacket(std::move(p));
  cell.sim.RunUntil(Sec(1));
  EXPECT_EQ(capture.count, 1);
}

TEST(SnrLossTest, LossRisesWithRateAtFixedSnr) {
  phy::SnrLossModel model;
  model.SetClientSnr(1, 9.0);
  const double at_2 = model.FrameLossProb(1, kApId, 1500, phy::WifiRate::k2Mbps);
  const double at_55 = model.FrameLossProb(1, kApId, 1500, phy::WifiRate::k5_5Mbps);
  const double at_11 = model.FrameLossProb(1, kApId, 1500, phy::WifiRate::k11Mbps);
  EXPECT_LT(at_2, at_55);
  EXPECT_LT(at_55, at_11);
  EXPECT_GT(at_11, 0.8);  // 3 dB below the 11 Mbps floor: effectively unusable.
  EXPECT_LT(at_2, 0.05);  // 4 dB above the 2 Mbps floor: clean.
}

TEST(SnrLossTest, UnknownClientIsLossless) {
  phy::SnrLossModel model;
  EXPECT_EQ(model.FrameLossProb(9, kApId, 1500, phy::WifiRate::k11Mbps), 0.0);
  EXPECT_FALSE(model.HasClient(9));
}

TEST(SnrLossTest, SmallFramesSurviveBetter) {
  phy::SnrLossModel model;
  model.SetClientSnr(1, 12.5);
  const double big = model.FrameLossProb(1, kApId, 1500, phy::WifiRate::k11Mbps);
  const double small = model.FrameLossProb(1, kApId, 100, phy::WifiRate::k11Mbps);
  EXPECT_LT(small, big);
}

}  // namespace
}  // namespace tbf::net
