// Scenario traffic models: exact finite-task accounting (TCP and UDP deliver precisely
// task_bytes, including odd sizes and sub-packet tasks - the UDP floor-division
// regression), stagger/warmup-independent task timing, task sequences, web on/off
// sources, agreement with the fluid task model, and sweep determinism of the new
// scenario kinds across pool sizes.
#include <algorithm>
#include <cstdint>

#include <gtest/gtest.h>

#include "tbf/model/baseline.h"
#include "tbf/model/task_model.h"
#include "tbf/scenario/wlan.h"
#include "tbf/sweep/sweep_runner.h"

namespace tbf::scenario {
namespace {

ScenarioConfig QuietCell(TimeNs duration = Sec(20)) {
  ScenarioConfig config;
  config.qdisc = QdiscKind::kFifo;
  config.warmup = 0;  // Task timing needs the full event horizon, not a stats window.
  config.duration = duration;
  return config;
}

const FlowResult& SingleFlow(const Results& res) {
  EXPECT_EQ(res.flows.size(), 1u);
  return res.flows.front();
}

// ---- Exact task delivery ---------------------------------------------------------------

class TaskExactnessTest : public ::testing::TestWithParam<int64_t> {};

TEST_P(TaskExactnessTest, TcpTaskDeliversExactBytes) {
  Wlan wlan(QuietCell());
  wlan.AddStation(1, phy::WifiRate::k11Mbps);
  auto& flow = wlan.AddBulkTcp(1, Direction::kUplink);
  flow.task_bytes = GetParam();
  const Results res = wlan.Run();
  const FlowResult& fr = SingleFlow(res);
  EXPECT_EQ(fr.bytes_delivered, GetParam());
  EXPECT_GT(fr.completion_time, 0);
}

TEST_P(TaskExactnessTest, UdpTaskDeliversExactBytes) {
  // Regression for the floor-division under-send: any size that is not a multiple of
  // the 1472-byte payload lost its remainder; sub-packet tasks sent nothing at all.
  Wlan wlan(QuietCell());
  wlan.AddStation(1, phy::WifiRate::k11Mbps);
  FlowSpec spec;
  spec.client = 1;
  spec.direction = Direction::kUplink;
  spec.transport = Transport::kUdp;
  spec.udp_rate = Mbps(2);  // Below capacity so nothing drops.
  spec.task_bytes = GetParam();
  wlan.AddFlow(spec);
  const Results res = wlan.Run();
  const FlowResult& fr = SingleFlow(res);
  EXPECT_EQ(fr.bytes_delivered, GetParam());
  EXPECT_GT(fr.completion_time, 0);
}

INSTANTIATE_TEST_SUITE_P(Sizes, TaskExactnessTest,
                         ::testing::Values<int64_t>(300,        // Smaller than one packet.
                                                    1'000'001,  // Odd, no multiple fits.
                                                    1'472'000),
                         [](const auto& info) {
                           return "bytes" + std::to_string(info.param);
                         });

// ---- Stagger / warmup independence -----------------------------------------------------

TEST(TaskTimingTest, UdpTaskTimeIndependentOfStartStagger) {
  auto run = [](TimeNs start) {
    Wlan wlan(QuietCell());
    wlan.AddStation(1, phy::WifiRate::k11Mbps);
    FlowSpec spec;
    spec.client = 1;
    spec.direction = Direction::kUplink;
    spec.transport = Transport::kUdp;
    spec.udp_rate = Mbps(2);
    spec.task_bytes = 400'000;
    spec.start = start;
    wlan.AddFlow(spec);
    return SingleFlow(wlan.Run()).completion_time;
  };
  const TimeNs base = run(0);
  EXPECT_GT(base, 0);
  // Completion is relative to the flow's actual (staggered) start, so shifting the
  // start leaves the reported task time untouched.
  EXPECT_EQ(run(Ms(13)), base);
  EXPECT_EQ(run(Ms(977)), base);
}

TEST(TaskTimingTest, TcpTaskTimeIndependentOfWarmup) {
  auto run = [](TimeNs warmup, TimeNs start) {
    ScenarioConfig config = QuietCell(Sec(20));
    config.warmup = warmup;
    Wlan wlan(config);
    wlan.AddStation(1, phy::WifiRate::k11Mbps);
    auto& flow = wlan.AddBulkTcp(1, Direction::kUplink);
    flow.task_bytes = 2'000'000;
    flow.start = start;
    return SingleFlow(wlan.Run()).completion_time;
  };
  const TimeNs base = run(0, 0);
  EXPECT_GT(base, 0);
  // A start inside the warmup window used to shift the reported completion; now the
  // warmup boundary only frames the goodput window.
  EXPECT_EQ(run(Sec(2), 0), base);
  EXPECT_EQ(run(Sec(2), Ms(500)), base);
}

// ---- Task sequences --------------------------------------------------------------------

TEST(TaskSequenceTest, ReportsOneCompletionPerTask) {
  Wlan wlan(QuietCell(Sec(30)));
  wlan.AddStation(1, phy::WifiRate::k11Mbps);
  wlan.AddTaskSequence(1, Direction::kUplink, 1'000'000, /*count=*/3);
  const Results res = wlan.Run();
  const FlowResult& fr = SingleFlow(res);
  ASSERT_EQ(fr.task_completions.size(), 3u);
  EXPECT_TRUE(std::is_sorted(fr.task_completions.begin(), fr.task_completions.end()));
  EXPECT_EQ(fr.completion_time, fr.task_completions.back());
  // Back-to-back (no gap): per-task durations partition the total completion time.
  ASSERT_EQ(fr.task_durations.size(), 3u);
  TimeNs duration_sum = 0;
  for (const TimeNs d : fr.task_durations) {
    EXPECT_GT(d, 0);
    duration_sum += d;
  }
  EXPECT_EQ(duration_sum, fr.task_completions.back());
  // Back-to-back transfers on a warm connection: the whole sequence delivers exactly
  // 3x the task size.
  EXPECT_EQ(fr.bytes_delivered, 3'000'000);
  EXPECT_EQ(res.tasks_completed, 3);
  EXPECT_NEAR(res.final_task_time_sec, ToSeconds(fr.task_completions.back()), 1e-12);
}

TEST(TaskSequenceTest, UdpSequenceDeliversEveryTaskExactly) {
  Wlan wlan(QuietCell(Sec(30)));
  wlan.AddStation(1, phy::WifiRate::k11Mbps);
  FlowSpec spec;
  spec.client = 1;
  spec.direction = Direction::kDownlink;
  spec.transport = Transport::kUdp;
  spec.udp_rate = Mbps(2);
  spec.model = TrafficModel::kTaskSequence;
  spec.task_bytes = 333'333;  // Odd on purpose.
  spec.task_count = 4;
  spec.task_gap = Ms(250);
  wlan.AddFlow(spec);
  const Results res = wlan.Run();
  const FlowResult& fr = SingleFlow(res);
  ASSERT_EQ(fr.task_completions.size(), 4u);
  EXPECT_EQ(fr.bytes_delivered, 4 * 333'333);
}

TEST(TaskSequenceTest, AppLimitHoldsAcrossSequencedTasks) {
  // The app-rate cap must keep biting after an idle gap: production credit must not
  // accrue while the flow waits for the next task, or the follow-up transfer releases
  // as one burst at full link rate.
  Wlan wlan(QuietCell(Sec(30)));
  wlan.AddStation(1, phy::WifiRate::k11Mbps);
  auto& flow = wlan.AddTaskSequence(1, Direction::kUplink, 500'000, /*count=*/2);
  flow.task_gap = Sec(2);
  flow.app_limit_bps = Mbps(2);
  const Results res = wlan.Run();
  const FlowResult& fr = SingleFlow(res);
  ASSERT_EQ(fr.task_durations.size(), 2u);
  // 500 KB at 2 Mbps needs 2.0 s; allow the initial burst allowance to shave a little.
  for (const TimeNs d : fr.task_durations) {
    EXPECT_GT(d, Ms(1800));
  }
}

// ---- Web on/off sources ----------------------------------------------------------------

TEST(WebOnOffTest, AlternatesTransfersAndThinkTimes) {
  ScenarioConfig config = QuietCell(Sec(60));
  Wlan wlan(config);
  wlan.AddStation(1, phy::WifiRate::k11Mbps);
  auto& flow = wlan.AddWebOnOff(1, Direction::kDownlink);
  flow.onoff.mean_flow_bytes = 64.0 * 1024.0;
  flow.onoff.mean_think_sec = 1.0;
  const Results res = wlan.Run();
  const FlowResult& fr = SingleFlow(res);
  // With ~64 KB transfers and 1 s think times, a 60 s cell sees many completed tasks.
  EXPECT_GT(fr.task_completions.size(), 10u);
  EXPECT_GT(fr.bytes_delivered, 0);
  EXPECT_EQ(res.tasks_completed,
            static_cast<int64_t>(fr.task_completions.size()));
  // Downloads exclude the think times, so their sum stays well below the horizon the
  // completions span.
  ASSERT_EQ(fr.task_durations.size(), fr.task_completions.size());
  TimeNs download_sum = 0;
  for (const TimeNs d : fr.task_durations) {
    EXPECT_GT(d, 0);
    download_sum += d;
  }
  EXPECT_LT(download_sum, fr.task_completions.back());
  // On/off completions embed think times, so they stay out of the Table 1 aggregates.
  EXPECT_EQ(res.avg_task_time_sec, 0.0);
  EXPECT_EQ(res.final_task_time_sec, 0.0);
}

// ---- Packet level vs fluid task model --------------------------------------------------

TEST(TaskModelAgreementTest, PacketLevelMatchesFluidOnTable1Config) {
  // Table 1 equal-work configuration: a 1 Mbps and an 11 Mbps station, one 4 MB task
  // each, under throughput fairness (stock FIFO). The packet-level task times should
  // track the fluid model's within 10%.
  const auto& betas = model::PaperTable2Baselines();
  const std::vector<model::Task> tasks = {{betas.at(phy::WifiRate::k1Mbps), 4e6, 1.0},
                                          {betas.at(phy::WifiRate::k11Mbps), 4e6, 1.0}};
  const model::TaskOutcome fluid =
      model::RunTaskModel(tasks, model::FairnessNotion::kThroughputFair);

  ScenarioConfig config = QuietCell(Sec(120));
  Wlan wlan(config);
  wlan.AddStation(1, phy::WifiRate::k1Mbps);
  wlan.AddStation(2, phy::WifiRate::k11Mbps);
  wlan.AddTaskSequence(1, Direction::kUplink, 4'000'000, 1);
  wlan.AddTaskSequence(2, Direction::kUplink, 4'000'000, 1);
  const Results res = wlan.Run();

  ASSERT_EQ(res.tasks_completed, 2);
  EXPECT_NEAR(res.avg_task_time_sec / fluid.avg_task_time_sec, 1.0, 0.10);
  EXPECT_NEAR(res.final_task_time_sec / fluid.final_task_time_sec, 1.0, 0.10);
}

// ---- Sweep determinism of the new scenario kinds ---------------------------------------

std::vector<sweep::ScenarioJob> TrafficModelGrid() {
  std::vector<sweep::ScenarioJob> jobs;
  for (const QdiscKind qdisc : {QdiscKind::kFifo, QdiscKind::kTbr}) {
    sweep::ScenarioJob job;
    job.config.qdisc = qdisc;
    job.config.warmup = 0;
    job.config.duration = Sec(15);
    job.config.seed = qdisc == QdiscKind::kFifo ? 3 : 4;
    for (NodeId id = 1; id <= 3; ++id) {
      StationSpec station;
      station.id = id;
      station.rate = id == 1 ? phy::WifiRate::k1Mbps : phy::WifiRate::k11Mbps;
      job.stations.push_back(station);
    }
    FlowSpec onoff;
    onoff.client = 1;
    onoff.direction = Direction::kDownlink;
    onoff.model = TrafficModel::kOnOffWeb;
    onoff.onoff.mean_flow_bytes = 96.0 * 1024.0;
    onoff.onoff.mean_think_sec = 1.5;
    job.flows.push_back(onoff);

    FlowSpec seq;
    seq.client = 2;
    seq.direction = Direction::kUplink;
    seq.model = TrafficModel::kTaskSequence;
    seq.task_bytes = 750'000;
    seq.task_count = 3;
    seq.task_gap = Ms(100);
    job.flows.push_back(seq);

    FlowSpec udp_seq;
    udp_seq.client = 3;
    udp_seq.direction = Direction::kDownlink;
    udp_seq.transport = Transport::kUdp;
    udp_seq.udp_rate = Mbps(2);
    udp_seq.model = TrafficModel::kTaskSequence;
    udp_seq.task_bytes = 300'001;
    udp_seq.task_count = 2;
    job.flows.push_back(udp_seq);
    jobs.push_back(std::move(job));
  }
  return jobs;
}

TEST(TrafficModelSweepTest, OnOffAndSequencesBitIdenticalAcrossPoolSizes) {
  const std::vector<sweep::ScenarioJob> jobs = TrafficModelGrid();
  sweep::SweepRunner serial(1);
  const std::vector<Results> reference = serial.RunScenarios(jobs);
  ASSERT_EQ(reference.size(), jobs.size());
  for (const Results& r : reference) {
    EXPECT_GT(r.tasks_completed, 0);  // The grid exercises the new task paths.
    EXPECT_GT(r.aggregate_bps, 0.0);
  }
  for (int pool_size : {2, 4}) {
    sweep::SweepRunner parallel(pool_size);
    const std::vector<Results> out = parallel.RunScenarios(jobs);
    ASSERT_EQ(out.size(), reference.size());
    for (size_t i = 0; i < out.size(); ++i) {
      EXPECT_EQ(out[i], reference[i]) << "pool=" << pool_size << " job=" << i;
    }
  }
}

}  // namespace
}  // namespace tbf::scenario
