// Proves the packet path's zero-allocation steady state and the PacketPool's
// refcount/reuse/generation semantics.
//
// Like tests/sim_alloc_test.cpp, this binary replaces global operator new/delete with
// counting versions (the test-local allocation-counting harness), so it must stay its
// own executable. The headline tests pin that a saturated 64-station TBR second and a
// TCP-uplink second perform no heap allocation at all once warm - every packet is a
// pool freelist pop, every queue hop an intrusive-list splice, every event a slab slot.
// A SweepRunner test pins the per-scenario-pool claim: concurrent workers each own
// their pool and produce bit-identical Results for any pool size (the TSan CTest
// configuration runs it under ThreadSanitizer; counters are atomic for that reason).
#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include <gtest/gtest.h>

#include "tbf/net/packet.h"
#include "tbf/scenario/wlan.h"
#include "tbf/sweep/sweep_runner.h"
#include "tbf/util/units.h"

namespace {

std::atomic<int64_t> g_news{0};
std::atomic<int64_t> g_deletes{0};

}  // namespace

void* operator new(std::size_t size) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) {
    return p;
  }
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept {
  g_deletes.fetch_add(1, std::memory_order_relaxed);
  std::free(p);
}

void operator delete(void* p, std::size_t) noexcept { ::operator delete(p); }
void operator delete[](void* p) noexcept { ::operator delete(p); }
void operator delete[](void* p, std::size_t) noexcept { ::operator delete(p); }

namespace tbf {
namespace {

TEST(PacketPoolTest, RefcountAndGenerationSemantics) {
  net::PacketPool pool;
  net::PacketPtr a = pool.Allocate();
  net::Packet* raw = a.get();
  const uint32_t generation = raw->generation;
  EXPECT_EQ(pool.live(), 1u);
  EXPECT_EQ(raw->refs, 1u);

  {
    net::PacketPtr b = a;  // Copy: non-atomic refcount bump, same slot.
    EXPECT_EQ(raw->refs, 2u);
    EXPECT_EQ(b.get(), raw);
  }
  EXPECT_EQ(raw->refs, 1u) << "copy destruction must drop exactly one reference";
  EXPECT_EQ(pool.live(), 1u) << "slot must stay live while a handle exists";

  a.reset();
  EXPECT_EQ(pool.live(), 0u);
  EXPECT_EQ(raw->generation, generation + 1) << "release bumps the generation tag";

  // LIFO freelist reuse: the next allocation hands the same slot back, with the wire
  // fields reset to fresh-packet defaults (reuse must be indistinguishable from new).
  net::PacketPtr c = pool.Allocate();
  EXPECT_EQ(c.get(), raw);
  EXPECT_EQ(c->src, kInvalidNodeId);
  EXPECT_EQ(c->wlan_client, kInvalidNodeId);
  EXPECT_EQ(c->flow_id, -1);
  EXPECT_EQ(c->size_bytes, 0);
  EXPECT_EQ(c->seq, 0);
  EXPECT_EQ(c->ap_enqueued, -1);
  EXPECT_EQ(c->refs, 1u);
}

TEST(PacketPoolTest, DetachAdoptTransfersTheReference) {
  net::PacketPool pool;
  net::PacketPtr a = pool.Allocate();
  net::Packet* raw = a.Detach();  // Ownership leaves the handle, ref stays counted.
  EXPECT_EQ(a.get(), nullptr);
  EXPECT_EQ(raw->refs, 1u);
  EXPECT_EQ(pool.live(), 1u);

  net::Packet* extra = net::PacketPtr::Adopt(raw).DetachCopy();  // +1 then detach again.
  EXPECT_EQ(extra, raw);
  EXPECT_EQ(raw->refs, 1u);  // Adopt temporary released its ref; DetachCopy's survives.
  net::PacketPtr::Adopt(extra).reset();
  EXPECT_EQ(pool.live(), 0u);
}

TEST(PacketPoolTest, ChunkGrowthKeepsAddressesStable) {
  net::PacketPool pool;
  std::vector<net::PacketPtr> held;
  held.reserve(3 * net::PacketPool::kChunkSize);
  for (size_t i = 0; i < 3 * net::PacketPool::kChunkSize; ++i) {
    held.push_back(pool.Allocate());
    held.back()->seq = static_cast<int64_t>(i);
  }
  EXPECT_EQ(pool.slots(), 3 * net::PacketPool::kChunkSize);
  for (size_t i = 0; i < held.size(); ++i) {
    EXPECT_EQ(held[i]->seq, static_cast<int64_t>(i)) << "chunk moved under a live handle";
  }
  held.clear();
  EXPECT_EQ(pool.live(), 0u);
  EXPECT_EQ(pool.slots(), 3 * net::PacketPool::kChunkSize) << "slots are reused, not freed";
}

TEST(PacketFifoTest, FifoOrderWithoutRefcountTraffic) {
  net::PacketPool pool;
  net::PacketFifo fifo;
  for (int i = 0; i < 5; ++i) {
    net::PacketPtr p = pool.Allocate();
    p->seq = i;
    fifo.PushBack(std::move(p));
  }
  EXPECT_EQ(fifo.size(), 5u);
  EXPECT_EQ(fifo.front()->seq, 0);
  for (int i = 0; i < 5; ++i) {
    net::PacketPtr p = fifo.PopFront();
    EXPECT_EQ(p->seq, i);
    EXPECT_EQ(p->refs, 1u) << "the list holds the handle's reference, not a copy";
  }
  EXPECT_TRUE(fifo.empty());

  // Clear releases everything back to the pool.
  fifo.PushBack(pool.Allocate());
  fifo.PushBack(pool.Allocate());
  fifo.Clear();
  EXPECT_EQ(pool.live(), 0u);
}

// Saturated 64-station TBR cell, downlink UDP above capacity: AP queues full, drop-tail
// active, FILL/ADJUST timers running - the packet path's worst case. After a two-second
// warmup every structure (packet pool, event slab, wheel, qdisc tables, meters,
// sketches) has reached its working-set size; a further simulated second must perform
// zero heap allocations and grow neither the packet pool nor the event slab.
TEST(PacketPoolAllocTest, SaturatedUdpTbrSecondIsAllocationFree) {
  scenario::ScenarioConfig config;
  config.qdisc = scenario::QdiscKind::kTbr;
  scenario::Wlan wlan(config);
  for (NodeId id = 1; id <= 64; ++id) {
    wlan.AddStation(id, phy::WifiRate::k11Mbps);
    wlan.AddSaturatingUdp(id, scenario::Direction::kDownlink);
  }
  wlan.BuildNow();
  sim::Simulator& sim = wlan.simulator();
  sim.RunUntil(Sec(2));

  const size_t pool_slots = wlan.packet_pool().slots();
  const size_t event_slots = sim.event_pool_slots();
  const int64_t news_before = g_news.load();
  const int64_t deletes_before = g_deletes.load();
  sim.RunUntil(Sec(3));
  EXPECT_EQ(g_news.load(), news_before) << "packet path allocated in steady state";
  EXPECT_EQ(g_deletes.load(), deletes_before);
  EXPECT_EQ(wlan.packet_pool().slots(), pool_slots) << "packet pool grew in steady state";
  EXPECT_EQ(sim.event_pool_slots(), event_slots);
  EXPECT_GT(wlan.packet_pool().slots(), 0u);
}

// TCP counterpart: 8 saturated uplink flows (ack clocking, delayed acks, lazy RTO/delack
// timers, pooled segments and acks). Steady state must also be allocation-free.
TEST(PacketPoolAllocTest, SaturatedTcpUplinkSecondIsAllocationFree) {
  scenario::ScenarioConfig config;
  scenario::Wlan wlan(config);
  for (NodeId id = 1; id <= 8; ++id) {
    wlan.AddStation(id, phy::WifiRate::k11Mbps);
    wlan.AddBulkTcp(id, scenario::Direction::kUplink);
  }
  wlan.BuildNow();
  sim::Simulator& sim = wlan.simulator();
  sim.RunUntil(Sec(2));

  const size_t pool_slots = wlan.packet_pool().slots();
  const int64_t news_before = g_news.load();
  sim.RunUntil(Sec(3));
  EXPECT_EQ(g_news.load(), news_before) << "TCP packet path allocated in steady state";
  EXPECT_EQ(wlan.packet_pool().slots(), pool_slots);
}

// Per-scenario-pool claim under the sweep runner: each worker's Wlan owns its own
// PacketPool, so concurrent grids are race-free (TSan enforces) and the Results are
// bit-identical to the serial run for any pool size.
TEST(PacketPoolSweepTest, PooledScenariosAreBitIdenticalAcrossPoolSizes) {
  auto make_jobs = [] {
    std::vector<sweep::ScenarioJob> jobs;
    for (int variant = 0; variant < 6; ++variant) {
      sweep::ScenarioJob job;
      job.config.qdisc =
          variant % 2 == 0 ? scenario::QdiscKind::kTbr : scenario::QdiscKind::kFifo;
      job.config.warmup = 0;
      job.config.duration = Sec(1);
      job.config.seed = static_cast<uint64_t>(variant + 1);
      for (NodeId id = 1; id <= 4; ++id) {
        scenario::StationSpec station;
        station.id = id;
        station.rate = id % 2 == 0 ? phy::WifiRate::k11Mbps : phy::WifiRate::k2Mbps;
        job.stations.push_back(station);
        scenario::FlowSpec flow;
        flow.client = id;
        flow.direction =
            variant % 3 == 0 ? scenario::Direction::kUplink : scenario::Direction::kDownlink;
        flow.transport = id % 2 == 0 ? scenario::Transport::kTcp : scenario::Transport::kUdp;
        flow.udp_rate = Mbps(6);
        job.flows.push_back(flow);
      }
      jobs.push_back(std::move(job));
    }
    return jobs;
  };

  const std::vector<sweep::ScenarioJob> jobs = make_jobs();
  sweep::SweepRunner serial(1);
  const std::vector<scenario::Results> reference = serial.RunScenarios(jobs);
  for (int threads : {2, 4}) {
    sweep::SweepRunner runner(threads);
    const std::vector<scenario::Results> parallel = runner.RunScenarios(jobs);
    ASSERT_EQ(parallel.size(), reference.size());
    for (size_t i = 0; i < reference.size(); ++i) {
      EXPECT_EQ(parallel[i], reference[i])
          << "job " << i << " diverged on a " << threads << "-thread pool";
    }
  }
}

}  // namespace
}  // namespace tbf
