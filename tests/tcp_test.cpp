// Transport-only TCP tests over a synthetic pipe (rate limit + delay + loss), isolating
// the Reno implementation from the 802.11 stack.
#include <deque>

#include <gtest/gtest.h>

#include "tbf/net/tcp.h"
#include "tbf/sim/random.h"
#include "tbf/sim/simulator.h"

namespace tbf::net {
namespace {

PacketPool& TestPool() {
  static PacketPool pool;
  return pool;
}

// A bidirectional pipe with per-direction serialization rate, propagation delay, a
// drop-tail queue, and optional random loss.
class Pipe {
 public:
  Pipe(sim::Simulator* sim, BitRate rate, TimeNs delay, size_t queue_limit = 64,
       double loss = 0.0, uint64_t seed = 1)
      : sim_(sim), rate_(rate), delay_(delay), queue_limit_(queue_limit), loss_(loss),
        rng_(seed) {}

  void SetForwardSink(std::function<void(PacketPtr)> fn) { fwd_.sink = std::move(fn); }
  void SetReverseSink(std::function<void(PacketPtr)> fn) { rev_.sink = std::move(fn); }

  void SendForward(PacketPtr p) { Send(fwd_, std::move(p)); }
  void SendReverse(PacketPtr p) { Send(rev_, std::move(p)); }

  int64_t dropped() const { return dropped_; }

 private:
  struct Dir {
    std::function<void(PacketPtr)> sink;
    std::deque<PacketPtr> queue;
    bool busy = false;
  };

  void Send(Dir& d, PacketPtr p) {
    if (loss_ > 0.0 && rng_.Bernoulli(loss_)) {
      ++dropped_;
      return;
    }
    if (d.queue.size() >= queue_limit_) {
      ++dropped_;
      return;
    }
    d.queue.push_back(std::move(p));
    if (!d.busy) {
      Pump(d);
    }
  }

  void Pump(Dir& d) {
    if (d.queue.empty()) {
      d.busy = false;
      return;
    }
    d.busy = true;
    PacketPtr p = std::move(d.queue.front());
    d.queue.pop_front();
    const TimeNs tx = TransmissionTime(p->size_bytes, rate_);
    sim_->Schedule(tx + delay_, [&d, p] { d.sink(p); });
    sim_->Schedule(tx, [this, &d] { Pump(d); });
  }

  sim::Simulator* sim_;
  BitRate rate_;
  TimeNs delay_;
  size_t queue_limit_;
  double loss_;
  sim::Rng rng_;
  int64_t dropped_ = 0;
  Dir fwd_;
  Dir rev_;
};

struct Connection {
  Connection(sim::Simulator* sim, BitRate rate, TimeNs delay, double loss = 0.0,
             size_t queue = 64)
      : pipe(sim, rate, delay, queue, loss) {
    FlowAddress addr;
    addr.flow_id = 1;
    addr.sender = 1;
    addr.receiver = 2;
    addr.wlan_client = 1;
    TcpConfig config;
    sender = std::make_unique<TcpSender>(sim, &TestPool(), config, addr,
                                         [this](PacketPtr p) { pipe.SendForward(p); });
    receiver = std::make_unique<TcpReceiver>(
        sim, &TestPool(), config, addr, [this](PacketPtr p) { pipe.SendReverse(p); },
        [this](int64_t bytes) { delivered += bytes; });
    pipe.SetForwardSink([this](PacketPtr p) { receiver->HandlePacket(p); });
    pipe.SetReverseSink([this](PacketPtr p) { sender->HandlePacket(p); });
  }

  Pipe pipe;
  std::unique_ptr<TcpSender> sender;
  std::unique_ptr<TcpReceiver> receiver;
  int64_t delivered = 0;
};

TEST(TcpTest, CompletesFixedTask) {
  sim::Simulator sim;
  Connection c(&sim, Mbps(10), Ms(5));
  c.sender->SetTaskBytes(1'000'000);
  c.sender->Start();
  sim.RunUntil(Sec(30));
  EXPECT_TRUE(c.sender->Done());
  EXPECT_EQ(c.receiver->bytes_received(), 1'000'000);
  EXPECT_EQ(c.delivered, 1'000'000);
  EXPECT_GT(c.sender->completion_time(), 0);
}

TEST(TcpTest, RetransmitDoesNotOvershootTaskBoundary) {
  // Lose the first copy of a finite task's sub-MSS tail segment. The RTO retransmission
  // must resend exactly the 500-byte tail, not a full MSS of phantom bytes past the
  // task boundary (which would count as delivered and shift any chained AddTask task).
  sim::Simulator sim;
  const int64_t task = 3 * 1460 + 500;
  FlowAddress addr;
  addr.flow_id = 1;
  addr.sender = 1;
  addr.receiver = 2;
  addr.wlan_client = 1;
  TcpConfig config;
  std::unique_ptr<TcpSender> sender;
  std::unique_ptr<TcpReceiver> receiver;
  int64_t delivered = 0;
  bool tail_dropped = false;
  sender = std::make_unique<TcpSender>(
      &sim, &TestPool(), config, addr, [&sim, &receiver, &tail_dropped, task](PacketPtr p) {
        if (!tail_dropped && p->end_seq == task) {
          tail_dropped = true;  // First transmission of the tail vanishes.
          return;
        }
        sim.Schedule(Ms(1), [r = receiver.get(), p] { r->HandlePacket(p); });
      });
  receiver = std::make_unique<TcpReceiver>(
      &sim, &TestPool(), config, addr,
      [&sim, &sender](PacketPtr p) {
        sim.Schedule(Ms(1), [s = sender.get(), p] { s->HandlePacket(p); });
      },
      [&delivered](int64_t bytes) { delivered += bytes; });
  sender->SetTaskBytes(task);
  sender->Start();
  sim.RunUntil(Sec(10));
  EXPECT_TRUE(tail_dropped);
  EXPECT_TRUE(sender->Done());
  EXPECT_EQ(receiver->bytes_received(), task);  // No bytes past the boundary.
  EXPECT_EQ(delivered, task);
}

TEST(TcpTest, LossyPipeTaskSequenceStaysExact) {
  // Random loss on the pipe: every chained task still delivers exactly its bytes (the
  // clamped retransmissions keep the cumulative sequence targets aligned).
  sim::Simulator sim;
  Connection c(&sim, Mbps(10), Ms(5), /*loss=*/0.02);
  const int64_t task = 200'000 + 123;  // Sub-MSS tail.
  int tasks_done = 0;
  c.sender->SetTaskBytes(task);
  c.sender->SetOnTaskComplete([&] {
    if (++tasks_done < 5) {
      c.sender->AddTask(task);
    }
  });
  c.sender->Start();
  sim.RunUntil(Sec(60));
  EXPECT_EQ(tasks_done, 5);
  EXPECT_EQ(c.receiver->bytes_received(), 5 * task);
  EXPECT_EQ(c.delivered, 5 * task);
}

TEST(TcpTest, ThroughputApproachesBottleneck) {
  sim::Simulator sim;
  Connection c(&sim, Mbps(10), Ms(2));
  c.sender->Start();
  sim.RunUntil(Sec(10));
  const double goodput = static_cast<double>(c.delivered) * 8.0 / 10.0;
  // 1460/1500 payload efficiency -> ~9.7 Mbps ceiling.
  EXPECT_GT(goodput, 8.0e6);
  EXPECT_LT(goodput, 10.0e6);
}

TEST(TcpTest, WindowLimitedByRttProduct) {
  sim::Simulator sim;
  // 100 Mbps pipe, 50 ms RTT: rwnd (64 KiB) limits throughput to ~10.5 Mbps.
  Connection c(&sim, Mbps(100), Ms(25));
  c.sender->Start();
  sim.RunUntil(Sec(20));
  const double goodput = static_cast<double>(c.delivered) * 8.0 / 20.0;
  const double rwnd_limit = 64.0 * 1024.0 * 8.0 / 0.050;
  EXPECT_LT(goodput, rwnd_limit * 1.05);
  EXPECT_GT(goodput, rwnd_limit * 0.55);
}

TEST(TcpTest, SurvivesRandomLoss) {
  sim::Simulator sim;
  Connection c(&sim, Mbps(10), Ms(5), /*loss=*/0.01);
  c.sender->SetTaskBytes(2'000'000);
  c.sender->Start();
  sim.RunUntil(Sec(60));
  EXPECT_TRUE(c.sender->Done());
  EXPECT_EQ(c.receiver->bytes_received(), 2'000'000);
  EXPECT_GT(c.sender->retransmits(), 0);
}

TEST(TcpTest, LossReducesThroughput) {
  sim::Simulator sim;
  Connection clean(&sim, Mbps(10), Ms(5));
  Connection lossy(&sim, Mbps(10), Ms(5), /*loss=*/0.03);
  clean.sender->Start();
  lossy.sender->Start();
  sim.RunUntil(Sec(15));
  EXPECT_GT(clean.delivered, lossy.delivered);
}

TEST(TcpTest, DelayedAcksHalveAckCount) {
  sim::Simulator sim;
  Connection c(&sim, Mbps(10), Ms(5));
  c.sender->SetTaskBytes(1'460'000);  // 1000 segments.
  c.sender->Start();
  sim.RunUntil(Sec(30));
  ASSERT_TRUE(c.sender->Done());
  // Every 2nd in-order segment is acked; allow slack for delack timer and recovery acks.
  EXPECT_LT(c.receiver->acks_sent(), 650);
  EXPECT_GT(c.receiver->acks_sent(), 450);
}

TEST(TcpTest, AppLimitCapsRate) {
  sim::Simulator sim;
  Connection c(&sim, Mbps(10), Ms(5));
  c.sender->SetAppLimitBps(Mbps(2.1));
  c.sender->Start();
  sim.RunUntil(Sec(20));
  const double goodput = static_cast<double>(c.delivered) * 8.0 / 20.0;
  EXPECT_NEAR(goodput, 2.1e6 * (1460.0 / 1500.0), 0.15e6);
}

TEST(TcpTest, SlowStartDoublesWindowInitially) {
  sim::Simulator sim;
  Connection c(&sim, Mbps(50), Ms(20));
  c.sender->Start();
  sim.RunUntil(Ms(300));
  // After several RTTs of slow start the window should be well above the initial 2 MSS.
  EXPECT_GT(c.sender->cwnd_bytes(), 8.0 * 1460);
}

TEST(TcpTest, RttEstimateTracksPathDelay) {
  sim::Simulator sim;
  Connection c(&sim, Mbps(10), Ms(10));  // RTT >= 20 ms.
  c.sender->Start();
  sim.RunUntil(Sec(5));
  EXPECT_GT(c.sender->srtt(), Ms(20));
  EXPECT_LT(c.sender->srtt(), Ms(120));
}

TEST(TcpTest, RecoversFromQueueOverflow) {
  sim::Simulator sim;
  // Tiny queue forces drop-tail losses as cwnd grows past the BDP.
  Connection c(&sim, Mbps(5), Ms(10), 0.0, /*queue=*/8);
  c.sender->SetTaskBytes(3'000'000);
  c.sender->Start();
  sim.RunUntil(Sec(60));
  EXPECT_TRUE(c.sender->Done());
  EXPECT_GT(c.sender->retransmits(), 0);
  EXPECT_EQ(c.receiver->bytes_received(), 3'000'000);
}

TEST(TcpTest, ZeroLengthTaskNeverStarts) {
  sim::Simulator sim;
  Connection c(&sim, Mbps(10), Ms(5));
  c.sender->SetTaskBytes(0);  // 0 means unbounded, so Done() is never true.
  c.sender->Start();
  sim.RunUntil(Sec(1));
  EXPECT_FALSE(c.sender->Done());
  EXPECT_GT(c.delivered, 0);
}

TEST(TcpTest, ReceiverReassemblesOutOfOrder) {
  sim::Simulator sim;
  FlowAddress addr;
  addr.flow_id = 1;
  addr.sender = 1;
  addr.receiver = 2;
  std::vector<PacketPtr> acks;
  int64_t delivered = 0;
  TcpReceiver rx(
      &sim, &TestPool(), TcpConfig{}, addr, [&](PacketPtr p) { acks.push_back(p); },
      [&](int64_t b) { delivered += b; });

  auto seg = [&](int64_t seq, int len) {
    PacketPtr p = TestPool().Allocate();
    p->proto = Proto::kTcpData;
    p->flow_id = 1;
    p->seq = seq;
    p->end_seq = seq + len;
    p->size_bytes = len + kIpTcpHeaderBytes;
    return p;
  };

  rx.HandlePacket(seg(0, 1000));
  rx.HandlePacket(seg(2000, 1000));  // Hole at [1000, 2000) -> immediate dup ack.
  rx.HandlePacket(seg(1000, 1000));  // Fills the hole.
  sim.RunUntilIdle();
  EXPECT_EQ(rx.bytes_received(), 3000);
  EXPECT_EQ(delivered, 3000);
  ASSERT_FALSE(acks.empty());
  EXPECT_EQ(acks.back()->ack, 3000);
}

TEST(TcpTest, LazyRtoFiresAtLogicalDeadline) {
  // Kill the pipe after the first flight so no acks return: the retransmission timeout
  // must still fire at (last arm + rto), even though arming is lazy and the scheduled
  // event predates the final deadline.
  sim::Simulator sim;
  FlowAddress addr;
  addr.flow_id = 1;
  addr.sender = 1;
  addr.receiver = 2;
  TcpConfig config;
  int64_t sent = 0;
  TcpSender sender(&sim, &TestPool(), config, addr, [&](PacketPtr) { ++sent; });
  sender.SetTaskBytes(1'000'000);
  sender.Start();
  sim.RunUntil(Ms(1));
  const int64_t first_flight = sent;
  EXPECT_GT(first_flight, 0);
  EXPECT_EQ(sender.timeouts(), 0);
  // No acks ever arrive; the initial RTO (1 s) must fire and go-back-N retransmit.
  sim.RunUntil(Sec(3));
  EXPECT_GE(sender.timeouts(), 1);
  EXPECT_GT(sent, first_flight);
}

TEST(TcpTest, LazyTimersKeepAckClockedTransferIdentical) {
  // A lossless transfer never consumes an RTO; the lazy deadline bookkeeping must not
  // inject spurious timeouts or retransmits.
  sim::Simulator sim;
  Connection c(&sim, Mbps(10), Ms(5));
  c.sender->SetTaskBytes(2'000'000);
  c.sender->Start();
  sim.RunUntil(Sec(30));
  ASSERT_TRUE(c.sender->Done());
  EXPECT_EQ(c.sender->timeouts(), 0);
  EXPECT_EQ(c.sender->retransmits(), 0);
  EXPECT_EQ(c.receiver->bytes_received(), 2'000'000);
}

TEST(TcpTest, DelayedAckTimerStillFlushesTrailingSegment) {
  // Send exactly one segment: no second segment arrives to trigger an immediate ack, so
  // the (lazy) delayed-ack timer must flush it at the 40 ms deadline.
  sim::Simulator sim;
  FlowAddress addr;
  addr.flow_id = 1;
  addr.sender = 1;
  addr.receiver = 2;
  std::vector<std::pair<TimeNs, PacketPtr>> acks;
  TcpReceiver rx(
      &sim, &TestPool(), TcpConfig{}, addr,
      [&](PacketPtr p) { acks.emplace_back(sim.Now(), p); }, nullptr);
  PacketPtr p = TestPool().Allocate();
  p->proto = Proto::kTcpData;
  p->flow_id = 1;
  p->seq = 0;
  p->end_seq = 1460;
  p->size_bytes = 1460 + kIpTcpHeaderBytes;
  sim.Schedule(Ms(1), [&] { rx.HandlePacket(p); });
  sim.RunUntilIdle();
  ASSERT_EQ(acks.size(), 1u);
  EXPECT_EQ(acks[0].first, Ms(1) + TcpConfig{}.delayed_ack_timeout);
  EXPECT_EQ(acks[0].second->ack, 1460);
}

TEST(TcpTest, DupAcksTriggerFastRetransmitNotTimeout) {
  sim::Simulator sim;
  Connection c(&sim, Mbps(10), Ms(5), /*loss=*/0.005);
  c.sender->SetTaskBytes(4'000'000);
  c.sender->Start();
  sim.RunUntil(Sec(60));
  ASSERT_TRUE(c.sender->Done());
  // With light loss and plenty of dupacks, fast retransmit should dominate timeouts.
  EXPECT_GT(c.sender->retransmits(), c.sender->timeouts());
}

}  // namespace
}  // namespace tbf::net
