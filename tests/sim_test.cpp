#include <vector>

#include <gtest/gtest.h>

#include "tbf/sim/random.h"
#include "tbf/sim/simulator.h"
#include "tbf/util/units.h"

namespace tbf {
namespace {

TEST(SimulatorTest, StartsAtZero) {
  sim::Simulator sim;
  EXPECT_EQ(sim.Now(), 0);
  EXPECT_TRUE(sim.IsIdle());
}

TEST(SimulatorTest, RunsEventsInTimeOrder) {
  sim::Simulator sim;
  std::vector<int> order;
  sim.Schedule(Us(30), [&] { order.push_back(3); });
  sim.Schedule(Us(10), [&] { order.push_back(1); });
  sim.Schedule(Us(20), [&] { order.push_back(2); });
  sim.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), Us(30));
}

TEST(SimulatorTest, EqualTimestampsFireFifo) {
  sim::Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    sim.Schedule(Us(5), [&order, i] { order.push_back(i); });
  }
  sim.RunUntilIdle();
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i);
  }
}

TEST(SimulatorTest, RunUntilStopsAtBound) {
  sim::Simulator sim;
  int fired = 0;
  sim.Schedule(Us(10), [&] { ++fired; });
  sim.Schedule(Us(50), [&] { ++fired; });
  sim.RunUntil(Us(20));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.Now(), Us(20));
  sim.RunUntil(Us(100));
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, CancelPreventsExecution) {
  sim::Simulator sim;
  int fired = 0;
  const sim::EventId id = sim.Schedule(Us(10), [&] { ++fired; });
  sim.Schedule(Us(20), [&] { ++fired; });
  sim.Cancel(id);
  sim.RunUntilIdle();
  EXPECT_EQ(fired, 1);
}

TEST(SimulatorTest, CancelFiredEventIsNoOp) {
  sim::Simulator sim;
  int fired = 0;
  const sim::EventId id = sim.Schedule(Us(10), [&] { ++fired; });
  sim.RunUntilIdle();
  sim.Cancel(id);
  sim.Cancel(sim::kInvalidEventId);
  EXPECT_EQ(fired, 1);
}

TEST(SimulatorTest, CancelTwiceDecrementsPendingOnce) {
  sim::Simulator sim;
  const sim::EventId id = sim.Schedule(Us(10), [] {});
  sim.Schedule(Us(20), [] {});
  EXPECT_EQ(sim.pending_events(), 2u);
  sim.Cancel(id);
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.Cancel(id);  // Double-cancel must be a no-op, not a second decrement.
  EXPECT_EQ(sim.pending_events(), 1u);
  EXPECT_FALSE(sim.IsIdle());
  EXPECT_EQ(sim.RunUntilIdle(), 1);
  EXPECT_TRUE(sim.IsIdle());
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(SimulatorTest, CancelAfterFireKeepsCountsExact) {
  sim::Simulator sim;
  const sim::EventId id = sim.Schedule(Us(10), [] {});
  sim.RunUntilIdle();
  EXPECT_TRUE(sim.IsIdle());
  sim.Cancel(id);  // Stale id: already fired.
  sim.Cancel(id);
  EXPECT_TRUE(sim.IsIdle());
  EXPECT_EQ(sim.pending_events(), 0u);
  int fired = 0;
  sim.Schedule(Us(10), [&] { ++fired; });
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.RunUntilIdle();
  EXPECT_EQ(fired, 1);
}

TEST(SimulatorTest, StaleIdCannotCancelReusedSlot) {
  sim::Simulator sim;
  const sim::EventId old_id = sim.Schedule(Us(1), [] {});
  sim.RunUntilIdle();  // Frees the slot; the generation tag advances.
  int fired = 0;
  sim.Schedule(Us(1), [&] { ++fired; });  // Reuses the slot.
  sim.Cancel(old_id);                     // Must not hit the new occupant.
  sim.RunUntilIdle();
  EXPECT_EQ(fired, 1);
}

TEST(SimulatorTest, CancellingTheFiringEventFromItsOwnCallbackIsNoOp) {
  sim::Simulator sim;
  sim::EventId self = sim::kInvalidEventId;
  int fired = 0;
  self = sim.Schedule(Us(1), [&] {
    ++fired;
    sim.Cancel(self);  // The id is already retired while its callback runs.
  });
  sim.RunUntilIdle();
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.IsIdle());
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(SimulatorTest, EventPoolReachesSteadyState) {
  sim::Simulator sim;
  auto cycle = [&] {
    std::vector<sim::EventId> ids;
    for (int i = 0; i < 256; ++i) {
      ids.push_back(sim.Schedule(Us(i % 29), [] {}));
    }
    for (size_t i = 0; i < ids.size(); i += 3) {
      sim.Cancel(ids[i]);
    }
    sim.RunUntilIdle();
  };
  cycle();
  const size_t warm_slots = sim.event_pool_slots();
  for (int r = 0; r < 10; ++r) {
    cycle();
  }
  // Slab slots are recycled through the free list, never re-grown in steady state.
  EXPECT_EQ(sim.event_pool_slots(), warm_slots);
}

TEST(SimulatorTest, FarFutureEventsOrderAcrossOverflowHorizon) {
  // Events beyond the timing wheel's horizon take the overflow path; order and FIFO
  // tie-breaking must be seamless across the boundary.
  sim::Simulator sim;
  std::vector<int> order;
  sim.Schedule(Sec(2), [&] { order.push_back(4); });
  sim.Schedule(Us(5), [&] { order.push_back(1); });
  sim.Schedule(Ms(500), [&] { order.push_back(2); });  // Overflow when scheduled.
  sim.Schedule(Ms(500), [&] { order.push_back(3); });  // Same instant: FIFO.
  sim.RunUntil(Sec(1));
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
  EXPECT_EQ(sim.Now(), Sec(2));
}

TEST(SimulatorTest, DeterministicOrderForDenseMixedSchedule) {
  // Same schedule -> identical execution order, including events scheduled from inside
  // callbacks at the current instant (which clamp to now and append in FIFO order).
  auto run = [] {
    sim::Simulator sim;
    std::vector<int> order;
    for (int i = 0; i < 500; ++i) {
      sim.Schedule(Us(i % 17), [&sim, &order, i] {
        order.push_back(i);
        if (i % 31 == 0) {
          sim.Schedule(0, [&order, i] { order.push_back(1000 + i); });
        }
      });
    }
    sim.RunUntilIdle();
    return order;
  };
  const std::vector<int> first = run();
  EXPECT_EQ(first.size(), 517u);
  EXPECT_EQ(first, run());
}

TEST(SimulatorTest, EventsScheduledFromCallbacksRun) {
  sim::Simulator sim;
  int depth = 0;
  std::function<void()> chain = [&] {
    ++depth;
    if (depth < 5) {
      sim.Schedule(Us(1), chain);
    }
  };
  sim.Schedule(Us(1), chain);
  sim.RunUntilIdle();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sim.Now(), Us(5));
}

TEST(SimulatorTest, PastScheduleClampsToNow) {
  sim::Simulator sim;
  sim.Schedule(Us(10), [&] {
    sim.ScheduleAt(Us(3), [&] { EXPECT_EQ(sim.Now(), Us(10)); });
  });
  sim.RunUntilIdle();
}

TEST(SimulatorTest, StopHaltsRun) {
  sim::Simulator sim;
  int fired = 0;
  sim.Schedule(Us(10), [&] {
    ++fired;
    sim.Stop();
  });
  sim.Schedule(Us(20), [&] { ++fired; });
  sim.RunUntil(Us(100));
  EXPECT_EQ(fired, 1);
  // A subsequent run resumes with the remaining events.
  sim.RunUntil(Us(100));
  EXPECT_EQ(fired, 2);
}

TEST(RngTest, DeterministicForSeed) {
  sim::Rng a(42);
  sim::Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1023), b.UniformInt(0, 1023));
  }
}

TEST(RngTest, UniformIntRespectsBounds) {
  sim::Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(3, 17);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 17);
  }
}

TEST(RngTest, BernoulliEdgeCases) {
  sim::Rng rng(7);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    hits += rng.Bernoulli(0.25) ? 1 : 0;
  }
  EXPECT_NEAR(hits / 10000.0, 0.25, 0.03);
}

TEST(RngTest, ParetoAboveMinimum) {
  sim::Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(rng.Pareto(10.0, 1.2), 10.0);
  }
}

TEST(UnitsTest, TransmissionTimeRoundsUp) {
  // 1500 bytes at 11 Mbps = 12000 bits / 11e6 bps = 1090.909.. us.
  EXPECT_EQ(TransmissionTime(1500, Mbps(11)), 1090910);  // ns, rounded up.
  EXPECT_EQ(TransmissionTime(1500, Mbps(1)), Us(12000));
}

TEST(UnitsTest, ThroughputBps) {
  EXPECT_DOUBLE_EQ(ThroughputBps(125'000, Sec(1)), 1e6);
  EXPECT_DOUBLE_EQ(ThroughputBps(100, 0), 0.0);
}

}  // namespace
}  // namespace tbf
