// SweepRunner: ordering, determinism (serial vs parallel bit-identical Results across
// pool sizes), the declarative job form, and the audited shared state (logging, model
// tables) under concurrent scenarios. This binary is also the payload of the TSan CTest
// configuration (-DTBF_SANITIZE=thread), which turns any latent data race in the shared
// layers into a hard failure.
#include "tbf/sweep/sweep_runner.h"

#include <atomic>
#include <cstdlib>
#include <functional>
#include <vector>

#include <gtest/gtest.h>

#include "tbf/model/baseline.h"
#include "tbf/util/logging.h"

namespace tbf {
namespace {

using scenario::Direction;
using scenario::QdiscKind;
using scenario::Results;
using sweep::ScenarioJob;
using sweep::SweepRunner;
using sweep::SweepError;

ScenarioJob PairJob(QdiscKind qdisc, phy::WifiRate r1, phy::WifiRate r2, Direction dir,
                    uint64_t seed) {
  ScenarioJob job;
  job.config.qdisc = qdisc;
  job.config.seed = seed;
  job.config.warmup = Ms(500);
  job.config.duration = Sec(2);
  for (NodeId id = 1; id <= 2; ++id) {
    scenario::StationSpec station;
    station.id = id;
    station.rate = id == 1 ? r1 : r2;
    job.stations.push_back(station);
    scenario::FlowSpec flow;
    flow.client = id;
    flow.direction = dir;
    flow.transport = scenario::Transport::kTcp;
    job.flows.push_back(flow);
  }
  return job;
}

// A small but diverse grid: rate pairs x direction x qdisc x seed, like the paper's
// figure grids.
std::vector<ScenarioJob> TestGrid() {
  std::vector<ScenarioJob> jobs;
  jobs.push_back(PairJob(QdiscKind::kFifo, phy::WifiRate::k11Mbps, phy::WifiRate::k11Mbps,
                         Direction::kUplink, 1));
  jobs.push_back(PairJob(QdiscKind::kFifo, phy::WifiRate::k1Mbps, phy::WifiRate::k11Mbps,
                         Direction::kUplink, 2));
  jobs.push_back(PairJob(QdiscKind::kTbr, phy::WifiRate::k1Mbps, phy::WifiRate::k11Mbps,
                         Direction::kDownlink, 3));
  jobs.push_back(PairJob(QdiscKind::kTbr, phy::WifiRate::k2Mbps, phy::WifiRate::k5_5Mbps,
                         Direction::kDownlink, 1));
  jobs.push_back(PairJob(QdiscKind::kRoundRobin, phy::WifiRate::k5_5Mbps,
                         phy::WifiRate::k11Mbps, Direction::kDownlink, 7));
  jobs.push_back(PairJob(QdiscKind::kDrr, phy::WifiRate::k11Mbps, phy::WifiRate::k2Mbps,
                         Direction::kDownlink, 7));
  return jobs;
}

TEST(SweepRunnerTest, MapReturnsResultsInSubmissionOrder) {
  SweepRunner runner(4);
  std::vector<std::function<int()>> jobs;
  for (int i = 0; i < 64; ++i) {
    jobs.push_back([i] { return i * i; });
  }
  const std::vector<int> out = runner.Map(std::move(jobs));
  ASSERT_EQ(out.size(), 64u);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(out[static_cast<size_t>(i)], i * i);
  }
}

TEST(SweepRunnerTest, PoolIsReusableAcrossBatches) {
  SweepRunner runner(2);
  for (int batch = 0; batch < 3; ++batch) {
    std::vector<std::function<int()>> jobs;
    for (int i = 0; i < 8; ++i) {
      jobs.push_back([batch, i] { return batch * 100 + i; });
    }
    const std::vector<int> out = runner.Map(std::move(jobs));
    for (int i = 0; i < 8; ++i) {
      EXPECT_EQ(out[static_cast<size_t>(i)], batch * 100 + i);
    }
  }
}

// The acceptance property of the whole subsystem: the same specs and seeds produce
// byte-identical Results regardless of pool size (serial run == every parallel run).
// operator== on Results compares doubles bitwise, which is exactly the guarantee the
// deterministic table output relies on.
TEST(SweepRunnerTest, SerialAndParallelResultsBitIdentical) {
  const std::vector<ScenarioJob> jobs = TestGrid();

  SweepRunner serial(1);
  const std::vector<Results> reference = serial.RunScenarios(jobs);
  ASSERT_EQ(reference.size(), jobs.size());
  // Sanity: the grid actually simulates traffic.
  for (const Results& r : reference) {
    EXPECT_GT(r.aggregate_bps, 0.0);
    EXPECT_GT(r.mac_exchanges, 0);
  }

  for (int pool_size : {2, 4, 7}) {
    SweepRunner parallel(pool_size);
    const std::vector<Results> out = parallel.RunScenarios(jobs);
    ASSERT_EQ(out.size(), reference.size());
    for (size_t i = 0; i < out.size(); ++i) {
      EXPECT_EQ(out[i], reference[i]) << "pool=" << pool_size << " job=" << i;
    }
  }
}

TEST(SweepRunnerTest, RepeatedRunsOnSamePoolAreIdentical) {
  const std::vector<ScenarioJob> jobs = TestGrid();
  SweepRunner runner(3);
  const std::vector<Results> first = runner.RunScenarios(jobs);
  const std::vector<Results> second = runner.RunScenarios(jobs);
  EXPECT_EQ(first, second);
}

TEST(SweepRunnerTest, ConfigureHookRunsOnBuiltScenario) {
  ScenarioJob job = PairJob(QdiscKind::kTbr, phy::WifiRate::k1Mbps, phy::WifiRate::k11Mbps,
                            Direction::kDownlink, 5);
  std::atomic<bool> hook_ran{false};
  job.configure = [&hook_ran](scenario::Wlan& wlan) {
    ASSERT_NE(wlan.tbr(), nullptr);  // BuildNow happened before the hook.
    wlan.tbr()->SetWeight(2, 2.0);
    hook_ran = true;
  };
  SweepRunner runner(2);
  const std::vector<Results> out = runner.RunScenarios({job});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(hook_ran.load());
  EXPECT_GT(out[0].aggregate_bps, 0.0);
}

// Audited shared state: concurrent scenarios hit the logging level, the paper-table
// statics, and the phy tables. Under -DTBF_SANITIZE=thread this is the race detector's
// hunting ground; in a plain build it still checks the table contents are stable.
TEST(SweepRunnerTest, SharedImmutableStateSurvivesConcurrentReaders) {
  SweepRunner runner(4);
  std::vector<std::function<double()>> jobs;
  for (int i = 0; i < 16; ++i) {
    jobs.push_back([] {
      TBF_LOG(kDebug) << "sweep worker probe";  // Exercises the level atomic + sink.
      double sum = 0.0;
      for (const auto& [rate, beta] : model::PaperTable2Baselines()) {
        sum += beta + phy::GetRateInfo(rate).bps;
      }
      return sum;
    });
  }
  const std::vector<double> sums = runner.Map(std::move(jobs));
  for (double s : sums) {
    EXPECT_EQ(s, sums[0]);
  }
}

// ---------------------------------------------------------------------------
// Exception propagation: a throwing job must surface as SweepError carrying the
// failing job's submission index, not take the process down via std::terminate,
// and must leave the pool reusable.
// ---------------------------------------------------------------------------

TEST(SweepErrorTest, WorkerExceptionCarriesJobIdentity) {
  SweepRunner runner(4);
  std::vector<std::function<int()>> jobs;
  for (int i = 0; i < 16; ++i) {
    jobs.push_back([i]() -> int {
      if (i == 11) {
        throw std::runtime_error("flaky scenario");
      }
      return i;
    });
  }
  try {
    runner.Map(std::move(jobs));
    FAIL() << "expected SweepError";
  } catch (const SweepError& e) {
    EXPECT_EQ(e.job_index(), 11u);
    EXPECT_NE(std::string(e.what()).find("sweep job #11"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("flaky scenario"), std::string::npos);
  }
}

TEST(SweepErrorTest, LowestFailingIndexWinsDeterministically) {
  SweepRunner runner(4);
  for (int round = 0; round < 5; ++round) {
    std::vector<std::function<int()>> jobs;
    for (int i = 0; i < 32; ++i) {
      jobs.push_back([i]() -> int {
        if (i % 7 == 3) {  // Jobs 3, 10, 17, 24, 31 all throw.
          throw std::runtime_error("boom");
        }
        return i;
      });
    }
    try {
      runner.Map(std::move(jobs));
      FAIL() << "expected SweepError";
    } catch (const SweepError& e) {
      EXPECT_EQ(e.job_index(), 3u);  // Independent of worker interleaving.
    }
  }
}

TEST(SweepErrorTest, PoolSurvivesAndStaysCorrectAfterFailure) {
  SweepRunner runner(3);
  std::vector<std::function<int()>> bad;
  bad.push_back([]() -> int { throw std::logic_error("first batch fails"); });
  EXPECT_THROW(runner.Map(std::move(bad)), SweepError);

  // The same pool then runs a clean batch with correct, ordered results.
  std::vector<std::function<int()>> good;
  for (int i = 0; i < 12; ++i) {
    good.push_back([i] { return i * 3; });
  }
  const std::vector<int> out = runner.Map(std::move(good));
  ASSERT_EQ(out.size(), 12u);
  for (int i = 0; i < 12; ++i) {
    EXPECT_EQ(out[static_cast<size_t>(i)], i * 3);
  }
}

TEST(SweepErrorTest, NonStdExceptionIsWrappedNotFatal) {
  SweepRunner runner(2);
  std::vector<std::function<int()>> jobs;
  jobs.push_back([]() -> int { throw 42; });  // Not a std::exception.
  try {
    runner.Map(std::move(jobs));
    FAIL() << "expected SweepError";
  } catch (const SweepError& e) {
    EXPECT_EQ(e.job_index(), 0u);
    EXPECT_NE(std::string(e.what()).find("unknown exception"), std::string::npos);
  }
}

TEST(SweepRunnerTest, DefaultThreadCountHonorsEnv) {
  ::setenv("TBF_SWEEP_THREADS", "3", 1);
  EXPECT_EQ(SweepRunner::DefaultThreadCount(), 3);
  ::setenv("TBF_SWEEP_THREADS", "0", 1);  // Invalid: falls back to hardware.
  EXPECT_GE(SweepRunner::DefaultThreadCount(), 1);
  ::unsetenv("TBF_SWEEP_THREADS");
  EXPECT_GE(SweepRunner::DefaultThreadCount(), 1);
}

}  // namespace
}  // namespace tbf
