// Campaign service: codec totality over hostile bytes, strict wire parsing,
// deterministic fault injection, and the end-to-end robustness bar - a distributed
// campaign with crashed, hung, and lying workers merges byte-identically to a
// fault-free serial run, and a killed coordinator resumes from its completion log
// re-running only the jobs with no valid record.
//
// The clean tests (codec, wire, manifest, clean end-to-end) are safe under
// sanitizers; the fault-driven tests (CampaignStressTest, resume) depend on
// real-time heartbeat deadlines and are kept out of the sanitizer CTest regexes.
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "tbf/campaign/codec.h"
#include "tbf/campaign/coordinator.h"
#include "tbf/campaign/fault_injector.h"
#include "tbf/campaign/manifest.h"
#include "tbf/campaign/wire.h"
#include "tbf/campaign/worker.h"

namespace tbf::campaign {
namespace {

Manifest SmallManifest(int jobs, uint64_t seed = 7) {
  SmokeGridSpec spec;
  spec.jobs = jobs;
  spec.seed = seed;
  return MakeSmokeGrid(spec);
}

std::string TempPath(const char* name) {
  return testing::TempDir() + "campaign_" + name + "_" +
         std::to_string(::getpid());
}

// ---------------------------------------------------------------------------
// Codec.
// ---------------------------------------------------------------------------

TEST(CampaignCodecTest, Crc32MatchesKnownVector) {
  // The canonical IEEE 802.3 check value.
  EXPECT_EQ(Crc32("123456789"), 0xcbf43926u);
  EXPECT_EQ(Crc32(""), 0u);
}

TEST(CampaignCodecTest, HexRoundTripsArbitraryBytes) {
  std::string bytes;
  for (int i = 0; i < 256; ++i) {
    bytes.push_back(static_cast<char>(i));
  }
  const std::string hex = HexEncode(bytes);
  EXPECT_EQ(hex.size(), bytes.size() * 2);
  std::string back;
  ASSERT_TRUE(HexDecode(hex, &back));
  EXPECT_EQ(back, bytes);
  EXPECT_FALSE(HexDecode("abc", &back));   // Odd length.
  EXPECT_FALSE(HexDecode("zz", &back));    // Non-hex digit.
  EXPECT_FALSE(HexDecode("AB", &back));    // Uppercase is not canonical.
}

TEST(CampaignCodecTest, JobRoundTripsExactly) {
  const Manifest manifest = SmallManifest(12);
  for (const CampaignJob& job : manifest.jobs) {
    const std::string blob = EncodeJob(job);
    CampaignJob back;
    ASSERT_TRUE(DecodeJob(blob, &back));
    EXPECT_EQ(back, job);
    // Re-encoding decoded state is byte-identical: the codec is canonical.
    EXPECT_EQ(EncodeJob(back), blob);
  }
}

TEST(CampaignCodecTest, ResultsRoundTripExactly) {
  const Manifest manifest = SmallManifest(4);
  for (const CampaignJob& job : manifest.jobs) {
    const scenario::Results results = sweep::RunScenarioJob(ToScenarioJob(job));
    const std::string blob = EncodeResults(results);
    scenario::Results back;
    ASSERT_TRUE(DecodeResults(blob, &back));
    EXPECT_EQ(back, results);
    EXPECT_EQ(EncodeResults(back), blob);
  }
}

TEST(CampaignCodecTest, TruncatedPayloadsAreRejectedNotCrashes) {
  const Manifest manifest = SmallManifest(1);
  const std::string job_blob = EncodeJob(manifest.jobs[0]);
  const std::string results_blob =
      EncodeResults(sweep::RunScenarioJob(ToScenarioJob(manifest.jobs[0])));
  // Every proper prefix must be cleanly rejected - the decoder is total.
  for (size_t n = 0; n < job_blob.size(); ++n) {
    CampaignJob out;
    EXPECT_FALSE(DecodeJob(std::string_view(job_blob.data(), n), &out)) << n;
  }
  for (size_t n = 0; n < results_blob.size(); ++n) {
    scenario::Results out;
    EXPECT_FALSE(DecodeResults(std::string_view(results_blob.data(), n), &out))
        << n;
  }
  // Trailing garbage is also a schema violation, not silently ignored.
  scenario::Results out;
  EXPECT_FALSE(DecodeResults(results_blob + "x", &out));
}

TEST(CampaignCodecTest, ArchiveRoundTripsAndValidatesTrailer) {
  const Manifest manifest = SmallManifest(6);
  std::vector<std::string> blobs;
  std::vector<scenario::Results> expected;
  for (const CampaignJob& job : manifest.jobs) {
    expected.push_back(sweep::RunScenarioJob(ToScenarioJob(job)));
    blobs.push_back(EncodeResults(expected.back()));
  }
  const std::string archive = EncodeArchive(blobs);

  std::vector<scenario::Results> decoded;
  ASSERT_TRUE(DecodeArchive(archive, &decoded));
  EXPECT_EQ(decoded, expected);

  MergedSummary summary;
  ASSERT_TRUE(DecodeArchiveSummary(archive, &summary));
  EXPECT_EQ(summary, MergeResults(expected));
  EXPECT_EQ(summary.jobs, 6);

  // A flipped byte anywhere invalidates the archive (per-blob CRC or trailer).
  for (size_t pos : {size_t{4}, archive.size() / 2, archive.size() - 3}) {
    std::string bad = archive;
    bad[pos] = static_cast<char>(bad[pos] ^ 0x20);
    std::vector<scenario::Results> out;
    EXPECT_FALSE(DecodeArchive(bad, &out)) << pos;
  }
}

TEST(CampaignCodecTest, WindowedResultsRoundTripExactly) {
  Manifest manifest = SmallManifest(2);
  for (CampaignJob& job : manifest.jobs) {
    // Streaming metrology config: windowed series plus sampled retention, so the
    // round-trip covers the v2 sections (stats config, series, FlowResult::exact).
    job.config.stats.window = Ms(100);
    job.config.stats.top_k = 1;
    job.config.stats.sample_every = 0;

    const std::string job_blob = EncodeJob(job);
    CampaignJob job_back;
    ASSERT_TRUE(DecodeJob(job_blob, &job_back));
    EXPECT_EQ(job_back, job);  // StatsConfig is part of CampaignJob equality.

    const scenario::Results results = sweep::RunScenarioJob(ToScenarioJob(job));
    // Smoke-grid flows push downlink data through the AP qdisc, so the queue-delay
    // meter is guaranteed samples (the flows are unbounded bulk - no task series),
    // and delivered bytes populate the windowed goodput series (v3 section).
    EXPECT_FALSE(results.ap_queue_delay_series.windows.empty());
    EXPECT_FALSE(results.goodput_series.windows.empty());
    const std::string blob = EncodeResults(results);
    scenario::Results back;
    ASSERT_TRUE(DecodeResults(blob, &back));
    EXPECT_EQ(back, results);  // Includes series and per-flow exact flags.
    EXPECT_EQ(EncodeResults(back), blob);
  }
}

TEST(CampaignCodecTest, AdaptiveTbrConfigRoundTripsExactly) {
  // The v3 layout added the adaptive scheduler family: TbrMode plus its knobs lead the
  // TBR section, and the qdisc enum grew three kinds. Non-default values for every new
  // field must survive the round trip bit for bit.
  Manifest manifest = SmallManifest(1);
  CampaignJob job = manifest.jobs[0];
  job.config.qdisc = scenario::QdiscKind::kTbrCreditHybrid;
  job.config.tbr.mode = core::TbrMode::kCreditHybrid;
  job.config.tbr.burst_credit = Ms(123);
  job.config.tbr.demand_period = Ms(25);
  job.config.tbr.demand_alpha = 0.45;
  job.config.tbr.demand_active_threshold = 0.05;
  job.config.tbr.hybrid_debt_cap = Ms(321);
  job.config.tbr.contention_contenders = 7;
  const std::string blob = EncodeJob(job);
  CampaignJob back;
  ASSERT_TRUE(DecodeJob(blob, &back));
  EXPECT_EQ(back, job);
  EXPECT_EQ(EncodeJob(back), blob);

  // The other two new qdisc kinds sit at the top of the widened enum range
  // (QdiscKind ceiling 7, TbrMode ceiling 3) - they must decode as themselves.
  for (const auto kind : {scenario::QdiscKind::kTbrBurstCredit,
                          scenario::QdiscKind::kTbrFastEwma}) {
    CampaignJob j = manifest.jobs[0];
    j.config.qdisc = kind;
    CampaignJob b;
    ASSERT_TRUE(DecodeJob(EncodeJob(j), &b));
    EXPECT_EQ(b.config.qdisc, kind);
  }
}

TEST(CampaignCodecTest, PreWindowedPayloadMagicsAreRejected) {
  const Manifest manifest = SmallManifest(1);
  // v1 blobs led with "CAJ1"/"CAR1"; a v2 decoder must reject them outright rather
  // than misparse the old layout.
  std::string job_blob = EncodeJob(manifest.jobs[0]);
  job_blob[3] = '1';  // "CAJ3" -> "CAJ1" (little-endian: byte 3 is the high byte).
  CampaignJob job_out;
  EXPECT_FALSE(DecodeJob(job_blob, &job_out));

  std::string results_blob =
      EncodeResults(sweep::RunScenarioJob(ToScenarioJob(manifest.jobs[0])));
  results_blob[3] = '1';  // "CAR3" -> "CAR1".
  scenario::Results results_out;
  EXPECT_FALSE(DecodeResults(results_blob, &results_out));
}

TEST(CampaignCodecTest, StaleArchiveVersionThrowsNamingTheVersion) {
  const Manifest manifest = SmallManifest(1);
  const std::string blob =
      EncodeResults(sweep::RunScenarioJob(ToScenarioJob(manifest.jobs[0])));
  std::string archive = EncodeArchive({blob});
  // Patch the version field (u32 at offset 4) down to the pre-windowed format.
  archive[4] = 1;
  archive[5] = archive[6] = archive[7] = 0;
  std::vector<scenario::Results> out;
  try {
    DecodeArchive(archive, &out);
    FAIL() << "stale archive version must throw CampaignError";
  } catch (const CampaignError& e) {
    EXPECT_NE(std::string(e.what()).find("version 1"), std::string::npos) << e.what();
  }
  MergedSummary summary;
  EXPECT_THROW(DecodeArchiveSummary(archive, &summary), CampaignError);

  // A *future* version is indistinguishable from corruption: false, not a throw.
  archive[4] = 4;
  EXPECT_FALSE(DecodeArchive(archive, &out));
}

// ---------------------------------------------------------------------------
// Wire protocol.
// ---------------------------------------------------------------------------

TEST(CampaignWireTest, MessagesRoundTripThroughFormatAndParse) {
  Message msg;
  msg.type = "result";
  msg.job = 123;
  msg.len = 4567;
  msg.crc = 0x7fffffff;
  msg.data = "00ff17";
  msg.name = "worker \"quoted\"\n\ttab";
  msg.error = "failed: \\ backslash";
  const std::string line = FormatMessage(msg);
  EXPECT_EQ(line.find('\n'), std::string::npos);  // One message = one line, always.
  Message back;
  ASSERT_TRUE(ParseMessage(line, &back));
  EXPECT_EQ(back, msg);
}

TEST(CampaignWireTest, MalformedLinesAreRejected) {
  Message out;
  EXPECT_FALSE(ParseMessage("", &out));
  EXPECT_FALSE(ParseMessage("not json", &out));
  EXPECT_FALSE(ParseMessage("{}", &out));  // type is required.
  EXPECT_FALSE(ParseMessage(R"({"type":"x"} trailing)", &out));
  EXPECT_FALSE(ParseMessage(R"({"type":"x","unknown":1})", &out));
  EXPECT_FALSE(ParseMessage(R"({"type":"x","job":})", &out));
  EXPECT_FALSE(ParseMessage(R"({"type":"x","job":"str"})", &out));  // Wrong type.
  EXPECT_FALSE(ParseMessage(R"({"type":"x")", &out));               // Unterminated.
  EXPECT_FALSE(ParseMessage("{\"type\":\"a\tb\"}", &out));  // Raw control char.
  EXPECT_FALSE(ParseMessage(R"({"type":"\u1234"})", &out));  // Escape beyond 0xff.
}

// ---------------------------------------------------------------------------
// Fault injector.
// ---------------------------------------------------------------------------

TEST(FaultInjectorTest, DecisionsAreDeterministicPerSeed) {
  FaultPlan plan;
  plan.seed = 42;
  plan.crash = 0.1;
  plan.hang = 0.1;
  plan.corrupt = 0.2;
  plan.truncate = 0.1;
  plan.repeat = true;
  FaultInjector a(plan);
  FaultInjector b(plan);
  for (int64_t job = 0; job < 500; ++job) {
    EXPECT_EQ(a.Decide(job), b.Decide(job)) << job;
  }
  EXPECT_EQ(a.faults_injected(), b.faults_injected());
  // Roughly half the executions should fault at these rates.
  EXPECT_GT(a.faults_injected(), 150);
  EXPECT_LT(a.faults_injected(), 350);

  FaultPlan other = plan;
  other.seed = 43;
  FaultInjector c(other);
  int diffs = 0;
  FaultInjector a2(plan);
  for (int64_t job = 0; job < 500; ++job) {
    diffs += a2.Decide(job) != c.Decide(job);
  }
  EXPECT_GT(diffs, 0);  // A different seed is a different schedule.
}

TEST(FaultInjectorTest, NonRepeatFaultsOnlyFirstExecution) {
  FaultPlan plan;
  plan.seed = 1;
  plan.crash = 1.0;  // Every first execution faults...
  FaultInjector injector(plan);
  for (int64_t job = 0; job < 20; ++job) {
    EXPECT_EQ(injector.Decide(job), FaultInjector::Fault::kCrash);
    // ...and every re-execution is clean, so campaigns terminate.
    EXPECT_EQ(injector.Decide(job), FaultInjector::Fault::kNone);
    EXPECT_EQ(injector.Decide(job), FaultInjector::Fault::kNone);
  }
}

TEST(FaultInjectorTest, FaultBudgetIsHonored) {
  FaultPlan plan;
  plan.seed = 1;
  plan.crash = 1.0;
  plan.max_faults = 3;
  FaultInjector injector(plan);
  int faults = 0;
  for (int64_t job = 0; job < 100; ++job) {
    faults += injector.Decide(job) != FaultInjector::Fault::kNone;
  }
  EXPECT_EQ(faults, 3);
}

TEST(FaultInjectorTest, CorruptAndTruncateAlwaysDamageThePayload) {
  for (uint64_t key = 0; key < 64; ++key) {
    const std::string original(1 + key % 37, 'x');
    std::string corrupted = original;
    FaultInjector::Corrupt(&corrupted, key);
    EXPECT_EQ(corrupted.size(), original.size());
    EXPECT_NE(corrupted, original) << key;  // CRC validation must be able to fire.
    std::string truncated = original;
    FaultInjector::Truncate(&truncated, key);
    EXPECT_LT(truncated.size(), original.size()) << key;
  }
}

// ---------------------------------------------------------------------------
// Manifest.
// ---------------------------------------------------------------------------

TEST(CampaignManifestTest, FingerprintIdentifiesTheManifest) {
  EXPECT_EQ(ManifestFingerprint(SmallManifest(20, 7)),
            ManifestFingerprint(SmallManifest(20, 7)));
  EXPECT_NE(ManifestFingerprint(SmallManifest(20, 7)),
            ManifestFingerprint(SmallManifest(20, 8)));
  EXPECT_NE(ManifestFingerprint(SmallManifest(20, 7)),
            ManifestFingerprint(SmallManifest(21, 7)));
}

TEST(CampaignManifestTest, InvalidManifestIsRejectedUpFront) {
  Manifest manifest = SmallManifest(3);
  manifest.jobs[1].flows[0].client = 99;  // No such station.
  const std::string err = ValidateManifest(manifest);
  EXPECT_NE(err.find("job #1"), std::string::npos) << err;
  EXPECT_THROW(Coordinator(manifest, CoordinatorConfig{}), CampaignError);
  EXPECT_THROW(RunSerialArchive(manifest), CampaignError);
  EXPECT_THROW(Coordinator(Manifest{}, CoordinatorConfig{}), CampaignError);
}

// ---------------------------------------------------------------------------
// End-to-end campaigns. Each test pins the same acceptance bar: the archive must
// be byte-identical to the fault-free serial reference.
// ---------------------------------------------------------------------------

struct WorkerHandle {
  std::thread thread;
  WorkerStats stats;
};

WorkerHandle StartWorker(WorkerConfig config) {
  WorkerHandle handle;
  auto* stats = &handle.stats;
  handle.thread = std::thread([config, stats] { *stats = RunWorker(config); });
  return handle;
}

// Runs a campaign over a real unix socket with the given worker fleet; returns the
// archive. The coordinator is destroyed before workers are joined so stragglers
// observe EOF instead of blocking on a silent socket.
std::string RunCampaign(const Manifest& manifest, CoordinatorConfig config,
                        std::vector<WorkerConfig> worker_configs,
                        CoordinatorStats* stats_out = nullptr) {
  auto coordinator = std::make_unique<Coordinator>(manifest, config);
  std::vector<WorkerHandle> workers;
  workers.reserve(worker_configs.size());
  for (WorkerConfig& wc : worker_configs) {
    workers.push_back(StartWorker(wc));
  }
  const bool finished = coordinator->Run();
  EXPECT_TRUE(finished);
  if (stats_out != nullptr) {
    *stats_out = coordinator->stats();
  }
  std::string archive = finished ? coordinator->EncodeArchiveBytes() : "";
  coordinator.reset();
  for (WorkerHandle& w : workers) {
    w.thread.join();
  }
  return archive;
}

WorkerConfig HonestWorker(const std::string& socket, const std::string& name) {
  WorkerConfig config;
  config.socket_path = socket;
  config.name = name;
  config.heartbeat_interval_ms = 50;
  config.reconnect_delay_ms = 10;
  config.max_reconnects = 50;
  return config;
}

TEST(CampaignServiceTest, PureLocalModeMatchesSerial) {
  const Manifest manifest = SmallManifest(30);
  CoordinatorConfig config;  // No socket, no WAL: plain in-process execution.
  Coordinator coordinator(manifest, config);
  ASSERT_TRUE(coordinator.Run());
  EXPECT_EQ(coordinator.EncodeArchiveBytes(), RunSerialArchive(manifest));
  EXPECT_EQ(coordinator.stats().local_runs, 30);
  EXPECT_EQ(coordinator.DecodedResults().size(), 30u);
}

TEST(CampaignServiceTest, LocalFallbackServesCampaignWithNoWorkers) {
  const Manifest manifest = SmallManifest(20);
  CoordinatorConfig config;
  config.socket_path = TempPath("fallback.sock");
  config.local_fallback_after_ms = 0;  // Degrade immediately: nobody is coming.
  CoordinatorStats stats;
  const std::string archive = RunCampaign(manifest, config, {}, &stats);
  EXPECT_EQ(archive, RunSerialArchive(manifest));
  EXPECT_EQ(stats.local_runs, 20);
}

TEST(CampaignServiceTest, DistributedCleanRunMatchesSerial) {
  const Manifest manifest = SmallManifest(60);
  CoordinatorConfig config;
  config.socket_path = TempPath("clean.sock");
  config.local_fallback_after_ms = -1;  // Workers must carry the whole campaign.
  CoordinatorStats stats;
  const std::string archive = RunCampaign(
      manifest, config,
      {HonestWorker(config.socket_path, "w1"),
       HonestWorker(config.socket_path, "w2"),
       HonestWorker(config.socket_path, "w3")},
      &stats);
  EXPECT_EQ(archive, RunSerialArchive(manifest));
  EXPECT_EQ(stats.completed, 60);
  EXPECT_EQ(stats.local_runs, 0);
  EXPECT_EQ(stats.rejected_payloads, 0);
}

// The headline acceptance test: a large campaign where workers crash mid-job, hang
// without heartbeats, and ship corrupted/truncated payloads - and the merged output
// is still byte-for-byte the fault-free serial reference.
TEST(CampaignStressTest, FaultRiddenCampaignMergesByteIdenticalToSerial) {
  const Manifest manifest = SmallManifest(1000, 11);
  CoordinatorConfig config;
  config.socket_path = TempPath("stress.sock");
  config.local_fallback_after_ms = -1;
  config.heartbeat_timeout_ms = 400;
  config.job_timeout_ms = 30000;
  config.backoff_base_ms = 1;
  config.backoff_max_ms = 20;
  // Generous attempt budget: with repeat=false a (worker, job) pair faults at most
  // once, so healthy runs use ~2 attempts worst-case - the headroom is for CPU
  // starvation under a parallel ctest, where late heartbeats also burn attempts.
  config.max_attempts = 25;

  auto faulty = [&](const char* name, uint64_t seed) {
    WorkerConfig wc = HonestWorker(config.socket_path, name);
    wc.max_reconnects = 300;
    wc.faults.seed = seed;
    wc.faults.crash = 0.08;
    wc.faults.hang = 0.02;
    wc.faults.corrupt = 0.15;   // With truncate: >20% of first executions lie.
    wc.faults.truncate = 0.08;
    return wc;
  };

  CoordinatorStats stats;
  const std::string archive =
      RunCampaign(manifest, config,
                  {faulty("f1", 101), faulty("f2", 202),
                   HonestWorker(config.socket_path, "honest")},
                  &stats);
  EXPECT_EQ(archive, RunSerialArchive(manifest));
  EXPECT_EQ(stats.completed, 1000);
  // Every failure mode must actually have been exercised and survived.
  EXPECT_GT(stats.rejected_payloads, 0) << "no corrupt/truncated payloads seen";
  EXPECT_GT(stats.worker_disconnects, 0) << "no crashes seen";
  EXPECT_GT(stats.heartbeat_timeouts, 0) << "no hangs seen";
  EXPECT_GT(stats.redispatched, 0);
}

TEST(CampaignResumeTest, KilledCoordinatorResumesOnlyIncompleteJobs) {
  const Manifest manifest = SmallManifest(200, 5);
  const std::string wal = TempPath("resume.wal");
  std::remove(wal.c_str());
  const std::string serial = RunSerialArchive(manifest);

  // First run "dies" (halt hook = kill -9 as observed from outside) after 70 jobs.
  {
    CoordinatorConfig config;
    config.wal_path = wal;
    config.halt_after_jobs = 70;
    Coordinator coordinator(manifest, config);
    EXPECT_FALSE(coordinator.Run());
    EXPECT_EQ(coordinator.stats().completed, 70);
  }

  // A torn final record (the fwrite the kill interrupted) must not poison resume.
  {
    std::FILE* f = std::fopen(wal.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    std::fputs("{\"type\":\"done\",\"job\":199,\"len\":12,\"crc\":1,\"da", f);
    std::fclose(f);
  }

  {
    CoordinatorConfig config;
    config.wal_path = wal;
    Coordinator coordinator(manifest, config);
    ASSERT_TRUE(coordinator.Run());
    EXPECT_EQ(coordinator.stats().resumed, 70);    // Recovered, not re-run.
    EXPECT_EQ(coordinator.stats().completed, 130);  // Only the incomplete jobs.
    EXPECT_EQ(coordinator.EncodeArchiveBytes(), serial);
  }

  // Idempotent: resuming a finished campaign re-runs nothing.
  {
    CoordinatorConfig config;
    config.wal_path = wal;
    Coordinator coordinator(manifest, config);
    ASSERT_TRUE(coordinator.Run());
    EXPECT_EQ(coordinator.stats().resumed, 200);
    EXPECT_EQ(coordinator.stats().completed, 0);
    EXPECT_EQ(coordinator.EncodeArchiveBytes(), serial);
  }
  std::remove(wal.c_str());
}

TEST(CampaignResumeTest, LogFromDifferentManifestIsRefused) {
  const std::string wal = TempPath("mismatch.wal");
  std::remove(wal.c_str());
  {
    CoordinatorConfig config;
    config.wal_path = wal;
    config.halt_after_jobs = 5;
    Coordinator coordinator(SmallManifest(50, 1), config);
    EXPECT_FALSE(coordinator.Run());
  }
  {
    CoordinatorConfig config;
    config.wal_path = wal;
    Coordinator coordinator(SmallManifest(50, 2), config);  // Different seed.
    EXPECT_THROW(coordinator.Run(), CampaignError);
  }
  std::remove(wal.c_str());
}

}  // namespace
}  // namespace tbf::campaign
