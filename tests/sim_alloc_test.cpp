// Proves the event kernel's zero-allocation steady state: once the slab, wheel buckets
// and overflow heap have grown to the working-set size, Schedule/Cancel/fire cycles
// perform no heap allocation at all. Global operator new/delete are replaced with
// counting versions, so this test lives in its own binary.
#include <cstdlib>
#include <new>
#include <vector>

#include <gtest/gtest.h>

#include "tbf/sim/inline_callback.h"
#include "tbf/sim/simulator.h"
#include "tbf/util/units.h"

namespace {

int64_t g_news = 0;
int64_t g_deletes = 0;

}  // namespace

void* operator new(std::size_t size) {
  ++g_news;
  if (void* p = std::malloc(size)) {
    return p;
  }
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept {
  ++g_deletes;
  std::free(p);
}

void operator delete(void* p, std::size_t) noexcept { ::operator delete(p); }
void operator delete[](void* p) noexcept { ::operator delete(p); }
void operator delete[](void* p, std::size_t) noexcept { ::operator delete(p); }

namespace tbf {
namespace {

TEST(SimAllocTest, SteadyStateScheduleCancelRunIsAllocationFree) {
  sim::Simulator sim;
  std::vector<sim::EventId> ids;
  ids.reserve(512);
  auto cycle = [&] {
    ids.clear();
    for (int i = 0; i < 512; ++i) {
      ids.push_back(sim.Schedule(Us(i), [] {}));
    }
    for (size_t i = 0; i < ids.size(); i += 2) {
      sim.Cancel(ids[i]);
    }
    sim.RunUntilIdle();
  };
  // Warm: grows the slab, the ids vector, and - because simulated time advances ~512 us
  // per cycle - every timing-wheel bucket across many full wheel revolutions, at every
  // bucket alignment the uniform schedule spread produces.
  for (int r = 0; r < 600; ++r) {
    cycle();
  }

  const int64_t news_before = g_news;
  const int64_t deletes_before = g_deletes;
  for (int r = 0; r < 64; ++r) {
    cycle();
  }
  EXPECT_EQ(g_news, news_before) << "Schedule/Cancel/fire allocated in steady state";
  EXPECT_EQ(g_deletes, deletes_before);
}

TEST(SimAllocTest, SelfReschedulingChurnIsAllocationFree) {
  // The simulator's real operating point: every fired event schedules its successor.
  // Deltas are multiples of the 4.096 us wheel-bucket width so per-bucket occupancy is
  // periodic and the steady state is exact (drifting alignments would keep nudging
  // individual bucket capacities for many more revolutions).
  sim::Simulator sim;
  struct Chain {
    sim::Simulator* sim;
    int64_t* fired;
    int i = 0;
    void operator()() {
      static constexpr TimeNs kBucket = TimeNs{1} << 12;
      static constexpr TimeNs kDeltas[] = {5 * kBucket, 3 * kBucket, 75 * kBucket,
                                           266 * kBucket};
      ++*fired;
      const TimeNs delta = kDeltas[static_cast<size_t>(++i) & 3];
      sim->Schedule(delta, *this);
    }
  };
  int64_t fired = 0;
  for (int j = 0; j < 64; ++j) {
    sim.Schedule(j * (TimeNs{1} << 12), Chain{&sim, &fired, j});
  }
  sim.RunUntil(Ms(120));  // Warm: several full wheel revolutions.

  const int64_t news_before = g_news;
  sim.RunUntil(sim.Now() + Ms(60));
  EXPECT_GT(fired, 1000);
  EXPECT_EQ(g_news, news_before) << "steady-state churn allocated on the heap";
}

TEST(InlineCallbackTest, LayoutAndCapacity) {
  static_assert(sim::InlineCallback::kCapacity == 48);
  static_assert(sizeof(sim::InlineCallback) == 64, "one cache line per callback slot");
  // A capture exactly at capacity compiles (a bigger one would static_assert).
  struct Payload40 {
    char bytes[40];
  };
  Payload40 payload{};
  payload.bytes[0] = 7;
  int sink = 0;
  int* sink_ptr = &sink;  // 40 + 8 captured bytes == kCapacity exactly.
  auto fn = [payload, sink_ptr]() mutable { *sink_ptr += payload.bytes[0]; };
  static_assert(sizeof(fn) == sim::InlineCallback::kCapacity);
  sim::InlineCallback cb(std::move(fn));
  cb();
  EXPECT_EQ(sink, 7);
}

TEST(InlineCallbackTest, NonTrivialCapturesAreReleasedOnReset) {
  auto guard = std::make_shared<int>(42);
  std::weak_ptr<int> watch = guard;
  sim::InlineCallback cb([guard] {});
  guard.reset();
  EXPECT_FALSE(watch.expired());
  cb.Reset();
  EXPECT_TRUE(watch.expired());
}

TEST(InlineCallbackTest, MoveTransfersNonTrivialCapture) {
  auto guard = std::make_shared<int>(1);
  std::weak_ptr<int> watch = guard;
  int calls = 0;
  sim::InlineCallback a([guard, &calls] { ++calls; });
  guard.reset();
  sim::InlineCallback b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move): asserting it.
  EXPECT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(calls, 1);
  b.Reset();
  EXPECT_TRUE(watch.expired());
}

TEST(InlineCallbackTest, CancelledEventReleasesCapturesWhenEntryPops) {
  sim::Simulator sim;
  auto guard = std::make_shared<int>(5);
  std::weak_ptr<int> watch = guard;
  const sim::EventId id = sim.Schedule(Us(10), [guard] { FAIL() << "cancelled event ran"; });
  guard.reset();
  sim.Cancel(id);
  EXPECT_FALSE(watch.expired());  // Released lazily, when the queue entry pops.
  sim.RunUntilIdle();
  EXPECT_TRUE(watch.expired());
}

}  // namespace
}  // namespace tbf
