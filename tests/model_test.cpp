// Tests of the analytic framework: exact reproduction of the paper's Table 3 numbers from
// its Table 2 inputs, the baseline property, and the task-model efficiency claims.
#include <gtest/gtest.h>

#include "tbf/model/baseline.h"
#include "tbf/model/fairness_model.h"
#include "tbf/model/task_model.h"

namespace tbf::model {
namespace {

std::vector<NodeModel> Table3Nodes() {
  const auto& betas = PaperTable2Baselines();
  return {
      {betas.at(phy::WifiRate::k1Mbps), 1500.0, 1.0},
      {betas.at(phy::WifiRate::k2Mbps), 1500.0, 1.0},
      {betas.at(phy::WifiRate::k11Mbps), 1500.0, 1.0},
      {betas.at(phy::WifiRate::k11Mbps), 1500.0, 1.0},
  };
}

TEST(FairnessModelTest, ReproducesTable3ThroughputFairRow) {
  // Paper Table 3, RF row: every node gets 0.436 Mbps; total 1.742 Mbps.
  const Allocation rf = ThroughputFairAllocation(Table3Nodes());
  for (double r : rf.throughput_bps) {
    EXPECT_NEAR(r / 1e6, 0.436, 0.001);
  }
  EXPECT_NEAR(rf.total_bps / 1e6, 1.742, 0.004);
}

TEST(FairnessModelTest, ReproducesTable3TimeFairRow) {
  // Paper Table 3, TF row: 0.202, 0.373, 1.30, 1.30; total 3.175 Mbps.
  const Allocation tf = TimeFairAllocation(Table3Nodes());
  EXPECT_NEAR(tf.throughput_bps[0] / 1e6, 0.202, 0.001);
  EXPECT_NEAR(tf.throughput_bps[1] / 1e6, 0.373, 0.001);
  EXPECT_NEAR(tf.throughput_bps[2] / 1e6, 1.30, 0.005);
  EXPECT_NEAR(tf.throughput_bps[3] / 1e6, 1.30, 0.005);
  // The paper's printed total (3.175) sums the rounded per-node entries; exact
  // arithmetic on the Table 2 betas gives 3.169.
  EXPECT_NEAR(tf.total_bps / 1e6, 3.175, 0.01);
}

TEST(FairnessModelTest, Table3GainIs82Percent) {
  EXPECT_NEAR(TimeFairGain(Table3Nodes()), 1.82, 0.01);
}

TEST(FairnessModelTest, EqualRatesMakeNotionsCoincide) {
  std::vector<NodeModel> nodes(3, NodeModel{5.189e6, 1500.0, 1.0});
  const Allocation rf = ThroughputFairAllocation(nodes);
  const Allocation tf = TimeFairAllocation(nodes);
  for (size_t i = 0; i < nodes.size(); ++i) {
    EXPECT_NEAR(rf.throughput_bps[i], tf.throughput_bps[i], 1.0);
    EXPECT_NEAR(rf.channel_time[i], tf.channel_time[i], 1e-9);
  }
  EXPECT_NEAR(rf.total_bps, tf.total_bps, 1.0);
}

TEST(FairnessModelTest, ChannelTimesSumToOne) {
  const Allocation rf = ThroughputFairAllocation(Table3Nodes());
  const Allocation tf = TimeFairAllocation(Table3Nodes());
  double rf_sum = 0.0;
  double tf_sum = 0.0;
  for (size_t i = 0; i < 4; ++i) {
    rf_sum += rf.channel_time[i];
    tf_sum += tf.channel_time[i];
  }
  EXPECT_NEAR(rf_sum, 1.0, 1e-12);
  EXPECT_NEAR(tf_sum, 1.0, 1e-12);
}

TEST(FairnessModelTest, BaselineProperty) {
  // Paper Section 1: under TF, a node's throughput equals what it would get if all
  // competitors ran at its rate. With n nodes at baseline beta, each gets beta/n.
  const auto& betas = PaperTable2Baselines();
  const double beta1 = betas.at(phy::WifiRate::k1Mbps);
  // Mixed cell: 1 Mbps node among three 11 Mbps nodes.
  const Allocation mixed = TimeFairAllocation(Table3Nodes());
  EXPECT_NEAR(mixed.throughput_bps[0], beta1 / 4.0, 1.0);
  // All-1Mbps cell of the same size.
  std::vector<NodeModel> all_slow(4, NodeModel{beta1, 1500.0, 1.0});
  const Allocation slow = TimeFairAllocation(all_slow);
  EXPECT_NEAR(mixed.throughput_bps[0], slow.throughput_bps[0], 1.0);
}

TEST(FairnessModelTest, RfThroughputDominatedBySlowestNode) {
  // Fig. 2's observation: the pair total sits much closer to the all-slow cell than to
  // the naive average of the two single-rate cells.
  const auto& betas = PaperTable2Baselines();
  std::vector<NodeModel> pair = {{betas.at(phy::WifiRate::k11Mbps), 1500.0, 1.0},
                                 {betas.at(phy::WifiRate::k1Mbps), 1500.0, 1.0}};
  const double total = ThroughputFairAllocation(pair).total_bps;
  const double naive_avg =
      (betas.at(phy::WifiRate::k11Mbps) + betas.at(phy::WifiRate::k1Mbps)) / 2.0;
  EXPECT_LT(total, 0.5 * naive_avg);  // "Less than half of what one might expect."
  EXPECT_NEAR(total / 1e6, 1.395, 0.01);  // Eq. 6 with Table 2 betas.
}

TEST(FairnessModelTest, PacketSizeDiversityAffectsAllocations) {
  // Eq. 8-10: equal rates but different packet sizes skew both T(i) and R(i).
  std::vector<NodeModel> nodes = {{5.0e6, 1500.0, 1.0}, {5.0e6, 300.0, 1.0}};
  const Allocation rf = ThroughputFairAllocation(nodes);
  EXPECT_GT(rf.channel_time[0], rf.channel_time[1]);
  EXPECT_GT(rf.throughput_bps[0], rf.throughput_bps[1]);
}

TEST(FairnessModelTest, WeightedTimeFairness) {
  std::vector<NodeModel> nodes = {{10e6, 1500.0, 3.0}, {10e6, 1500.0, 1.0}};
  const Allocation tf = TimeFairAllocation(nodes);
  EXPECT_NEAR(tf.channel_time[0], 0.75, 1e-12);
  EXPECT_NEAR(tf.throughput_bps[0] / tf.throughput_bps[1], 3.0, 1e-9);
}

TEST(AnalyticBaselineTest, WithinTenPercentOfPaperTable2) {
  const auto& paper = PaperTable2Baselines();
  for (const auto& [rate, beta] : paper) {
    const double model = AnalyticTcpBaseline(rate);
    EXPECT_NEAR(model / beta, 1.0, 0.10)
        << "rate " << phy::RateName(rate) << ": model " << model << " vs paper " << beta;
  }
}

TEST(AnalyticBaselineTest, MonotoneInRate) {
  double last = 0.0;
  for (phy::WifiRate r : phy::DsssRates()) {
    const double beta = AnalyticTcpBaseline(r);
    EXPECT_GT(beta, last);
    last = beta;
  }
}

TEST(AnalyticBaselineTest, UdpExceedsTcp) {
  AnalyticBaselineConfig udp;
  udp.traffic = TrafficKind::kUdp;
  EXPECT_GT(AnalyticBaseline(phy::WifiRate::k11Mbps, 2, udp),
            AnalyticTcpBaseline(phy::WifiRate::k11Mbps));
}

TEST(AnalyticBaselineTest, LargerPacketsMoreEfficient) {
  AnalyticBaselineConfig big;
  AnalyticBaselineConfig small;
  small.ip_packet_bytes = 500;
  EXPECT_GT(AnalyticBaseline(phy::WifiRate::k11Mbps, 2, big),
            AnalyticBaseline(phy::WifiRate::k11Mbps, 2, small));
}

TEST(TaskModelTest, EqualTasksFinishTogetherUnderRf) {
  const auto& betas = PaperTable2Baselines();
  std::vector<Task> tasks = {{betas.at(phy::WifiRate::k1Mbps), 1e6, 1.0},
                             {betas.at(phy::WifiRate::k11Mbps), 1e6, 1.0}};
  const TaskOutcome rf = RunTaskModel(tasks, FairnessNotion::kThroughputFair);
  EXPECT_NEAR(rf.completion_sec[0], rf.completion_sec[1], 1e-6);
  EXPECT_NEAR(rf.avg_task_time_sec, rf.final_task_time_sec, 1e-6);
}

TEST(TaskModelTest, FinalTaskTimeInvariantAcrossNotions) {
  // Work conservation (paper Table 1): the schedule notion cannot change the last
  // completion when total channel-time demand is fixed.
  const auto& betas = PaperTable2Baselines();
  std::vector<Task> tasks = {{betas.at(phy::WifiRate::k1Mbps), 1e6, 1.0},
                             {betas.at(phy::WifiRate::k11Mbps), 1e6, 1.0}};
  const TaskOutcome rf = RunTaskModel(tasks, FairnessNotion::kThroughputFair);
  const TaskOutcome tf = RunTaskModel(tasks, FairnessNotion::kTimeFair);
  EXPECT_NEAR(rf.final_task_time_sec, tf.final_task_time_sec, 1e-6);
}

TEST(TaskModelTest, TimeFairImprovesAvgTaskTime) {
  const auto& betas = PaperTable2Baselines();
  std::vector<Task> tasks = {{betas.at(phy::WifiRate::k1Mbps), 1e6, 1.0},
                             {betas.at(phy::WifiRate::k11Mbps), 1e6, 1.0}};
  const TaskOutcome rf = RunTaskModel(tasks, FairnessNotion::kThroughputFair);
  const TaskOutcome tf = RunTaskModel(tasks, FairnessNotion::kTimeFair);
  EXPECT_LT(tf.avg_task_time_sec, rf.avg_task_time_sec);
}

TEST(TaskModelTest, SlowNodeCompletionUnchangedByTf) {
  // Baseline property in the task model: the 1 Mbps node's completion time under TF in
  // a mixed cell equals its completion in an all-slow cell.
  const auto& betas = PaperTable2Baselines();
  const double beta1 = betas.at(phy::WifiRate::k1Mbps);
  std::vector<Task> mixed = {{beta1, 1e6, 1.0},
                             {betas.at(phy::WifiRate::k11Mbps), 1e6, 1.0}};
  std::vector<Task> all_slow = {{beta1, 1e6, 1.0}, {beta1, 1e6, 1.0}};
  const TaskOutcome tf_mixed = RunTaskModel(mixed, FairnessNotion::kTimeFair);
  const TaskOutcome tf_slow = RunTaskModel(all_slow, FairnessNotion::kTimeFair);
  // While both tasks are active the slow node progresses at beta1/2 in both cells; its
  // mixed-cell completion can only be earlier (it inherits capacity once the fast node
  // finishes), never later.
  EXPECT_LE(tf_mixed.completion_sec[0], tf_slow.completion_sec[0] + 1e-9);
  const double solo_lower_bound = 1e6 * 8.0 / beta1;
  EXPECT_GE(tf_mixed.completion_sec[0], solo_lower_bound);
}

TEST(TaskModelTest, SingleTaskUsesFullChannel) {
  std::vector<Task> tasks = {{8e6, 1e6, 1.0}};
  for (auto notion : {FairnessNotion::kThroughputFair, FairnessNotion::kTimeFair}) {
    const TaskOutcome out = RunTaskModel(tasks, notion);
    EXPECT_NEAR(out.final_task_time_sec, 1.0, 1e-9);
  }
}

TEST(TaskModelTest, EmptyTaskListIsHarmless) {
  const TaskOutcome out = RunTaskModel({}, FairnessNotion::kTimeFair);
  EXPECT_EQ(out.completion_sec.size(), 0u);
  EXPECT_DOUBLE_EQ(out.final_task_time_sec, 0.0);
}

}  // namespace
}  // namespace tbf::model
