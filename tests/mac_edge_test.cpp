// DCF edge cases: ACK corruption, EIFS after corrupted frames, collision accounting,
// airtime attribution, and mixed b/g coexistence at the MAC layer.
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "tbf/mac/medium.h"
#include "tbf/net/packet.h"
#include "tbf/phy/channel.h"
#include "tbf/sim/simulator.h"

namespace tbf::mac {
namespace {

// Process-lifetime pool: frames and exchange records may be released during teardown of
// media/simulators declared in any order, so the pool must outlive them all.
net::PacketPool& TestPool() {
  static net::PacketPool pool;
  return pool;
}

class Station : public FrameProvider, public FrameSink {
 public:
  Station(Medium* medium, NodeId id, NodeId peer, phy::WifiRate rate, int64_t budget = -1)
      : id_(id), peer_(peer), rate_(rate), budget_(budget), entity_(medium, id, this, this) {}

  void Start() { entity_.NotifyBacklog(); }

  std::optional<MacFrame> NextFrame() override {
    if (budget_ == 0) {
      return std::nullopt;
    }
    if (budget_ > 0) {
      --budget_;
    }
    auto p = net::MakeUdpPacket(TestPool(), id_, peer_, id_, 0, 1500, seq_++, 0);
    return MakeDataFrame(id_, peer_, std::move(p), rate_);
  }

  void OnTxComplete(const MacFrame&, bool success, int attempts, TimeNs) override {
    ++completions_;
    successes_ += success ? 1 : 0;
    attempts_ += attempts;
  }

  void OnFrameReceived(const MacFrame&) override { ++received_; }

  NodeId id_;
  NodeId peer_;
  phy::WifiRate rate_;
  int64_t budget_;
  int64_t seq_ = 0;
  int64_t completions_ = 0;
  int64_t successes_ = 0;
  int64_t attempts_ = 0;
  int64_t received_ = 0;
  DcfEntity entity_;
};

// Loss model that corrupts only MAC ACK frames (14 bytes) on a chosen link.
class AckKiller : public phy::LossModel {
 public:
  AckKiller(NodeId src, NodeId dst, double p) : src_(src), dst_(dst), p_(p) {}

  double FrameLossProb(NodeId src, NodeId dst, int frame_bytes,
                       phy::WifiRate) const override {
    if (src == src_ && dst == dst_ && frame_bytes == phy::kMacAckFrameBytes) {
      return p_;
    }
    return 0.0;
  }

 private:
  NodeId src_;
  NodeId dst_;
  double p_;
};

TEST(MacEdgeTest, LostAckCausesRetransmissionButDataIsDelivered) {
  sim::Simulator sim;
  sim::Rng rng(3);
  AckKiller loss(/*src=*/2, /*dst=*/1, 1.0);  // Receiver's ACKs never survive.
  Medium medium(&sim, phy::MixedModeTimings(), &loss, &rng);
  Station rx(&medium, 2, 1, phy::WifiRate::k11Mbps, 0);
  Station tx(&medium, 1, 2, phy::WifiRate::k11Mbps, 1);
  tx.Start();
  sim.RunUntil(Sec(1));
  // Data reaches the receiver on every attempt, but the sender never sees an ACK and
  // eventually drops the frame after retry exhaustion.
  EXPECT_EQ(tx.successes_, 0);
  EXPECT_EQ(tx.completions_, 1);
  EXPECT_EQ(tx.attempts_, 8);
  EXPECT_EQ(rx.received_, 8);  // Each retry is (re)delivered; transports dedup by seq.
}

TEST(MacEdgeTest, OccasionalAckLossOnlySlowsThingsDown) {
  sim::Simulator sim;
  sim::Rng rng(3);
  AckKiller loss(2, 1, 0.2);
  Medium medium(&sim, phy::MixedModeTimings(), &loss, &rng);
  Station rx(&medium, 2, 1, phy::WifiRate::k11Mbps, 0);
  Station tx(&medium, 1, 2, phy::WifiRate::k11Mbps, 200);
  tx.Start();
  sim.RunUntil(Sec(2));
  EXPECT_EQ(tx.successes_, 200);
  EXPECT_GT(tx.attempts_, 220);  // ~1.25 attempts per frame.
  EXPECT_GE(rx.received_, 200);
}

TEST(MacEdgeTest, CollisionTimeChargedToBothOwners) {
  sim::Simulator sim;
  sim::Rng rng(5);
  phy::PerfectChannel loss;
  Medium medium(&sim, phy::MixedModeTimings(), &loss, &rng);
  Station sink(&medium, 3, 1, phy::WifiRate::k11Mbps, 0);
  Station a(&medium, 1, 3, phy::WifiRate::k11Mbps);
  Station b(&medium, 2, 3, phy::WifiRate::k11Mbps);
  a.Start();
  b.Start();
  sim.RunUntil(Sec(5));
  ASSERT_GT(medium.collisions(), 0);
  // Both stations got airtime charged; shares near 1/2 each even with collisions.
  EXPECT_NEAR(medium.airtime_meter().Share(1), 0.5, 0.05);
  EXPECT_NEAR(medium.airtime_meter().Share(2), 0.5, 0.05);
}

TEST(MacEdgeTest, BusyTimeNeverExceedsWallClock) {
  sim::Simulator sim;
  sim::Rng rng(5);
  phy::PerfectChannel loss;
  Medium medium(&sim, phy::MixedModeTimings(), &loss, &rng);
  Station sink(&medium, 3, 1, phy::WifiRate::k1Mbps, 0);
  Station a(&medium, 1, 3, phy::WifiRate::k1Mbps);
  Station b(&medium, 2, 3, phy::WifiRate::k11Mbps);
  a.Start();
  b.Start();
  sim.RunUntil(Sec(3));
  EXPECT_LE(medium.busy_time(), Sec(3));
  EXPECT_GT(medium.busy_time(), Sec(3) * 8 / 10);  // Saturated cell stays mostly busy.
}

TEST(MacEdgeTest, MixedBgCellSharesOpportunitiesEqually) {
  // An ERP-OFDM (54 Mbps) station and a DSSS (11 Mbps) station in one mixed-mode cell:
  // DCF still hands out equal opportunities - the g node's frames are just shorter.
  sim::Simulator sim;
  sim::Rng rng(9);
  phy::PerfectChannel loss;
  Medium medium(&sim, phy::MixedModeTimings(), &loss, &rng);
  Station sink(&medium, 3, 1, phy::WifiRate::k11Mbps, 0);
  Station g_node(&medium, 1, 3, phy::WifiRate::k54Mbps);
  Station b_node(&medium, 2, 3, phy::WifiRate::k11Mbps);
  g_node.Start();
  b_node.Start();
  sim.RunUntil(Sec(5));
  const double frame_ratio =
      static_cast<double>(g_node.successes_) / static_cast<double>(b_node.successes_);
  EXPECT_NEAR(frame_ratio, 1.0, 0.1);
  // And the b node dominates the airtime (the 802.11g-dragging effect at MAC level).
  EXPECT_GT(medium.airtime_meter().Share(2), 0.60);
}

TEST(MacEdgeTest, PureOfdmTimingsRunFaster) {
  auto run = [](const phy::MacTimings& timings) {
    sim::Simulator sim;
    sim::Rng rng(1);
    phy::PerfectChannel loss;
    Medium medium(&sim, timings, &loss, &rng);
    Station rx(&medium, 2, 1, phy::WifiRate::k54Mbps, 0);
    Station tx(&medium, 1, 2, phy::WifiRate::k54Mbps);
    tx.Start();
    sim.RunUntil(Sec(2));
    return tx.successes_;
  };
  // 9 us slots + CWmin 15 beat 20 us slots + CWmin 31 at identical PHY rate.
  EXPECT_GT(run(phy::PureOfdmTimings()), run(phy::MixedModeTimings()) * 11 / 10);
}

TEST(MacEdgeTest, ManyStationsStillFair) {
  sim::Simulator sim;
  sim::Rng rng(11);
  phy::PerfectChannel loss;
  Medium medium(&sim, phy::MixedModeTimings(), &loss, &rng);
  Station sink(&medium, 99, 1, phy::WifiRate::k11Mbps, 0);
  std::vector<std::unique_ptr<Station>> stations;
  for (NodeId id = 1; id <= 8; ++id) {
    stations.push_back(std::make_unique<Station>(&medium, id, 99, phy::WifiRate::k11Mbps));
  }
  for (auto& s : stations) {
    s->Start();
  }
  sim.RunUntil(Sec(10));
  int64_t min_tx = INT64_MAX;
  int64_t max_tx = 0;
  for (auto& s : stations) {
    min_tx = std::min(min_tx, s->successes_);
    max_tx = std::max(max_tx, s->successes_);
  }
  EXPECT_GT(min_tx, 0);
  EXPECT_LT(static_cast<double>(max_tx) / static_cast<double>(min_tx), 1.2);
  // More contenders -> more collisions, still bounded.
  const double collision_frac =
      static_cast<double>(medium.collisions()) / static_cast<double>(medium.exchanges());
  EXPECT_GT(collision_frac, 0.05);
  EXPECT_LT(collision_frac, 0.35);
}

TEST(MacEdgeTest, RetryUsesExponentialBackoff) {
  // With a dead link, inter-attempt gaps should grow (CW doubling). We measure via
  // total time to exhaust retries being much larger than 8 back-to-back attempts.
  sim::Simulator sim;
  sim::Rng rng(2);
  phy::FixedPerLink loss;
  loss.SetLinkPer(1, 2, 1.0);
  Medium medium(&sim, phy::MixedModeTimings(), &loss, &rng);
  Station rx(&medium, 2, 1, phy::WifiRate::k11Mbps, 0);
  Station tx(&medium, 1, 2, phy::WifiRate::k11Mbps, 1);
  tx.Start();
  const int64_t events = sim.RunUntil(Sec(5));
  EXPECT_GT(events, 0);
  EXPECT_EQ(tx.completions_, 1);
  EXPECT_EQ(tx.successes_, 0);
  // Every attempt put exactly one (unacked) data frame on the air: busy time is
  // precisely 8 frame airtimes, the rest of the cycle being timeout + growing backoff.
  EXPECT_EQ(medium.busy_time(), 8 * phy::FrameAirtime(1536, phy::WifiRate::k11Mbps));
  EXPECT_EQ(tx.entity_.retransmissions(), 8);
}

TEST(MacEdgeTest, ObserversSeeEveryExchangeOnceInBusyEndOrder) {
  // All attached observers must see the same exchange stream: every exchange exactly
  // once, delivered at (and ordered by) busy_end. Guards the single-dispatch-event
  // optimization (one scheduled event per record iterating all observers).
  class Recorder : public MediumObserver {
   public:
    explicit Recorder(sim::Simulator* sim) : sim_(sim) {}
    void OnExchange(const ExchangeRecord& record) override {
      EXPECT_EQ(sim_->Now(), record.busy_end);
      EXPECT_GE(record.busy_end, last_busy_end_);
      last_busy_end_ = record.busy_end;
      ++count_;
    }
    sim::Simulator* sim_;
    TimeNs last_busy_end_ = 0;
    int64_t count_ = 0;
  };

  sim::Simulator sim;
  sim::Rng rng(1);
  phy::PerfectChannel perfect;
  Medium medium(&sim, phy::MixedModeTimings(), &perfect, &rng);
  Recorder first(&sim);
  Recorder second(&sim);
  medium.AddObserver(&first);
  medium.AddObserver(&second);

  Station sink(&medium, 3, 1, phy::WifiRate::k11Mbps, 0);
  Station a(&medium, 1, 3, phy::WifiRate::k11Mbps, 200);
  Station b(&medium, 2, 3, phy::WifiRate::k1Mbps, 200);
  a.Start();
  b.Start();
  sim.RunUntil(Sec(30));  // Bounded budgets: every exchange completes inside the run.

  // Collisions produce one record per transmitter, so records >= exchanges.
  EXPECT_GE(first.count_, medium.exchanges());
  EXPECT_EQ(first.count_, medium.exchanges() + medium.collisions());
  EXPECT_EQ(first.count_, second.count_);
  EXPECT_GT(first.count_, 0);
}

TEST(MacEdgeTest, IdleStationsPayNoPerExchangeWork) {
  // A cell with hundreds of associated-but-idle stations must not be touched on every
  // exchange: the EIFS/DIFS update is restricted to contenders and winners, and idle
  // entities sync lazily when they next contend.
  sim::Simulator sim;
  sim::Rng rng(1);
  phy::PerfectChannel perfect;
  Medium medium(&sim, phy::MixedModeTimings(), &perfect, &rng);

  Station sink(&medium, 300, 1, phy::WifiRate::k11Mbps, 0);
  Station a(&medium, 1, 300, phy::WifiRate::k11Mbps);
  Station b(&medium, 2, 300, phy::WifiRate::k11Mbps);
  std::vector<std::unique_ptr<Station>> idle;
  for (NodeId id = 3; id < 3 + 256; ++id) {
    idle.push_back(std::make_unique<Station>(&medium, id, 300, phy::WifiRate::k11Mbps, 0));
  }
  a.Start();
  b.Start();
  sim.RunUntil(Sec(2));

  ASSERT_GT(medium.exchanges(), 500);
  // Two active contenders (+ winners) per exchange, never the 256 idle stations.
  EXPECT_LT(medium.ifs_updates(), medium.exchanges() * 6);
  EXPECT_GT(a.successes_, 0);
  EXPECT_GT(b.successes_, 0);
}

}  // namespace
}  // namespace tbf::mac
