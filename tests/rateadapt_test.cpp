#include <gtest/gtest.h>

#include "tbf/rateadapt/rate_controller.h"

namespace tbf::rateadapt {
namespace {

TEST(FixedRateTest, ReturnsDefaultAndPinned) {
  FixedRateController ctrl(phy::WifiRate::k5_5Mbps);
  EXPECT_EQ(ctrl.CurrentRate(1), phy::WifiRate::k5_5Mbps);
  ctrl.SetRate(1, phy::WifiRate::k1Mbps);
  EXPECT_EQ(ctrl.CurrentRate(1), phy::WifiRate::k1Mbps);
  EXPECT_EQ(ctrl.CurrentRate(2), phy::WifiRate::k5_5Mbps);
  ctrl.OnTxResult(1, false, 5);  // No-op.
  EXPECT_EQ(ctrl.CurrentRate(1), phy::WifiRate::k1Mbps);
}

TEST(ArfTest, StepsDownAfterConsecutiveFailures) {
  ArfController arf;
  EXPECT_EQ(arf.CurrentRate(1), phy::WifiRate::k11Mbps);
  arf.OnTxResult(1, false, 8);
  EXPECT_EQ(arf.CurrentRate(1), phy::WifiRate::k11Mbps);  // One failure is tolerated.
  arf.OnTxResult(1, false, 8);
  EXPECT_EQ(arf.CurrentRate(1), phy::WifiRate::k5_5Mbps);
}

TEST(ArfTest, ProbesUpAfterSuccessStreak) {
  ArfConfig config;
  config.initial_rate = phy::WifiRate::k5_5Mbps;
  config.up_after_successes = 5;
  ArfController arf(config);
  for (int i = 0; i < 5; ++i) {
    arf.OnTxResult(1, true, 1);
  }
  EXPECT_EQ(arf.CurrentRate(1), phy::WifiRate::k11Mbps);
}

TEST(ArfTest, FailedProbeFallsBackImmediately) {
  ArfConfig config;
  config.initial_rate = phy::WifiRate::k5_5Mbps;
  config.up_after_successes = 5;
  ArfController arf(config);
  for (int i = 0; i < 5; ++i) {
    arf.OnTxResult(1, true, 1);
  }
  ASSERT_EQ(arf.CurrentRate(1), phy::WifiRate::k11Mbps);
  arf.OnTxResult(1, false, 8);  // Probe frame failed: drop straight back down.
  EXPECT_EQ(arf.CurrentRate(1), phy::WifiRate::k5_5Mbps);
}

TEST(ArfTest, RetriedSuccessCountsAgainstLink) {
  ArfController arf;
  // Delivered but needing 3+ attempts -> treated as a failure signal.
  arf.OnTxResult(1, true, 4);
  arf.OnTxResult(1, true, 4);
  EXPECT_EQ(arf.CurrentRate(1), phy::WifiRate::k5_5Mbps);
}

TEST(ArfTest, StaysAtFloor) {
  ArfConfig config;
  config.initial_rate = phy::WifiRate::k1Mbps;
  ArfController arf(config);
  for (int i = 0; i < 10; ++i) {
    arf.OnTxResult(1, false, 8);
  }
  EXPECT_EQ(arf.CurrentRate(1), phy::WifiRate::k1Mbps);
}

TEST(ArfTest, PerPeerIsolation) {
  ArfController arf;
  arf.OnTxResult(1, false, 8);
  arf.OnTxResult(1, false, 8);
  EXPECT_EQ(arf.CurrentRate(1), phy::WifiRate::k5_5Mbps);
  EXPECT_EQ(arf.CurrentRate(2), phy::WifiRate::k11Mbps);
}

TEST(ArfTest, SeedSetsRate) {
  ArfController arf;
  arf.Seed(1, phy::WifiRate::k2Mbps);
  EXPECT_EQ(arf.CurrentRate(1), phy::WifiRate::k2Mbps);
}

TEST(CompositeTest, RoutesAdaptiveAndPinnedPeers) {
  CompositeRateController ctrl;
  ctrl.PinRate(1, phy::WifiRate::k2Mbps);
  ctrl.MarkAdaptive(2, phy::WifiRate::k11Mbps);
  EXPECT_EQ(ctrl.CurrentRate(1), phy::WifiRate::k2Mbps);
  EXPECT_EQ(ctrl.CurrentRate(2), phy::WifiRate::k11Mbps);
  // Failures move only the adaptive peer.
  ctrl.OnTxResult(1, false, 8);
  ctrl.OnTxResult(1, false, 8);
  ctrl.OnTxResult(2, false, 8);
  ctrl.OnTxResult(2, false, 8);
  EXPECT_EQ(ctrl.CurrentRate(1), phy::WifiRate::k2Mbps);
  EXPECT_EQ(ctrl.CurrentRate(2), phy::WifiRate::k5_5Mbps);
}

}  // namespace
}  // namespace tbf::rateadapt
