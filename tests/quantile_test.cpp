// Property tests for stats::QuantileSketch: the documented relative-error bound against
// an exact-sort oracle on uniform / Pareto / adversarial-sorted inputs, merge(A,B)
// equivalence to a whole-stream sketch, and bitwise determinism of merged state
// independent of merge order and thread interleaving (the sweep-pool invariance the
// scenario Results rely on).
#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "tbf/sim/random.h"
#include "tbf/stats/quantile_sketch.h"
#include "tbf/sweep/sweep_runner.h"

namespace tbf::stats {
namespace {

constexpr double kQuantiles[] = {0.0, 0.01, 0.10, 0.50, 0.90, 0.95, 0.99, 1.0};

// The sketch's rank rule, mirrored exactly: the q-quantile of n sorted samples is the
// element of rank max(1, ceil(q*n)).
double ExactQuantile(std::vector<double> sorted, double q) {
  const auto n = static_cast<double>(sorted.size());
  const auto rank = std::max<int64_t>(1, static_cast<int64_t>(std::ceil(q * n)));
  return sorted[static_cast<size_t>(rank - 1)];
}

void ExpectWithinBound(const QuantileSketch& sketch, std::vector<double> samples,
                       const char* label) {
  std::sort(samples.begin(), samples.end());
  for (const double q : kQuantiles) {
    const double exact = ExactQuantile(samples, q);
    const double est = sketch.Quantile(q);
    EXPECT_NEAR(est, exact, sketch.relative_error() * exact + 1e-9)
        << label << " q=" << q;
  }
}

std::vector<double> UniformSamples(int n, uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<double> v;
  v.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    v.push_back(1e3 + rng.UniformDouble() * 1e8);  // us-scale latencies in ns.
  }
  return v;
}

std::vector<double> ParetoSamples(int n, uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<double> v;
  v.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    v.push_back(rng.Pareto(5e4, 1.2));  // Heavy tail: spans many bucket decades.
  }
  return v;
}

TEST(QuantileSketchTest, EmptySketchReadsZero) {
  QuantileSketch sketch;
  EXPECT_TRUE(sketch.empty());
  EXPECT_EQ(sketch.count(), 0);
  EXPECT_EQ(sketch.Quantile(0.5), 0.0);
  EXPECT_EQ(sketch.min(), 0.0);
  EXPECT_EQ(sketch.max(), 0.0);
}

TEST(QuantileSketchTest, SingleValueIsExact) {
  QuantileSketch sketch;
  sketch.Add(123456.0);
  for (const double q : kQuantiles) {
    // One sample: every quantile clamps into [min, max] = the sample itself.
    EXPECT_DOUBLE_EQ(sketch.Quantile(q), 123456.0);
  }
}

TEST(QuantileSketchTest, UniformWithinRelativeErrorBound) {
  const std::vector<double> samples = UniformSamples(20'000, 7);
  QuantileSketch sketch;
  for (const double x : samples) {
    sketch.Add(x);
  }
  EXPECT_EQ(sketch.count(), 20'000);
  ExpectWithinBound(sketch, samples, "uniform");
}

TEST(QuantileSketchTest, ParetoWithinRelativeErrorBound) {
  const std::vector<double> samples = ParetoSamples(20'000, 11);
  QuantileSketch sketch;
  for (const double x : samples) {
    sketch.Add(x);
  }
  ExpectWithinBound(sketch, samples, "pareto");
}

TEST(QuantileSketchTest, AdversarialSortedInputWithinBound) {
  // Sorted input is the classic killer for sampling-based sketches (every new value
  // lands past everything seen); bucketed sketches must not care. Geometric spacing
  // makes every sample hit a different bucket region.
  std::vector<double> samples;
  double x = 10.0;
  for (int i = 0; i < 5'000; ++i) {
    samples.push_back(x);
    x *= 1.004;
  }
  QuantileSketch ascending;
  for (const double v : samples) {
    ascending.Add(v);
  }
  ExpectWithinBound(ascending, samples, "sorted-ascending");

  QuantileSketch descending;
  for (auto it = samples.rbegin(); it != samples.rend(); ++it) {
    descending.Add(*it);
  }
  // Same multiset, opposite insertion order: bitwise identical state.
  EXPECT_EQ(ascending, descending);
}

TEST(QuantileSketchTest, OutOfRangeValuesClampIntoEdgeBuckets) {
  QuantileSketch sketch;
  sketch.Add(0.0);     // Below kMinValue.
  sketch.Add(-5.0);    // Negative.
  sketch.Add(1e18);    // Above kMaxValue.
  EXPECT_EQ(sketch.count(), 3);
  EXPECT_EQ(sketch.min(), -5.0);
  EXPECT_EQ(sketch.max(), 1e18);
  // Quantiles stay inside the observed range even for clamped samples.
  for (const double q : kQuantiles) {
    EXPECT_GE(sketch.Quantile(q), -5.0);
    EXPECT_LE(sketch.Quantile(q), 1e18);
  }
}

// ---- Merge properties ------------------------------------------------------------------

TEST(QuantileSketchMergeTest, MergeEqualsWholeStreamSketch) {
  const std::vector<double> a = ParetoSamples(8'000, 3);
  const std::vector<double> b = UniformSamples(12'000, 5);

  QuantileSketch whole;
  for (const double x : a) {
    whole.Add(x);
  }
  for (const double x : b) {
    whole.Add(x);
  }

  QuantileSketch sa;
  for (const double x : a) {
    sa.Add(x);
  }
  QuantileSketch sb;
  for (const double x : b) {
    sb.Add(x);
  }
  sa.Merge(sb);

  // Merging partial sketches is *identical* (not merely within-bound) to sketching the
  // concatenated stream: bucket counts are insertion-order independent.
  EXPECT_EQ(sa, whole);

  std::vector<double> all = a;
  all.insert(all.end(), b.begin(), b.end());
  ExpectWithinBound(sa, all, "merged");
}

TEST(QuantileSketchMergeTest, MergeWithEmptyIsIdentity) {
  QuantileSketch sketch;
  for (const double x : UniformSamples(1'000, 9)) {
    sketch.Add(x);
  }
  const QuantileSketch before = sketch;
  QuantileSketch empty;
  sketch.Merge(empty);
  EXPECT_EQ(sketch, before);

  QuantileSketch target;
  target.Merge(before);
  EXPECT_EQ(target, before);
}

TEST(QuantileSketchMergeTest, MergeOrderAndGroupingInvariant) {
  // Eight shards merged left-to-right, right-to-left, and as a balanced tree must
  // produce bitwise identical sketches - this is what lets SweepRunner results merge
  // deterministically no matter how jobs landed on workers.
  std::vector<QuantileSketch> shards(8);
  for (size_t i = 0; i < shards.size(); ++i) {
    for (const double x : ParetoSamples(1'500, 100 + i)) {
      shards[i].Add(x);
    }
  }

  QuantileSketch forward;
  for (const QuantileSketch& s : shards) {
    forward.Merge(s);
  }
  QuantileSketch backward;
  for (auto it = shards.rbegin(); it != shards.rend(); ++it) {
    backward.Merge(*it);
  }
  std::vector<QuantileSketch> tree = shards;
  while (tree.size() > 1) {
    std::vector<QuantileSketch> next;
    for (size_t i = 0; i + 1 < tree.size(); i += 2) {
      QuantileSketch pair = tree[i];
      pair.Merge(tree[i + 1]);
      next.push_back(pair);
    }
    if (tree.size() % 2 == 1) {
      next.push_back(tree.back());
    }
    tree = std::move(next);
  }

  EXPECT_EQ(forward, backward);
  EXPECT_EQ(forward, tree.front());
}

TEST(QuantileSketchSweepTest, ParallelShardingBitIdenticalAcrossPoolSizes) {
  // Build shards on a SweepRunner pool (the TSan configuration runs this across real
  // threads) and fold them in submission order: any pool size must yield the same
  // sketch bit for bit.
  auto build_shard = [](uint64_t seed) {
    QuantileSketch sketch;
    sim::Rng rng(seed);
    for (int i = 0; i < 4'000; ++i) {
      sketch.Add(rng.Pareto(2e4, 1.3));
    }
    return sketch;
  };

  auto run_pool = [&](int pool) {
    sweep::SweepRunner runner(pool);
    std::vector<std::function<QuantileSketch()>> jobs;
    for (uint64_t seed = 1; seed <= 12; ++seed) {
      jobs.push_back([&build_shard, seed] { return build_shard(seed); });
    }
    const std::vector<QuantileSketch> shards = runner.Map(std::move(jobs));
    QuantileSketch merged;
    for (const QuantileSketch& s : shards) {
      merged.Merge(s);
    }
    return merged;
  };

  const QuantileSketch serial = run_pool(1);
  EXPECT_EQ(serial.count(), 48'000);
  EXPECT_EQ(run_pool(2), serial);
  EXPECT_EQ(run_pool(4), serial);
}

// ---------------------------------------------------------------------------
// Serialization: the campaign wire format for sketches. The bar is bitwise - a
// deserialized sketch compares equal (operator==, raw double bits) and merging
// after the wire trip is indistinguishable from merging the originals.
// ---------------------------------------------------------------------------

QuantileSketch SampleSketch(uint64_t seed, int n) {
  QuantileSketch sketch;
  sim::Rng rng(seed);
  for (int i = 0; i < n; ++i) {
    sketch.Add(rng.Pareto(3e4, 1.25));
  }
  return sketch;
}

TEST(QuantileSketchSerializeTest, RoundTripIsBitwiseEqualAndCanonical) {
  for (const QuantileSketch& original :
       {QuantileSketch(), SampleSketch(3, 1), SampleSketch(4, 10'000)}) {
    std::string bytes;
    original.SerializeTo(&bytes);
    size_t pos = 0;
    QuantileSketch back;
    ASSERT_TRUE(QuantileSketch::DeserializeFrom(bytes, &pos, &back));
    EXPECT_EQ(pos, bytes.size());
    EXPECT_EQ(back, original);
    // Canonical: re-serializing decoded state reproduces the same bytes.
    std::string again;
    back.SerializeTo(&again);
    EXPECT_EQ(again, bytes);
  }
}

TEST(QuantileSketchSerializeTest, DeserializeAdvancesPastOneSketch) {
  std::string bytes;
  SampleSketch(5, 500).SerializeTo(&bytes);
  SampleSketch(6, 700).SerializeTo(&bytes);  // Two sketches back to back.
  size_t pos = 0;
  QuantileSketch first, second;
  ASSERT_TRUE(QuantileSketch::DeserializeFrom(bytes, &pos, &first));
  ASSERT_TRUE(QuantileSketch::DeserializeFrom(bytes, &pos, &second));
  EXPECT_EQ(pos, bytes.size());
  EXPECT_EQ(first, SampleSketch(5, 500));
  EXPECT_EQ(second, SampleSketch(6, 700));
}

TEST(QuantileSketchSerializeTest, MergeAfterWireTripEqualsMergeBefore) {
  QuantileSketch merged_before;
  QuantileSketch merged_after;
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    const QuantileSketch shard = SampleSketch(seed, 2'000);
    merged_before.Merge(shard);
    std::string bytes;
    shard.SerializeTo(&bytes);
    size_t pos = 0;
    QuantileSketch shipped;
    ASSERT_TRUE(QuantileSketch::DeserializeFrom(bytes, &pos, &shipped));
    merged_after.Merge(shipped);
  }
  EXPECT_EQ(merged_after, merged_before);
}

TEST(QuantileSketchSerializeTest, TruncatedPayloadsAreRejectedWithoutAdvancing) {
  std::string bytes;
  SampleSketch(9, 3'000).SerializeTo(&bytes);
  for (size_t n = 0; n < bytes.size(); ++n) {
    size_t pos = 0;
    QuantileSketch out;
    EXPECT_FALSE(QuantileSketch::DeserializeFrom(
        std::string_view(bytes.data(), n), &pos, &out))
        << "prefix " << n;
    EXPECT_EQ(pos, 0u) << "prefix " << n;  // Rejection never consumes input.
  }
}

TEST(QuantileSketchSerializeTest, CorruptFieldsAreRejected) {
  std::string bytes;
  SampleSketch(10, 3'000).SerializeTo(&bytes);
  size_t rejected = 0;
  for (size_t pos = 0; pos < bytes.size(); ++pos) {
    for (const unsigned char mask : {0x01, 0x80}) {
      std::string bad = bytes;
      bad[pos] = static_cast<char>(bad[pos] ^ mask);
      size_t p = 0;
      QuantileSketch out;
      if (!QuantileSketch::DeserializeFrom(bad, &p, &out)) {
        ++rejected;
      }
    }
  }
  // Not every single-bit flip is detectable without a checksum (the envelope CRC
  // covers that on the wire), but the structural checks - magic, error bound,
  // window bounds, count consistency - must catch a large share.
  EXPECT_GT(rejected, bytes.size() / 2);

  // Targeted corruptions that must always be caught:
  {  // Bad magic.
    std::string bad = bytes;
    bad[0] = static_cast<char>(bad[0] ^ 0xff);
    size_t p = 0;
    QuantileSketch out;
    EXPECT_FALSE(QuantileSketch::DeserializeFrom(bad, &p, &out));
  }
  {  // Count inflated: sum of bucket counts no longer matches.
    std::string bad = bytes;
    bad[12] = static_cast<char>(bad[12] ^ 0x01);  // Low byte of count.
    size_t p = 0;
    QuantileSketch out;
    EXPECT_FALSE(QuantileSketch::DeserializeFrom(bad, &p, &out));
  }
}

}  // namespace
}  // namespace tbf::stats
