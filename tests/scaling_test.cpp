// Scaling sweeps: the paper's claims must hold "for any number of nodes" (Section 2.1).
// These parameterized tests grow the cell and check DCF opportunity fairness, TBR airtime
// equality, the Eq. 12 n-node prediction, and weighted shares.
#include <gtest/gtest.h>

#include "tbf/model/baseline.h"
#include "tbf/model/fairness_model.h"
#include "tbf/scenario/wlan.h"

namespace tbf {
namespace {

using phy::WifiRate;
using scenario::Direction;
using scenario::QdiscKind;
using scenario::Results;
using scenario::ScenarioConfig;
using scenario::Wlan;

ScenarioConfig SweepConfig(QdiscKind qdisc) {
  ScenarioConfig config;
  config.qdisc = qdisc;
  config.warmup = Sec(2);
  config.duration = Sec(10);
  return config;
}

class NodeCountSweep : public ::testing::TestWithParam<int> {};

TEST_P(NodeCountSweep, TbrEqualizesAirtimeWithOneSlowNode) {
  const int n = GetParam();
  Wlan wlan(SweepConfig(QdiscKind::kTbr));
  wlan.AddStation(1, WifiRate::k1Mbps);
  wlan.AddBulkTcp(1, Direction::kDownlink);
  for (NodeId id = 2; id <= n; ++id) {
    wlan.AddStation(id, WifiRate::k11Mbps);
    wlan.AddBulkTcp(id, Direction::kDownlink);
  }
  const Results res = wlan.Run();
  const double fair = 1.0 / n;
  for (NodeId id = 1; id <= n; ++id) {
    EXPECT_NEAR(res.AirtimeShare(id), fair, fair * 0.35) << "node " << id << " of " << n;
  }
}

TEST_P(NodeCountSweep, DcfCollapsesToSlowestRegardlessOfCellSize) {
  // The anomaly worsens with more fast nodes? No: with DCF the total stays pinned near
  // the equal-throughput solution of Eq. 7, well below the TBR cell.
  const int n = GetParam();
  auto run = [&](QdiscKind kind) {
    Wlan wlan(SweepConfig(kind));
    wlan.AddStation(1, WifiRate::k1Mbps);
    wlan.AddBulkTcp(1, Direction::kDownlink);
    for (NodeId id = 2; id <= n; ++id) {
      wlan.AddStation(id, WifiRate::k11Mbps);
      wlan.AddBulkTcp(id, Direction::kDownlink);
    }
    return wlan.Run();
  };
  const Results fifo = run(QdiscKind::kFifo);
  const Results tbr = run(QdiscKind::kTbr);

  // Eq. 7 and Eq. 13 predictions from the paper's Table 2 betas.
  const auto& betas = model::PaperTable2Baselines();
  std::vector<model::NodeModel> nodes = {{betas.at(WifiRate::k1Mbps), 1500.0, 1.0}};
  for (int i = 1; i < n; ++i) {
    nodes.push_back({betas.at(WifiRate::k11Mbps), 1500.0, 1.0});
  }
  const double eq7 = model::ThroughputFairAllocation(nodes).total_bps / 1e6;
  const double eq13 = model::TimeFairAllocation(nodes).total_bps / 1e6;

  EXPECT_NEAR(fifo.AggregateMbps() / eq7, 1.0, 0.25) << "n=" << n;
  EXPECT_NEAR(tbr.AggregateMbps() / eq13, 1.0, 0.25) << "n=" << n;
  EXPECT_GT(tbr.AggregateMbps() / fifo.AggregateMbps(), 1.4) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Cells, NodeCountSweep, ::testing::Values(2, 3, 4, 5),
                         [](const auto& info) {
                           return "n" + std::to_string(info.param);
                         });

class WeightSweep : public ::testing::TestWithParam<double> {};

TEST_P(WeightSweep, AirtimeTracksWeight) {
  const double w = GetParam();
  ScenarioConfig config = SweepConfig(QdiscKind::kTbr);
  config.tbr.enable_rate_adjust = false;
  Wlan wlan(config);
  wlan.AddStation(1, WifiRate::k11Mbps);
  wlan.AddStation(2, WifiRate::k11Mbps);
  wlan.AddBulkTcp(1, Direction::kDownlink);
  wlan.AddBulkTcp(2, Direction::kDownlink);
  wlan.BuildNow();
  wlan.tbr()->SetWeight(1, w);
  wlan.tbr()->SetWeight(2, 1.0);
  const Results res = wlan.Run();
  const double expected = w / (w + 1.0);
  EXPECT_NEAR(res.AirtimeShare(1), expected, 0.08) << "weight " << w;
}

INSTANTIATE_TEST_SUITE_P(Weights, WeightSweep, ::testing::Values(1.0, 2.0, 3.0, 5.0),
                         [](const auto& info) {
                           return "w" + std::to_string(static_cast<int>(info.param));
                         });

TEST(ScalingTest, BaselinePropertyHoldsInLargerCells) {
  // Paper Section 1: "competing against n nodes ... identical to competing against n
  // nodes all using its data rate". 1 Mbps node among three 11 Mbps nodes vs among
  // three 1 Mbps nodes, under TBR.
  auto run_mixed = [] {
    Wlan wlan(SweepConfig(QdiscKind::kTbr));
    wlan.AddStation(1, WifiRate::k1Mbps);
    wlan.AddBulkTcp(1, Direction::kDownlink);
    for (NodeId id = 2; id <= 4; ++id) {
      wlan.AddStation(id, WifiRate::k11Mbps);
      wlan.AddBulkTcp(id, Direction::kDownlink);
    }
    return wlan.Run().GoodputMbps(1);
  };
  auto run_uniform = [] {
    Wlan wlan(SweepConfig(QdiscKind::kFifo));
    for (NodeId id = 1; id <= 4; ++id) {
      wlan.AddStation(id, WifiRate::k1Mbps);
      wlan.AddBulkTcp(id, Direction::kDownlink);
    }
    return wlan.Run().GoodputMbps(1);
  };
  EXPECT_NEAR(run_mixed() / run_uniform(), 1.0, 0.30);
}

}  // namespace
}  // namespace tbf
