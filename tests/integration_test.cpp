// End-to-end scenario tests: full stack (DCF + AP qdisc + TCP/UDP + wired backbone),
// asserting the paper's headline phenomena. Durations are kept short (8-12 s of simulated
// time); tolerances are wider than the bench harnesses'.
#include <gtest/gtest.h>

#include "tbf/scenario/wlan.h"

namespace tbf::scenario {
namespace {

ScenarioConfig ShortRun(QdiscKind qdisc) {
  ScenarioConfig config;
  config.qdisc = qdisc;
  config.warmup = Sec(2);
  config.duration = Sec(10);
  return config;
}

Results RunPair(QdiscKind qdisc, phy::WifiRate r1, phy::WifiRate r2, Direction dir) {
  Wlan wlan(ShortRun(qdisc));
  wlan.AddStation(1, r1);
  wlan.AddStation(2, r2);
  wlan.AddBulkTcp(1, dir);
  wlan.AddBulkTcp(2, dir);
  return wlan.Run();
}

TEST(IntegrationTest, EqualRateTcpSplitsEvenly) {
  const Results res = RunPair(QdiscKind::kFifo, phy::WifiRate::k11Mbps,
                              phy::WifiRate::k11Mbps, Direction::kUplink);
  EXPECT_NEAR(res.GoodputMbps(1) / res.GoodputMbps(2), 1.0, 0.15);
  // Paper Fig. 2 / Table 2: two 11 Mbps nodes total ~5.1 Mbps.
  EXPECT_NEAR(res.AggregateMbps(), 5.2, 0.5);
}

TEST(IntegrationTest, RateAnomalyUplink) {
  // Paper Fig. 2: with one node at 1 Mbps, both achieve ~0.67 Mbps and the total drops
  // to ~1.35 Mbps; the slow node occupies ~6.4x the fast node's channel time.
  const Results res = RunPair(QdiscKind::kFifo, phy::WifiRate::k1Mbps,
                              phy::WifiRate::k11Mbps, Direction::kUplink);
  EXPECT_NEAR(res.GoodputMbps(1) / res.GoodputMbps(2), 1.0, 0.25);
  EXPECT_NEAR(res.AggregateMbps(), 1.37, 0.25);
  EXPECT_GT(res.AirtimeShare(1) / res.AirtimeShare(2), 4.5);
}

TEST(IntegrationTest, RateAnomalyDownlink) {
  const Results res = RunPair(QdiscKind::kFifo, phy::WifiRate::k1Mbps,
                              phy::WifiRate::k11Mbps, Direction::kDownlink);
  EXPECT_NEAR(res.GoodputMbps(1) / res.GoodputMbps(2), 1.0, 0.25);
  EXPECT_LT(res.AggregateMbps(), 1.8);
}

TEST(IntegrationTest, BaselineThroughputsMatchPaperTable2) {
  // beta(d, 1500, 2) from the simulator vs the paper's measurements.
  const struct {
    phy::WifiRate rate;
    double paper_mbps;
  } cases[] = {
      {phy::WifiRate::k11Mbps, 5.189},
      {phy::WifiRate::k5_5Mbps, 3.327},
      {phy::WifiRate::k2Mbps, 1.493},
      {phy::WifiRate::k1Mbps, 0.806},
  };
  for (const auto& c : cases) {
    const Results res = RunPair(QdiscKind::kFifo, c.rate, c.rate, Direction::kUplink);
    EXPECT_NEAR(res.AggregateMbps() / c.paper_mbps, 1.0, 0.10)
        << "at " << phy::RateName(c.rate);
  }
}

TEST(IntegrationTest, TbrEqualsNormalForEqualRates) {
  // Paper Fig. 8: TBR adds no overhead when there is no rate diversity.
  for (Direction dir : {Direction::kUplink, Direction::kDownlink}) {
    const Results normal =
        RunPair(QdiscKind::kFifo, phy::WifiRate::k11Mbps, phy::WifiRate::k11Mbps, dir);
    const Results tbr =
        RunPair(QdiscKind::kTbr, phy::WifiRate::k11Mbps, phy::WifiRate::k11Mbps, dir);
    EXPECT_NEAR(tbr.AggregateMbps() / normal.AggregateMbps(), 1.0, 0.06);
  }
}

TEST(IntegrationTest, TbrEqualizesAirtimeDownlink) {
  const Results res = RunPair(QdiscKind::kTbr, phy::WifiRate::k1Mbps,
                              phy::WifiRate::k11Mbps, Direction::kDownlink);
  EXPECT_NEAR(res.AirtimeShare(1), 0.5, 0.08);
  EXPECT_NEAR(res.AirtimeShare(2), 0.5, 0.08);
  // And the fast node's throughput recovers toward beta/2.
  EXPECT_GT(res.GoodputMbps(2), 2.0);
}

TEST(IntegrationTest, TbrDoublesAggregateDownlink1vs11) {
  // Paper Fig. 9(a): +103% in the 1vs11 case.
  const Results normal = RunPair(QdiscKind::kFifo, phy::WifiRate::k1Mbps,
                                 phy::WifiRate::k11Mbps, Direction::kDownlink);
  const Results tbr = RunPair(QdiscKind::kTbr, phy::WifiRate::k1Mbps,
                              phy::WifiRate::k11Mbps, Direction::kDownlink);
  EXPECT_GT(tbr.AggregateMbps() / normal.AggregateMbps(), 1.7);
}

TEST(IntegrationTest, TbrImprovesAggregateUplink1vs11) {
  // Paper Fig. 9(b): large uplink gains via ack regulation, no client modification.
  const Results normal = RunPair(QdiscKind::kFifo, phy::WifiRate::k1Mbps,
                                 phy::WifiRate::k11Mbps, Direction::kUplink);
  const Results tbr = RunPair(QdiscKind::kTbr, phy::WifiRate::k1Mbps,
                              phy::WifiRate::k11Mbps, Direction::kUplink);
  EXPECT_GT(tbr.AggregateMbps() / normal.AggregateMbps(), 1.5);
  EXPECT_LT(tbr.AirtimeShare(1), 0.70);  // vs ~0.86 without TBR.
}

TEST(IntegrationTest, TbrBaselineProperty) {
  // The 1 Mbps node under TBR in a 1vs11 cell performs like in a 1vs1 cell.
  const Results mixed = RunPair(QdiscKind::kTbr, phy::WifiRate::k1Mbps,
                                phy::WifiRate::k11Mbps, Direction::kDownlink);
  const Results all_slow = RunPair(QdiscKind::kFifo, phy::WifiRate::k1Mbps,
                                   phy::WifiRate::k1Mbps, Direction::kDownlink);
  EXPECT_NEAR(mixed.GoodputMbps(1) / all_slow.GoodputMbps(1), 1.0, 0.20);
}

TEST(IntegrationTest, Table4DemandAdaptation) {
  // Paper Table 4: an app-limited node keeps its demand and the greedy node takes the
  // rest, with or without TBR.
  for (QdiscKind qdisc : {QdiscKind::kFifo, QdiscKind::kTbr}) {
    ScenarioConfig config = ShortRun(qdisc);
    config.warmup = Sec(6);  // Give ADJUSTRATEEVENT time to converge.
    Wlan wlan(config);
    wlan.AddStation(1, phy::WifiRate::k11Mbps);
    wlan.AddStation(2, phy::WifiRate::k11Mbps);
    wlan.AddBulkTcp(1, Direction::kUplink);
    auto& f2 = wlan.AddBulkTcp(2, Direction::kUplink);
    f2.app_limit_bps = Mbps(2.1);
    const Results res = wlan.Run();
    EXPECT_NEAR(res.GoodputMbps(2), 2.05, 0.25) << "qdisc " << static_cast<int>(qdisc);
    EXPECT_GT(res.GoodputMbps(1), 2.6) << "qdisc " << static_cast<int>(qdisc);
  }
}

TEST(IntegrationTest, ThreeNodeUdpUplinkEqualRates) {
  // Paper Fig. 4: equal throughputs for equal-rate nodes; uplink beats downlink totals.
  ScenarioConfig config = ShortRun(QdiscKind::kFifo);
  Wlan wlan(config);
  for (NodeId id = 1; id <= 3; ++id) {
    wlan.AddStation(id, phy::WifiRate::k11Mbps);
    wlan.AddSaturatingUdp(id, Direction::kUplink);
  }
  const Results res = wlan.Run();
  for (NodeId id = 1; id <= 3; ++id) {
    EXPECT_NEAR(res.GoodputMbps(id) * 3.0 / res.AggregateMbps(), 1.0, 0.15);
  }
  EXPECT_GT(res.AggregateMbps(), 5.5);
}

TEST(IntegrationTest, UdpDownlinkBelowUplink) {
  auto run = [](Direction dir) {
    ScenarioConfig config = ShortRun(QdiscKind::kRoundRobin);
    Wlan wlan(config);
    for (NodeId id = 1; id <= 3; ++id) {
      wlan.AddStation(id, phy::WifiRate::k11Mbps);
      wlan.AddSaturatingUdp(id, dir);
    }
    return wlan.Run().AggregateMbps();
  };
  // One sending node (the AP) cannot saturate the channel as well as three (post-tx
  // backoff overhead is amortized across senders) - paper Fig. 4 discussion.
  EXPECT_LT(run(Direction::kDownlink), run(Direction::kUplink));
}

TEST(IntegrationTest, TcpBelowUdp) {
  auto run = [](Transport transport) {
    ScenarioConfig config = ShortRun(QdiscKind::kRoundRobin);
    Wlan wlan(config);
    for (NodeId id = 1; id <= 2; ++id) {
      wlan.AddStation(id, phy::WifiRate::k11Mbps);
      FlowSpec fs;
      fs.client = id;
      fs.direction = Direction::kDownlink;
      fs.transport = transport;
      fs.udp_rate = Mbps(9);
      wlan.AddFlow(fs);
    }
    return wlan.Run().AggregateMbps();
  };
  EXPECT_LT(run(Transport::kTcp), run(Transport::kUdp));
}

TEST(IntegrationTest, LossyLinkReducesThroughputAndTbrStillFair) {
  ScenarioConfig config = ShortRun(QdiscKind::kTbr);
  Wlan wlan(config);
  wlan.AddStation(1, phy::WifiRate::k11Mbps, /*per=*/0.10);
  wlan.AddStation(2, phy::WifiRate::k11Mbps, /*per=*/0.0);
  wlan.AddBulkTcp(1, Direction::kDownlink);
  wlan.AddBulkTcp(2, Direction::kDownlink);
  const Results res = wlan.Run();
  EXPECT_GT(res.GoodputMbps(2), res.GoodputMbps(1));
  EXPECT_GT(res.AggregateMbps(), 3.5);
}

TEST(IntegrationTest, TaskFlowsCompleteAndReportTimes) {
  ScenarioConfig config = ShortRun(QdiscKind::kFifo);
  config.duration = Sec(30);
  Wlan wlan(config);
  wlan.AddStation(1, phy::WifiRate::k11Mbps);
  wlan.AddStation(2, phy::WifiRate::k11Mbps);
  auto& f1 = wlan.AddBulkTcp(1, Direction::kUplink);
  f1.task_bytes = 2'000'000;
  auto& f2 = wlan.AddBulkTcp(2, Direction::kUplink);
  f2.task_bytes = 2'000'000;
  const Results res = wlan.Run();
  for (const FlowResult& fr : res.flows) {
    EXPECT_GT(fr.completion_time, 0) << "flow " << fr.flow_id;
    EXPECT_LT(fr.completion_time, Sec(25));
  }
}

TEST(IntegrationTest, WeightedTbrSkewsAirtime) {
  // QoS extension (paper 4.5): unequal channel-time shares via bucket weights.
  ScenarioConfig config = ShortRun(QdiscKind::kTbr);
  config.tbr.enable_rate_adjust = false;  // Hold the 3:1 split fixed.
  Wlan wlan(config);
  wlan.AddStation(1, phy::WifiRate::k11Mbps);
  wlan.AddStation(2, phy::WifiRate::k11Mbps);
  wlan.AddBulkTcp(1, Direction::kDownlink);
  wlan.AddBulkTcp(2, Direction::kDownlink);
  wlan.BuildNow();
  ASSERT_NE(wlan.tbr(), nullptr);
  wlan.tbr()->SetWeight(1, 3.0);
  wlan.tbr()->SetWeight(2, 1.0);
  const Results res = wlan.Run();
  EXPECT_NEAR(res.AirtimeShare(1), 0.75, 0.08);
  EXPECT_NEAR(res.GoodputMbps(1) / res.GoodputMbps(2), 3.0, 0.8);
}

TEST(IntegrationTest, DeterministicAcrossRuns) {
  auto run = [] {
    Wlan wlan(ShortRun(QdiscKind::kTbr));
    wlan.AddStation(1, phy::WifiRate::k1Mbps);
    wlan.AddStation(2, phy::WifiRate::k11Mbps);
    wlan.AddBulkTcp(1, Direction::kDownlink);
    wlan.AddBulkTcp(2, Direction::kDownlink);
    return wlan.Run();
  };
  const Results a = run();
  const Results b = run();
  EXPECT_EQ(a.goodput_bps.at(1), b.goodput_bps.at(1));
  EXPECT_EQ(a.goodput_bps.at(2), b.goodput_bps.at(2));
  EXPECT_EQ(a.mac_collisions, b.mac_collisions);
}

}  // namespace
}  // namespace tbf::scenario
