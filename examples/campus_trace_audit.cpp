// Offline trace audit, the workflow a campus network operator would run on captured
// traffic to decide whether airtime fairness is worth deploying:
//   1. generate (or load) a frame-level trace of a residence-hall AP;
//   2. measure rate diversity (is the precondition present?);
//   3. find congested intervals and check whether they are multi-user;
//   4. if both hold, estimate the aggregate win from switching to time-based fairness.
#include <cstdio>

#include "tbf/model/baseline.h"
#include "tbf/model/fairness_model.h"
#include "tbf/trace/generators.h"
#include "tbf/trace/trace.h"
#include "tbf/stats/table.h"

int main() {
  using namespace tbf;

  std::printf("Campus AP audit: should this access point get airtime fairness?\n\n");

  // Step 1: a busy afternoon at the dorm AP (synthetic stand-in for a pcap).
  sim::Rng rng(17);
  trace::ResidenceConfig residence;
  residence.duration = Sec(2 * 60 * 60);
  const trace::TraceLog dorm = trace::GenerateResidenceTrace(residence, rng);

  // Step 2: rate diversity, from a workshop-style mixed-rate capture.
  const trace::TraceLog session = trace::GenerateWorkshopTrace(trace::Ws2Config(), rng);
  const auto mix = trace::RateByteFractions(session);
  double below_top = 0.0;
  std::printf("Rate mixture (bytes): ");
  for (const auto& [rate, frac] : mix) {
    std::printf("%s=%.0f%% ", std::string(phy::RateName(rate)).c_str(), frac * 100.0);
    if (rate != phy::WifiRate::k11Mbps) {
      below_top += frac;
    }
  }
  std::printf("\n -> %.0f%% of bytes below 11 Mbps: rate diversity %s\n\n",
              below_top * 100.0, below_top > 0.2 ? "PRESENT" : "absent");

  // Step 3: congestion structure.
  const auto busy = trace::FindBusyIntervals(dorm, Sec(1), 4e6);
  const auto summary = trace::SummarizeHeaviestUser(busy);
  std::printf("Busy 1-second intervals: %d; mean concurrent users %.1f; single-user "
              "saturation in %.0f%% of them\n -> congestion is %s\n\n",
              summary.busy_intervals, summary.mean_distinct_users,
              summary.solo_saturation_fraction * 100.0,
              summary.mean_distinct_users > 1.5 ? "MULTI-USER" : "single-user");

  // Step 4: expected gain if this mixture competes during congestion.
  const auto& betas = model::PaperTable2Baselines();
  std::vector<model::NodeModel> cell;
  for (const auto& [rate, frac] : mix) {
    // One representative node per rate bin, weighted presence via duplication threshold.
    if (frac > 0.05) {
      cell.push_back({betas.at(rate), 1500.0, 1.0});
    }
  }
  if (cell.size() < 2) {
    std::printf("Cell too uniform; nothing to gain.\n");
    return 0;
  }
  const double rf = model::ThroughputFairAllocation(cell).total_bps / 1e6;
  const double tf = model::TimeFairAllocation(cell).total_bps / 1e6;
  stats::Table table({"policy", "predicted aggregate Mbps"});
  table.AddRow({"today (throughput-fair DCF+FIFO)", stats::Table::Num(rf, 2)});
  table.AddRow({"with TBR (time-fair)", stats::Table::Num(tf, 2)});
  table.Print();
  std::printf("\nPredicted aggregate gain from TBR: %s\n",
              stats::Table::PercentDelta(tf / rf).c_str());
  return 0;
}
