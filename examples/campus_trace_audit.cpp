// Offline trace audit, the workflow a campus network operator would run on captured
// traffic to decide whether airtime fairness is worth deploying:
//   1. generate (or load) a frame-level trace of a residence-hall AP;
//   2. measure rate diversity (is the precondition present?);
//   3. find congested intervals and check whether they are multi-user;
//   4. if both hold, estimate the aggregate win from switching to time-based fairness;
//   5. *replay* a slice of the capture through the full simulated cell under both
//      policies and read back measured latency percentiles - the fluid estimate of
//      step 4 checked against simulated, not just generated, timings.
#include <cstdio>
#include <set>

#include "tbf/model/baseline.h"
#include "tbf/model/fairness_model.h"
#include "tbf/scenario/wlan.h"
#include "tbf/sweep/sweep_runner.h"
#include "tbf/trace/generators.h"
#include "tbf/trace/replay.h"
#include "tbf/trace/trace.h"
#include "tbf/stats/table.h"

int main() {
  using namespace tbf;

  std::printf("Campus AP audit: should this access point get airtime fairness?\n\n");

  // Step 1: a busy afternoon at the dorm AP (synthetic stand-in for a pcap).
  sim::Rng rng(17);
  trace::ResidenceConfig residence;
  residence.duration = Sec(2 * 60 * 60);
  const trace::TraceLog dorm = trace::GenerateResidenceTrace(residence, rng);

  // Step 2: rate diversity, from a workshop-style mixed-rate capture.
  const trace::TraceLog session = trace::GenerateWorkshopTrace(trace::Ws2Config(), rng);
  const auto mix = trace::RateByteFractions(session);
  double below_top = 0.0;
  std::printf("Rate mixture (bytes): ");
  for (const auto& [rate, frac] : mix) {
    std::printf("%s=%.0f%% ", std::string(phy::RateName(rate)).c_str(), frac * 100.0);
    if (rate != phy::WifiRate::k11Mbps) {
      below_top += frac;
    }
  }
  std::printf("\n -> %.0f%% of bytes below 11 Mbps: rate diversity %s\n\n",
              below_top * 100.0, below_top > 0.2 ? "PRESENT" : "absent");

  // Step 3: congestion structure.
  const auto busy = trace::FindBusyIntervals(dorm, Sec(1), 4e6);
  const auto summary = trace::SummarizeHeaviestUser(busy);
  std::printf("Busy 1-second intervals: %d; mean concurrent users %.1f; single-user "
              "saturation in %.0f%% of them\n -> congestion is %s\n\n",
              summary.busy_intervals, summary.mean_distinct_users,
              summary.solo_saturation_fraction * 100.0,
              summary.mean_distinct_users > 1.5 ? "MULTI-USER" : "single-user");

  // Step 4: expected gain if this mixture competes during congestion.
  const auto& betas = model::PaperTable2Baselines();
  std::vector<model::NodeModel> cell;
  for (const auto& [rate, frac] : mix) {
    // One representative node per rate bin, weighted presence via duplication threshold.
    if (frac > 0.05) {
      cell.push_back({betas.at(rate), 1500.0, 1.0});
    }
  }
  if (cell.size() < 2) {
    std::printf("Cell too uniform; nothing to gain.\n");
    return 0;
  }
  const double rf = model::ThroughputFairAllocation(cell).total_bps / 1e6;
  const double tf = model::TimeFairAllocation(cell).total_bps / 1e6;
  stats::Table table({"policy", "predicted aggregate Mbps"});
  table.AddRow({"today (throughput-fair DCF+FIFO)", stats::Table::Num(rf, 2)});
  table.AddRow({"with TBR (time-fair)", stats::Table::Num(tf, 2)});
  table.Print();
  std::printf("\nPredicted aggregate gain from TBR: %s\n",
              stats::Table::PercentDelta(tf / rf).c_str());

  // Step 5: the fluid prediction is a capacity argument; user experience is a latency
  // distribution. Replay the first minutes of the capture through the simulator under
  // both policies and read the measured per-transfer percentiles back.
  trace::ReplayOptions replay_options;
  replay_options.horizon = Sec(10 * 60);
  const trace::TraceReplaySource source(dorm, replay_options);
  int64_t logged_transfers = 0;
  std::set<NodeId> replay_users;
  for (const trace::ReplayFlow& flow : source.flows()) {
    logged_transfers += static_cast<int64_t>(flow.tasks.size());
    replay_users.insert(flow.node);  // Flows are per (node, direction), users are nodes.
  }
  std::printf("\nReplaying the first %.0f min of the capture through the simulated "
              "cell (%zu users,\n%lld transfers, %.1f MB)...\n",
              ToSeconds(replay_options.horizon) / 60.0, replay_users.size(),
              static_cast<long long>(logged_transfers),
              static_cast<double>(source.total_bytes()) / 1e6);

  // Three policies: today's FIFO, stock TBR, and TBR with the packet-level
  // work-conserving fallback - the latter separates what the backlog costs: equal
  // *initial* time shares taxing cold bursts vs the regulator idling the channel.
  struct Policy {
    const char* name;
    scenario::QdiscKind kind;
    bool work_conserving;
  };
  const Policy policies[] = {
      {"today (DCF+FIFO)", scenario::QdiscKind::kFifo, false},
      {"with TBR", scenario::QdiscKind::kTbr, false},
      {"with TBR (work-conserving)", scenario::QdiscKind::kTbr, true},
      // The adaptive time-share family racing on the audited capture (appended so the
      // three rows above stay byte-comparable with earlier captures).
      {"with TBR-burst", scenario::QdiscKind::kTbrBurstCredit, false},
      {"with TBR-fast", scenario::QdiscKind::kTbrFastEwma, false},
      {"with TBR-hybrid", scenario::QdiscKind::kTbrCreditHybrid, false},
  };

  std::vector<sweep::ScenarioJob> jobs;
  for (const Policy& policy : policies) {
    sweep::ScenarioJob job;
    job.config.qdisc = policy.kind;
    job.config.tbr.work_conserving_fallback = policy.work_conserving;
    job.config.warmup = 0;
    job.config.duration = source.last_arrival() + Sec(300);
    for (int user = 1; user <= residence.users; ++user) {
      scenario::StationSpec station;
      station.id = user;
      // The residence capture does not log PHY rates per user; model the audited rate
      // diversity by parking every sixth user on a slow rung (mild diversity - the
      // cell must still be able to carry the capture's byte volume at all).
      station.rate = user % 6 == 0 ? phy::WifiRate::k5_5Mbps : phy::WifiRate::k11Mbps;
      job.stations.push_back(station);
    }
    for (const trace::ReplayFlow& flow : source.flows()) {
      job.flows.push_back(scenario::MakeTraceReplaySpec(flow));
    }
    jobs.push_back(std::move(job));
  }
  sweep::SweepRunner runner;
  const std::vector<scenario::Results> replayed = runner.RunScenarios(jobs);

  stats::Table measured({"policy", "transfers", "replayed MB", "p50 xfer s",
                         "p95 xfer s", "p99 xfer s", "p95 AP queue ms"});
  for (size_t i = 0; i < replayed.size(); ++i) {
    const scenario::Results& res = replayed[i];
    int64_t delivered = 0;
    for (const auto& fr : res.flows) {
      delivered += fr.bytes_delivered;
    }
    measured.AddRow({policies[i].name, std::to_string(res.tasks_completed),
                     stats::Table::Num(static_cast<double>(delivered) / 1e6, 1),
                     stats::Table::Num(ToSeconds(res.task_latency.p50), 2),
                     stats::Table::Num(ToSeconds(res.task_latency.p95), 2),
                     stats::Table::Num(ToSeconds(res.task_latency.p99), 2),
                     stats::Table::Num(res.ap_queue_delay.P95Ms(), 1)});
  }
  measured.Print();
  std::printf("\nThe percentile rows are simulated user experience, not generator "
              "output: each logged\ntransfer re-ran through DCF/TCP/the AP qdisc. A "
              "transfer count below the capture's\nmeans that policy left work "
              "backlogged past the audit window - itself a finding: with\nthis many "
              "mostly-idle users, stock TBR's equal initial time shares tax every "
              "cold\nburst at 1/N until the 500 ms adjuster converges "
              "(tests/trace_replay_test.cpp pins\nthe effect; a burst-credit "
              "experiment is the ROADMAP candidate to fix it).\n");
  return 0;
}
