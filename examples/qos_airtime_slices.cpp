// QoS extension (paper 4.5): weighted channel-time slices. Three tenants share one AP -
// a paying "premium" laptop, a normal user, and a background backup box - with 3:2:1
// airtime weights enforced by the weighted TBR. Each tenant's throughput scales with its
// weight times its link quality, and a tenant's slice is independent of *other* tenants'
// rates (per-slice baseline property).
#include <cstdio>

#include "tbf/scenario/wlan.h"
#include "tbf/stats/table.h"

int main() {
  using namespace tbf;

  std::printf("Weighted airtime slices: premium (w=3) vs standard (w=2) vs backup (w=1).\n\n");

  stats::Table table({"scenario", "premium Mbps", "standard Mbps", "backup Mbps",
                      "airtime premium", "airtime standard", "airtime backup"});

  const struct {
    const char* name;
    phy::WifiRate standard_rate;
  } scenarios[] = {
      {"all at 11 Mbps", phy::WifiRate::k11Mbps},
      {"standard user drops to 2 Mbps", phy::WifiRate::k2Mbps},
  };

  for (const auto& sc : scenarios) {
    scenario::ScenarioConfig config;
    config.qdisc = scenario::QdiscKind::kTbr;
    config.tbr.enable_rate_adjust = false;  // Contracted slices stay fixed.
    config.warmup = Sec(2);
    config.duration = Sec(20);

    scenario::Wlan wlan(config);
    wlan.AddStation(1, phy::WifiRate::k11Mbps);
    wlan.AddStation(2, sc.standard_rate);
    wlan.AddStation(3, phy::WifiRate::k11Mbps);
    wlan.AddBulkTcp(1, scenario::Direction::kDownlink);
    wlan.AddBulkTcp(2, scenario::Direction::kDownlink);
    wlan.AddBulkTcp(3, scenario::Direction::kUplink);  // The backup box uploads.

    wlan.BuildNow();
    wlan.tbr()->SetWeight(1, 3.0);
    wlan.tbr()->SetWeight(2, 2.0);
    wlan.tbr()->SetWeight(3, 1.0);

    const scenario::Results res = wlan.Run();
    table.AddRow({sc.name, stats::Table::Num(res.GoodputMbps(1)),
                  stats::Table::Num(res.GoodputMbps(2)),
                  stats::Table::Num(res.GoodputMbps(3)),
                  stats::Table::Num(res.AirtimeShare(1)),
                  stats::Table::Num(res.AirtimeShare(2)),
                  stats::Table::Num(res.AirtimeShare(3))});
  }
  table.Print();
  std::printf("\nWhen the standard tenant's link degrades to 2 Mbps, its own throughput "
              "drops,\nbut the premium and backup slices are insulated - channel time, "
              "not throughput,\nis the contracted resource.\n");
  return 0;
}
