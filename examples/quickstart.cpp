// Quickstart: build a two-node multi-rate WLAN, run it with a stock FIFO AP and with TBR,
// and print what changes. This is the library's "hello world".
//
//   $ ./build/examples/quickstart
//
// What to look for: under the stock AP both nodes get the same (collapsed) throughput and
// the 1 Mbps node hogs the channel; under TBR airtime splits 50/50 and the 11 Mbps node
// recovers most of its single-rate performance.
#include <cstdio>

#include "tbf/scenario/wlan.h"
#include "tbf/stats/table.h"

int main() {
  using namespace tbf;

  std::printf("Time-based fairness quickstart: 1 Mbps laptop vs 11 Mbps laptop, both\n"
              "downloading over TCP through one access point.\n\n");

  stats::Table table({"AP scheduler", "slow node Mbps", "fast node Mbps", "total Mbps",
                      "slow airtime", "fast airtime"});

  for (const auto& [qdisc, name] :
       {std::pair{scenario::QdiscKind::kFifo, "stock FIFO (throughput-fair)"},
        std::pair{scenario::QdiscKind::kTbr, "TBR (time-fair)"}}) {
    // 1. Describe the cell.
    scenario::ScenarioConfig config;
    config.qdisc = qdisc;
    config.warmup = Sec(2);
    config.duration = Sec(20);

    scenario::Wlan wlan(config);
    wlan.AddStation(/*id=*/1, phy::WifiRate::k1Mbps);    // Far node, weak signal.
    wlan.AddStation(/*id=*/2, phy::WifiRate::k11Mbps);   // Near node.

    // 2. Attach one bulk TCP download per node.
    wlan.AddBulkTcp(1, scenario::Direction::kDownlink);
    wlan.AddBulkTcp(2, scenario::Direction::kDownlink);

    // 3. Run and read the results.
    const scenario::Results res = wlan.Run();
    table.AddRow({name, stats::Table::Num(res.GoodputMbps(1)),
                  stats::Table::Num(res.GoodputMbps(2)),
                  stats::Table::Num(res.AggregateMbps()),
                  stats::Table::Num(res.AirtimeShare(1)),
                  stats::Table::Num(res.AirtimeShare(2))});
  }

  table.Print();
  std::printf("\nThe slow node loses little; the fast node (and the cell) roughly "
              "doubles.\nThat asymmetry is the paper's whole argument.\n");
  return 0;
}
