// A 16-AP office building on the sharded campus simulator: every floor quadrant has
// its own BSS - mixed-rate stations, bulk TCP both ways plus a short transfer per cell
// - and all of it backhauls to one server farm over the wired backbone. The building
// is simulated twice, FIFO (throughput-fair) vs TBR (time-fair), each run partitioned
// into 17 shards (16 cells + the wired core) advancing in conservative lookahead
// windows. The readout is the paper's story at building scale: time-based fairness
// lifts every cell's aggregate and collapses the short transfers' completion times,
// cell by cell, with bit-identical results no matter how many shard threads ran.
#include <cstdio>

#include "tbf/shard/campus_sim.h"
#include "tbf/stats/table.h"

namespace {

using namespace tbf;

constexpr int kAps = 16;
constexpr int kStationsPerCell = 8;
constexpr int64_t kShortTransferBytes = 100'000;

// One floor quadrant: eight stations, two on slow rungs (the far corners), bulk TCP
// alternating up/down, and one finite "send the deck" transfer on a fast station.
scenario::BssSpec MakeQuadrant() {
  scenario::BssSpec bss;
  for (NodeId id = 1; id <= kStationsPerCell; ++id) {
    scenario::StationSpec station;
    station.id = id;
    station.rate = id <= 2 ? phy::WifiRate::k2Mbps : phy::WifiRate::k11Mbps;
    bss.stations.push_back(station);

    scenario::FlowSpec flow;
    flow.client = id;
    flow.direction = id % 2 == 0 ? scenario::Direction::kDownlink
                                 : scenario::Direction::kUplink;
    flow.transport = scenario::Transport::kTcp;
    if (id == 3) {
      flow.task_bytes = kShortTransferBytes;  // The deck upload on a fast station.
    }
    bss.flows.push_back(flow);
  }
  return bss;
}

scenario::CampusResults RunBuilding(scenario::QdiscKind qdisc) {
  scenario::CampusConfig config;
  config.cell.qdisc = qdisc;
  config.cell.seed = 11;
  config.cell.warmup = Sec(1);
  config.cell.duration = Sec(10);

  shard::CampusSim building(config);  // Shard threads from TBF_SHARD_THREADS.
  for (int i = 0; i < kAps; ++i) {
    building.AddBss(MakeQuadrant());
  }
  const scenario::CampusResults results = building.Run();
  std::printf("%-14s %d cells, %d shards on %d threads, %lld lookahead windows, "
              "%lld packets crossed shards\n",
              qdisc == scenario::QdiscKind::kTbr ? "Exp-TBR(TF):" : "Exp-Normal(RF):",
              kAps, building.shard_count(), building.thread_count(),
              static_cast<long long>(results.windows),
              static_cast<long long>(results.cross_shard_packets));
  return results;
}

}  // namespace

int main() {
  using namespace tbf;

  std::printf("=== campus_cell: a 16-AP building under RF vs TF, sharded ===\n\n");

  const scenario::CampusResults fifo = RunBuilding(scenario::QdiscKind::kFifo);
  const scenario::CampusResults tbr = RunBuilding(scenario::QdiscKind::kTbr);

  stats::Table table({"cell", "RF Mbps", "TF Mbps", "RF task s", "TF task s",
                      "RF p95 q ms", "TF p95 q ms"});
  for (size_t i = 0; i < fifo.cells.size(); ++i) {
    const scenario::Results& rf = fifo.cells[i];
    const scenario::Results& tf = tbr.cells[i];
    table.AddRow({std::to_string(i), stats::Table::Num(rf.AggregateMbps(), 2),
                  stats::Table::Num(tf.AggregateMbps(), 2),
                  stats::Table::Num(rf.avg_task_time_sec, 2),
                  stats::Table::Num(tf.avg_task_time_sec, 2),
                  stats::Table::Num(rf.ap_queue_delay.P95Ms(), 1),
                  stats::Table::Num(tf.ap_queue_delay.P95Ms(), 1)});
  }
  table.Print();

  std::printf("\nBuilding aggregate: %.1f Mbps under RF, %.1f Mbps under TF "
              "(%d cells; every cell\nsees the paper's single-cell gain because cells "
              "only couple through the backbone).\nThe task column is each cell's "
              "short-transfer completion time: time-based fairness\nstops the slow "
              "rungs from inflating it, in all %d cells at once.\n",
              fifo.aggregate_bps / 1e6, tbr.aggregate_bps / 1e6, kAps, kAps);
  return 0;
}
