// A congested cafe hotspot: eight clients at SNR-derived rates (some behind walls, some
// near the counter), mixed workloads - bulk downloads, uploads, and short web-style
// transfers - under each AP scheduler. Demonstrates the task-model benefits: under time
// fairness the short transfers on fast nodes finish much sooner, while the slow bulk
// nodes keep their single-rate performance (the paper's baseline property).
#include <cstdio>
#include <vector>

#include "tbf/phy/channel.h"
#include "tbf/scenario/wlan.h"
#include "tbf/stats/table.h"

namespace {

using namespace tbf;

struct Customer {
  double distance_m;
  int walls;
  scenario::Direction direction;
  int64_t task_bytes;  // 0 = open-ended bulk transfer.
};

// Flow ids are assigned 1..N in AddFlow order, matching the customers array.
template <size_t N>
bool flow_is_task(int flow_id, const Customer (&customers)[N]) {
  return flow_id >= 1 && flow_id <= static_cast<int>(N) &&
         customers[flow_id - 1].task_bytes > 0;
}

}  // namespace

int main() {
  using namespace tbf;

  // Seats: two at the counter, the rest scattered, two in the back room.
  const Customer customers[] = {
      {2.0, 0, scenario::Direction::kDownlink, 0},          // Bulk download, strong.
      {3.0, 0, scenario::Direction::kUplink, 0},            // Photo backup, strong.
      {6.0, 0, scenario::Direction::kDownlink, 6'000'000},  // Short transfer.
      {8.0, 1, scenario::Direction::kDownlink, 6'000'000},
      {10.0, 1, scenario::Direction::kDownlink, 0},
      {12.0, 1, scenario::Direction::kUplink, 6'000'000},
      {14.0, 2, scenario::Direction::kDownlink, 0},         // Back room, slow.
      {16.0, 2, scenario::Direction::kDownlink, 2'000'000}, // Back room, slow + short.
  };

  phy::PathLossConfig path_config;
  path_config.path_loss_exponent = 4.0;
  path_config.wall_loss_db = 7.0;
  const phy::PathLossModel path(path_config);

  std::printf("Cafe hotspot: 8 customers, mixed rates and workloads.\n\n");

  stats::Table table({"scheduler", "aggregate Mbps", "slowest node Mbps",
                      "mean short-task s", "worst short-task s"});

  for (const auto& [qdisc, name] :
       {std::pair{scenario::QdiscKind::kFifo, "stock FIFO"},
        std::pair{scenario::QdiscKind::kRoundRobin, "round robin"},
        std::pair{scenario::QdiscKind::kTbr, "TBR (time-fair)"}}) {
    scenario::ScenarioConfig config;
    config.qdisc = qdisc;
    config.warmup = 0;  // Task times are measured from t=0.
    config.duration = Sec(150);

    scenario::Wlan wlan(config);
    NodeId id = 1;
    for (const Customer& c : customers) {
      const double snr = path.SnrDb(c.distance_m, c.walls);
      scenario::StationSpec spec;
      spec.id = id;
      spec.snr_db = snr;
      spec.rate = phy::RateForSnr(snr, /*ofdm_capable=*/false);
      spec.arf = true;
      wlan.AddStation(spec);
      auto& flow = wlan.AddBulkTcp(id, c.direction);
      flow.task_bytes = c.task_bytes;
      ++id;
    }

    const scenario::Results res = wlan.Run();

    // Slowest sustained rate among the open-ended bulk flows (finished tasks would
    // otherwise read as near-zero over the full window).
    double slowest = 1e18;
    double sum_task = 0.0;
    double worst_task = 0.0;
    int tasks = 0;
    int unfinished = 0;
    for (const auto& fr : res.flows) {
      if (flow_is_task(fr.flow_id, customers)) {
        if (fr.completion_time > 0) {
          sum_task += ToSeconds(fr.completion_time);
          worst_task = std::max(worst_task, ToSeconds(fr.completion_time));
          ++tasks;
        } else {
          ++unfinished;
        }
      } else {
        slowest = std::min(slowest, fr.goodput_bps / 1e6);
      }
    }
    std::string worst = tasks > 0 ? stats::Table::Num(worst_task, 1) : "-";
    if (unfinished > 0) {
      worst = ">150 (" + std::to_string(unfinished) + " unfinished)";
    }
    table.AddRow({name, stats::Table::Num(res.AggregateMbps(), 2),
                  stats::Table::Num(slowest, 2),
                  tasks > 0 ? stats::Table::Num(sum_task / tasks, 1) : "-", worst});
  }
  table.Print();
  std::printf("\nReading: stock FIFO posts the biggest aggregate only by starving the "
              "back-room\nnodes (slowest ~0.1 Mbps - unusable). Round robin protects them "
              "but collapses the\ncell to the slow nodes' pace. TBR holds every node at "
              "its single-rate baseline\n(slowest ~2x FIFO's) while keeping ~85%% of the "
              "aggregate - the paper's trade\nmade concrete.\n");
  return 0;
}
