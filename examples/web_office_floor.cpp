// An office floor at lunch hour: ten laptops browsing the web (on/off sources - Pareto
// page sizes, exponential reading pauses), one machine pushing a nightly-build artifact
// to the server as a sequence of equal-sized uploads, and one laptop in the dead corner
// that starts a sustained 1 Mbps-rate download - the paper's anomaly trigger. Shows the
// two scenario traffic models working together and what each AP scheduler does to
// user-visible latency: per-download times for the browsers, per-task completion times
// for the uploader.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "tbf/scenario/wlan.h"
#include "tbf/stats/table.h"

int main() {
  using namespace tbf;

  constexpr int kBrowsers = 10;
  constexpr NodeId kUploader = kBrowsers + 1;
  constexpr NodeId kCornerHog = kBrowsers + 2;

  std::printf("Office floor: %d web browsers + 1 sequenced uploader + 1 slow bulk hog.\n\n",
              kBrowsers);

  stats::Table table({"scheduler", "downloads", "mean dl s", "p95 dl s",
                      "upload task s (each)", "all uploads done s", "hog Mbps"});

  for (const auto& [qdisc, name] :
       {std::pair{scenario::QdiscKind::kFifo, "stock FIFO"},
        std::pair{scenario::QdiscKind::kRoundRobin, "round robin"},
        std::pair{scenario::QdiscKind::kTbr, "TBR (time-fair)"}}) {
    scenario::ScenarioConfig config;
    config.qdisc = qdisc;
    config.warmup = 0;  // Latencies are per task; no stats window needed.
    config.duration = Sec(180);

    scenario::Wlan wlan(config);
    for (NodeId id = 1; id <= kBrowsers; ++id) {
      // Window seats get clean 11 Mbps; the far corner drops to 2, one to 1.
      const phy::WifiRate rate = id <= 7   ? phy::WifiRate::k11Mbps
                                 : id <= 9 ? phy::WifiRate::k2Mbps
                                           : phy::WifiRate::k1Mbps;
      wlan.AddStation(id, rate);
      auto& flow = wlan.AddWebOnOff(id, scenario::Direction::kDownlink);
      flow.onoff.mean_flow_bytes = 192.0 * 1024.0;  // Image-heavy pages.
      flow.onoff.mean_think_sec = 8.0;              // Actually reading them.
    }
    wlan.AddStation(kUploader, phy::WifiRate::k11Mbps);
    // Four 3 MB artifact chunks, back to back on one connection.
    wlan.AddTaskSequence(kUploader, scenario::Direction::kUplink, 3'000'000, 4);

    // The dead-corner laptop pulls an OS update for the whole run at 1 Mbps - the
    // slow-node airtime hog that triggers the paper's rate anomaly under FIFO.
    wlan.AddStation(kCornerHog, phy::WifiRate::k1Mbps);
    wlan.AddBulkTcp(kCornerHog, scenario::Direction::kDownlink);

    const scenario::Results res = wlan.Run();

    std::vector<double> downloads;
    double upload_sum = 0.0;
    double upload_done = 0.0;
    int upload_tasks = 0;
    for (const auto& fr : res.flows) {
      if (fr.client == kUploader) {
        for (const TimeNs d : fr.task_durations) {
          upload_sum += ToSeconds(d);
          ++upload_tasks;
        }
        upload_done = fr.completion_time > 0 ? ToSeconds(fr.completion_time) : -1.0;
      } else if (fr.client != kCornerHog) {
        for (const TimeNs d : fr.task_durations) {
          downloads.push_back(ToSeconds(d));
        }
      }
    }
    std::sort(downloads.begin(), downloads.end());
    double mean = 0.0;
    for (const double d : downloads) {
      mean += d;
    }
    mean = downloads.empty() ? 0.0 : mean / static_cast<double>(downloads.size());
    const double p95 = downloads.empty() ? 0.0 : downloads[downloads.size() * 95 / 100];
    table.AddRow({name, std::to_string(downloads.size()), stats::Table::Num(mean, 2),
                  stats::Table::Num(p95, 2),
                  upload_tasks > 0 ? stats::Table::Num(upload_sum / upload_tasks, 1) : "-",
                  upload_done > 0 ? stats::Table::Num(upload_done, 1) : "unfinished",
                  stats::Table::Num(res.GoodputMbps(kCornerHog), 2)});
  }
  table.Print();
  std::printf(
      "\nReading: once the corner laptop starts its 1 Mbps-rate download, the stock "
      "FIFO\ncell shows the paper's anomaly - every page load queues behind slow-node "
      "airtime\nand the hog itself only gets ~0.4 Mbps. Per-client queues (round robin) "
      "recover\nmost of the browsing latency. TBR contains the hog hardest (it pays for "
      "airtime,\nnot packets) but its equal initial time-shares tax short bursts in a "
      "12-station\ncell until the rate adjuster redistributes; its clearest wins are "
      "under sustained\ncontention - see bench_fig6_web_onoff and "
      "bench_table1_packet_level.\n");
  return 0;
}
