#!/usr/bin/env bash
# Campaign fault-injection smoke: the CI gate for the campaign service's headline
# guarantee. Runs a ~200-job campaign twice:
#
#   1. serially in-process (the fault-free reference archive), then
#   2. distributed over a unix socket with two workers that deterministically
#      corrupt/truncate/crash/hang on ~20%+ of first executions - plus one worker
#      SIGKILLed from outside mid-campaign,
#
# and requires (a) the two archives to be byte-identical and (b) the coordinator's
# stats line to prove the faults actually happened (rejected payloads > 0).
#
# Usage: tools/campaign_smoke.sh <path-to-tbf-campaign-binary> [workdir]
set -euo pipefail

BIN=${1:?usage: campaign_smoke.sh <tbf-campaign> [workdir]}
WORK=${2:-$(mktemp -d)}
JOBS=200
SEED=42
# Much longer simulated duration per job than the test default (5 simulated
# minutes vs 150 ms), so each job costs real wall time and the campaign runs for
# seconds - the mid-campaign SIGKILL below must land while jobs are in flight on
# any hardware, and the victim.log gate at the bottom fails the smoke if it did
# not.
DURATION_MS=300000
SOCK="$WORK/campaign.sock"

mkdir -p "$WORK"
echo "== campaign smoke: $JOBS jobs, workdir $WORK"

echo "== serial reference"
"$BIN" serial --jobs "$JOBS" --seed "$SEED" --duration-ms "$DURATION_MS" \
  --out "$WORK/serial.archive"

echo "== distributed with faulty workers"
"$BIN" coordinate --jobs "$JOBS" --seed "$SEED" --duration-ms "$DURATION_MS" \
  --out "$WORK/dist.archive" \
  --socket "$SOCK" --wal "$WORK/campaign.wal" --no-local-fallback \
  --heartbeat-timeout-ms 1000 --max-attempts 12 \
  | tee "$WORK/coordinate.log" &
COORD_PID=$!

# Wait for the socket to exist before starting workers (bounded).
for _ in $(seq 1 100); do
  [ -S "$SOCK" ] && break
  sleep 0.05
done

# Worker 1: lies on >20% of first executions (corrupt + truncate) and crashes on
# some more; survives the whole campaign. The reconnect budget is capped so that
# if the campaign ends while the liar is mid-crash-reconnect (socket already
# unlinked), it gives up in ~3 s instead of the default ~10 s.
"$BIN" work --socket "$SOCK" --name liar \
  --fault-seed 7 --fault-corrupt 0.15 --fault-truncate 0.08 --fault-crash 0.05 \
  --heartbeat-ms 100 --max-reconnects 30 &
W1_PID=$!

# Worker 2: honest, but gets SIGKILLed from outside mid-campaign - the coordinator
# must absorb the vanished peer and re-queue whatever it held. Its stdout goes to
# a file: a SIGKILLed process can never print its exit stats line, so a non-empty
# victim.log proves the kill landed too late and fails the smoke below.
"$BIN" work --socket "$SOCK" --name victim --heartbeat-ms 100 \
  > "$WORK/victim.log" &
W2_PID=$!

sleep 0.3
kill -9 "$W2_PID" 2>/dev/null || true
echo "== SIGKILLed worker 'victim' (pid $W2_PID)"

wait "$COORD_PID"
wait "$W1_PID" || true
wait "$W2_PID" 2>/dev/null || true

echo "== verifying"
cmp "$WORK/serial.archive" "$WORK/dist.archive"
echo "archives byte-identical: OK"

if [ -s "$WORK/victim.log" ]; then
  echo "FAIL: worker 'victim' exited cleanly before the SIGKILL landed:" >&2
  cat "$WORK/victim.log" >&2
  exit 1
fi
echo "victim died by SIGKILL (no exit stats): OK"

STATS=$(grep '^coordinate:' "$WORK/coordinate.log")
echo "$STATS"
case "$STATS" in
  *" rejected=0 "*)
    echo "FAIL: no corrupted payloads were rejected - fault injection never fired" >&2
    exit 1
    ;;
esac
case "$STATS" in
  *" disconnects=0 "*)
    echo "FAIL: no worker disconnects seen - the SIGKILL landed after the campaign" >&2
    exit 1
    ;;
esac
case "$STATS" in
  *"finished=1 "*) ;;
  *)
    echo "FAIL: campaign did not finish" >&2
    exit 1
    ;;
esac
echo "== campaign smoke: PASS"
