// tbf-campaign: CLI front end for the fault-tolerant campaign service.
//
// Modes (first argument):
//   serial      Run the manifest in-process, fault-free, and write the archive.
//               This is the byte-identity reference for everything else.
//   coordinate  Serve the manifest over a unix socket, with re-dispatch, deadlines,
//               payload validation, a write-ahead completion log, and (by default)
//               local fallback when no workers connect. Writes the same archive.
//   work        Connect to a coordinator and run jobs until told to shut down.
//               --fault-* flags turn the worker into a deterministic adversary.
//
// The manifest is the built-in smoke grid (campaign/manifest.h), parameterized by
// --jobs and --seed; both sides regenerate it from the same parameters and the
// coordinator's completion log is fingerprint-checked against it, so a mismatch
// fails loudly instead of merging foreign results.
//
// See docs/campaign.md for the protocol and failure semantics, and
// tools/campaign_smoke.sh for the kill-a-worker-mid-campaign CI gate built on this
// binary.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <fstream>
#include <string>

#include "tbf/campaign/coordinator.h"
#include "tbf/campaign/manifest.h"
#include "tbf/campaign/worker.h"

namespace {

using namespace tbf;
using namespace tbf::campaign;

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  tbf-campaign serial     --jobs N --seed S [--duration-ms N] --out ARCHIVE\n"
      "  tbf-campaign coordinate --jobs N --seed S [--duration-ms N] --out ARCHIVE\n"
      "                          --socket PATH\n"
      "                          [--wal PATH] [--job-timeout-ms N]\n"
      "                          [--heartbeat-timeout-ms N] [--max-attempts N]\n"
      "                          [--no-local-fallback] [--halt-after N]\n"
      "  tbf-campaign work       --socket PATH [--name NAME]\n"
      "                          [--fault-seed S] [--fault-crash P] [--fault-hang P]\n"
      "                          [--fault-corrupt P] [--fault-truncate P]\n"
      "                          [--fault-repeat] [--heartbeat-ms N]\n"
      "                          [--max-reconnects N]\n");
  return 2;
}

bool WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  return static_cast<bool>(out);
}

struct Args {
  // Shared.
  int jobs = 200;
  int duration_ms = 150;  // Simulated seconds-of-traffic per job (grid default).
  uint64_t seed = 1;
  std::string out;
  std::string socket;
  // coordinate.
  std::string wal;
  int job_timeout_ms = 60000;
  int heartbeat_timeout_ms = 5000;
  int max_attempts = 8;
  bool local_fallback = true;
  int halt_after = -1;
  // work.
  std::string name = "worker";
  int heartbeat_ms = 500;
  int max_reconnects = 100;
  FaultPlan faults;
};

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&](const char** value) {
      if (i + 1 >= argc) {
        return false;
      }
      *value = argv[++i];
      return true;
    };
    const char* v = nullptr;
    if (flag == "--jobs" && next(&v)) {
      args->jobs = std::atoi(v);
    } else if (flag == "--duration-ms" && next(&v)) {
      args->duration_ms = std::atoi(v);
    } else if (flag == "--seed" && next(&v)) {
      args->seed = static_cast<uint64_t>(std::strtoull(v, nullptr, 10));
    } else if (flag == "--out" && next(&v)) {
      args->out = v;
    } else if (flag == "--socket" && next(&v)) {
      args->socket = v;
    } else if (flag == "--wal" && next(&v)) {
      args->wal = v;
    } else if (flag == "--job-timeout-ms" && next(&v)) {
      args->job_timeout_ms = std::atoi(v);
    } else if (flag == "--heartbeat-timeout-ms" && next(&v)) {
      args->heartbeat_timeout_ms = std::atoi(v);
    } else if (flag == "--max-attempts" && next(&v)) {
      args->max_attempts = std::atoi(v);
    } else if (flag == "--no-local-fallback") {
      args->local_fallback = false;
    } else if (flag == "--halt-after" && next(&v)) {
      args->halt_after = std::atoi(v);
    } else if (flag == "--name" && next(&v)) {
      args->name = v;
    } else if (flag == "--heartbeat-ms" && next(&v)) {
      args->heartbeat_ms = std::atoi(v);
    } else if (flag == "--max-reconnects" && next(&v)) {
      args->max_reconnects = std::atoi(v);
    } else if (flag == "--fault-seed" && next(&v)) {
      args->faults.seed = static_cast<uint64_t>(std::strtoull(v, nullptr, 10));
    } else if (flag == "--fault-crash" && next(&v)) {
      args->faults.crash = std::atof(v);
    } else if (flag == "--fault-hang" && next(&v)) {
      args->faults.hang = std::atof(v);
    } else if (flag == "--fault-corrupt" && next(&v)) {
      args->faults.corrupt = std::atof(v);
    } else if (flag == "--fault-truncate" && next(&v)) {
      args->faults.truncate = std::atof(v);
    } else if (flag == "--fault-repeat") {
      args->faults.repeat = true;
    } else {
      std::fprintf(stderr, "tbf-campaign: bad flag %s\n", flag.c_str());
      return false;
    }
  }
  return true;
}

Manifest MakeManifest(const Args& args) {
  SmokeGridSpec spec;
  spec.jobs = args.jobs;
  spec.seed = args.seed;
  spec.duration = Ms(args.duration_ms);
  return MakeSmokeGrid(spec);
}

int RunSerial(const Args& args) {
  const std::string archive = RunSerialArchive(MakeManifest(args));
  if (!WriteFile(args.out, archive)) {
    std::fprintf(stderr, "tbf-campaign: cannot write %s\n", args.out.c_str());
    return 1;
  }
  std::printf("serial: jobs=%d archive_bytes=%zu\n", args.jobs, archive.size());
  return 0;
}

int RunCoordinate(const Args& args) {
  CoordinatorConfig config;
  config.socket_path = args.socket;
  config.wal_path = args.wal;
  config.job_timeout_ms = args.job_timeout_ms;
  config.heartbeat_timeout_ms = args.heartbeat_timeout_ms;
  config.max_attempts = args.max_attempts;
  config.local_fallback_after_ms = args.local_fallback ? 500 : -1;
  config.halt_after_jobs = args.halt_after;

  Coordinator coordinator(MakeManifest(args), config);
  const bool finished = coordinator.Run();
  const CoordinatorStats& s = coordinator.stats();
  // One parseable stats line; the CI smoke script greps it to assert the faults it
  // injected were actually seen and survived.
  std::printf(
      "coordinate: finished=%d completed=%lld resumed=%lld dispatched=%lld "
      "redispatched=%lld rejected=%lld disconnects=%lld heartbeat_timeouts=%lld "
      "deadline_timeouts=%lld worker_errors=%lld local_runs=%lld\n",
      finished ? 1 : 0, static_cast<long long>(s.completed),
      static_cast<long long>(s.resumed), static_cast<long long>(s.dispatched),
      static_cast<long long>(s.redispatched),
      static_cast<long long>(s.rejected_payloads),
      static_cast<long long>(s.worker_disconnects),
      static_cast<long long>(s.heartbeat_timeouts),
      static_cast<long long>(s.deadline_timeouts),
      static_cast<long long>(s.worker_errors),
      static_cast<long long>(s.local_runs));
  if (!finished) {
    return 3;  // Halted by --halt-after; resume with the same --wal to finish.
  }
  if (!WriteFile(args.out, coordinator.EncodeArchiveBytes())) {
    std::fprintf(stderr, "tbf-campaign: cannot write %s\n", args.out.c_str());
    return 1;
  }
  return 0;
}

int RunWork(const Args& args) {
  WorkerConfig config;
  config.socket_path = args.socket;
  config.name = args.name;
  config.heartbeat_interval_ms = args.heartbeat_ms;
  config.max_reconnects = args.max_reconnects;
  config.faults = args.faults;
  const WorkerStats s = RunWorker(config);
  std::printf("work: name=%s jobs_run=%lld results_sent=%lld faults=%lld "
              "reconnects=%lld\n",
              args.name.c_str(), static_cast<long long>(s.jobs_run),
              static_cast<long long>(s.results_sent),
              static_cast<long long>(s.faults_injected),
              static_cast<long long>(s.reconnects));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    return Usage();
  }
  const std::string mode = argv[1];
  Args args;
  if (!ParseArgs(argc, argv, &args)) {
    return Usage();
  }
  try {
    if (mode == "serial") {
      if (args.out.empty()) {
        return Usage();
      }
      return RunSerial(args);
    }
    if (mode == "coordinate") {
      if (args.out.empty() || args.socket.empty()) {
        return Usage();
      }
      return RunCoordinate(args);
    }
    if (mode == "work") {
      if (args.socket.empty()) {
        return Usage();
      }
      return RunWork(args);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "tbf-campaign: %s\n", e.what());
    return 1;
  }
  return Usage();
}
